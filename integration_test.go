// Integration tests: end-to-end consistency of every engine on generated
// datasets and realistic exploration workloads, plus facade-level features
// (snapshots, explain). These complement the per-package unit tests by
// exercising the full pipeline: generator -> closure -> indexes -> workload
// -> plans -> engines -> estimators.
package kgexplore

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"kgexplore/internal/baseline"
	"kgexplore/internal/core"
	"kgexplore/internal/ctj"
	"kgexplore/internal/explore"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
	"kgexplore/internal/workload"
)

// TestEnginesAgreeOnWorkload runs a random exploration workload over both
// synthetic datasets and checks that all three exact engines agree on every
// chart query, in both distinct and plain modes.
func TestEnginesAgreeOnWorkload(t *testing.T) {
	for _, cfg := range []kggen.Config{kggen.DBpediaSim(0.01), kggen.LGDSim(0.01)} {
		g, schema, err := kggen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st := index.Build(g)
		gen := &workload.Generator{Store: st, Schema: schema, Seed: 5, MaxSteps: 3}
		recs := gen.Paths(4)
		if len(recs) == 0 {
			t.Fatalf("%s: empty workload", cfg.Name)
		}
		for _, rec := range recs {
			for _, distinct := range []bool{true, false} {
				q := *rec.Query
				q.Distinct = distinct
				pl, err := query.Compile(&q)
				if err != nil {
					t.Fatal(err)
				}
				want := lftj.Evaluate(st, pl)
				if got := ctj.Evaluate(st, pl); !mapsEq(got, want) {
					t.Errorf("%s path %d step %d distinct=%v: CTJ disagrees with LFTJ",
						cfg.Name, rec.Path, rec.Step, distinct)
				}
				got, err := baseline.Evaluate(st, pl)
				if err != nil {
					t.Fatalf("baseline: %v", err)
				}
				if !mapsEq(got, want) {
					t.Errorf("%s path %d step %d distinct=%v: baseline disagrees with LFTJ",
						cfg.Name, rec.Path, rec.Step, distinct)
				}
			}
		}
	}
}

// TestEstimatorsConvergeOnWorkload verifies that on every workload query
// Audit Join's estimate approaches the exact answer, and beats Wander Join
// on the median in distinct mode.
func TestEstimatorsConvergeOnWorkload(t *testing.T) {
	g, schema, err := kggen.Generate(kggen.DBpediaSim(0.01))
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	gen := &workload.Generator{Store: st, Schema: schema, Seed: 9, MaxSteps: 3}
	recs := gen.Paths(3)
	var ajMAEs, wjMAEs []float64
	for _, rec := range recs {
		ajr := core.New(st, rec.Plan, core.Options{Threshold: core.DefaultThreshold, Seed: 2})
		RunWalks(ajr, 60000)
		ajMAEs = append(ajMAEs, stats.MAE(ajr.Snapshot().Estimates, rec.Exact))
		wjr := wj.New(st, rec.Plan, 2)
		RunWalks(wjr, 60000)
		wjMAEs = append(wjMAEs, stats.MAE(wjr.Snapshot().Estimates, rec.Exact))
	}
	ajMed := stats.TukeyOf(ajMAEs).Median
	wjMed := stats.TukeyOf(wjMAEs).Median
	if ajMed > 0.35 {
		t.Errorf("AJ median MAE %.3f too high after 60k walks", ajMed)
	}
	if !(ajMed < wjMed) {
		t.Errorf("AJ median %.3f not below WJ median %.3f", ajMed, wjMed)
	}
}

// TestSnapshotRoundTripThroughFacade saves a dataset snapshot and reloads
// it, checking that a chart query gives identical results.
func TestSnapshotRoundTripThroughFacade(t *testing.T) {
	ds, err := GenerateDBpediaSim(0.005)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	ds2, err := LoadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.NumTriples() != ds.NumTriples() {
		t.Fatalf("triples %d vs %d", ds2.NumTriples(), ds.NumTriples())
	}
	bars1, err := ds.Chart(ds.Root(), OpSubclass)
	if err != nil {
		t.Fatal(err)
	}
	bars2, err := ds2.Chart(ds2.Root(), OpSubclass)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars1) != len(bars2) {
		t.Fatalf("bar counts differ: %d vs %d", len(bars1), len(bars2))
	}
	for i := range bars1 {
		if bars1[i].Category.Value != bars2[i].Category.Value || bars1[i].Count != bars2[i].Count {
			t.Errorf("bar %d differs: %+v vs %+v", i, bars1[i], bars2[i])
		}
	}
}

// TestExplainThroughFacade sanity-checks the EXPLAIN output on an
// exploration query.
func TestExplainThroughFacade(t *testing.T) {
	ds, err := GenerateDBpediaSim(0.005)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ds.Root().Query(OpOutProp)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := ds.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	out := ds.Explain(pl)
	if !strings.Contains(out, "step 0") || !strings.Contains(out, "estimated join size") {
		t.Errorf("Explain output:\n%s", out)
	}
}

// TestSumAvgEndToEnd runs SUM and AVG through the facade on a dataset whose
// value nodes are numeric.
func TestSumAvgEndToEnd(t *testing.T) {
	ds, err := GenerateDBpediaSim(0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Find a property with numeric (literal) objects.
	var prop ID
	found := false
	st := storeOf(ds)
	it := st.Level(index.PSO, st.FullSpan(index.PSO), 0)
	for it.Next() && !found {
		sp := it.SubSpan()
		for i := 0; i < sp.Len() && i < 10; i++ {
			o := st.At(index.PSO, sp, i).O
			if _, ok := st.Numeric(o); ok {
				prop = it.Key()
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no numeric-valued property in the generated dataset")
	}
	p, err := ds.ParseQuery(`SELECT SUM(?v) WHERE { ?s <` + ds.Dict().Term(prop).Value + `> ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := ds.Compile(p.Query)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ds.Exact(pl, EngineCTJ)
	if err != nil {
		t.Fatal(err)
	}
	if exact[GlobalGroup] <= 0 {
		t.Fatalf("exact sum = %v", exact)
	}
	aj := ds.NewAuditJoin(pl, AuditJoinOptions{Threshold: DefaultTippingThreshold, Seed: 4})
	RunWalks(aj, 50000)
	est := aj.Snapshot().Estimates[GlobalGroup]
	if math.Abs(est-exact[GlobalGroup])/exact[GlobalGroup] > 0.15 {
		t.Errorf("AJ SUM %.1f vs exact %.1f", est, exact[GlobalGroup])
	}
}

// storeOf reaches the dataset's store for white-box inspection (same
// package as the facade).
func storeOf(d *Dataset) *index.Store { return d.store }

// TestCyclicThroughInternals verifies a cyclic plan runs end-to-end on a
// generated dataset.
func TestCyclicThroughInternals(t *testing.T) {
	g, schema, err := kggen.Generate(kggen.DBpediaSim(0.01))
	if err != nil {
		t.Fatal(err)
	}
	_ = schema
	st := index.Build(g)
	var topP rdf.ID
	bestN := -1
	it := st.Level(index.PSO, st.FullSpan(index.PSO), 0)
	for it.Next() {
		if term := g.Dict.Term(it.Key()); strings.HasPrefix(term.Value, "p:") {
			if n := it.SubSpan().Len(); n > bestN {
				topP, bestN = it.Key(), n
			}
		}
	}
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(topP), O: query.V(1)},
			{S: query.V(1), P: query.C(topP), O: query.V(2)},
			{S: query.V(2), P: query.C(topP), O: query.V(0)},
		},
		Alpha: query.NoVar,
		Beta:  0,
	}
	pl, err := query.CompileCyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	want := lftj.Count(st, pl)
	if got := ctj.Count(st, pl); got != want {
		t.Errorf("cyclic CTJ %d vs LFTJ %d", got, want)
	}
	// Exploration-model queries must still compile the strict way.
	s := explore.Root(schema)
	if _, err := s.Query(explore.OpSubclass); err != nil {
		t.Fatal(err)
	}
}

func mapsEq(a, b map[rdf.ID]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestAutoPicksStrategy checks the hybrid Auto evaluator: a tiny join is
// answered exactly; a huge one is estimated under the budget.
func TestAutoPicksStrategy(t *testing.T) {
	// Large enough that the root out-property join exceeds AutoExactLimit.
	ds, err := GenerateDBpediaSim(0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Small: subclass chart of the root.
	q, err := ds.Root().Query(OpSubclass)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := ds.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Auto(pl, 50*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || len(res.Counts) == 0 {
		t.Errorf("small join: exact=%v counts=%d", res.Exact, len(res.Counts))
	}
	// Large: out-property chart of the root (the full-graph join).
	q, err = ds.Root().Query(OpOutProp)
	if err != nil {
		t.Fatal(err)
	}
	pl, err = ds.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err = ds.Auto(pl, 50*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("large join answered exactly; want an estimate")
	}
	if res.Walks == 0 || len(res.Counts) == 0 || res.CI == nil {
		t.Errorf("estimate missing fields: %+v", res)
	}
}

// TestReplayAndCompare exercises the multi-KG comparison feature: record a
// path, replay it on two datasets, and align the charts by category.
func TestReplayAndCompare(t *testing.T) {
	a, err := LoadNTriples(strings.NewReader(compareNT("alice", "bob")))
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadNTriples(strings.NewReader(compareNT("x", "y")))
	if err != nil {
		t.Fatal(err)
	}
	// Path: select subclass Person from the root.
	steps := []PathStep{{Op: OpSubclass, Category: Term{Value: "Person"}}}
	sa, err := a.Replay(steps)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Kind != ClassBar {
		t.Fatalf("replayed state kind = %v", sa.Kind)
	}
	bars, err := CompareChart(a, b, steps, OpOutProp)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) == 0 {
		t.Fatal("empty comparison")
	}
	// The worksAt property must appear with counts from both graphs.
	found := false
	for _, cb := range bars {
		if cb.Category.Value == "worksAt" {
			found = true
			if cb.A != 2 || cb.B != 2 {
				t.Errorf("worksAt = %v/%v, want 2/2", cb.A, cb.B)
			}
		}
	}
	if !found {
		t.Error("worksAt missing from comparison")
	}
	// Replaying a path with a category absent from the graph fails clearly.
	bad := []PathStep{{Op: OpSubclass, Category: Term{Value: "Nonexistent"}}}
	if _, err := a.Replay(bad); err == nil {
		t.Error("replay of unknown category succeeded")
	}
}

func compareNT(p1, p2 string) string {
	ty := "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
	return "<" + p1 + "> <worksAt> <acme> .\n" +
		"<" + p2 + "> <worksAt> <acme> .\n" +
		"<" + p1 + "> " + ty + " <Person> .\n" +
		"<" + p2 + "> " + ty + " <Person> .\n" +
		"<acme> " + ty + " <Company> .\n"
}
