package kgexplore

import (
	"context"

	"kgexplore/internal/card"
	"kgexplore/internal/exec"
	"kgexplore/internal/explore"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/shard"
	"kgexplore/internal/sparql"
)

// Re-exported sharding types (internal/shard).
type (
	// ShardManifest describes a complete on-disk shard set (.kgm).
	ShardManifest = shard.Manifest
	// ShardCache is a per-stratum suffix-aggregate cache shared by the
	// walker pool of one shard across scatter-gather runs.
	ShardCache = shard.Cache
	// ShardCacheStats reports hits and misses of one or more shard caches.
	ShardCacheStats = shard.CacheStats
	// ShardScatterOptions configures a scatter-gather Audit Join run.
	ShardScatterOptions = shard.ScatterOptions
	// ShardScatterStats reports per-shard allocation and cache statistics of
	// a scatter-gather run.
	ShardScatterStats = shard.ScatterStats
	// ShardScatter is the sequential scatter stepper (round-robin over
	// strata), drivable with Drive/RunWalks like any estimator.
	ShardScatter = shard.Scatter
)

// DefaultPartitioner is the partitioner new shard sets use unless told
// otherwise.
const DefaultPartitioner = shard.DefaultPartitioner

// NewShardCaches returns one empty cache per shard, for warm-starting
// successive scatter-gather runs of the same plan over a set with k shards.
func NewShardCaches(k int) []*ShardCache {
	caches := make([]*ShardCache, k)
	for i := range caches {
		caches[i] = shard.NewCache()
	}
	return caches
}

// ShardedDataset is the sharded counterpart of Dataset: the triples split
// into K disjoint shards by subject hash, each shard an ordinary index
// store. Exploration (parsing, compiling, charts) works identically; online
// aggregation runs as scatter-gather Audit Join with per-shard walker pools
// and stratified merging. Sharded datasets are immutable and safe for
// concurrent readers.
type ShardedDataset struct {
	set    *shard.Set
	schema explore.Schema
	// est is the configured cardinality estimator over all shard stores; nil
	// means the default span statistics (see UseEstimator).
	est card.Estimator
}

// UseEstimator switches the sharded dataset's tipping and budget decisions
// to the named cardinality estimator, constructed over all shard stores.
// Call it during setup, before the dataset is shared across goroutines.
func (d *ShardedDataset) UseEstimator(name string) error {
	stores := make([]*index.Store, d.set.K())
	for i := range stores {
		stores[i] = d.set.Store(i)
	}
	est, err := card.ByName(name, stores...)
	if err != nil {
		return err
	}
	d.est = est
	return nil
}

// EstimatorName reports which cardinality estimator the sharded dataset
// uses.
func (d *ShardedDataset) EstimatorName() string {
	if d.est != nil {
		return d.est.Name()
	}
	return EstimatorSpan
}

func newShardedDataset(set *shard.Set) (*ShardedDataset, error) {
	schema, err := explore.SchemaOf(set.Dict(), RootThing)
	if err != nil {
		set.Close()
		return nil, err
	}
	return &ShardedDataset{set: set, schema: schema}, nil
}

// BuildSharded splits the dataset into k shards under the named partitioner
// ("" selects the default). The dictionary is shared; the closure triples
// materialized by FromGraph are included.
func (d *Dataset) BuildSharded(k int, partitioner string) (*ShardedDataset, error) {
	part, err := shard.PartitionerByName(partitioner)
	if err != nil {
		return nil, err
	}
	set, err := shard.Build(d.graph, k, part)
	if err != nil {
		return nil, err
	}
	return &ShardedDataset{set: set, schema: d.schema}, nil
}

// LoadShardedDataset loads a shard set from its manifest (.kgm). With mmap
// true each shard snapshot is mapped zero-copy; the dataset must then not
// be used after Close. The load is all-or-nothing: a missing or corrupt
// shard fails the whole load.
func LoadShardedDataset(manifestPath string, mmap bool) (*ShardedDataset, error) {
	set, err := shard.Load(manifestPath, shard.LoadOptions{Mmap: mmap})
	if err != nil {
		return nil, err
	}
	return newShardedDataset(set)
}

// WriteShardedSnapshots writes every shard as a .kgs snapshot next to
// manifestPath and the manifest last, so a crash never leaves a manifest
// naming missing shards.
func (d *ShardedDataset) WriteShardedSnapshots(manifestPath, source string) (ShardManifest, error) {
	return shard.WriteSet(manifestPath, d.set, source)
}

// VerifyShardSet fully checks an on-disk shard set: manifest consistency,
// every shard's checksums, and that every triple sits in the shard its
// subject hashes to.
func VerifyShardSet(manifestPath string) (ShardManifest, error) {
	return shard.Verify(manifestPath)
}

// ReadShardManifest reads and validates a shard manifest without loading
// the shards it names.
func ReadShardManifest(manifestPath string) (ShardManifest, error) {
	return shard.ReadManifest(manifestPath)
}

// SetShardWorkers records worker-address placement in an existing manifest:
// workers[k] is the address of the kgworker serving shard k. Pass nil to
// clear. Placement is deployment metadata — it does not enter the config
// hash, so snapshots stay valid across address changes. The rewrite is
// atomic (temp file + rename).
func SetShardWorkers(manifestPath string, workers []string) (ShardManifest, error) {
	m, err := shard.ReadManifest(manifestPath)
	if err != nil {
		return ShardManifest{}, err
	}
	m.Workers = workers
	if err := shard.WriteManifest(manifestPath, m); err != nil {
		return ShardManifest{}, err
	}
	return m, nil
}

// Close releases the per-shard snapshot mappings, if any.
func (d *ShardedDataset) Close() error { return d.set.Close() }

// NumShards returns the shard count K.
func (d *ShardedDataset) NumShards() int { return d.set.K() }

// Partitioner returns the name of the partitioner that placed the triples.
func (d *ShardedDataset) Partitioner() string { return d.set.Partitioner().Name() }

// NumTriples returns the total triple count across shards.
func (d *ShardedDataset) NumTriples() int { return d.set.NumTriples() }

// IndexBytes estimates the resident size of all shards' index orders.
func (d *ShardedDataset) IndexBytes() int64 { return d.set.EstimateBytes() }

// Dict returns the shared term dictionary.
func (d *ShardedDataset) Dict() *Dict { return d.set.Dict() }

// Root returns the initial exploration state: the root class bar.
func (d *ShardedDataset) Root() *ExploreState { return explore.Root(d.schema) }

// ParseQuery parses a query in the SPARQL fragment of Fig. 4, interning
// constants into the shared dictionary.
func (d *ShardedDataset) ParseQuery(src string) (*ParsedQuery, error) {
	return sparql.Parse(src, d.set.Dict())
}

// Compile plans a query for execution.
func (d *ShardedDataset) Compile(q *Query) (*Plan, error) { return query.Compile(q) }

// BarsOf converts a per-group result (and optional CI map) into bars sorted
// by descending count, decoding group IDs through the shared dictionary.
func (d *ShardedDataset) BarsOf(counts map[ID]float64, ci map[ID]float64) []Bar {
	return barsOf(d.set.Dict(), counts, ci)
}

// Exact evaluates the plan exactly over all shards (resolver-backed
// enumeration with the owner fast path).
func (d *ShardedDataset) Exact(pl *Plan) map[ID]float64 { return d.set.Exact(pl) }

// ExactCtx is Exact with cooperative cancellation.
func (d *ShardedDataset) ExactCtx(ctx context.Context, pl *Plan) (map[ID]float64, error) {
	return d.set.ExactCtx(ctx, pl)
}

// CompileUnion validates and plans every branch of a union.
func (d *ShardedDataset) CompileUnion(u *UnionQuery) (*UnionPlan, error) {
	return query.CompileUnion(u)
}

// ExactUnionCtx evaluates a compiled union exactly over the sharded set:
// COUNT and SUM add across branches, AVG is the ratio of the summed
// numerators and denominators, and COUNT(DISTINCT) deduplicates (group, β)
// pairs across branches through one shared value set.
func (d *ShardedDataset) ExactUnionCtx(ctx context.Context, up *UnionPlan) (map[ID]float64, error) {
	return d.set.ExactUnionCtx(ctx, up)
}

// NewUnionScatter creates the stratified union stepper over the shards: one
// Scatter per branch, branches interleaved proportionally to estimated join
// size, Snapshot merging all (branch, shard) strata. COUNT(DISTINCT) unions
// are refused with ErrDistinctUnion; use ExactUnionCtx.
func (d *ShardedDataset) NewUnionScatter(up *UnionPlan, opts ShardScatterOptions) (*shard.UnionScatter, error) {
	if opts.Estimator == nil {
		opts.Estimator = d.est
	}
	return shard.NewUnionScatter(d.set, up, opts)
}

// RunUnionScatter drives the union stepper under xopts and returns the final
// stratified-merged estimate. COUNT(DISTINCT) unions fall back to the exact
// cross-branch union, mirroring RunScatter's unowned-distinct policy.
func (d *ShardedDataset) RunUnionScatter(ctx context.Context, up *UnionPlan, opts ShardScatterOptions, xopts DriveOptions) (EstimateResult, error) {
	if up.Query.Distinct() {
		counts, err := d.set.ExactUnionCtx(ctx, up)
		if err != nil {
			return EstimateResult{}, err
		}
		return EstimateResult{Estimates: counts, CI: map[ID]float64{}}, nil
	}
	u, err := d.NewUnionScatter(up, opts)
	if err != nil {
		return EstimateResult{}, err
	}
	rep, err := exec.Drive(ctx, u, xopts)
	if err != nil {
		return EstimateResult{}, err
	}
	return rep.Final, nil
}

// NewScatter creates the sequential scatter-gather stepper for the plan:
// one walker per shard, stepped round-robin weighted by root cardinality.
// Drive it with Drive or RunWalks; Snapshot merges the strata.
func (d *ShardedDataset) NewScatter(pl *Plan, opts ShardScatterOptions) (*ShardScatter, error) {
	if opts.Estimator == nil {
		opts.Estimator = d.est
	}
	return shard.NewScatter(d.set, pl, opts)
}

// RunScatter runs scatter-gather Audit Join over the shards: per-shard
// walker pools sharing per-stratum caches, walks allocated proportionally
// to root cardinality, per-shard accumulators merged into globally unbiased
// estimates with stratified CIs. xopts.MaxWalks is the total walk budget
// across all shards. COUNT(DISTINCT) plans whose distinct variable is not
// owned by the partition key fall back to the exact union (see
// ShardScatterStats.ExactFallback).
func (d *ShardedDataset) RunScatter(ctx context.Context, pl *Plan, opts ShardScatterOptions, xopts DriveOptions) (EstimateResult, ShardScatterStats, error) {
	if opts.Estimator == nil {
		opts.Estimator = d.est
	}
	return shard.RunScatter(ctx, d.set, pl, opts, xopts)
}

// ShardScatterOwned reports whether the plan's COUNT(DISTINCT) variable is
// owned by the partition key — i.e. whether scatter-gather can estimate it
// online instead of falling back to the exact union.
func ShardScatterOwned(pl *Plan) bool { return shard.Owned(pl) }
