module kgexplore

go 1.22
