package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"kgexplore/internal/rdf"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokKeyword
	tokVar
	tokIRI
	tokLiteral
	tokA // the `a` shorthand for rdf:type
	tokPunct
	tokNum // numeric constant in FILTER expressions and path repetitions
	tokOp  // comparison/arithmetic operator: = != < <= > >= && + - * /
	tokError
)

type token struct {
	kind tokKind
	text string   // keyword (upper-cased), var name, IRI, punct, operator, or error message
	lit  rdf.Term // for tokLiteral
	num  float64  // for tokNum
	off  int      // byte offset in the source
}

func (t token) isKeyword(kw string) bool { return t.kind == tokKeyword && t.text == kw }

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokKeyword:
		return t.text
	case tokVar:
		return "?" + t.text
	case tokIRI:
		return "<" + t.text + ">"
	case tokLiteral:
		return t.lit.String()
	case tokA:
		return "a"
	case tokPunct:
		return fmt.Sprintf("%q", t.text)
	case tokNum:
		return strconv.FormatFloat(t.num, 'g', -1, 64)
	case tokOp:
		return fmt.Sprintf("%q", t.text)
	default:
		return "lex error: " + t.text
	}
}

func (t token) isOp(op string) bool { return t.kind == tokOp && t.text == op }

func (t token) isPunct(p string) bool { return t.kind == tokPunct && t.text == p }

type lexer struct {
	src    string
	pos    int
	peeked *token
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) peek() token {
	if l.peeked == nil {
		t := l.scan()
		l.peeked = &t
	}
	return *l.peeked
}

func (l *lexer) next() token {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t
	}
	return l.scan()
}

func (l *lexer) scan() token {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, off: start}
	}
	c := l.src[l.pos]
	switch {
	case c == '?' || c == '$':
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && isNameByte(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == s {
			return token{kind: tokError, text: "empty variable name", off: start}
		}
		return token{kind: tokVar, text: l.src[s:l.pos], off: start}
	case c == '<':
		// '<' opens an IRI in patterns and is less-than (or <=) in FILTER
		// expressions. Disambiguate lexically: "<=" is always the operator,
		// and an IRI attempt is recognized by its next byte — IRIs start
		// with a name character, ':' or '/' — so "< 5", "<?y", "<5" and
		// "<(" all lex as the operator while "<http://…>" stays an IRI.
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "<=", off: start}
		}
		if l.pos+1 < len(l.src) && (isNameStart(l.src[l.pos+1]) || l.src[l.pos+1] == ':' || l.src[l.pos+1] == '/') {
			end := strings.IndexByte(l.src[l.pos:], '>')
			if end < 0 {
				return token{kind: tokError, text: "unterminated IRI", off: start}
			}
			iri := l.src[l.pos+1 : l.pos+end]
			l.pos += end + 1
			return token{kind: tokIRI, text: iri, off: start}
		}
		l.pos++
		return token{kind: tokOp, text: "<", off: start}
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: ">=", off: start}
		}
		return token{kind: tokOp, text: ">", off: start}
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", off: start}
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: "!=", off: start}
		}
		return token{kind: tokError, text: "expected '=' after '!'", off: start}
	case c == '&':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '&' {
			l.pos++
			return token{kind: tokOp, text: "&&", off: start}
		}
		return token{kind: tokError, text: "expected '&&'", off: start}
	case c == '+' || c == '-' || c == '*' || c == '/':
		l.pos++
		return token{kind: tokOp, text: string(c), off: start}
	case c >= '0' && c <= '9':
		return l.scanNumber(start)
	case c == '"':
		return l.scanLiteral(start)
	case strings.ContainsRune("{}().", rune(c)):
		l.pos++
		return token{kind: tokPunct, text: string(c), off: start}
	case isNameStart(c):
		s := l.pos
		for l.pos < len(l.src) && (isNameByte(l.src[l.pos]) || l.src[l.pos] == ':') {
			l.pos++
		}
		word := l.src[s:l.pos]
		if word == "a" {
			return token{kind: tokA, off: start}
		}
		if word == "rdf:type" {
			return token{kind: tokIRI, text: rdf.RDFType, off: start}
		}
		if word == "rdfs:subClassOf" {
			return token{kind: tokIRI, text: rdf.RDFSSubClass, off: start}
		}
		return token{kind: tokKeyword, text: strings.ToUpper(word), off: start}
	default:
		return token{kind: tokError, text: fmt.Sprintf("unexpected character %q", c), off: start}
	}
}

func (l *lexer) scanLiteral(start int) token {
	l.pos++ // consume the opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{kind: tokError, text: "unterminated literal", off: start}
		}
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			break
		}
		if c == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				return token{kind: tokError, text: "dangling escape", off: start}
			}
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return token{kind: tokError, text: "unknown escape in literal", off: start}
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	lex := b.String()
	// Optional @lang or ^^<datatype>.
	if l.pos < len(l.src) && l.src[l.pos] == '@' {
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && (isNameByte(l.src[l.pos]) || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos == s {
			return token{kind: tokError, text: "empty language tag", off: start}
		}
		return token{kind: tokLiteral, lit: rdf.NewLangLiteral(lex, l.src[s:l.pos]), off: start}
	}
	if strings.HasPrefix(l.src[l.pos:], "^^<") {
		l.pos += 3
		end := strings.IndexByte(l.src[l.pos:], '>')
		if end < 0 {
			return token{kind: tokError, text: "unterminated datatype IRI", off: start}
		}
		dt := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{kind: tokLiteral, lit: rdf.NewTypedLiteral(lex, dt), off: start}
	}
	return token{kind: tokLiteral, lit: rdf.NewLiteral(lex), off: start}
}

// scanNumber lexes an unsigned numeric constant: digits, an optional
// fraction (the '.' is consumed only when a digit follows, keeping the
// pattern separator unambiguous: "5." lexes as 5 then '.'), and an
// optional exponent. Negative constants are produced by the parser's unary
// minus.
func (l *lexer) scanNumber(start int) token {
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		p := l.pos + 1
		if p < len(l.src) && (l.src[p] == '+' || l.src[p] == '-') {
			p++
		}
		if p < len(l.src) && l.src[p] >= '0' && l.src[p] <= '9' {
			l.pos = p
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
		}
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{kind: tokError, text: "malformed number " + text, off: start}
	}
	return token{kind: tokNum, num: v, off: start}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isNameByte(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
