package sparql

import (
	"fmt"
	"strings"
	"unicode"

	"kgexplore/internal/rdf"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokKeyword
	tokVar
	tokIRI
	tokLiteral
	tokA // the `a` shorthand for rdf:type
	tokPunct
	tokError
)

type token struct {
	kind tokKind
	text string   // keyword (upper-cased), var name, IRI, punctuation, or error message
	lit  rdf.Term // for tokLiteral
	off  int      // byte offset in the source
}

func (t token) isKeyword(kw string) bool { return t.kind == tokKeyword && t.text == kw }

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokKeyword:
		return t.text
	case tokVar:
		return "?" + t.text
	case tokIRI:
		return "<" + t.text + ">"
	case tokLiteral:
		return t.lit.String()
	case tokA:
		return "a"
	case tokPunct:
		return fmt.Sprintf("%q", t.text)
	default:
		return "lex error: " + t.text
	}
}

type lexer struct {
	src    string
	pos    int
	peeked *token
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) peek() token {
	if l.peeked == nil {
		t := l.scan()
		l.peeked = &t
	}
	return *l.peeked
}

func (l *lexer) next() token {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t
	}
	return l.scan()
}

func (l *lexer) scan() token {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, off: start}
	}
	c := l.src[l.pos]
	switch {
	case c == '?' || c == '$':
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && isNameByte(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == s {
			return token{kind: tokError, text: "empty variable name", off: start}
		}
		return token{kind: tokVar, text: l.src[s:l.pos], off: start}
	case c == '<':
		end := strings.IndexByte(l.src[l.pos:], '>')
		if end < 0 {
			return token{kind: tokError, text: "unterminated IRI", off: start}
		}
		iri := l.src[l.pos+1 : l.pos+end]
		l.pos += end + 1
		return token{kind: tokIRI, text: iri, off: start}
	case c == '"':
		return l.scanLiteral(start)
	case strings.ContainsRune("{}().", rune(c)):
		l.pos++
		return token{kind: tokPunct, text: string(c), off: start}
	case isNameStart(c):
		s := l.pos
		for l.pos < len(l.src) && (isNameByte(l.src[l.pos]) || l.src[l.pos] == ':') {
			l.pos++
		}
		word := l.src[s:l.pos]
		if word == "a" {
			return token{kind: tokA, off: start}
		}
		if word == "rdf:type" {
			return token{kind: tokIRI, text: rdf.RDFType, off: start}
		}
		if word == "rdfs:subClassOf" {
			return token{kind: tokIRI, text: rdf.RDFSSubClass, off: start}
		}
		return token{kind: tokKeyword, text: strings.ToUpper(word), off: start}
	default:
		return token{kind: tokError, text: fmt.Sprintf("unexpected character %q", c), off: start}
	}
}

func (l *lexer) scanLiteral(start int) token {
	l.pos++ // consume the opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{kind: tokError, text: "unterminated literal", off: start}
		}
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			break
		}
		if c == '\\' {
			l.pos++
			if l.pos >= len(l.src) {
				return token{kind: tokError, text: "dangling escape", off: start}
			}
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return token{kind: tokError, text: "unknown escape in literal", off: start}
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	lex := b.String()
	// Optional @lang or ^^<datatype>.
	if l.pos < len(l.src) && l.src[l.pos] == '@' {
		l.pos++
		s := l.pos
		for l.pos < len(l.src) && (isNameByte(l.src[l.pos]) || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos == s {
			return token{kind: tokError, text: "empty language tag", off: start}
		}
		return token{kind: tokLiteral, lit: rdf.NewLangLiteral(lex, l.src[s:l.pos]), off: start}
	}
	if strings.HasPrefix(l.src[l.pos:], "^^<") {
		l.pos += 3
		end := strings.IndexByte(l.src[l.pos:], '>')
		if end < 0 {
			return token{kind: tokError, text: "unterminated datatype IRI", off: start}
		}
		dt := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{kind: tokLiteral, lit: rdf.NewTypedLiteral(lex, dt), off: start}
	}
	return token{kind: tokLiteral, lit: rdf.NewLiteral(lex), off: start}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isNameByte(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
