package sparql

import (
	"testing"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// FuzzParse checks the fragment parser never panics and that anything it
// accepts validates, prints, and re-parses to the same shape.
func FuzzParse(f *testing.F) {
	f.Add(fig5Query)
	f.Add(`SELECT COUNT(?x) WHERE { ?x <p> ?y }`)
	f.Add(`SELECT ?g SUM(?x) WHERE { ?s <v> ?x . ?s <c> ?g } GROUP BY ?g`)
	f.Add(`SELECT AVG(?x) WHERE { ?s <v> ?x }`)
	f.Add(`select count(distinct ?x) where { ?x a <C> . }`)
	f.Add(`SELECT COUNT(?x) WHERE { ?s ?p "lit"@en }`)
	f.Add(`SELECT`)
	f.Add(`SELECT COUNT(?x WHERE`)
	f.Fuzz(func(t *testing.T, src string) {
		d := rdf.NewDict()
		p, err := Parse(src, d)
		if err != nil {
			return
		}
		if err := p.Query.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid query: %v\nsrc: %q", err, src)
		}
		printed := Print(p.Query, d, p.Names)
		p2, err := Parse(printed, d)
		if err != nil {
			t.Fatalf("printed form failed to parse: %v\nprinted: %q", err, printed)
		}
		if len(p2.Query.Patterns) != len(p.Query.Patterns) ||
			p2.Query.Distinct != p.Query.Distinct ||
			p2.Query.Agg != p.Query.Agg ||
			(p.Query.Alpha == query.NoVar) != (p2.Query.Alpha == query.NoVar) {
			t.Fatalf("round trip changed shape:\nsrc: %q\nprinted: %q", src, printed)
		}
	})
}
