package sparql

import (
	"testing"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// FuzzParse checks the fragment parser never panics and that anything it
// accepts validates, prints, and re-parses to the same shape — including
// the extended surface (FILTER, UNION, property paths).
func FuzzParse(f *testing.F) {
	f.Add(fig5Query)
	f.Add(`SELECT COUNT(?x) WHERE { ?x <p> ?y }`)
	f.Add(`SELECT ?g SUM(?x) WHERE { ?s <v> ?x . ?s <c> ?g } GROUP BY ?g`)
	f.Add(`SELECT AVG(?x) WHERE { ?s <v> ?x }`)
	f.Add(`select count(distinct ?x) where { ?x a <C> . }`)
	f.Add(`SELECT COUNT(?x) WHERE { ?s ?p "lit"@en }`)
	f.Add(`SELECT`)
	f.Add(`SELECT COUNT(?x WHERE`)
	// FILTER comparisons and arithmetic.
	f.Add(`SELECT COUNT(?x) WHERE { ?s <v> ?x FILTER(?x > 3) }`)
	f.Add(`SELECT ?g COUNT(?x) WHERE { ?s <v> ?x . ?s <c> ?g FILTER(?x * 2 <= 10 + 1) } GROUP BY ?g`)
	f.Add(`SELECT COUNT(?x) WHERE { ?s <v> ?x FILTER(?s != <bad>) FILTER(?x >= 0 - 1.5) }`)
	f.Add(`SELECT COUNT(?x) WHERE { ?s <v> ?x FILTER(?x = "lit") }`)
	f.Add(`SELECT COUNT(?x) WHERE { ?s <v> ?x FILTER(?x > ) }`)
	f.Add(`SELECT COUNT(?x) WHERE { ?s <v> ?x FILTER(?y < 1) }`)
	// UNION of group graph patterns.
	f.Add(`SELECT COUNT(?o) WHERE { { ?s <p> ?o } UNION { ?o <q> ?z } }`)
	f.Add(`SELECT ?g COUNT(?o) WHERE { { ?s <p> ?o . ?s <c> ?g } UNION { ?o <q> ?g } } GROUP BY ?g`)
	f.Add(`SELECT COUNT(?o) WHERE { { ?s <p> ?o } UNION { ?o <q> ?z } UNION { ?z <r> ?o FILTER(?o > 1) } }`)
	f.Add(`SELECT COUNT(?o) WHERE { { ?s <p> ?o } UNION }`)
	// Fixed-length property paths.
	f.Add(`SELECT COUNT(?o) WHERE { ?s <p>/<q> ?o }`)
	f.Add(`SELECT ?s COUNT(?o) WHERE { ?s <p>{3} ?o } GROUP BY ?s`)
	f.Add(`SELECT COUNT(?o) WHERE { ?s <p>/<q>{2}/<r> ?o }`)
	f.Add(`SELECT COUNT(?o) WHERE { ?s <p>{0} ?o }`)
	f.Add(`SELECT COUNT(?o) WHERE { ?s <p>/ ?o }`)
	f.Fuzz(func(t *testing.T, src string) {
		d := rdf.NewDict()
		p, err := Parse(src, d)
		if err != nil {
			return
		}
		u := p.Union()
		if err := u.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid query: %v\nsrc: %q", err, src)
		}
		printed := PrintUnion(u, d, p.Names)
		p2, err := Parse(printed, d)
		if err != nil {
			t.Fatalf("printed form failed to parse: %v\nprinted: %q", err, printed)
		}
		if len(p2.Branches) != len(p.Branches) {
			t.Fatalf("round trip changed branch count:\nsrc: %q\nprinted: %q", src, printed)
		}
		for i, q := range p.Branches {
			q2 := p2.Branches[i]
			if len(q2.Patterns) != len(q.Patterns) ||
				len(q2.Filters) != len(q.Filters) ||
				q2.Distinct != q.Distinct ||
				q2.Agg != q.Agg ||
				(q.Alpha == query.NoVar) != (q2.Alpha == query.NoVar) {
				t.Fatalf("round trip changed branch %d shape:\nsrc: %q\nprinted: %q", i, src, printed)
			}
		}
	})
}
