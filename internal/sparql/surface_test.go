package sparql

import (
	"strings"
	"testing"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// TestParseFilter covers the FILTER grammar: comparisons, conjunctions,
// arithmetic, literals and IRIs as operands.
func TestParseFilter(t *testing.T) {
	d := rdf.NewDict()
	p, err := Parse(`SELECT COUNT(?y) WHERE { ?x <p> ?y . FILTER(?y > 5) }`, d)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Query
	if len(q.Filters) != 1 {
		t.Fatalf("got %d filters, want 1", len(q.Filters))
	}
	f := q.Filters[0]
	if f.Op != query.CmpGt || f.L.Kind != query.ExprVar || f.R.Kind != query.ExprNum || f.R.Num != 5 {
		t.Fatalf("unexpected filter %s", f.String())
	}

	// Conjunction splits into separate filters; arithmetic builds a tree.
	p, err = Parse(`SELECT COUNT(?y) WHERE {
		?x <p> ?y . ?x <q> ?z .
		FILTER(?y + ?z * 2 <= 10 && ?x != <http://e/a> && ?y >= 0 - 3)
	}`, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Query.Filters) != 3 {
		t.Fatalf("got %d filters, want 3", len(p.Query.Filters))
	}
	if p.Query.Filters[0].L.Kind != query.ExprArith || p.Query.Filters[0].L.R.Op != query.ArithMul {
		t.Fatalf("precedence wrong: %s", p.Query.Filters[0].String())
	}
	if p.Query.Filters[1].Op != query.CmpNe || p.Query.Filters[1].R.Kind != query.ExprTerm {
		t.Fatalf("IRI operand wrong: %s", p.Query.Filters[1].String())
	}

	// String equality against a literal; unary minus; parenthesized sums.
	p, err = Parse(`SELECT COUNT(?y) WHERE {
		?x <name> ?y . ?x <age> ?n .
		FILTER(?y = "Alice") FILTER((?n + 1) * 2 < -4)
	}`, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Query.Filters) != 2 {
		t.Fatalf("got %d filters, want 2", len(p.Query.Filters))
	}
	if p.Query.Filters[1].R.Kind != query.ExprNum || p.Query.Filters[1].R.Num != -4 {
		t.Fatalf("unary minus wrong: %s", p.Query.Filters[1].String())
	}
}

// TestParseFilterErrors pins positioned errors for the new grammar.
func TestParseFilterErrors(t *testing.T) {
	d := rdf.NewDict()
	cases := []struct{ src, want string }{
		{`SELECT COUNT(?y) WHERE { ?x <p> ?y . FILTER(?y) }`, "comparison"},
		{`SELECT COUNT(?y) WHERE { ?x <p> ?y . FILTER(?y > ) }`, "operand"},
		{`SELECT COUNT(?y) WHERE { ?x <p> ?y . FILTER(?z > 1) }`, "no pattern"},
		{`SELECT COUNT(?y) WHERE { ?x <p> ?y . FILTER(?y ! 1) }`, "'='"},
		{`SELECT COUNT(?y) WHERE { ?x <p> ?y . FILTER(1 > 2) }`, "no variable"},
	}
	for _, c := range cases {
		_, err := Parse(c.src, d)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want mention of %q", c.src, err, c.want)
		}
	}
}

// TestParsePath covers fixed-length property paths: /-chains and {n}
// repetitions desugar into fresh-variable chains.
func TestParsePath(t *testing.T) {
	d := rdf.NewDict()
	p, err := Parse(`SELECT COUNT(?y) WHERE { ?x <p>/<q> ?y }`, d)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Query
	if len(q.Patterns) != 2 {
		t.Fatalf("got %d patterns, want 2", len(q.Patterns))
	}
	// ?x <p> ?_p0 . ?_p0 <q> ?y
	if !q.Patterns[0].O.IsVar() || q.Patterns[0].O.Var != q.Patterns[1].S.Var {
		t.Fatalf("path joint not chained: %v", q.Patterns)
	}
	joint := q.Patterns[0].O.Var
	if name := p.VarName(joint); !strings.HasPrefix(name, "_p") {
		t.Fatalf("fresh var name = %q, want _p prefix", name)
	}

	p, err = Parse(`SELECT COUNT(?y) WHERE { ?x <p>{3} ?y }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Query.Patterns) != 3 {
		t.Fatalf("{3} expanded to %d patterns, want 3", len(p.Query.Patterns))
	}
	for _, pat := range p.Query.Patterns {
		if pat.P.IsVar() {
			t.Fatal("path patterns must have constant predicates")
		}
	}

	p, err = Parse(`SELECT COUNT(?y) WHERE { ?x <p>{2}/<q> ?y }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Query.Patterns) != 3 {
		t.Fatalf("{2}/<q> expanded to %d patterns, want 3", len(p.Query.Patterns))
	}

	// A user variable named like a fresh one does not collide.
	p, err = Parse(`SELECT COUNT(?_p0) WHERE { ?x <p>/<q> ?_p0 }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Query.Patterns[0].O.Var == p.Names["_p0"] {
		t.Fatal("fresh var collided with user ?_p0")
	}

	// Errors: zero/huge repetitions, variable path elements.
	for _, src := range []string{
		`SELECT COUNT(?y) WHERE { ?x <p>{0} ?y }`,
		`SELECT COUNT(?y) WHERE { ?x <p>{99} ?y }`,
		`SELECT COUNT(?y) WHERE { ?x <p>/?v ?y }`,
		`SELECT COUNT(?y) WHERE { ?x <p>{2.5} ?y }`,
	} {
		if _, err := Parse(src, d); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestParseUnion covers UNION of group graph patterns.
func TestParseUnion(t *testing.T) {
	d := rdf.NewDict()
	p, err := Parse(`SELECT ?a COUNT(?y) WHERE {
		{ ?a <p> ?y }
		UNION
		{ ?a <q> ?y . FILTER(?y > 1) }
	} GROUP BY ?a`, d)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsUnion() || len(p.Branches) != 2 {
		t.Fatalf("got %d branches, want 2", len(p.Branches))
	}
	if p.Query != p.Branches[0] {
		t.Fatal("Parsed.Query must alias the first branch")
	}
	if len(p.Branches[1].Filters) != 1 {
		t.Fatal("branch filter lost")
	}
	for _, q := range p.Branches {
		if q.Alpha == query.NoVar || q.Alpha != p.Names["a"] {
			t.Fatalf("branch Alpha = %d, want %d", q.Alpha, p.Names["a"])
		}
	}
	if err := p.Union().Validate(); err != nil {
		t.Fatal(err)
	}

	// Single braced group is a 1-branch union and behaves like a plain query.
	p, err = Parse(`SELECT COUNT(?y) WHERE { { ?x <p> ?y } }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsUnion() {
		t.Fatal("single group must not be a union")
	}

	// Beta must occur in every branch.
	_, err = Parse(`SELECT COUNT(?y) WHERE { { ?x <p> ?y } UNION { ?x <q> ?z } }`, d)
	if err == nil {
		t.Fatal("union with Beta missing from a branch must fail")
	}
}

// TestPrintRoundTripSurface: printing a parsed query (filters, desugared
// paths, unions) re-parses to the same shape.
func TestPrintRoundTripSurface(t *testing.T) {
	d := rdf.NewDict()
	srcs := []string{
		`SELECT COUNT(?y) WHERE { ?x <p> ?y . FILTER(?y + 1 > 5 && ?y != "Alice") }`,
		`SELECT ?a SUM(?y) WHERE { ?a <p>/<q>{2} ?y . FILTER(?y <= 2e3) } GROUP BY ?a`,
		`SELECT ?a COUNT(?y) WHERE { { ?a <p> ?y . FILTER(?y > 0 - 1) } UNION { ?a <q> ?y } } GROUP BY ?a`,
	}
	for _, src := range srcs {
		p1, err := Parse(src, d)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := PrintUnion(p1.Union(), d, p1.Names)
		p2, err := Parse(printed, d)
		if err != nil {
			t.Fatalf("re-Parse of %q: %v", printed, err)
		}
		if len(p1.Branches) != len(p2.Branches) {
			t.Fatalf("branch count changed: %d vs %d for %q", len(p1.Branches), len(p2.Branches), printed)
		}
		for i := range p1.Branches {
			if p1.Branches[i].Signature() != p2.Branches[i].Signature() {
				t.Fatalf("signature changed:\n%s\nvs\n%s\nprinted: %s",
					p1.Branches[i].Signature(), p2.Branches[i].Signature(), printed)
			}
		}
	}
}

// TestVarNameReverse checks the O(1) reverse table.
func TestVarNameReverse(t *testing.T) {
	d := rdf.NewDict()
	p, err := Parse(`SELECT ?a COUNT(?b) WHERE { ?a <p> ?b . ?b <q> ?c } GROUP BY ?a`, d)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range p.Names {
		if got := p.VarName(v); got != name {
			t.Errorf("VarName(%d) = %q, want %q", v, got, name)
		}
	}
	if got := p.VarName(query.Var(99)); got != "v99" {
		t.Errorf("VarName(99) = %q, want fallback v99", got)
	}
}
