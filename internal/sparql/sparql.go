// Package sparql parses and prints the SPARQL fragment of the paper's
// exploration queries (Fig. 4):
//
//	SELECT ?α COUNT(DISTINCT ?β) WHERE {
//	    a1 b1 c1 . a2 b2 c2 . ... an bn cn .
//	} GROUP BY ?α
//
// The grouping clause is optional (then only the count is selected), the
// DISTINCT keyword is optional, and each term is a variable (?name), an IRI
// (<...>), the keyword `a` (rdf:type), or a literal ("..." with optional
// @lang or ^^<datatype>) in the object position.
//
// This is deliberately a fragment parser, not a SPARQL implementation: the
// engines in this repository only evaluate Fig. 4 queries, and a parser for
// just that shape keeps error messages precise.
package sparql

import (
	"fmt"
	"strings"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// Parsed is the result of parsing: the query plus the variable-name table.
type Parsed struct {
	Query *query.Query
	// Names maps variable names (without '?') to variable indices.
	Names map[string]query.Var
}

// VarName returns the name of variable v, or its index as a fallback.
func (p *Parsed) VarName(v query.Var) string {
	for name, vv := range p.Names {
		if vv == v {
			return name
		}
	}
	return fmt.Sprintf("v%d", v)
}

// Parse parses the fragment, interning constants into d (constants absent
// from the data will simply match nothing).
func Parse(src string, d *rdf.Dict) (*Parsed, error) {
	p := &parser{lex: newLexer(src), dict: d, names: map[string]query.Var{}}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &Parsed{Query: q, Names: p.names}, nil
}

type parser struct {
	lex   *lexer
	dict  *rdf.Dict
	names map[string]query.Var
}

func (p *parser) varOf(name string) query.Var {
	if v, ok := p.names[name]; ok {
		return v
	}
	v := query.Var(len(p.names))
	p.names[name] = v
	return v
}

func (p *parser) parseQuery() (*query.Query, error) {
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	q := &query.Query{Alpha: query.NoVar, Beta: query.NoVar}
	// Optional group variable before COUNT.
	tok := p.lex.peek()
	if tok.kind == tokVar {
		p.lex.next()
		q.Alpha = p.varOf(tok.text)
	}
	aggTok := p.lex.next()
	switch {
	case aggTok.isKeyword("COUNT"):
		q.Agg = query.AggCount
	case aggTok.isKeyword("SUM"):
		q.Agg = query.AggSum
	case aggTok.isKeyword("AVG"):
		q.Agg = query.AggAvg
	default:
		return nil, p.errf(aggTok, "expected COUNT, SUM or AVG, got %s", aggTok)
	}
	if err := p.punct("("); err != nil {
		return nil, err
	}
	if p.lex.peek().isKeyword("DISTINCT") {
		p.lex.next()
		q.Distinct = true
	}
	tok = p.lex.next()
	if tok.kind != tokVar {
		return nil, p.errf(tok, "expected counted variable, got %s", tok)
	}
	q.Beta = p.varOf(tok.text)
	if err := p.punct(")"); err != nil {
		return nil, err
	}
	if err := p.keyword("WHERE"); err != nil {
		return nil, err
	}
	if err := p.punct("{"); err != nil {
		return nil, err
	}
	for {
		tok := p.lex.peek()
		if tok.kind == tokPunct && tok.text == "}" {
			p.lex.next()
			break
		}
		if tok.kind == tokEOF {
			return nil, p.errf(tok, "unterminated WHERE block")
		}
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, pat)
		// Patterns are '.'-separated; the final dot is optional.
		if p.lex.peek().kind == tokPunct && p.lex.peek().text == "." {
			p.lex.next()
		}
	}
	// Optional GROUP BY.
	if p.lex.peek().isKeyword("GROUP") {
		p.lex.next()
		if err := p.keyword("BY"); err != nil {
			return nil, err
		}
		tok := p.lex.next()
		if tok.kind != tokVar {
			return nil, p.errf(tok, "expected variable after GROUP BY")
		}
		v, ok := p.names[tok.text]
		if !ok {
			return nil, p.errf(tok, "GROUP BY variable ?%s not used in the query", tok.text)
		}
		if q.Alpha != query.NoVar && q.Alpha != v {
			return nil, p.errf(tok, "GROUP BY ?%s does not match the selected variable", tok.text)
		}
		q.Alpha = v
	} else if q.Alpha != query.NoVar {
		return nil, p.errf(p.lex.peek(), "selected variable requires a GROUP BY clause")
	}
	if tok := p.lex.next(); tok.kind != tokEOF {
		return nil, p.errf(tok, "unexpected trailing %s", tok)
	}
	return q, nil
}

func (p *parser) parsePattern() (query.Pattern, error) {
	s, err := p.parseTerm(false)
	if err != nil {
		return query.Pattern{}, err
	}
	pr, err := p.parseTerm(false)
	if err != nil {
		return query.Pattern{}, err
	}
	o, err := p.parseTerm(true)
	if err != nil {
		return query.Pattern{}, err
	}
	return query.Pattern{S: s, P: pr, O: o}, nil
}

func (p *parser) parseTerm(allowLiteral bool) (query.Atom, error) {
	tok := p.lex.next()
	switch tok.kind {
	case tokVar:
		return query.V(p.varOf(tok.text)), nil
	case tokIRI:
		return query.C(p.dict.InternIRI(tok.text)), nil
	case tokA:
		return query.C(p.dict.InternIRI(rdf.RDFType)), nil
	case tokLiteral:
		if !allowLiteral {
			return query.Atom{}, p.errf(tok, "literals are only allowed in the object position")
		}
		return query.C(p.dict.Intern(tok.lit)), nil
	default:
		return query.Atom{}, p.errf(tok, "expected a term, got %s", tok)
	}
}

func (p *parser) keyword(kw string) error {
	tok := p.lex.next()
	if !tok.isKeyword(kw) {
		return p.errf(tok, "expected %s, got %s", kw, tok)
	}
	return nil
}

func (p *parser) punct(s string) error {
	tok := p.lex.next()
	if tok.kind != tokPunct || tok.text != s {
		return p.errf(tok, "expected %q, got %s", s, tok)
	}
	return nil
}

func (p *parser) errf(tok token, format string, args ...any) error {
	return fmt.Errorf("sparql: offset %d: %s", tok.off, fmt.Sprintf(format, args...))
}

// Print renders a query in the fragment's concrete syntax, resolving
// constants through the dictionary and variables through names (falling
// back to ?vN).
func Print(q *query.Query, d *rdf.Dict, names map[string]query.Var) string {
	nameOf := func(v query.Var) string {
		for n, vv := range names {
			if vv == v {
				return n
			}
		}
		return fmt.Sprintf("v%d", v)
	}
	atom := func(a query.Atom) string {
		if a.IsVar() {
			return "?" + nameOf(a.Var)
		}
		return d.Term(a.ID).String()
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Alpha != query.NoVar {
		b.WriteString("?" + nameOf(q.Alpha) + " ")
	}
	b.WriteString(q.Agg.String())
	b.WriteString("(")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	b.WriteString("?" + nameOf(q.Beta) + ") WHERE {\n")
	for _, p := range q.Patterns {
		fmt.Fprintf(&b, "  %s %s %s .\n", atom(p.S), atom(p.P), atom(p.O))
	}
	b.WriteString("}")
	if q.Alpha != query.NoVar {
		b.WriteString(" GROUP BY ?" + nameOf(q.Alpha))
	}
	return b.String()
}
