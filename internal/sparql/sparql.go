// Package sparql parses and prints the SPARQL fragment of the paper's
// exploration queries (Fig. 4), extended with the query surface real query
// logs carry:
//
//	SELECT ?α COUNT(DISTINCT ?β) WHERE {
//	    a1 b1 c1 . a2 b2 c2 . ... an bn cn .
//	    FILTER(?x + 1 > 5 && ?name != "Alice")
//	} GROUP BY ?α
//
// The grouping clause is optional (then only the aggregate is selected),
// the DISTINCT keyword is optional, and each term is a variable (?name), an
// IRI (<...>), the keyword `a` (rdf:type), or a literal ("..." with
// optional @lang or ^^<datatype>) in the object position.
//
// Three constructs extend the fragment:
//
//   - FILTER(rel && rel && ...): each rel compares two arithmetic
//     expressions over variables, numeric constants, IRIs and literals with
//     =, !=, <, <=, > or >=. Ordered comparisons and arithmetic apply to
//     values the store's numeric-literal precompute knows; parentheses
//     group arithmetic (not comparisons).
//   - Fixed-length property paths in the predicate position: <p>/<q>
//     chains, <p>{n} repetitions (1 ≤ n ≤ 8) and combinations, desugared at
//     parse time into fresh-variable pattern chains (the fresh variables
//     are named _p0, _p1, ... avoiding collisions). Path elements must be
//     IRIs (or `a`).
//   - UNION of group graph patterns: WHERE { {...} UNION {...} }. The WHERE
//     block either is a plain pattern body or consists entirely of braced
//     groups joined by UNION; each group is a full fragment body (patterns,
//     filters, paths) and the SELECT clause is shared.
//
// This is deliberately a fragment parser, not a SPARQL implementation: the
// engines in this repository evaluate exactly this surface, and a parser
// for just that shape keeps error messages precise.
package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// maxPathHops caps the number of patterns one property path may desugar
// into, bounding parser output size against adversarial input (p{8}/q{8}).
const maxPathHops = 16

// maxPathRepeat caps one {n} repetition.
const maxPathRepeat = 8

// Parsed is the result of parsing: the query (or union branches) plus the
// variable-name tables.
type Parsed struct {
	// Query is the parsed query; for UNION queries it is the first branch
	// (legacy callers that pre-date UNION keep working on plain queries).
	Query *query.Query
	// Branches holds every branch of a UNION query, in source order; it has
	// exactly one entry for plain queries. All branches share one variable
	// namespace (Names/VarName).
	Branches []*query.Query
	// Names maps variable names (without '?') to variable indices.
	Names map[string]query.Var
	// rev is the inverse of Names, built once at parse time: VarName is
	// called per group bar during chart rendering, where a linear scan over
	// Names would be quadratic in the variable count.
	rev []string
}

// IsUnion reports whether the source had UNION branches.
func (p *Parsed) IsUnion() bool { return len(p.Branches) > 1 }

// Union wraps the branches as a query.UnionQuery (single-branch for plain
// queries), the IR handed to CompileUnion.
func (p *Parsed) Union() *query.UnionQuery {
	return &query.UnionQuery{Branches: p.Branches}
}

// VarName returns the name of variable v, or its index as a fallback.
func (p *Parsed) VarName(v query.Var) string {
	if int(v) >= 0 && int(v) < len(p.rev) && p.rev[v] != "" {
		return p.rev[v]
	}
	return fmt.Sprintf("v%d", v)
}

// buildRev populates the reverse name table from Names.
func (p *Parsed) buildRev() {
	p.rev = make([]string, len(p.Names))
	for name, v := range p.Names {
		if int(v) >= 0 && int(v) < len(p.rev) {
			p.rev[v] = name
		}
	}
}

// Parse parses the fragment, interning constants into d (constants absent
// from the data will simply match nothing).
func Parse(src string, d *rdf.Dict) (*Parsed, error) {
	p := &parser{lex: newLexer(src), dict: d, names: map[string]query.Var{}}
	branches, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.renameFreshVars()
	if len(branches) > 1 {
		u := &query.UnionQuery{Branches: branches}
		if err := u.Validate(); err != nil {
			return nil, err
		}
	} else {
		if err := branches[0].Validate(); err != nil {
			return nil, err
		}
	}
	out := &Parsed{Query: branches[0], Branches: branches, Names: p.names}
	out.buildRev()
	return out, nil
}

type parser struct {
	lex   *lexer
	dict  *rdf.Dict
	names map[string]query.Var
	// fresh counts the placeholder variables minted by path desugaring;
	// their temporary names contain a NUL byte no token can carry, and
	// renameFreshVars swaps in collision-free printable names at the end.
	fresh int
}

func (p *parser) varOf(name string) query.Var {
	if v, ok := p.names[name]; ok {
		return v
	}
	v := query.Var(len(p.names))
	p.names[name] = v
	return v
}

// freshVar mints a path-joint variable under a placeholder name.
func (p *parser) freshVar() query.Var {
	name := fmt.Sprintf("\x00p%d", p.fresh)
	p.fresh++
	return p.varOf(name)
}

// renameFreshVars gives path placeholders printable names (_p0, _p1, ...)
// that do not collide with user variables, so Print output re-parses.
func (p *parser) renameFreshVars() {
	if p.fresh == 0 {
		return
	}
	next := 0
	for i := 0; i < p.fresh; i++ {
		old := fmt.Sprintf("\x00p%d", i)
		v, ok := p.names[old]
		if !ok {
			continue
		}
		var name string
		for {
			name = fmt.Sprintf("_p%d", next)
			next++
			if _, taken := p.names[name]; !taken {
				break
			}
		}
		delete(p.names, old)
		p.names[name] = v
	}
}

// parseQuery parses the whole source and returns the union branches (one
// branch for plain queries).
func (p *parser) parseQuery() ([]*query.Query, error) {
	if err := p.keyword("SELECT"); err != nil {
		return nil, err
	}
	alpha, beta := query.NoVar, query.NoVar
	var agg query.AggFunc
	distinct := false
	// Optional group variable before the aggregate.
	tok := p.lex.peek()
	if tok.kind == tokVar {
		p.lex.next()
		alpha = p.varOf(tok.text)
	}
	aggTok := p.lex.next()
	switch {
	case aggTok.isKeyword("COUNT"):
		agg = query.AggCount
	case aggTok.isKeyword("SUM"):
		agg = query.AggSum
	case aggTok.isKeyword("AVG"):
		agg = query.AggAvg
	default:
		return nil, p.errf(aggTok, "expected COUNT, SUM or AVG, got %s", aggTok)
	}
	if err := p.punct("("); err != nil {
		return nil, err
	}
	if p.lex.peek().isKeyword("DISTINCT") {
		p.lex.next()
		distinct = true
	}
	tok = p.lex.next()
	if tok.kind != tokVar {
		return nil, p.errf(tok, "expected counted variable, got %s", tok)
	}
	beta = p.varOf(tok.text)
	if err := p.punct(")"); err != nil {
		return nil, err
	}
	if err := p.keyword("WHERE"); err != nil {
		return nil, err
	}
	if err := p.punct("{"); err != nil {
		return nil, err
	}
	newBranch := func() *query.Query {
		return &query.Query{Alpha: alpha, Beta: beta, Distinct: distinct, Agg: agg}
	}
	var branches []*query.Query
	if p.lex.peek().isPunct("{") {
		// Union of braced groups: { {body} UNION {body} ... }.
		for {
			if err := p.punct("{"); err != nil {
				return nil, err
			}
			q := newBranch()
			if err := p.parseBody(q); err != nil {
				return nil, err
			}
			branches = append(branches, q)
			tok := p.lex.peek()
			if tok.isKeyword("UNION") {
				p.lex.next()
				continue
			}
			break
		}
		if err := p.punct("}"); err != nil {
			return nil, err
		}
	} else {
		q := newBranch()
		if err := p.parseBody(q); err != nil {
			return nil, err
		}
		branches = append(branches, q)
	}
	// Optional GROUP BY.
	if p.lex.peek().isKeyword("GROUP") {
		p.lex.next()
		if err := p.keyword("BY"); err != nil {
			return nil, err
		}
		tok := p.lex.next()
		if tok.kind != tokVar {
			return nil, p.errf(tok, "expected variable after GROUP BY")
		}
		v, ok := p.names[tok.text]
		if !ok {
			return nil, p.errf(tok, "GROUP BY variable ?%s not used in the query", tok.text)
		}
		if alpha != query.NoVar && alpha != v {
			return nil, p.errf(tok, "GROUP BY ?%s does not match the selected variable", tok.text)
		}
		for _, q := range branches {
			q.Alpha = v
		}
	} else if alpha != query.NoVar {
		return nil, p.errf(p.lex.peek(), "selected variable requires a GROUP BY clause")
	}
	if tok := p.lex.next(); tok.kind != tokEOF {
		return nil, p.errf(tok, "unexpected trailing %s", tok)
	}
	return branches, nil
}

// parseBody parses one group body — triples (with paths) and FILTERs —
// stopping at (and consuming) the closing '}'.
func (p *parser) parseBody(q *query.Query) error {
	for {
		tok := p.lex.peek()
		switch {
		case tok.isPunct("}"):
			p.lex.next()
			return nil
		case tok.kind == tokEOF:
			return p.errf(tok, "unterminated WHERE block: missing '}'")
		case tok.isKeyword("FILTER"):
			p.lex.next()
			if err := p.parseFilter(q); err != nil {
				return err
			}
		default:
			if err := p.parseTriple(q); err != nil {
				return err
			}
		}
		// Statements are '.'-separated; the final dot is optional, and a
		// dot after FILTER is tolerated.
		if p.lex.peek().isPunct(".") {
			p.lex.next()
		}
	}
}

// parseTriple parses one triple — possibly with a property path in the
// predicate position — and appends the desugared patterns to q.
func (p *parser) parseTriple(q *query.Query) error {
	s, err := p.parseTerm(false)
	if err != nil {
		return err
	}
	elts, single, err := p.parsePredicate()
	if err != nil {
		return err
	}
	o, err := p.parseTerm(true)
	if err != nil {
		return err
	}
	if elts == nil {
		q.Patterns = append(q.Patterns, query.Pattern{S: s, P: single, O: o})
		return nil
	}
	hops := 0
	for _, e := range elts {
		hops += e.count
	}
	prev := s
	hop := 0
	for _, e := range elts {
		for r := 0; r < e.count; r++ {
			hop++
			next := o
			if hop < hops {
				next = query.V(p.freshVar())
			}
			q.Patterns = append(q.Patterns, query.Pattern{S: prev, P: query.C(e.pred), O: next})
			prev = next
		}
	}
	return nil
}

// pathElt is one element of a property path: a predicate IRI repeated
// count times.
type pathElt struct {
	pred  rdf.ID
	count int
}

// parsePredicate parses the predicate position. It returns either a path
// (elts non-nil: a '/'-chain of IRIs with optional {n} repetitions) or a
// single predicate atom (variable or constant) in single.
func (p *parser) parsePredicate() (elts []pathElt, single query.Atom, err error) {
	tok := p.lex.next()
	var first query.Atom
	switch tok.kind {
	case tokVar:
		// Variables cannot start a path; `?s ?p ?o` stays a plain pattern.
		return nil, query.V(p.varOf(tok.text)), nil
	case tokIRI:
		first = query.C(p.dict.InternIRI(tok.text))
	case tokA:
		first = query.C(p.dict.InternIRI(rdf.RDFType))
	default:
		return nil, query.Atom{}, p.errf(tok, "expected a predicate, got %s", tok)
	}
	if !p.lex.peek().isOp("/") && !p.lex.peek().isPunct("{") {
		return nil, first, nil
	}
	// Path mode: the first element plus any following /element parts, each
	// with an optional {n}.
	hops := 0
	appendElt := func(pred rdf.ID, at token) error {
		count := 1
		if p.lex.peek().isPunct("{") {
			p.lex.next()
			ntok := p.lex.next()
			if ntok.kind != tokNum || ntok.num != float64(int(ntok.num)) || int(ntok.num) < 1 {
				return p.errf(ntok, "expected a positive integer repetition, got %s", ntok)
			}
			count = int(ntok.num)
			if count > maxPathRepeat {
				return p.errf(ntok, "path repetition {%d} exceeds the maximum {%d}", count, maxPathRepeat)
			}
			if err := p.punct("}"); err != nil {
				return err
			}
		}
		hops += count
		if hops > maxPathHops {
			return p.errf(at, "property path expands to %d+ patterns; the maximum is %d", hops, maxPathHops)
		}
		elts = append(elts, pathElt{pred: pred, count: count})
		return nil
	}
	if err := appendElt(first.ID, tok); err != nil {
		return nil, query.Atom{}, err
	}
	for p.lex.peek().isOp("/") {
		p.lex.next()
		tok := p.lex.next()
		var pred rdf.ID
		switch tok.kind {
		case tokIRI:
			pred = p.dict.InternIRI(tok.text)
		case tokA:
			pred = p.dict.InternIRI(rdf.RDFType)
		default:
			return nil, query.Atom{}, p.errf(tok, "property path elements must be IRIs, got %s", tok)
		}
		if err := appendElt(pred, tok); err != nil {
			return nil, query.Atom{}, err
		}
	}
	return elts, query.Atom{}, nil
}

// parseFilter parses FILTER(rel && rel && ...) and appends one
// query.Filter per conjunct to q.
func (p *parser) parseFilter(q *query.Query) error {
	if err := p.punct("("); err != nil {
		return err
	}
	for {
		f, err := p.parseRel()
		if err != nil {
			return err
		}
		q.Filters = append(q.Filters, f)
		tok := p.lex.peek()
		if tok.isOp("&&") {
			p.lex.next()
			continue
		}
		break
	}
	return p.punct(")")
}

// parseRel parses one comparison: expr cmp expr.
func (p *parser) parseRel() (query.Filter, error) {
	l, err := p.parseSum()
	if err != nil {
		return query.Filter{}, err
	}
	tok := p.lex.next()
	var op query.CmpOp
	switch {
	case tok.isOp("="):
		op = query.CmpEq
	case tok.isOp("!="):
		op = query.CmpNe
	case tok.isOp("<"):
		op = query.CmpLt
	case tok.isOp("<="):
		op = query.CmpLe
	case tok.isOp(">"):
		op = query.CmpGt
	case tok.isOp(">="):
		op = query.CmpGe
	default:
		return query.Filter{}, p.errf(tok, "expected a comparison operator, got %s", tok)
	}
	r, err := p.parseSum()
	if err != nil {
		return query.Filter{}, err
	}
	return query.Filter{Op: op, L: l, R: r}, nil
}

func (p *parser) parseSum() (*query.Expr, error) {
	l, err := p.parseProduct()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.lex.peek()
		var op query.ArithOp
		switch {
		case tok.isOp("+"):
			op = query.ArithAdd
		case tok.isOp("-"):
			op = query.ArithSub
		default:
			return l, nil
		}
		p.lex.next()
		r, err := p.parseProduct()
		if err != nil {
			return nil, err
		}
		l = query.EArith(op, l, r)
	}
}

func (p *parser) parseProduct() (*query.Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.lex.peek()
		var op query.ArithOp
		switch {
		case tok.isOp("*"):
			op = query.ArithMul
		case tok.isOp("/"):
			op = query.ArithDiv
		default:
			return l, nil
		}
		p.lex.next()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = query.EArith(op, l, r)
	}
}

func (p *parser) parseFactor() (*query.Expr, error) {
	tok := p.lex.next()
	switch {
	case tok.kind == tokVar:
		return query.EVar(p.varOf(tok.text)), nil
	case tok.kind == tokNum:
		return query.ENum(tok.num), nil
	case tok.isOp("-"):
		f, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if f.Kind == query.ExprNum {
			return query.ENum(-f.Num), nil
		}
		return query.EArith(query.ArithSub, query.ENum(0), f), nil
	case tok.kind == tokIRI:
		return query.ETerm(p.dict.InternIRI(tok.text)), nil
	case tok.kind == tokLiteral:
		return query.ETerm(p.dict.Intern(tok.lit)), nil
	case tok.isPunct("("):
		e, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if err := p.punct(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf(tok, "expected a filter operand, got %s", tok)
	}
}

func (p *parser) parseTerm(allowLiteral bool) (query.Atom, error) {
	tok := p.lex.next()
	switch tok.kind {
	case tokVar:
		return query.V(p.varOf(tok.text)), nil
	case tokIRI:
		return query.C(p.dict.InternIRI(tok.text)), nil
	case tokA:
		return query.C(p.dict.InternIRI(rdf.RDFType)), nil
	case tokLiteral:
		if !allowLiteral {
			return query.Atom{}, p.errf(tok, "literals are only allowed in the object position")
		}
		return query.C(p.dict.Intern(tok.lit)), nil
	default:
		return query.Atom{}, p.errf(tok, "expected a term, got %s", tok)
	}
}

func (p *parser) keyword(kw string) error {
	tok := p.lex.next()
	if !tok.isKeyword(kw) {
		return p.errf(tok, "expected %s, got %s", kw, tok)
	}
	return nil
}

func (p *parser) punct(s string) error {
	tok := p.lex.next()
	if tok.kind != tokPunct || tok.text != s {
		return p.errf(tok, "expected %q, got %s", s, tok)
	}
	return nil
}

func (p *parser) errf(tok token, format string, args ...any) error {
	if tok.kind == tokError {
		return fmt.Errorf("sparql: offset %d: %s", tok.off, tok.text)
	}
	return fmt.Errorf("sparql: offset %d: %s", tok.off, fmt.Sprintf(format, args...))
}

// Print renders a query in the fragment's concrete syntax, resolving
// constants through the dictionary and variables through names (falling
// back to ?vN). Property paths print in desugared form; Print output
// re-parses to the same query.
func Print(q *query.Query, d *rdf.Dict, names map[string]query.Var) string {
	var b strings.Builder
	printHeader(&b, q, nameFunc(names))
	b.WriteString(" WHERE {\n")
	printBody(&b, q, d, nameFunc(names), "  ")
	b.WriteString("}")
	printGroupBy(&b, q, nameFunc(names))
	return b.String()
}

// PrintUnion renders a union query; with a single branch it matches Print.
func PrintUnion(u *query.UnionQuery, d *rdf.Dict, names map[string]query.Var) string {
	if len(u.Branches) == 1 {
		return Print(u.Branches[0], d, names)
	}
	nameOf := nameFunc(names)
	q0 := u.Branches[0]
	var b strings.Builder
	printHeader(&b, q0, nameOf)
	b.WriteString(" WHERE {\n")
	for i, q := range u.Branches {
		if i > 0 {
			b.WriteString("  UNION\n")
		}
		b.WriteString("  {\n")
		printBody(&b, q, d, nameOf, "    ")
		b.WriteString("  }\n")
	}
	b.WriteString("}")
	printGroupBy(&b, q0, nameOf)
	return b.String()
}

func nameFunc(names map[string]query.Var) func(query.Var) string {
	rev := make(map[query.Var]string, len(names))
	for n, v := range names {
		rev[v] = n
	}
	return func(v query.Var) string {
		if n, ok := rev[v]; ok {
			return n
		}
		return fmt.Sprintf("v%d", v)
	}
}

func printHeader(b *strings.Builder, q *query.Query, nameOf func(query.Var) string) {
	b.WriteString("SELECT ")
	if q.Alpha != query.NoVar {
		b.WriteString("?" + nameOf(q.Alpha) + " ")
	}
	b.WriteString(q.Agg.String())
	b.WriteString("(")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	b.WriteString("?" + nameOf(q.Beta) + ")")
}

func printGroupBy(b *strings.Builder, q *query.Query, nameOf func(query.Var) string) {
	if q.Alpha != query.NoVar {
		b.WriteString(" GROUP BY ?" + nameOf(q.Alpha))
	}
}

func printBody(b *strings.Builder, q *query.Query, d *rdf.Dict, nameOf func(query.Var) string, indent string) {
	atom := func(a query.Atom) string {
		if a.IsVar() {
			return "?" + nameOf(a.Var)
		}
		return d.Term(a.ID).String()
	}
	for _, p := range q.Patterns {
		fmt.Fprintf(b, "%s%s %s %s .\n", indent, atom(p.S), atom(p.P), atom(p.O))
	}
	for i := range q.Filters {
		f := &q.Filters[i]
		fmt.Fprintf(b, "%sFILTER(%s %s %s)\n", indent,
			printExpr(f.L, d, nameOf), f.Op, printExpr(f.R, d, nameOf))
	}
}

// printExpr renders a filter expression in concrete syntax.
func printExpr(e *query.Expr, d *rdf.Dict, nameOf func(query.Var) string) string {
	switch e.Kind {
	case query.ExprVar:
		return "?" + nameOf(e.Var)
	case query.ExprNum:
		return strconv.FormatFloat(e.Num, 'g', -1, 64)
	case query.ExprTerm:
		return d.Term(e.ID).String()
	case query.ExprArith:
		return fmt.Sprintf("(%s %s %s)",
			printExpr(e.L, d, nameOf), e.Op, printExpr(e.R, d, nameOf))
	}
	return "?!"
}
