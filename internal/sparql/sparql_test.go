package sparql

import (
	"strings"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

const fig5Query = `
SELECT ?c COUNT(DISTINCT ?o) WHERE {
  ?s <birthPlace> ?o .
  ?s rdf:type <Person> .
  ?o rdf:type ?c .
} GROUP BY ?c`

func TestParseFig5(t *testing.T) {
	d := rdf.NewDict()
	p, err := Parse(fig5Query, d)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Query
	if len(q.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3", len(q.Patterns))
	}
	if !q.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if q.Alpha != p.Names["c"] || q.Beta != p.Names["o"] {
		t.Errorf("alpha/beta = %d/%d, names=%v", q.Alpha, q.Beta, p.Names)
	}
	// Second pattern: ?s rdf:type <Person>.
	ty, ok := d.LookupIRI(rdf.RDFType)
	if !ok {
		t.Fatal("rdf:type not interned")
	}
	if q.Patterns[1].P.IsVar() || q.Patterns[1].P.ID != ty {
		t.Error("rdf:type shorthand not resolved")
	}
	if p.VarName(q.Alpha) != "c" {
		t.Errorf("VarName = %q", p.VarName(q.Alpha))
	}
}

func TestParseExecutes(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("alice", "birthPlace", "paris")
	g.AddIRIs("alice", rdf.RDFType, "Person")
	g.AddIRIs("paris", rdf.RDFType, "City")
	g.Dedup()
	p, err := Parse(fig5Query, g.Dict)
	if err != nil {
		t.Fatal(err)
	}
	// Careful: Parse interned <birthPlace> and <Person> literally; the
	// graph uses the same relative IRIs, so the query matches.
	pl, err := query.Compile(p.Query)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	res := lftj.Evaluate(st, pl)
	city, _ := g.Dict.LookupIRI("City")
	if res[city] != 1 {
		t.Errorf("res = %v, want City:1", res)
	}
}

func TestParseVariants(t *testing.T) {
	d := rdf.NewDict()
	cases := []string{
		`SELECT COUNT(?x) WHERE { ?x <p> ?y }`,                         // ungrouped, no distinct, no dot
		`select count(distinct ?x) where { ?x a <C> . }`,               // lowercase keywords, `a`
		`SELECT ?p COUNT(?s) WHERE { ?s ?p "lit"@en . } GROUP BY ?p`,   // lang literal object
		`SELECT ?p COUNT(?s) WHERE { ?s ?p "4"^^<int> . } GROUP BY ?p`, // typed literal
		`SELECT COUNT(?x) WHERE { ?c rdfs:subClassOf <D> . ?x a ?c . }`,
		`SELECT COUNT(?x) WHERE { $x <p> $y }`, // $-variables
	}
	for _, src := range cases {
		if _, err := Parse(src, d); err != nil {
			t.Errorf("Parse(%q) failed: %v", src, err)
		}
	}
}

func TestParseSumAvg(t *testing.T) {
	d := rdf.NewDict()
	p, err := Parse(`SELECT ?g SUM(?x) WHERE { ?s <v> ?x . ?s <c> ?g } GROUP BY ?g`, d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Query.Agg != query.AggSum {
		t.Errorf("Agg = %v, want SUM", p.Query.Agg)
	}
	printed := Print(p.Query, d, p.Names)
	if !strings.Contains(printed, "SUM(") {
		t.Errorf("Print = %q", printed)
	}
	p, err = Parse(`SELECT AVG(?x) WHERE { ?s <v> ?x }`, d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Query.Agg != query.AggAvg {
		t.Errorf("Agg = %v, want AVG", p.Query.Agg)
	}
	// DISTINCT is COUNT-only.
	if _, err := Parse(`SELECT SUM(DISTINCT ?x) WHERE { ?s <v> ?x }`, d); err == nil {
		t.Error("SUM(DISTINCT) accepted")
	}
	// Unknown aggregate.
	if _, err := Parse(`SELECT MAX(?x) WHERE { ?s <v> ?x }`, d); err == nil {
		t.Error("MAX accepted")
	}
}

func TestParseErrors(t *testing.T) {
	d := rdf.NewDict()
	cases := []struct{ src, want string }{
		{`COUNT(?x) WHERE { ?x <p> ?y }`, "expected SELECT"},
		{`SELECT COUNT ?x WHERE { ?x <p> ?y }`, `expected "("`},
		{`SELECT COUNT(<x>) WHERE { ?x <p> ?y }`, "expected counted variable"},
		{`SELECT COUNT(?x) WHERE { ?x <p> ?y`, "unterminated WHERE"},
		{`SELECT COUNT(?x) WHERE { ?x <p ?y }`, "unterminated IRI"},
		{`SELECT COUNT(?x) WHERE { "lit" <p> ?x }`, "object position"},
		{`SELECT ?g COUNT(?x) WHERE { ?x <p> ?g }`, "requires a GROUP BY"},
		{`SELECT ?g COUNT(?x) WHERE { ?x <p> ?g } GROUP BY ?zz`, "not used"},
		{`SELECT ?g COUNT(?x) WHERE { ?x <p> ?g . ?x <q> ?h } GROUP BY ?h`, "does not match"},
		{`SELECT COUNT(?x) WHERE { ?x <p> ?y } trailing`, "trailing"},
		{`SELECT COUNT(?x) WHERE { ?x <p> ?y } GROUP BY <c>`, "expected variable"},
		{`SELECT COUNT(?x) WHERE { ?x ?x ?y }`, "repeated"},
		{`SELECT COUNT(?) WHERE { ?x <p> ?y }`, "empty variable"},
		{`SELECT COUNT(?x) WHERE { ?x <p> "bad`, "unterminated literal"},
		{`SELECT COUNT(?x) WHERE { ?x <p> "a"@ }`, "empty language"},
		{`SELECT COUNT(?x) WHERE { ?x <p> "a"^^<d }`, "unterminated datatype"},
		{`SELECT COUNT(?x) WHERE { ?x <p> "a\q" }`, "unknown escape"},
		{`SELECT COUNT(?x) WHERE { ?x # ?y }`, "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.src, d)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want mention of %q", c.src, err, c.want)
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	d := rdf.NewDict()
	p, err := Parse(fig5Query, d)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(p.Query, d, p.Names)
	p2, err := Parse(printed, d)
	if err != nil {
		t.Fatalf("re-parse of %q failed: %v", printed, err)
	}
	if len(p2.Query.Patterns) != len(p.Query.Patterns) ||
		p2.Query.Distinct != p.Query.Distinct {
		t.Errorf("round trip changed the query:\n%s", printed)
	}
	// Same constants must resolve to the same IDs.
	for i := range p.Query.Patterns {
		a, b := p.Query.Patterns[i], p2.Query.Patterns[i]
		if a.P.IsVar() != b.P.IsVar() || (!a.P.IsVar() && a.P.ID != b.P.ID) {
			t.Errorf("pattern %d predicate drifted", i)
		}
	}
}

func TestPrintUngrouped(t *testing.T) {
	d := rdf.NewDict()
	p, err := Parse(`SELECT COUNT(?x) WHERE { ?x <p> ?y }`, d)
	if err != nil {
		t.Fatal(err)
	}
	s := Print(p.Query, d, p.Names)
	if strings.Contains(s, "GROUP BY") || strings.Contains(s, "DISTINCT") {
		t.Errorf("ungrouped print = %q", s)
	}
}

func TestVarNameFallback(t *testing.T) {
	p := &Parsed{Names: map[string]query.Var{}}
	if got := p.VarName(3); got != "v3" {
		t.Errorf("fallback name = %q", got)
	}
}
