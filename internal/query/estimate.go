package query

import (
	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// PatternCard returns the exact number of triples matching the pattern's
// constant positions, ignoring variables. This is an O(1) span lookup for
// every constant combination that the exploration fragment produces.
func PatternCard(store *index.Store, p Pattern) int {
	sConst, pConst, oConst := !p.S.IsVar(), !p.P.IsVar(), !p.O.IsVar()
	switch {
	case !sConst && !pConst && !oConst:
		return store.NumTriples()
	case sConst && !pConst && !oConst:
		return store.SpanL1(index.SPO, p.S.ID).Len()
	case !sConst && pConst && !oConst:
		return store.SpanL1(index.PSO, p.P.ID).Len()
	case !sConst && !pConst && oConst:
		return store.SpanL1(index.OPS, p.O.ID).Len()
	case sConst && pConst && !oConst:
		return store.SpanL2(index.PSO, p.P.ID, p.S.ID).Len()
	case !sConst && pConst && oConst:
		return store.SpanL2(index.POS, p.P.ID, p.O.ID).Len()
	case sConst && !pConst && oConst:
		// Not servable exactly by the four orders; use the independence
		// estimate |G_s| * |G_o| / N.
		n := store.NumTriples()
		if n == 0 {
			return 0
		}
		est := float64(store.SpanL1(index.SPO, p.S.ID).Len()) *
			float64(store.SpanL1(index.OPS, p.O.ID).Len()) / float64(n)
		return int(est + 0.5)
	default: // all constant
		if store.Contains(rdf.Triple{S: p.S.ID, P: p.P.ID, O: p.O.ID}) {
			return 1
		}
		return 0
	}
}

// PatternVarNdv estimates the number of distinct values the variable at
// position pos takes within the constant-restricted pattern. Exact where the
// statistics allow (predicate-level ndv, two-constant spans); otherwise the
// span length is used as an upper bound, matching the coarse statistics
// PostgreSQL-style estimation relies on (paper §IV-D).
func PatternVarNdv(store *index.Store, p Pattern, pos index.Pos) int {
	card := PatternCard(store, p)
	if card == 0 {
		return 0
	}
	stats := store.Stats()
	sConst, pConst, oConst := !p.S.IsVar(), !p.P.IsVar(), !p.O.IsVar()
	nConst := 0
	for _, c := range []bool{sConst, pConst, oConst} {
		if c {
			nConst++
		}
	}
	// With two constants, the free position's values are all distinct
	// (triples are unique), so ndv == card.
	if nConst >= 2 {
		return card
	}
	if pConst {
		ps := store.PredStatOf(p.P.ID)
		switch pos {
		case index.S:
			return ps.NdvS
		case index.O:
			return ps.NdvO
		}
		return 1 // the predicate itself
	}
	if nConst == 0 {
		switch pos {
		case index.S:
			return stats.NdvS
		case index.P:
			return stats.NdvP
		default:
			return stats.NdvO
		}
	}
	// One non-predicate constant (subject or object bound, e.g. the
	// ?x ?p ?o patterns of property expansions): no per-entity ndv
	// statistics are kept, so bound by the span length.
	return card
}

// EstimateSuffixSize estimates the number of full paths extending a prefix
// that has just completed step i (0-based) under bindings b, i.e. the
// estimated |Γ_δ| that Audit Join's tipping point compares against its
// threshold. The first remaining step is resolved exactly (one O(1) span
// lookup); later steps compose PostgreSQL's rule
//
//	|G_j| / max(ndv_left(join var), ndv_right(join var))
//
// where ndv_left is 1 for the step adjacent to the prefix (a single value is
// bound) and the pattern-level ndv otherwise.
func (pl *Plan) EstimateSuffixSize(store *index.Store, i int, b Bindings) float64 {
	est := 1.0
	for j := i + 1; j < len(pl.Steps); j++ {
		st := &pl.Steps[j]
		adjacent := true // whether all of st's join vars are bound in b
		for _, jv := range st.JoinVars {
			if b[jv.Var] == rdf.NoID {
				adjacent = false
			}
		}
		if adjacent && len(st.JoinVars) > 0 {
			sp, ok := st.ResolveSpan(store, b)
			if !ok {
				return 0
			}
			if st.Kind == AccessMembership {
				est *= 1
			} else {
				est *= float64(sp.Len())
			}
			continue
		}
		card := float64(PatternCard(store, st.Pattern))
		if card == 0 {
			return 0
		}
		f := card
		for _, jv := range st.JoinVars {
			ndvHere := PatternVarNdv(store, st.Pattern, jv.Pos)
			ndvThere := pl.ndvAtBindingSite(store, jv.Var)
			d := ndvHere
			if ndvThere > d {
				d = ndvThere
			}
			if d > 0 {
				f /= float64(d)
			}
		}
		est *= f
		if est == 0 {
			return 0
		}
	}
	return est
}

// SuffixEstimator is the walk-specialized, precomputed form of
// EstimateSuffixSize. Pattern cardinalities and ndv divisors are
// binding-independent, so they are folded into one factor per step at
// construction; at walk time only the steps adjacent to the prefix (all join
// variables bound) still need a span lookup. The estimator relies on the
// walk invariant that after step i exactly the variables first bound by
// steps 0..i are set — true for every Wander/Audit Join walk prefix, where
// Audit Join calls it on every step.
type SuffixEstimator struct {
	store *index.Store
	pl    *Plan
	// factor[j] is card(G_j) / ∏ max(ndv_here, ndv_binding_site) — the
	// statistics contribution of step j when it is not prefix-adjacent.
	// A zero factor means card == 0, so the whole suffix estimate is 0.
	factor []float64
	// adjFrom[j] is the earliest prefix end i at which all of step j's join
	// variables are bound; len(pl.Steps) when step j has no join variables
	// (the statistics branch then always applies).
	adjFrom []int
}

// NewSuffixEstimator precomputes the statistics factors of every step.
func (pl *Plan) NewSuffixEstimator(store *index.Store) *SuffixEstimator {
	n := len(pl.Steps)
	e := &SuffixEstimator{store: store, pl: pl, factor: make([]float64, n), adjFrom: make([]int, n)}
	firstBound := make([]int, pl.nvars)
	for i := range pl.Steps {
		for _, vp := range pl.Steps[i].NewVars {
			firstBound[vp.Var] = i
		}
	}
	for j := range pl.Steps {
		st := &pl.Steps[j]
		e.adjFrom[j] = n
		if len(st.JoinVars) > 0 {
			e.adjFrom[j] = 0
			for _, jv := range st.JoinVars {
				if fb := firstBound[jv.Var]; fb > e.adjFrom[j] {
					e.adjFrom[j] = fb
				}
			}
		}
		f := float64(PatternCard(store, st.Pattern))
		for _, jv := range st.JoinVars {
			ndvHere := PatternVarNdv(store, st.Pattern, jv.Pos)
			ndvThere := pl.ndvAtBindingSite(store, jv.Var)
			d := ndvHere
			if ndvThere > d {
				d = ndvThere
			}
			if d > 0 {
				f /= float64(d)
			}
		}
		e.factor[j] = f
	}
	return e
}

// Estimate returns the estimated number of full paths extending a walk
// prefix that has just completed step i under bindings b. It computes
// exactly EstimateSuffixSize, with the statistics branches reduced to one
// precomputed multiply per step.
func (e *SuffixEstimator) Estimate(i int, b Bindings) float64 {
	est := 1.0
	for j := i + 1; j < len(e.pl.Steps); j++ {
		if e.adjFrom[j] <= i {
			st := &e.pl.Steps[j]
			sp, ok := st.ResolveSpan(e.store, b)
			if !ok {
				return 0
			}
			if st.Kind != AccessMembership {
				est *= float64(sp.Len())
			}
			continue
		}
		est *= e.factor[j]
		if est == 0 {
			return 0
		}
	}
	return est
}

// ndvAtBindingSite returns the pattern-level ndv of variable v at the step
// that first binds it.
func (pl *Plan) ndvAtBindingSite(store *index.Store, v Var) int {
	for s := range pl.Steps {
		for _, vp := range pl.Steps[s].NewVars {
			if vp.Var == v {
				return PatternVarNdv(store, pl.Steps[s].Pattern, vp.Pos)
			}
		}
	}
	return 1
}

// EstimateJoinSize estimates the total join size |Γ| of the whole query by
// composing the PostgreSQL rule over all steps, with no bindings. Exposed
// for diagnostics and for the workload generator's selectivity reporting.
func (pl *Plan) EstimateJoinSize(store *index.Store) float64 {
	est := float64(PatternCard(store, pl.Steps[0].Pattern))
	for j := 1; j < len(pl.Steps); j++ {
		st := &pl.Steps[j]
		card := float64(PatternCard(store, st.Pattern))
		f := card
		for _, jv := range st.JoinVars {
			ndvHere := PatternVarNdv(store, st.Pattern, jv.Pos)
			ndvThere := pl.ndvAtBindingSite(store, jv.Var)
			d := ndvHere
			if ndvThere > d {
				d = ndvThere
			}
			if d > 0 {
				f /= float64(d)
			}
		}
		est *= f
	}
	return est
}
