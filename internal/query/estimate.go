package query

// The cardinality-estimation implementations live in internal/card; this
// file declares only the minimal contract the planner layer consumes, so
// query (the bottom of the dependency stack, below card) can render EXPLAIN
// output and ctj can pick variable orders without importing the estimators.

// Est is a cardinality estimate paired with a confidence signal.
//
// Value is the estimated count (float-valued: sub-unit estimates are
// meaningful and must not collapse to zero). Confidence grades how the
// estimate was derived, on (0, 1]: 1 means an exact span lookup, lower
// values mark composition under conditional-fan-out or independence
// assumptions. Consumers use it to gate decisions that should only follow
// estimates of a given quality (e.g. ctj's variable-order tie-breaking).
type Est struct {
	Value      float64
	Confidence float64
}

// Estimator is the slice of internal/card's estimator interface that the
// query layer itself consumes: per-pattern cardinalities and whole-plan join
// sizes for EXPLAIN and planning. card.Estimator satisfies it.
type Estimator interface {
	// PatternCard estimates the number of triples matching the pattern's
	// constant positions, ignoring variables.
	PatternCard(p Pattern) Est
	// JoinSize estimates the total join size |Γ| of the plan.
	JoinSize(pl *Plan) Est
}
