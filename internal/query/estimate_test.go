package query

import (
	"math/rand"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

func TestPatternCard(t *testing.T) {
	st, d := testData(t)
	bp, _ := d.LookupIRI("birthPlace")
	ty, _ := d.LookupIRI(rdf.RDFType)
	alice, _ := d.LookupIRI("alice")
	paris, _ := d.LookupIRI("paris")
	person, _ := d.LookupIRI("Person")

	cases := []struct {
		name string
		p    Pattern
		want int
	}{
		{"all vars", Pattern{V(0), V(1), V(2)}, st.NumTriples()},
		{"p const", Pattern{V(0), C(bp), V(1)}, 5},
		{"s const", Pattern{C(alice), V(0), V(1)}, 2},
		{"o const", Pattern{V(0), V(1), C(paris)}, 2}, // birthPlace x2; paris as subject of type doesn't count
		{"sp const", Pattern{C(alice), C(bp), V(0)}, 1},
		{"po const", Pattern{V(0), C(ty), C(person)}, 4},
		{"spo present", Pattern{C(alice), C(bp), C(paris)}, 1},
		{"spo absent", Pattern{C(alice), C(bp), C(person)}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := PatternCard(st, c.p); got != c.want {
				t.Errorf("PatternCard = %d, want %d", got, c.want)
			}
		})
	}
}

func TestPatternCardSOConstFallback(t *testing.T) {
	st, d := testData(t)
	alice, _ := d.LookupIRI("alice")
	paris, _ := d.LookupIRI("paris")
	// (alice, ?p, paris): independence estimate, should be small but >= 0.
	got := PatternCard(st, Pattern{C(alice), V(0), C(paris)})
	if got < 0 || got > 2 {
		t.Errorf("independence estimate = %d, want within [0,2]", got)
	}
}

func TestPatternVarNdv(t *testing.T) {
	st, d := testData(t)
	bp, _ := d.LookupIRI("birthPlace")
	ty, _ := d.LookupIRI(rdf.RDFType)
	person, _ := d.LookupIRI("Person")
	alice, _ := d.LookupIRI("alice")

	// ?s birthPlace ?o: 5 distinct subjects, 3 distinct objects.
	p := Pattern{V(0), C(bp), V(1)}
	if got := PatternVarNdv(st, p, index.S); got != 5 {
		t.Errorf("ndv(s | birthPlace) = %d, want 5", got)
	}
	if got := PatternVarNdv(st, p, index.O); got != 3 {
		t.Errorf("ndv(o | birthPlace) = %d, want 3", got)
	}
	// ?s type Person: two constants -> ndv = card = 4.
	p2 := Pattern{V(0), C(ty), C(person)}
	if got := PatternVarNdv(st, p2, index.S); got != 4 {
		t.Errorf("ndv(s | type Person) = %d, want 4", got)
	}
	// alice ?p ?o: span-length upper bound = 2.
	p3 := Pattern{C(alice), V(0), V(1)}
	if got := PatternVarNdv(st, p3, index.P); got != 2 {
		t.Errorf("ndv(p | alice) = %d, want 2", got)
	}
	// All-var pattern falls back to global ndvs.
	p4 := Pattern{V(0), V(1), V(2)}
	if got := PatternVarNdv(st, p4, index.P); got != st.Stats().NdvP {
		t.Errorf("global ndv(p) = %d, want %d", got, st.Stats().NdvP)
	}
	if got := PatternVarNdv(st, p4, index.S); got != st.Stats().NdvS {
		t.Errorf("global ndv(s) = %d, want %d", got, st.Stats().NdvS)
	}
	if got := PatternVarNdv(st, p4, index.O); got != st.Stats().NdvO {
		t.Errorf("global ndv(o) = %d, want %d", got, st.Stats().NdvO)
	}
	// Empty pattern -> 0.
	if got := PatternVarNdv(st, Pattern{V(0), C(rdf.ID(9999)), V(1)}, index.S); got != 0 {
		t.Errorf("ndv over empty pattern = %d, want 0", got)
	}
}

func TestEstimateSuffixSizeAdjacentExact(t *testing.T) {
	st, d := testData(t)
	q := birthPlaceQuery(t, d)
	pl, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	b := pl.NewBindings()
	alice, _ := d.LookupIRI("alice")
	paris, _ := d.LookupIRI("paris")
	b[0], b[1] = alice, paris
	// After step 0 with (alice, paris): step 1 membership (1 way) and step 2
	// resolves exactly: paris has 1 type. Estimate should be 1*1 = 1.
	got := pl.EstimateSuffixSize(st, 0, b)
	if got != 1 {
		t.Errorf("EstimateSuffixSize = %v, want 1", got)
	}
	// Prefix ending at a dead end: carol born in lima, lima has 2 types,
	// but carol IS a person, so estimate = 2.
	carol, _ := d.LookupIRI("carol")
	lima, _ := d.LookupIRI("lima")
	b[0], b[1] = carol, lima
	if got := pl.EstimateSuffixSize(st, 0, b); got != 2 {
		t.Errorf("EstimateSuffixSize(carol) = %v, want 2", got)
	}
	// eve is not a Person: estimate 0.
	eve, _ := d.LookupIRI("eve")
	rome, _ := d.LookupIRI("rome")
	b[0], b[1] = eve, rome
	if got := pl.EstimateSuffixSize(st, 0, b); got != 0 {
		t.Errorf("EstimateSuffixSize(eve) = %v, want 0", got)
	}
	// At the final step the suffix is empty: estimate 1 (the path itself).
	if got := pl.EstimateSuffixSize(st, len(pl.Steps)-1, b); got != 1 {
		t.Errorf("EstimateSuffixSize at last step = %v, want 1", got)
	}
}

func TestEstimateJoinSizePositive(t *testing.T) {
	st, d := testData(t)
	q := birthPlaceQuery(t, d)
	pl, _ := Compile(q)
	est := pl.EstimateJoinSize(st)
	// Exact join size: persons with birthplaces x types of those places:
	// alice/bob->paris(City), carol/dave->lima(City,Capital) = 2+4 = 6.
	if est <= 0 || est > 30 {
		t.Errorf("EstimateJoinSize = %v, want a positive value near 6", est)
	}
}

// TestSuffixEstimatorMatchesEstimateSuffixSize drives random walks over the
// running-example plan and checks, at every prefix, that the precomputed
// SuffixEstimator returns exactly what the per-call EstimateSuffixSize
// computes. The walk loop binds variables the same way the runners do, so the
// estimator's static-adjacency precomputation is exercised under its real
// invariant.
func TestSuffixEstimatorMatchesEstimateSuffixSize(t *testing.T) {
	st, d := testData(t)
	pl, err := Compile(birthPlaceQuery(t, d))
	if err != nil {
		t.Fatal(err)
	}
	est := pl.NewSuffixEstimator(st)
	rng := rand.New(rand.NewSource(11))
	for walk := 0; walk < 500; walk++ {
		b := pl.NewBindings()
		for i := range pl.Steps {
			stp := &pl.Steps[i]
			sp, ok := stp.ResolveSpan(st, b)
			if !ok {
				break
			}
			if stp.Kind != AccessMembership {
				stp.Bind(st.Sample(stp.Order, sp, rng), b)
			}
			got := est.Estimate(i, b)
			want := pl.EstimateSuffixSize(st, i, b)
			if got != want {
				t.Fatalf("walk %d step %d: Estimate = %g, EstimateSuffixSize = %g (b=%v)", walk, i, got, want, b)
			}
		}
	}
}
