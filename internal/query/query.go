// Package query defines the intermediate representation of exploration
// queries (the fragment of Figure 4 of the paper): acyclic multiway joins of
// triple patterns in which every variable occurs in at most two join
// patterns (plus any number of single-variable filter patterns, which the
// type and subclass-closure checks of exploration steps accumulate),
// evaluated as a grouped COUNT or COUNT(DISTINCT).
//
// The package also plans how each engine accesses the store: for every
// pattern it derives, given the variables bound by earlier patterns, which
// of the four index orders serves the candidate-set lookup, and it provides
// the PostgreSQL-style join-size estimates that Audit Join's tipping point
// uses (paper §IV-D).
package query

import (
	"errors"
	"fmt"
	"strings"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// Var identifies a query variable. Variables are small non-negative
// integers; NoVar marks "no variable here".
type Var int

// NoVar is the absent variable (used for Alpha on ungrouped queries and for
// constant atoms).
const NoVar Var = -1

// Atom is one position of a triple pattern: either a variable or a constant
// term ID.
type Atom struct {
	Var Var    // >= 0 when the atom is a variable
	ID  rdf.ID // constant term when Var == NoVar
}

// V returns a variable atom.
func V(v Var) Atom { return Atom{Var: v} }

// C returns a constant atom.
func C(id rdf.ID) Atom { return Atom{Var: NoVar, ID: id} }

// IsVar reports whether the atom is a variable.
func (a Atom) IsVar() bool { return a.Var >= 0 }

func (a Atom) String() string {
	if a.IsVar() {
		return fmt.Sprintf("?%d", a.Var)
	}
	return fmt.Sprintf("<%d>", a.ID)
}

// Pattern is a triple pattern (a_i, b_i, c_i) in the paper's notation.
type Pattern struct {
	S, P, O Atom
}

func (p Pattern) String() string {
	return p.S.String() + " " + p.P.String() + " " + p.O.String()
}

// Atom returns the atom at a triple position.
func (p Pattern) Atom(pos index.Pos) Atom {
	switch pos {
	case index.S:
		return p.S
	case index.P:
		return p.P
	default:
		return p.O
	}
}

// AggFunc selects the aggregation applied to Beta. COUNT (with or without
// DISTINCT) is the paper's fragment; SUM and AVG are the extension the
// paper lists as future work (§IV-D "Limitations"), supported by every
// engine in this repository for non-distinct aggregation over numeric
// literal values.
type AggFunc uint8

const (
	// AggCount counts the assignments (or distinct Beta values).
	AggCount AggFunc = iota
	// AggSum sums the numeric values of Beta over all assignments;
	// assignments whose Beta is not a numeric literal contribute 0.
	AggSum
	// AggAvg averages the numeric values of Beta over the assignments
	// whose Beta is numeric.
	AggAvg
)

func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(a))
	}
}

// Query is an exploration query: a list of triple patterns joined on shared
// variables, grouped by Alpha, aggregating values of Beta (COUNT by
// default, optionally DISTINCT; or SUM/AVG over numeric values).
//
// The pattern order is the random-walk order used by Wander Join and Audit
// Join: every pattern after the first must share a variable with an earlier
// pattern. Validate checks this along with the fragment's restrictions.
type Query struct {
	Patterns []Pattern
	Alpha    Var     // group-by variable; NoVar for a single global group
	Beta     Var     // aggregated variable
	Distinct bool    // COUNT(DISTINCT Beta); only valid with AggCount
	Agg      AggFunc // aggregation function; zero value is AggCount
	// Filters are acceptance predicates over the patterns' variables. The
	// planner anchors each at the earliest step binding all its variables;
	// engines drop assignments (or reject walks) that fail one. The JSON
	// tag carries them over the internal/dist wire protocol.
	Filters []Filter `json:"Filters,omitempty"`
}

// NumVars returns one plus the largest variable index used, i.e. the size of
// a binding array.
func (q *Query) NumVars() int {
	max := -1
	for _, p := range q.Patterns {
		for _, a := range []Atom{p.S, p.P, p.O} {
			if a.IsVar() && int(a.Var) > max {
				max = int(a.Var)
			}
		}
	}
	return max + 1
}

// varOccurrences counts how many patterns each variable occurs in.
func (q *Query) varOccurrences() map[Var]int {
	occ := make(map[Var]int)
	for _, p := range q.Patterns {
		for _, a := range []Atom{p.S, p.P, p.O} {
			if a.IsVar() {
				occ[a.Var]++
			}
		}
	}
	return occ
}

// patternVars returns the distinct variables of a pattern.
func patternVars(p Pattern) []Var {
	var vs []Var
	for _, a := range []Atom{p.S, p.P, p.O} {
		if a.IsVar() {
			vs = append(vs, a.Var)
		}
	}
	return vs
}

// Validate checks that the query is inside the exploration fragment:
// non-empty; no repeated variable within one pattern; each variable in at
// most two *join* patterns (patterns with two or more variables) — extra
// occurrences in single-variable filter patterns, such as the rdf:type and
// subclass-closure membership checks exploration steps accumulate, are
// allowed since they do not branch the join tree; the join graph is acyclic;
// the pattern order is connected; and Alpha/Beta occur in some pattern.
func (q *Query) Validate() error { return q.validate(false) }

// ValidateCyclic checks the same properties as Validate but permits cycles
// in the join graph. Cyclic patterns (e.g. triangles) are outside the
// paper's exploration fragment, but the random-walk estimators remain
// unbiased on them — the closing pattern simply becomes a membership check
// with d = 1 — which the paper notes as a natural extension (§IV-D
// "Limitations"). Compile cyclic queries with CompileCyclic.
func (q *Query) ValidateCyclic() error { return q.validate(true) }

func (q *Query) validate(allowCycles bool) error {
	if len(q.Patterns) == 0 {
		return errors.New("query: no patterns")
	}
	for i, p := range q.Patterns {
		seen := map[Var]bool{}
		for _, a := range []Atom{p.S, p.P, p.O} {
			if a.IsVar() {
				if seen[a.Var] {
					return fmt.Errorf("query: variable ?%d repeated within pattern %d", a.Var, i)
				}
				seen[a.Var] = true
			}
		}
	}
	occ := q.varOccurrences()
	// Count occurrences in join patterns only, and check acyclicity of the
	// join graph with union-find (each shared variable links two join
	// patterns; a link within one component closes a cycle).
	joinOcc := make(map[Var]int)
	varHome := make(map[Var]int) // join-pattern index that first used the var
	parent := make([]int, len(q.Patterns))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, p := range q.Patterns {
		vs := patternVars(p)
		if len(vs) < 2 {
			continue // filter pattern
		}
		for _, v := range vs {
			joinOcc[v]++
			if joinOcc[v] > 2 {
				return fmt.Errorf("query: variable ?%d occurs in %d join patterns; the exploration fragment allows at most 2", v, joinOcc[v])
			}
			if home, ok := varHome[v]; ok {
				a, b := find(home), find(i)
				if a == b {
					if !allowCycles {
						return fmt.Errorf("query: join patterns form a cycle through variable ?%d; the exploration fragment is acyclic (use CompileCyclic to allow it)", v)
					}
				} else {
					parent[a] = b
				}
			} else {
				varHome[v] = i
			}
		}
	}
	if q.Beta == NoVar {
		return errors.New("query: Beta (aggregated variable) is required")
	}
	if q.Distinct && q.Agg != AggCount {
		return fmt.Errorf("query: DISTINCT is only supported with COUNT, not %v", q.Agg)
	}
	if _, ok := occ[q.Beta]; !ok {
		return fmt.Errorf("query: Beta ?%d does not occur in any pattern", q.Beta)
	}
	if q.Alpha != NoVar {
		if _, ok := occ[q.Alpha]; !ok {
			return fmt.Errorf("query: Alpha ?%d does not occur in any pattern", q.Alpha)
		}
	}
	// Filters: structurally well-formed, and every referenced variable must
	// occur in some pattern (otherwise it could never be bound).
	for i := range q.Filters {
		f := &q.Filters[i]
		if err := validateFilter(f); err != nil {
			return fmt.Errorf("filter %d: %w", i, err)
		}
		for _, v := range f.Vars() {
			if _, ok := occ[v]; !ok {
				return fmt.Errorf("query: filter %d references ?%d, which occurs in no pattern", i, v)
			}
		}
	}
	// Connectivity in walk order.
	bound := map[Var]bool{}
	for i, p := range q.Patterns {
		if i > 0 {
			connected := false
			for _, a := range []Atom{p.S, p.P, p.O} {
				if a.IsVar() && bound[a.Var] {
					connected = true
				}
			}
			if !connected {
				return fmt.Errorf("query: pattern %d (%s) shares no variable with earlier patterns; reorder the walk", i, p)
			}
		}
		for _, a := range []Atom{p.S, p.P, p.O} {
			if a.IsVar() {
				bound[a.Var] = true
			}
		}
	}
	return nil
}

// Reorder returns a copy of q with its patterns permuted by perm (perm[i] is
// the index into q.Patterns of the i-th pattern of the new order).
func (q *Query) Reorder(perm []int) (*Query, error) {
	if len(perm) != len(q.Patterns) {
		return nil, fmt.Errorf("query: permutation has %d entries for %d patterns", len(perm), len(q.Patterns))
	}
	used := make([]bool, len(perm))
	nq := &Query{Alpha: q.Alpha, Beta: q.Beta, Distinct: q.Distinct, Agg: q.Agg, Filters: q.Filters}
	for _, idx := range perm {
		if idx < 0 || idx >= len(q.Patterns) || used[idx] {
			return nil, fmt.Errorf("query: invalid permutation %v", perm)
		}
		used[idx] = true
		nq.Patterns = append(nq.Patterns, q.Patterns[idx])
	}
	if err := nq.Validate(); err != nil {
		return nil, err
	}
	return nq, nil
}

// ValidOrders enumerates all pattern permutations that keep the walk
// connected (every pattern shares a variable with an earlier one). Intended
// for the paper's protocol of trying different Wander Join walk orders; the
// number of patterns in exploration queries is small.
func (q *Query) ValidOrders() [][]int {
	n := len(q.Patterns)
	var out [][]int
	perm := make([]int, 0, n)
	used := make([]bool, n)
	bound := map[Var]bool{}
	var rec func()
	rec = func() {
		if len(perm) == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			p := q.Patterns[i]
			vars := []Atom{p.S, p.P, p.O}
			connected := len(perm) == 0
			for _, a := range vars {
				if a.IsVar() && bound[a.Var] {
					connected = true
				}
			}
			if !connected {
				continue
			}
			// Bind this pattern's new variables.
			var added []Var
			for _, a := range vars {
				if a.IsVar() && !bound[a.Var] {
					bound[a.Var] = true
					added = append(added, a.Var)
				}
			}
			used[i] = true
			perm = append(perm, i)
			rec()
			perm = perm[:len(perm)-1]
			used[i] = false
			for _, v := range added {
				delete(bound, v)
			}
		}
	}
	rec()
	return out
}

// Signature returns a canonical identifier of the query's compiled shape:
// the pattern list in order (variables by index, constants by dictionary ID)
// plus Alpha, Beta, Distinct and Agg. Compilation is deterministic, so two
// queries with equal signatures yield plans with identical steps — and hence
// identical CTJ cache keys. Shared CTJ caches and the server's cross-request
// warm-start key on this. Constants are dictionary IDs, so signatures are
// only comparable against the same dataset.
func (q *Query) Signature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "a%d b%d", q.Alpha, q.Beta)
	if q.Distinct {
		b.WriteString(" distinct")
	}
	fmt.Fprintf(&b, " g%d", q.Agg)
	for _, p := range q.Patterns {
		b.WriteByte('|')
		for _, a := range []Atom{p.S, p.P, p.O} {
			if a.IsVar() {
				fmt.Fprintf(&b, "?%d,", a.Var)
			} else {
				fmt.Fprintf(&b, "#%d,", a.ID)
			}
		}
	}
	appendFilterSignature(&b, q.Filters)
	return b.String()
}

func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Alpha != NoVar {
		fmt.Fprintf(&b, "?%d ", q.Alpha)
	}
	b.WriteString(q.Agg.String())
	b.WriteString("(")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	fmt.Fprintf(&b, "?%d) WHERE {", q.Beta)
	for _, p := range q.Patterns {
		b.WriteString(" ")
		b.WriteString(p.String())
		b.WriteString(" .")
	}
	for i := range q.Filters {
		b.WriteString(" ")
		b.WriteString(q.Filters[i].String())
		b.WriteString(" .")
	}
	b.WriteString(" }")
	if q.Alpha != NoVar {
		fmt.Fprintf(&b, " GROUP BY ?%d", q.Alpha)
	}
	return b.String()
}
