package query

import (
	"errors"
	"fmt"
	"strings"
)

// UnionQuery is the multi-branch extension of the exploration fragment: the
// aggregate over the bag union of the branches' assignment multisets,
//
//	SELECT ?α AGG(?β) WHERE { {B_1} UNION {B_2} ... UNION {B_m} } GROUP BY ?α
//
// Every branch is an ordinary exploration Query (its own patterns and
// filters) sharing the SELECT clause: the same aggregate, the same DISTINCT
// flag, and Alpha/Beta present in every branch. Variable indices need not
// line up across branches — group keys and aggregated values are dictionary
// IDs, which are branch-independent.
//
// Aggregation semantics follow SPARQL's bag union: COUNT and SUM over the
// union are the sums of the per-branch aggregates, AVG is the ratio of the
// summed numerators and denominators, and COUNT(DISTINCT) deduplicates
// (group, β) pairs ACROSS branches — a pair produced by two branches counts
// once. Exact engines evaluate branches against one shared dedup set;
// online estimation treats each branch as one stratum of a stratified
// design (budget ∝ branch root cardinality, estimates summed, CIs merged in
// quadrature via wj.MergeStratified) — except DISTINCT, whose cross-branch
// overlap no per-branch walk sample can observe, so estimators refuse it
// with ErrDistinctUnion and callers route to the exact path, mirroring the
// live overlay's DISTINCT policy.
type UnionQuery struct {
	Branches []*Query `json:"branches"`
}

// ErrDistinctUnion reports a COUNT(DISTINCT) union handed to an online
// estimator: per-branch walks cannot observe cross-branch duplicates, so an
// estimated union-distinct would be silently biased. Callers catch it and
// evaluate exactly instead.
var ErrDistinctUnion = errors.New(
	"query: COUNT(DISTINCT) over UNION is not estimated; use the exact path")

// Validate checks every branch and their agreement on the shared SELECT
// clause.
func (u *UnionQuery) Validate() error {
	if len(u.Branches) == 0 {
		return errors.New("query: union with no branches")
	}
	first := u.Branches[0]
	for i, q := range u.Branches {
		if q == nil {
			return fmt.Errorf("query: union branch %d is nil", i)
		}
		if err := q.Validate(); err != nil {
			return fmt.Errorf("union branch %d: %w", i, err)
		}
		if q.Agg != first.Agg {
			return fmt.Errorf("query: union branch %d aggregates with %v, branch 0 with %v", i, q.Agg, first.Agg)
		}
		if q.Distinct != first.Distinct {
			return fmt.Errorf("query: union branch %d disagrees with branch 0 on DISTINCT", i)
		}
		if (q.Alpha == NoVar) != (first.Alpha == NoVar) {
			return fmt.Errorf("query: union branch %d disagrees with branch 0 on grouping", i)
		}
	}
	return nil
}

// Agg returns the shared aggregate of the branches.
func (u *UnionQuery) Agg() AggFunc { return u.Branches[0].Agg }

// Distinct reports the shared DISTINCT flag of the branches.
func (u *UnionQuery) Distinct() bool { return u.Branches[0].Distinct }

// Grouped reports whether the branches group by an Alpha variable.
func (u *UnionQuery) Grouped() bool { return u.Branches[0].Alpha != NoVar }

// UnionPlan is a compiled union: one ordinary Plan per branch.
type UnionPlan struct {
	Query *UnionQuery
	Plans []*Plan
}

// CompileUnion validates the union and compiles every branch.
func CompileUnion(u *UnionQuery) (*UnionPlan, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	up := &UnionPlan{Query: u, Plans: make([]*Plan, len(u.Branches))}
	for i, q := range u.Branches {
		pl, err := compile(q)
		if err != nil {
			return nil, fmt.Errorf("union branch %d: %w", i, err)
		}
		up.Plans[i] = pl
	}
	return up, nil
}

// Signature concatenates the branch signatures — the analogue of
// Query.Signature for caching and display.
func (u *UnionQuery) Signature() string {
	var b strings.Builder
	b.WriteString("union")
	for _, q := range u.Branches {
		b.WriteString("[")
		b.WriteString(q.Signature())
		b.WriteString("]")
	}
	return b.String()
}

func (u *UnionQuery) String() string {
	var b strings.Builder
	for i, q := range u.Branches {
		if i > 0 {
			b.WriteString(" UNION ")
		}
		b.WriteString("{ ")
		b.WriteString(q.String())
		b.WriteString(" }")
	}
	return b.String()
}
