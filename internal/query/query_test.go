package query

import (
	"strings"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// testData builds the paper's running-example shape:
//
//	?s <birthPlace> ?o . ?s rdf:type <Person> . ?o rdf:type ?c
//
// over a small graph.
func testData(t *testing.T) (*index.Store, *rdf.Dict) {
	t.Helper()
	g := rdf.NewGraph()
	// People and their birth places.
	g.AddIRIs("alice", "birthPlace", "paris")
	g.AddIRIs("bob", "birthPlace", "paris")
	g.AddIRIs("carol", "birthPlace", "lima")
	g.AddIRIs("dave", "birthPlace", "lima")
	g.AddIRIs("eve", "birthPlace", "rome")
	// Types.
	for _, s := range []string{"alice", "bob", "carol", "dave"} {
		g.AddIRIs(s, rdf.RDFType, "Person")
	}
	g.AddIRIs("eve", rdf.RDFType, "Robot")
	g.AddIRIs("paris", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "City")
	g.AddIRIs("rome", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "Capital")
	g.Dedup()
	return index.Build(g), g.Dict
}

// birthPlaceQuery is the query of Fig. 5: SELECT ?c COUNT(DISTINCT ?o)
// WHERE { ?s birthPlace ?o . ?s type Person . ?o type ?c } GROUP BY ?c
// with walk order as listed. Vars: ?s=0, ?o=1, ?c=2.
func birthPlaceQuery(t *testing.T, d *rdf.Dict) *Query {
	t.Helper()
	bp, _ := d.LookupIRI("birthPlace")
	ty, _ := d.LookupIRI(rdf.RDFType)
	person, _ := d.LookupIRI("Person")
	return &Query{
		Patterns: []Pattern{
			{S: V(0), P: C(bp), O: V(1)},
			{S: V(0), P: C(ty), O: C(person)},
			{S: V(1), P: C(ty), O: V(2)},
		},
		Alpha:    2,
		Beta:     1,
		Distinct: true,
	}
}

func TestValidateAccepts(t *testing.T) {
	_, d := testData(t)
	q := birthPlaceQuery(t, d)
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if q.NumVars() != 3 {
		t.Errorf("NumVars = %d, want 3", q.NumVars())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		q    Query
		want string
	}{
		{"empty", Query{Beta: 0}, "no patterns"},
		{"var thrice in join patterns", Query{
			Patterns: []Pattern{
				{S: V(0), P: C(1), O: V(1)},
				{S: V(0), P: C(2), O: V(2)},
				{S: V(0), P: C(3), O: V(3)},
			}, Beta: 0,
		}, "at most 2"},
		{"cyclic triangle", Query{
			Patterns: []Pattern{
				{S: V(0), P: C(1), O: V(1)},
				{S: V(1), P: C(2), O: V(2)},
				{S: V(2), P: C(3), O: V(0)},
			}, Beta: 0,
		}, "cycle"},
		{"repeated in pattern", Query{
			Patterns: []Pattern{{S: V(0), P: C(1), O: V(0)}}, Beta: 0,
		}, "repeated within pattern"},
		{"disconnected", Query{
			Patterns: []Pattern{
				{S: V(0), P: C(1), O: V(1)},
				{S: V(2), P: C(2), O: V(3)},
			}, Beta: 0,
		}, "shares no variable"},
		{"no beta", Query{
			Patterns: []Pattern{{S: V(0), P: C(1), O: V(1)}}, Beta: NoVar,
		}, "Beta"},
		{"beta unused", Query{
			Patterns: []Pattern{{S: V(0), P: C(1), O: V(1)}}, Beta: 7,
		}, "does not occur"},
		{"alpha unused", Query{
			Patterns: []Pattern{{S: V(0), P: C(1), O: V(1)}}, Beta: 0, Alpha: 9,
		}, "Alpha"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.q.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("Validate = %v, want error mentioning %q", err, c.want)
			}
		})
	}
}

func TestValidateAllowsFilterPatterns(t *testing.T) {
	// ?x in one join pattern plus two filter patterns (type checks) — the
	// shape real exploration paths produce — must be accepted.
	q := Query{
		Patterns: []Pattern{
			{S: V(0), P: C(1), O: C(2)}, // ?x type Person (filter)
			{S: V(0), P: C(3), O: V(1)}, // ?x influencedBy ?y (join)
			{S: V(0), P: C(1), O: C(4)}, // ?x type Agent (filter)
			{S: V(0), P: V(2), O: V(3)}, // ?x ?p ?o (join)
		},
		Alpha: 2,
		Beta:  0,
	}
	if err := q.Validate(); err != nil {
		t.Errorf("filter-heavy query rejected: %v", err)
	}
	// But a third occurrence in join patterns is still rejected.
	q.Patterns = append(q.Patterns, Pattern{S: V(0), P: C(5), O: V(4)})
	if err := q.Validate(); err == nil {
		t.Error("third join occurrence accepted")
	}
}

func TestCompileAccessPaths(t *testing.T) {
	_, d := testData(t)
	q := birthPlaceQuery(t, d)
	pl, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	// Step 0: only P bound (constant) -> PSO level 1.
	if s := pl.Steps[0]; s.Kind != AccessL1 || s.Order != index.PSO {
		t.Errorf("step 0 access = %v/%v, want l1/pso", s.Kind, s.Order)
	}
	// Step 1: S (join var), P, O all bound -> membership.
	if s := pl.Steps[1]; s.Kind != AccessMembership {
		t.Errorf("step 1 access = %v, want membership", s.Kind)
	}
	// Step 2: S (join var) and P bound -> PSO level 2.
	if s := pl.Steps[2]; s.Kind != AccessL2 || s.Order != index.PSO {
		t.Errorf("step 2 access = %v/%v, want l2/pso", s.Kind, s.Order)
	}
	// Alpha (?c=2) first bound at step 2 in O position; Beta (?o=1) at step 0.
	if pl.AlphaStep != 2 || pl.AlphaPos != index.O {
		t.Errorf("alpha site = %d/%v", pl.AlphaStep, pl.AlphaPos)
	}
	if pl.BetaStep != 0 || pl.BetaPos != index.O {
		t.Errorf("beta site = %d/%v", pl.BetaStep, pl.BetaPos)
	}
}

func TestCompileRejectsSOAccess(t *testing.T) {
	// ?x <p> ?y . ?x ?q <c>: second pattern has S bound (join) and O const,
	// P free -> unsupported by the four orders.
	q := &Query{
		Patterns: []Pattern{
			{S: V(0), P: C(1), O: V(1)},
			{S: V(0), P: V(2), O: C(5)},
		},
		Beta: 1,
	}
	_, err := Compile(q)
	if err == nil || !strings.Contains(err.Error(), "not served") {
		t.Errorf("Compile = %v, want unsupported-access error", err)
	}
}

func TestResolveSpanAndBind(t *testing.T) {
	st, d := testData(t)
	q := birthPlaceQuery(t, d)
	pl, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	b := pl.NewBindings()

	// Step 0: all birthPlace triples.
	sp, ok := pl.Steps[0].ResolveSpan(st, b)
	if !ok || sp.Len() != 5 {
		t.Fatalf("step 0 span = %d,%v; want 5", sp.Len(), ok)
	}
	// Bind to the alice triple.
	var aliceTriple rdf.Triple
	alice, _ := d.LookupIRI("alice")
	for i := 0; i < sp.Len(); i++ {
		tr := st.At(pl.Steps[0].Order, sp, i)
		if tr.S == alice {
			aliceTriple = tr
		}
	}
	pl.Steps[0].Bind(aliceTriple, b)
	if b[0] != alice {
		t.Fatalf("binding ?s = %d, want alice=%d", b[0], alice)
	}
	paris, _ := d.LookupIRI("paris")
	if b[1] != paris {
		t.Fatalf("binding ?o = %d, want paris=%d", b[1], paris)
	}

	// Step 1 membership: alice is a Person.
	if _, ok := pl.Steps[1].ResolveSpan(st, b); !ok {
		t.Error("alice type Person membership failed")
	}
	// Step 2: types of paris -> City only.
	sp2, ok := pl.Steps[2].ResolveSpan(st, b)
	if !ok || sp2.Len() != 1 {
		t.Fatalf("step 2 span = %d,%v; want 1", sp2.Len(), ok)
	}
	tr := st.At(pl.Steps[2].Order, sp2, 0)
	pl.Steps[2].Bind(tr, b)
	city, _ := d.LookupIRI("City")
	if b[2] != city {
		t.Errorf("?c = %d, want City=%d", b[2], city)
	}

	// Unbind backtracks.
	pl.Steps[2].Unbind(b)
	if b[2] != rdf.NoID {
		t.Error("Unbind did not clear ?c")
	}
	// Matches.
	if !pl.Steps[0].Matches(aliceTriple, b) {
		t.Error("Matches rejected the bound triple")
	}
}

func TestResolveSpanMembershipAbsent(t *testing.T) {
	st, d := testData(t)
	q := birthPlaceQuery(t, d)
	pl, _ := Compile(q)
	b := pl.NewBindings()
	eve, _ := d.LookupIRI("eve")
	rome, _ := d.LookupIRI("rome")
	b[0], b[1] = eve, rome
	// eve is a Robot, not a Person.
	if _, ok := pl.Steps[1].ResolveSpan(st, b); ok {
		t.Error("eve type Person membership succeeded, want failure")
	}
}

func TestReorder(t *testing.T) {
	_, d := testData(t)
	q := birthPlaceQuery(t, d)
	// Order (1,0,2): type-Person first, then birthPlace, then type ?c.
	nq, err := q.Reorder([]int{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(nq.Patterns) != 3 || nq.Patterns[0] != q.Patterns[1] {
		t.Error("Reorder did not permute")
	}
	// Order (2,1,0) is disconnected at step 1 (?c/?o vs ?s/Person).
	if _, err := q.Reorder([]int{2, 1, 0}); err == nil {
		t.Error("disconnected reorder accepted")
	}
	// Bad permutations.
	if _, err := q.Reorder([]int{0, 0, 1}); err == nil {
		t.Error("duplicate permutation accepted")
	}
	if _, err := q.Reorder([]int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
}

func TestValidOrders(t *testing.T) {
	_, d := testData(t)
	q := birthPlaceQuery(t, d)
	orders := q.ValidOrders()
	// Patterns: 0 (?s bp ?o), 1 (?s type Person), 2 (?o type ?c).
	// Connected orders: any starting pattern works? Pattern 1 binds ?s; then
	// 0 connects via ?s; 2 connects only after 0. Pattern 2 binds ?o,?c;
	// then 0 connects via ?o; 1 after 0.
	want := map[string]bool{
		"[0 1 2]": true, "[0 2 1]": true,
		"[1 0 2]": true, "[2 0 1]": true,
	}
	if len(orders) != len(want) {
		t.Fatalf("ValidOrders = %v, want %d orders", orders, len(want))
	}
	for _, o := range orders {
		if !want[fmtInts(o)] {
			t.Errorf("unexpected order %v", o)
		}
	}
	// Every returned order must re-validate.
	for _, o := range orders {
		if _, err := q.Reorder(o); err != nil {
			t.Errorf("order %v failed Reorder: %v", o, err)
		}
	}
}

func fmtInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = string(rune('0' + x))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func TestQueryString(t *testing.T) {
	_, d := testData(t)
	q := birthPlaceQuery(t, d)
	s := q.String()
	for _, want := range []string{"SELECT ?2", "COUNT(DISTINCT ?1)", "GROUP BY ?2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	q.Distinct = false
	q.Alpha = NoVar
	s = q.String()
	if strings.Contains(s, "DISTINCT") || strings.Contains(s, "GROUP BY") {
		t.Errorf("ungrouped non-distinct String() = %q", s)
	}
}
