package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"kgexplore/internal/rdf"
)

// This file defines the FILTER expression IR. A Filter is a comparison
// between two arithmetic expressions over query variables, numeric
// constants and interned RDF terms, attached to a Query and anchored by the
// planner at the earliest step where all its variables are bound. Every
// engine applies anchored filters the same way: an assignment that fails a
// filter is dropped during exact enumeration, and a walk that fails one is
// rejected — a Horvitz–Thompson zero-weight draw, which keeps the online
// estimators unbiased for the filtered result (the same argument that
// covers dead-end rejections in the paper's §IV-C).
//
// Semantics follow SPARQL's error-as-false rule restricted to the numeric
// precompute the store maintains: '=' and '!=' compare by numeric value
// when both sides are numeric literals and by term identity otherwise;
// ordered comparisons (<, <=, >, >=) and arithmetic require both operands
// numeric and evaluate to false (rejecting the row) when either is not.
// All types are JSON-serializable so filters ride inside query.Query over
// the internal/dist wire protocol unchanged.

// CmpOp is a filter comparison operator, spelled as in the concrete syntax.
type CmpOp string

const (
	CmpEq CmpOp = "="
	CmpNe CmpOp = "!="
	CmpLt CmpOp = "<"
	CmpLe CmpOp = "<="
	CmpGt CmpOp = ">"
	CmpGe CmpOp = ">="
)

// ArithOp is a filter arithmetic operator.
type ArithOp string

const (
	ArithAdd ArithOp = "+"
	ArithSub ArithOp = "-"
	ArithMul ArithOp = "*"
	ArithDiv ArithOp = "/"
)

// ExprKind discriminates filter expression nodes.
type ExprKind string

const (
	// ExprVar references a query variable's bound value.
	ExprVar ExprKind = "var"
	// ExprNum is a numeric constant.
	ExprNum ExprKind = "num"
	// ExprTerm is an interned RDF term constant (IRI or literal).
	ExprTerm ExprKind = "term"
	// ExprArith combines two sub-expressions with an ArithOp.
	ExprArith ExprKind = "arith"
)

// Expr is one node of a filter expression tree.
type Expr struct {
	Kind ExprKind `json:"kind"`
	Var  Var      `json:"var,omitempty"`  // ExprVar
	Num  float64  `json:"num,omitempty"`  // ExprNum
	ID   rdf.ID   `json:"id,omitempty"`   // ExprTerm
	Op   ArithOp  `json:"arop,omitempty"` // ExprArith
	L    *Expr    `json:"l,omitempty"`    // ExprArith
	R    *Expr    `json:"r,omitempty"`    // ExprArith
}

// EVar returns a variable expression.
func EVar(v Var) *Expr { return &Expr{Kind: ExprVar, Var: v} }

// ENum returns a numeric-constant expression.
func ENum(x float64) *Expr { return &Expr{Kind: ExprNum, Num: x} }

// ETerm returns a term-constant expression.
func ETerm(id rdf.ID) *Expr { return &Expr{Kind: ExprTerm, ID: id} }

// EArith returns an arithmetic expression.
func EArith(op ArithOp, l, r *Expr) *Expr {
	return &Expr{Kind: ExprArith, Op: op, L: l, R: r}
}

// Filter is one comparison predicate attached to a query.
type Filter struct {
	Op CmpOp `json:"op"`
	L  *Expr `json:"l"`
	R  *Expr `json:"r"`
}

// NumSource resolves the numeric value of an interned term, when it has
// one — the store's precomputed numeric-literal cache. index.Store,
// shard.Set and live.View all satisfy it.
type NumSource interface {
	Numeric(id rdf.ID) (float64, bool)
}

// exprVal is an evaluated expression: a term identity and/or a numeric
// value, whichever the node can produce.
type exprVal struct {
	id     rdf.ID
	num    float64
	hasID  bool
	hasNum bool
}

func evalExpr(e *Expr, ns NumSource, b Bindings) (exprVal, bool) {
	switch e.Kind {
	case ExprVar:
		if int(e.Var) >= len(b) {
			return exprVal{}, false
		}
		id := b[e.Var]
		if id == rdf.NoID {
			return exprVal{}, false
		}
		v := exprVal{id: id, hasID: true}
		if n, ok := ns.Numeric(id); ok {
			v.num, v.hasNum = n, true
		}
		return v, true
	case ExprNum:
		return exprVal{num: e.Num, hasNum: true}, true
	case ExprTerm:
		v := exprVal{id: e.ID, hasID: true}
		if n, ok := ns.Numeric(e.ID); ok {
			v.num, v.hasNum = n, true
		}
		return v, true
	case ExprArith:
		l, ok := evalExpr(e.L, ns, b)
		if !ok || !l.hasNum {
			return exprVal{}, false
		}
		r, ok := evalExpr(e.R, ns, b)
		if !ok || !r.hasNum {
			return exprVal{}, false
		}
		var n float64
		switch e.Op {
		case ArithAdd:
			n = l.num + r.num
		case ArithSub:
			n = l.num - r.num
		case ArithMul:
			n = l.num * r.num
		case ArithDiv:
			if r.num == 0 {
				return exprVal{}, false
			}
			n = l.num / r.num
		default:
			return exprVal{}, false
		}
		return exprVal{num: n, hasNum: true}, true
	}
	return exprVal{}, false
}

// Eval evaluates the filter under the bindings. Unbound variables, type
// errors (ordered comparison or arithmetic on non-numeric terms) and
// division by zero all evaluate to false, mirroring SPARQL's
// error-propagates-to-false FILTER semantics.
func (f *Filter) Eval(ns NumSource, b Bindings) bool {
	l, ok := evalExpr(f.L, ns, b)
	if !ok {
		return false
	}
	r, ok := evalExpr(f.R, ns, b)
	if !ok {
		return false
	}
	switch f.Op {
	case CmpEq, CmpNe:
		var eq bool
		switch {
		case l.hasNum && r.hasNum:
			eq = l.num == r.num
		case l.hasID && r.hasID:
			eq = l.id == r.id
		default:
			return false
		}
		if f.Op == CmpNe {
			return !eq
		}
		return eq
	}
	if !l.hasNum || !r.hasNum {
		return false
	}
	switch f.Op {
	case CmpLt:
		return l.num < r.num
	case CmpLe:
		return l.num <= r.num
	case CmpGt:
		return l.num > r.num
	case CmpGe:
		return l.num >= r.num
	}
	return false
}

// Vars returns the distinct variables the filter references, sorted.
func (f *Filter) Vars() []Var {
	set := map[Var]bool{}
	var walk func(e *Expr)
	walk = func(e *Expr) {
		if e == nil {
			return
		}
		if e.Kind == ExprVar {
			set[e.Var] = true
		}
		walk(e.L)
		walk(e.R)
	}
	walk(f.L)
	walk(f.R)
	out := make([]Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// validateFilter checks structural well-formedness: known operators, leaf
// nodes without children, arithmetic nodes with both, and at least one
// variable (a constant filter is almost certainly a query bug).
func validateFilter(f *Filter) error {
	switch f.Op {
	case CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe:
	default:
		return fmt.Errorf("query: unknown filter operator %q", f.Op)
	}
	var walk func(e *Expr) error
	walk = func(e *Expr) error {
		if e == nil {
			return fmt.Errorf("query: nil filter expression")
		}
		switch e.Kind {
		case ExprVar:
			if e.Var < 0 {
				return fmt.Errorf("query: filter references invalid variable %d", e.Var)
			}
		case ExprNum, ExprTerm:
		case ExprArith:
			switch e.Op {
			case ArithAdd, ArithSub, ArithMul, ArithDiv:
			default:
				return fmt.Errorf("query: unknown filter arithmetic operator %q", e.Op)
			}
			if err := walk(e.L); err != nil {
				return err
			}
			return walk(e.R)
		default:
			return fmt.Errorf("query: unknown filter expression kind %q", e.Kind)
		}
		return nil
	}
	if err := walk(f.L); err != nil {
		return err
	}
	if err := walk(f.R); err != nil {
		return err
	}
	if len(f.Vars()) == 0 {
		return fmt.Errorf("query: filter %s references no variable", f)
	}
	return nil
}

func (e *Expr) String() string {
	switch e.Kind {
	case ExprVar:
		return fmt.Sprintf("?%d", e.Var)
	case ExprNum:
		return strconv.FormatFloat(e.Num, 'g', -1, 64)
	case ExprTerm:
		return fmt.Sprintf("<%d>", e.ID)
	case ExprArith:
		return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
	}
	return "?!"
}

func (f *Filter) String() string {
	return fmt.Sprintf("FILTER(%s %s %s)", f.L, f.Op, f.R)
}

// appendFilterSignature renders the filters into a Signature builder: the
// canonical string must distinguish filtered from unfiltered queries, or
// shared CTJ caches keyed on signatures would serve poisoned suffix
// aggregates across them.
func appendFilterSignature(b *strings.Builder, filters []Filter) {
	for i := range filters {
		b.WriteString("|F")
		b.WriteString(filters[i].String())
	}
}
