package query

import (
	"strings"
	"testing"

	"kgexplore/internal/index"
)

func TestExplain(t *testing.T) {
	st, d := testData(t)
	q := birthPlaceQuery(t, d)
	pl, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	out := pl.Explain(st)
	for _, want := range []string{
		"step 0", "step 1", "step 2",
		"access=l1/pso", "access=membership", "access=l2/pso",
		"binds=", "join=",
		"|G_i|=5", // the birthPlace pattern
		"estimated join size",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q in:\n%s", want, out)
		}
	}
	// Structure-only mode.
	out = pl.Explain(nil)
	if strings.Contains(out, "|G_i|") || strings.Contains(out, "estimated join") {
		t.Errorf("nil-store Explain leaked estimates:\n%s", out)
	}
	_ = st
	var _ = index.SPO
}
