package query

import (
	"strings"
	"testing"

	"kgexplore/internal/index"
)

// spanEstimator is a minimal Estimator over the fixture store, covering the
// masks the running-example plan produces. The real implementations live in
// internal/card (which depends on this package, so they cannot be used
// here); Explain only needs the interface.
type spanEstimator struct{ st *index.Store }

func (e spanEstimator) PatternCard(p Pattern) Est {
	switch {
	case !p.P.IsVar() && p.S.IsVar() && p.O.IsVar():
		return Est{Value: float64(e.st.SpanL1(index.PSO, p.P.ID).Len()), Confidence: 1}
	case !p.P.IsVar() && p.S.IsVar() && !p.O.IsVar():
		return Est{Value: float64(e.st.SpanL2(index.POS, p.P.ID, p.O.ID).Len()), Confidence: 1}
	default:
		return Est{Value: 1, Confidence: 1}
	}
}

func (e spanEstimator) JoinSize(pl *Plan) Est {
	est := 1.0
	for i := range pl.Steps {
		est *= e.PatternCard(pl.Steps[i].Pattern).Value
	}
	return Est{Value: est, Confidence: 0.4}
}

func TestExplain(t *testing.T) {
	st, d := testData(t)
	q := birthPlaceQuery(t, d)
	pl, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	out := pl.Explain(spanEstimator{st})
	for _, want := range []string{
		"step 0", "step 1", "step 2",
		"access=l1/pso", "access=membership", "access=l2/pso",
		"binds=", "join=",
		"|G_i|=5", // the birthPlace pattern
		"estimated join size",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q in:\n%s", want, out)
		}
	}
	// Structure-only mode.
	out = pl.Explain(nil)
	if strings.Contains(out, "|G_i|") || strings.Contains(out, "estimated join") {
		t.Errorf("nil-estimator Explain leaked estimates:\n%s", out)
	}
}
