package query

import (
	"errors"
	"fmt"
	"strings"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// AccessKind classifies how a step's candidate set is fetched from the store.
type AccessKind uint8

const (
	// AccessFull scans/samples the whole store (no position bound).
	AccessFull AccessKind = iota
	// AccessL1 uses a level-1 hash span (one position bound).
	AccessL1
	// AccessL2 uses a level-2 span (two positions bound).
	AccessL2
	// AccessMembership checks a fully bound triple (all positions bound).
	AccessMembership
)

func (k AccessKind) String() string {
	switch k {
	case AccessFull:
		return "full"
	case AccessL1:
		return "l1"
	case AccessL2:
		return "l2"
	case AccessMembership:
		return "membership"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// Step is the compiled form of one pattern in walk order.
type Step struct {
	Pattern Pattern
	// Bound[pos] is true when the atom at pos is a constant or a variable
	// bound by an earlier step.
	Bound [3]bool
	// Kind and Order describe the access path used to resolve the
	// candidate set given the bindings.
	Kind  AccessKind
	Order index.Order
	// Key0 and Key1 are the pattern atoms at the order's trie levels 0 and 1,
	// hoisted out of the per-walk resolution loop at compile time.
	Key0, Key1 Atom
	// Static reports that the step's bound positions are all constants, so
	// its candidate set is independent of the bindings and can be resolved
	// once per (plan, store) with ResolveStatic.
	Static bool
	// NewVars lists variables first bound by this step, with their position.
	NewVars []VarPos
	// JoinVars lists this step's variables already bound by earlier steps.
	JoinVars []VarPos
	// Filters indexes Query.Filters anchored at this step: every filter
	// whose variables are all bound once this step completes, anchored at
	// the LAST such step. Engines check them right after binding the step;
	// a filter is an extra use of its variables at the anchor step, which
	// the CTJ interface computation must honor (see ctj's lastUse).
	Filters []int
}

// VarPos pairs a variable with the triple position it occupies in a pattern.
type VarPos struct {
	Var Var
	Pos index.Pos
}

// Plan is a compiled query: per-step access paths plus metadata shared by
// all engines.
type Plan struct {
	Query *Query
	Steps []Step
	// AlphaStep/AlphaPos locate the group variable's binding site (the step
	// that first binds it); likewise for Beta.
	AlphaStep, BetaStep int
	AlphaPos, BetaPos   index.Pos
	nvars               int
}

// NumVars returns the size of a binding array for this plan.
func (pl *Plan) NumVars() int { return pl.nvars }

// Compile validates the query and derives the access path of every step.
// It fails if a step would need the unsupported (s,o)-bound access, which
// cannot be served by the four maintained index orders.
func Compile(q *Query) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return compile(q)
}

// CompileCyclic compiles a query that may have cycles in its join graph
// (see ValidateCyclic). All engines evaluate such plans correctly: the
// cycle-closing pattern resolves as a membership or doubly-bound span
// access, and the estimators' unbiasedness arguments carry over unchanged.
func CompileCyclic(q *Query) (*Plan, error) {
	if err := q.ValidateCyclic(); err != nil {
		return nil, err
	}
	return compile(q)
}

// CompileUnchecked compiles without running Validate: the fragment's
// join-occurrence limit, acyclicity and connectivity checks are skipped
// (all-constant patterns become membership steps; a disconnected pattern
// degrades to a cartesian step). The evaluators remain correct on such
// plans; this entry point exists for diagnostics such as the selectivity
// metric, whose constant-stripped or constant-bound queries fall outside
// the fragment. Access-path servability is still enforced.
func CompileUnchecked(q *Query) (*Plan, error) {
	if len(q.Patterns) == 0 {
		return nil, errors.New("query: no patterns")
	}
	return compile(q)
}

func compile(q *Query) (*Plan, error) {
	pl := &Plan{Query: q, nvars: q.NumVars(), AlphaStep: -1, BetaStep: -1}
	bound := map[Var]bool{}
	for i, p := range q.Patterns {
		st := Step{Pattern: p}
		for pos := index.Pos(0); pos < 3; pos++ {
			a := p.Atom(pos)
			if !a.IsVar() {
				st.Bound[pos] = true
				continue
			}
			if bound[a.Var] {
				st.Bound[pos] = true
				st.JoinVars = append(st.JoinVars, VarPos{a.Var, pos})
			} else {
				st.NewVars = append(st.NewVars, VarPos{a.Var, pos})
				if a.Var == q.Alpha && pl.AlphaStep < 0 {
					pl.AlphaStep, pl.AlphaPos = i, pos
				}
				if a.Var == q.Beta && pl.BetaStep < 0 {
					pl.BetaStep, pl.BetaPos = i, pos
				}
			}
		}
		kind, order, err := accessPath(st.Bound)
		if err != nil {
			return nil, fmt.Errorf("query: pattern %d (%s): %w", i, p, err)
		}
		st.Kind, st.Order = kind, order
		levels := order.Levels()
		st.Key0, st.Key1 = p.Atom(levels[0]), p.Atom(levels[1])
		st.Static = len(st.JoinVars) == 0
		for _, vp := range st.NewVars {
			bound[vp.Var] = true
		}
		pl.Steps = append(pl.Steps, st)
	}
	if err := pl.anchorFilters(); err != nil {
		return nil, err
	}
	return pl, nil
}

// anchorFilters attaches each query filter to the earliest step at which
// all its variables are bound (i.e. the latest first-binding step among
// them). Checking a filter as soon as it is decidable prunes exact
// enumerations early and rejects doomed walks before they spend more span
// lookups.
func (pl *Plan) anchorFilters() error {
	if len(pl.Query.Filters) == 0 {
		return nil
	}
	firstBound := make([]int, pl.nvars)
	for i := range firstBound {
		firstBound[i] = -1
	}
	for i := range pl.Steps {
		for _, vp := range pl.Steps[i].NewVars {
			firstBound[vp.Var] = i
		}
	}
	for fi := range pl.Query.Filters {
		anchor := 0
		for _, v := range pl.Query.Filters[fi].Vars() {
			if int(v) >= pl.nvars || firstBound[v] < 0 {
				return fmt.Errorf("query: filter %d references ?%d, which no step binds", fi, v)
			}
			if firstBound[v] > anchor {
				anchor = firstBound[v]
			}
		}
		pl.Steps[anchor].Filters = append(pl.Steps[anchor].Filters, fi)
	}
	return nil
}

// HasFilters reports whether the plan carries any filter.
func (pl *Plan) HasFilters() bool { return len(pl.Query.Filters) > 0 }

// StepFiltersOK evaluates the filters anchored at step i under the
// bindings. Callers should guard with len(pl.Steps[i].Filters) > 0 on hot
// paths; the helper itself is allocation-free.
func (pl *Plan) StepFiltersOK(i int, ns NumSource, b Bindings) bool {
	for _, fi := range pl.Steps[i].Filters {
		if !pl.Query.Filters[fi].Eval(ns, b) {
			return false
		}
	}
	return true
}

// FiltersOK evaluates every filter of the plan under fully populated
// bindings — the all-at-once check used where per-step anchoring does not
// apply (e.g. path-probability enumeration over preset bindings).
func (pl *Plan) FiltersOK(ns NumSource, b Bindings) bool {
	for fi := range pl.Query.Filters {
		if !pl.Query.Filters[fi].Eval(ns, b) {
			return false
		}
	}
	return true
}

// AccessFor exposes the access-path derivation for a bound-position mask,
// for engines that need ad-hoc constrained lookups (e.g. the Pr(b)
// computations of Audit Join, which additionally bind the counted variable).
func AccessFor(bound [3]bool) (AccessKind, index.Order, error) {
	return accessPath(bound)
}

// accessPath maps a bound-position mask to an index order. The four
// maintained orders are spo, ops, pso and pos (paper §V-A).
func accessPath(b [3]bool) (AccessKind, index.Order, error) {
	switch {
	case !b[0] && !b[1] && !b[2]:
		return AccessFull, index.SPO, nil
	case b[0] && !b[1] && !b[2]:
		return AccessL1, index.SPO, nil
	case !b[0] && b[1] && !b[2]:
		return AccessL1, index.PSO, nil
	case !b[0] && !b[1] && b[2]:
		return AccessL1, index.OPS, nil
	case b[0] && b[1] && !b[2]:
		return AccessL2, index.PSO, nil // (p, s) hash level
	case !b[0] && b[1] && b[2]:
		return AccessL2, index.POS, nil // (p, o) hash level
	case b[0] && b[1] && b[2]:
		return AccessMembership, index.PSO, nil
	default: // s and o bound, p free
		return 0, 0, fmt.Errorf("access with subject and object bound but predicate free is not served by the four maintained index orders")
	}
}

// Explain renders the plan's access paths and statistics-based estimates —
// the EXPLAIN view of a compiled exploration query. The estimator provides
// the cardinalities (see internal/card); pass nil to print structure only.
func (pl *Plan) Explain(est Estimator) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %s\n", pl.Query)
	for i := range pl.Steps {
		st := &pl.Steps[i]
		fmt.Fprintf(&b, "  step %d: %-24s access=%s/%s", i, st.Pattern.String(), st.Kind, st.Order)
		if len(st.JoinVars) > 0 {
			b.WriteString(" join=")
			for k, jv := range st.JoinVars {
				if k > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "?%d@%s", jv.Var, jv.Pos)
			}
		}
		if len(st.NewVars) > 0 {
			b.WriteString(" binds=")
			for k, nv := range st.NewVars {
				if k > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "?%d@%s", nv.Var, nv.Pos)
			}
		}
		if len(st.Filters) > 0 {
			b.WriteString(" filters=")
			for k, fi := range st.Filters {
				if k > 0 {
					b.WriteByte(',')
				}
				b.WriteString(pl.Query.Filters[fi].String())
			}
		}
		if est != nil {
			fmt.Fprintf(&b, " |G_i|=%.0f", est.PatternCard(st.Pattern).Value)
		}
		b.WriteByte('\n')
	}
	if est != nil {
		js := est.JoinSize(pl)
		fmt.Fprintf(&b, "  estimated join size: %.1f (confidence %.1f)\n", js.Value, js.Confidence)
	}
	return b.String()
}

// Bindings is a variable assignment under construction during a walk or a
// trie traversal. Index by Var.
type Bindings []rdf.ID

// NewBindings returns a binding array for the plan with all slots clear.
func (pl *Plan) NewBindings() Bindings {
	b := make(Bindings, pl.nvars)
	b.Reset()
	return b
}

// Reset clears every slot, so walk runners can reuse one binding buffer
// instead of allocating per walk.
func (b Bindings) Reset() {
	for i := range b {
		b[i] = rdf.NoID
	}
}

// atomValue resolves an atom to a concrete ID under the bindings. The atom
// must be a constant or a bound variable.
func atomValue(a Atom, b Bindings) rdf.ID {
	if a.IsVar() {
		return b[a.Var]
	}
	return a.ID
}

// ResolveSpan returns the candidate set of step i under the bindings: the
// span, in the step's index order, of triples matching the pattern's bound
// positions. For AccessMembership the span has length 0 or 1 (conceptually);
// the bool reports whether the fully bound triple exists.
func (st *Step) ResolveSpan(store *index.Store, b Bindings) (index.Span, bool) {
	switch st.Kind {
	case AccessFull:
		sp := store.FullSpan(st.Order)
		return sp, !sp.Empty()
	case AccessL1:
		sp := store.SpanL1(st.Order, atomValue(st.Key0, b))
		return sp, !sp.Empty()
	case AccessL2:
		sp := store.SpanL2(st.Order, atomValue(st.Key0, b), atomValue(st.Key1, b))
		return sp, !sp.Empty()
	default: // AccessMembership
		tr := rdf.Triple{
			S: atomValue(st.Pattern.S, b),
			P: atomValue(st.Pattern.P, b),
			O: atomValue(st.Pattern.O, b),
		}
		if store.Contains(tr) {
			return index.Span{}, true
		}
		return index.Span{}, false
	}
}

// StaticSpan is the pre-resolved candidate set of a Static step: Span and OK
// are exactly what ResolveSpan would return for any bindings. Entries for
// non-static steps are zero and must not be consulted.
type StaticSpan struct {
	Span index.Span
	OK   bool
}

// ResolveStatic pre-resolves every Static step of the plan against the
// store, hoisting the span lookups (and membership checks) of
// constant-bound steps out of the per-walk loop. Walk runners call this once
// at construction and consult the result instead of ResolveSpan for steps
// with Static set.
func (pl *Plan) ResolveStatic(store *index.Store) []StaticSpan {
	out := make([]StaticSpan, len(pl.Steps))
	for i := range pl.Steps {
		st := &pl.Steps[i]
		if !st.Static {
			continue
		}
		sp, ok := st.ResolveSpan(store, nil)
		out[i] = StaticSpan{Span: sp, OK: ok}
	}
	return out
}

// Bind records the values a triple gives to the step's new variables.
func (st *Step) Bind(t rdf.Triple, b Bindings) {
	for _, vp := range st.NewVars {
		b[vp.Var] = index.Field(t, vp.Pos)
	}
}

// Unbind clears the step's new variables (for backtracking traversals).
func (st *Step) Unbind(b Bindings) {
	for _, vp := range st.NewVars {
		b[vp.Var] = rdf.NoID
	}
}

// Matches reports whether triple t matches the step's pattern under the
// bindings (all bound positions agree). Used by exact engines when scanning
// candidate spans.
func (st *Step) Matches(t rdf.Triple, b Bindings) bool {
	for pos := index.Pos(0); pos < 3; pos++ {
		if st.Bound[pos] && index.Field(t, pos) != atomValue(st.Pattern.Atom(pos), b) {
			return false
		}
	}
	return true
}
