// Package card is the unified cardinality-estimation layer. Every
// estimation consumer — the query planner's EXPLAIN and variable-order
// selection, Audit Join's tipping oracle, CTJ's suffix estimation, and the
// sharded scatter's budget allocation — routes through the Estimator
// interface here instead of reading index statistics directly.
//
// Two implementations ship:
//
//   - SpanStats ("span", the default): the exact-span/per-predicate logic
//     the engines used before this layer existed, extracted verbatim. Its
//     multi-pattern estimates compose PostgreSQL's independence rule
//     |G_j| / max(ndv_here, ndv_there) per join variable (paper §IV-D).
//   - GraphSummary ("summary"): a typed graph summary in the style of
//     Stefanoni et al. — nodes bucketed by characteristic predicate set,
//     triple multiplicities recorded between buckets — which replaces the
//     independence divisors with conditional fan-outs where the query shape
//     allows, and falls back to SpanStats everywhere else.
//
// Estimates carry a confidence grade so consumers can gate decisions on
// estimate quality (ctj only reorders variable orders on high-confidence
// join sizes, which is what keeps SpanStats plan-identical to the
// pre-refactor planner).
package card

import (
	"fmt"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
)

// Est is a cardinality estimate with a confidence signal; the alias keeps
// card estimators directly usable where the query layer expects its own
// minimal Estimator interface.
type Est = query.Est

// Confidence grades, ordered by estimate quality.
const (
	// ConfExact marks an exact span lookup (or membership check).
	ConfExact = 1.0
	// ConfConditional marks composition under graph-summary conditional
	// fan-outs: approximate, but aware of predicate correlation.
	ConfConditional = 0.7
	// ConfComposed marks composition under the per-join-variable
	// independence rule over exact per-pattern spans.
	ConfComposed = 0.4
	// ConfIndependence marks the S+O-bound single-pattern estimate
	// |G_s|·|G_o|/N, the weakest signal the layer emits.
	ConfIndependence = 0.3
)

// Estimator names, accepted by ByName and the -estimator flags.
const (
	EstimatorSpan    = "span"
	EstimatorSummary = "summary"
)

// Suffix estimates |Γ_δ| — the number of full paths extending a walk prefix
// that has just completed step i under bindings b. It is the precomputed,
// per-plan form consumed on every Audit Join walk step by the tipping
// oracle.
type Suffix interface {
	Estimate(i int, b query.Bindings) float64
}

// SpanResolver abstracts how a Suffix resolves the exact width of a
// prefix-adjacent step's candidate set: a single store resolves spans
// directly (StoreResolver); the sharded engine unions subspans across
// shards. Membership steps report width 1 when the fully bound triple
// exists.
type SpanResolver interface {
	ResolveWidth(step int, b query.Bindings) (width float64, ok bool)
}

// Estimator is the full estimation contract. It subsumes query.Estimator
// (PatternCard, JoinSize), so any Estimator can drive Plan.Explain and the
// ctj planner directly.
type Estimator interface {
	query.Estimator

	// Name returns the registry name ("span", "summary").
	Name() string
	// PatternVarNdv estimates the number of distinct values the variable at
	// pos takes within the constant-restricted pattern.
	PatternVarNdv(p query.Pattern, pos index.Pos) float64
	// RootCount returns the number of level-0 walk roots of the plan — the
	// quantity shard budget allocation splits on. Both shipped estimators
	// answer it exactly (confidence 1), keeping budget splits
	// estimator-invariant.
	RootCount(pl *query.Plan) Est
	// NewSuffix precomputes the per-step suffix factors for a plan. The
	// resolver supplies exact candidate-set widths for prefix-adjacent
	// steps.
	NewSuffix(pl *query.Plan, res SpanResolver) Suffix
	// Scope returns an estimator of the same kind over a different store
	// set (e.g. one stratum of a shard set).
	Scope(stores ...*index.Store) Estimator
}

// ByName constructs the named estimator over the stores. The empty name
// selects the default (span statistics).
func ByName(name string, stores ...*index.Store) (Estimator, error) {
	switch name {
	case "", EstimatorSpan:
		return NewSpanStats(stores...), nil
	case EstimatorSummary:
		return NewGraphSummary(stores...), nil
	default:
		return nil, fmt.Errorf("card: unknown estimator %q (have %q, %q)", name, EstimatorSpan, EstimatorSummary)
	}
}

// StoreResolver resolves candidate-set widths against a single store — the
// SpanResolver every unsharded consumer uses.
type StoreResolver struct {
	Store *index.Store
	Plan  *query.Plan
}

func (r StoreResolver) ResolveWidth(step int, b query.Bindings) (float64, bool) {
	st := &r.Plan.Steps[step]
	sp, ok := st.ResolveSpan(r.Store, b)
	if !ok {
		return 0, false
	}
	if st.Kind == query.AccessMembership {
		return 1, true
	}
	return float64(sp.Len()), true
}

// Filter-selectivity heuristics, in the System R tradition: without value
// histograms the layer cannot do better than fixed fractions per comparison
// shape. They only scale estimates — every engine enforces filters exactly —
// so a bad guess costs walk efficiency (tipping a little early or late) and
// plan choice, never correctness.
const (
	// SelEq is the assumed fraction kept by an equality filter.
	SelEq = 0.1
	// SelNe is the assumed fraction kept by an inequality filter.
	SelNe = 0.9
	// SelOrdered is the assumed fraction kept by <, <=, > or >=.
	SelOrdered = 1.0 / 3
)

// FilterSelectivity returns the heuristic fraction of assignments one filter
// keeps.
func FilterSelectivity(f *query.Filter) float64 {
	switch f.Op {
	case query.CmpEq:
		return SelEq
	case query.CmpNe:
		return SelNe
	default:
		return SelOrdered
	}
}

// QueryFilterSelectivity is the product of the query's filter selectivities
// under the usual independence assumption — the factor JoinSize folds into
// whole-plan estimates.
func QueryFilterSelectivity(q *query.Query) float64 {
	sel := 1.0
	for i := range q.Filters {
		sel *= FilterSelectivity(&q.Filters[i])
	}
	return sel
}

// pendingFilterSel precomputes, per prefix end i, the joint selectivity of
// the filters anchored STRICTLY AFTER step i — the filters a suffix
// estimate |Γ_δ| has not yet accounted for. nil when the plan has none
// (the common case pays nothing).
func pendingFilterSel(pl *query.Plan) []float64 {
	if !pl.HasFilters() {
		return nil
	}
	n := len(pl.Steps)
	pending := make([]float64, n)
	acc := 1.0
	for i := n - 1; i >= 0; i-- {
		pending[i] = acc
		for _, fi := range pl.Steps[i].Filters {
			acc *= FilterSelectivity(&pl.Query.Filters[fi])
		}
	}
	return pending
}

// suffix is the shared Suffix implementation: per-step statistics factors
// precomputed at construction (by SpanStats or GraphSummary), exact widths
// resolved live for steps adjacent to the prefix. It mirrors the walk
// invariant that after step i exactly the variables first bound by steps
// 0..i are set.
type suffix struct {
	pl  *query.Plan
	res SpanResolver
	// factor[j] is the statistics contribution of step j when it is not
	// prefix-adjacent; zero propagates an empty-suffix verdict.
	factor []float64
	// adjFrom[j] is the earliest prefix end i at which all of step j's join
	// variables are bound; len(pl.Steps) when step j has none.
	adjFrom []int
	// pending[i] scales the estimate by the joint selectivity of filters
	// anchored after step i (nil for filterless plans). This only biases the
	// tipping decision toward the exact finish on filtered plans — the
	// filtered suffix really is smaller — never the estimates themselves.
	pending []float64
}

func (e *suffix) Estimate(i int, b query.Bindings) float64 {
	est := 1.0
	for j := i + 1; j < len(e.pl.Steps); j++ {
		if e.adjFrom[j] <= i {
			w, ok := e.res.ResolveWidth(j, b)
			if !ok {
				return 0
			}
			est *= w
			continue
		}
		est *= e.factor[j]
		if est == 0 {
			return 0
		}
	}
	if e.pending != nil {
		est *= e.pending[i]
	}
	return est
}

// adjacencyFrom computes adjFrom for a plan (see suffix).
func adjacencyFrom(pl *query.Plan) []int {
	n := len(pl.Steps)
	firstBound := make([]int, pl.NumVars())
	for i := range pl.Steps {
		for _, vp := range pl.Steps[i].NewVars {
			firstBound[vp.Var] = i
		}
	}
	adjFrom := make([]int, n)
	for j := range pl.Steps {
		st := &pl.Steps[j]
		adjFrom[j] = n
		if len(st.JoinVars) > 0 {
			adjFrom[j] = 0
			for _, jv := range st.JoinVars {
				if fb := firstBound[jv.Var]; fb > adjFrom[j] {
					adjFrom[j] = fb
				}
			}
		}
	}
	return adjFrom
}
