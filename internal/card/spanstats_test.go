package card

import (
	"math/rand"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// testData is the running-example fixture (people, birth places, types)
// shared with the query package's tests.
func testData(t *testing.T) (*index.Store, *rdf.Dict) {
	t.Helper()
	g := rdf.NewGraph()
	g.AddIRIs("alice", "birthPlace", "paris")
	g.AddIRIs("bob", "birthPlace", "paris")
	g.AddIRIs("carol", "birthPlace", "lima")
	g.AddIRIs("dave", "birthPlace", "lima")
	g.AddIRIs("eve", "birthPlace", "rome")
	for _, s := range []string{"alice", "bob", "carol", "dave"} {
		g.AddIRIs(s, rdf.RDFType, "Person")
	}
	g.AddIRIs("eve", rdf.RDFType, "Robot")
	g.AddIRIs("paris", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "City")
	g.AddIRIs("rome", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "Capital")
	g.Dedup()
	return index.Build(g), g.Dict
}

// birthPlaceQuery is the query of Fig. 5: SELECT ?c COUNT(DISTINCT ?o)
// WHERE { ?s birthPlace ?o . ?s type Person . ?o type ?c } GROUP BY ?c.
func birthPlaceQuery(t *testing.T, d *rdf.Dict) *query.Query {
	t.Helper()
	bp, _ := d.LookupIRI("birthPlace")
	ty, _ := d.LookupIRI(rdf.RDFType)
	person, _ := d.LookupIRI("Person")
	return &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(bp), O: query.V(1)},
			{S: query.V(0), P: query.C(ty), O: query.C(person)},
			{S: query.V(1), P: query.C(ty), O: query.V(2)},
		},
		Alpha:    2,
		Beta:     1,
		Distinct: true,
	}
}

func TestPatternCard(t *testing.T) {
	st, d := testData(t)
	s := NewSpanStats(st)
	bp, _ := d.LookupIRI("birthPlace")
	ty, _ := d.LookupIRI(rdf.RDFType)
	alice, _ := d.LookupIRI("alice")
	paris, _ := d.LookupIRI("paris")
	person, _ := d.LookupIRI("Person")

	cases := []struct {
		name string
		p    query.Pattern
		want float64
		conf float64
	}{
		{"all vars", query.Pattern{S: query.V(0), P: query.V(1), O: query.V(2)}, float64(st.NumTriples()), ConfExact},
		{"p const", query.Pattern{S: query.V(0), P: query.C(bp), O: query.V(1)}, 5, ConfExact},
		{"s const", query.Pattern{S: query.C(alice), P: query.V(0), O: query.V(1)}, 2, ConfExact},
		{"o const", query.Pattern{S: query.V(0), P: query.V(1), O: query.C(paris)}, 2, ConfExact},
		{"sp const", query.Pattern{S: query.C(alice), P: query.C(bp), O: query.V(0)}, 1, ConfExact},
		{"po const", query.Pattern{S: query.V(0), P: query.C(ty), O: query.C(person)}, 4, ConfExact},
		{"spo present", query.Pattern{S: query.C(alice), P: query.C(bp), O: query.C(paris)}, 1, ConfExact},
		{"spo absent", query.Pattern{S: query.C(alice), P: query.C(bp), O: query.C(person)}, 0, ConfExact},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := s.PatternCard(c.p)
			if got.Value != c.want {
				t.Errorf("PatternCard = %v, want %v", got.Value, c.want)
			}
			if got.Confidence != c.conf {
				t.Errorf("Confidence = %v, want %v", got.Confidence, c.conf)
			}
		})
	}
}

// TestPatternCardSOClamp checks the S+O-bound estimate: float-valued, graded
// ConfIndependence, clamped to >= 1 when both spans are non-empty (a
// rare-but-possible pair must not read as an empty suffix), and exactly 0
// when either span is empty (then no match provably exists).
func TestPatternCardSOClamp(t *testing.T) {
	st, d := testData(t)
	s := NewSpanStats(st)
	alice, _ := d.LookupIRI("alice")
	paris, _ := d.LookupIRI("paris")
	bp, _ := d.LookupIRI("birthPlace")

	got := s.PatternCard(query.Pattern{S: query.C(alice), P: query.V(0), O: query.C(paris)})
	// |G_alice|=2, |G_->paris|=2, N=12: raw estimate 1/3, clamped to 1.
	if got.Value != 1 {
		t.Errorf("clamped S+O estimate = %v, want 1", got.Value)
	}
	if got.Confidence != ConfIndependence {
		t.Errorf("S+O confidence = %v, want %v", got.Confidence, ConfIndependence)
	}
	// birthPlace never occurs as an object: provably empty, no clamp.
	got = s.PatternCard(query.Pattern{S: query.C(alice), P: query.V(0), O: query.C(bp)})
	if got.Value != 0 {
		t.Errorf("provably-empty S+O estimate = %v, want 0", got.Value)
	}
}

func TestPatternVarNdv(t *testing.T) {
	st, d := testData(t)
	s := NewSpanStats(st)
	bp, _ := d.LookupIRI("birthPlace")
	ty, _ := d.LookupIRI(rdf.RDFType)
	person, _ := d.LookupIRI("Person")
	alice, _ := d.LookupIRI("alice")

	p := query.Pattern{S: query.V(0), P: query.C(bp), O: query.V(1)}
	if got := s.PatternVarNdv(p, index.S); got != 5 {
		t.Errorf("ndv(s | birthPlace) = %v, want 5", got)
	}
	if got := s.PatternVarNdv(p, index.O); got != 3 {
		t.Errorf("ndv(o | birthPlace) = %v, want 3", got)
	}
	p2 := query.Pattern{S: query.V(0), P: query.C(ty), O: query.C(person)}
	if got := s.PatternVarNdv(p2, index.S); got != 4 {
		t.Errorf("ndv(s | type Person) = %v, want 4", got)
	}
	p3 := query.Pattern{S: query.C(alice), P: query.V(0), O: query.V(1)}
	if got := s.PatternVarNdv(p3, index.P); got != 2 {
		t.Errorf("ndv(p | alice) = %v, want 2", got)
	}
	p4 := query.Pattern{S: query.V(0), P: query.V(1), O: query.V(2)}
	stats := st.Stats()
	if got := s.PatternVarNdv(p4, index.P); got != float64(stats.NdvP) {
		t.Errorf("global ndv(p) = %v, want %d", got, stats.NdvP)
	}
	if got := s.PatternVarNdv(p4, index.S); got != float64(stats.NdvS) {
		t.Errorf("global ndv(s) = %v, want %d", got, stats.NdvS)
	}
	if got := s.PatternVarNdv(p4, index.O); got != float64(stats.NdvO) {
		t.Errorf("global ndv(o) = %v, want %d", got, stats.NdvO)
	}
	if got := s.PatternVarNdv(query.Pattern{S: query.V(0), P: query.C(rdf.ID(9999)), O: query.V(1)}, index.S); got != 0 {
		t.Errorf("ndv over empty pattern = %v, want 0", got)
	}
}

func TestSuffixAdjacentExact(t *testing.T) {
	st, d := testData(t)
	pl, err := query.Compile(birthPlaceQuery(t, d))
	if err != nil {
		t.Fatal(err)
	}
	suf := NewSpanStats(st).NewSuffix(pl, StoreResolver{Store: st, Plan: pl})
	b := pl.NewBindings()
	alice, _ := d.LookupIRI("alice")
	paris, _ := d.LookupIRI("paris")
	b[0], b[1] = alice, paris
	// After step 0 with (alice, paris): step 1 membership (1 way) and step 2
	// resolves exactly (paris has 1 type), so the estimate is exact: 1.
	if got := suf.Estimate(0, b); got != 1 {
		t.Errorf("Estimate = %v, want 1", got)
	}
	carol, _ := d.LookupIRI("carol")
	lima, _ := d.LookupIRI("lima")
	b[0], b[1] = carol, lima
	if got := suf.Estimate(0, b); got != 2 {
		t.Errorf("Estimate(carol) = %v, want 2", got)
	}
	eve, _ := d.LookupIRI("eve")
	rome, _ := d.LookupIRI("rome")
	b[0], b[1] = eve, rome
	if got := suf.Estimate(0, b); got != 0 {
		t.Errorf("Estimate(eve) = %v, want 0", got)
	}
	if got := suf.Estimate(len(pl.Steps)-1, b); got != 1 {
		t.Errorf("Estimate at last step = %v, want 1", got)
	}
}

func TestJoinSizePositive(t *testing.T) {
	st, d := testData(t)
	pl, _ := query.Compile(birthPlaceQuery(t, d))
	est := NewSpanStats(st).JoinSize(pl)
	// Exact join size is 6; the composed estimate should land nearby.
	if est.Value <= 0 || est.Value > 30 {
		t.Errorf("JoinSize = %v, want a positive value near 6", est.Value)
	}
	if est.Confidence != ConfComposed {
		t.Errorf("multi-pattern JoinSize confidence = %v, want %v", est.Confidence, ConfComposed)
	}
}

func TestRootCountExact(t *testing.T) {
	st, d := testData(t)
	pl, _ := query.Compile(birthPlaceQuery(t, d))
	for _, est := range []Estimator{NewSpanStats(st), NewGraphSummary(st)} {
		rc := est.RootCount(pl)
		if rc.Value != 5 { // the five birthPlace triples
			t.Errorf("%s RootCount = %v, want 5", est.Name(), rc.Value)
		}
		if rc.Confidence != ConfExact {
			t.Errorf("%s RootCount confidence = %v, want exact", est.Name(), rc.Confidence)
		}
	}
}

func TestByName(t *testing.T) {
	st, _ := testData(t)
	for name, want := range map[string]string{
		"":        EstimatorSpan,
		"span":    EstimatorSpan,
		"summary": EstimatorSummary,
	} {
		est, err := ByName(name, st)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if est.Name() != want {
			t.Errorf("ByName(%q).Name() = %q, want %q", name, est.Name(), want)
		}
	}
	if _, err := ByName("nope", st); err == nil {
		t.Error("ByName accepted an unknown estimator")
	}
}

// ---- pre-refactor reference implementation ----
//
// The functions below are the estimation code that lived in internal/query
// before the card layer existed, kept verbatim (int-valued) as the
// equivalence oracle: SpanStats must reproduce its pattern cardinalities,
// ndv estimates and suffix estimates bit-for-bit on every mask the compiled
// plans produce (the S+O-bound mask is the one documented difference and is
// not reachable from compiled plans).

func refPatternCard(store *index.Store, p query.Pattern) int {
	sConst, pConst, oConst := !p.S.IsVar(), !p.P.IsVar(), !p.O.IsVar()
	switch {
	case !sConst && !pConst && !oConst:
		return store.NumTriples()
	case sConst && !pConst && !oConst:
		return store.SpanL1(index.SPO, p.S.ID).Len()
	case !sConst && pConst && !oConst:
		return store.SpanL1(index.PSO, p.P.ID).Len()
	case !sConst && !pConst && oConst:
		return store.SpanL1(index.OPS, p.O.ID).Len()
	case sConst && pConst && !oConst:
		return store.SpanL2(index.PSO, p.P.ID, p.S.ID).Len()
	case !sConst && pConst && oConst:
		return store.SpanL2(index.POS, p.P.ID, p.O.ID).Len()
	case sConst && !pConst && oConst:
		n := store.NumTriples()
		if n == 0 {
			return 0
		}
		est := float64(store.SpanL1(index.SPO, p.S.ID).Len()) *
			float64(store.SpanL1(index.OPS, p.O.ID).Len()) / float64(n)
		return int(est + 0.5)
	default:
		if store.Contains(rdf.Triple{S: p.S.ID, P: p.P.ID, O: p.O.ID}) {
			return 1
		}
		return 0
	}
}

func refPatternVarNdv(store *index.Store, p query.Pattern, pos index.Pos) int {
	card := refPatternCard(store, p)
	if card == 0 {
		return 0
	}
	stats := store.Stats()
	sConst, pConst, oConst := !p.S.IsVar(), !p.P.IsVar(), !p.O.IsVar()
	nConst := 0
	for _, c := range []bool{sConst, pConst, oConst} {
		if c {
			nConst++
		}
	}
	if nConst >= 2 {
		return card
	}
	if pConst {
		ps := store.PredStatOf(p.P.ID)
		switch pos {
		case index.S:
			return ps.NdvS
		case index.O:
			return ps.NdvO
		}
		return 1
	}
	if nConst == 0 {
		switch pos {
		case index.S:
			return stats.NdvS
		case index.P:
			return stats.NdvP
		default:
			return stats.NdvO
		}
	}
	return card
}

func refNdvAtBindingSite(store *index.Store, pl *query.Plan, v query.Var) int {
	for s := range pl.Steps {
		for _, vp := range pl.Steps[s].NewVars {
			if vp.Var == v {
				return refPatternVarNdv(store, pl.Steps[s].Pattern, vp.Pos)
			}
		}
	}
	return 1
}

func refEstimateSuffixSize(store *index.Store, pl *query.Plan, i int, b query.Bindings) float64 {
	est := 1.0
	for j := i + 1; j < len(pl.Steps); j++ {
		st := &pl.Steps[j]
		adjacent := true
		for _, jv := range st.JoinVars {
			if b[jv.Var] == rdf.NoID {
				adjacent = false
			}
		}
		if adjacent && len(st.JoinVars) > 0 {
			sp, ok := st.ResolveSpan(store, b)
			if !ok {
				return 0
			}
			if st.Kind != query.AccessMembership {
				est *= float64(sp.Len())
			}
			continue
		}
		card := float64(refPatternCard(store, st.Pattern))
		if card == 0 {
			return 0
		}
		f := card
		for _, jv := range st.JoinVars {
			ndvHere := refPatternVarNdv(store, st.Pattern, jv.Pos)
			ndvThere := refNdvAtBindingSite(store, pl, jv.Var)
			d := ndvHere
			if ndvThere > d {
				d = ndvThere
			}
			if d > 0 {
				f /= float64(d)
			}
		}
		est *= f
		if est == 0 {
			return 0
		}
	}
	return est
}

func refEstimateJoinSize(store *index.Store, pl *query.Plan) float64 {
	est := float64(refPatternCard(store, pl.Steps[0].Pattern))
	for j := 1; j < len(pl.Steps); j++ {
		st := &pl.Steps[j]
		f := float64(refPatternCard(store, st.Pattern))
		for _, jv := range st.JoinVars {
			ndvHere := refPatternVarNdv(store, st.Pattern, jv.Pos)
			ndvThere := refNdvAtBindingSite(store, pl, jv.Var)
			d := ndvHere
			if ndvThere > d {
				d = ndvThere
			}
			if d > 0 {
				f /= float64(d)
			}
		}
		est *= f
	}
	return est
}

// TestSpanStatsMatchesReference drives random walks over compiled plans on
// random graphs and checks at every prefix that SpanStats' suffix estimate
// is bit-identical to the pre-refactor EstimateSuffixSize — the property
// that keeps Audit Join's tip decisions unchanged by the refactor. Join
// sizes and pattern statistics are compared the same way.
func TestSpanStatsMatchesReference(t *testing.T) {
	for _, seed := range []int64{3, 7, 11} {
		g := testkit.RandomGraph(seed, 30, 4, 25, 400)
		st := index.Build(g)
		q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
		pl, err := query.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSpanStats(st)

		for _, step := range pl.Steps {
			p := step.Pattern
			if got, want := s.PatternCard(p).Value, float64(refPatternCard(st, p)); got != want {
				t.Fatalf("seed %d: PatternCard(%v) = %v, ref %v", seed, p, got, want)
			}
			for _, pos := range []index.Pos{index.S, index.P, index.O} {
				if got, want := s.PatternVarNdv(p, pos), float64(refPatternVarNdv(st, p, pos)); got != want {
					t.Fatalf("seed %d: PatternVarNdv(%v, %v) = %v, ref %v", seed, p, pos, got, want)
				}
			}
		}
		if got, want := s.JoinSize(pl).Value, refEstimateJoinSize(st, pl); got != want {
			t.Fatalf("seed %d: JoinSize = %v, ref %v", seed, got, want)
		}

		suf := s.NewSuffix(pl, StoreResolver{Store: st, Plan: pl})
		rng := rand.New(rand.NewSource(seed))
		for walk := 0; walk < 300; walk++ {
			b := pl.NewBindings()
			for i := range pl.Steps {
				stp := &pl.Steps[i]
				sp, ok := stp.ResolveSpan(st, b)
				if !ok {
					break
				}
				if stp.Kind != query.AccessMembership {
					stp.Bind(st.Sample(stp.Order, sp, rng), b)
				}
				got := suf.Estimate(i, b)
				want := refEstimateSuffixSize(st, pl, i, b)
				if got != want {
					t.Fatalf("seed %d walk %d step %d: Estimate = %g, ref = %g (b=%v)", seed, walk, i, got, want, b)
				}
			}
		}
	}
}
