package card

import (
	"sync"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// GraphSummary estimates over the typed graph summary (index.Summary):
// nodes bucketed by characteristic predicate set, triple multiplicities
// between buckets. Single-pattern estimates stay exact span lookups
// (delegated to SpanStats — the summary cannot beat an exact span). Its
// value is in multi-pattern composition: for chain-shaped joins it replaces
// the independence divisor max(ndv_here, ndv_there) with a conditional
// fan-out computed per bucket, which captures predicate correlation ("nodes
// reached via q rarely have p at all") that span statistics cannot see.
//
// Over a shard set the per-shard summaries are merged (characteristic sets
// unioned, counts summed); see index.MergeSummaries for the approximation
// this introduces on edge-target buckets.
//
// The merged summary and its aggregates are built lazily on first
// multi-pattern use, so consumers that only need exact paths (root counts,
// single patterns) never pay for a summary build on pre-v2 snapshots.
type GraphSummary struct {
	stores []*index.Store
	span   *SpanStats

	once sync.Once
	sum  *index.Summary
	// out[pb]/in[pb] count triples with predicate pb.p leaving/entering
	// bucket pb.b; gp is the per-predicate total.
	out, in map[predBucket]float64
	gp      map[rdf.ID]float64
}

type predBucket struct {
	p rdf.ID
	b int32
}

// NewGraphSummary returns the summary estimator over the stores. The
// underlying summaries are taken from the stores (snapshot-restored or
// built lazily).
func NewGraphSummary(stores ...*index.Store) *GraphSummary {
	return &GraphSummary{stores: stores, span: NewSpanStats(stores...)}
}

func (g *GraphSummary) Name() string { return EstimatorSummary }

func (g *GraphSummary) Scope(stores ...*index.Store) Estimator { return NewGraphSummary(stores...) }

// Summary exposes the merged summary (building it if needed), for
// diagnostics such as `kgsnap info`.
func (g *GraphSummary) Summary() *index.Summary {
	g.init()
	return g.sum
}

func (g *GraphSummary) init() {
	g.once.Do(func() {
		sums := make([]*index.Summary, len(g.stores))
		for i, st := range g.stores {
			sums[i] = st.Summary()
		}
		g.sum = index.MergeSummaries(sums)
		g.out = make(map[predBucket]float64)
		g.in = make(map[predBucket]float64)
		g.gp = make(map[rdf.ID]float64)
		for _, e := range g.sum.Edges {
			c := float64(e.Count)
			g.out[predBucket{e.Pred, e.From}] += c
			g.in[predBucket{e.Pred, e.To}] += c
			g.gp[e.Pred] += c
		}
	})
}

// Exact single-pattern paths delegate to span statistics.
func (g *GraphSummary) PatternCard(p query.Pattern) Est { return g.span.PatternCard(p) }

func (g *GraphSummary) PatternVarNdv(p query.Pattern, pos index.Pos) float64 {
	return g.span.PatternVarNdv(p, pos)
}

func (g *GraphSummary) RootCount(pl *query.Plan) Est { return g.span.RootCount(pl) }

// condFactor computes the conditional fan-out of step j: the expected
// number of extensions per prefix path, conditioned on how the step's join
// variable was produced. It applies to pure fan-out steps — constant
// predicate p, exactly one join variable at S or O, the remaining position
// an unbound variable — whose join variable was first bound at S or O of a
// constant-predicate pattern q. Then
//
//	factor = Σ_b P(bucket = b | produced by q) · deg_p(b)
//
// where deg_p(b) is the average number of p-edges leaving (join var at S)
// or entering (join var at O) a bucket-b node. Shapes outside this return
// ok=false and the caller falls back to the independence factor.
func (g *GraphSummary) condFactor(pl *query.Plan, j int) (float64, bool) {
	st := &pl.Steps[j]
	if len(st.JoinVars) != 1 || st.Pattern.P.IsVar() || len(st.NewVars) != 1 {
		return 0, false
	}
	jv := st.JoinVars[0]
	if jv.Pos == index.P || st.NewVars[0].Pos == index.P {
		return 0, false
	}
	site, sitePos, ok := bindingSite(pl, jv.Var)
	if !ok || sitePos == index.P {
		return 0, false
	}
	sp := &pl.Steps[site].Pattern
	if sp.P.IsVar() {
		return 0, false
	}
	q, p := sp.P.ID, st.Pattern.P.ID

	// dist(b): triple counts of q broken down by the bucket the join
	// variable's value lands in. When the binding site's other end is a
	// constant, condition on that constant's bucket too (e.g. for
	// (?x type C) the distribution narrows to type-edges into C's bucket).
	var distOf func(b int32) float64
	switch sitePos {
	case index.O:
		if !sp.S.IsVar() {
			from := g.bucketOfNode(sp.S.ID)
			distOf = func(b int32) float64 { return g.edgeCount(q, from, b) }
		} else {
			distOf = func(b int32) float64 { return g.in[predBucket{q, b}] }
		}
	default: // index.S
		if !sp.O.IsVar() {
			to := g.bucketOfNode(sp.O.ID)
			distOf = func(b int32) float64 { return g.edgeCount(q, b, to) }
		} else {
			distOf = func(b int32) float64 { return g.out[predBucket{q, b}] }
		}
	}

	var total, est float64
	for b := int32(0); b < int32(g.sum.NumBuckets); b++ {
		w := distOf(b)
		if w == 0 {
			continue
		}
		total += w
		nodes := float64(g.sum.BucketNodes[b])
		if nodes == 0 {
			continue
		}
		var deg float64
		if jv.Pos == index.S {
			deg = g.out[predBucket{p, b}] / nodes
		} else {
			deg = g.in[predBucket{p, b}] / nodes
		}
		est += w * deg
	}
	if total == 0 {
		// The summary says the binding site produces nothing; the suffix
		// estimate is genuinely 0.
		return 0, true
	}
	return est / total, true
}

// edgeCount returns the summary count of (from, p, to) triples. Edges are
// sorted by (Pred, From, To); a linear scan suffices because condFactor runs
// once per (plan, step), not per walk.
func (g *GraphSummary) edgeCount(p rdf.ID, from, to int32) float64 {
	for _, e := range g.sum.Edges {
		if e.Pred == p && e.From == from && e.To == to {
			return float64(e.Count)
		}
	}
	return 0
}

// bucketOfNode finds the bucket of a concrete node: its characteristic set
// is read from whichever store holds its out-edges (exactly one under
// subject-hash partitioning) and looked up among the summary's buckets.
// Nodes with no out-edges are leaves (bucket 0).
func (g *GraphSummary) bucketOfNode(id rdf.ID) int32 {
	var preds []rdf.ID
	for _, store := range g.stores {
		sp := store.SpanL1(index.SPO, id)
		if sp.Empty() {
			continue
		}
		ts := store.Triples(index.SPO)
		for i := sp.Lo; i < sp.Hi; i++ {
			p := ts[i].P
			if len(preds) == 0 || p != preds[len(preds)-1] {
				preds = append(preds, p)
			}
		}
		break
	}
	if len(preds) == 0 {
		return 0
	}
	for b := 1; b < g.sum.NumBuckets; b++ {
		if predsEqual(g.sum.CharSet(b), preds) {
			return int32(b)
		}
	}
	return 0
}

func predsEqual(a, b []rdf.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bindingSite locates the step and position where v is first bound.
func bindingSite(pl *query.Plan, v query.Var) (step int, pos index.Pos, ok bool) {
	for i := range pl.Steps {
		for _, vp := range pl.Steps[i].NewVars {
			if vp.Var == v {
				return i, vp.Pos, true
			}
		}
	}
	return 0, 0, false
}

// JoinSize composes the whole-plan estimate: exact first-pattern
// cardinality, then per step the conditional fan-out where available and
// the independence factor otherwise. Confidence is ConfConditional only
// when every joining step got a conditional factor.
func (g *GraphSummary) JoinSize(pl *query.Plan) Est {
	if len(pl.Steps) == 1 {
		return g.span.PatternCard(pl.Steps[0].Pattern)
	}
	g.init()
	first := g.span.PatternCard(pl.Steps[0].Pattern)
	est := first.Value
	conf := first.Confidence
	allCond := true
	for j := 1; j < len(pl.Steps); j++ {
		if f, ok := g.condFactor(pl, j); ok {
			est *= f
			continue
		}
		if len(pl.Steps[j].JoinVars) > 0 {
			allCond = false
		}
		est *= g.span.stepFactor(pl, j)
	}
	lim := ConfConditional
	if !allCond {
		lim = ConfComposed
	}
	if sel := QueryFilterSelectivity(pl.Query); sel < 1 {
		// Heuristic selectivities are never better than composed confidence.
		est *= sel
		if lim > ConfComposed {
			lim = ConfComposed
		}
	}
	if conf > lim {
		conf = lim
	}
	return Est{Value: est, Confidence: conf}
}

// NewSuffix precomputes suffix factors like SpanStats, with conditional
// fan-outs substituted wherever the step shape allows.
func (g *GraphSummary) NewSuffix(pl *query.Plan, res SpanResolver) Suffix {
	g.init()
	factor := g.span.factors(pl)
	for j := range pl.Steps {
		if f, ok := g.condFactor(pl, j); ok {
			factor[j] = f
		}
	}
	return &suffix{pl: pl, res: res, factor: factor,
		adjFrom: adjacencyFrom(pl), pending: pendingFilterSel(pl)}
}
