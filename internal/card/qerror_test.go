// The q-error harness lives in an external test package: it drives the
// estimators through the committed workload generator, whose ground-truth
// evaluator (internal/ctj) itself depends on internal/card.
package card_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"kgexplore/internal/card"
	"kgexplore/internal/ctj"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
	"kgexplore/internal/workload"
)

// qerr is the standard cardinality-estimation error metric:
// max(est/actual, actual/est), 1 for a perfect estimate.
func qerr(est, actual float64) float64 {
	if est <= 0 || actual <= 0 {
		return math.Inf(1)
	}
	return math.Max(est/actual, actual/est)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// TestQErrorHarness compares both estimators' whole-plan join-size estimates
// against exact CTJ counts over the paper's exploration workload (§V-B).
// Every estimate over a non-empty join must be positive and finite, and on
// the multi-pattern subset — where the summary's conditional fan-outs apply —
// the summary estimator must not be worse than span statistics in the median.
func TestQErrorHarness(t *testing.T) {
	g, schema, err := kggen.Generate(kggen.DBpediaSim(0.01))
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	gen := &workload.Generator{Store: st, Schema: schema, Seed: 42, MaxSteps: 4}
	recs := gen.Paths(12)
	if len(recs) == 0 {
		t.Fatal("workload generated no steps")
	}

	span := card.NewSpanStats(st)
	summary := card.NewGraphSummary(st)
	var spanQ, sumQ []float64
	multi := 0
	for _, r := range recs {
		actual := float64(ctj.Count(st, r.Plan))
		if actual == 0 {
			continue // workload discards empty charts; defensive
		}
		qs := qerr(span.JoinSize(r.Plan).Value, actual)
		qg := qerr(summary.JoinSize(r.Plan).Value, actual)
		if math.IsInf(qs, 1) {
			t.Errorf("span estimated a non-empty join (%g rows) as empty: %v", actual, r.Query)
		}
		if math.IsInf(qg, 1) {
			t.Errorf("summary estimated a non-empty join (%g rows) as empty: %v", actual, r.Query)
		}
		if len(r.Plan.Steps) < 2 {
			continue // single patterns are exact for both; nothing to compare
		}
		multi++
		spanQ = append(spanQ, qs)
		sumQ = append(sumQ, qg)
	}
	if multi == 0 {
		t.Fatal("workload produced no multi-pattern steps")
	}
	ms, mg := median(spanQ), median(sumQ)
	t.Logf("multi-pattern steps: %d; median q-error span=%.3f summary=%.3f", multi, ms, mg)
	if mg > ms {
		t.Errorf("summary median q-error %.3f worse than span %.3f", mg, ms)
	}
}

// TestEstimatorsExactOnServableSpans is the property test of the estimation
// contract: on every single-pattern constant mask the four maintained orders
// can serve (all but S+O-bound), both estimators return the exact match count
// with ConfExact — for present and absent constants alike.
func TestEstimatorsExactOnServableSpans(t *testing.T) {
	for _, seed := range []int64{5, 13, 29} {
		g := testkit.RandomGraph(seed, 40, 5, 30, 500)
		st := index.Build(g)
		rng := rand.New(rand.NewSource(seed))
		ests := []card.Estimator{card.NewSpanStats(st), card.NewGraphSummary(st)}

		for trial := 0; trial < 60; trial++ {
			// Half the trials use an existing triple's constants, half random
			// IDs (often absent), so zero counts are exercised too.
			var s, p, o rdf.ID
			if trial%2 == 0 {
				tr := g.Triples[rng.Intn(len(g.Triples))]
				s, p, o = tr.S, tr.P, tr.O
			} else {
				s, p, o = rdf.ID(rng.Intn(80)), rdf.ID(rng.Intn(80)), rdf.ID(rng.Intn(80))
			}
			atom := func(c bool, id rdf.ID, v query.Var) query.Atom {
				if c {
					return query.C(id)
				}
				return query.V(v)
			}
			for mask := 0; mask < 8; mask++ {
				sC, pC, oC := mask&4 != 0, mask&2 != 0, mask&1 != 0
				if sC && oC && !pC {
					continue // the one unservable mask; graded ConfIndependence
				}
				pat := query.Pattern{
					S: atom(sC, s, 0),
					P: atom(pC, p, 1),
					O: atom(oC, o, 2),
				}
				var want float64
				for _, tr := range g.Triples {
					if (!sC || tr.S == s) && (!pC || tr.P == p) && (!oC || tr.O == o) {
						want++
					}
				}
				for _, est := range ests {
					got := est.PatternCard(pat)
					if got.Value != want {
						t.Fatalf("seed %d mask %03b: %s PatternCard(%v) = %v, exact %v",
							seed, mask, est.Name(), pat, got.Value, want)
					}
					if got.Confidence != card.ConfExact {
						t.Fatalf("seed %d mask %03b: %s confidence = %v, want exact",
							seed, mask, est.Name(), got.Confidence)
					}
				}
			}
		}
	}
}
