package card

import (
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// SpanStats is the default estimator: exact span lookups per pattern,
// PostgreSQL's independence rule per join variable for multi-pattern
// composition. Over several stores (a shard set) all statistics are summed
// set-level totals. The arithmetic is kept operation-for-operation identical
// to the pre-refactor query/ctj/shard code so plans, tip decisions and
// budget splits are unchanged — the one deliberate difference is the
// S+O-bound pattern estimate, which is float-valued (it used to round to
// int, collapsing estimates below 0.5 to a false "empty suffix").
type SpanStats struct {
	stores []*index.Store
}

// NewSpanStats returns the span-statistics estimator over the stores.
func NewSpanStats(stores ...*index.Store) *SpanStats {
	return &SpanStats{stores: stores}
}

func (s *SpanStats) Name() string { return EstimatorSpan }

func (s *SpanStats) Scope(stores ...*index.Store) Estimator { return NewSpanStats(stores...) }

// PatternCard returns the number of triples matching the pattern's constant
// positions — an exact O(1) span lookup per store for every constant
// combination the exploration fragment produces. The S+O-bound combination
// is not servable by the four maintained orders; it gets the independence
// estimate |G_s|·|G_o|/N, clamped to ≥1 when both spans are non-empty so a
// rare-but-possible pair never reads as an empty suffix.
func (s *SpanStats) PatternCard(p query.Pattern) Est {
	sConst, pConst, oConst := !p.S.IsVar(), !p.P.IsVar(), !p.O.IsVar()
	var v float64
	conf := ConfExact
	clamp := false
	for _, store := range s.stores {
		switch {
		case !sConst && !pConst && !oConst:
			v += float64(store.NumTriples())
		case sConst && !pConst && !oConst:
			v += float64(store.SpanL1(index.SPO, p.S.ID).Len())
		case !sConst && pConst && !oConst:
			v += float64(store.SpanL1(index.PSO, p.P.ID).Len())
		case !sConst && !pConst && oConst:
			v += float64(store.SpanL1(index.OPS, p.O.ID).Len())
		case sConst && pConst && !oConst:
			v += float64(store.SpanL2(index.PSO, p.P.ID, p.S.ID).Len())
		case !sConst && pConst && oConst:
			v += float64(store.SpanL2(index.POS, p.P.ID, p.O.ID).Len())
		case sConst && !pConst && oConst:
			conf = ConfIndependence
			n := store.NumTriples()
			if n == 0 {
				continue
			}
			gs := store.SpanL1(index.SPO, p.S.ID).Len()
			gro := store.SpanL1(index.OPS, p.O.ID).Len()
			if gs > 0 && gro > 0 {
				clamp = true
			}
			v += float64(gs) * float64(gro) / float64(n)
		default: // all constant
			if store.Contains(rdf.Triple{S: p.S.ID, P: p.P.ID, O: p.O.ID}) {
				v++
			}
		}
	}
	if clamp && v < 1 {
		v = 1
	}
	return Est{Value: v, Confidence: conf}
}

// PatternVarNdv estimates the number of distinct values the variable at pos
// takes within the constant-restricted pattern: exact where the statistics
// allow (predicate-level ndv, two-constant spans), span lengths as upper
// bounds otherwise. Summed over stores and clamped to the pattern
// cardinality (set-level ndv statistics are not maintained).
func (s *SpanStats) PatternVarNdv(p query.Pattern, pos index.Pos) float64 {
	var n float64
	for _, store := range s.stores {
		n += storeVarNdv(store, p, pos)
	}
	if card := s.PatternCard(p).Value; n > card {
		n = card
	}
	return n
}

// storeVarNdv is the single-store ndv estimate (the pre-refactor
// query.PatternVarNdv, float-valued).
func storeVarNdv(store *index.Store, p query.Pattern, pos index.Pos) float64 {
	one := SpanStats{stores: []*index.Store{store}}
	card := one.PatternCard(p).Value
	if card == 0 {
		return 0
	}
	stats := store.Stats()
	sConst, pConst, oConst := !p.S.IsVar(), !p.P.IsVar(), !p.O.IsVar()
	nConst := 0
	for _, c := range []bool{sConst, pConst, oConst} {
		if c {
			nConst++
		}
	}
	// With two constants, the free position's values are all distinct
	// (triples are unique), so ndv == card.
	if nConst >= 2 {
		return card
	}
	if pConst {
		ps := store.PredStatOf(p.P.ID)
		switch pos {
		case index.S:
			return float64(ps.NdvS)
		case index.O:
			return float64(ps.NdvO)
		}
		return 1 // the predicate itself
	}
	if nConst == 0 {
		switch pos {
		case index.S:
			return float64(stats.NdvS)
		case index.P:
			return float64(stats.NdvP)
		default:
			return float64(stats.NdvO)
		}
	}
	// One non-predicate constant (subject or object bound, e.g. the
	// ?x ?p ?o patterns of property expansions): no per-entity ndv
	// statistics are kept, so bound by the span length.
	return card
}

// RootCount returns the exact number of level-0 walk roots of the plan:
// the width of step 0's static candidate set, summed over stores.
func (s *SpanStats) RootCount(pl *query.Plan) Est {
	st := &pl.Steps[0]
	var v float64
	for _, store := range s.stores {
		sp, ok := st.ResolveSpan(store, nil)
		if !ok {
			continue
		}
		if st.Kind == query.AccessMembership {
			v++
		} else {
			v += float64(sp.Len())
		}
	}
	return Est{Value: v, Confidence: ConfExact}
}

// JoinSize estimates the total join size |Γ| by composing the independence
// rule over all steps, with no bindings.
func (s *SpanStats) JoinSize(pl *query.Plan) Est {
	first := s.PatternCard(pl.Steps[0].Pattern)
	est := first.Value
	conf := first.Confidence
	for j := 1; j < len(pl.Steps); j++ {
		est *= s.stepFactor(pl, j)
		if conf > ConfComposed {
			conf = ConfComposed
		}
	}
	if sel := QueryFilterSelectivity(pl.Query); sel < 1 {
		// Heuristic selectivities are never better than composed confidence.
		est *= sel
		if conf > ConfComposed {
			conf = ConfComposed
		}
	}
	return Est{Value: est, Confidence: conf}
}

// stepFactor is step j's statistics contribution to a composed estimate:
// card(G_j) / ∏ max(ndv_here, ndv_binding_site) over its join variables.
func (s *SpanStats) stepFactor(pl *query.Plan, j int) float64 {
	st := &pl.Steps[j]
	f := s.PatternCard(st.Pattern).Value
	for _, jv := range st.JoinVars {
		ndvHere := s.PatternVarNdv(st.Pattern, jv.Pos)
		ndvThere := s.ndvAtBindingSite(pl, jv.Var)
		d := ndvHere
		if ndvThere > d {
			d = ndvThere
		}
		if d > 0 {
			f /= d
		}
	}
	return f
}

// ndvAtBindingSite returns the pattern-level ndv of variable v at the step
// that first binds it.
func (s *SpanStats) ndvAtBindingSite(pl *query.Plan, v query.Var) float64 {
	for i := range pl.Steps {
		for _, vp := range pl.Steps[i].NewVars {
			if vp.Var == v {
				return s.PatternVarNdv(pl.Steps[i].Pattern, vp.Pos)
			}
		}
	}
	return 1
}

// factors precomputes every step's stepFactor, the binding-independent part
// of suffix estimation.
func (s *SpanStats) factors(pl *query.Plan) []float64 {
	factor := make([]float64, len(pl.Steps))
	for j := range pl.Steps {
		factor[j] = s.stepFactor(pl, j)
	}
	return factor
}

// NewSuffix precomputes the walk-time suffix estimator: statistics factors
// folded per step, exact widths via res for prefix-adjacent steps.
func (s *SpanStats) NewSuffix(pl *query.Plan, res SpanResolver) Suffix {
	return &suffix{pl: pl, res: res, factor: s.factors(pl),
		adjFrom: adjacencyFrom(pl), pending: pendingFilterSel(pl)}
}
