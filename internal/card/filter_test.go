package card

import (
	"math"
	"testing"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// TestFilterSelectivityFoldsIntoJoinSize: a filtered plan's JoinSize is the
// unfiltered estimate scaled by the heuristic selectivity, at no better than
// composed confidence, on both shipped estimators.
func TestFilterSelectivityFoldsIntoJoinSize(t *testing.T) {
	g := testkit.RandomGraph(3, 20, 3, 15, 250)
	st := testkit.BuildStore(g)
	base := testkit.ChainQuery(g, []rdf.ID{20, 21}, true, false)
	plBase, err := query.Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	filtered := testkit.ChainQuery(g, []rdf.ID{20, 21}, true, false)
	filtered.Filters = []query.Filter{
		{Op: query.CmpGt, L: query.EVar(filtered.Beta), R: query.ENum(5)},
		{Op: query.CmpNe, L: query.EVar(0), R: query.ETerm(3)},
	}
	plF, err := query.Compile(filtered)
	if err != nil {
		t.Fatal(err)
	}
	wantSel := SelOrdered * SelNe
	if got := QueryFilterSelectivity(filtered); math.Abs(got-wantSel) > 1e-12 {
		t.Fatalf("QueryFilterSelectivity = %v, want %v", got, wantSel)
	}
	for _, name := range []string{EstimatorSpan, EstimatorSummary} {
		est, err := ByName(name, st)
		if err != nil {
			t.Fatal(err)
		}
		u, f := est.JoinSize(plBase), est.JoinSize(plF)
		if math.Abs(f.Value-u.Value*wantSel) > 1e-9*u.Value {
			t.Errorf("%s: filtered JoinSize %v, want %v × %v", name, f.Value, u.Value, wantSel)
		}
		if f.Confidence > ConfComposed {
			t.Errorf("%s: filtered JoinSize confidence %v > composed", name, f.Confidence)
		}

		// The suffix estimate before the anchor step is scaled by the pending
		// filters' selectivity; after every anchor it is untouched.
		sb := est.NewSuffix(plBase, StoreResolver{Store: st, Plan: plBase})
		sf := est.NewSuffix(plF, StoreResolver{Store: st, Plan: plF})
		b := plBase.NewBindings()
		// Bind step 0 so step 1 is prefix-adjacent in both plans.
		sp, ok := plBase.Steps[0].ResolveSpan(st, b)
		if !ok || sp.Len() == 0 {
			t.Skip("empty fixture root")
		}
		plBase.Steps[0].Bind(st.At(plBase.Steps[0].Order, sp, 0), b)
		u0, f0 := sb.Estimate(0, b), sf.Estimate(0, b)
		// Both filters anchor at the last step here (Beta and the group var
		// are both live until the end), so the pending factor applies at 0.
		if u0 > 0 && math.Abs(f0-u0*pendingSelAt(plF, 0)) > 1e-9*u0 {
			t.Errorf("%s: filtered suffix %v, unfiltered %v, pending %v",
				name, f0, u0, pendingSelAt(plF, 0))
		}
	}
}

func pendingSelAt(pl *query.Plan, i int) float64 {
	p := pendingFilterSel(pl)
	if p == nil {
		return 1
	}
	return p[i]
}
