// Package stats provides the statistical helpers used by the online
// aggregation engines and the experiment harness: per-group mean absolute
// error as defined in the paper (§V-B), normal-approximation confidence
// intervals (Haas 1997 style, as used by Wander Join), and Tukey box-plot
// summaries for the all-queries figures.
package stats

import (
	"math"
	"sort"

	"kgexplore/internal/rdf"
)

// Z95 is the standard normal quantile for two-sided 0.95 confidence.
const Z95 = 1.959963984540054

// MAE returns the paper's mean absolute error between an estimate and the
// exact result: for each group of the exact result, |exact - est| / exact,
// averaged over all groups. Groups missing from the estimate count with
// est = 0. Extra estimated groups that the exact result lacks are ignored
// (the paper averages over "all groups in the result").
//
// Returns 0 when the exact result has no groups.
func MAE(est, exact map[rdf.ID]float64) float64 {
	if len(exact) == 0 {
		return 0
	}
	var sum float64
	for g, ex := range exact {
		e := est[g]
		if ex != 0 {
			sum += math.Abs(ex-e) / ex
		} else if e != 0 {
			sum += 1 // exact 0 but estimated nonzero: count as 100% error
		}
	}
	return sum / float64(len(exact))
}

// CIHalfWidth returns the half-width of a CLT confidence interval for the
// mean of n i.i.d. per-walk contributions with the given sums: z *
// sqrt(var/n), where var is the population variance estimate from sum and
// sumsq. Returns +Inf when n < 2 (no variance information yet).
func CIHalfWidth(sum, sumsq float64, n int64, z float64) float64 {
	if n < 2 {
		return math.Inf(1)
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return z * math.Sqrt(variance/float64(n))
}

// Tukey summarizes a sample as a Tukey box plot: quartiles, median and the
// most extreme values within 1.5x the interquartile range of the box (the
// whiskers), exactly the convention of Figures 9 and 10 of the paper.
type Tukey struct {
	N                int
	Min, Max         float64 // extreme observed values
	Q1, Median, Q3   float64
	WhiskLo, WhiskHi float64 // whisker ends (within 1.5 IQR of the box)
}

// TukeyOf computes the box-plot summary of xs. It returns a zero Tukey for
// an empty sample.
func TukeyOf(xs []float64) Tukey {
	if len(xs) == 0 {
		return Tukey{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	t := Tukey{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
	}
	iqr := t.Q3 - t.Q1
	lo, hi := t.Q1-1.5*iqr, t.Q3+1.5*iqr
	t.WhiskLo, t.WhiskHi = t.Max, t.Min
	for _, x := range s {
		if x >= lo && x < t.WhiskLo {
			t.WhiskLo = x
		}
		if x <= hi && x > t.WhiskHi {
			t.WhiskHi = x
		}
	}
	// The quartiles are interpolated, so a whisker candidate can land
	// inside the box when no sample sits between the fence and the box
	// edge (or when 1.5*IQR overflows on extreme inputs); clamp to the box,
	// as standard box plots do.
	if t.WhiskLo > t.Q1 {
		t.WhiskLo = t.Q1
	}
	if t.WhiskHi < t.Q3 {
		t.WhiskHi = t.Q3
	}
	return t
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
