package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"kgexplore/internal/rdf"
)

func TestMAE(t *testing.T) {
	exact := map[rdf.ID]float64{1: 100, 2: 200}
	est := map[rdf.ID]float64{1: 110, 2: 150}
	// |100-110|/100 = 0.1; |200-150|/200 = 0.25; mean 0.175.
	if got := MAE(est, exact); math.Abs(got-0.175) > 1e-12 {
		t.Errorf("MAE = %v, want 0.175", got)
	}
}

func TestMAEMissingGroup(t *testing.T) {
	exact := map[rdf.ID]float64{1: 100, 2: 50}
	est := map[rdf.ID]float64{1: 100}
	// group 2 estimated 0 -> error 1; mean 0.5.
	if got := MAE(est, exact); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MAE = %v, want 0.5", got)
	}
}

func TestMAEExtraGroupIgnored(t *testing.T) {
	exact := map[rdf.ID]float64{1: 100}
	est := map[rdf.ID]float64{1: 100, 9: 1e9}
	if got := MAE(est, exact); got != 0 {
		t.Errorf("MAE = %v, want 0 (extra estimated groups ignored)", got)
	}
}

func TestMAEEmptyAndZero(t *testing.T) {
	if got := MAE(map[rdf.ID]float64{1: 5}, nil); got != 0 {
		t.Errorf("MAE with empty exact = %v, want 0", got)
	}
	exact := map[rdf.ID]float64{1: 0}
	if got := MAE(map[rdf.ID]float64{1: 3}, exact); got != 1 {
		t.Errorf("MAE with exact-zero group = %v, want 1", got)
	}
	if got := MAE(map[rdf.ID]float64{}, exact); got != 0 {
		t.Errorf("MAE with both zero = %v, want 0", got)
	}
}

func TestMAEPerfectEstimate(t *testing.T) {
	f := func(vals []float64) bool {
		exact := map[rdf.ID]float64{}
		for i, v := range vals {
			exact[rdf.ID(i)] = math.Abs(v) + 1
		}
		return MAE(exact, exact) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCIHalfWidth(t *testing.T) {
	// Constant contributions: zero variance, zero width.
	if got := CIHalfWidth(100, 1000, 10, Z95); got != 0 {
		t.Errorf("CI of constant sample = %v, want 0", got)
	}
	// n < 2: infinite.
	if got := CIHalfWidth(5, 25, 1, Z95); !math.IsInf(got, 1) {
		t.Errorf("CI with n=1 = %v, want +Inf", got)
	}
	// Known case: contributions {0, 2}: mean 1, var 1, n=2:
	// width = z * sqrt(1/2).
	want := Z95 * math.Sqrt(0.5)
	if got := CIHalfWidth(2, 4, 2, Z95); math.Abs(got-want) > 1e-12 {
		t.Errorf("CI = %v, want %v", got, want)
	}
}

func TestCIShrinksWithN(t *testing.T) {
	// Same mean and variance, larger n: smaller width.
	w1 := CIHalfWidth(10, 30, 10, Z95)
	w2 := CIHalfWidth(100, 300, 100, Z95)
	if w2 >= w1 {
		t.Errorf("CI did not shrink: %v -> %v", w1, w2)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(s, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty sample should be NaN")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("Quantile of singleton = %v, want 7", got)
	}
}

func TestTukeyOf(t *testing.T) {
	// 1..11 with an outlier 100.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 100}
	tk := TukeyOf(xs)
	if tk.N != 12 || tk.Min != 1 || tk.Max != 100 {
		t.Errorf("N/Min/Max = %d/%v/%v", tk.N, tk.Min, tk.Max)
	}
	if tk.Median != 6.5 {
		t.Errorf("Median = %v, want 6.5", tk.Median)
	}
	// Whisker high must exclude the outlier 100.
	if tk.WhiskHi != 11 {
		t.Errorf("WhiskHi = %v, want 11", tk.WhiskHi)
	}
	if tk.WhiskLo != 1 {
		t.Errorf("WhiskLo = %v, want 1", tk.WhiskLo)
	}
	if z := TukeyOf(nil); z.N != 0 {
		t.Error("TukeyOf(nil) not zero")
	}
}

func TestTukeyInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		tk := TukeyOf(xs)
		return tk.Min <= tk.WhiskLo && tk.WhiskLo <= tk.Q1 &&
			tk.Q1 <= tk.Median && tk.Median <= tk.Q3 &&
			tk.Q3 <= tk.WhiskHi && tk.WhiskHi <= tk.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		a := math.Abs(math.Mod(qa, 1))
		b := math.Abs(math.Mod(qb, 1))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Quantile(xs, a) <= Quantile(xs, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}
