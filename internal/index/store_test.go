package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kgexplore/internal/rdf"
)

// buildTestGraph returns a small graph with known structure:
//
//	a knows b, a knows c, b knows c, c knows d
//	a type Person, b type Person, c type Robot
//	a name "A"
func buildTestGraph() *rdf.Graph {
	g := rdf.NewGraph()
	g.AddIRIs("a", "knows", "b")
	g.AddIRIs("a", "knows", "c")
	g.AddIRIs("b", "knows", "c")
	g.AddIRIs("c", "knows", "d")
	g.AddIRIs("a", rdf.RDFType, "Person")
	g.AddIRIs("b", rdf.RDFType, "Person")
	g.AddIRIs("c", rdf.RDFType, "Robot")
	g.Add(rdf.NewIRI("a"), rdf.NewIRI("name"), rdf.NewLiteral("A"))
	g.Dedup()
	return g
}

func mustID(t *testing.T, d *rdf.Dict, iri string) rdf.ID {
	t.Helper()
	id, ok := d.LookupIRI(iri)
	if !ok {
		t.Fatalf("IRI %q not in dict", iri)
	}
	return id
}

func TestBuildSortsAllOrders(t *testing.T) {
	g := buildTestGraph()
	st := Build(g)
	for o := Order(0); o < numOrders; o++ {
		ts := st.Triples(o)
		if len(ts) != g.Len() {
			t.Fatalf("order %v has %d triples, want %d", o, len(ts), g.Len())
		}
		p := perms[o]
		for i := 1; i < len(ts); i++ {
			a, b := ts[i-1], ts[i]
			ka := [3]rdf.ID{field(a, p[0]), field(a, p[1]), field(a, p[2])}
			kb := [3]rdf.ID{field(b, p[0]), field(b, p[1]), field(b, p[2])}
			if !(ka[0] < kb[0] || (ka[0] == kb[0] && (ka[1] < kb[1] || (ka[1] == kb[1] && ka[2] < kb[2])))) {
				t.Errorf("order %v not sorted at %d: %v %v", o, i, a, b)
			}
		}
	}
}

func TestSpanL1(t *testing.T) {
	g := buildTestGraph()
	st := Build(g)
	d := g.Dict
	knows := mustID(t, d, "knows")
	a := mustID(t, d, "a")

	if got := st.SpanL1(PSO, knows).Len(); got != 4 {
		t.Errorf("knows span = %d, want 4", got)
	}
	if got := st.SpanL1(SPO, a).Len(); got != 4 {
		t.Errorf("subject a span = %d, want 4", got)
	}
	// Object c appears as object of two knows triples.
	c := mustID(t, d, "c")
	if got := st.SpanL1(OPS, c).Len(); got != 2 {
		t.Errorf("object c span = %d, want 2", got)
	}
	// Unknown key yields empty span.
	if sp := st.SpanL1(SPO, rdf.ID(9999)); !sp.Empty() {
		t.Errorf("unknown key span = %+v, want empty", sp)
	}
}

func TestSpanL2HashAndSearchAgree(t *testing.T) {
	g := buildTestGraph()
	st := Build(g)
	d := g.Dict
	knows := mustID(t, d, "knows")
	a := mustID(t, d, "a")
	c := mustID(t, d, "c")

	// PSO is hash-backed: (knows, a) -> 2 triples.
	if got := st.SpanL2(PSO, knows, a).Len(); got != 2 {
		t.Errorf("(knows,a) span = %d, want 2", got)
	}
	// POS is hash-backed: (knows, c) -> 2 triples.
	if got := st.SpanL2(POS, knows, c).Len(); got != 2 {
		t.Errorf("(knows,c) objects span = %d, want 2", got)
	}
	// SPO falls back to binary search: (a, knows) -> 2 triples.
	if got := st.SpanL2(SPO, a, knows).Len(); got != 2 {
		t.Errorf("(a,knows) span via search = %d, want 2", got)
	}
	// OPS fallback: (c, knows) -> 2.
	if got := st.SpanL2(OPS, c, knows).Len(); got != 2 {
		t.Errorf("(c,knows) span via search = %d, want 2", got)
	}
	// (knows, c) in PSO: c has one outgoing knows edge (c knows d).
	if got := st.SpanL2(PSO, knows, c).Len(); got != 1 {
		t.Errorf("(knows,c) subject span = %d, want 1", got)
	}
}

func TestSpanL2MissingPairs(t *testing.T) {
	g := buildTestGraph()
	st := Build(g)
	d := g.Dict
	knows := mustID(t, d, "knows")
	dd := mustID(t, d, "d")
	person := mustID(t, d, "Person")

	if !st.SpanL2(PSO, knows, dd).Empty() { // d has no outgoing knows
		t.Error("(knows,d) should be empty")
	}
	if !st.SpanL2(SPO, dd, knows).Empty() {
		t.Error("(d,knows) via search should be empty")
	}
	if !st.SpanL2(SPO, person, knows).Empty() { // Person is never a subject
		t.Error("(Person,knows) should be empty")
	}
}

func TestContains(t *testing.T) {
	g := buildTestGraph()
	st := Build(g)
	for _, tr := range g.Triples {
		if !st.Contains(tr) {
			t.Errorf("Contains(%v) = false for indexed triple", tr)
		}
	}
	d := g.Dict
	fake := rdf.Triple{S: mustID(t, d, "d"), P: mustID(t, d, "knows"), O: mustID(t, d, "a")}
	if st.Contains(fake) {
		t.Errorf("Contains(%v) = true for absent triple", fake)
	}
}

func TestStats(t *testing.T) {
	g := buildTestGraph()
	st := Build(g)
	d := g.Dict
	stats := st.Stats()
	if stats.Triples != 8 {
		t.Errorf("Triples = %d, want 8", stats.Triples)
	}
	if stats.NdvS != 3 { // a, b, c
		t.Errorf("NdvS = %d, want 3", stats.NdvS)
	}
	if stats.NdvP != 3 { // knows, type, name
		t.Errorf("NdvP = %d, want 3", stats.NdvP)
	}
	if stats.NdvO != 6 { // b, c, d, Person, Robot, "A"
		t.Errorf("NdvO = %d, want 6", stats.NdvO)
	}
	ks := stats.Preds[mustID(t, d, "knows")]
	if ks.Count != 4 || ks.NdvS != 3 || ks.NdvO != 3 {
		t.Errorf("knows stats = %+v, want {4 3 3}", ks)
	}
	ty := stats.Preds[mustID(t, d, rdf.RDFType)]
	if ty.Count != 3 || ty.NdvS != 3 || ty.NdvO != 2 {
		t.Errorf("type stats = %+v, want {3 3 2}", ty)
	}
}

func TestSampleUniform(t *testing.T) {
	g := buildTestGraph()
	st := Build(g)
	d := g.Dict
	knows := mustID(t, d, "knows")
	sp := st.SpanL1(PSO, knows)
	rng := rand.New(rand.NewSource(1))
	counts := map[rdf.Triple]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[st.Sample(PSO, sp, rng)]++
	}
	if len(counts) != 4 {
		t.Fatalf("sampled %d distinct triples, want 4", len(counts))
	}
	for tr, c := range counts {
		frac := float64(c) / n
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("triple %v sampled with frequency %.3f, want ~0.25", tr, frac)
		}
	}
}

func TestFullSpanAndAt(t *testing.T) {
	g := buildTestGraph()
	st := Build(g)
	sp := st.FullSpan(SPO)
	if sp.Len() != g.Len() {
		t.Errorf("full span = %d, want %d", sp.Len(), g.Len())
	}
	seen := map[rdf.Triple]bool{}
	for i := 0; i < sp.Len(); i++ {
		seen[st.At(SPO, sp, i)] = true
	}
	if len(seen) != g.Len() {
		t.Errorf("At enumerated %d distinct triples, want %d", len(seen), g.Len())
	}
}

func TestEstimateBytesPositive(t *testing.T) {
	st := Build(buildTestGraph())
	if st.EstimateBytes() <= 0 {
		t.Error("EstimateBytes <= 0")
	}
}

func TestOrderAndPosStrings(t *testing.T) {
	if SPO.String() != "spo" || OPS.String() != "ops" || PSO.String() != "pso" || POS.String() != "pos" {
		t.Error("Order strings wrong")
	}
	if S.String() != "s" || P.String() != "p" || O.String() != "o" {
		t.Error("Pos strings wrong")
	}
}

// randomGraph builds a random graph over small ID alphabets so collisions
// and runs are common.
func randomGraph(raw []byte) *rdf.Graph {
	g := rdf.NewGraph()
	for i := 0; i < 8; i++ {
		g.Dict.InternIRI(string(rune('a' + i)))
	}
	for i := 0; i+2 < len(raw); i += 3 {
		g.AddEncoded(rdf.Triple{
			S: rdf.ID(raw[i] % 8),
			P: rdf.ID(raw[i+1] % 4),
			O: rdf.ID(raw[i+2] % 8),
		})
	}
	g.Dedup()
	return g
}

func TestSpanConsistencyProperty(t *testing.T) {
	// Property: for every (p,s) pair present, the PSO hash span agrees with
	// the SPO search span, and the union of level-1 spans covers the data.
	f := func(raw []byte) bool {
		g := randomGraph(raw)
		if g.Len() == 0 {
			return true
		}
		st := Build(g)
		covered := 0
		for _, sp := range st.orders[SPO].l1 {
			covered += sp.Len()
		}
		if covered != g.Len() {
			return false
		}
		for _, tr := range g.Triples {
			hashSpan := st.SpanL2(PSO, tr.P, tr.S)
			searchSpan := st.SpanL2(SPO, tr.S, tr.P)
			if hashSpan.Len() != searchSpan.Len() || hashSpan.Empty() {
				return false
			}
			if !st.Contains(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestStatsConsistencyProperty(t *testing.T) {
	// Property: per-predicate counts sum to the total and ndv values are
	// bounded by the counts.
	f := func(raw []byte) bool {
		g := randomGraph(raw)
		st := Build(g)
		total := 0
		for _, ps := range st.Stats().Preds {
			total += ps.Count
			if ps.NdvS > ps.Count || ps.NdvO > ps.Count || ps.NdvS < 1 || ps.NdvO < 1 {
				return false
			}
		}
		return total == g.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
