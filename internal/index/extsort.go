package index

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"kgexplore/internal/rdf"
)

// This file implements the external-memory half of the snapshot build path:
// an order-keyed merge sorter that buffers triples up to a budget, spills
// sorted runs to disk, and replays the fully sorted, deduplicated sequence
// through a k-way merge. Paired with a streaming generator (kggen.Stream)
// and the streaming snapshot writer (snap.BuildExternal), it lets
// multi-million-triple .kgs fixtures build with a resident set bounded by
// O(dictionary + sort buffers + merge read buffers) instead of the
// 5 sorted in-memory copies Build keeps.

// diskTripleBytes is the on-disk run encoding: three little-endian u32s,
// matching the snapshot's triple section so runs stream straight into it.
const diskTripleBytes = 12

// runReadBufBytes sizes each run reader's buffer during the merge. With the
// default budgets a build merges a handful of runs, so the total stays a few
// hundred KiB.
const runReadBufBytes = 256 << 10

// TripleSorter sorts a triple stream by one index order using bounded
// memory. Add buffers triples and spills sorted runs once the buffer fills;
// after Finish, Iterate replays the merged, deduplicated sequence — any
// number of times, which the snapshot builder uses for its counting and
// summary passes.
type TripleSorter struct {
	order    Order
	dir      string
	budget   int
	buf      []rdf.Triple
	runs     []tripleRun
	finished bool
}

type tripleRun struct {
	path string
	n    int
}

// NewTripleSorter creates a sorter spilling runs into dir. budget is the
// maximum number of buffered triples (12 bytes each) before a spill; values
// below 1<<14 are raised to keep runs from degenerating into tiny files.
func NewTripleSorter(dir string, order Order, budget int) *TripleSorter {
	if budget < 1<<14 {
		budget = 1 << 14
	}
	return &TripleSorter{order: order, dir: dir, budget: budget}
}

// Add buffers one triple, spilling a sorted run when the buffer is full.
func (ts *TripleSorter) Add(t rdf.Triple) error {
	if ts.finished {
		return fmt.Errorf("index: TripleSorter.Add after Finish")
	}
	ts.buf = append(ts.buf, t)
	if len(ts.buf) >= ts.budget {
		return ts.spill()
	}
	return nil
}

// Finish seals the sorter: the remaining buffer is sorted in place and kept
// as the final in-memory run. After Finish, Iterate may be called repeatedly.
func (ts *TripleSorter) Finish() {
	if ts.finished {
		return
	}
	ts.sortBuf()
	ts.finished = true
}

// Runs reports how many runs were spilled to disk.
func (ts *TripleSorter) Runs() int { return len(ts.runs) }

// SpilledBytes reports the total size of the spilled run files.
func (ts *TripleSorter) SpilledBytes() int64 {
	var b int64
	for _, r := range ts.runs {
		b += int64(r.n) * diskTripleBytes
	}
	return b
}

// Close removes the spilled run files. The sorter is unusable afterwards.
func (ts *TripleSorter) Close() error {
	var first error
	for _, r := range ts.runs {
		if err := os.Remove(r.path); err != nil && first == nil {
			first = err
		}
	}
	ts.runs = nil
	ts.buf = nil
	return first
}

func (ts *TripleSorter) sortBuf() {
	p := perms[ts.order]
	rdf.SortTriples(ts.buf, uint8(p[0]), uint8(p[1]), uint8(p[2]))
}

func (ts *TripleSorter) spill() error {
	ts.sortBuf()
	f, err := os.CreateTemp(ts.dir, fmt.Sprintf(".extsort-%v-*", ts.order))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var rec [diskTripleBytes]byte
	for _, t := range ts.buf {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(t.S))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(t.P))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(t.O))
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	ts.runs = append(ts.runs, tripleRun{path: f.Name(), n: len(ts.buf)})
	ts.buf = ts.buf[:0]
	return nil
}

// Iterate replays the sorted, deduplicated triple sequence through fn,
// stopping on the first error fn returns. It returns the number of distinct
// triples emitted. The merge holds one buffered reader per spilled run plus
// the in-memory remainder; duplicate triples (identical S,P,O) are emitted
// once.
func (ts *TripleSorter) Iterate(fn func(rdf.Triple) error) (int, error) {
	if !ts.finished {
		return 0, fmt.Errorf("index: TripleSorter.Iterate before Finish")
	}
	srcs := make([]*runSource, 0, len(ts.runs)+1)
	defer func() {
		for _, s := range srcs {
			if s.f != nil {
				s.f.Close()
			}
		}
	}()
	for _, r := range ts.runs {
		f, err := os.Open(r.path)
		if err != nil {
			return 0, err
		}
		srcs = append(srcs, &runSource{f: f, br: bufio.NewReaderSize(f, runReadBufBytes), left: r.n})
	}
	if len(ts.buf) > 0 {
		srcs = append(srcs, &runSource{mem: ts.buf})
	}

	h := &runHeap{perm: perms[ts.order]}
	for i, s := range srcs {
		t, ok, err := s.next()
		if err != nil {
			return 0, err
		}
		if ok {
			h.items = append(h.items, runItem{t: t, src: i})
		}
	}
	heap.Init(h)

	n := 0
	var last rdf.Triple
	for h.Len() > 0 {
		it := h.items[0]
		if n == 0 || it.t != last {
			if err := fn(it.t); err != nil {
				return n, err
			}
			last = it.t
			n++
		}
		t, ok, err := srcs[it.src].next()
		if err != nil {
			return n, err
		}
		if ok {
			h.items[0] = runItem{t: t, src: it.src}
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return n, nil
}

// runSource yields triples from one sorted run: a spilled file or the
// in-memory remainder.
type runSource struct {
	f    *os.File
	br   *bufio.Reader
	left int
	mem  []rdf.Triple
	pos  int
}

func (s *runSource) next() (rdf.Triple, bool, error) {
	if s.f != nil {
		if s.left == 0 {
			return rdf.Triple{}, false, nil
		}
		var rec [diskTripleBytes]byte
		if _, err := io.ReadFull(s.br, rec[:]); err != nil {
			return rdf.Triple{}, false, err
		}
		s.left--
		return rdf.Triple{
			S: rdf.ID(binary.LittleEndian.Uint32(rec[0:4])),
			P: rdf.ID(binary.LittleEndian.Uint32(rec[4:8])),
			O: rdf.ID(binary.LittleEndian.Uint32(rec[8:12])),
		}, true, nil
	}
	if s.pos >= len(s.mem) {
		return rdf.Triple{}, false, nil
	}
	t := s.mem[s.pos]
	s.pos++
	return t, true, nil
}

type runItem struct {
	t   rdf.Triple
	src int
}

type runHeap struct {
	perm  [3]Pos
	items []runItem
}

func (h *runHeap) Len() int { return len(h.items) }

func (h *runHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	for _, p := range h.perm {
		if va, vb := field(a.t, p), field(b.t, p); va != vb {
			return va < vb
		}
	}
	return a.src < b.src
}

func (h *runHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *runHeap) Push(x any) { h.items = append(h.items, x.(runItem)) }

func (h *runHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// BuildNumericTable computes the numeric-literal cache for a dictionary:
// entry i is the parsed value of term i, NaN for non-numeric terms. Exported
// for the external snapshot builder, which writes the cache without ever
// holding a Store.
func BuildNumericTable(d *rdf.Dict) []float64 { return buildNumeric(d) }
