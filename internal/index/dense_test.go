package index

import (
	"fmt"
	"math/rand"
	"testing"

	"kgexplore/internal/rdf"
)

// randomGraph interns nids terms and adds n random triples over them
// (duplicates included; Build dedups via the graph encoding path used by
// every caller).
func randomDenseGraph(rng *rand.Rand, nids, n int) *rdf.Graph {
	g := rdf.NewGraph()
	ids := make([]rdf.ID, nids)
	for i := range ids {
		ids[i] = g.Dict.InternIRI(fmt.Sprintf("t:%d", i))
	}
	for i := 0; i < n; i++ {
		g.AddEncoded(rdf.Triple{
			S: ids[rng.Intn(nids)],
			P: ids[rng.Intn(nids)],
			O: ids[rng.Intn(nids)],
		})
	}
	g.Dedup()
	return g
}

// referenceSpans computes level-1 and level-2 spans of one order with plain
// maps over the sorted triples — the structure the dense arrays and packed
// keys replaced.
func referenceSpans(st *Store, o Order) (map[rdf.ID]Span, map[[2]rdf.ID]Span) {
	ts := st.Triples(o)
	p := o.Levels()
	l1 := make(map[rdf.ID]Span)
	l2 := make(map[[2]rdf.ID]Span)
	for i := 0; i < len(ts); {
		v0 := field(ts[i], p[0])
		j := i
		for j < len(ts) && field(ts[j], p[0]) == v0 {
			j++
		}
		l1[v0] = Span{i, j}
		for k := i; k < j; {
			v1 := field(ts[k], p[1])
			m := k
			for m < j && field(ts[m], p[1]) == v1 {
				m++
			}
			l2[[2]rdf.ID{v0, v1}] = Span{k, m}
			k = m
		}
		i = j
	}
	return l1, l2
}

// TestDenseSpansMatchMapReference checks, on randomized graphs, that the
// dense direct-indexed level-1 arrays and the packed-uint64 level-2 lookups
// (hash for PSO/POS, binary-search fallback for SPO/OPS) agree with a
// map-based reference for every present key and return empty spans for a
// sample of absent ones.
func TestDenseSpansMatchMapReference(t *testing.T) {
	cases := []struct{ nids, n int }{
		{5, 10},     // tiny, comparator-sorted
		{40, 2000},  // heavy duplication per key
		{900, 4000}, // wide ID space, radix-sorted
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(int64(tc.nids)))
		g := randomDenseGraph(rng, tc.nids, tc.n)
		st := Build(g)
		nd := rdf.ID(g.Dict.Len())
		for o := Order(0); o < numOrders; o++ {
			refL1, refL2 := referenceSpans(st, o)
			for v := rdf.ID(0); v < nd; v++ {
				want := refL1[v] // zero Span when absent
				if got := st.SpanL1(o, v); got != want {
					t.Fatalf("nids=%d %s: SpanL1(%d) = %v, want %v", tc.nids, o, v, got, want)
				}
			}
			// Out-of-range IDs must read as empty, not panic.
			if got := st.SpanL1(o, nd+100); got != (Span{}) {
				t.Fatalf("%s: SpanL1 out of range = %v", o, got)
			}
			for key, want := range refL2 {
				if got := st.SpanL2(o, key[0], key[1]); got != want {
					t.Fatalf("nids=%d %s: SpanL2(%d,%d) = %v, want %v", tc.nids, o, key[0], key[1], got, want)
				}
			}
			// Absent pairs: random probes plus present-v0/absent-v1 probes,
			// which exercise the binary-search miss path of SPO/OPS. A miss
			// may return a positioned empty span, so compare emptiness.
			for i := 0; i < 200; i++ {
				v0 := rdf.ID(rng.Intn(int(nd) + 3))
				v1 := rdf.ID(rng.Intn(int(nd) + 3))
				got := st.SpanL2(o, v0, v1)
				want, present := refL2[[2]rdf.ID{v0, v1}]
				if present && got != want {
					t.Fatalf("%s: SpanL2(%d,%d) = %v, want %v", o, v0, v1, got, want)
				}
				if !present && got.Len() != 0 {
					t.Fatalf("%s: SpanL2(%d,%d) = %v, want empty", o, v0, v1, got)
				}
			}
		}
	}
}

// TestSpanStatsMatchesReference is in internal/card; here we pin the
// remaining store invariant the estimators rely on: every order sees the
// same triple multiset.
func TestOrdersSameMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomDenseGraph(rng, 60, 800)
	st := Build(g)
	want := make(map[rdf.Triple]int)
	for _, tr := range st.Triples(SPO) {
		want[tr]++
	}
	for o := Order(1); o < numOrders; o++ {
		got := make(map[rdf.Triple]int)
		for _, tr := range st.Triples(o) {
			got[tr]++
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d distinct triples, want %d", o, len(got), len(want))
		}
		for tr, n := range want {
			if got[tr] != n {
				t.Fatalf("%s: triple %v count %d, want %d", o, tr, got[tr], n)
			}
		}
	}
}
