package index

import (
	"math/rand"
	"sort"

	"kgexplore/internal/rdf"
)

// This file implements semantic root stratification: partitioning a root
// span into strata by the characteristic-set bucket of each triple's
// SUBJECT (the typed graph summary's buckets, summary.go). Walk roots drawn
// uniformly within a stratum give a per-stratum Horvitz–Thompson estimator
// whose totals sum to the global answer (wj.MergeStratified), and because
// nodes in one bucket share an out-predicate signature their walks behave
// alike — per-stratum variance drops, which is the entire point (Wang et
// al.'s semantic-aware sampling, adapted to Audit Join's walk roots).

// Classifier maps node IDs to their characteristic-set bucket in the
// store's Summary. Bucket 0 is the leaf bucket (nodes with no out-edges and
// IDs that never appear as subjects). The classification is a deterministic
// partition of the ID space, so stratified sampling stays correct even if a
// charset fails to match the summary (such nodes just land in bucket 0).
type Classifier struct {
	bucketOf []int32
	buckets  int
}

// Classifier returns the store's subject classifier, building it on first
// use (one O(triples) scan over SPO). Safe for concurrent callers.
func (st *Store) Classifier() *Classifier {
	st.classifierOnce.Do(func() {
		st.classifier = buildClassifier(st)
	})
	return st.classifier
}

func buildClassifier(st *Store) *Classifier {
	sum := st.Summary()
	keys := make(map[string]int32, sum.NumBuckets)
	var kb []byte
	for b := 1; b < sum.NumBuckets; b++ {
		kb = kb[:0]
		for _, p := range sum.CharSet(b) {
			kb = append(kb, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
		}
		keys[string(kb)] = int32(b)
	}
	spo := &st.orders[SPO]
	ts := spo.triples
	out := make([]int32, len(spo.l1))
	var keyBuf []byte
	for s := range out {
		sp := spo.l1[s]
		if sp.Empty() {
			continue // leaf bucket 0
		}
		keyBuf = keyBuf[:0]
		var prev rdf.ID
		for i := sp.Lo; i < sp.Hi; i++ {
			// SPO sorts each subject's triples by predicate; run heads are
			// the ascending charset, exactly as in BuildSummary.
			p := ts[i].P
			if len(keyBuf) == 0 || p != prev {
				keyBuf = append(keyBuf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
				prev = p
			}
		}
		if b, ok := keys[string(keyBuf)]; ok {
			out[s] = b
		}
	}
	return &Classifier{bucketOf: out, buckets: sum.NumBuckets}
}

// NumBuckets returns the bucket count of the underlying summary.
func (c *Classifier) NumBuckets() int { return c.buckets }

// Bucket returns the characteristic-set bucket of a node.
func (c *Classifier) Bucket(id rdf.ID) int32 {
	if int(id) < len(c.bucketOf) {
		return c.bucketOf[id]
	}
	return 0
}

// RootStratum is one stratum of a stratified root-span partition: the
// triples of the span whose subject classifies into the stratum's bucket,
// stored as segments of the span. Strata of one StratifyRoots call are
// disjoint and cover the span, so Σ Total over strata equals the span
// length and per-stratum uniform sampling composes into an exact partition
// of the uniform root distribution.
type RootStratum struct {
	// Bucket is the summary bucket, or -1 for the merged tail stratum that
	// absorbs the smallest buckets past the stratum cap.
	Bucket int32
	// Total is the number of root triples in the stratum.
	Total int
	segs  []Span
	cum   []int // cum[i] = Σ_{j<=i} segs[j].Len()
}

// Pos maps rank i ∈ [0, Total) to the global triple position in the order.
func (rs *RootStratum) Pos(i int) int {
	k := sort.SearchInts(rs.cum, i+1)
	prev := 0
	if k > 0 {
		prev = rs.cum[k-1]
	}
	return rs.segs[k].Lo + (i - prev)
}

// Sample draws a uniformly random root triple of the stratum; the walk's
// inverse probability factor for the root step is float64(rs.Total).
func (rs *RootStratum) Sample(st *Store, o Order, rng *rand.Rand) rdf.Triple {
	return st.orders[o].triples[rs.Pos(rng.Intn(rs.Total))]
}

// At returns the stratum's i-th root triple (tests and exact scans).
func (rs *RootStratum) At(st *Store, o Order, i int) rdf.Triple {
	return st.orders[o].triples[rs.Pos(i)]
}

// maxRootSegments bounds the segment-scan cost of StratifyRoots: spans in
// subject-major orders (SPO, or a PSO level-1 span) produce one segment per
// subject run, but an adversarial order could fragment into one segment per
// triple. Past the cap StratifyRoots reports "not stratifiable" and callers
// fall back to uniform sampling.
const maxRootSegments = 1 << 20

// DefaultMaxStrata caps the number of strata a stratified runner manages;
// the smallest buckets beyond the cap merge into one tail stratum.
const DefaultMaxStrata = 16

// StratifyRoots partitions span sp of order o into characteristic-set root
// strata. It returns nil — meaning "sample uniformly" — when stratification
// is unavailable or pointless: a span with fewer than two triples, only one
// distinct bucket present, or subject runs so fragmented the segment cap is
// exceeded. maxStrata < 2 selects DefaultMaxStrata.
func StratifyRoots(st *Store, o Order, sp Span, maxStrata int) []RootStratum {
	if sp.Len() < 2 {
		return nil
	}
	if maxStrata < 2 {
		maxStrata = DefaultMaxStrata
	}
	cl := st.Classifier()
	ts := st.orders[o].triples

	type bstrat struct {
		bucket int32
		segs   []Span
		total  int
	}
	byBucket := make(map[int32]*bstrat)
	add := func(b int32, lo, hi int) {
		s := byBucket[b]
		if s == nil {
			s = &bstrat{bucket: b}
			byBucket[b] = s
		}
		if n := len(s.segs); n > 0 && s.segs[n-1].Hi == lo {
			s.segs[n-1].Hi = hi // adjacent same-bucket runs coalesce
		} else {
			s.segs = append(s.segs, Span{lo, hi})
		}
		s.total += hi - lo
	}
	segs := 0
	runStart := sp.Lo
	curS := ts[sp.Lo].S
	for i := sp.Lo + 1; i <= sp.Hi; i++ {
		if i < sp.Hi && ts[i].S == curS {
			continue
		}
		if segs++; segs > maxRootSegments {
			return nil
		}
		add(cl.Bucket(curS), runStart, i)
		if i < sp.Hi {
			runStart, curS = i, ts[i].S
		}
	}
	if len(byBucket) < 2 {
		return nil
	}

	// Deterministic stratum order: by size descending, bucket ascending.
	parts := make([]*bstrat, 0, len(byBucket))
	for _, s := range byBucket {
		parts = append(parts, s)
	}
	sort.Slice(parts, func(i, j int) bool {
		if parts[i].total != parts[j].total {
			return parts[i].total > parts[j].total
		}
		return parts[i].bucket < parts[j].bucket
	})
	if len(parts) > maxStrata {
		tail := &bstrat{bucket: -1}
		for _, s := range parts[maxStrata-1:] {
			tail.segs = append(tail.segs, s.segs...)
			tail.total += s.total
		}
		sort.Slice(tail.segs, func(i, j int) bool { return tail.segs[i].Lo < tail.segs[j].Lo })
		parts = append(parts[:maxStrata-1], tail)
	}

	out := make([]RootStratum, len(parts))
	for i, s := range parts {
		cum := make([]int, len(s.segs))
		run := 0
		for j, seg := range s.segs {
			run += seg.Len()
			cum[j] = run
		}
		out[i] = RootStratum{Bucket: s.bucket, Total: s.total, segs: s.segs, cum: cum}
	}
	return out
}
