package index

import (
	"sort"

	"kgexplore/internal/rdf"
)

// LevelIter iterates over the distinct values at one trie level of an index
// order, restricted to a span (the subtree selected by the values of the
// shallower levels). It is the trie-iterator interface of Leapfrog Trie Join:
// Key/SubSpan expose the current value and its subtree, Next advances to the
// next distinct value, and Seek leapfrogs to the first value >= the target.
//
// A fresh iterator is positioned before the first value; call Next or Seek
// before Key. The zero LevelIter is exhausted.
type LevelIter struct {
	ts    []rdf.Triple
	pos   Pos  // triple position stored at this level
	span  Span // bounds of the parent subtree
	cur   Span // subtree of the current key; cur.Lo==cur.Hi means not positioned
	key   rdf.ID
	valid bool
}

// Level returns an iterator over the distinct values at the given trie level
// (0, 1 or 2) of order o within span sp.
func (st *Store) Level(o Order, sp Span, level int) LevelIter {
	return LevelIter{
		ts:   st.orders[o].triples,
		pos:  perms[o][level],
		span: sp,
		cur:  Span{sp.Lo, sp.Lo},
	}
}

// Valid reports whether the iterator is positioned at a value.
func (it *LevelIter) Valid() bool { return it.valid }

// Key returns the current distinct value. It must only be called when Valid.
func (it *LevelIter) Key() rdf.ID { return it.key }

// SubSpan returns the span of triples sharing the current key (the subtree
// below the current trie node). It must only be called when Valid.
func (it *LevelIter) SubSpan() Span { return it.cur }

// Next advances to the next distinct value, returning false at the end.
func (it *LevelIter) Next() bool {
	lo := it.cur.Hi
	if lo >= it.span.Hi {
		it.valid = false
		return false
	}
	it.key = Field(it.ts[lo], it.pos)
	hi := it.endOfRun(lo)
	it.cur = Span{lo, hi}
	it.valid = true
	return true
}

// Seek positions the iterator at the first distinct value >= v, returning
// false if no such value exists. Seeking backwards from the current position
// is a no-op (the iterator stays where it is), matching LFTJ's monotone
// seeks.
func (it *LevelIter) Seek(v rdf.ID) bool {
	if it.valid && it.key >= v {
		return true
	}
	lo := it.cur.Hi
	n := it.span.Hi - lo
	if n <= 0 {
		it.valid = false
		return false
	}
	ts := it.ts
	pos := it.pos
	// Galloping search: runs in O(log d) where d is the distance moved,
	// which is what gives LFTJ its worst-case optimality.
	step := 1
	for step < n && Field(ts[lo+step-1], pos) < v {
		step <<= 1
	}
	searchLo, searchHi := lo+step/2, lo+min(step, n)
	i := searchLo + sort.Search(searchHi-searchLo, func(k int) bool {
		return Field(ts[searchLo+k], pos) >= v
	})
	if i >= it.span.Hi {
		it.valid = false
		return false
	}
	it.key = Field(ts[i], pos)
	it.cur = Span{i, it.endOfRun(i)}
	it.valid = true
	return true
}

// endOfRun finds the end of the run of triples sharing the key at index lo,
// by galloping forward.
func (it *LevelIter) endOfRun(lo int) int {
	k := Field(it.ts[lo], it.pos)
	n := it.span.Hi - lo
	step := 1
	for step < n && Field(it.ts[lo+step], it.pos) == k {
		step <<= 1
	}
	searchLo, searchHi := lo+step/2+1, lo+min(step, n)
	if searchLo > searchHi {
		searchLo = searchHi
	}
	return searchLo + sort.Search(searchHi-searchLo, func(i int) bool {
		return Field(it.ts[searchLo+i], it.pos) > k
	})
}

// CountDistinct counts the distinct values at a trie level within a span.
func (st *Store) CountDistinct(o Order, sp Span, level int) int {
	it := st.Level(o, sp, level)
	n := 0
	for it.Next() {
		n++
	}
	return n
}
