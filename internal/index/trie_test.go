package index

import (
	"testing"
	"testing/quick"

	"kgexplore/internal/rdf"
)

func TestLevelIterWalk(t *testing.T) {
	g := buildTestGraph()
	st := Build(g)
	d := g.Dict

	// Level 0 of PSO enumerates the distinct predicates.
	it := st.Level(PSO, st.FullSpan(PSO), 0)
	var preds []rdf.ID
	for it.Next() {
		preds = append(preds, it.Key())
		if it.SubSpan().Empty() {
			t.Error("non-empty key with empty subspan")
		}
	}
	if len(preds) != 3 {
		t.Fatalf("level-0 PSO enumerated %d predicates, want 3", len(preds))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i-1] >= preds[i] {
			t.Error("keys not strictly increasing")
		}
	}

	// Descend into knows and enumerate subjects (level 1).
	knows := mustID(t, d, "knows")
	it = st.Level(PSO, st.FullSpan(PSO), 0)
	if !it.Seek(knows) || it.Key() != knows {
		t.Fatal("seek to knows failed")
	}
	sub := st.Level(PSO, it.SubSpan(), 1)
	n := 0
	for sub.Next() {
		n++
	}
	if n != 3 { // a, b, c have outgoing knows
		t.Errorf("knows has %d distinct subjects, want 3", n)
	}
}

func TestLevelIterSeek(t *testing.T) {
	g := buildTestGraph()
	st := Build(g)
	d := g.Dict
	knows := mustID(t, d, "knows")
	sp := st.SpanL1(PSO, knows)

	subjects := []rdf.ID{}
	it := st.Level(PSO, sp, 1)
	for it.Next() {
		subjects = append(subjects, it.Key())
	}

	// Seek to each subject exactly.
	for _, s := range subjects {
		it := st.Level(PSO, sp, 1)
		if !it.Seek(s) || it.Key() != s {
			t.Errorf("Seek(%d) failed", s)
		}
	}
	// Seek past the last subject fails.
	it = st.Level(PSO, sp, 1)
	if it.Seek(subjects[len(subjects)-1] + 1) {
		t.Error("Seek past the end succeeded")
	}
	// Seek to 0 lands on the first subject.
	it = st.Level(PSO, sp, 1)
	if !it.Seek(0) || it.Key() != subjects[0] {
		t.Error("Seek(0) did not land on first subject")
	}
	// Backward seek is a no-op.
	it = st.Level(PSO, sp, 1)
	it.Seek(subjects[len(subjects)-1])
	cur := it.Key()
	if !it.Seek(0) || it.Key() != cur {
		t.Error("backward seek moved the iterator")
	}
}

func TestLevelIterEmptySpan(t *testing.T) {
	st := Build(buildTestGraph())
	it := st.Level(SPO, Span{}, 0)
	if it.Next() {
		t.Error("Next on empty span succeeded")
	}
	it = st.Level(SPO, Span{}, 0)
	if it.Seek(0) {
		t.Error("Seek on empty span succeeded")
	}
	if it.Valid() {
		t.Error("exhausted iterator reports Valid")
	}
}

func TestCountDistinct(t *testing.T) {
	g := buildTestGraph()
	st := Build(g)
	d := g.Dict
	knows := mustID(t, d, "knows")
	if got := st.CountDistinct(PSO, st.SpanL1(PSO, knows), 1); got != 3 {
		t.Errorf("distinct subjects of knows = %d, want 3", got)
	}
	if got := st.CountDistinct(POS, st.SpanL1(POS, knows), 1); got != 3 {
		t.Errorf("distinct objects of knows = %d, want 3", got)
	}
	if got := st.CountDistinct(SPO, st.FullSpan(SPO), 0); got != 3 {
		t.Errorf("distinct subjects = %d, want 3", got)
	}
}

func TestLevelIterProperty(t *testing.T) {
	// Property: on random graphs, for every order and every level-0 subtree,
	// (1) Next enumerates strictly increasing keys whose subspans partition
	// the span, and (2) Seek(k) agrees with linear scanning for every key k
	// in a probe set.
	f := func(raw []byte) bool {
		g := randomGraph(raw)
		if g.Len() == 0 {
			return true
		}
		st := Build(g)
		for o := Order(0); o < numOrders; o++ {
			sp := st.FullSpan(o)
			it := st.Level(o, sp, 0)
			lastKey := rdf.NoID
			cursor := sp.Lo
			var keys []rdf.ID
			for it.Next() {
				if lastKey != rdf.NoID && it.Key() <= lastKey {
					return false
				}
				if it.SubSpan().Lo != cursor {
					return false // gap or overlap
				}
				cursor = it.SubSpan().Hi
				lastKey = it.Key()
				keys = append(keys, it.Key())
			}
			if cursor != sp.Hi {
				return false // subspans do not cover the span
			}
			// Probe seeks: each key, key+1, and 0.
			probes := append([]rdf.ID{0}, keys...)
			for _, k := range keys {
				probes = append(probes, k+1)
			}
			for _, v := range probes {
				it := st.Level(o, sp, 0)
				ok := it.Seek(v)
				// Linear reference.
				var want rdf.ID
				found := false
				for _, k := range keys {
					if k >= v {
						want, found = k, true
						break
					}
				}
				if ok != found || (ok && it.Key() != want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLevelIterDeepLevelsProperty(t *testing.T) {
	// Property: descending through all three levels of every order
	// enumerates exactly the triples of the graph.
	f := func(raw []byte) bool {
		g := randomGraph(raw)
		st := Build(g)
		for o := Order(0); o < numOrders; o++ {
			n := 0
			l0 := st.Level(o, st.FullSpan(o), 0)
			for l0.Next() {
				l1 := st.Level(o, l0.SubSpan(), 1)
				for l1.Next() {
					l2 := st.Level(o, l1.SubSpan(), 2)
					for l2.Next() {
						if l2.SubSpan().Len() != 1 {
							return false // leaf runs must be single triples
						}
						n++
					}
				}
			}
			if n != g.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
