package index

import (
	"fmt"

	"kgexplore/internal/rdf"
)

// This file is the index side of the snapshot subsystem (internal/snap):
// Parts decomposes a built Store into the raw arrays a snapshot writer
// serializes, and Restore reassembles a Store from loaded (or mmap-aliased)
// arrays without re-sorting or re-deriving anything.

// OrderParts is the raw material of one index order.
type OrderParts struct {
	// Triples is the order's permuted, sorted triple slice.
	Triples []rdf.Triple
	// L1 is the dense level-1 span array; NDV1 counts its non-empty entries.
	L1   []Span
	NDV1 int
	// L2Keys/L2Spans are the packed level-2 pairs in ascending key order;
	// nil for orders without a level-2 index (SPO, OPS).
	L2Keys  []uint64
	L2Spans []Span
}

// Parts decomposes the store into its snapshot-serializable arrays. The
// returned slices alias the store's internal state and must not be modified.
// Level-2 hash maps are re-derived as packed sorted arrays by a linear scan
// over the already-sorted triples, so the output is deterministic (map
// iteration order never leaks into a snapshot).
func (st *Store) Parts() Parts {
	p := Parts{
		Dict:      st.dict,
		PredStats: st.predStats,
		Numeric:   st.numeric,
		Summary:   st.summary,
	}
	for o := Order(0); o < numOrders; o++ {
		oi := &st.orders[o]
		op := OrderParts{Triples: oi.triples, L1: oi.l1, NDV1: oi.ndv1}
		switch {
		case oi.l2keys != nil:
			op.L2Keys, op.L2Spans = oi.l2keys, oi.l2spans
		case oi.l2 != nil:
			op.L2Keys, op.L2Spans = packL2(o, oi.triples)
		}
		p.Orders[o] = op
	}
	return p
}

// packL2 regenerates the packed level-2 arrays from a sorted triple slice —
// the same grouping loop buildOrder runs, emitting sorted arrays instead of
// a hash map. Keys come out ascending because the triples are sorted by
// (level-0, level-1) and packPair is monotone in that ordering.
func packL2(o Order, ts []rdf.Triple) ([]uint64, []Span) {
	p := perms[o]
	var keys []uint64
	var spans []Span
	for i := 0; i < len(ts); {
		v0, v1 := field(ts[i], p[0]), field(ts[i], p[1])
		j := i + 1
		for j < len(ts) && field(ts[j], p[0]) == v0 && field(ts[j], p[1]) == v1 {
			j++
		}
		keys = append(keys, packPair(v0, v1))
		spans = append(spans, Span{i, j})
		i = j
	}
	return keys, spans
}

// Parts is a decomposed Store: everything a snapshot must carry to rebuild
// one without re-running Build.
type Parts struct {
	Dict      *rdf.Dict
	Orders    [4]OrderParts
	PredStats []PredStat
	Numeric   []float64

	// Summary is the typed graph summary; nil for pre-v2 snapshots, in which
	// case the restored store rebuilds it lazily on first use.
	Summary *Summary

	// EagerL2Maps converts the packed level-2 arrays back into hash maps on
	// Restore, recovering the O(1) lookup of a built store. Copy loads set
	// it; mmap loads keep the packed arrays, which alias the mapping and
	// serve lookups by binary search.
	EagerL2Maps bool
}

// Restore reassembles a Store from parts, retaining every slice as-is (the
// slices may alias a read-only mmap region). It validates cross-array
// consistency so a structurally corrupt snapshot fails here rather than
// panicking mid-query, but it does not verify sortedness or span contents;
// checksums are the snapshot layer's job.
func Restore(p Parts) (*Store, error) {
	if p.Dict == nil {
		return nil, fmt.Errorf("index: restore without dictionary")
	}
	st := &Store{dict: p.Dict, predStats: p.PredStats, numeric: p.Numeric, summary: p.Summary}
	n := len(p.Orders[SPO].Triples)
	for o := Order(0); o < numOrders; o++ {
		op := p.Orders[o]
		if len(op.Triples) != n {
			return nil, fmt.Errorf("index: order %v has %d triples, %v has %d", o, len(op.Triples), SPO, n)
		}
		if len(op.L2Keys) != len(op.L2Spans) {
			return nil, fmt.Errorf("index: order %v has %d level-2 keys but %d spans", o, len(op.L2Keys), len(op.L2Spans))
		}
		oi := orderIndex{
			order:   o,
			triples: op.Triples,
			l1:      op.L1,
			ndv1:    op.NDV1,
			l2keys:  op.L2Keys,
			l2spans: op.L2Spans,
		}
		if p.EagerL2Maps && op.L2Keys != nil {
			oi.l2 = make(map[uint64]Span, len(op.L2Keys))
			for i, k := range op.L2Keys {
				oi.l2[k] = op.L2Spans[i]
			}
			oi.l2keys, oi.l2spans = nil, nil
		}
		st.orders[o] = oi
	}
	if len(p.Numeric) != p.Dict.Len() {
		return nil, fmt.Errorf("index: numeric cache has %d entries for %d terms", len(p.Numeric), p.Dict.Len())
	}
	if len(p.PredStats) < len(st.orders[PSO].l1) {
		return nil, fmt.Errorf("index: predicate stats cover %d IDs, level-1 has %d", len(p.PredStats), len(st.orders[PSO].l1))
	}
	st.stats = Stats{
		Triples: n,
		NdvS:    st.orders[SPO].ndv1,
		NdvP:    st.orders[PSO].ndv1,
		NdvO:    st.orders[OPS].ndv1,
		Preds:   make(map[rdf.ID]PredStat, st.orders[PSO].ndv1),
	}
	for pid, sp := range st.orders[PSO].l1 {
		if !sp.Empty() {
			st.stats.Preds[rdf.ID(pid)] = st.predStats[pid]
		}
	}
	return st, nil
}
