// Package index implements the storage layer shared by all engines in this
// repository: an in-memory triple store with four index orders (spo, ops,
// pso, pos), exactly the orders the paper maintains for its exploration
// queries.
//
// Each order keeps one permuted, sorted slice of encoded triples plus hash
// levels mapping prefixes to contiguous spans. This is the paper's "hybrid
// hashtable/trie" structure: the hash levels give O(1) candidate-set lookup
// and uniform sampling for the random walks of Wander Join and Audit Join,
// while the sorted spans act as tries with O(log n) seeks for Leapfrog Trie
// Join and Cached Trie Join.
package index

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"kgexplore/internal/rdf"
)

// Order names one of the four maintained attribute orders.
type Order uint8

const (
	SPO Order = iota
	OPS
	PSO
	POS
	numOrders
)

func (o Order) String() string {
	switch o {
	case SPO:
		return "spo"
	case OPS:
		return "ops"
	case PSO:
		return "pso"
	case POS:
		return "pos"
	default:
		return fmt.Sprintf("Order(%d)", uint8(o))
	}
}

// Pos names a triple position.
type Pos uint8

const (
	S Pos = iota
	P
	O
)

func (p Pos) String() string {
	switch p {
	case S:
		return "s"
	case P:
		return "p"
	case O:
		return "o"
	default:
		return fmt.Sprintf("Pos(%d)", uint8(p))
	}
}

// perms[o] gives the triple positions stored at trie levels 0, 1, 2 of order o.
var perms = [numOrders][3]Pos{
	SPO: {S, P, O},
	OPS: {O, P, S},
	PSO: {P, S, O},
	POS: {P, O, S},
}

// Levels returns the positions at the three trie levels of the order.
func (o Order) Levels() [3]Pos { return perms[o] }

// field extracts the value of triple t at position p.
func field(t rdf.Triple, p Pos) rdf.ID {
	switch p {
	case S:
		return t.S
	case P:
		return t.P
	default:
		return t.O
	}
}

// Field is the exported form of field, used by the join engines.
func Field(t rdf.Triple, p Pos) rdf.ID { return field(t, p) }

// Span is a half-open range [Lo, Hi) into one order's sorted triple slice.
type Span struct {
	Lo, Hi int
}

// Len returns the number of triples in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Empty reports whether the span contains no triples.
func (s Span) Empty() bool { return s.Hi <= s.Lo }

type pair [2]rdf.ID

// orderIndex is one fully materialized index order.
type orderIndex struct {
	order   Order
	triples []rdf.Triple // sorted by the order's permutation
	l1      map[rdf.ID]Span
	l2      map[pair]Span // only populated for PSO and POS
}

// PredStat holds the per-predicate statistics the tipping-point estimator
// uses (PostgreSQL-style join-size estimation, paper §IV-D).
type PredStat struct {
	Count int // number of triples with this predicate
	NdvS  int // distinct subjects among them
	NdvO  int // distinct objects among them
}

// Stats holds dataset-wide statistics.
type Stats struct {
	Triples int
	NdvS    int // distinct subjects in the graph
	NdvP    int // distinct predicates
	NdvO    int // distinct objects
	Preds   map[rdf.ID]PredStat
}

// Store is the four-order triple store. It is immutable after Build and safe
// for concurrent readers.
type Store struct {
	dict   *rdf.Dict
	orders [numOrders]orderIndex
	stats  Stats

	// numeric[i] is the parsed numeric value of term i (NaN when the term
	// is not a numeric literal), precomputed for the SUM/AVG aggregates.
	numeric []float64
}

// Build indexes the graph. The graph should be deduplicated; Build sorts four
// permuted copies of the triples and constructs the hash levels and
// statistics. The graph's triple slice is not retained.
func Build(g *rdf.Graph) *Store {
	st := &Store{dict: g.Dict}
	for o := Order(0); o < numOrders; o++ {
		st.orders[o] = buildOrder(o, g.Triples)
	}
	st.buildStats()
	st.numeric = make([]float64, g.Dict.Len())
	for i := range st.numeric {
		if v, ok := rdf.NumericValue(g.Dict.Term(rdf.ID(i))); ok {
			st.numeric[i] = v
		} else {
			st.numeric[i] = math.NaN()
		}
	}
	return st
}

// Numeric returns the numeric value of a term and whether the term is a
// numeric literal.
func (st *Store) Numeric(id rdf.ID) (float64, bool) {
	if int(id) >= len(st.numeric) {
		return 0, false
	}
	v := st.numeric[id]
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

func buildOrder(o Order, src []rdf.Triple) orderIndex {
	ts := make([]rdf.Triple, len(src))
	copy(ts, src)
	p := perms[o]
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if v0, w0 := field(a, p[0]), field(b, p[0]); v0 != w0 {
			return v0 < w0
		}
		if v1, w1 := field(a, p[1]), field(b, p[1]); v1 != w1 {
			return v1 < w1
		}
		return field(a, p[2]) < field(b, p[2])
	})
	oi := orderIndex{order: o, triples: ts, l1: make(map[rdf.ID]Span)}
	// Build level-1 spans.
	for i := 0; i < len(ts); {
		k := field(ts[i], p[0])
		j := i + 1
		for j < len(ts) && field(ts[j], p[0]) == k {
			j++
		}
		oi.l1[k] = Span{i, j}
		i = j
	}
	// Level-2 hash spans are needed only where random walks look up a pair:
	// (p,s) via PSO and (p,o) via POS.
	if o == PSO || o == POS {
		oi.l2 = make(map[pair]Span)
		for i := 0; i < len(ts); {
			k := pair{field(ts[i], p[0]), field(ts[i], p[1])}
			j := i + 1
			for j < len(ts) && field(ts[j], p[0]) == k[0] && field(ts[j], p[1]) == k[1] {
				j++
			}
			oi.l2[k] = Span{i, j}
			i = j
		}
	}
	return oi
}

func (st *Store) buildStats() {
	st.stats = Stats{
		Triples: len(st.orders[SPO].triples),
		NdvS:    len(st.orders[SPO].l1),
		NdvP:    len(st.orders[PSO].l1),
		NdvO:    len(st.orders[OPS].l1),
		Preds:   make(map[rdf.ID]PredStat, len(st.orders[PSO].l1)),
	}
	for p, sp := range st.orders[PSO].l1 {
		stat := PredStat{Count: sp.Len()}
		// Distinct subjects: count level-2 runs within the PSO span.
		stat.NdvS = countRuns(st.orders[PSO].triples[sp.Lo:sp.Hi], S)
		stat.NdvO = countRuns(st.orders[POS].triples[st.orders[POS].l1[p].Lo:st.orders[POS].l1[p].Hi], O)
		st.stats.Preds[p] = stat
	}
}

// countRuns counts distinct values at position pos over a slice that is
// sorted with pos as its secondary key.
func countRuns(ts []rdf.Triple, pos Pos) int {
	n := 0
	var prev rdf.ID
	for i, t := range ts {
		v := field(t, pos)
		if i == 0 || v != prev {
			n++
			prev = v
		}
	}
	return n
}

// Dict returns the term dictionary backing the store.
func (st *Store) Dict() *rdf.Dict { return st.dict }

// Stats returns dataset-wide statistics.
func (st *Store) Stats() Stats { return st.stats }

// NumTriples returns the total number of indexed triples.
func (st *Store) NumTriples() int { return st.stats.Triples }

// Triples returns the sorted triple slice of an order. The caller must not
// modify it.
func (st *Store) Triples(o Order) []rdf.Triple { return st.orders[o].triples }

// FullSpan returns the span covering all triples of an order.
func (st *Store) FullSpan(o Order) Span { return Span{0, len(st.orders[o].triples)} }

// SpanL1 returns the span of triples whose level-0 value equals v in the
// given order: e.g. SpanL1(SPO, s) is the span of all triples with subject s.
func (st *Store) SpanL1(o Order, v rdf.ID) Span { return st.orders[o].l1[v] }

// SpanL2 returns the span of triples whose level-0 and level-1 values equal
// v0 and v1. For PSO and POS it is a hash lookup (O(1)); for the other
// orders it falls back to binary search within the level-1 span (O(log n)).
func (st *Store) SpanL2(o Order, v0, v1 rdf.ID) Span {
	oi := &st.orders[o]
	if oi.l2 != nil {
		return oi.l2[pair{v0, v1}]
	}
	outer := oi.l1[v0]
	if outer.Empty() {
		return Span{}
	}
	p1 := perms[o][1]
	ts := oi.triples
	lo := outer.Lo + sort.Search(outer.Len(), func(i int) bool { return field(ts[outer.Lo+i], p1) >= v1 })
	hi := outer.Lo + sort.Search(outer.Len(), func(i int) bool { return field(ts[outer.Lo+i], p1) > v1 })
	return Span{lo, hi}
}

// Contains reports whether the fully specified triple is in the store.
func (st *Store) Contains(t rdf.Triple) bool {
	sp := st.SpanL2(PSO, t.P, t.S)
	ts := st.orders[PSO].triples
	i := sp.Lo + sort.Search(sp.Len(), func(i int) bool { return ts[sp.Lo+i].O >= t.O })
	return i < sp.Hi && ts[i] == t
}

// Sample returns a uniformly random triple from the span of the given order.
// The span must be non-empty.
func (st *Store) Sample(o Order, sp Span, rng *rand.Rand) rdf.Triple {
	return st.orders[o].triples[sp.Lo+rng.Intn(sp.Len())]
}

// At returns the i-th triple of a span in the given order.
func (st *Store) At(o Order, sp Span, i int) rdf.Triple {
	return st.orders[o].triples[sp.Lo+i]
}

// EstimateBytes returns an estimate of the resident size of the four index
// orders, used to report the "index memory" figures of the paper.
func (st *Store) EstimateBytes() int64 {
	var b int64
	for o := Order(0); o < numOrders; o++ {
		b += int64(len(st.orders[o].triples)) * 12
		b += int64(len(st.orders[o].l1)) * 24
		b += int64(len(st.orders[o].l2)) * 28
	}
	return b
}
