// Package index implements the storage layer shared by all engines in this
// repository: an in-memory triple store with four index orders (spo, ops,
// pso, pos), exactly the orders the paper maintains for its exploration
// queries.
//
// Each order keeps one permuted, sorted slice of encoded triples plus
// prefix-to-span levels. This is the paper's "hybrid hashtable/trie"
// structure: the levels give O(1) candidate-set lookup and uniform sampling
// for the random walks of Wander Join and Audit Join, while the sorted spans
// act as tries with O(log n) seeks for Leapfrog Trie Join and Cached Trie
// Join. Because dictionary IDs are dense, level 1 is a direct-indexed
// []Span array rather than a hash map; level 2 (PSO/POS pair lookup) packs
// the (v0, v1) pair into a single uint64 map key.
//
// Build constructs the four orders concurrently — one goroutine per order,
// each sorting its permuted copy with an LSD radix sort (rdf.SortTriples) —
// plus a goroutine for the numeric-literal precompute, and computes the
// per-predicate statistics in parallel chunks over the predicate ID space.
package index

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"unsafe"

	"kgexplore/internal/rdf"
)

// Order names one of the four maintained attribute orders.
type Order uint8

const (
	SPO Order = iota
	OPS
	PSO
	POS
	numOrders
)

func (o Order) String() string {
	switch o {
	case SPO:
		return "spo"
	case OPS:
		return "ops"
	case PSO:
		return "pso"
	case POS:
		return "pos"
	default:
		return fmt.Sprintf("Order(%d)", uint8(o))
	}
}

// Pos names a triple position.
type Pos uint8

const (
	S Pos = iota
	P
	O
)

func (p Pos) String() string {
	switch p {
	case S:
		return "s"
	case P:
		return "p"
	case O:
		return "o"
	default:
		return fmt.Sprintf("Pos(%d)", uint8(p))
	}
}

// perms[o] gives the triple positions stored at trie levels 0, 1, 2 of order o.
var perms = [numOrders][3]Pos{
	SPO: {S, P, O},
	OPS: {O, P, S},
	PSO: {P, S, O},
	POS: {P, O, S},
}

// Levels returns the positions at the three trie levels of the order.
func (o Order) Levels() [3]Pos { return perms[o] }

// field extracts the value of triple t at position p.
func field(t rdf.Triple, p Pos) rdf.ID {
	switch p {
	case S:
		return t.S
	case P:
		return t.P
	default:
		return t.O
	}
}

// Field is the exported form of field, used by the join engines.
func Field(t rdf.Triple, p Pos) rdf.ID { return field(t, p) }

// Span is a half-open range [Lo, Hi) into one order's sorted triple slice.
type Span struct {
	Lo, Hi int
}

// Len returns the number of triples in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Empty reports whether the span contains no triples.
func (s Span) Empty() bool { return s.Hi <= s.Lo }

// packPair packs a level-2 lookup pair into one uint64 map key, keeping the
// l2 lookup on the runtime's fast uint64 map path.
func packPair(v0, v1 rdf.ID) uint64 { return uint64(v0)<<32 | uint64(v1) }

// orderIndex is one fully materialized index order.
type orderIndex struct {
	order   Order
	triples []rdf.Triple // sorted by the order's permutation
	// l1 is direct-indexed by the level-0 ID (the zero Span is empty, so
	// absent keys need no presence bit); ndv1 counts its non-empty entries.
	l1   []Span
	ndv1 int
	l2   map[uint64]Span // only populated for PSO and POS
	// l2keys/l2spans are the packed alternative to l2 used by snapshot-
	// restored stores: packPair keys in ascending order with their spans,
	// looked up by binary search. Because the arrays can alias a read-only
	// mmap region directly, an mmap load needs no hash-map rebuild. At most
	// one of l2 and l2keys is set.
	l2keys  []uint64
	l2spans []Span
}

// PredStat holds the per-predicate statistics the tipping-point estimator
// uses (PostgreSQL-style join-size estimation, paper §IV-D).
type PredStat struct {
	Count int // number of triples with this predicate
	NdvS  int // distinct subjects among them
	NdvO  int // distinct objects among them
}

// Stats holds dataset-wide statistics.
type Stats struct {
	Triples int
	NdvS    int // distinct subjects in the graph
	NdvP    int // distinct predicates
	NdvO    int // distinct objects
	Preds   map[rdf.ID]PredStat
}

// Store is the four-order triple store. It is immutable after Build and safe
// for concurrent readers.
type Store struct {
	dict   *rdf.Dict
	orders [numOrders]orderIndex
	stats  Stats

	// predStats is the dense mirror of stats.Preds, indexed by predicate ID;
	// the join-size estimator reads it on every Audit Join walk step.
	predStats []PredStat

	// numeric[i] is the parsed numeric value of term i (NaN when the term
	// is not a numeric literal), precomputed for the SUM/AVG aggregates.
	numeric []float64

	// summary is the typed graph summary (see summary.go), restored from a
	// v2 snapshot or built lazily on first use via Summary().
	summaryOnce sync.Once
	summary     *Summary

	// classifier memoizes the subject→bucket classification behind
	// stratified root sampling (strata.go), built lazily on first use.
	classifierOnce sync.Once
	classifier     *Classifier
}

// Build indexes the graph. The graph should be deduplicated; Build sorts four
// permuted copies of the triples and constructs the span levels and
// statistics. The four orders are built concurrently (one goroutine each,
// radix-sorting), overlapped with the numeric-literal precompute; the
// per-predicate statistics then run in parallel chunks. The graph's triple
// slice is not retained.
func Build(g *rdf.Graph) *Store {
	st := &Store{dict: g.Dict}
	dictLen := g.Dict.Len()
	var wg sync.WaitGroup
	for o := Order(0); o < numOrders; o++ {
		wg.Add(1)
		go func(o Order) {
			defer wg.Done()
			st.orders[o] = buildOrder(o, g.Triples, dictLen)
		}(o)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		st.numeric = buildNumeric(g.Dict)
	}()
	wg.Wait()
	st.buildStats(dictLen)
	return st
}

func buildNumeric(d *rdf.Dict) []float64 {
	numeric := make([]float64, d.Len())
	for i := range numeric {
		if v, ok := rdf.NumericValue(d.Term(rdf.ID(i))); ok {
			numeric[i] = v
		} else {
			numeric[i] = math.NaN()
		}
	}
	return numeric
}

// Numeric returns the numeric value of a term and whether the term is a
// numeric literal.
func (st *Store) Numeric(id rdf.ID) (float64, bool) {
	if int(id) >= len(st.numeric) {
		return 0, false
	}
	v := st.numeric[id]
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

func buildOrder(o Order, src []rdf.Triple, dictLen int) orderIndex {
	ts := make([]rdf.Triple, len(src))
	copy(ts, src)
	p := perms[o]
	rdf.SortTriples(ts, uint8(p[0]), uint8(p[1]), uint8(p[2]))
	// Dictionary IDs are dense, so the level-0 key space is [0, dictLen);
	// tolerate callers that index triples with IDs beyond the dictionary
	// (ts is sorted, so the maximum key is at the end).
	n := dictLen
	if len(ts) > 0 {
		if maxKey := int(field(ts[len(ts)-1], p[0])); maxKey+1 > n {
			n = maxKey + 1
		}
	}
	oi := orderIndex{order: o, triples: ts, l1: make([]Span, n)}
	// Build level-1 spans over the dense ID space.
	for i := 0; i < len(ts); {
		k := field(ts[i], p[0])
		j := i + 1
		for j < len(ts) && field(ts[j], p[0]) == k {
			j++
		}
		oi.l1[k] = Span{i, j}
		oi.ndv1++
		i = j
	}
	// Level-2 hash spans are needed only where random walks look up a pair:
	// (p,s) via PSO and (p,o) via POS.
	if o == PSO || o == POS {
		oi.l2 = make(map[uint64]Span)
		for i := 0; i < len(ts); {
			v0, v1 := field(ts[i], p[0]), field(ts[i], p[1])
			j := i + 1
			for j < len(ts) && field(ts[j], p[0]) == v0 && field(ts[j], p[1]) == v1 {
				j++
			}
			oi.l2[packPair(v0, v1)] = Span{i, j}
			i = j
		}
	}
	return oi
}

// buildStats derives the dataset-wide and per-predicate statistics. The
// per-predicate pass (ndv counting over every predicate's PSO and POS spans)
// is chunked over the dense predicate ID space across GOMAXPROCS workers;
// each worker writes disjoint entries of the dense predStats array.
func (st *Store) buildStats(dictLen int) {
	st.stats = Stats{
		Triples: len(st.orders[SPO].triples),
		NdvS:    st.orders[SPO].ndv1,
		NdvP:    st.orders[PSO].ndv1,
		NdvO:    st.orders[OPS].ndv1,
		Preds:   make(map[rdf.ID]PredStat, st.orders[PSO].ndv1),
	}
	// The predicate key space is the PSO level-1 array (at least dictLen;
	// larger when triples carry out-of-dictionary IDs).
	nPred := len(st.orders[PSO].l1)
	st.predStats = make([]PredStat, nPred)
	pso, pos := &st.orders[PSO], &st.orders[POS]
	workers := runtime.GOMAXPROCS(0)
	if workers > 1 && nPred >= 2 {
		var wg sync.WaitGroup
		chunk := (nPred + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > nPred {
				hi = nPred
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				st.buildPredStats(pso, pos, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	} else {
		st.buildPredStats(pso, pos, 0, nPred)
	}
	for p, sp := range pso.l1 {
		if !sp.Empty() {
			st.stats.Preds[rdf.ID(p)] = st.predStats[p]
		}
	}
}

// buildPredStats fills predStats for predicate IDs in [lo, hi).
func (st *Store) buildPredStats(pso, pos *orderIndex, lo, hi int) {
	for p := lo; p < hi; p++ {
		sp := pso.l1[p]
		if sp.Empty() {
			continue
		}
		osp := pos.l1[p]
		st.predStats[p] = PredStat{
			Count: sp.Len(),
			NdvS:  countRuns(pso.triples[sp.Lo:sp.Hi], S),
			NdvO:  countRuns(pos.triples[osp.Lo:osp.Hi], O),
		}
	}
}

// countRuns counts distinct values at position pos over a slice that is
// sorted with pos as its secondary key.
func countRuns(ts []rdf.Triple, pos Pos) int {
	n := 0
	var prev rdf.ID
	for i, t := range ts {
		v := field(t, pos)
		if i == 0 || v != prev {
			n++
			prev = v
		}
	}
	return n
}

// Dict returns the term dictionary backing the store.
func (st *Store) Dict() *rdf.Dict { return st.dict }

// Stats returns dataset-wide statistics.
func (st *Store) Stats() Stats { return st.stats }

// PredStatOf returns the per-predicate statistics for p: a direct array read
// on the hot tipping-point path (stats.Preds holds the same data under map
// lookup for enumeration-style consumers).
func (st *Store) PredStatOf(p rdf.ID) PredStat {
	if int(p) >= len(st.predStats) {
		return PredStat{}
	}
	return st.predStats[p]
}

// NumTriples returns the total number of indexed triples.
func (st *Store) NumTriples() int { return st.stats.Triples }

// Triples returns the sorted triple slice of an order. The caller must not
// modify it.
func (st *Store) Triples(o Order) []rdf.Triple { return st.orders[o].triples }

// FullSpan returns the span covering all triples of an order.
func (st *Store) FullSpan(o Order) Span { return Span{0, len(st.orders[o].triples)} }

// SpanL1 returns the span of triples whose level-0 value equals v in the
// given order: e.g. SpanL1(SPO, s) is the span of all triples with subject s.
// The lookup is a direct array index over the dense ID space.
func (st *Store) SpanL1(o Order, v rdf.ID) Span {
	l1 := st.orders[o].l1
	if int(v) >= len(l1) {
		return Span{}
	}
	return l1[v]
}

// SpanL2 returns the span of triples whose level-0 and level-1 values equal
// v0 and v1. For PSO and POS it is a packed-key hash lookup (O(1)) on built
// stores and a binary search over the packed key array on snapshot-restored
// stores; for the other orders it falls back to binary search within the
// level-1 span (O(log n)).
func (st *Store) SpanL2(o Order, v0, v1 rdf.ID) Span {
	oi := &st.orders[o]
	if oi.l2 != nil {
		return oi.l2[packPair(v0, v1)]
	}
	if len(oi.l2keys) > 0 {
		k := packPair(v0, v1)
		i := sort.Search(len(oi.l2keys), func(i int) bool { return oi.l2keys[i] >= k })
		if i < len(oi.l2keys) && oi.l2keys[i] == k {
			return oi.l2spans[i]
		}
		return Span{}
	}
	outer := st.SpanL1(o, v0)
	if outer.Empty() {
		return Span{}
	}
	p1 := perms[o][1]
	ts := oi.triples
	lo := outer.Lo + sort.Search(outer.Len(), func(i int) bool { return field(ts[outer.Lo+i], p1) >= v1 })
	hi := outer.Lo + sort.Search(outer.Len(), func(i int) bool { return field(ts[outer.Lo+i], p1) > v1 })
	return Span{lo, hi}
}

// Contains reports whether the fully specified triple is in the store.
func (st *Store) Contains(t rdf.Triple) bool {
	sp := st.SpanL2(PSO, t.P, t.S)
	ts := st.orders[PSO].triples
	i := sp.Lo + sort.Search(sp.Len(), func(i int) bool { return ts[sp.Lo+i].O >= t.O })
	return i < sp.Hi && ts[i] == t
}

// Sample returns a uniformly random triple from the span of the given order.
// The span must be non-empty.
func (st *Store) Sample(o Order, sp Span, rng *rand.Rand) rdf.Triple {
	return st.orders[o].triples[sp.Lo+rng.Intn(sp.Len())]
}

// At returns the i-th triple of a span in the given order.
func (st *Store) At(o Order, sp Span, i int) rdf.Triple {
	return st.orders[o].triples[sp.Lo+i]
}

// EstimateBytes returns an estimate of the resident size of the four index
// orders, used to report the "index memory" figures of the paper. Sizes are
// computed from the actual element sizes and level lengths: the triple
// slices, the dense level-1 arrays, and the level-2 hash entries (packed
// uint64 key + span, ignoring map bucket overhead).
func (st *Store) EstimateBytes() int64 {
	const (
		tripleSize = int64(unsafe.Sizeof(rdf.Triple{}))
		spanSize   = int64(unsafe.Sizeof(Span{}))
		l2KeySize  = int64(unsafe.Sizeof(uint64(0)))
	)
	var b int64
	for o := Order(0); o < numOrders; o++ {
		b += int64(len(st.orders[o].triples)) * tripleSize
		b += int64(len(st.orders[o].l1)) * spanSize
		b += int64(len(st.orders[o].l2)) * (l2KeySize + spanSize)
		b += int64(len(st.orders[o].l2keys)) * (l2KeySize + spanSize)
	}
	return b
}
