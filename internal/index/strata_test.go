package index

import (
	"fmt"
	"math/rand"
	"testing"

	"kgexplore/internal/rdf"
)

// strataGraph builds a skewed graph with two subject populations: a few
// hub subjects with many out-edges (charset {knows, hub}) and many leaf
// subjects with one out-edge each (charset {knows, type}).
func strataGraph(t *testing.T) (*rdf.Graph, *Store) {
	t.Helper()
	g := rdf.NewGraph()
	for h := 0; h < 4; h++ {
		hub := fmt.Sprintf("hub%d", h)
		g.AddIRIs(hub, "hubFlag", "yes")
		for j := 0; j < 30; j++ {
			g.AddIRIs(hub, "knows", fmt.Sprintf("friend%d_%d", h, j))
		}
	}
	for p := 0; p < 120; p++ {
		person := fmt.Sprintf("person%d", p)
		g.AddIRIs(person, rdf.RDFType, "Person")
		g.AddIRIs(person, "knows", fmt.Sprintf("pal%d", p))
	}
	g.Dedup()
	return g, Build(g)
}

func TestStratifyRootsPartition(t *testing.T) {
	g, st := strataGraph(t)
	knows, _ := g.Dict.LookupIRI("knows")
	sp := st.SpanL1(PSO, knows)
	if sp.Len() != 4*30+120 {
		t.Fatalf("root span has %d triples, want 240", sp.Len())
	}
	strata := StratifyRoots(st, PSO, sp, 0)
	if len(strata) < 2 {
		t.Fatalf("expected >=2 strata over two charsets, got %d", len(strata))
	}

	// The strata must be a disjoint cover of the span: every position
	// reached exactly once through Pos, totals summing to the span length.
	seen := make(map[int]int)
	total := 0
	for k := range strata {
		rs := &strata[k]
		total += rs.Total
		for i := 0; i < rs.Total; i++ {
			pos := rs.Pos(i)
			if pos < sp.Lo || pos >= sp.Hi {
				t.Fatalf("stratum %d rank %d maps to %d outside span [%d,%d)", k, i, pos, sp.Lo, sp.Hi)
			}
			seen[pos]++
		}
	}
	if total != sp.Len() {
		t.Fatalf("stratum totals sum to %d, want %d", total, sp.Len())
	}
	for pos, n := range seen {
		if n != 1 {
			t.Fatalf("position %d covered %d times", pos, n)
		}
	}

	// Every triple of a stratum must classify into the stratum's bucket.
	cl := st.Classifier()
	for k := range strata {
		rs := &strata[k]
		if rs.Bucket < 0 {
			continue // merged tail stratum mixes buckets by design
		}
		for i := 0; i < rs.Total; i++ {
			tr := rs.At(st, PSO, i)
			if b := cl.Bucket(tr.S); b != rs.Bucket {
				t.Fatalf("stratum %d (bucket %d) holds subject %d of bucket %d", k, rs.Bucket, tr.S, b)
			}
		}
	}

	// Sampling stays inside the stratum.
	rng := rand.New(rand.NewSource(1))
	for k := range strata {
		rs := &strata[k]
		for i := 0; i < 200; i++ {
			tr := rs.Sample(st, PSO, rng)
			if rs.Bucket >= 0 && cl.Bucket(tr.S) != rs.Bucket {
				t.Fatalf("sample from stratum %d left its bucket", k)
			}
		}
	}
}

func TestStratifyRootsMaxStrata(t *testing.T) {
	g := rdf.NewGraph()
	// 8 distinct charsets: subject i has predicates {knows, p_i}.
	for i := 0; i < 8; i++ {
		s := fmt.Sprintf("s%d", i)
		g.AddIRIs(s, "knows", fmt.Sprintf("o%d", i))
		g.AddIRIs(s, fmt.Sprintf("p%d", i), "x")
	}
	g.Dedup()
	st := Build(g)
	knows, _ := g.Dict.LookupIRI("knows")
	sp := st.SpanL1(PSO, knows)
	strata := StratifyRoots(st, PSO, sp, 4)
	if len(strata) != 4 {
		t.Fatalf("got %d strata with maxStrata=4", len(strata))
	}
	tail := strata[len(strata)-1]
	if tail.Bucket != -1 {
		t.Fatalf("expected merged tail stratum, got bucket %d", tail.Bucket)
	}
	total := 0
	for _, rs := range strata {
		total += rs.Total
	}
	if total != sp.Len() {
		t.Fatalf("capped strata cover %d of %d", total, sp.Len())
	}
}

func TestStratifyRootsUniformFallbacks(t *testing.T) {
	g := rdf.NewGraph()
	for i := 0; i < 10; i++ {
		g.AddIRIs(fmt.Sprintf("s%d", i), "knows", "o")
	}
	g.Dedup()
	st := Build(g)
	knows, _ := g.Dict.LookupIRI("knows")
	sp := st.SpanL1(PSO, knows)
	if got := StratifyRoots(st, PSO, sp, 0); got != nil {
		t.Fatalf("single-charset span should not stratify, got %d strata", len(got))
	}
	if got := StratifyRoots(st, PSO, Span{sp.Lo, sp.Lo + 1}, 0); got != nil {
		t.Fatalf("one-triple span should not stratify")
	}
}

func TestClassifierMatchesSummary(t *testing.T) {
	g, st := strataGraph(t)
	_ = g
	sum := st.Summary()
	cl := st.Classifier()
	if cl.NumBuckets() != sum.NumBuckets {
		t.Fatalf("classifier sees %d buckets, summary %d", cl.NumBuckets(), sum.NumBuckets)
	}
	// Bucket populations recomputed through the classifier must match the
	// summary's subject-bucket node counts (leaf bucket 0 differs: the
	// summary also counts object-only nodes there).
	counts := make([]int64, sum.NumBuckets)
	spoLen := len(st.orders[SPO].l1)
	for s := 0; s < spoLen; s++ {
		if st.orders[SPO].l1[s].Empty() {
			continue
		}
		counts[cl.Bucket(rdf.ID(s))]++
	}
	for b := 1; b < sum.NumBuckets; b++ {
		if counts[b] != sum.BucketNodes[b] {
			t.Fatalf("bucket %d: classifier %d nodes, summary %d", b, counts[b], sum.BucketNodes[b])
		}
	}
}
