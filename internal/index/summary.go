package index

import (
	"fmt"
	"sort"
	"time"

	"kgexplore/internal/rdf"
)

// This file implements the typed graph summary behind the "summary"
// cardinality estimator (internal/card): nodes bucketed by characteristic
// predicate set — the set of distinct outgoing predicates, in the style of
// Stefanoni et al.'s RDF summarisation — with triple multiplicities recorded
// between buckets. The summary answers conditional fan-out questions
// ("how many p-edges leave a node that was reached as the object of a
// q-edge?") that per-predicate statistics can only approximate under
// independence assumptions.
//
// The data structure lives here, next to PredStat, so snapshots can persist
// it (Parts/Restore) without the index layer depending on the estimators.

// SummaryEdge is one row of the bucket-to-bucket multiplicity table: the
// number of triples with predicate Pred whose subject is in bucket From and
// whose object is in bucket To.
type SummaryEdge struct {
	Pred     rdf.ID
	From, To int32
	Count    int64
}

// Summary is the typed graph summary. Bucket 0 is the leaf bucket: nodes
// with no outgoing edges (objects that never appear as subjects, literals).
// Buckets 1.. group subject nodes by characteristic predicate set.
type Summary struct {
	// NumBuckets counts all buckets including the leaf bucket.
	NumBuckets int
	// BucketNodes[b] is the number of nodes in bucket b.
	BucketNodes []int64
	// CharSetOff/CharSetPreds encode each bucket's characteristic set:
	// bucket b's predicates are CharSetPreds[CharSetOff[b]:CharSetOff[b+1]],
	// ascending. The leaf bucket has the empty set.
	CharSetOff   []int32
	CharSetPreds []rdf.ID
	// Edges is the multiplicity table, sorted by (Pred, From, To).
	Edges []SummaryEdge
	// BuildMillis records how long the summary build took, surfaced by
	// `kgsnap info`.
	BuildMillis int64
}

// CharSet returns bucket b's characteristic predicate set (ascending).
func (s *Summary) CharSet(b int) []rdf.ID {
	return s.CharSetPreds[s.CharSetOff[b]:s.CharSetOff[b+1]]
}

// BuildSummary derives the typed summary from a built (or restored) store.
// The construction is deterministic: buckets are numbered in first-encounter
// order over ascending subject IDs, so two builds of the same store produce
// identical summaries up to the recorded BuildMillis wall time.
func BuildSummary(st *Store) *Summary {
	start := time.Now()
	spo := &st.orders[SPO]
	ops := &st.orders[OPS]
	nIDs := len(spo.l1)
	ts := spo.triples

	bucketOf := make([]int32, nIDs)
	buckets := map[string]int32{"": 0}
	charSets := [][]rdf.ID{nil}
	counts := []int64{0}
	var keyBuf []byte
	var predBuf []rdf.ID
	for s := 0; s < nIDs; s++ {
		sp := spo.l1[s]
		if sp.Empty() {
			continue
		}
		keyBuf = keyBuf[:0]
		predBuf = predBuf[:0]
		var prev rdf.ID
		for i := sp.Lo; i < sp.Hi; i++ {
			// SPO is sorted by (s, p, o), so the subject's predicates appear
			// as runs; collecting run heads yields the ascending charset.
			p := ts[i].P
			if len(predBuf) == 0 || p != prev {
				predBuf = append(predBuf, p)
				keyBuf = append(keyBuf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
				prev = p
			}
		}
		id, ok := buckets[string(keyBuf)]
		if !ok {
			id = int32(len(charSets))
			buckets[string(keyBuf)] = id
			charSets = append(charSets, append([]rdf.ID(nil), predBuf...))
			counts = append(counts, 0)
		}
		bucketOf[s] = id
		counts[id]++
	}

	// Leaf bucket: nodes that appear as objects but never as subjects.
	for o := range ops.l1 {
		if ops.l1[o].Empty() {
			continue
		}
		if o >= nIDs || spo.l1[o].Empty() {
			counts[0]++
		}
	}

	type ekey struct {
		p        rdf.ID
		from, to int32
	}
	em := make(map[ekey]int64)
	for s := 0; s < nIDs; s++ {
		sp := spo.l1[s]
		if sp.Empty() {
			continue
		}
		from := bucketOf[s]
		for i := sp.Lo; i < sp.Hi; i++ {
			t := ts[i]
			var to int32
			if int(t.O) < nIDs {
				to = bucketOf[t.O]
			}
			em[ekey{t.P, from, to}]++
		}
	}
	edges := make([]SummaryEdge, 0, len(em))
	for k, c := range em {
		edges = append(edges, SummaryEdge{Pred: k.p, From: k.from, To: k.to, Count: c})
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Pred != b.Pred {
			return a.Pred < b.Pred
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})

	sum := &Summary{
		NumBuckets:  len(charSets),
		BucketNodes: counts,
		CharSetOff:  make([]int32, 1, len(charSets)+1),
		Edges:       edges,
	}
	for _, cs := range charSets {
		sum.CharSetPreds = append(sum.CharSetPreds, cs...)
		sum.CharSetOff = append(sum.CharSetOff, int32(len(sum.CharSetPreds)))
	}
	sum.BuildMillis = time.Since(start).Milliseconds()
	return sum
}

// Summary returns the store's typed graph summary, building it on first use
// when the store was not restored with one (pre-v2 snapshots, fresh builds).
// Safe for concurrent callers.
func (st *Store) Summary() *Summary {
	st.summaryOnce.Do(func() {
		if st.summary == nil {
			st.summary = BuildSummary(st)
		}
	})
	return st.summary
}

// EncodeU64 flattens the summary into a []uint64 image, the form the
// snapshot layer persists (one checksummed section of u64 elements):
//
//	[0] NumBuckets  [1] len(CharSetPreds)  [2] len(Edges)  [3] BuildMillis
//	then BucketNodes, CharSetOff (NumBuckets+1), CharSetPreds,
//	then per edge: Pred, From<<32|To, Count.
func (s *Summary) EncodeU64() []uint64 {
	out := make([]uint64, 0, 4+s.NumBuckets+(s.NumBuckets+1)+len(s.CharSetPreds)+3*len(s.Edges))
	out = append(out, uint64(s.NumBuckets), uint64(len(s.CharSetPreds)), uint64(len(s.Edges)), uint64(s.BuildMillis))
	for _, c := range s.BucketNodes {
		out = append(out, uint64(c))
	}
	for _, o := range s.CharSetOff {
		out = append(out, uint64(o))
	}
	for _, p := range s.CharSetPreds {
		out = append(out, uint64(p))
	}
	for _, e := range s.Edges {
		out = append(out, uint64(e.Pred), uint64(uint32(e.From))<<32|uint64(uint32(e.To)), uint64(e.Count))
	}
	return out
}

// DecodeSummary parses an EncodeU64 image, validating structure (lengths,
// offset monotonicity, bucket bounds) so corrupt images fail at load rather
// than panicking inside an estimate. The result shares no memory with data.
func DecodeSummary(data []uint64) (*Summary, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("index: summary image too short (%d words)", len(data))
	}
	nb, np, ne := int(data[0]), int(data[1]), int(data[2])
	if nb < 1 || np < 0 || ne < 0 {
		return nil, fmt.Errorf("index: summary header counts %d/%d/%d invalid", nb, np, ne)
	}
	want := 4 + nb + (nb + 1) + np + 3*ne
	if len(data) != want {
		return nil, fmt.Errorf("index: summary image has %d words, header implies %d", len(data), want)
	}
	s := &Summary{
		NumBuckets:   nb,
		BuildMillis:  int64(data[3]),
		BucketNodes:  make([]int64, nb),
		CharSetOff:   make([]int32, nb+1),
		CharSetPreds: make([]rdf.ID, np),
		Edges:        make([]SummaryEdge, ne),
	}
	off := 4
	for i := range s.BucketNodes {
		s.BucketNodes[i] = int64(data[off+i])
		if s.BucketNodes[i] < 0 {
			return nil, fmt.Errorf("index: summary bucket %d has negative node count", i)
		}
	}
	off += nb
	for i := range s.CharSetOff {
		s.CharSetOff[i] = int32(data[off+i])
	}
	off += nb + 1
	if s.CharSetOff[0] != 0 || int(s.CharSetOff[nb]) != np {
		return nil, fmt.Errorf("index: summary charset offsets do not cover the predicate array")
	}
	for i := 1; i <= nb; i++ {
		if s.CharSetOff[i] < s.CharSetOff[i-1] {
			return nil, fmt.Errorf("index: summary charset offsets not monotone")
		}
	}
	for i := range s.CharSetPreds {
		s.CharSetPreds[i] = rdf.ID(data[off+i])
	}
	off += np
	for i := range s.Edges {
		packed := data[off+3*i+1]
		e := SummaryEdge{
			Pred:  rdf.ID(data[off+3*i]),
			From:  int32(uint32(packed >> 32)),
			To:    int32(uint32(packed)),
			Count: int64(data[off+3*i+2]),
		}
		if int(e.From) >= nb || int(e.To) >= nb || e.From < 0 || e.To < 0 || e.Count < 0 {
			return nil, fmt.Errorf("index: summary edge %d out of bucket range", i)
		}
		s.Edges[i] = e
	}
	return s, nil
}

// MergeSummaries combines per-shard summaries into one set-level summary by
// unioning characteristic sets and summing node and edge counts. Under
// subject-hash partitioning every subject's out-edges live in one shard, so
// subject-bucket node counts partition exactly; edge TARGET buckets are
// shard-local approximations (a node that is a subject in another shard
// looks like a leaf to this one), which only blurs conditional fan-outs —
// never the per-predicate totals.
func MergeSummaries(sums []*Summary) *Summary {
	if len(sums) == 1 {
		return sums[0]
	}
	type bkey = string
	keyOf := func(s *Summary, b int32) bkey {
		cs := s.CharSet(int(b))
		buf := make([]byte, 0, 4*len(cs))
		for _, p := range cs {
			buf = append(buf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
		}
		return bkey(buf)
	}
	buckets := map[bkey]int32{"": 0}
	charSets := [][]rdf.ID{nil}
	counts := []int64{0}
	remap := make([][]int32, len(sums))
	for si, s := range sums {
		remap[si] = make([]int32, s.NumBuckets)
		for b := 0; b < s.NumBuckets; b++ {
			k := keyOf(s, int32(b))
			id, ok := buckets[k]
			if !ok {
				id = int32(len(charSets))
				buckets[k] = id
				charSets = append(charSets, append([]rdf.ID(nil), s.CharSet(b)...))
				counts = append(counts, 0)
			}
			remap[si][b] = id
			counts[id] += s.BucketNodes[b]
		}
	}
	type ekey struct {
		p        rdf.ID
		from, to int32
	}
	em := make(map[ekey]int64)
	for si, s := range sums {
		for _, e := range s.Edges {
			em[ekey{e.Pred, remap[si][e.From], remap[si][e.To]}] += e.Count
		}
	}
	edges := make([]SummaryEdge, 0, len(em))
	for k, c := range em {
		edges = append(edges, SummaryEdge{Pred: k.p, From: k.from, To: k.to, Count: c})
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.Pred != b.Pred {
			return a.Pred < b.Pred
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	out := &Summary{
		NumBuckets:  len(charSets),
		BucketNodes: counts,
		CharSetOff:  make([]int32, 1, len(charSets)+1),
		Edges:       edges,
	}
	for _, cs := range charSets {
		out.CharSetPreds = append(out.CharSetPreds, cs...)
		out.CharSetOff = append(out.CharSetOff, int32(len(out.CharSetPreds)))
	}
	return out
}
