package index

import (
	"math/rand"
	"reflect"
	"testing"

	"kgexplore/internal/rdf"
)

// The buildTestGraph fixture (store_test.go) has a fully hand-checkable
// summary. Interned IDs: a=0, knows=1, b=2, c=3, d=4, type=5, Person=6,
// Robot=7, name=8, "A"=9. Characteristic sets: a -> {knows, type, name},
// b, c -> {knows, type}; d, Person, Robot and "A" are leaves.
func TestBuildSummaryFixture(t *testing.T) {
	st := Build(buildTestGraph())
	s := st.Summary()
	if s.NumBuckets != 3 {
		t.Fatalf("NumBuckets = %d, want 3", s.NumBuckets)
	}
	if got, want := s.BucketNodes, []int64{4, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("BucketNodes = %v, want %v", got, want)
	}
	if got := s.CharSet(0); len(got) != 0 {
		t.Errorf("leaf charset = %v, want empty", got)
	}
	if got, want := s.CharSet(1), []rdf.ID{1, 5, 8}; !reflect.DeepEqual(got, want) {
		t.Errorf("bucket 1 charset = %v, want %v", got, want)
	}
	if got, want := s.CharSet(2), []rdf.ID{1, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("bucket 2 charset = %v, want %v", got, want)
	}
	wantEdges := []SummaryEdge{
		{Pred: 1, From: 1, To: 2, Count: 2}, // a knows b, a knows c
		{Pred: 1, From: 2, To: 0, Count: 1}, // c knows d
		{Pred: 1, From: 2, To: 2, Count: 1}, // b knows c
		{Pred: 5, From: 1, To: 0, Count: 1}, // a type Person
		{Pred: 5, From: 2, To: 0, Count: 2}, // b type Person, c type Robot
		{Pred: 8, From: 1, To: 0, Count: 1}, // a name "A"
	}
	if !reflect.DeepEqual(s.Edges, wantEdges) {
		t.Errorf("Edges = %v\nwant %v", s.Edges, wantEdges)
	}
	// Summary() must memoize: a second call returns the same object.
	if st.Summary() != s {
		t.Error("Summary() rebuilt on second call")
	}
}

// summaryRandomGraph feeds randomGraph (store_test.go) from a seeded stream.
func summaryRandomGraph(seed int64, n int) *rdf.Graph {
	raw := make([]byte, 3*n)
	rng := rand.New(rand.NewSource(seed))
	rng.Read(raw)
	return randomGraph(raw)
}

func TestBuildSummaryDeterministic(t *testing.T) {
	g := summaryRandomGraph(41, 800)
	a := BuildSummary(Build(g))
	b := BuildSummary(Build(g))
	a.BuildMillis, b.BuildMillis = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Error("two builds of the same store produced different summaries")
	}
}

func TestSummaryEncodeDecodeRoundTrip(t *testing.T) {
	for name, g := range map[string]*rdf.Graph{
		"fixture": buildTestGraph(),
		"random":  summaryRandomGraph(17, 1200),
		"empty":   func() *rdf.Graph { g := rdf.NewGraph(); g.Dedup(); return g }(),
	} {
		want := BuildSummary(Build(g))
		img := want.EncodeU64()
		got, err := DecodeSummary(img)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		// Compare via re-encoding: decode normalizes nil slices to empty, so
		// DeepEqual on the structs is too strict for degenerate stores.
		if !reflect.DeepEqual(got.EncodeU64(), img) {
			t.Errorf("%s: round trip changed the summary:\n got %+v\nwant %+v", name, got, want)
		}
		if got.NumBuckets != want.NumBuckets || got.BuildMillis != want.BuildMillis {
			t.Errorf("%s: header fields changed: %+v vs %+v", name, got, want)
		}
	}
}

func TestDecodeSummaryRejectsCorrupt(t *testing.T) {
	img := BuildSummary(Build(buildTestGraph())).EncodeU64()
	mutate := func(fn func(m []uint64) []uint64) []uint64 {
		m := append([]uint64(nil), img...)
		return fn(m)
	}
	cases := map[string][]uint64{
		"empty":     nil,
		"too short": img[:3],
		"truncated": img[:len(img)-1],
		"trailing":  append(append([]uint64(nil), img...), 0),
		"zero buckets": mutate(func(m []uint64) []uint64 {
			m[0] = 0
			return m
		}),
		"length mismatch": mutate(func(m []uint64) []uint64 {
			m[1]++ // claims one more charset predicate than present
			return m
		}),
		"negative node count": mutate(func(m []uint64) []uint64 {
			m[4] = ^uint64(0)
			return m
		}),
		"offsets not covering": mutate(func(m []uint64) []uint64 {
			m[4+int(m[0])] = 1 // CharSetOff[0] must be 0
			return m
		}),
		"offsets not monotone": mutate(func(m []uint64) []uint64 {
			nb := int(m[0])
			m[4+nb+1], m[4+nb+2] = m[4+nb+2], m[4+nb+1]
			return m
		}),
		"edge bucket out of range": mutate(func(m []uint64) []uint64 {
			nb, np := int(m[0]), int(m[1])
			edge0 := 4 + nb + (nb + 1) + np
			m[edge0+1] = uint64(nb) << 32 // From = NumBuckets
			return m
		}),
	}
	for name, data := range cases {
		if _, err := DecodeSummary(data); err == nil {
			t.Errorf("%s: corrupt image decoded without error", name)
		}
	}
}

// TestMergeSummaries splits the fixture by subject across two stores sharing
// one dictionary (the shard layout) and checks the merged summary keeps the
// exact per-predicate totals and the union of characteristic sets.
func TestMergeSummaries(t *testing.T) {
	whole := rdf.NewGraph()
	left := rdf.NewGraph()
	right := rdf.NewGraph()
	left.Dict, right.Dict = whole.Dict, whole.Dict
	add := func(g *rdf.Graph, s, p, o string) {
		whole.AddIRIs(s, p, o)
		g.AddIRIs(s, p, o)
	}
	// Subjects a, b on the left shard; c on the right.
	add(left, "a", "knows", "b")
	add(left, "a", "knows", "c")
	add(left, "b", "knows", "c")
	add(right, "c", "knows", "d")
	add(left, "a", "type", "Person")
	add(left, "b", "type", "Person")
	add(right, "c", "type", "Robot")
	for _, g := range []*rdf.Graph{whole, left, right} {
		g.Dedup()
	}

	sl, sr := BuildSummary(Build(left)), BuildSummary(Build(right))
	merged := MergeSummaries([]*Summary{sl, sr})
	want := BuildSummary(Build(whole))

	predTotal := func(s *Summary) map[rdf.ID]int64 {
		m := make(map[rdf.ID]int64)
		for _, e := range s.Edges {
			m[e.Pred] += e.Count
		}
		return m
	}
	if got, exp := predTotal(merged), predTotal(want); !reflect.DeepEqual(got, exp) {
		t.Errorf("merged per-predicate totals %v, want %v", got, exp)
	}
	// Subject buckets partition exactly under subject hashing, so the merged
	// non-leaf bucket populations must match the whole-graph summary's.
	nodesByCharset := func(s *Summary) map[string]int64 {
		m := make(map[string]int64)
		for b := 1; b < s.NumBuckets; b++ {
			key := ""
			for _, p := range s.CharSet(b) {
				key += string(rune(p)) + ","
			}
			m[key] += s.BucketNodes[b]
		}
		return m
	}
	if got, exp := nodesByCharset(merged), nodesByCharset(want); !reflect.DeepEqual(got, exp) {
		t.Errorf("merged subject buckets %v, want %v", got, exp)
	}
	// A single summary merges to itself.
	if MergeSummaries([]*Summary{sl}) != sl {
		t.Error("single-summary merge did not return its input")
	}
}
