package core

import (
	"sync"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// RunParallel runs Audit Join with workers independent runners (each with
// its own derived seed and CTJ cache), walksPerWorker walks each, and merges
// their accumulators into one result. Because the walks are i.i.d., the
// merged estimator is identical in distribution to a single runner with
// workers × walksPerWorker walks; wall-clock time scales down with the
// number of cores.
//
// The per-worker CTJ caches are not shared (the runners are single-
// threaded by design), so parallel runs trade some duplicated exact
// computation for core-level parallelism.
func RunParallel(store *index.Store, pl *query.Plan, opts Options, workers, walksPerWorker int) wj.Result {
	if workers < 1 {
		workers = 1
	}
	runners := make([]*Runner, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		o := opts
		o.Seed = opts.Seed + int64(w)*1_000_003
		runners[w] = New(store, pl, o)
		wg.Add(1)
		go func(r *Runner) {
			defer wg.Done()
			r.Run(walksPerWorker)
		}(runners[w])
	}
	wg.Wait()
	merged := wj.NewAcc()
	for _, r := range runners {
		merged.Merge(r.Acc())
	}
	return merged.Snapshot(stats.Z95)
}
