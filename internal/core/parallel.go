package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// RunParallel runs Audit Join with workers independent runners (each with
// its own derived seed and CTJ cache) driven by the shared execution layer:
// all workers honor the one context, so cancelling it stops every core
// promptly, and xopts applies per worker (Budget is the shared wall-clock
// deadline; MaxWalks caps each worker's walks). Because the walks are
// i.i.d., the merged estimator is identical in distribution to a single
// runner with the combined walk count; wall-clock time scales down with the
// number of cores.
//
// When xopts.OnSnapshot and xopts.Interval are set, the callback receives
// progressive *merged* snapshots: each worker publishes a clone of its
// accumulator at every interval and one worker folds the latest clones
// together, so the stream converges like a single estimator with workers×
// the walk rate. Returning false from the callback stops all workers.
//
// The returned result merges the workers' final accumulators. The error is
// ctx.Err() when the context ended the run early (the partial merged result
// is still returned alongside it), nil otherwise.
//
// The per-worker CTJ caches are not shared (the runners are single-
// threaded by design), so parallel runs trade some duplicated exact
// computation for core-level parallelism.
func RunParallel(ctx context.Context, store *index.Store, pl *query.Plan, opts Options, workers int, xopts exec.Options) (wj.Result, error) {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	runners := make([]*Runner, workers)
	latest := make([]*wj.Acc, workers)
	errs := make([]error, workers)
	var mu sync.Mutex // guards latest
	var stopped atomic.Bool
	onSnap := xopts.OnSnapshot

	mergedLocked := func() wj.Result {
		m := wj.NewAcc()
		for _, a := range latest {
			if a != nil {
				m.Merge(a)
			}
		}
		return m.Snapshot(stats.Z95)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		o := opts
		o.Seed = opts.Seed + int64(w)*1_000_003
		runners[w] = New(store, pl, o)

		wopts := xopts
		w := w
		// Every worker publishes its accumulator each interval; worker 0
		// additionally reports the merged view to the caller's callback.
		wopts.OnSnapshot = func(p exec.Progress) bool {
			mu.Lock()
			latest[w] = runners[w].Acc().Clone()
			var merged wj.Result
			if w == 0 && onSnap != nil {
				merged = mergedLocked()
			}
			mu.Unlock()
			if w == 0 && onSnap != nil {
				p.Snapshot = merged
				p.Walks = merged.Walks
				if !onSnap(p) {
					stopped.Store(true)
					cancel()
					return false
				}
			}
			return true
		}
		if wopts.OnSnapshot != nil && wopts.Interval <= 0 {
			wopts.OnSnapshot = nil // nothing to publish without a cadence
		}

		wg.Add(1)
		go func(r *Runner, o exec.Options, i int) {
			defer wg.Done()
			_, errs[i] = exec.Drive(ctx, r, o)
		}(runners[w], wopts, w)
	}
	wg.Wait()

	merged := wj.NewAcc()
	for _, r := range runners {
		merged.Merge(r.Acc())
	}
	res := merged.Snapshot(stats.Z95)
	for _, err := range errs {
		if err != nil && !(stopped.Load() && errors.Is(err, context.Canceled)) {
			return res, err
		}
	}
	return res, nil
}
