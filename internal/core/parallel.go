package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"kgexplore/internal/ctj"
	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// workerSeedStride separates the derived per-worker seeds. Any odd constant
// far from zero works; 1,000,003 (a prime) keeps the streams of math/rand
// sources seeded base, base+stride, base+2·stride… effectively independent —
// rand.NewSource scrambles the seed, so nearby seeds already decorrelate, and
// the stride guards against workers colliding on the exact same seed.
const workerSeedStride = 1_000_003

// WorkerSeed derives the deterministic seed of parallel worker w from a base
// seed. RunParallel and the kgbench parallel benchmarks share this helper so
// a bench run at fixed seeds reproduces the exact walks of a RunParallel call
// with the same base. The walks of distinct workers are treated as
// independent; see workerSeedStride for why distinct seeds suffice.
func WorkerSeed(base int64, w int) int64 {
	return base + int64(w)*workerSeedStride
}

// ParallelStats reports cache effectiveness of one RunParallel call: the
// per-worker CTJ session stats in worker order, and — when the run used a
// shared cache — the merged stats of that cache. With a shared cache the
// duplicated work shows up as the gap between ΣPerWorker misses at W workers
// and the misses of a single-worker run: single-flight keeps it near zero.
type ParallelStats struct {
	PerWorker []ctj.CacheStats
	// Shared is the merged shared-cache view; zero when SharedUsed is false.
	Shared ctj.CacheStats
	// SharedUsed reports whether the workers shared one CTJ cache.
	SharedUsed bool
	// Tips merges the workers' estimate-vs-actual tipping diagnostics.
	Tips TipDiag
	// Tipped totals the walks terminated by the tipping point.
	Tipped int64
}

// RunParallel runs Audit Join with workers independent runners (each with
// its own derived seed, see WorkerSeed) driven by the shared execution
// layer: all workers honor the one context, so cancelling it stops every
// core promptly, and xopts applies per worker (Budget is the shared
// wall-clock deadline; MaxWalks caps each worker's walks). Because the walks
// are i.i.d., the merged estimator is identical in distribution to a single
// runner with the combined walk count; wall-clock time scales down with the
// number of cores.
//
// Unless opts.NoSharedCache is set, the workers share one concurrency-safe
// CTJ cache (opts.Shared when the caller supplies one — e.g. the server's
// cross-request warm start — or a fresh cache otherwise): recurring suffix
// counts, existence checks, aggregates and path probabilities are computed
// once per run instead of once per worker, with single-flight deduplicating
// concurrent misses on the same key.
//
// When xopts.OnSnapshot is set, the callback receives progressive *merged*
// snapshots on a dedicated publisher goroutine at every xopts.Interval —
// each worker publishes a clone of its accumulator at its own snapshot
// cadence, and the publisher folds the latest clones together — plus one
// Final snapshot after all workers stop. Publishing does not depend on any
// particular worker staying alive: a worker that exhausts MaxWalks early
// leaves the merged stream flowing. Returning false from the callback stops
// all workers.
//
// The returned result merges the workers' final accumulators. The error is
// ctx.Err() when the context ended the run early (the partial merged result
// is still returned alongside it), nil otherwise.
func RunParallel(ctx context.Context, store *index.Store, pl *query.Plan, opts Options, workers int, xopts exec.Options) (wj.Result, error) {
	res, _, err := RunParallelStats(ctx, store, pl, opts, workers, xopts)
	return res, err
}

// RunParallelStats is RunParallel, additionally reporting the per-worker and
// merged shared-cache statistics — the observability hook for the server
// payloads, the CLI and the kgbench shared-vs-private ablation.
func RunParallelStats(ctx context.Context, store *index.Store, pl *query.Plan, opts Options, workers int, xopts exec.Options) (wj.Result, ParallelStats, error) {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	if opts.Shared == nil && !opts.NoSharedCache {
		opts.Shared = ctj.NewSharedCache()
	}
	if opts.NoSharedCache {
		opts.Shared = nil
	}

	runners := make([]*Runner, workers)
	latest := make([]*wj.Acc, workers)
	errs := make([]error, workers)
	var mu sync.Mutex // guards latest
	var stopped atomic.Bool
	onSnap := xopts.OnSnapshot

	mergedLocked := func() wj.Result {
		m := wj.NewAcc()
		for _, a := range latest {
			if a != nil {
				m.Merge(a)
			}
		}
		return m.Snapshot(stats.Z95)
	}

	// The merged progressive stream runs on its own publisher goroutine, so
	// it survives any individual worker finishing early (a worker that hits
	// its MaxWalks cap or errors just stops refreshing its clone; the
	// publisher keeps folding the others).
	start := time.Now()
	seq := 0
	publish := func(final bool) bool {
		mu.Lock()
		merged := mergedLocked()
		mu.Unlock()
		seq++
		ok := onSnap(exec.Progress{
			Seq:      seq,
			Elapsed:  time.Since(start),
			Walks:    merged.Walks,
			Snapshot: merged,
			Final:    final,
		})
		if !ok {
			stopped.Store(true)
			cancel()
		}
		return ok
	}
	pubStop := make(chan struct{})
	var pubWG sync.WaitGroup
	if onSnap != nil && xopts.Interval > 0 {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			ticker := time.NewTicker(xopts.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-pubStop:
					return
				case <-ticker.C:
					if !publish(false) {
						return
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		o := opts
		o.Seed = WorkerSeed(opts.Seed, w)
		runners[w] = New(store, pl, o)

		wopts := xopts
		wopts.OnSnapshot = nil
		if onSnap != nil && xopts.Interval > 0 {
			w := w
			// Each worker publishes a clone of its accumulator per interval;
			// the publisher goroutine reads the clones, never the live
			// accumulators.
			wopts.OnSnapshot = func(exec.Progress) bool {
				mu.Lock()
				latest[w] = runners[w].Acc().Clone()
				mu.Unlock()
				return true
			}
		}

		wg.Add(1)
		go func(r *Runner, o exec.Options, i int) {
			defer wg.Done()
			_, errs[i] = exec.Drive(ctx, r, o)
		}(runners[w], wopts, w)
	}
	wg.Wait()
	close(pubStop)
	pubWG.Wait()

	// Workers are quiescent now: refresh the publish state from the live
	// accumulators so the Final snapshot is complete even for workers that
	// never published a clone (e.g. when Interval is zero).
	mu.Lock()
	for i, r := range runners {
		latest[i] = r.Acc()
	}
	mu.Unlock()

	merged := wj.NewAcc()
	pstats := ParallelStats{PerWorker: make([]ctj.CacheStats, workers)}
	for i, r := range runners {
		merged.Merge(r.Acc())
		pstats.PerWorker[i] = r.CacheStats()
		pstats.Tips.Merge(r.TipDiag())
		pstats.Tipped += r.Tipped()
	}
	if opts.Shared != nil {
		pstats.Shared = opts.Shared.Stats()
		pstats.SharedUsed = true
	}
	res := merged.Snapshot(stats.Z95)
	for _, err := range errs {
		if err != nil && !(stopped.Load() && errors.Is(err, context.Canceled)) {
			return res, pstats, err
		}
	}
	// One complete Final snapshot after the workers stop — the merged
	// equivalent of exec.Drive's final emit (skipped when the callback
	// already asked to stop).
	if onSnap != nil && !stopped.Load() {
		publish(true)
	}
	return res, pstats, nil
}
