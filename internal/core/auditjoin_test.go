package core

import (
	"context"
	"math"
	"testing"
	"time"

	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
	"kgexplore/internal/testkit"
	"kgexplore/internal/wj"
)

func fig5(t *testing.T, distinct bool) (*query.Plan, *rdf.Graph, *index.Store) {
	t.Helper()
	g := rdf.NewGraph()
	g.AddIRIs("alice", "birthPlace", "paris")
	g.AddIRIs("bob", "birthPlace", "paris")
	g.AddIRIs("carol", "birthPlace", "lima")
	g.AddIRIs("dave", "birthPlace", "lima")
	g.AddIRIs("eve", "birthPlace", "rome")
	for _, s := range []string{"alice", "bob", "carol", "dave"} {
		g.AddIRIs(s, rdf.RDFType, "Person")
	}
	g.AddIRIs("eve", rdf.RDFType, "Robot")
	g.AddIRIs("paris", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "City")
	g.AddIRIs("rome", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "Capital")
	g.Dedup()

	bp, _ := g.Dict.LookupIRI("birthPlace")
	ty, _ := g.Dict.LookupIRI(rdf.RDFType)
	person, _ := g.Dict.LookupIRI("Person")
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(bp), O: query.V(1)},
			{S: query.V(0), P: query.C(ty), O: query.C(person)},
			{S: query.V(1), P: query.C(ty), O: query.V(2)},
		},
		Alpha:    2,
		Beta:     1,
		Distinct: distinct,
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return pl, g, index.Build(g)
}

func TestUnbiasedNonDistinct(t *testing.T) {
	pl, _, st := fig5(t, false)
	exact := lftj.GroupCount(st, pl)
	for _, opts := range []Options{
		{Threshold: DefaultThreshold, Seed: 1},
		TipNever(2),
		TipAlways(3),
		{Threshold: 1, Seed: 4},
	} {
		r := New(st, pl, opts)
		exec.RunN(r, 100000)
		snap := r.Snapshot()
		for a, ex := range exact {
			rel := math.Abs(snap.Estimates[a]-float64(ex)) / float64(ex)
			if rel > 0.08 {
				t.Errorf("opts %+v group %d: %.3f vs %d (rel %.3f)",
					opts, a, snap.Estimates[a], ex, rel)
			}
		}
	}
}

func TestUnbiasedDistinct(t *testing.T) {
	pl, g, st := fig5(t, true)
	exact := lftj.GroupDistinct(st, pl)
	city, _ := g.Dict.LookupIRI("City")
	capital, _ := g.Dict.LookupIRI("Capital")
	if exact[city] != 2 || exact[capital] != 1 {
		t.Fatalf("fixture drifted: %v", exact)
	}
	for _, opts := range []Options{
		{Threshold: DefaultThreshold, Seed: 5},
		TipNever(6),
		TipAlways(7),
	} {
		r := New(st, pl, opts)
		exec.RunN(r, 100000)
		snap := r.Snapshot()
		for a, ex := range exact {
			rel := math.Abs(snap.Estimates[a]-float64(ex)) / float64(ex)
			if rel > 0.08 {
				t.Errorf("opts %+v group %d: %.3f vs %d (rel %.3f)",
					opts, a, snap.Estimates[a], ex, rel)
			}
		}
	}
}

func TestUnbiasedDistinctRandomGraphs(t *testing.T) {
	// Property-style check over random graphs: AJ's distinct estimator
	// converges to the exact distinct counts — the capability WJ lacks.
	for seed := int64(1); seed <= 3; seed++ {
		g := testkit.RandomGraph(seed, 8, 3, 5, 60)
		q := testkit.ChainQuery(g, []rdf.ID{8, 9}, true, true)
		pl, err := query.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		st := index.Build(g)
		exact := lftj.GroupDistinct(st, pl)
		if len(exact) == 0 {
			continue
		}
		r := New(st, pl, Options{Threshold: 4, Seed: seed * 13})
		exec.RunN(r, 200000)
		snap := r.Snapshot()
		for a, ex := range exact {
			rel := math.Abs(snap.Estimates[a]-float64(ex)) / float64(ex)
			if rel > 0.15 {
				t.Errorf("seed %d group %d: %.3f vs %d (rel %.3f)",
					seed, a, snap.Estimates[a], ex, rel)
			}
		}
	}
}

func TestDistinctBeatsWJ(t *testing.T) {
	// On the fixture, AJ's distinct MAE after N walks should be far below
	// WJ's (whose Ripple-style dedup biases estimates towards zero).
	pl, _, st := fig5(t, true)
	exactI := lftj.GroupDistinct(st, pl)
	exact := make(map[rdf.ID]float64, len(exactI))
	for k, v := range exactI {
		exact[k] = float64(v)
	}
	aj := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 21})
	wjr := wj.New(st, pl, 21)
	exec.RunN(aj, 20000)
	exec.RunN(wjr, 20000)
	ajMAE := stats.MAE(aj.Snapshot().Estimates, exact)
	wjMAE := stats.MAE(wjr.Snapshot().Estimates, exact)
	if !(ajMAE < wjMAE/5) {
		t.Errorf("AJ MAE %.4f not clearly below WJ MAE %.4f", ajMAE, wjMAE)
	}
}

func TestTippingReducesRejections(t *testing.T) {
	pl, _, st := fig5(t, false)
	never := New(st, pl, TipNever(31))
	always := New(st, pl, TipAlways(31))
	exec.RunN(never, 20000)
	exec.RunN(always, 20000)
	// With immediate tipping, eve's dead-end start is detected exactly and
	// still counts as rejected, so rates match here; but tipped counts must
	// differ drastically.
	if never.Tipped() != 0 {
		t.Errorf("TipNever tipped %d times", never.Tipped())
	}
	if always.Tipped() == 0 {
		t.Error("TipAlways never tipped")
	}
}

func TestRejectionLowerThanWJOnSelectiveQuery(t *testing.T) {
	// Build a graph where most walk starts dead-end two steps later: many
	// 'a -p-> b' edges, few 'b -q-> c' edges, and a final selective filter.
	g := rdf.NewGraph()
	ty := rdf.NewIRI(rdf.RDFType)
	for i := 0; i < 50; i++ {
		g.Add(rdf.NewIRI("a"+itoa(i)), rdf.NewIRI("p"), rdf.NewIRI("b"+itoa(i%10)))
	}
	// Only b0 continues.
	g.Add(rdf.NewIRI("b0"), rdf.NewIRI("q"), rdf.NewIRI("c0"))
	g.Add(rdf.NewIRI("c0"), ty, rdf.NewIRI("T"))
	g.Dedup()
	p, _ := g.Dict.LookupIRI("p")
	q, _ := g.Dict.LookupIRI("q")
	tyID, _ := g.Dict.LookupIRI(rdf.RDFType)
	qu := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(p), O: query.V(1)},
			{S: query.V(1), P: query.C(q), O: query.V(2)},
			{S: query.V(2), P: query.C(tyID), O: query.V(3)},
		},
		Alpha: 3, Beta: 2, Distinct: false,
	}
	pl, err := query.Compile(qu)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	wjr := wj.New(st, pl, 77)
	ajr := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 77})
	exec.RunN(wjr, 20000)
	exec.RunN(ajr, 20000)
	wjRate := wjr.Snapshot().RejectionRate()
	ajRate := ajr.Snapshot().RejectionRate()
	// WJ rejects ~90% (only b0-bound edges survive); AJ tips after step 0
	// (suffix estimate is tiny) and computes the dead end exactly, but the
	// dead end is still a rejection... it must at least estimate the count
	// exactly per prefix, giving identical rejection in this tiny case? No:
	// tipping at step 0 aggregates over ALL continuations of t1, so a walk
	// through any 'a->b0' edge succeeds, and walks through other b die.
	// Either way AJ's rate must not exceed WJ's, and its estimate must be
	// far more accurate.
	if ajRate > wjRate+0.02 {
		t.Errorf("AJ rejection %.3f > WJ rejection %.3f", ajRate, wjRate)
	}
	exact := lftj.GroupCount(st, pl)
	tID, _ := g.Dict.LookupIRI("T")
	if exact[tID] != 5 {
		t.Fatalf("fixture: exact = %v", exact)
	}
	ajErr := math.Abs(ajr.Snapshot().Estimates[tID] - 5)
	if ajErr > 0.5 {
		t.Errorf("AJ estimate %.3f, want ~5", ajr.Snapshot().Estimates[tID])
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	s := ""
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}

func TestDeterministicBySeed(t *testing.T) {
	pl, _, st := fig5(t, true)
	r1 := New(st, pl, Options{Threshold: 10, Seed: 5})
	r2 := New(st, pl, Options{Threshold: 10, Seed: 5})
	exec.RunN(r1, 5000)
	exec.RunN(r2, 5000)
	s1, s2 := r1.Snapshot(), r2.Snapshot()
	for a, v := range s1.Estimates {
		if s2.Estimates[a] != v {
			t.Errorf("group %d: %v vs %v", a, v, s2.Estimates[a])
		}
	}
	if r1.Tipped() != r2.Tipped() {
		t.Error("tipped counts differ across identical seeds")
	}
}

func TestCacheReuseAcrossWalks(t *testing.T) {
	pl, _, st := fig5(t, true)
	r := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 9})
	exec.RunN(r, 5000)
	cs := r.CacheStats()
	if cs.AggHits == 0 {
		t.Error("no aggregate-cache reuse across 5000 walks on a 5-edge graph")
	}
	if cs.ProbHits == 0 {
		t.Error("no Pr(a,b) cache reuse")
	}
}

func TestCIShrinks(t *testing.T) {
	pl, _, st := fig5(t, false)
	r := New(st, pl, Options{Threshold: -1, Seed: 123}) // walk-like, so CI is nontrivial
	exec.RunN(r, 500)
	w1 := widest(r.Snapshot().CI)
	exec.RunN(r, 50000)
	w2 := widest(r.Snapshot().CI)
	if !(w2 < w1) {
		t.Errorf("CI did not shrink: %v -> %v", w1, w2)
	}
}

func widest(ci map[rdf.ID]float64) float64 {
	w := 0.0
	for _, v := range ci {
		if v > w {
			w = v
		}
	}
	return w
}

func TestDriveBudget(t *testing.T) {
	pl, _, st := fig5(t, false)
	r := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 2})
	rep, err := exec.Drive(context.Background(), r, exec.Options{Budget: 20 * time.Millisecond, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Walks <= 0 {
		t.Error("Drive performed no walks")
	}
	if rep.Final.Walks != rep.Walks || r.Walks() != rep.Walks {
		t.Errorf("walk accounting mismatch: report %d, snapshot %d, runner %d",
			rep.Walks, rep.Final.Walks, r.Walks())
	}
}

func TestDriveCancelMidRun(t *testing.T) {
	// Cancelling mid-drive must return promptly with ctx.Err() and a
	// consistent snapshot (no half-applied walks).
	pl, _, st := fig5(t, false)
	r := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 8})
	ctx, cancel := context.WithCancel(context.Background())
	var cancelled bool
	rep, err := exec.Drive(ctx, r, exec.Options{
		Budget:   10 * time.Second,
		Interval: time.Millisecond,
		Batch:    64,
		OnSnapshot: func(p exec.Progress) bool {
			if !cancelled && p.Walks > 0 {
				cancelled = true
				cancel()
			}
			return true
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Elapsed > 5*time.Second {
		t.Errorf("cancelled drive took %v; expected prompt return", rep.Elapsed)
	}
	if rep.Final.Walks != r.Walks() {
		t.Errorf("snapshot inconsistent after cancel: %d vs %d", rep.Final.Walks, r.Walks())
	}
}
