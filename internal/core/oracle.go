package core

import (
	"math/rand"

	"kgexplore/internal/card"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
)

// TippingOracle estimates the size of the suffix join |Γ_δ| after step i of
// a walk — the quantity the tipping point compares against the threshold.
// The paper uses PostgreSQL-style statistics and leaves "more sophisticated
// estimates" to future work (§IV-D); this interface makes the estimator
// pluggable, and the package ships two implementations.
//
// Any oracle keeps Audit Join unbiased: the tipping decision may depend on
// the prefix δ and on randomness independent of the remaining walk, and the
// unbiasedness argument of Prop. IV.1 conditions on exactly that.
type TippingOracle interface {
	EstimateSuffix(i int, b query.Bindings) float64
}

// StatsOracle is the statistics oracle: the first remaining step resolved
// exactly, later steps composed from the cardinality-estimation layer's
// precomputed per-step factors (card.Estimator.NewSuffix). The paper's
// PostgreSQL-style estimator is NewStatsOracle; NewCardOracle accepts any
// card estimator, e.g. the typed graph summary.
type StatsOracle struct {
	suffix card.Suffix
}

// NewStatsOracle returns the paper's estimator — span statistics — with the
// composition factors precomputed once per (store, plan), so the per-step
// tipping check on the walk hot path reduces to a few multiplies.
func NewStatsOracle(store *index.Store, pl *query.Plan) StatsOracle {
	return NewCardOracle(card.NewSpanStats(store), store, pl)
}

// NewCardOracle builds the tipping oracle from an arbitrary cardinality
// estimator.
func NewCardOracle(est card.Estimator, store *index.Store, pl *query.Plan) StatsOracle {
	return StatsOracle{suffix: est.NewSuffix(pl, card.StoreResolver{Store: store, Plan: pl})}
}

// EstimateSuffix implements TippingOracle.
func (o StatsOracle) EstimateSuffix(i int, b query.Bindings) float64 {
	return o.suffix.Estimate(i, b)
}

// ProbeOracle estimates the suffix size by running a few cheap
// Horvitz–Thompson probe walks over the suffix: each probe extends δ
// randomly to completion and contributes ∏ d_j (0 on a dead end); the
// estimate is the probe average. Unlike the statistics, probes adapt to
// correlation between patterns — the inaccuracy source the paper points at
// when citing join-size-estimation work [65, 70].
type ProbeOracle struct {
	Store  *index.Store
	Plan   *query.Plan
	Probes int // walks per estimate; 3-8 is plenty
	rng    *rand.Rand
}

// NewProbeOracle creates a probe oracle with its own random source (kept
// separate from the walk's source so probing never perturbs the walk
// sequence).
func NewProbeOracle(store *index.Store, pl *query.Plan, probes int, seed int64) *ProbeOracle {
	if probes < 1 {
		probes = 4
	}
	return &ProbeOracle{Store: store, Plan: pl, Probes: probes, rng: rand.New(rand.NewSource(seed))}
}

// EstimateSuffix implements TippingOracle.
func (o *ProbeOracle) EstimateSuffix(i int, b query.Bindings) float64 {
	var sum float64
	// Probe walks bind and unbind the suffix steps; save/restore is not
	// needed because Step bindings beyond i are still clear (NoID) and the
	// probe unbinds what it binds.
	for p := 0; p < o.Probes; p++ {
		sum += o.probe(i, b)
	}
	return sum / float64(o.Probes)
}

func (o *ProbeOracle) probe(i int, b query.Bindings) float64 {
	prod := 1.0
	last := len(o.Plan.Steps) - 1
	bound := -1 // deepest step whose vars we bound
	for j := i + 1; j <= last; j++ {
		st := &o.Plan.Steps[j]
		sp, ok := st.ResolveSpan(o.Store, b)
		if !ok {
			prod = 0
			break
		}
		if st.Kind == query.AccessMembership {
			continue
		}
		st.Bind(o.Store.Sample(st.Order, sp, o.rng), b)
		bound = j
		if len(st.Filters) > 0 && !o.Plan.StepFiltersOK(j, o.Store, b) {
			prod = 0
			break
		}
		prod *= float64(sp.Len())
	}
	for j := i + 1; j <= bound; j++ {
		o.Plan.Steps[j].Unbind(b)
	}
	return prod
}
