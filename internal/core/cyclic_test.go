package core

import (
	"math"
	"testing"

	"kgexplore/internal/baseline"
	"kgexplore/internal/ctj"
	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
	"kgexplore/internal/wj"
)

// triangleQuery builds ?a p ?b . ?b p ?c . ?c p ?a over a random graph —
// the classic cyclic pattern outside the paper's fragment, supported via
// CompileCyclic.
func triangleQuery(t *testing.T, seed int64) (*query.Plan, *rdf.Graph, *index.Store) {
	t.Helper()
	g := testkit.RandomGraph(seed, 10, 2, 2, 120)
	p := rdf.ID(10)
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(p), O: query.V(1)},
			{S: query.V(1), P: query.C(p), O: query.V(2)},
			{S: query.V(2), P: query.C(p), O: query.V(0)},
		},
		Alpha: query.NoVar,
		Beta:  0,
	}
	if err := q.Validate(); err == nil {
		t.Fatal("triangle accepted by the strict fragment")
	}
	pl, err := query.CompileCyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	return pl, g, index.Build(g)
}

func triangleOracle(g *rdf.Graph, p rdf.ID) int64 {
	// Count homomorphic triangle embeddings by nested loops.
	type edge struct{ s, o rdf.ID }
	var edges []edge
	adj := map[rdf.ID][]rdf.ID{}
	for _, tr := range g.Triples {
		if tr.P == p {
			edges = append(edges, edge{tr.S, tr.O})
			adj[tr.S] = append(adj[tr.S], tr.O)
		}
	}
	var n int64
	for _, e := range edges {
		for _, c := range adj[e.o] {
			for _, back := range adj[c] {
				if back == e.s {
					n++
				}
			}
		}
	}
	return n
}

func TestCyclicExactEngines(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		pl, g, st := triangleQuery(t, seed)
		want := triangleOracle(g, rdf.ID(10))
		if got := lftj.Count(st, pl); got != want {
			t.Errorf("seed %d: LFTJ = %d, want %d", seed, got, want)
		}
		if got := ctj.Count(st, pl); got != want {
			t.Errorf("seed %d: CTJ = %d, want %d", seed, got, want)
		}
		res, err := baseline.Evaluate(st, pl)
		if err != nil {
			t.Fatal(err)
		}
		if int64(res[baseline.GlobalGroup]) != want {
			t.Errorf("seed %d: baseline = %v, want %d", seed, res[baseline.GlobalGroup], want)
		}
	}
}

func TestCyclicEstimatorsUnbiased(t *testing.T) {
	// Find a seed with a healthy number of triangles, then verify both
	// online estimators converge to it.
	var pl *query.Plan
	var st *index.Store
	var want int64
	for seed := int64(1); seed <= 40; seed++ {
		p, g, s := triangleQuery(t, seed)
		if n := triangleOracle(g, rdf.ID(10)); n >= 5 {
			pl, st, want = p, s, n
			break
		}
	}
	if pl == nil {
		t.Fatal("no seed produced enough triangles")
	}
	wjr := wj.New(st, pl, 3)
	exec.RunN(wjr, 400000)
	got := wjr.Snapshot().Estimates[wj.GlobalGroup]
	if math.Abs(got-float64(want))/float64(want) > 0.15 {
		t.Errorf("WJ triangle estimate %.2f vs %d", got, want)
	}
	ajr := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 3})
	exec.RunN(ajr, 200000)
	got = ajr.Snapshot().Estimates[GlobalGroup]
	if math.Abs(got-float64(want))/float64(want) > 0.15 {
		t.Errorf("AJ triangle estimate %.2f vs %d", got, want)
	}
}

func TestCyclicDistinct(t *testing.T) {
	// Distinct count of triangle apexes, grouped: AJ's unbiased distinct
	// estimator must also hold on cyclic queries.
	var pl *query.Plan
	var st *index.Store
	var exact map[rdf.ID]int64
	for seed := int64(1); seed <= 40; seed++ {
		p, _, s := triangleQuery(t, seed)
		q := *p.Query
		q.Distinct = true
		q.Beta = 0
		p2, err := query.CompileCyclic(&q)
		if err != nil {
			t.Fatal(err)
		}
		ex := lftj.GroupDistinct(s, p2)
		if ex[lftj.GlobalGroup] >= 3 {
			pl, st, exact = p2, s, ex
			break
		}
	}
	if pl == nil {
		t.Skip("no seed produced enough distinct apexes")
	}
	ajr := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 7})
	exec.RunN(ajr, 150000)
	got := ajr.Snapshot().Estimates[GlobalGroup]
	want := float64(exact[lftj.GlobalGroup])
	if math.Abs(got-want)/want > 0.12 {
		t.Errorf("AJ cyclic distinct %.2f vs %.0f", got, want)
	}
}
