package core

import (
	"fmt"
	"math"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// skewedFixture builds the stratification stress graph: a few hub subjects
// with many out-edges and many leaf subjects with one — two characteristic
// sets whose walk contributions differ wildly, so uniform root sampling has
// high variance and semantic strata should slash it. Hub friends carry two
// pop values each (5 and 13); only two thirds of the pals carry one (900),
// so both strata keep genuine walk variance (fan-out spread in one,
// rejections in the other). The exact answer is returned analytically:
//
//	COUNT = 160·2 + 100        = 420
//	SUM   = 160·18 + 100·900   = 92880
//	AVG   = SUM/COUNT          ≈ 221.14
//	COUNT(DISTINCT pop)        = 3   {5, 13, 900}
func skewedFixture(t *testing.T, agg query.AggFunc, distinct bool) (*query.Plan, *index.Store, float64) {
	t.Helper()
	g := rdf.NewGraph()
	for h := 0; h < 4; h++ {
		hub := fmt.Sprintf("hub%d", h)
		g.AddIRIs(hub, "hubFlag", "yes")
		for j := 0; j < 40; j++ {
			o := fmt.Sprintf("friend%d_%d", h, j)
			g.AddIRIs(hub, "knows", o)
			for _, lex := range []string{"5", "13"} {
				g.Add(rdf.NewIRI(o), rdf.NewIRI("pop"), rdf.NewLiteral(lex))
			}
		}
	}
	for p := 0; p < 150; p++ {
		person := fmt.Sprintf("person%d", p)
		g.AddIRIs(person, rdf.RDFType, "Person")
		o := fmt.Sprintf("pal%d", p)
		g.AddIRIs(person, "knows", o)
		if p%3 != 0 {
			g.Add(rdf.NewIRI(o), rdf.NewIRI("pop"), rdf.NewLiteral("900"))
		}
	}
	g.Dedup()
	knows, _ := g.Dict.LookupIRI("knows")
	pop, _ := g.Dict.LookupIRI("pop")
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(knows), O: query.V(1)},
			{S: query.V(1), P: query.C(pop), O: query.V(2)},
		},
		Alpha:    query.NoVar,
		Beta:     2,
		Agg:      agg,
		Distinct: distinct,
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)

	count, sum := 160.0*2+100, 160.0*18+100*900
	var exact float64
	switch {
	case distinct:
		exact = 3
	case agg == query.AggSum:
		exact = sum
	case agg == query.AggAvg:
		exact = sum / count
	default:
		exact = count
	}
	// Sanity: the analytic COUNT/DISTINCT must match LFTJ on the fixture.
	if distinct {
		if got := lftj.GroupDistinct(st, pl)[GlobalGroup]; float64(got) != exact {
			t.Fatalf("fixture drifted: distinct %d, want %.0f", got, exact)
		}
	} else if got := lftj.GroupCount(st, pl)[GlobalGroup]; float64(got) != count {
		t.Fatalf("fixture drifted: count %d, want %.0f", got, count)
	}
	return pl, st, exact
}

// TestStratifiedUnbiasedCIValid is the stratification property test:
// across seeds, semantic-stratified estimates must stay unbiased (their
// mean converges to the exact answer) and CI-valid (the exact answer falls
// inside the 95% interval in ≈95% of runs), for COUNT and SUM, and the
// stratified CI must not exceed the uniform CI on this skewed fixture.
func TestStratifiedUnbiasedCIValid(t *testing.T) {
	const (
		seeds = 20
		walks = 4000
	)
	for _, tc := range []struct {
		name string
		agg  query.AggFunc
	}{
		{"count", query.AggCount},
		{"sum", query.AggSum},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pl, st, exact := skewedFixture(t, tc.agg, false)
			var estSum, stratCI, unifCI float64
			covered := 0
			for seed := int64(0); seed < seeds; seed++ {
				s := NewStratified(st, pl, StratifiedOptions{
					Options: Options{Threshold: -1, Seed: 1000 + seed},
				})
				if s.Fallback() != "" {
					t.Fatalf("unexpected fallback %q", s.Fallback())
				}
				if got := s.Stats().Strata; got < 2 {
					t.Fatalf("expected >=2 strata, got %d", got)
				}
				for i := 0; i < walks; i++ {
					s.Step()
				}
				res := s.Snapshot()
				est, ci := res.Estimates[GlobalGroup], res.CI[GlobalGroup]
				estSum += est
				stratCI += ci
				if math.Abs(est-exact) <= ci {
					covered++
				}

				u := New(st, pl, Options{Threshold: -1, Seed: 1000 + seed})
				for i := 0; i < walks; i++ {
					u.Step()
				}
				unifCI += u.Snapshot().CI[GlobalGroup]
			}
			mean := estSum / seeds
			if rel := math.Abs(mean-exact) / exact; rel > 0.05 {
				t.Fatalf("stratified mean over %d seeds off by %.1f%% (mean %.1f, exact %.1f)",
					seeds, rel*100, mean, exact)
			}
			if covered < seeds*8/10 {
				t.Fatalf("exact answer inside the 95%% CI in only %d/%d runs", covered, seeds)
			}
			if stratCI > unifCI {
				t.Fatalf("stratified CI (%.1f avg) wider than uniform (%.1f avg) on the skewed fixture",
					stratCI/seeds, unifCI/seeds)
			}
			t.Logf("%s: exact %.0f, stratified mean %.1f, avg CI %.1f vs uniform %.1f (%.2fx)",
				tc.name, exact, mean, stratCI/seeds, unifCI/seeds, unifCI/stratCI)
		})
	}
}

// TestStratifiedAvg checks the ratio estimator under stratification: AVG
// merges as the ratio of stratum sums and must converge to the exact
// average.
func TestStratifiedAvg(t *testing.T) {
	pl, st, exact := skewedFixture(t, query.AggAvg, false)
	s := NewStratified(st, pl, StratifiedOptions{Options: Options{Threshold: -1, Seed: 7}})
	if s.Fallback() != "" {
		t.Fatalf("unexpected fallback %q", s.Fallback())
	}
	for i := 0; i < 20000; i++ {
		s.Step()
	}
	got := s.Snapshot().Estimates[GlobalGroup]
	if rel := math.Abs(got-exact) / exact; rel > 0.05 {
		t.Fatalf("stratified AVG %.2f, exact %.2f (%.1f%% off)", got, exact, rel*100)
	}
}

// TestStratifiedDistinctFallback checks the documented DISTINCT fallback:
// the unbiased distinct estimator needs uniform walk-hit probabilities, so
// stratified runs degrade to one uniform stratum — and still converge.
func TestStratifiedDistinctFallback(t *testing.T) {
	pl, st, exact := skewedFixture(t, query.AggCount, true)
	s := NewStratified(st, pl, StratifiedOptions{Options: Options{Threshold: DefaultThreshold, Seed: 3}})
	if s.Fallback() != FallbackDistinct {
		t.Fatalf("fallback = %q, want %q", s.Fallback(), FallbackDistinct)
	}
	if s.Stats().Strata != 1 {
		t.Fatalf("fallback should run one uniform stratum, got %d", s.Stats().Strata)
	}
	for i := 0; i < 4000; i++ {
		s.Step()
	}
	got := s.Snapshot().Estimates[GlobalGroup]
	if rel := math.Abs(got-exact) / exact; rel > 0.1 {
		t.Fatalf("distinct fallback estimate %.2f, exact %.2f", got, exact)
	}
	// The fallback snapshot must equal a plain uniform runner's (same seed,
	// same walk count) — the stepper contract does not change shape.
	u := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 3,
		Shared: s.SharedCache()})
	for i := 0; i < 4000; i++ {
		u.Step()
	}
	ur := u.Snapshot()
	if math.Abs(ur.Estimates[GlobalGroup]-got) > 1e-9 {
		t.Fatalf("fallback estimate %.4f differs from plain runner %.4f", got, ur.Estimates[GlobalGroup])
	}
}

// TestStratifiedAdaptsAllocation checks the Neyman loop actually fires and
// shifts walks toward the high-variance stratum.
func TestStratifiedAdaptsAllocation(t *testing.T) {
	pl, st, _ := skewedFixture(t, query.AggCount, false)
	s := NewStratified(st, pl, StratifiedOptions{
		Options:    Options{Threshold: -1, Seed: 11},
		PilotWalks: 32,
		AdaptEvery: 128,
	})
	for i := 0; i < 4000; i++ {
		s.Step()
	}
	stats := s.Stats()
	if stats.Reallocs == 0 {
		t.Fatal("allocator never re-derived Neyman weights")
	}
	// Weights must have moved off the proportional shares.
	var moved bool
	total := 0
	for _, ps := range stats.PerStratum {
		total += ps.RootCard
	}
	for _, ps := range stats.PerStratum {
		prop := float64(ps.RootCard) / float64(total)
		if math.Abs(ps.Weight-prop) > 0.05 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("weights never moved off proportional: %+v", stats.PerStratum)
	}
}

// TestMergeStratifiedSingleEqualsSnapshot pins the fallback equivalence at
// the accumulator level: merging one uniform stratum reproduces the plain
// snapshot (estimates and CIs).
func TestMergeStratifiedSingleEqualsSnapshot(t *testing.T) {
	pl, st, _ := skewedFixture(t, query.AggCount, false)
	r := New(st, pl, Options{Threshold: -1, Seed: 5})
	for i := 0; i < 500; i++ {
		r.Step()
	}
	want := r.Snapshot()
	got := wj.MergeStratified([]*wj.Acc{r.Acc()}, stats.Z95)
	for a, w := range want.Estimates {
		if math.Abs(got.Estimates[a]-w) > 1e-9 {
			t.Fatalf("estimate drifted: %v vs %v", got.Estimates[a], w)
		}
		if math.Abs(got.CI[a]-want.CI[a]) > 1e-9 {
			t.Fatalf("CI drifted: %v vs %v", got.CI[a], want.CI[a])
		}
	}
}
