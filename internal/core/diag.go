package core

// TipDiag accumulates estimate-vs-actual diagnostics at tipping decisions:
// every time a walk tips, the oracle's suffix estimate is compared against
// the exact suffix size CTJ then computes anyway. The mean q-error over
// tipped walks is a free, per-run measure of estimator quality, surfaced by
// the server's /healthz and chart payloads.
type TipDiag struct {
	// Tips counts tipping decisions observed (walks that tipped).
	Tips int64 `json:"tips"`
	// SumEstimate/SumActual total the estimated and exact suffix sizes at
	// those decisions.
	SumEstimate float64 `json:"sum_estimate"`
	SumActual   float64 `json:"sum_actual"`
	// SumQError totals max(est/act, act/est) over the QObs decisions where
	// both sides were positive (q-error is undefined when a side is 0).
	SumQError float64 `json:"sum_q_error"`
	QObs      int64   `json:"q_obs"`
}

// Observe records one tipping decision.
func (d *TipDiag) Observe(estimate, actual float64) {
	d.Tips++
	d.SumEstimate += estimate
	d.SumActual += actual
	if estimate > 0 && actual > 0 {
		q := estimate / actual
		if q < 1 {
			q = 1 / q
		}
		d.SumQError += q
		d.QObs++
	}
}

// Merge folds another accumulator in (for parallel workers and shards).
func (d *TipDiag) Merge(o TipDiag) {
	d.Tips += o.Tips
	d.SumEstimate += o.SumEstimate
	d.SumActual += o.SumActual
	d.SumQError += o.SumQError
	d.QObs += o.QObs
}

// MeanQError returns the mean q-error over observed decisions, 0 when none.
func (d TipDiag) MeanQError() float64 {
	if d.QObs == 0 {
		return 0
	}
	return d.SumQError / float64(d.QObs)
}
