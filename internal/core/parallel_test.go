package core

import (
	"context"
	"math"
	"testing"
	"time"

	"kgexplore/internal/exec"
	"kgexplore/internal/lftj"
	"kgexplore/internal/wj"
)

func TestRunParallelConverges(t *testing.T) {
	pl, _, st := fig5(t, true)
	exact := lftj.GroupDistinct(st, pl)
	res, err := RunParallel(context.Background(), st, pl,
		Options{Threshold: DefaultThreshold, Seed: 17}, 4, exec.Options{MaxWalks: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Walks != 80000 {
		t.Errorf("merged walks = %d, want 80000", res.Walks)
	}
	for a, ex := range exact {
		rel := math.Abs(res.Estimates[a]-float64(ex)) / float64(ex)
		if rel > 0.08 {
			t.Errorf("group %d: %.3f vs %d", a, res.Estimates[a], ex)
		}
	}
}

func TestRunParallelSingleWorkerMatchesSerial(t *testing.T) {
	pl, _, st := fig5(t, false)
	res, err := RunParallel(context.Background(), st, pl,
		Options{Threshold: DefaultThreshold, Seed: 5}, 1, exec.Options{MaxWalks: 5000})
	if err != nil {
		t.Fatal(err)
	}
	serial := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 5})
	exec.RunN(serial, 5000)
	want := serial.Snapshot()
	for a, v := range want.Estimates {
		if res.Estimates[a] != v {
			t.Errorf("group %d: parallel %v vs serial %v", a, res.Estimates[a], v)
		}
	}
}

func TestRunParallelProgressiveSnapshots(t *testing.T) {
	// The streamed snapshots must be merged across workers and advance
	// monotonically in walk count.
	pl, _, st := fig5(t, false)
	var walks []int64
	_, err := RunParallel(context.Background(), st, pl,
		Options{Threshold: DefaultThreshold, Seed: 3}, 4, exec.Options{
			Budget:   200 * time.Millisecond,
			Interval: 10 * time.Millisecond,
			Batch:    64,
			OnSnapshot: func(p exec.Progress) bool {
				walks = append(walks, p.Walks)
				return true
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(walks) < 2 {
		t.Fatalf("got %d progressive snapshots, want >= 2", len(walks))
	}
	for i := 1; i < len(walks); i++ {
		if walks[i] < walks[i-1] {
			t.Errorf("merged walks regressed: %v", walks)
			break
		}
	}
}

func TestRunParallelCancel(t *testing.T) {
	pl, _, st := fig5(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	done := make(chan struct{})
	var res wj.Result
	var err error
	go func() {
		defer close(done)
		res, err = RunParallel(ctx, st, pl,
			Options{Threshold: DefaultThreshold, Seed: 7}, 4, exec.Options{Budget: 30 * time.Second})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunParallel did not return after cancel")
	}
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if res.Walks == 0 {
		t.Error("cancelled run returned no partial result")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancel took %v", elapsed)
	}
}

func TestRunParallelSnapshotStop(t *testing.T) {
	// Returning false from the snapshot callback stops all workers with a
	// nil error.
	pl, _, st := fig5(t, false)
	calls := 0
	res, err := RunParallel(context.Background(), st, pl,
		Options{Threshold: DefaultThreshold, Seed: 11}, 2, exec.Options{
			Budget:   30 * time.Second,
			Interval: time.Millisecond,
			Batch:    64,
			OnSnapshot: func(exec.Progress) bool {
				calls++
				return calls < 3
			},
		})
	if err != nil {
		t.Fatalf("stop via callback returned error %v", err)
	}
	if res.Walks == 0 {
		t.Error("stopped run returned no result")
	}
}

func TestMergeAccumulators(t *testing.T) {
	a := wj.NewAcc()
	b := wj.NewAcc()
	a.N, b.N = 10, 20
	a.Rejected, b.Rejected = 1, 2
	a.Add(1, 5)
	b.Add(1, 7)
	b.Add(2, 3)
	b.AddRatio(3, 4, 2)
	a.Merge(b)
	if a.N != 30 || a.Rejected != 3 {
		t.Errorf("N/Rejected = %d/%d", a.N, a.Rejected)
	}
	if a.Sum[1] != 12 || a.Sum[2] != 3 {
		t.Errorf("sums = %v", a.Sum)
	}
	if a.SumSq[1] != 25+49 {
		t.Errorf("sumsq = %v", a.SumSq)
	}
	if a.Den[3] != 2 {
		t.Errorf("den = %v", a.Den)
	}
}
