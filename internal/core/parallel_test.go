package core

import (
	"math"
	"testing"

	"kgexplore/internal/lftj"
	"kgexplore/internal/wj"
)

func TestRunParallelConverges(t *testing.T) {
	pl, _, st := fig5(t, true)
	exact := lftj.GroupDistinct(st, pl)
	res := RunParallel(st, pl, Options{Threshold: DefaultThreshold, Seed: 17}, 4, 20000)
	if res.Walks != 80000 {
		t.Errorf("merged walks = %d, want 80000", res.Walks)
	}
	for a, ex := range exact {
		rel := math.Abs(res.Estimates[a]-float64(ex)) / float64(ex)
		if rel > 0.08 {
			t.Errorf("group %d: %.3f vs %d", a, res.Estimates[a], ex)
		}
	}
}

func TestRunParallelSingleWorkerMatchesSerial(t *testing.T) {
	pl, _, st := fig5(t, false)
	res := RunParallel(st, pl, Options{Threshold: DefaultThreshold, Seed: 5}, 1, 5000)
	serial := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 5})
	serial.Run(5000)
	want := serial.Snapshot()
	for a, v := range want.Estimates {
		if res.Estimates[a] != v {
			t.Errorf("group %d: parallel %v vs serial %v", a, res.Estimates[a], v)
		}
	}
}

func TestMergeAccumulators(t *testing.T) {
	a := wj.NewAcc()
	b := wj.NewAcc()
	a.N, b.N = 10, 20
	a.Rejected, b.Rejected = 1, 2
	a.Add(1, 5)
	b.Add(1, 7)
	b.Add(2, 3)
	b.AddRatio(3, 4, 2)
	a.Merge(b)
	if a.N != 30 || a.Rejected != 3 {
		t.Errorf("N/Rejected = %d/%d", a.N, a.Rejected)
	}
	if a.Sum[1] != 12 || a.Sum[2] != 3 {
		t.Errorf("sums = %v", a.Sum)
	}
	if a.SumSq[1] != 25+49 {
		t.Errorf("sumsq = %v", a.SumSq)
	}
	if a.Den[3] != 2 {
		t.Errorf("den = %v", a.Den)
	}
}
