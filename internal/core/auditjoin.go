// Package core implements Audit Join, the paper's primary contribution
// (§IV-D): an online-aggregation algorithm for grouped COUNT and
// COUNT(DISTINCT) over exploration queries on knowledge graphs.
//
// Audit Join runs Wander Join's random walks, but after every step it
// estimates the size of the remaining suffix join with PostgreSQL-style
// statistics; when the estimate falls below a threshold — the "tipping
// point" — it finishes the walk exactly with Cached Trie Join and folds the
// exact partial result into the estimator:
//
//	C_aj(δ) = |Γ_δ| / Pr(δ)                        (counts)
//	C_aj^d(δ) = Σ_b Pr(δ,b) / (Pr(δ)·Pr(b))        (distinct counts, Eq. 1)
//
// Both estimators are unbiased (Propositions IV.1 and IV.2); the distinct
// case needs the walk-hit probabilities Pr(a,b), which are computed online
// with CTJ and cached. Tipping early slashes the dead-end rejections that
// throttle Wander Join on highly selective exploration queries, and the CTJ
// caches make repeated prefixes nearly free.
package core

import (
	"math"
	"math/rand"

	"kgexplore/internal/card"
	"kgexplore/internal/ctj"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// GlobalGroup is the group key used for ungrouped queries.
const GlobalGroup = rdf.NoID

// DefaultThreshold is the default tipping-point threshold: a walk switches
// to exact computation when the estimated suffix join size drops below it.
const DefaultThreshold = 10_000

// Options configures an Audit Join runner.
type Options struct {
	// Threshold is the tipping point: estimated suffix sizes at or below it
	// trigger exact computation. Zero keeps only the degenerate tip on
	// provably empty suffixes; math.Inf(1) tips immediately at step one.
	Threshold float64
	// Seed drives the deterministic random source.
	Seed int64
	// Oracle estimates suffix sizes for the tipping decision; nil uses the
	// paper's PostgreSQL-style StatsOracle.
	Oracle TippingOracle
	// Estimator selects the cardinality estimator behind the default oracle
	// and the CTJ session's planning decisions; nil uses span statistics
	// (card.NewSpanStats). Ignored by the oracle when Oracle is set.
	Estimator card.Estimator
	// Shared, when non-nil, makes the runner's CTJ session read and write
	// this concurrency-safe shared cache instead of private maps, so several
	// runners (parallel workers, or successive server requests for the same
	// plan signature) populate one cache. The runner itself remains
	// single-threaded.
	Shared *ctj.SharedCache
	// NoSharedCache forces private per-worker caches in RunParallel, which
	// otherwise constructs one shared cache per run. It exists for the
	// shared-vs-private ablation in kgbench and has no effect on a plain New.
	NoSharedCache bool
	// Root, when non-nil, restricts the walk root to one semantic stratum:
	// step 0 samples uniformly from the stratum's segments instead of the
	// full static span, and the inverse probability uses the stratum size.
	// The runner then estimates the STRATUM total; NewStratified merges such
	// runners with wj.MergeStratified. Requires step 0 to be a static
	// sampling (non-membership) step over the span the stratum partitions.
	Root *index.RootStratum
}

// Runner executes Audit Join over one plan. It owns a CTJ evaluation
// session whose caches persist across walks. Not safe for concurrent use.
type Runner struct {
	store  *index.Store
	pl     *query.Plan
	opts   Options
	rng    *rand.Rand
	acc    *wj.Acc
	eval   *ctj.Evaluator
	oracle TippingOracle

	// b is the per-walk binding buffer and static the pre-resolved spans of
	// constant-bound steps; together they keep Step allocation-free.
	b      query.Bindings
	static []query.StaticSpan
	// perGroup and perGroupND are finish-time aggregation scratch, reused
	// across walks.
	perGroup   map[rdf.ID]float64
	perGroupND map[rdf.ID]numDen

	tipped int64 // walks that ended in a partial exact computation
	diag   TipDiag
}

type numDen struct{ num, den float64 }

// New creates a Runner. A non-positive Threshold in opts is kept as given
// (zero disables tipping except on empty suffixes).
func New(store *index.Store, pl *query.Plan, opts Options) *Runner {
	oracle := opts.Oracle
	if oracle == nil {
		est := opts.Estimator
		if est == nil {
			est = card.NewSpanStats(store)
		}
		oracle = NewCardOracle(est, store, pl)
	}
	eval := ctj.New(store, pl)
	if opts.Shared != nil {
		eval = ctj.NewShared(store, pl, opts.Shared)
	}
	if opts.Estimator != nil {
		eval.SetEstimator(opts.Estimator)
	}
	return &Runner{
		store:      store,
		pl:         pl,
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		acc:        wj.NewAcc(),
		eval:       eval,
		oracle:     oracle,
		b:          pl.NewBindings(),
		static:     pl.ResolveStatic(store),
		perGroup:   make(map[rdf.ID]float64),
		perGroupND: make(map[rdf.ID]numDen),
	}
}

// Step performs one Audit Join walk (Fig. 7 of the paper).
func (r *Runner) Step() {
	r.acc.N++
	b := r.b
	b.Reset()
	prodD := 1.0 // ∏_{j<=i} d_j = 1/Pr(δ)
	last := len(r.pl.Steps) - 1
	for i := range r.pl.Steps {
		st := &r.pl.Steps[i]
		var sp index.Span
		var ok bool
		if st.Static {
			sp, ok = r.static[i].Span, r.static[i].OK
		} else {
			sp, ok = st.ResolveSpan(r.store, b)
		}
		if !ok {
			r.acc.Rejected++
			return
		}
		if st.Kind != query.AccessMembership {
			var t rdf.Triple
			if i == 0 && r.opts.Root != nil {
				t = r.opts.Root.Sample(r.store, st.Order, r.rng)
				prodD *= float64(r.opts.Root.Total)
			} else {
				t = r.store.Sample(st.Order, sp, r.rng)
				prodD *= float64(sp.Len())
			}
			st.Bind(t, b)
			// A failed FILTER rejects the walk — a zero-weight draw, exactly
			// as in Wander Join; filters anchored past the tipping step are
			// enforced by the CTJ suffix aggregation instead.
			if len(st.Filters) > 0 && !r.pl.StepFiltersOK(i, r.store, b) {
				r.acc.Rejected++
				return
			}
		}
		if i == last {
			r.finish(i, b, prodD, 0, false)
			return
		}
		if est := r.oracle.EstimateSuffix(i, b); est <= r.opts.Threshold {
			r.tipped++
			r.finish(i, b, prodD, est, true)
			return
		}
	}
}

// finish terminates a walk at prefix δ ending after step i: it aggregates
// the completions of δ exactly (via the cached CTJ suffix aggregate; for a
// full path this is the path itself) and updates the estimator. When the
// walk tipped, the oracle's estimate is scored against the exact suffix
// size the aggregate reveals for free.
func (r *Runner) finish(i int, b query.Bindings, prodD, tipEst float64, tipped bool) {
	agg := r.eval.SuffixAgg(i, b)
	if tipped {
		var actual float64
		for _, e := range agg {
			actual += float64(e.N)
		}
		r.diag.Observe(tipEst, actual)
	}
	if len(agg) == 0 {
		r.acc.Rejected++
		return
	}
	if r.pl.Query.Distinct {
		// C_a += Σ_b Pr(δ,(a,b)) / (Pr(δ)·Pr(a,b)); the entry's P is
		// Pr(δ,(a,b))/Pr(δ), so the prefix probability cancels.
		perGroup := r.perGroup
		clear(perGroup)
		for _, e := range agg {
			pab := r.eval.PathProbAB(e.A, e.B)
			if pab > 0 {
				perGroup[e.A] += e.P / pab
			}
		}
		for a, x := range perGroup {
			r.acc.Add(a, x)
		}
		return
	}
	switch r.pl.Query.Agg {
	case query.AggSum:
		// C_a += Σ_b v(b) · |Γ_δ with (a,b)| × ∏ d_j — the same unbiasedness
		// argument as Prop. IV.1 with paths weighted by v(β(γ)).
		perGroup := r.perGroup
		clear(perGroup)
		for _, e := range agg {
			if v, ok := r.store.Numeric(e.B); ok {
				perGroup[e.A] += v * float64(e.N) * prodD
			}
		}
		for a, x := range perGroup {
			r.acc.Add(a, x)
		}
	case query.AggAvg:
		// Ratio of two unbiased estimators: weighted sum over numeric-β
		// paths divided by their count.
		perGroup := r.perGroupND
		clear(perGroup)
		for _, e := range agg {
			if v, ok := r.store.Numeric(e.B); ok {
				cur := perGroup[e.A]
				cur.num += v * float64(e.N) * prodD
				cur.den += float64(e.N) * prodD
				perGroup[e.A] = cur
			}
		}
		for a, x := range perGroup {
			r.acc.AddRatio(a, x.num, x.den)
		}
	default:
		// C_a += |Γ_δ with α=a| × ∏ d_j.
		perGroup := r.perGroup
		clear(perGroup)
		for _, e := range agg {
			perGroup[e.A] += float64(e.N) * prodD
		}
		for a, x := range perGroup {
			r.acc.Add(a, x)
		}
	}
}

// Walks returns the total number of walks performed, including rejected
// ones. Together with Step and Snapshot it makes the Runner an exec.Stepper;
// the driving loops (budgets, intervals, cancellation) live in internal/exec.
func (r *Runner) Walks() int64 { return r.acc.N }

// Snapshot returns the current estimates with 0.95 confidence intervals.
func (r *Runner) Snapshot() wj.Result { return r.acc.Snapshot(stats.Z95) }

// Acc exposes the walk accumulator.
func (r *Runner) Acc() *wj.Acc { return r.acc }

// Tipped returns the number of walks terminated by the tipping point.
func (r *Runner) Tipped() int64 { return r.tipped }

// TipDiag returns the estimate-vs-actual diagnostics accumulated at this
// runner's tipping decisions.
func (r *Runner) TipDiag() TipDiag { return r.diag }

// CacheStats exposes the CTJ session's cache statistics: the hits and misses
// this runner observed, whether its cache is private or shared.
func (r *Runner) CacheStats() ctj.CacheStats { return r.eval.Stats() }

// SharedCache returns the shared CTJ cache the runner writes to, or nil when
// it uses a private single-threaded cache.
func (r *Runner) SharedCache() *ctj.SharedCache { return r.eval.Shared() }

// TipAlways returns options that tip at the first step (the "all exact"
// extreme); useful in tests and ablations.
func TipAlways(seed int64) Options {
	return Options{Threshold: math.Inf(1), Seed: seed}
}

// TipNever returns options that never tip (Audit Join degenerates to Wander
// Join walks, but keeps the unbiased distinct estimator).
func TipNever(seed int64) Options {
	return Options{Threshold: -1, Seed: seed}
}
