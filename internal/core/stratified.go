// Semantic-aware stratified Audit Join: walk roots are stratified by the
// characteristic-set bucket of their subject (index.StratifyRoots over the
// typed graph summary), one Runner per stratum estimates that stratum's
// total, and a wj.NeymanAlloc schedules the walk budget across strata —
// proportional to stratum size at first, shifting toward Neyman allocation
// (∝ sqrt of per-stratum contribution variance) as early walk returns
// arrive. Snapshots merge through wj.MergeStratified, so estimates stay
// unbiased and CIs combine in quadrature exactly as in the sharded path.
package core

import (
	"kgexplore/internal/ctj"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// StratifiedOptions configures a stratified Audit Join stepper.
type StratifiedOptions struct {
	Options
	// MaxStrata caps the number of root strata (< 2 selects
	// index.DefaultMaxStrata); the smallest buckets merge into a tail
	// stratum.
	MaxStrata int
	// PilotWalks is the per-stratum walk count required before the first
	// Neyman reallocation (default 64).
	PilotWalks int64
	// AdaptEvery is the walk period between reallocation checks
	// (default 512).
	AdaptEvery int64
}

// StratumInfo describes one stratum of a stratified run.
type StratumInfo struct {
	Bucket   int32   `json:"bucket"`
	RootCard int     `json:"root_card"`
	Walks    int64   `json:"walks"`
	Weight   float64 `json:"weight"`
}

// StratifiedStats reports a stratified run's shape: how many strata ran,
// why the run fell back to uniform sampling (empty string when it did
// not), and how often the allocator re-derived its Neyman weights.
type StratifiedStats struct {
	Strata     int           `json:"strata"`
	Fallback   string        `json:"fallback,omitempty"`
	Reallocs   int           `json:"reallocs"`
	PerStratum []StratumInfo `json:"per_stratum,omitempty"`
}

// Stratified is the stratified Audit Join stepper (an exec.Stepper). Not
// safe for concurrent use.
type Stratified struct {
	runners  []*Runner
	accs     []*wj.Acc
	strata   []index.RootStratum
	alloc    *wj.NeymanAlloc
	fallback string
}

// FallbackDistinct marks COUNT(DISTINCT) plans: the unbiased distinct
// estimator needs walk-hit probabilities Pr(b) under the UNIFORM root
// distribution (eval.PathProbAB), which stratified roots would skew, so
// distinct plans run the plain uniform Audit Join.
const (
	FallbackDistinct   = "distinct"
	FallbackMembership = "membership-root"
	FallbackEmptyRoot  = "empty-root"
	FallbackNoBuckets  = "no-buckets"
)

// NewStratified builds the stratified stepper. When the plan cannot be
// stratified (distinct aggregate, membership root, empty or single-bucket
// root span) it degrades to one uniform Runner and records why; the
// stepper contract is identical either way. Unless opts.Shared is set (or
// NoSharedCache), the per-stratum runners share one CTJ cache — suffix
// aggregates are conditioned on bindings, not on how the root was drawn,
// so cross-stratum reuse is sound.
func NewStratified(store *index.Store, pl *query.Plan, opts StratifiedOptions) *Stratified {
	s := &Stratified{}
	st0 := &pl.Steps[0]
	var span index.Span
	switch {
	case pl.Query.Distinct:
		s.fallback = FallbackDistinct
	case st0.Kind == query.AccessMembership:
		s.fallback = FallbackMembership
	default:
		static := pl.ResolveStatic(store)
		if !static[0].OK || static[0].Span.Len() == 0 {
			s.fallback = FallbackEmptyRoot
		} else {
			span = static[0].Span
		}
	}
	if s.fallback == "" {
		s.strata = index.StratifyRoots(store, st0.Order, span, opts.MaxStrata)
		if s.strata == nil {
			s.fallback = FallbackNoBuckets
		}
	}

	base := opts.Options
	if base.Shared == nil && !base.NoSharedCache {
		base.Shared = ctj.NewSharedCache()
	}
	if s.fallback != "" {
		base.Root = nil
		r := New(store, pl, base)
		s.runners = []*Runner{r}
		s.accs = []*wj.Acc{r.Acc()}
		return s
	}
	sizes := make([]float64, len(s.strata))
	s.runners = make([]*Runner, len(s.strata))
	s.accs = make([]*wj.Acc, len(s.strata))
	for k := range s.strata {
		o := base
		o.Root = &s.strata[k]
		o.Seed = WorkerSeed(opts.Seed, k)
		s.runners[k] = New(store, pl, o)
		s.accs[k] = s.runners[k].Acc()
		sizes[k] = float64(s.strata[k].Total)
	}
	s.alloc = wj.NewNeymanAlloc(sizes, opts.PilotWalks, opts.AdaptEvery)
	return s
}

// Step runs one walk on the stratum the allocator picks.
func (s *Stratified) Step() {
	k := 0
	if s.alloc != nil {
		k = s.alloc.Next(s.accs)
	}
	s.runners[k].Step()
}

// Walks sums the stratum walk counts.
func (s *Stratified) Walks() int64 {
	var n int64
	for _, a := range s.accs {
		n += a.N
	}
	return n
}

// Snapshot returns the stratified-merged estimates with quadrature CIs.
// With a single uniform fallback stratum this equals the plain runner's
// snapshot.
func (s *Stratified) Snapshot() wj.Result {
	return wj.MergeStratified(s.accs, stats.Z95)
}

// Stats reports the run's stratification shape.
func (s *Stratified) Stats() StratifiedStats {
	st := StratifiedStats{Strata: len(s.runners), Fallback: s.fallback}
	if s.alloc == nil {
		return st
	}
	st.Reallocs = s.alloc.Reallocs()
	w := s.alloc.Weights()
	st.PerStratum = make([]StratumInfo, len(s.strata))
	for k := range s.strata {
		st.PerStratum[k] = StratumInfo{
			Bucket:   s.strata[k].Bucket,
			RootCard: s.strata[k].Total,
			Walks:    s.accs[k].N,
			Weight:   w[k],
		}
	}
	return st
}

// Fallback returns why the run degraded to uniform sampling ("" when it
// is genuinely stratified).
func (s *Stratified) Fallback() string { return s.fallback }

// Tipped sums the strata's tipped-walk counts.
func (s *Stratified) Tipped() int64 {
	var n int64
	for _, r := range s.runners {
		n += r.Tipped()
	}
	return n
}

// TipDiag merges the strata's tipping diagnostics.
func (s *Stratified) TipDiag() TipDiag {
	var d TipDiag
	for _, r := range s.runners {
		d.Merge(r.TipDiag())
	}
	return d
}

// CacheStats sums the strata's CTJ cache statistics.
func (s *Stratified) CacheStats() ctj.CacheStats {
	var cs ctj.CacheStats
	for _, r := range s.runners {
		rs := r.CacheStats()
		cs.CountHits += rs.CountHits
		cs.CountMisses += rs.CountMisses
		cs.AggHits += rs.AggHits
		cs.AggMisses += rs.AggMisses
		cs.ExistHits += rs.ExistHits
		cs.ExistMisses += rs.ExistMisses
		cs.ProbHits += rs.ProbHits
		cs.ProbMisses += rs.ProbMisses
		cs.ProbMaterialized = cs.ProbMaterialized || rs.ProbMaterialized
	}
	return cs
}

// SharedCache returns the CTJ cache the strata share (nil when the caller
// forced private caches).
func (s *Stratified) SharedCache() *ctj.SharedCache {
	return s.runners[0].SharedCache()
}
