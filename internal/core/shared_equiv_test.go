package core

import (
	"context"
	"testing"
	"time"

	"kgexplore/internal/ctj"
	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
	"kgexplore/internal/wj"
)

// resultsIdentical demands byte-identical estimator output: the shared cache
// must change only where values are computed, never what any walk observes,
// so the estimates and intervals agree exactly — no epsilon.
func resultsIdentical(t *testing.T, label string, got, want wj.Result) {
	t.Helper()
	if got.Walks != want.Walks || got.Rejected != want.Rejected {
		t.Errorf("%s: walks/rejected = %d/%d, want %d/%d",
			label, got.Walks, got.Rejected, want.Walks, want.Rejected)
	}
	if len(got.Estimates) != len(want.Estimates) {
		t.Errorf("%s: %d groups, want %d", label, len(got.Estimates), len(want.Estimates))
		return
	}
	for a, v := range want.Estimates {
		if gv, ok := got.Estimates[a]; !ok || gv != v {
			t.Errorf("%s: group %d estimate %v, want exactly %v", label, a, gv, v)
		}
		if got.CI[a] != want.CI[a] {
			t.Errorf("%s: group %d CI %v, want exactly %v", label, a, got.CI[a], want.CI[a])
		}
	}
}

// TestSharedCacheEquivalenceProperty is the walk-for-walk equivalence
// property of the shared cache: at a fixed seed the walk trajectories depend
// only on the random source and the index spans, so an Audit Join run with
// the shared concurrent cache must produce exactly the same estimates as one
// with private per-worker caches — for every seed, grouping, and worker
// count.
func TestSharedCacheEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := testkit.RandomGraph(seed, 20, 2, 12, 300)
		q := testkit.ChainQuery(g, []rdf.ID{20, 21}, seed%2 == 0, true)
		pl, err := query.Compile(q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := index.Build(g)
		for _, workers := range []int{1, 3} {
			opts := Options{Threshold: DefaultThreshold, Seed: 100 + seed}
			xopts := exec.Options{MaxWalks: 400}

			shared, sstats, err := RunParallelStats(context.Background(), st, pl, opts, workers, xopts)
			if err != nil {
				t.Fatalf("seed %d workers %d shared: %v", seed, workers, err)
			}
			popts := opts
			popts.NoSharedCache = true
			private, pstats, err := RunParallelStats(context.Background(), st, pl, popts, workers, xopts)
			if err != nil {
				t.Fatalf("seed %d workers %d private: %v", seed, workers, err)
			}

			if !sstats.SharedUsed || pstats.SharedUsed {
				t.Fatalf("seed %d workers %d: SharedUsed = %v/%v, want true/false",
					seed, workers, sstats.SharedUsed, pstats.SharedUsed)
			}
			resultsIdentical(t, "shared vs private", shared, private)
			if want := int64(workers) * xopts.MaxWalks; shared.Walks != want {
				t.Errorf("seed %d workers %d: %d walks, want %d", seed, workers, shared.Walks, want)
			}
		}
	}
}

// TestSharedCacheDeduplicatesAcrossWorkers checks the perf claim behind the
// shared cache: the merged shared miss counts of a multi-worker run stay at
// the single-worker level, while private per-worker caches repay the misses
// once per worker.
func TestSharedCacheDeduplicatesAcrossWorkers(t *testing.T) {
	g := testkit.RandomGraph(3, 20, 2, 12, 300)
	q := testkit.ChainQuery(g, []rdf.ID{20, 21}, true, true)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	misses := func(cs ctj.CacheStats) int64 {
		return cs.CountMisses + cs.AggMisses + cs.ExistMisses + cs.ProbMisses
	}

	run := func(workers int, noShared bool) ParallelStats {
		opts := Options{Threshold: DefaultThreshold, Seed: 7, NoSharedCache: noShared}
		_, ps, err := RunParallelStats(context.Background(), st, pl, opts, workers,
			exec.Options{MaxWalks: 400})
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}

	base := misses(run(1, false).Shared)
	shared4 := misses(run(4, false).Shared)
	var private4 int64
	for _, cs := range run(4, true).PerWorker {
		private4 += misses(cs)
	}
	if base == 0 {
		t.Fatal("single-worker run recorded no misses; fixture too small")
	}
	// Workers walk different prefixes, so the 4-worker run may touch more
	// distinct keys than one worker — but never four times as many, whereas
	// private caches recompute every shared key per worker.
	if shared4 >= private4 {
		t.Errorf("shared 4-worker misses %d not below private 4-worker misses %d", shared4, private4)
	}
	if shared4 < base {
		t.Errorf("shared 4-worker misses %d below single-worker misses %d", shared4, base)
	}
}

// TestRunParallelFinalSnapshotWithoutInterval regresses the merged-snapshot
// starvation fix: with Interval zero no worker ever publishes a progressive
// clone, so the final snapshot must be rebuilt from the quiescent runners —
// before the fix it merged four nil accumulators into an empty result.
func TestRunParallelFinalSnapshotWithoutInterval(t *testing.T) {
	pl, _, st := fig5(t, false)
	var got []exec.Progress
	res, err := RunParallel(context.Background(), st, pl,
		Options{Threshold: DefaultThreshold, Seed: 5}, 4, exec.Options{
			MaxWalks: 50,
			OnSnapshot: func(p exec.Progress) bool {
				got = append(got, p)
				return true
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d snapshots without an interval, want exactly the final one", len(got))
	}
	if !got[0].Final {
		t.Error("only snapshot is not marked Final")
	}
	if got[0].Walks != res.Walks || res.Walks != 4*50 {
		t.Errorf("final snapshot walks %d, result walks %d, want both 200", got[0].Walks, res.Walks)
	}
	if len(got[0].Snapshot.Estimates) == 0 {
		t.Error("final snapshot has no estimates (merged from nil clones?)")
	}
}

// TestRunParallelSnapshotsOutliveWorkers: workers that exhaust MaxWalks exit
// on their own schedule, yet the publisher goroutine must keep the merged
// stream flowing and deliver one complete Final snapshot — publishing is not
// tied to worker 0 (or any worker) staying alive.
func TestRunParallelSnapshotsOutliveWorkers(t *testing.T) {
	pl, _, st := fig5(t, false)
	var walks []int64
	var finals int
	res, err := RunParallel(context.Background(), st, pl,
		Options{Threshold: DefaultThreshold, Seed: 9}, 4, exec.Options{
			MaxWalks: 20_000,
			Interval: time.Millisecond,
			Batch:    64,
			OnSnapshot: func(p exec.Progress) bool {
				walks = append(walks, p.Walks)
				if p.Final {
					finals++
				}
				return true
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if finals != 1 {
		t.Errorf("%d Final snapshots, want 1", finals)
	}
	if last := walks[len(walks)-1]; last != res.Walks || res.Walks != 4*20_000 {
		t.Errorf("last snapshot walks %d, result walks %d, want both 80000", last, res.Walks)
	}
	for i := 1; i < len(walks); i++ {
		if walks[i] < walks[i-1] {
			t.Errorf("merged walks regressed at %d: %v", i, walks)
			break
		}
	}
}
