package core

import (
	"math"
	"testing"

	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
	"kgexplore/internal/wj"
)

// aggFixture: a two-hop query ending in numeric literals.
func aggFixture(t *testing.T, agg query.AggFunc) (*query.Plan, *index.Store) {
	t.Helper()
	g := testkit.RandomGraph(11, 8, 3, 5, 70)
	q := testkit.ChainQuery(g, []rdf.ID{8, 9}, true, false)
	q.Agg = agg
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return pl, index.Build(g)
}

func TestSumUnbiased(t *testing.T) {
	pl, st := aggFixture(t, query.AggSum)
	exact := lftj.Evaluate(st, pl)
	if len(exact) == 0 {
		t.Skip("fixture produced empty result")
	}
	for _, opts := range []Options{
		{Threshold: DefaultThreshold, Seed: 3},
		TipNever(4),
	} {
		r := New(st, pl, opts)
		exec.RunN(r, 200000)
		snap := r.Snapshot()
		for a, ex := range exact {
			if ex == 0 {
				continue
			}
			rel := math.Abs(snap.Estimates[a]-ex) / math.Abs(ex)
			if rel > 0.15 {
				t.Errorf("opts %+v group %d: %.2f vs %.2f (rel %.3f)",
					opts, a, snap.Estimates[a], ex, rel)
			}
		}
	}
}

func TestAvgConverges(t *testing.T) {
	pl, st := aggFixture(t, query.AggAvg)
	exact := lftj.Evaluate(st, pl)
	if len(exact) == 0 {
		t.Skip("fixture produced empty result")
	}
	r := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 5})
	exec.RunN(r, 200000)
	snap := r.Snapshot()
	for a, ex := range exact {
		rel := math.Abs(snap.Estimates[a]-ex) / math.Abs(ex)
		if rel > 0.15 {
			t.Errorf("group %d: %.3f vs %.3f (rel %.3f)", a, snap.Estimates[a], ex, rel)
		}
	}
}

func TestWJSumAlsoConverges(t *testing.T) {
	// Wander Join supports SUM natively (its original paper); verify our
	// implementation matches on the same fixture.
	pl, st := aggFixture(t, query.AggSum)
	exact := lftj.Evaluate(st, pl)
	if len(exact) == 0 {
		t.Skip("fixture produced empty result")
	}
	r := wj.New(st, pl, 9)
	exec.RunN(r, 300000)
	snap := r.Snapshot()
	for a, ex := range exact {
		if ex == 0 {
			continue
		}
		rel := math.Abs(snap.Estimates[a]-ex) / math.Abs(ex)
		if rel > 0.2 {
			t.Errorf("group %d: %.2f vs %.2f (rel %.3f)", a, snap.Estimates[a], ex, rel)
		}
	}
}

func TestAvgCIIsZero(t *testing.T) {
	pl, st := aggFixture(t, query.AggAvg)
	r := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 5})
	exec.RunN(r, 1000)
	for a, ci := range r.Snapshot().CI {
		if ci != 0 {
			t.Errorf("AVG CI for group %d = %v, want 0 (documented limitation)", a, ci)
		}
	}
}

func TestNonNumericBetaSumIsZero(t *testing.T) {
	// A chain ending at IRI objects only: SUM estimates must stay empty/0.
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	g.AddIRIs("b", "q", "c")
	g.Dedup()
	p, _ := g.Dict.LookupIRI("p")
	qid, _ := g.Dict.LookupIRI("q")
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(p), O: query.V(1)},
			{S: query.V(1), P: query.C(qid), O: query.V(2)},
		},
		Alpha: query.NoVar, Beta: 2, Agg: query.AggSum,
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	r := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 1})
	exec.RunN(r, 100)
	if est := r.Snapshot().Estimates[GlobalGroup]; est != 0 {
		t.Errorf("SUM over IRIs = %v, want 0", est)
	}
}
