package core

import (
	"math"
	"testing"

	"kgexplore/internal/card"
	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

func TestStatsOracleMatchesCardSuffix(t *testing.T) {
	// NewStatsOracle must wire up exactly the span-statistics suffix from
	// internal/card over a single-store resolver.
	pl, _, st := fig5(t, false)
	o := NewStatsOracle(st, pl)
	suf := card.NewSpanStats(st).NewSuffix(pl, card.StoreResolver{Store: st, Plan: pl})
	b := pl.NewBindings()
	alice, _ := dictLookup(t, st, "alice")
	paris, _ := dictLookup(t, st, "paris")
	b[0], b[1] = alice, paris
	if got, want := o.EstimateSuffix(0, b), suf.Estimate(0, b); got != want {
		t.Errorf("StatsOracle = %v, card suffix = %v", got, want)
	}
	if want := 1.0; o.EstimateSuffix(0, b) != want {
		t.Errorf("EstimateSuffix(alice,paris) = %v, want %v", o.EstimateSuffix(0, b), want)
	}
}

func dictLookup(t *testing.T, st *index.Store, iri string) (rdf.ID, bool) {
	t.Helper()
	id, ok := st.Dict().LookupIRI(iri)
	if !ok {
		t.Fatalf("missing %q", iri)
	}
	return id, ok
}

func TestProbeOracleUnbiasedOnSuffixSize(t *testing.T) {
	// The probe estimate is itself an unbiased HT estimator of |Γ_δ|:
	// average many probes and compare with the exact suffix count.
	g := testkit.RandomGraph(4, 8, 3, 5, 60)
	q := testkit.ChainQuery(g, []rdf.ID{8, 9}, false, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	// Bind step 0 to its first candidate.
	b := pl.NewBindings()
	sp, ok := pl.Steps[0].ResolveSpan(st, b)
	if !ok {
		t.Skip("empty fixture")
	}
	pl.Steps[0].Bind(st.At(pl.Steps[0].Order, sp, 0), b)

	// Exact suffix count via enumeration.
	var want float64
	lftj.Enumerate(st, pl, func(bb query.Bindings) bool {
		if bb[0] == b[0] && bb[1] == b[1] {
			want++
		}
		return true
	})
	o := NewProbeOracle(st, pl, 4, 99)
	var sum float64
	const reps = 4000
	for i := 0; i < reps; i++ {
		sum += o.EstimateSuffix(0, b)
	}
	got := sum / reps
	if want == 0 {
		if got != 0 {
			t.Errorf("probe = %v on empty suffix", got)
		}
		return
	}
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("probe mean %v vs exact %v", got, want)
	}
	// Probing must not leave stray bindings.
	for v := 2; v < len(b); v++ {
		if b[v] != rdf.NoID {
			t.Errorf("probe leaked binding for ?%d", v)
		}
	}
}

func TestAJWithProbeOracleUnbiased(t *testing.T) {
	pl, _, st := fig5(t, true)
	exact := lftj.GroupDistinct(st, pl)
	oracle := NewProbeOracle(st, pl, 3, 7)
	r := New(st, pl, Options{Threshold: DefaultThreshold, Seed: 7, Oracle: oracle})
	exec.RunN(r, 60000)
	snap := r.Snapshot()
	for a, ex := range exact {
		rel := math.Abs(snap.Estimates[a]-float64(ex)) / float64(ex)
		if rel > 0.1 {
			t.Errorf("group %d: %.3f vs %d (rel %.3f)", a, snap.Estimates[a], ex, rel)
		}
	}
	if r.Tipped() == 0 {
		t.Error("probe-oracle AJ never tipped on the tiny fixture")
	}
}
