package dynamic

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"kgexplore/internal/ctj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/snap"
)

func base(t *testing.T) (*Store, rdf.ID) {
	t.Helper()
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	g.AddIRIs("b", "p", "c")
	g.Dedup()
	p, _ := g.Dict.LookupIRI("p")
	return New(g), p
}

func countEdges(t *testing.T, s *Store, p rdf.ID) int64 {
	t.Helper()
	q := &query.Query{
		Patterns: []query.Pattern{{S: query.V(0), P: query.C(p), O: query.V(1)}},
		Alpha:    query.NoVar,
		Beta:     1,
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return ctj.Count(s.Snapshot(), pl)
}

func TestAddVisibleAfterSnapshot(t *testing.T) {
	s, p := base(t)
	if got := countEdges(t, s, p); got != 2 {
		t.Fatalf("base count = %d", got)
	}
	d := s.Dict()
	s.Add(rdf.Triple{S: d.InternIRI("c"), P: p, O: d.InternIRI("d")})
	if got := countEdges(t, s, p); got != 3 {
		t.Errorf("after add = %d, want 3", got)
	}
}

func TestAddDecoded(t *testing.T) {
	s, p := base(t)
	s.AddDecoded(rdf.NewIRI("x"), rdf.NewIRI("p"), rdf.NewIRI("y"))
	if got := countEdges(t, s, p); got != 3 {
		t.Errorf("after AddDecoded = %d, want 3", got)
	}
}

func TestDelete(t *testing.T) {
	s, p := base(t)
	d := s.Dict()
	a, _ := d.LookupIRI("a")
	b, _ := d.LookupIRI("b")
	s.Delete(rdf.Triple{S: a, P: p, O: b})
	if got := countEdges(t, s, p); got != 1 {
		t.Errorf("after delete = %d, want 1", got)
	}
	// Deleting an absent triple is a no-op.
	s.Delete(rdf.Triple{S: b, P: p, O: a})
	if got := countEdges(t, s, p); got != 1 {
		t.Errorf("after no-op delete = %d, want 1", got)
	}
}

func TestAddThenDeleteCancels(t *testing.T) {
	s, p := base(t)
	d := s.Dict()
	x := d.InternIRI("x")
	y := d.InternIRI("y")
	tr := rdf.Triple{S: x, P: p, O: y}
	s.Add(tr)
	s.Delete(tr)
	if got := countEdges(t, s, p); got != 2 {
		t.Errorf("add+delete = %d, want 2", got)
	}
	// Delete-then-add resurrects.
	s.Delete(tr)
	s.Add(tr)
	if got := countEdges(t, s, p); got != 3 {
		t.Errorf("delete+add = %d, want 3", got)
	}
}

func TestSnapshotLazyRebuild(t *testing.T) {
	s, p := base(t)
	s.Snapshot()
	s.Snapshot()
	if s.Rebuilds() != 0 {
		t.Errorf("rebuilds without updates = %d", s.Rebuilds())
	}
	d := s.Dict()
	for i := 0; i < 10; i++ {
		s.Add(rdf.Triple{S: d.InternIRI("n"), P: p, O: rdf.ID(uint32(i))})
	}
	if s.Pending() != 10 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Snapshot()
	if s.Rebuilds() != 1 {
		t.Errorf("batched updates caused %d rebuilds, want 1", s.Rebuilds())
	}
	if s.Pending() != 0 {
		t.Errorf("pending after snapshot = %d", s.Pending())
	}
}

func TestOldSnapshotsStayValid(t *testing.T) {
	s, p := base(t)
	old := s.Snapshot()
	oldCount := old.SpanL1(0, 0) // touch it
	_ = oldCount
	n := old.NumTriples()
	d := s.Dict()
	s.Add(rdf.Triple{S: d.InternIRI("z"), P: p, O: d.InternIRI("w")})
	_ = s.Snapshot()
	if old.NumTriples() != n {
		t.Error("old snapshot mutated by update")
	}
}

func TestPersistAfterRebuild(t *testing.T) {
	s, p := base(t)
	path := filepath.Join(t.TempDir(), "store.kgs")
	s.SetPersist(path, "dynamic-test")
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("snapshot written before any rebuild: %v", err)
	}
	d := s.Dict()
	s.Add(rdf.Triple{S: d.InternIRI("c"), P: p, O: d.InternIRI("d")})
	want := s.Snapshot()
	if err := s.PersistErr(); err != nil {
		t.Fatalf("persist: %v", err)
	}
	l, err := snap.LoadFile(path, snap.Options{Mode: snap.ModeCopy})
	if err != nil {
		t.Fatalf("load persisted snapshot: %v", err)
	}
	if l.Meta.Source != "dynamic-test" {
		t.Errorf("source = %q", l.Meta.Source)
	}
	if l.Store.NumTriples() != want.NumTriples() {
		t.Errorf("persisted %d triples, want %d", l.Store.NumTriples(), want.NumTriples())
	}
	// A failing path is reported via PersistErr, not a failed rebuild.
	s.SetPersist(filepath.Join(path, "not-a-dir", "x.kgs"), "")
	s.Add(rdf.Triple{S: d.InternIRI("e"), P: p, O: d.InternIRI("f")})
	if got := s.Snapshot(); got == nil {
		t.Fatal("rebuild failed alongside persistence")
	}
	if s.PersistErr() == nil {
		t.Error("unreportable persist path produced no error")
	}
}

// TestNewCopiesTriples pins the mmap-safety contract: applyLocked compacts
// the graph's triple slice in place, so New must not retain the caller's
// backing array (it may be a read-only mapping).
func TestNewCopiesTriples(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	g.AddIRIs("b", "p", "c")
	g.Dedup()
	orig := append([]rdf.Triple(nil), g.Triples...)
	s := New(g)
	p, _ := g.Dict.LookupIRI("p")
	a, _ := g.Dict.LookupIRI("a")
	b, _ := g.Dict.LookupIRI("b")
	s.Delete(rdf.Triple{S: a, P: p, O: b})
	s.Snapshot()
	for i, tr := range g.Triples {
		if tr != orig[i] {
			t.Fatalf("caller's triple slice mutated at %d: %v != %v", i, tr, orig[i])
		}
	}
}

func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	s, p := base(t)
	// Intern up front: Dict is safe for concurrent lookups, not interning.
	c := s.Dict().InternIRI("c")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Add(rdf.Triple{S: c, P: p, O: rdf.ID(uint32(w*100 + i))})
				if i%10 == 0 {
					s.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := countEdges(t, s, p); got != 2+200 {
		t.Errorf("final count = %d, want 202", got)
	}
}
