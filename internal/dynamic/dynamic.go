// Package dynamic adds update support on top of the immutable index.Store,
// realizing the paper's envisaged extension of "support for incremental
// indexing on updates" (§VI).
//
// Since the live-ingestion subsystem landed, this package is a thin
// compatibility shim over internal/live: updates go straight into the
// overlay store (so Delete of a pending add is O(1) via the overlay's add
// set, not the linear scan this package used to do), and Snapshot folds the
// overlay into a fresh immutable index via live's in-memory compaction. The
// observable behaviour is unchanged: snapshots are immutable and stay valid
// forever, rebuilds are lazy (only when the overlay is non-empty), and
// persistence failures surface through PersistErr rather than failing the
// rebuild. New code should use internal/live directly — it additionally
// offers merged-view querying WITHOUT a rebuild, write-ahead durability,
// and background compaction.
package dynamic

import (
	"sync"

	"kgexplore/internal/index"
	"kgexplore/internal/live"
	"kgexplore/internal/rdf"
	"kgexplore/internal/snap"
)

// Store is an updatable triple store. All methods are safe for concurrent
// use; Snapshot returns immutable index.Store values that remain valid
// forever.
type Store struct {
	ls *live.Store

	// mu serializes Snapshot (so at most one in-memory compaction runs,
	// keeping live.ErrCompacting impossible) and guards the fields below.
	mu          sync.Mutex
	rebuilds    int
	persistPath string
	persistSrc  string
	persistErr  error
}

// New wraps a graph into an updatable store. The dictionary is retained and
// grows with interned terms; the caller's triple slice is never mutated (it
// may be a read-only view over an mmap'ed store snapshot).
func New(g *rdf.Graph) *Store {
	ls, err := live.NewStore(index.Build(g), live.Options{})
	if err != nil {
		// Unreachable: NewStore only fails opening a WAL, and we pass none.
		panic(err)
	}
	return &Store{ls: ls}
}

// Dict returns the term dictionary. Interning new terms is allowed (the
// dictionary only grows; existing IDs never change).
func (s *Store) Dict() *rdf.Dict { return s.ls.Dict() }

// Add buffers the insertion of a triple. Duplicate inserts are harmless.
func (s *Store) Add(t rdf.Triple) {
	_ = s.ls.Add(t) // no WAL configured, cannot fail
}

// AddDecoded interns the terms and buffers the triple.
func (s *Store) AddDecoded(sub, pred, obj rdf.Term) {
	_ = s.ls.ApplyDecoded([]live.DecodedOp{{S: sub, P: pred, O: obj}})
}

// Delete buffers the removal of a triple. Deleting an absent triple is a
// no-op; deleting a pending add cancels it in O(1).
func (s *Store) Delete(t rdf.Triple) {
	_ = s.ls.Delete(t)
}

// Pending returns the number of buffered updates (overlay adds plus
// tombstones).
func (s *Store) Pending() int {
	v := s.ls.View()
	return v.DeltaAdds() + v.Tombstones()
}

// Rebuilds returns how many snapshot rebuilds have happened.
func (s *Store) Rebuilds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuilds
}

// Snapshot returns an immutable store reflecting every update buffered so
// far, rebuilding the indexes only if the overlay is non-empty.
func (s *Store) Snapshot() *index.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.ls.View()
	if v.DeltaAdds() == 0 && v.Tombstones() == 0 {
		return v.Base()
	}
	nb, _, err := s.ls.CompactInMemory()
	if err != nil {
		// Only live.ErrCompacting can occur, and s.mu excludes it; keep the
		// previous base rather than crash if that invariant ever breaks.
		return v.Base()
	}
	s.rebuilds++
	if s.persistPath != "" {
		s.persistErr = snap.WriteFile(s.persistPath, nb, &snap.Meta{Source: s.persistSrc})
	}
	return nb
}

// SetPersist makes every subsequent rebuild write the fresh store to path as
// a store snapshot (see internal/snap), atomically, while still holding the
// update lock — so the file on disk always corresponds to a snapshot some
// reader could have observed. source is recorded as provenance in the
// snapshot's metadata. An empty path disables persistence.
func (s *Store) SetPersist(path, source string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persistPath = path
	s.persistSrc = source
	s.persistErr = nil
}

// PersistErr returns the error of the most recent persistence attempt, or
// nil. Persistence failures never fail the rebuild itself — the in-memory
// snapshot is already consistent — so they are surfaced here instead.
func (s *Store) PersistErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistErr
}
