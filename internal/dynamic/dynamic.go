// Package dynamic adds update support on top of the immutable index.Store,
// realizing the paper's envisaged extension of "support for incremental
// indexing on updates" (§VI).
//
// The design is a classic two-tier scheme: additions and deletions
// accumulate in an in-memory delta, and readers obtain immutable snapshots.
// A snapshot is rebuilt lazily, only when the delta is non-empty and a
// reader asks for one, so the rebuild cost is amortized over batches of
// updates; between snapshots, running estimators keep using their (still
// valid, merely stale) store, which is exactly the semantics an exploration
// UI needs — charts refresh on the next interaction.
package dynamic

import (
	"sync"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
	"kgexplore/internal/snap"
)

// Store is an updatable triple store. All methods are safe for concurrent
// use; Snapshot returns immutable index.Store values that remain valid
// forever.
type Store struct {
	mu      sync.Mutex
	graph   *rdf.Graph
	current *index.Store
	adds    []rdf.Triple
	dels    map[rdf.Triple]bool
	// Rebuilds counts how many times a snapshot was rebuilt (observability
	// and tests).
	rebuilds int
	// persistPath, when set, makes every rebuild write the new snapshot to
	// disk (atomically) so a restart can skip the initial Build.
	persistPath string
	persistSrc  string
	persistErr  error
}

// New wraps a graph into an updatable store. The dictionary is retained and
// grows with interned terms; the triple slice is copied, because applyLocked
// compacts it in place and the caller's slice may be read-only (a graph view
// over an mmap'ed store snapshot).
func New(g *rdf.Graph) *Store {
	own := &rdf.Graph{Dict: g.Dict, Triples: append([]rdf.Triple(nil), g.Triples...)}
	return &Store{
		graph:   own,
		current: index.Build(own),
		dels:    make(map[rdf.Triple]bool),
	}
}

// Dict returns the term dictionary. Interning new terms is allowed (the
// dictionary only grows; existing IDs never change).
func (s *Store) Dict() *rdf.Dict {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.graph.Dict
}

// Add buffers the insertion of a triple. Duplicate inserts are harmless.
func (s *Store) Add(t rdf.Triple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.dels, t)
	s.adds = append(s.adds, t)
}

// AddDecoded interns the terms and buffers the triple.
func (s *Store) AddDecoded(sub, pred, obj rdf.Term) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := rdf.Triple{
		S: s.graph.Dict.Intern(sub),
		P: s.graph.Dict.Intern(pred),
		O: s.graph.Dict.Intern(obj),
	}
	delete(s.dels, t)
	s.adds = append(s.adds, t)
}

// Delete buffers the removal of a triple. Deleting an absent triple is a
// no-op.
func (s *Store) Delete(t rdf.Triple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Cancel a pending add if present; also record the delete in case the
	// triple exists in the base.
	for i, a := range s.adds {
		if a == t {
			s.adds = append(s.adds[:i], s.adds[i+1:]...)
			break
		}
	}
	s.dels[t] = true
}

// Pending returns the number of buffered updates.
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.adds) + len(s.dels)
}

// Rebuilds returns how many snapshot rebuilds have happened.
func (s *Store) Rebuilds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuilds
}

// Snapshot returns an immutable store reflecting every update buffered so
// far, rebuilding the indexes only if the delta is non-empty.
func (s *Store) Snapshot() *index.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.adds) == 0 && len(s.dels) == 0 {
		return s.current
	}
	s.applyLocked()
	return s.current
}

// SetPersist makes every subsequent rebuild write the fresh store to path as
// a store snapshot (see internal/snap), atomically, while still holding the
// update lock — so the file on disk always corresponds to a snapshot some
// reader could have observed. source is recorded as provenance in the
// snapshot's metadata. An empty path disables persistence.
func (s *Store) SetPersist(path, source string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persistPath = path
	s.persistSrc = source
	s.persistErr = nil
}

// PersistErr returns the error of the most recent persistence attempt, or
// nil. Persistence failures never fail the rebuild itself — the in-memory
// snapshot is already consistent — so they are surfaced here instead.
func (s *Store) PersistErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistErr
}

// applyLocked folds the delta into the graph and rebuilds the indexes.
func (s *Store) applyLocked() {
	if len(s.dels) > 0 {
		kept := s.graph.Triples[:0]
		for _, t := range s.graph.Triples {
			if !s.dels[t] {
				kept = append(kept, t)
			}
		}
		s.graph.Triples = kept
	}
	s.graph.Triples = append(s.graph.Triples, s.adds...)
	s.graph.Dedup()
	s.adds = s.adds[:0]
	s.dels = make(map[rdf.Triple]bool)
	s.current = index.Build(s.graph)
	s.rebuilds++
	if s.persistPath != "" {
		s.persistErr = snap.WriteFile(s.persistPath, s.current, &snap.Meta{Source: s.persistSrc})
	}
}
