package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	infos, err := Table1(&buf, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("infos = %v", infos)
	}
	if infos[0].Name != "dbpedia-sim" || infos[1].Name != "lgd-sim" {
		t.Errorf("dataset names: %v", infos)
	}
	for _, in := range infos {
		if in.Triples == 0 || in.Classes == 0 || in.Props == 0 {
			t.Errorf("empty info %+v", in)
		}
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("missing header")
	}
}

func TestFig8Quick(t *testing.T) {
	var buf bytes.Buffer
	cfg := Quick()
	rows, err := Fig8(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 panels", len(rows))
	}
	for _, r := range rows {
		if r.CTJTime <= 0 {
			t.Errorf("%s/%s: no CTJ time", r.Dataset, r.Label)
		}
		if len(r.WJ) == 0 || len(r.AJ) == 0 {
			t.Errorf("%s/%s: empty series", r.Dataset, r.Label)
		}
		if r.Groups == 0 {
			t.Errorf("%s/%s: no groups", r.Dataset, r.Label)
		}
		for _, p := range append(append([]SeriesPoint{}, r.WJ...), r.AJ...) {
			if p.MAE < 0 {
				t.Errorf("negative MAE %v", p.MAE)
			}
			if p.Walks <= 0 {
				t.Errorf("no walks recorded")
			}
		}
	}
	out := buf.String()
	for _, want := range []string{"Fig.8 dbpedia-sim", "Fig.8 lgd-sim", "ctj:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig8AJBeatsWJAtEnd(t *testing.T) {
	// On the root out-property panels — the paper's headline case — AJ's
	// final MAE must be clearly below WJ's.
	var buf bytes.Buffer
	cfg := Quick()
	cfg.Budget = 200 * time.Millisecond
	cfg.Interval = 50 * time.Millisecond
	rows, err := Fig8(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, r := range rows {
		if r.Label != "out-prop(root)" {
			continue
		}
		checked++
		wjFinal := r.WJ[len(r.WJ)-1].MAE
		ajFinal := r.AJ[len(r.AJ)-1].MAE
		if !(ajFinal < wjFinal) {
			t.Errorf("%s: AJ final MAE %.3f not below WJ %.3f", r.Dataset, ajFinal, wjFinal)
		}
	}
	if checked != 2 {
		t.Errorf("checked %d root panels, want 2", checked)
	}
}

func TestSuiteFigures(t *testing.T) {
	cfg := Quick()
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Datasets {
		if s.Queries(d.Name) == 0 {
			t.Fatalf("no workload queries for %s", d.Name)
		}
	}
	var buf bytes.Buffer
	cells, err := s.FigAllQueries(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no Fig.9 cells")
	}
	for _, c := range cells {
		if c.WJ.N != c.AJ.N {
			t.Errorf("mismatched sample sizes in cell %+v", c)
		}
	}
	cells10, err := s.FigAllQueries(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells10) == 0 {
		t.Fatal("no Fig.10 cells")
	}
	rows, err := s.Fig11(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no Fig.11 rows")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].WJRate > rows[i-1].WJRate {
			t.Error("Fig.11 not sorted by WJ rate")
		}
	}
	wjNS, ajNS, err := s.SampleTimes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if wjNS <= 0 || ajNS <= 0 {
		t.Errorf("sample times: %v %v", wjNS, ajNS)
	}
	out := buf.String()
	for _, want := range []string{"Fig.9", "Fig.10", "Fig.11", "Sample time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Caching: re-running a figure must not re-measure.
	r1, _ := s.Runs(true)
	r2, _ := s.Runs(true)
	if &r1[0] != &r2[0] {
		t.Error("Runs not cached")
	}
}

func TestMeanRelCISkipsInf(t *testing.T) {
	// With a single walk, CI is +Inf and must be skipped, not poison the mean.
	cfg := Quick()
	ds, err := LoadDatasets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = ds
}
