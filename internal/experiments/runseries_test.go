package experiments

import (
	"testing"
	"time"

	"kgexplore/internal/rdf"
	"kgexplore/internal/wj"
)

// slowStepper simulates an estimator whose walks are expensive: each Step
// takes ~1ms, so a 64-walk batch far overshoots a 10ms snapshot interval.
type slowStepper struct{ n int64 }

func (s *slowStepper) Step() {
	s.n++
	time.Sleep(time.Millisecond)
}
func (s *slowStepper) Walks() int64 { return s.n }
func (s *slowStepper) Snapshot() wj.Result {
	return wj.Result{Walks: s.n, Estimates: map[rdf.ID]float64{wj.GlobalGroup: float64(s.n)}}
}

func TestRunSeriesReportsRealElapsedTime(t *testing.T) {
	// Regression test for timestamp drift: SeriesPoint.T used to be the
	// nominal sum of intervals (10ms, 20ms, ...). With 1ms walks and a
	// 64-walk batch, each snapshot actually lands >= ~60ms in; the recorded
	// T must reflect that wall-clock reality, not the nominal schedule.
	const interval = 10 * time.Millisecond
	pts := runSeries(&slowStepper{}, map[rdf.ID]float64{wj.GlobalGroup: 1}, 200*time.Millisecond, interval)
	if len(pts) == 0 {
		t.Fatal("no series points")
	}
	if pts[0].T < 3*interval {
		t.Errorf("first point T = %v: nominal-interval timestamp, want real elapsed (>= %v)", pts[0].T, 3*interval)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T <= pts[i-1].T {
			t.Errorf("series time not increasing: %v then %v", pts[i-1].T, pts[i].T)
		}
		if pts[i].Walks <= pts[i-1].Walks {
			t.Errorf("series walks not increasing: %+v", pts)
		}
	}
}
