package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"kgexplore/internal/core"
	"kgexplore/internal/ctj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
	"kgexplore/internal/workload"
)

// QueryRun is the measured behaviour of both online algorithms on one
// workload query.
type QueryRun struct {
	Dataset  string
	Path     int
	Step     int
	Groups   int
	WJ, AJ   []SeriesPoint
	WJRate   float64 // final rejection rate
	AJRate   float64
	WJWalks  int64
	AJWalks  int64
	AJTipped int64
}

// Suite caches datasets and workload runs so that Figures 9, 10 and 11 (and
// the sample-time summary) reuse the same measurements, exactly as in the
// paper where they are different views of one experiment.
type Suite struct {
	Cfg      Config
	Datasets []*Dataset

	recs map[string][]workload.StepRecord
	runs map[bool][]QueryRun // keyed by distinct
}

// NewSuite generates the datasets and the random exploration workload
// (cfg.Paths paths of cfg.MaxSteps steps per dataset, §V-B).
func NewSuite(cfg Config) (*Suite, error) {
	ds, err := LoadDatasets(cfg)
	if err != nil {
		return nil, err
	}
	s := &Suite{
		Cfg:      cfg,
		Datasets: ds,
		recs:     make(map[string][]workload.StepRecord),
		runs:     make(map[bool][]QueryRun),
	}
	for _, d := range ds {
		gen := &workload.Generator{
			Store:    d.Store,
			Schema:   d.Schema,
			Seed:     cfg.Seed,
			MaxSteps: cfg.MaxSteps,
		}
		s.recs[d.Name] = gen.Paths(cfg.Paths)
	}
	return s, nil
}

// Queries returns the number of workload queries per dataset.
func (s *Suite) Queries(dataset string) int { return len(s.recs[dataset]) }

// Runs measures every workload query with both algorithms, in distinct or
// plain-count mode, caching the result.
func (s *Suite) Runs(distinct bool) ([]QueryRun, error) {
	if cached, ok := s.runs[distinct]; ok {
		return cached, nil
	}
	var out []QueryRun
	for di, d := range s.Datasets {
		for qi, rec := range s.recs[d.Name] {
			run, err := s.runOne(d, rec, distinct, int64(di*10_000+qi))
			if err != nil {
				return nil, fmt.Errorf("%s path %d step %d: %w", d.Name, rec.Path, rec.Step, err)
			}
			out = append(out, run)
		}
	}
	s.runs[distinct] = out
	return out, nil
}

func (s *Suite) runOne(d *Dataset, rec workload.StepRecord, distinct bool, salt int64) (QueryRun, error) {
	q := rec.Query
	exact := rec.Exact
	pl := rec.Plan
	if !distinct {
		// Rebuild the query as a plain COUNT and recompute ground truth.
		q2 := *q
		q2.Distinct = false
		var err error
		pl, err = query.Compile(&q2)
		if err != nil {
			return QueryRun{}, err
		}
		exact = ctj.Evaluate(d.Store, pl)
	}
	cfg := s.Cfg
	run := QueryRun{Dataset: d.Name, Path: rec.Path, Step: rec.Step, Groups: len(exact)}

	wjPlan := bestWJOrder(d.Store, pl, exact, cfg.OrderTrials, cfg.Seed+salt)
	wjr := wj.New(d.Store, wjPlan, cfg.Seed+salt)
	run.WJ = runSeries(wjr, exact, cfg.Budget, cfg.Interval)
	wsnap := wjr.Snapshot()
	run.WJRate, run.WJWalks = wsnap.RejectionRate(), wsnap.Walks

	ajPlan := bestAJOrder(d.Store, pl, exact, cfg.OrderTrials, cfg.Threshold, cfg.Seed+salt)
	ajr := core.New(d.Store, ajPlan, core.Options{Threshold: cfg.Threshold, Seed: cfg.Seed + salt})
	run.AJ = runSeries(ajr, exact, cfg.Budget, cfg.Interval)
	asnap := ajr.Snapshot()
	run.AJRate, run.AJWalks = asnap.RejectionRate(), asnap.Walks
	run.AJTipped = ajr.Tipped()
	return run, nil
}

// TukeyCell is one box of Figures 9/10: the distribution of per-query MAE
// at one snapshot time, for one dataset and exploration step.
type TukeyCell struct {
	Dataset string
	Step    int
	T       time.Duration
	WJ, AJ  stats.Tukey
}

// FigAllQueries produces the Fig. 9 (distinct=true) or Fig. 10
// (distinct=false) grid and prints it.
func (s *Suite) FigAllQueries(w io.Writer, distinct bool) ([]TukeyCell, error) {
	runs, err := s.Runs(distinct)
	if err != nil {
		return nil, err
	}
	label := "Fig.9 (all queries, distinct)"
	if !distinct {
		label = "Fig.10 (all queries, no distinct)"
	}
	fmt.Fprintf(w, "\n%s\n", label)

	var cells []TukeyCell
	for _, d := range s.Datasets {
		for step := 1; step <= s.Cfg.MaxSteps; step++ {
			// Collect MAE samples per snapshot index.
			var nPoints int
			for _, r := range runs {
				if r.Dataset == d.Name && r.Step == step && len(r.WJ) > nPoints {
					nPoints = len(r.WJ)
				}
			}
			if nPoints == 0 {
				continue
			}
			for pt := 0; pt < nPoints; pt++ {
				var wjs, ajs []float64
				var t time.Duration
				for _, r := range runs {
					if r.Dataset != d.Name || r.Step != step || pt >= len(r.WJ) || pt >= len(r.AJ) {
						continue
					}
					wjs = append(wjs, r.WJ[pt].MAE)
					ajs = append(ajs, r.AJ[pt].MAE)
					t = r.WJ[pt].T
				}
				cells = append(cells, TukeyCell{
					Dataset: d.Name,
					Step:    step,
					T:       t,
					WJ:      stats.TukeyOf(wjs),
					AJ:      stats.TukeyOf(ajs),
				})
			}
		}
	}
	printTukeyCells(w, cells)
	return cells, nil
}

func printTukeyCells(w io.Writer, cells []TukeyCell) {
	lastKey := ""
	for _, c := range cells {
		key := fmt.Sprintf("%s step %d", c.Dataset, c.Step)
		if key != lastKey {
			fmt.Fprintf(w, "\n%s (%d queries)\n", key, c.WJ.N)
			fmt.Fprintf(w, "  %-8s | %9s %9s %9s | %9s %9s %9s\n",
				"t", "WJ q1", "WJ med", "WJ q3", "AJ q1", "AJ med", "AJ q3")
			lastKey = key
		}
		fmt.Fprintf(w, "  %-8v | %8.1f%% %8.1f%% %8.1f%% | %8.1f%% %8.1f%% %8.1f%%\n",
			c.T, 100*c.WJ.Q1, 100*c.WJ.Median, 100*c.WJ.Q3,
			100*c.AJ.Q1, 100*c.AJ.Median, 100*c.AJ.Q3)
	}
}

// Fig11Row is one query's rejection rates.
type Fig11Row struct {
	Dataset string
	Path    int
	Step    int
	WJRate  float64
	AJRate  float64
}

// Fig11 reports the per-query rejection rates of WJ and AJ on the distinct
// workload, sorted by descending WJ rate (the paper sorts each curve by its
// own rate; we keep the rows paired for readability and also report the
// paper's headline counts of queries under 25% rejection).
func (s *Suite) Fig11(w io.Writer) ([]Fig11Row, error) {
	runs, err := s.Runs(true)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig11Row, 0, len(runs))
	for _, r := range runs {
		rows = append(rows, Fig11Row{
			Dataset: r.Dataset, Path: r.Path, Step: r.Step,
			WJRate: r.WJRate, AJRate: r.AJRate,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].WJRate > rows[j].WJRate })
	under25 := func(sel func(Fig11Row) float64) int {
		n := 0
		for _, r := range rows {
			if sel(r) < 0.25 {
				n++
			}
		}
		return n
	}
	fmt.Fprintf(w, "\nFig.11 rejection rates (%d queries)\n", len(rows))
	fmt.Fprintf(w, "  queries with rejection < 25%%: AJ %d, WJ %d\n",
		under25(func(r Fig11Row) float64 { return r.AJRate }),
		under25(func(r Fig11Row) float64 { return r.WJRate }))
	fmt.Fprintf(w, "  %-14s %5s %5s %9s %9s\n", "dataset", "path", "step", "WJ", "AJ")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %5d %5d %8.1f%% %8.1f%%\n",
			r.Dataset, r.Path, r.Step, 100*r.WJRate, 100*r.AJRate)
	}
	return rows, nil
}

// SampleTimes reports the average wall time per walk for both algorithms
// over the distinct workload — the paper's ~2.5µs comparison (§V-C).
func (s *Suite) SampleTimes(w io.Writer) (wjNS, ajNS float64, err error) {
	runs, err := s.Runs(true)
	if err != nil {
		return 0, 0, err
	}
	var wjWalks, ajWalks int64
	var elapsed time.Duration
	for _, r := range runs {
		wjWalks += r.WJWalks
		ajWalks += r.AJWalks
		elapsed += s.Cfg.Budget
	}
	if wjWalks > 0 {
		wjNS = float64(elapsed.Nanoseconds()) / float64(wjWalks)
	}
	if ajWalks > 0 {
		ajNS = float64(elapsed.Nanoseconds()) / float64(ajWalks)
	}
	fmt.Fprintf(w, "\nSample time: WJ %.2fµs/walk, AJ %.2fµs/walk (over %d+%d walks)\n",
		wjNS/1e3, ajNS/1e3, wjWalks, ajWalks)
	return wjNS, ajNS, nil
}

// GlobalGroup re-exported for consumers of run results.
const GlobalGroup = rdf.NoID
