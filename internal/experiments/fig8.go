package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"kgexplore/internal/baseline"
	"kgexplore/internal/core"
	"kgexplore/internal/ctj"
	"kgexplore/internal/explore"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/wj"
)

// Fig8Row is one panel of Fig. 8: a selected query with exact-engine
// runtimes and the MAE/CI series of the two online algorithms.
type Fig8Row struct {
	Dataset      string
	Label        string // e.g. "out-prop(Thing)"
	Groups       int
	BaselineTime time.Duration
	BaselineErr  error // the baseline may exceed its row limit
	CTJTime      time.Duration
	WJ, AJ       []SeriesPoint
}

// Fig8 runs the six selected queries: for each dataset, the out-property
// expansion of the root (panels a/d), the subclass expansion one level in
// (panels b/e: of the root for DBpedia-sim, of the largest subclass for
// LGD-sim, mirroring the paper's Shop), and an expansion of a popular
// selection (panels c/f: the object expansion of the most popular property
// for DBpedia-sim, like musicalArtist; the out-property expansion of the
// largest subclass for LGD-sim, like Place).
func Fig8(w io.Writer, cfg Config) ([]Fig8Row, error) {
	ds, err := LoadDatasets(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for i, d := range ds {
		sel, err := selectedQueries(d)
		if err != nil {
			return nil, fmt.Errorf("fig8: %s: %w", d.Name, err)
		}
		for _, sq := range sel {
			row, err := runFig8Query(d, sq, cfg, int64(i+1))
			if err != nil {
				return nil, fmt.Errorf("fig8: %s %s: %w", d.Name, sq.label, err)
			}
			rows = append(rows, row)
			printFig8Row(w, row)
		}
	}
	return rows, nil
}

type selectedQuery struct {
	label string
	q     *query.Query
}

// selectedQueries builds the three panels for one dataset.
func selectedQueries(d *Dataset) ([]selectedQuery, error) {
	root := explore.Root(d.Schema)
	outProp, err := root.Query(explore.OpOutProp)
	if err != nil {
		return nil, err
	}
	subclass, err := root.Query(explore.OpSubclass)
	if err != nil {
		return nil, err
	}
	sel := []selectedQuery{
		{"out-prop(root)", outProp},
		{"subclass(root)", subclass},
	}
	if d.Name == "dbpedia-sim" {
		// Object expansion of the most popular property (musicalArtist
		// analogue).
		p, err := topProperty(d)
		if err != nil {
			return nil, err
		}
		st, err := root.Select(explore.OpOutProp, p)
		if err != nil {
			return nil, err
		}
		q, err := st.Query(explore.OpObject)
		if err != nil {
			return nil, err
		}
		sel = append(sel, selectedQuery{"object(top-prop)", q})
	} else {
		// Out-property expansion of the largest direct subclass (Place
		// analogue).
		c, err := topSubclass(d)
		if err != nil {
			return nil, err
		}
		st, err := root.Select(explore.OpSubclass, c)
		if err != nil {
			return nil, err
		}
		q, err := st.Query(explore.OpOutProp)
		if err != nil {
			return nil, err
		}
		sel = append(sel, selectedQuery{"out-prop(top-subclass)", q})
	}
	return sel, nil
}

// topProperty returns the most frequent non-schema predicate.
func topProperty(d *Dataset) (rdf.ID, error) {
	var best rdf.ID
	bestN := -1
	it := d.Store.Level(index.PSO, d.Store.FullSpan(index.PSO), 0)
	for it.Next() {
		k := it.Key()
		if k == d.Schema.Type || k == d.Schema.SubClassOf || k == d.Schema.TypeClosure {
			continue
		}
		if n := it.SubSpan().Len(); n > bestN || (n == bestN && k < best) {
			best, bestN = k, n
		}
	}
	if bestN < 0 {
		return 0, fmt.Errorf("no non-schema predicates")
	}
	return best, nil
}

// topSubclass returns the direct subclass of the root with the most
// closure instances.
func topSubclass(d *Dataset) (rdf.ID, error) {
	subSpan := d.Store.SpanL2(index.POS, d.Schema.SubClassOf, d.Schema.Root)
	var best rdf.ID
	bestN := -1
	var cands []rdf.ID
	for i := 0; i < subSpan.Len(); i++ {
		cands = append(cands, d.Store.At(index.POS, subSpan, i).S)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, c := range cands {
		n := d.Store.SpanL2(index.POS, d.Schema.TypeClosure, c).Len()
		if n > bestN {
			best, bestN = c, n
		}
	}
	if bestN < 0 {
		return 0, fmt.Errorf("root has no subclasses")
	}
	return best, nil
}

func runFig8Query(d *Dataset, sq selectedQuery, cfg Config, seed int64) (Fig8Row, error) {
	pl, err := query.Compile(sq.q)
	if err != nil {
		return Fig8Row{}, err
	}
	row := Fig8Row{Dataset: d.Name, Label: sq.label}

	// Exact engines, timed. CTJ also provides the ground truth.
	start := time.Now()
	exact := ctj.Evaluate(d.Store, pl)
	row.CTJTime = time.Since(start)
	row.Groups = len(exact)

	if !cfg.SkipBaseline {
		start = time.Now()
		_, err := baseline.Evaluate(d.Store, pl)
		row.BaselineTime = time.Since(start)
		row.BaselineErr = err
	}

	// Online aggregation, each with its best-MAE walk order (paper §V-B).
	wjPlan := bestWJOrder(d.Store, pl, exact, cfg.OrderTrials, cfg.Seed+seed)
	wjr := wj.New(d.Store, wjPlan, cfg.Seed+seed)
	row.WJ = runSeries(wjr, exact, cfg.Budget, cfg.Interval)
	ajPlan := bestAJOrder(d.Store, pl, exact, cfg.OrderTrials, cfg.Threshold, cfg.Seed+seed)
	ajr := core.New(d.Store, ajPlan, core.Options{Threshold: cfg.Threshold, Seed: cfg.Seed + seed})
	row.AJ = runSeries(ajr, exact, cfg.Budget, cfg.Interval)
	return row, nil
}

func printFig8Row(w io.Writer, row Fig8Row) {
	fmt.Fprintf(w, "\nFig.8 %s / %s (%d groups)\n", row.Dataset, row.Label, row.Groups)
	if row.BaselineErr != nil {
		fmt.Fprintf(w, "  baseline: DNF after %v (%v)\n", row.BaselineTime.Round(time.Millisecond), row.BaselineErr)
	} else if row.BaselineTime > 0 {
		fmt.Fprintf(w, "  baseline: %v\n", row.BaselineTime.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "  ctj:      %v\n", row.CTJTime.Round(time.Microsecond))
	fmt.Fprintf(w, "  %-10s %12s %12s %12s %12s\n", "t", "WJ MAE", "WJ relCI", "AJ MAE", "AJ relCI")
	// Wall-clock-driven snapshots: the two engines' series can differ in
	// length by a point, so print the paired prefix.
	n := len(row.WJ)
	if len(row.AJ) < n {
		n = len(row.AJ)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "  %-10v %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
			row.WJ[i].T, 100*row.WJ[i].MAE, 100*row.WJ[i].RelCI,
			100*row.AJ[i].MAE, 100*row.AJ[i].RelCI)
	}
}
