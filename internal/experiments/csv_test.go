package experiments

import (
	"bytes"
	"encoding/csv"
	"errors"
	"strings"
	"testing"
	"time"

	"kgexplore/internal/kggen"
	"kgexplore/internal/stats"
)

func TestWriteTable1CSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable1CSV(&buf, []kggen.Info{
		{Name: "d1", Triples: 10, Classes: 2, Props: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][0] != "d1" || recs[1][1] != "10" {
		t.Errorf("csv = %v", recs)
	}
}

func TestWriteFig8CSV(t *testing.T) {
	rows := []Fig8Row{{
		Dataset: "d", Label: "q", Groups: 3,
		BaselineTime: 5 * time.Millisecond, CTJTime: time.Millisecond,
		WJ: []SeriesPoint{{T: time.Second, MAE: 0.5, RelCI: 0.1, Walks: 100}},
		AJ: []SeriesPoint{{T: time.Second, MAE: 0.05, RelCI: 0.01, Walks: 200}},
	}, {
		Dataset: "d", Label: "q2", Groups: 1,
		BaselineErr: errors.New("boom"), CTJTime: time.Millisecond,
		WJ: []SeriesPoint{{T: time.Second}},
		AJ: []SeriesPoint{{T: time.Second}},
	}}
	var buf bytes.Buffer
	if err := WriteFig8CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[1][6] != "0.500000" || recs[1][8] != "0.050000" {
		t.Errorf("row = %v", recs[1])
	}
	if recs[2][3] != "DNF" {
		t.Errorf("baseline DNF not marked: %v", recs[2])
	}
}

func TestWriteTukeyAndFig11CSV(t *testing.T) {
	var buf bytes.Buffer
	cells := []TukeyCell{{
		Dataset: "d", Step: 1, T: time.Second,
		WJ: stats.TukeyOf([]float64{1, 2, 3}),
		AJ: stats.TukeyOf([]float64{0.1, 0.2}),
	}}
	if err := WriteTukeyCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wj_median") {
		t.Error("missing header")
	}
	buf.Reset()
	if err := WriteFig11CSV(&buf, []Fig11Row{{Dataset: "d", Path: 1, Step: 2, WJRate: 0.9, AJRate: 0.1}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.900000") {
		t.Errorf("csv = %s", buf.String())
	}
}
