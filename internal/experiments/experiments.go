// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) over the two synthetic datasets:
//
//	Table I  — dataset information
//	Fig. 8   — six selected queries: MAE over time for WJ and AJ (+0.95
//	           CIs), with exact runtimes for the baseline engine and CTJ
//	Fig. 9   — MAE over time of all workload queries with DISTINCT,
//	           Tukey box stats by dataset and exploration step
//	Fig. 10  — the same without DISTINCT
//	Fig. 11  — per-query rejection rates of WJ and AJ, sorted
//	§V-C     — average sample times (the "2.5 microseconds" figure)
//
// Absolute runtimes are not comparable to the paper's (different hardware,
// data scale and language); the shapes — who wins, by what order of
// magnitude, and how error decays with time — are the reproduction targets.
// See EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"kgexplore/internal/core"
	"kgexplore/internal/exec"
	"kgexplore/internal/explore"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// Config scales the experiments. The paper's protocol is Full(); tests and
// benchmarks use smaller settings.
type Config struct {
	Scale         float64       // dataset scale factor (1.0 ≈ paper-shaped, memory permitting)
	Paths         int           // exploration paths per dataset (paper: 25)
	MaxSteps      int           // expansions per path (paper: 4)
	Budget        time.Duration // online-aggregation time per query (paper: 9s)
	Interval      time.Duration // snapshot interval (paper: 1s)
	Threshold     float64       // Audit Join tipping threshold
	Seed          int64
	OrderTrials   int  // walks used to pick WJ's best join order (paper: best-MAE order); 0 disables
	SkipBaseline  bool // skip the (slow) baseline engine in Fig. 8
	MaxExactGroup int  // cap on groups when computing ground truth; 0 = none
}

// Full returns the paper's protocol at the given dataset scale.
func Full(scale float64) Config {
	return Config{
		Scale:       scale,
		Paths:       25,
		MaxSteps:    4,
		Budget:      9 * time.Second,
		Interval:    time.Second,
		Threshold:   core.DefaultThreshold,
		Seed:        1,
		OrderTrials: 2000,
	}
}

// Quick returns a configuration that exercises every experiment in seconds,
// for tests and benchmarks.
func Quick() Config {
	return Config{
		Scale:       0.01,
		Paths:       3,
		MaxSteps:    3,
		Budget:      80 * time.Millisecond,
		Interval:    20 * time.Millisecond,
		Threshold:   core.DefaultThreshold,
		Seed:        1,
		OrderTrials: 200,
	}
}

// Dataset bundles one prepared dataset for the harness.
type Dataset struct {
	Name   string
	Info   kggen.Info
	Store  *index.Store
	Schema explore.Schema
	Graph  *rdf.Graph
}

// LoadDatasets generates the DBpedia-sim and LGD-sim datasets at the
// config's scale.
func LoadDatasets(cfg Config) ([]*Dataset, error) {
	var out []*Dataset
	for _, gen := range []func(float64) kggen.Config{kggen.DBpediaSim, kggen.LGDSim} {
		c := gen(cfg.Scale)
		g, schema, err := kggen.Generate(c)
		if err != nil {
			return nil, err
		}
		out = append(out, &Dataset{
			Name:   c.Name,
			Info:   kggen.DatasetInfo(c.Name, g),
			Store:  index.Build(g),
			Schema: schema,
			Graph:  g,
		})
	}
	return out, nil
}

// Table1 prints the Table I analogue for the generated datasets.
func Table1(w io.Writer, cfg Config) ([]kggen.Info, error) {
	ds, err := LoadDatasets(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Table I: dataset information (scale %.3g)\n", cfg.Scale)
	fmt.Fprintf(w, "%-14s %12s %10s %8s %14s\n", "Dataset", "Triples", "Classes", "Props", "IndexBytes")
	var infos []kggen.Info
	for _, d := range ds {
		fmt.Fprintf(w, "%-14s %12d %10d %8d %14d\n",
			d.Info.Name, d.Info.Triples, d.Info.Classes, d.Info.Props, d.Store.EstimateBytes())
		infos = append(infos, d.Info)
	}
	return infos, nil
}

// Estimator is the common surface of the two online-aggregation runners —
// the Stepper of the shared execution layer.
type Estimator = exec.Stepper

// SeriesPoint is one snapshot of an online aggregation.
type SeriesPoint struct {
	T     time.Duration
	MAE   float64
	RelCI float64 // mean CI half-width relative to the exact count
	Walks int64
}

// runSeries drives an estimator for the budget on the shared execution
// layer, snapshotting every interval. Each point's T is the real elapsed
// wall-clock time at the snapshot, not the nominal sum of intervals — on a
// loaded machine the two drift apart, and the MAE-over-time figures must
// plot against the time actually spent.
func runSeries(est Estimator, exact map[rdf.ID]float64, budget, interval time.Duration) []SeriesPoint {
	var out []SeriesPoint
	record := func(p exec.Progress) bool {
		snap := p.Snapshot
		out = append(out, SeriesPoint{
			T:     p.Elapsed,
			MAE:   stats.MAE(snap.Estimates, exact),
			RelCI: meanRelCI(snap, exact),
			Walks: snap.Walks,
		})
		return true
	}
	exec.Drive(context.Background(), est, exec.Options{
		Budget:     budget,
		Interval:   interval,
		Batch:      64,
		OnSnapshot: record,
	})
	return out
}

// meanRelCI averages the per-group CI half-widths relative to the exact
// counts, over the exact result's groups; infinite widths (n<2) are skipped.
func meanRelCI(snap wj.Result, exact map[rdf.ID]float64) float64 {
	var sum float64
	n := 0
	for g, ex := range exact {
		if ex == 0 {
			continue
		}
		ci, ok := snap.CI[g]
		if !ok || ci != ci || ci > 1e300 { // NaN or +Inf
			continue
		}
		sum += ci / ex
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// trialRunner abstracts the two online engines for walk-order selection.
type trialRunner interface {
	Step()
	Snapshot() wj.Result
}

// bestOrder implements the paper's protocol of testing different walk
// orders and keeping the one with the best MAE: each valid, compilable
// order gets trial walks, and the order with the lowest MAE wins (ties keep
// the translation order). With trials <= 0 the given plan is returned
// unchanged. The paper applies this to Wander Join; we apply it to both
// online engines so neither is penalized by an avoidably dead-end-prone
// translation order.
func bestOrder(pl *query.Plan, exact map[rdf.ID]float64, trials int, mk func(*query.Plan) trialRunner) *query.Plan {
	if trials <= 0 {
		return pl
	}
	best, bestMAE := pl, trialMAE(pl, exact, trials, mk)
	for _, ord := range pl.Query.ValidOrders() {
		q2, err := pl.Query.Reorder(ord)
		if err != nil {
			continue
		}
		pl2, err := query.Compile(q2)
		if err != nil {
			continue
		}
		if mae := trialMAE(pl2, exact, trials, mk); mae < bestMAE {
			best, bestMAE = pl2, mae
		}
	}
	return best
}

func trialMAE(pl *query.Plan, exact map[rdf.ID]float64, trials int, mk func(*query.Plan) trialRunner) float64 {
	r := mk(pl)
	exec.RunN(r, trials)
	return stats.MAE(r.Snapshot().Estimates, exact)
}

// bestWJOrder picks Wander Join's best walk order by trial MAE.
func bestWJOrder(store *index.Store, pl *query.Plan, exact map[rdf.ID]float64, trials int, seed int64) *query.Plan {
	return bestOrder(pl, exact, trials, func(p *query.Plan) trialRunner {
		return wj.New(store, p, seed)
	})
}

// bestAJOrder picks Audit Join's best walk order by trial MAE.
func bestAJOrder(store *index.Store, pl *query.Plan, exact map[rdf.ID]float64, trials int, threshold float64, seed int64) *query.Plan {
	return bestOrder(pl, exact, trials, func(p *query.Plan) trialRunner {
		return core.New(store, p, core.Options{Threshold: threshold, Seed: seed})
	})
}
