package experiments

import (
	"encoding/csv"
	"fmt"
	"io"

	"kgexplore/internal/kggen"
)

// The CSV emitters write machine-readable versions of every regenerated
// artifact, so the figures can be re-plotted with external tooling.

// WriteTable1CSV writes the Table I rows.
func WriteTable1CSV(w io.Writer, infos []kggen.Info) error {
	cw := csv.NewWriter(w)
	cw.Write([]string{"dataset", "triples", "classes", "props"})
	for _, in := range infos {
		cw.Write([]string{in.Name, itoa(in.Triples), itoa(in.Classes), itoa(in.Props)})
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig8CSV writes one row per (panel, snapshot): the MAE and relative CI
// series of both algorithms plus the exact-engine runtimes.
func WriteFig8CSV(w io.Writer, rows []Fig8Row) error {
	cw := csv.NewWriter(w)
	cw.Write([]string{
		"dataset", "query", "groups", "baseline_ms", "ctj_ms",
		"t_ms", "wj_mae", "wj_relci", "aj_mae", "aj_relci", "wj_walks", "aj_walks",
	})
	for _, r := range rows {
		baseMS := fmt.Sprintf("%.3f", float64(r.BaselineTime.Microseconds())/1000)
		if r.BaselineErr != nil {
			baseMS = "DNF"
		}
		for i := range r.WJ {
			cw.Write([]string{
				r.Dataset, r.Label, itoa(r.Groups),
				baseMS,
				fmt.Sprintf("%.3f", float64(r.CTJTime.Microseconds())/1000),
				itoa(int(r.WJ[i].T.Milliseconds())),
				f(r.WJ[i].MAE), f(r.WJ[i].RelCI),
				f(r.AJ[i].MAE), f(r.AJ[i].RelCI),
				itoa(int(r.WJ[i].Walks)), itoa(int(r.AJ[i].Walks)),
			})
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTukeyCSV writes the Fig. 9 / Fig. 10 grids.
func WriteTukeyCSV(w io.Writer, cells []TukeyCell) error {
	cw := csv.NewWriter(w)
	cw.Write([]string{
		"dataset", "step", "t_ms", "n",
		"wj_q1", "wj_median", "wj_q3", "wj_whisklo", "wj_whiskhi",
		"aj_q1", "aj_median", "aj_q3", "aj_whisklo", "aj_whiskhi",
	})
	for _, c := range cells {
		cw.Write([]string{
			c.Dataset, itoa(c.Step), itoa(int(c.T.Milliseconds())), itoa(c.WJ.N),
			f(c.WJ.Q1), f(c.WJ.Median), f(c.WJ.Q3), f(c.WJ.WhiskLo), f(c.WJ.WhiskHi),
			f(c.AJ.Q1), f(c.AJ.Median), f(c.AJ.Q3), f(c.AJ.WhiskLo), f(c.AJ.WhiskHi),
		})
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig11CSV writes the rejection-rate rows.
func WriteFig11CSV(w io.Writer, rows []Fig11Row) error {
	cw := csv.NewWriter(w)
	cw.Write([]string{"dataset", "path", "step", "wj_rejection", "aj_rejection"})
	for _, r := range rows {
		cw.Write([]string{r.Dataset, itoa(r.Path), itoa(r.Step), f(r.WJRate), f(r.AJRate)})
	}
	cw.Flush()
	return cw.Error()
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
func f(v float64) string {
	return fmt.Sprintf("%.6f", v)
}
