package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kgexplore/internal/exec"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

func raceFixture(t *testing.T) (*Set, *query.Plan) {
	t.Helper()
	g := testkit.RandomGraph(61, 60, 4, 50, 2000)
	q := testkit.ChainQuery(g, []rdf.ID{60, 61}, true, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return buildSet(t, g, 4), pl
}

// TestScatterCancellationUnderLoad cancels a multi-worker scatter-gather
// mid-flight and checks the contract: a context error, plus a merged
// partial result that is still usable. Run with -race this also exercises
// the shared per-stratum caches and the publisher under concurrent
// shutdown.
func TestScatterCancellationUnderLoad(t *testing.T) {
	s, pl := raceFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	var published atomic.Int64
	var once sync.Once
	opts := exec.Options{
		Interval: time.Millisecond,
		Batch:    32,
		OnSnapshot: func(p exec.Progress) bool {
			published.Add(1)
			// Cancel externally as soon as real progress is visible.
			once.Do(cancel)
			return true
		},
	}
	res, sstats, err := RunScatter(ctx, s, pl, ScatterOptions{Seed: 2, WorkersPerShard: 3}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if published.Load() == 0 {
		t.Fatal("no snapshot published before cancellation")
	}
	// The partial result must still be a coherent merge.
	if res.Walks == 0 {
		t.Fatal("cancelled run reports zero walks despite published snapshots")
	}
	walks := int64(0)
	for _, ps := range sstats.PerShard {
		walks += ps.Walks
	}
	if walks != res.Walks {
		t.Fatalf("per-shard walks %d disagree with merged result %d", walks, res.Walks)
	}
}

// TestScatterSnapshotStop stops the run from the snapshot callback
// (consumer-initiated stop). That is a clean termination, not an error.
func TestScatterSnapshotStop(t *testing.T) {
	s, pl := raceFixture(t)
	var seen atomic.Int64
	opts := exec.Options{
		Interval: time.Millisecond,
		Batch:    32,
		OnSnapshot: func(p exec.Progress) bool {
			return seen.Add(1) < 3
		},
	}
	res, _, err := RunScatter(context.Background(), s, pl, ScatterOptions{Seed: 4, WorkersPerShard: 2}, opts)
	if err != nil {
		t.Fatalf("consumer stop must not be an error: %v", err)
	}
	if res.Walks == 0 {
		t.Fatal("stopped run lost its partial result")
	}
}

// TestScatterConcurrentRunsShareCaches runs several scatter-gathers over
// the same warm cache set concurrently — the server's steady state. Under
// -race this validates the cache's synchronization end to end.
func TestScatterConcurrentRunsShareCaches(t *testing.T) {
	s, pl := raceFixture(t)
	caches := make([]*Cache, s.K())
	for i := range caches {
		caches[i] = NewCache()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, _, err := RunScatter(context.Background(), s, pl,
				ScatterOptions{Seed: int64(100 + r), WorkersPerShard: 2, Caches: caches},
				exec.Options{MaxWalks: 3000, Batch: 64})
			if err != nil {
				errs <- err
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits := int64(0)
	for _, c := range caches {
		st := c.Stats()
		hits += st.Hits
	}
	if hits == 0 {
		t.Fatal("warm shared caches recorded no hits across concurrent runs")
	}
}

// TestScatterImmediateCancellation: a context cancelled before the run
// starts must surface promptly and leave an empty-but-valid result.
func TestScatterImmediateCancellation(t *testing.T) {
	s, pl := raceFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RunScatter(ctx, s, pl, ScatterOptions{Seed: 9, WorkersPerShard: 2}, exec.Options{MaxWalks: 100000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
