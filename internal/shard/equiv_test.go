package shard

import (
	"context"
	"math"
	"testing"

	"kgexplore/internal/exec"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
	"kgexplore/internal/testkit"
	"kgexplore/internal/wj"
)

func execOptsN(n int64) exec.Options {
	return exec.Options{MaxWalks: n, Batch: 64}
}

// shardCounts is the acceptance grid: the stratified estimator must agree
// with the monolithic one at every K.
var shardCounts = []int{1, 2, 4, 8}

// TestStratifiedGroupedCountEquivalence is the seeded equivalence property
// test: for every shard count K, merged grouped-COUNT estimates must (a)
// average out to the exact LFTJ answer across seeded runs — the K-shard
// estimator is unbiased like the 1-shard one — and (b) produce confidence
// intervals that cover the exact answer at no less than a conservative
// fraction of the nominal 0.95 rate.
func TestStratifiedGroupedCountEquivalence(t *testing.T) {
	g := testkit.RandomGraph(42, 50, 4, 40, 700)
	q := testkit.ChainQuery(g, []rdf.ID{50, 51}, true, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := testkit.BuildStore(g)
	exact := lftj.GroupCount(st, pl)
	if len(exact) == 0 {
		t.Skip("empty fixture")
	}

	const (
		runs  = 6
		walks = 4000
	)
	for _, k := range shardCounts {
		s := buildSet(t, g, k)
		sums := make(map[rdf.ID]float64)
		covered, totalCI := 0, 0
		for r := 0; r < runs; r++ {
			sc, err := NewScatter(s, pl, ScatterOptions{Seed: int64(1000*k + r)})
			if err != nil {
				t.Fatal(err)
			}
			exec.RunN(sc, walks)
			snap := sc.Snapshot()
			for a := range exact {
				sums[a] += snap.Estimates[a]
				ci := snap.CI[a]
				if math.IsInf(ci, 1) {
					continue
				}
				totalCI++
				if math.Abs(snap.Estimates[a]-float64(exact[a])) <= ci+1e-9 {
					covered++
				}
			}
		}
		for a, ex := range exact {
			mean := sums[a] / runs
			rel := math.Abs(mean-float64(ex)) / float64(ex)
			if rel > 0.15 {
				t.Errorf("K=%d group %d: mean estimate %.1f vs exact %d (rel %.3f)", k, a, mean, ex, rel)
			}
		}
		if totalCI > 0 {
			rate := float64(covered) / float64(totalCI)
			if rate < 0.7 {
				t.Errorf("K=%d: CI covered exact in %.0f%% of cases, want >= 70%% (nominal 95%%)", k, 100*rate)
			}
		}
	}
}

// TestStratifiedOwnedDistinctEquivalence: the owned-variable
// COUNT(DISTINCT) estimator must be unbiased vs. the exact answer at every
// shard count.
func TestStratifiedOwnedDistinctEquivalence(t *testing.T) {
	g := testkit.RandomGraph(17, 40, 4, 30, 500)
	q, pl := ownedDistinctQuery(t, 40, 41)
	if !Owned(pl) {
		t.Fatal("fixture query should be owned")
	}
	exact := testkit.BruteForce(g, q)
	if len(exact) == 0 {
		t.Skip("empty fixture")
	}

	const (
		runs  = 6
		walks = 4000
	)
	for _, k := range shardCounts {
		s := buildSet(t, g, k)
		sums := make(map[rdf.ID]float64)
		for r := 0; r < runs; r++ {
			res, sstats, err := RunScatter(context.Background(), s, pl,
				ScatterOptions{Seed: int64(7000*k + r)}, execOptsN(walks))
			if err != nil {
				t.Fatal(err)
			}
			if !sstats.OwnedDistinct || sstats.ExactFallback {
				t.Fatalf("K=%d: owned distinct did not take the stratified path (%+v)", k, sstats)
			}
			for a := range exact {
				sums[a] += res.Estimates[a]
			}
		}
		for a, ex := range exact {
			mean := sums[a] / runs
			rel := math.Abs(mean-ex) / ex
			if rel > 0.15 {
				t.Errorf("K=%d group %d: mean distinct estimate %.2f vs exact %.0f (rel %.3f)", k, a, mean, ex, rel)
			}
		}
	}
}

// TestScatterAllocationProportional checks the stratified allocation rule:
// with MaxWalks fixed, per-stratum walk counts track root cardinalities.
func TestScatterAllocationProportional(t *testing.T) {
	g := testkit.RandomGraph(23, 40, 4, 30, 600)
	q := testkit.ChainQuery(g, []rdf.ID{40, 41}, true, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	s := buildSet(t, g, 4)
	const walks = 8000
	_, sstats, err := RunScatter(context.Background(), s, pl, ScatterOptions{Seed: 3}, execOptsN(walks))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ps := range sstats.PerShard {
		total += ps.RootCard
	}
	if total == 0 {
		t.Skip("empty root")
	}
	for k, ps := range sstats.PerShard {
		if ps.RootCard == 0 {
			if ps.Walks != 0 {
				t.Errorf("shard %d: empty stratum performed %d walks", k, ps.Walks)
			}
			continue
		}
		want := float64(walks) * float64(ps.RootCard) / float64(total)
		if math.Abs(float64(ps.Walks)-want) > want/2+float64(execOptsN(0).Batch)+1 {
			t.Errorf("shard %d: %d walks, want ≈ %.0f (card %d/%d)", k, ps.Walks, want, ps.RootCard, total)
		}
	}
}

// TestScatterMatchesAvgAndSum drives SUM and AVG through the scatter path
// against the brute-force oracle.
func TestScatterMatchesAvgAndSum(t *testing.T) {
	g := testkit.RandomGraph(8, 8, 3, 5, 70) // object half numeric literals
	for _, agg := range []query.AggFunc{query.AggSum, query.AggAvg} {
		q := testkit.ChainQuery(g, []rdf.ID{8, 9}, true, false)
		q.Agg = agg
		pl, err := query.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		exact := testkit.BruteForce(g, q)
		if len(exact) == 0 {
			continue
		}
		s := buildSet(t, g, 2)
		sc, err := NewScatter(s, pl, ScatterOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		exec.RunN(sc, 200000)
		snap := sc.Snapshot()
		for a, ex := range exact {
			rel := math.Abs(snap.Estimates[a]-ex) / math.Abs(ex)
			if rel > 0.2 {
				t.Errorf("agg=%v group %d: %.3f vs %.3f", agg, a, snap.Estimates[a], ex)
			}
		}
	}
}

// TestShardFilterEquivalence: FILTER semantics survive sharding — the
// resolver-backed exact enumeration matches the single-store oracle and the
// scatter estimator stays unbiased for the FILTERED totals (rejected walks
// are zero-weight HT draws in every stratum).
func TestShardFilterEquivalence(t *testing.T) {
	g := testkit.RandomGraph(12, 30, 4, 20, 400)
	q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
	q.Filters = []query.Filter{{Op: query.CmpGt, L: query.EVar(q.Beta), R: query.ENum(5)}}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	exact := testkit.BruteForce(g, q)
	if len(exact) == 0 {
		t.Skip("empty fixture")
	}
	total := 0.0
	for _, v := range exact {
		total += v
	}
	for _, k := range []int{2, 4} {
		s := buildSet(t, g, k)
		got, err := s.ExactCtx(context.Background(), pl)
		if err != nil {
			t.Fatal(err)
		}
		if !testkit.MapsEqual(got, exact, 1e-9) {
			t.Errorf("K=%d: sharded exact %v, oracle %v", k, got, exact)
		}
		sc, err := NewScatter(s, pl, ScatterOptions{Seed: int64(90 + k)})
		if err != nil {
			t.Fatal(err)
		}
		exec.RunN(sc, 40000)
		snap := sc.Snapshot()
		est := 0.0
		for _, v := range snap.Estimates {
			est += v
		}
		if tol := 0.25*total + 2; math.Abs(est-total) > tol {
			t.Errorf("K=%d: filtered scatter estimate %.1f vs exact %.1f", k, est, total)
		}
	}
}

// TestWalkerMergePlusStratifiedEqualsScatter pins the algebra RunScatter
// relies on: pooling same-stratum walkers with Merge and then combining
// strata with MergeStratified matches the walk-weighted stratified math.
func TestWalkerMergePlusStratifiedEqualsScatter(t *testing.T) {
	g := testkit.RandomGraph(31, 30, 3, 25, 400)
	q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	s := buildSet(t, g, 2)
	var accs []*wj.Acc
	for k := 0; k < s.K(); k++ {
		cache := NewCache()
		m := wj.NewAcc()
		for j := 0; j < 2; j++ {
			w, err := NewWalker(s, pl, k, WalkerOptions{Seed: int64(10*k + j), Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			if w.RootCard() == 0 {
				continue
			}
			exec.RunN(w, 2000)
			m.Merge(w.Acc())
		}
		if m.N > 0 {
			accs = append(accs, m)
		}
	}
	res := wj.MergeStratified(accs, stats.Z95)
	// Manual stratified math over the same accumulators.
	for a := range res.Estimates {
		var want float64
		for _, c := range accs {
			want += c.Sum[a] / float64(c.N)
		}
		if math.Abs(res.Estimates[a]-want) > 1e-9 {
			t.Fatalf("group %d: MergeStratified %v, manual %v", a, res.Estimates[a], want)
		}
	}
}
