package shard

import (
	"sync"
	"sync/atomic"

	"kgexplore/internal/rdf"
)

// maxIfaceVals mirrors ctj's cache-key capacity: interface variables plus
// the bound α/β extras must fit in one fixed array.
const maxIfaceVals = 8

// aggKey identifies a cached suffix aggregation: the boundary step plus the
// values of its interface variables and the already-bound α/β.
type aggKey struct {
	step int8
	vals [maxIfaceVals]rdf.ID
}

// suffixEntry is one (α, β) group of an exactly-enumerated suffix: a and b
// are the bound values (NoID when unbound by the suffix) and n the number
// of suffix paths carrying them.
type suffixEntry struct {
	a, b rdf.ID
	n    int64
}

// groupEntry memoizes the owned-distinct estimator's per-value work: the
// distinct groups reachable from root subject v (over every root triple
// with that subject and every cross-shard completion) and the number of
// such root triples in the owning shard.
type groupEntry struct {
	groups []rdf.ID
	rootN  int
}

// Cache is the per-stratum shared suffix cache of the scatter-gather Audit
// Join — the sharded analog of ctj.SharedCache. One Cache serves all
// walkers of a stratum's pool and survives across requests for warm
// starts. Lookups take a read lock; fills happen outside any lock and are
// published first-write-wins, so racing walkers may duplicate a
// computation but never see a torn entry.
type Cache struct {
	mu     sync.RWMutex
	agg    map[aggKey][]suffixEntry
	groups map[rdf.ID]groupEntry

	hits, misses atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		agg:    make(map[aggKey][]suffixEntry),
		groups: make(map[rdf.ID]groupEntry),
	}
}

// CacheStats counts cache traffic.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

func (c *Cache) getAgg(k aggKey) ([]suffixEntry, bool) {
	c.mu.RLock()
	v, ok := c.agg[k]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// putAgg publishes a computed aggregation; if another walker won the race,
// the incumbent is returned so all callers agree on one slice.
func (c *Cache) putAgg(k aggKey, v []suffixEntry) []suffixEntry {
	c.mu.Lock()
	if cur, ok := c.agg[k]; ok {
		c.mu.Unlock()
		return cur
	}
	c.agg[k] = v
	c.mu.Unlock()
	return v
}

func (c *Cache) getGroups(v rdf.ID) (groupEntry, bool) {
	c.mu.RLock()
	e, ok := c.groups[v]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

func (c *Cache) putGroups(v rdf.ID, e groupEntry) groupEntry {
	c.mu.Lock()
	if cur, ok := c.groups[v]; ok {
		c.mu.Unlock()
		return cur
	}
	c.groups[v] = e
	c.mu.Unlock()
	return e
}
