package shard

import (
	"kgexplore/internal/card"
	"kgexplore/internal/query"
)

// The sharded tipping oracle is the card.Suffix of the run's estimator over
// ALL shard stores: the disjoint partition makes set-level sums exact for
// cardinalities and a safe upper bound for ndv (subjects never repeat across
// shards, so their sums are exact too; predicate/object ndv sums may
// overcount, which only makes the oracle tip EARLIER — a performance knob,
// never a bias). Prefix-adjacent steps are resolved exactly through the
// resolver: the total candidate width across shards.

// resolverWidth adapts the set resolver to card.SpanResolver. The resolver
// already reports width 1 for a satisfied membership step, matching the
// single-store StoreResolver convention.
type resolverWidth struct {
	res *resolver
}

func (rw resolverWidth) ResolveWidth(step int, b query.Bindings) (float64, bool) {
	var buf [8]subspan
	_, total, ok := rw.res.resolve(step, b, buf[:0])
	return float64(total), ok
}

// setEstimator resolves the run's estimator: the caller's choice, or span
// statistics over the set's in-process stores by default. Hybrid sets see
// only their local shards' statistics — tipping estimates then skew low,
// which only makes walks tip to the exact finish earlier (a performance
// knob, never a bias).
func setEstimator(set *Set, est card.Estimator) card.Estimator {
	if est != nil {
		return est
	}
	return card.NewSpanStats(set.localStores()...)
}
