package shard

import (
	"kgexplore/internal/index"
	"kgexplore/internal/query"
)

// Set-level statistics: the disjoint partition makes per-shard sums exact
// for cardinalities and a safe upper bound for ndv (subjects never repeat
// across shards, so their sums are exact too; predicate/object ndv sums
// may overcount, which only makes the tipping oracle tip EARLIER — a
// performance knob, never a bias).

func (s *Set) patternCard(p query.Pattern) int {
	n := 0
	for _, st := range s.stores {
		n += query.PatternCard(st, p)
	}
	return n
}

func (s *Set) patternVarNdv(p query.Pattern, pos index.Pos) int {
	n := 0
	for _, st := range s.stores {
		n += query.PatternVarNdv(st, p, pos)
	}
	if card := s.patternCard(p); n > card {
		n = card
	}
	return n
}

// suffixOracle is the sharded mirror of query.SuffixEstimator: it
// implements core's TippingOracle shape over set-level statistics, with the
// prefix-adjacent branch resolved through the resolver (total candidate
// width across shards).
type suffixOracle struct {
	res *resolver
	// factor[j] is the set-level card(G_j) / ∏ max(ndv_here, ndv_site)
	// statistics contribution of step j when it is not prefix-adjacent.
	factor []float64
	// adjFrom[j] is the earliest prefix end at which all of step j's join
	// variables are bound; len(Steps) when it has none.
	adjFrom []int
}

func newSuffixOracle(res *resolver) *suffixOracle {
	pl := res.pl
	n := len(pl.Steps)
	e := &suffixOracle{res: res, factor: make([]float64, n), adjFrom: make([]int, n)}
	firstBound := make([]int, pl.NumVars())
	for i := range pl.Steps {
		for _, vp := range pl.Steps[i].NewVars {
			firstBound[vp.Var] = i
		}
	}
	set := res.set
	ndvAtSite := func(v query.Var) int {
		for s := range pl.Steps {
			for _, vp := range pl.Steps[s].NewVars {
				if vp.Var == v {
					return set.patternVarNdv(pl.Steps[s].Pattern, vp.Pos)
				}
			}
		}
		return 1
	}
	for j := range pl.Steps {
		st := &pl.Steps[j]
		e.adjFrom[j] = n
		if len(st.JoinVars) > 0 {
			e.adjFrom[j] = 0
			for _, jv := range st.JoinVars {
				if fb := firstBound[jv.Var]; fb > e.adjFrom[j] {
					e.adjFrom[j] = fb
				}
			}
		}
		f := float64(set.patternCard(st.Pattern))
		for _, jv := range st.JoinVars {
			ndvHere := set.patternVarNdv(st.Pattern, jv.Pos)
			ndvThere := ndvAtSite(jv.Var)
			d := ndvHere
			if ndvThere > d {
				d = ndvThere
			}
			if d > 0 {
				f /= float64(d)
			}
		}
		e.factor[j] = f
	}
	return e
}

// EstimateSuffix estimates the number of full paths extending a walk prefix
// that has just completed step i under bindings b — query.SuffixEstimator
// semantics over the union of shards.
func (e *suffixOracle) EstimateSuffix(i int, b query.Bindings) float64 {
	pl := e.res.pl
	est := 1.0
	var buf [8]subspan
	for j := i + 1; j < len(pl.Steps); j++ {
		if e.adjFrom[j] <= i {
			_, total, ok := e.res.resolve(j, b, buf[:0])
			if !ok {
				return 0
			}
			st := &pl.Steps[j]
			if st.Kind != query.AccessMembership {
				est *= float64(total)
			}
			continue
		}
		est *= e.factor[j]
		if est == 0 {
			return 0
		}
	}
	return est
}
