package shard

import (
	"context"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/wj"
)

// Exact evaluates the plan exactly over the whole sharded set by
// resolver-backed backtracking enumeration — the sharded analog of a full
// LFTJ pass, with the owner fast path pruning bound-subject steps to one
// shard. It is the documented fallback for COUNT(DISTINCT) plans whose
// distinct variable the partition key does not own: the per-shard distinct
// sets cannot be merged by addition, so the union is computed exactly.
func (s *Set) Exact(pl *query.Plan) map[rdf.ID]float64 {
	res, _ := s.ExactCtx(context.Background(), pl)
	return res
}

// ExactCtx is Exact with cooperative cancellation: the enumeration checks
// ctx every few thousand result rows and returns ctx.Err with a nil map
// when it fires.
func (s *Set) ExactCtx(ctx context.Context, pl *query.Plan) (map[rdf.ID]float64, error) {
	r, err := newResolver(s, pl)
	if err != nil {
		return nil, err
	}
	q := pl.Query
	b := pl.NewBindings()
	counts := make(map[rdf.ID]float64)
	var den map[rdf.ID]float64
	if q.Agg == query.AggAvg {
		den = make(map[rdf.ID]float64)
	}
	var seen map[uint64]struct{}
	if q.Distinct {
		seen = make(map[uint64]struct{})
	}
	rows := 0
	err = r.enumerate(0, b, func() error {
		rows++
		if rows%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		a := wj.GlobalGroup
		if q.Alpha != query.NoVar {
			a = b[q.Alpha]
		}
		switch q.Agg {
		case query.AggSum:
			if v, ok := s.Numeric(b[q.Beta]); ok {
				counts[a] += v
			}
		case query.AggAvg:
			if v, ok := s.Numeric(b[q.Beta]); ok {
				counts[a] += v
				den[a]++
			}
		default:
			if q.Distinct {
				key := wj.DistinctKey(a, b[q.Beta])
				if _, dup := seen[key]; dup {
					return nil
				}
				seen[key] = struct{}{}
			}
			counts[a]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := r.viewErr(); err != nil {
		// A remote shard failed mid-enumeration; the counts are incomplete.
		return nil, err
	}
	if q.Agg == query.AggAvg {
		for a, d := range den {
			if d > 0 {
				counts[a] /= d
			}
		}
	}
	return counts, nil
}
