package shard

import (
	"context"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/wj"
)

// Exact evaluates the plan exactly over the whole sharded set by
// resolver-backed backtracking enumeration — the sharded analog of a full
// LFTJ pass, with the owner fast path pruning bound-subject steps to one
// shard. It is the documented fallback for COUNT(DISTINCT) plans whose
// distinct variable the partition key does not own: the per-shard distinct
// sets cannot be merged by addition, so the union is computed exactly.
func (s *Set) Exact(pl *query.Plan) map[rdf.ID]float64 {
	res, _ := s.ExactCtx(context.Background(), pl)
	return res
}

// ExactCtx is Exact with cooperative cancellation: the enumeration checks
// ctx every few thousand result rows and returns ctx.Err with a nil map
// when it fires.
func (s *Set) ExactCtx(ctx context.Context, pl *query.Plan) (map[rdf.ID]float64, error) {
	q := pl.Query
	counts := make(map[rdf.ID]float64)
	var den map[rdf.ID]float64
	if q.Agg == query.AggAvg {
		den = make(map[rdf.ID]float64)
	}
	var seen map[uint64]struct{}
	if q.Distinct {
		seen = make(map[uint64]struct{})
	}
	if err := s.exactInto(ctx, pl, counts, den, seen); err != nil {
		return nil, err
	}
	if q.Agg == query.AggAvg {
		for a, d := range den {
			if d > 0 {
				counts[a] /= d
			}
		}
	}
	return counts, nil
}

// ExactUnionCtx evaluates a compiled union exactly over the sharded set
// under SPARQL bag semantics: COUNT and SUM add across branches, AVG is the
// ratio of the summed per-branch numerators and denominators, and
// COUNT(DISTINCT) deduplicates (group, β) pairs ACROSS branches via one
// shared value set threaded through the per-branch enumerations.
func (s *Set) ExactUnionCtx(ctx context.Context, up *query.UnionPlan) (map[rdf.ID]float64, error) {
	q := up.Query
	counts := make(map[rdf.ID]float64)
	var den map[rdf.ID]float64
	if q.Agg() == query.AggAvg {
		den = make(map[rdf.ID]float64)
	}
	var seen map[uint64]struct{}
	if q.Distinct() {
		seen = make(map[uint64]struct{})
	}
	for _, pl := range up.Plans {
		if err := s.exactInto(ctx, pl, counts, den, seen); err != nil {
			return nil, err
		}
	}
	if q.Agg() == query.AggAvg {
		for a, d := range den {
			if d > 0 {
				counts[a] /= d
			}
		}
	}
	return counts, nil
}

// exactInto enumerates one plan through the resolver and accumulates into
// the caller's maps: sums (or counts) into counts, AVG denominators into
// den, and the distinct (group, β) dedup keys into seen (nil when the query
// is not DISTINCT).
func (s *Set) exactInto(ctx context.Context, pl *query.Plan, counts, den map[rdf.ID]float64, seen map[uint64]struct{}) error {
	r, err := newResolver(s, pl)
	if err != nil {
		return err
	}
	q := pl.Query
	b := pl.NewBindings()
	rows := 0
	err = r.enumerate(0, b, func() error {
		rows++
		if rows%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		a := wj.GlobalGroup
		if q.Alpha != query.NoVar {
			a = b[q.Alpha]
		}
		switch q.Agg {
		case query.AggSum:
			if v, ok := s.Numeric(b[q.Beta]); ok {
				counts[a] += v
			}
		case query.AggAvg:
			if v, ok := s.Numeric(b[q.Beta]); ok {
				counts[a] += v
				den[a]++
			}
		default:
			if seen != nil {
				key := wj.DistinctKey(a, b[q.Beta])
				if _, dup := seen[key]; dup {
					return nil
				}
				seen[key] = struct{}{}
			}
			counts[a]++
		}
		return nil
	})
	if err != nil {
		return err
	}
	// A remote shard failing mid-enumeration leaves the counts incomplete.
	return r.viewErr()
}
