package shard

import (
	"errors"
	"fmt"
	"math/rand"

	"kgexplore/internal/card"
	"kgexplore/internal/core"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// ErrDistinctNotOwned reports a COUNT(DISTINCT) plan whose distinct
// variable is not owned by the partition key; per-stratum estimation would
// double-count values across shards, so callers must use Set.Exact (which
// RunScatter does automatically).
var ErrDistinctNotOwned = errors.New(
	"shard: COUNT(DISTINCT) with a distinct variable the partition key does not own; fall back to Set.Exact")

// Owned reports whether COUNT(DISTINCT) over this plan can be estimated
// stratum-locally. The condition is ownership of the distinct variable by
// the partition key: β is the SUBJECT of the root pattern, so every
// distinct (group, β-value) pair is witnessed only by root triples in the
// shard that β's value hashes to, and per-stratum distinct estimates sum
// without cross-shard double counting. The subject-restricted root access
// must also be servable by the four index orders (it is not when the root
// has a constant object but a variable predicate), because the estimator
// needs the EXACT per-value root count n_v, not an estimate.
func Owned(pl *query.Plan) bool {
	q := pl.Query
	if !q.Distinct {
		return false
	}
	st0 := &pl.Steps[0]
	s := st0.Pattern.S
	if !s.IsVar() || s.Var != q.Beta {
		return false
	}
	mask := st0.Bound
	mask[index.S] = true
	_, _, err := query.AccessFor(mask)
	return err == nil
}

// WalkerOptions configure one stratum walker.
type WalkerOptions struct {
	// Threshold is the Audit Join tipping point, with core.Options
	// semantics: estimated suffix sizes at or below it switch the walk to
	// the exact finish. Negative never tips (pure Wander Join sampling);
	// +Inf always tips.
	Threshold float64
	// Seed seeds the walker's private random source.
	Seed int64
	// Cache is the stratum's shared suffix cache; nil creates a private
	// one. All walkers of one stratum's pool should share a Cache.
	Cache *Cache
	// Estimator drives the tipping oracle and the stratum's root-cardinality
	// weight; nil selects span statistics over the whole set. Root counts are
	// exact under every shipped estimator, so walk allocation does not depend
	// on the choice.
	Estimator card.Estimator
	// Root, when non-nil, restricts this walker to one SEMANTIC sub-stratum
	// of the shard's root span (index.StratifyRoots over the shard store):
	// roots sample uniformly from the sub-stratum and the inverse
	// probability uses its size, nesting characteristic-set strata inside
	// the shard strata. The (shard × bucket) leaves stay disjoint, so their
	// accumulators flat-merge through wj.MergeStratified.
	Root *index.RootStratum
}

// Walker runs stratified Audit Join walks for ONE stratum of a sharded
// set: stratum k covers exactly the join paths whose root triple lives in
// shard k. The root step samples from shard k's root span alone (d_1 = that
// span's length); every later step resolves and samples over the union of
// all shards through the resolver, so the stratum's Horvitz–Thompson
// estimate is unbiased for the stratum total. Tipped walks finish exactly
// by a resolver-backed suffix enumeration memoized in the stratum Cache —
// the sharded counterpart of Audit Join's CTJ finish.
//
// A Walker is an exec.Stepper; it is not safe for concurrent use — create
// one per goroutine and share the Cache.
type Walker struct {
	set     *Set
	pl      *query.Plan
	stratum int
	res     *resolver
	oracle  card.Suffix
	cache   *Cache
	thresh  float64
	rng     *rand.Rand
	acc     *wj.Acc

	// b is the walk binding buffer, gb the enumeration scratch buffer
	// (owned-distinct group computation must not disturb a walk in
	// progress), subBuf the reusable span-gather buffer.
	b      query.Bindings
	gb     query.Bindings
	subBuf []subspan

	// iface[i] lists the interface variables of boundary i (ctj's cache-key
	// discipline): bound before i, used at or after i.
	iface [][]query.Var

	rootSpan index.Span
	rootLen  int
	// root is the optional semantic sub-stratum restriction (nil samples the
	// whole shard root span); when set, rootLen is the sub-stratum size.
	root *index.RootStratum
	// rootCard is the stratum weight reported to the scatter allocator,
	// answered by the estimator (exactly, for both shipped estimators).
	rootCard int

	// owned-distinct state (see Owned): the access for the root pattern
	// restricted to one subject value.
	owned    bool
	ownKind  query.AccessKind
	ownOrder index.Order

	perGroup   map[rdf.ID]float64
	perGroupND map[rdf.ID]numDen

	tipped int64
	diag   core.TipDiag
}

type numDen struct{ num, den float64 }

// NewWalker creates the stratum walker. It fails with ErrDistinctNotOwned
// for distinct plans the stratified estimator cannot serve.
func NewWalker(set *Set, pl *query.Plan, stratum int, opts WalkerOptions) (*Walker, error) {
	if pl.Query.Distinct && !Owned(pl) {
		return nil, ErrDistinctNotOwned
	}
	if set.stores[stratum] == nil {
		// Root sampling, the owned-distinct n_v lookup and the allocation
		// weight all need direct store access; later steps may be remote.
		return nil, fmt.Errorf("shard: stratum %d is not local to this process", stratum)
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewCache()
	}
	res, err := newResolver(set, pl)
	if err != nil {
		return nil, err
	}
	est := setEstimator(set, opts.Estimator)
	w := &Walker{
		set:        set,
		pl:         pl,
		stratum:    stratum,
		res:        res,
		oracle:     est.NewSuffix(pl, resolverWidth{res}),
		cache:      cache,
		thresh:     opts.Threshold,
		rng:        rand.New(rand.NewSource(opts.Seed)),
		acc:        wj.NewAcc(),
		b:          pl.NewBindings(),
		gb:         pl.NewBindings(),
		perGroup:   make(map[rdf.ID]float64),
		perGroupND: make(map[rdf.ID]numDen),
	}

	// Root span of this stratum. Step 0 has no join variables, so it is
	// always static; the stratum view absorbs the static-span cache either
	// way.
	st0 := &pl.Steps[0]
	var ss query.StaticSpan
	ss.Span, ss.OK = res.views[stratum].Resolve(0, pl.NewBindings())
	if ss.OK {
		w.rootSpan = ss.Span
		if st0.Kind == query.AccessMembership {
			w.rootLen = 1
		} else {
			w.rootLen = ss.Span.Len()
		}
	}
	if opts.Root != nil {
		// Semantic sub-stratum: roots draw from the restricted segment set.
		// The membership-root case never stratifies (callers check), so
		// rootLen is always the sub-stratum size here.
		w.root = opts.Root
		w.rootLen = opts.Root.Total
	}
	// The allocator weight comes from the estimator scoped to this stratum's
	// store, not from the span directly: both shipped estimators answer root
	// counts exactly, so this equals rootLen while keeping every budget
	// decision behind the card layer. A sub-stratified walker's weight is its
	// sub-stratum size, exact by construction.
	if w.root != nil {
		w.rootCard = w.root.Total
	} else {
		w.rootCard = int(est.Scope(set.stores[stratum]).RootCount(pl).Value)
	}

	// ctj-style interface variables for suffix-cache keys.
	n := len(pl.Steps)
	firstBound := make([]int, pl.NumVars())
	lastUse := make([]int, pl.NumVars())
	for v := range firstBound {
		firstBound[v], lastUse[v] = -1, -1
	}
	for i, st := range pl.Steps {
		for _, a := range []query.Atom{st.Pattern.S, st.Pattern.P, st.Pattern.O} {
			if a.IsVar() {
				if firstBound[a.Var] == -1 {
					firstBound[a.Var] = i
				}
				lastUse[a.Var] = i
			}
		}
		// A filter anchored at step i reads its variables at i; without this
		// the variable drops out of intermediate interfaces and the stratum
		// cache serves suffixes across bindings the filter distinguishes.
		for _, fi := range st.Filters {
			for _, v := range pl.Query.Filters[fi].Vars() {
				if lastUse[v] < i {
					lastUse[v] = i
				}
			}
		}
	}
	w.iface = make([][]query.Var, n+1)
	for i := 0; i <= n; i++ {
		for v := 0; v < pl.NumVars(); v++ {
			if firstBound[v] >= 0 && firstBound[v] < i && lastUse[v] >= i {
				w.iface[i] = append(w.iface[i], query.Var(v))
			}
		}
	}

	if pl.Query.Distinct {
		w.owned = true
		mask := st0.Bound
		mask[index.S] = true
		kind, order, err := query.AccessFor(mask)
		if err != nil {
			return nil, ErrDistinctNotOwned // unreachable: Owned checked above
		}
		w.ownKind, w.ownOrder = kind, order
	}
	return w, nil
}

// RootCard returns the stratum's root-pattern cardinality — the weight the
// proportional walk allocation uses — as answered by the estimator.
func (w *Walker) RootCard() int { return w.rootCard }

// Step performs one stratified walk.
func (w *Walker) Step() {
	w.acc.N++
	if w.rootLen == 0 {
		// Empty stratum: its true total is zero, every walk rejects. The
		// driver normally allocates no walks here.
		w.acc.Rejected++
		return
	}
	if w.owned {
		w.stepOwned()
		return
	}
	b := w.b
	b.Reset()
	st0 := &w.pl.Steps[0]
	prodD := 1.0
	if st0.Kind != query.AccessMembership {
		st0.Bind(w.sampleRoot(st0), b)
		prodD = float64(w.rootLen)
		// A failed FILTER rejects the walk — a zero-weight HT draw — exactly
		// as in the single-store runners, so stratum estimates stay unbiased
		// for the filtered totals.
		if len(st0.Filters) > 0 && !w.pl.StepFiltersOK(0, w.set, b) {
			w.acc.Rejected++
			return
		}
	}
	last := len(w.pl.Steps) - 1
	for i := 0; ; i++ {
		if i > 0 {
			st := &w.pl.Steps[i]
			subs, total, ok := w.res.resolve(i, b, w.subBuf[:0])
			w.subBuf = subs[:0]
			if !ok {
				w.acc.Rejected++
				return
			}
			if st.Kind != query.AccessMembership {
				t := w.res.sample(i, subs, total, w.rng)
				st.Bind(t, b)
				prodD *= float64(total)
				if len(st.Filters) > 0 && !w.pl.StepFiltersOK(i, w.set, b) {
					w.acc.Rejected++
					return
				}
			}
		}
		if i == last {
			w.finish(i, b, prodD, 0, false)
			return
		}
		if est := w.oracle.Estimate(i, b); est <= w.thresh {
			w.tipped++
			w.finish(i, b, prodD, est, true)
			return
		}
	}
}

// sampleRoot draws a uniform root triple: from the semantic sub-stratum
// when one is set, otherwise from the shard's whole root span. Both draw
// from exactly rootLen triples, so prodD = rootLen either way.
func (w *Walker) sampleRoot(st0 *query.Step) rdf.Triple {
	store := w.set.stores[w.stratum]
	if w.root != nil {
		return w.root.Sample(store, st0.Order, w.rng)
	}
	return store.At(st0.Order, w.rootSpan, w.rng.Intn(w.rootLen))
}

// stepOwned is the owned-distinct walk: sample a root triple uniformly
// from the stratum root span, look up (memoized) the distinct groups
// reachable from its subject v and the exact count n_v of root triples
// with that subject, and credit rootLen/n_v to each group. Summed over
// walks and divided by N this is unbiased for the stratum's per-group
// distinct count: each subject is drawn with probability n_v/rootLen and
// contributes rootLen/n_v once per group it reaches.
func (w *Walker) stepOwned() {
	st0 := &w.pl.Steps[0]
	t := w.sampleRoot(st0)
	groups, nv := w.groupsOf(t.S)
	if len(groups) == 0 || nv == 0 {
		w.acc.Rejected++
		return
	}
	x := float64(w.rootLen) / float64(nv)
	for _, a := range groups {
		w.acc.Add(a, x)
	}
}

func (w *Walker) groupsOf(v rdf.ID) ([]rdf.ID, int) {
	if ge, ok := w.cache.getGroups(v); ok {
		return ge.groups, ge.rootN
	}
	ge := w.cache.putGroups(v, w.computeGroups(v))
	return ge.groups, ge.rootN
}

// rootSpanFor resolves the root pattern restricted to subject v on the
// stratum store — the n_v lookup. Exact by construction: Owned rejected
// the one access combination the orders cannot serve.
func (w *Walker) rootSpanFor(v rdf.ID) (index.Span, int) {
	st := w.set.stores[w.stratum]
	p := w.pl.Steps[0].Pattern
	switch w.ownKind {
	case query.AccessL1:
		sp := st.SpanL1(index.SPO, v)
		return sp, sp.Len()
	case query.AccessL2:
		sp := st.SpanL2(index.PSO, p.P.ID, v)
		return sp, sp.Len()
	default: // membership: predicate and object constant
		if st.Contains(rdf.Triple{S: v, P: p.P.ID, O: p.O.ID}) {
			return index.Span{}, 1
		}
		return index.Span{}, 0
	}
}

func (w *Walker) computeGroups(v rdf.ID) groupEntry {
	sp, n := w.rootSpanFor(v)
	if n == 0 {
		return groupEntry{}
	}
	st0 := &w.pl.Steps[0]
	store := w.set.stores[w.stratum]
	q := w.pl.Query
	b := w.gb
	b.Reset()
	seen := make(map[rdf.ID]struct{})
	visit := func() error {
		a := wj.GlobalGroup
		if q.Alpha != query.NoVar {
			a = b[q.Alpha]
		}
		seen[a] = struct{}{}
		return nil
	}
	// Root-anchored filters gate each enumeration; deeper anchors are
	// enforced inside the resolver's enumerate.
	rootOK := func() bool {
		return len(st0.Filters) == 0 || w.pl.StepFiltersOK(0, w.set, b)
	}
	if w.ownKind == query.AccessMembership {
		st0.Bind(rdf.Triple{S: v, P: st0.Pattern.P.ID, O: st0.Pattern.O.ID}, b)
		if rootOK() {
			_ = w.res.enumerate(1, b, visit)
		}
	} else {
		for i := 0; i < sp.Len(); i++ {
			st0.Bind(store.At(w.ownOrder, sp, i), b)
			if rootOK() {
				_ = w.res.enumerate(1, b, visit)
			}
		}
	}
	st0.Unbind(b)
	groups := make([]rdf.ID, 0, len(seen))
	for a := range seen {
		groups = append(groups, a)
	}
	return groupEntry{groups: groups, rootN: n}
}

// finish completes a walk exactly: enumerate (or fetch from the stratum
// cache) the suffix aggregation beyond step i and credit each group with
// its path count scaled by the sampled prefix's inverse probability ∏ d_j —
// core.Runner's finish over the resolver instead of a single-store CTJ.
// Tipped walks additionally record the oracle's estimate against the exact
// suffix size the aggregation just computed (free estimate-vs-actual
// diagnostics, mirroring core.Runner).
func (w *Walker) finish(i int, b query.Bindings, prodD, tipEst float64, tipped bool) {
	agg := w.suffixAgg(i, b)
	if tipped {
		var actual float64
		for _, e := range agg {
			actual += float64(e.n)
		}
		w.diag.Observe(tipEst, actual)
	}
	if len(agg) == 0 {
		w.acc.Rejected++
		return
	}
	switch w.pl.Query.Agg {
	case query.AggSum:
		clear(w.perGroup)
		for _, e := range agg {
			if v, ok := w.set.Numeric(e.b); ok {
				w.perGroup[e.a] += v * float64(e.n) * prodD
			}
		}
		for a, x := range w.perGroup {
			w.acc.Add(a, x)
		}
	case query.AggAvg:
		clear(w.perGroupND)
		for _, e := range agg {
			if v, ok := w.set.Numeric(e.b); ok {
				cur := w.perGroupND[e.a]
				cur.num += v * float64(e.n) * prodD
				cur.den += float64(e.n) * prodD
				w.perGroupND[e.a] = cur
			}
		}
		for a, x := range w.perGroupND {
			w.acc.AddRatio(a, x.num, x.den)
		}
	default: // COUNT
		clear(w.perGroup)
		for _, e := range agg {
			w.perGroup[e.a] += float64(e.n) * prodD
		}
		for a, x := range w.perGroup {
			w.acc.Add(a, x)
		}
	}
}

func (w *Walker) suffixAgg(i int, b query.Bindings) []suffixEntry {
	k, ok := w.aggKeyAt(i+1, b)
	if !ok {
		return w.computeSuffixAgg(i, b)
	}
	if agg, hit := w.cache.getAgg(k); hit {
		return agg
	}
	return w.cache.putAgg(k, w.computeSuffixAgg(i, b))
}

// aggKeyAt builds the cache key for boundary step: the interface variable
// values plus the already-bound α/β (ctj.SuffixAgg's key discipline). ok is
// false when the values do not fit the fixed key, in which case the caller
// computes uncached.
func (w *Walker) aggKeyAt(step int, b query.Bindings) (aggKey, bool) {
	q := w.pl.Query
	k := aggKey{step: int8(step)}
	i := 0
	for _, v := range w.iface[step] {
		if i >= maxIfaceVals {
			return k, false
		}
		k.vals[i] = b[v]
		i++
	}
	for _, v := range []query.Var{q.Alpha, q.Beta} {
		if i >= maxIfaceVals {
			return k, false
		}
		if v != query.NoVar {
			k.vals[i] = b[v]
		} else {
			k.vals[i] = rdf.NoID
		}
		i++
	}
	for ; i < maxIfaceVals; i++ {
		k.vals[i] = rdf.NoID
	}
	return k, true
}

func (w *Walker) computeSuffixAgg(i int, b query.Bindings) []suffixEntry {
	q := w.pl.Query
	type akey struct{ a, b rdf.ID }
	idx := make(map[akey]int)
	var out []suffixEntry
	_ = w.res.enumerate(i+1, b, func() error {
		a, bb := rdf.NoID, rdf.NoID
		if q.Alpha != query.NoVar {
			a = b[q.Alpha]
		}
		if q.Beta != query.NoVar {
			bb = b[q.Beta]
		}
		ak := akey{a, bb}
		if j, ok := idx[ak]; ok {
			out[j].n++
			return nil
		}
		idx[ak] = len(out)
		out = append(out, suffixEntry{a: a, b: bb, n: 1})
		return nil
	})
	return out
}

// Walks returns the number of walks performed; with Step and Snapshot it
// makes the Walker an exec.Stepper.
func (w *Walker) Walks() int64 { return w.acc.N }

// Snapshot returns the STRATUM estimate (sum/N over this stratum's walks)
// with 0.95 intervals. Global results come from merging stratum
// accumulators with wj.MergeStratified.
func (w *Walker) Snapshot() wj.Result { return w.acc.Snapshot(stats.Z95) }

// Acc exposes the stratum accumulator.
func (w *Walker) Acc() *wj.Acc { return w.acc }

// Tipped returns how many walks switched to the exact finish.
func (w *Walker) Tipped() int64 { return w.tipped }

// TipDiag returns the walker's estimate-vs-actual tipping diagnostics.
func (w *Walker) TipDiag() core.TipDiag { return w.diag }

// Cache returns the stratum suffix cache in use.
func (w *Walker) Cache() *Cache { return w.cache }

// ViewErr returns the first sticky error a remote shard view recorded, nil
// for fully local sets. Remote views cannot fail a walk in flight (their
// resolutions degrade to empty, rejecting the walk), so drivers over
// hybrid sets must check this after a run and discard the results on
// error.
func (w *Walker) ViewErr() error { return w.res.viewErr() }
