package shard

import (
	"context"
	"fmt"
	"math"
	"testing"

	"kgexplore/internal/core"
	"kgexplore/internal/exec"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// skewedShardGraph mirrors core's stratification fixture: two subject
// populations with wildly different walk contributions (hubs with dense
// fan-out, leaves with one edge and partial pop coverage), so semantic
// sub-strata nested inside shard strata pay off.
func skewedShardGraph(t *testing.T) (*rdf.Graph, *query.Plan) {
	t.Helper()
	g := rdf.NewGraph()
	for h := 0; h < 4; h++ {
		hub := fmt.Sprintf("hub%d", h)
		g.AddIRIs(hub, "hubFlag", "yes")
		for j := 0; j < 40; j++ {
			o := fmt.Sprintf("friend%d_%d", h, j)
			g.AddIRIs(hub, "knows", o)
			for _, lex := range []string{"5", "13"} {
				g.Add(rdf.NewIRI(o), rdf.NewIRI("pop"), rdf.NewLiteral(lex))
			}
		}
	}
	for p := 0; p < 150; p++ {
		person := fmt.Sprintf("person%d", p)
		g.AddIRIs(person, rdf.RDFType, "Person")
		o := fmt.Sprintf("pal%d", p)
		g.AddIRIs(person, "knows", o)
		if p%3 != 0 {
			g.Add(rdf.NewIRI(o), rdf.NewIRI("pop"), rdf.NewLiteral("900"))
		}
	}
	g.Dedup()
	knows, _ := g.Dict.LookupIRI("knows")
	pop, _ := g.Dict.LookupIRI("pop")
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(knows), O: query.V(1)},
			{S: query.V(1), P: query.C(pop), O: query.V(2)},
		},
		Alpha: query.NoVar,
		Beta:  2,
		Agg:   query.AggCount,
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return g, pl
}

// TestScatterStratifyNested checks the tentpole composition: semantic
// strata nest inside shard strata as flat disjoint leaves, the stepper
// stays unbiased and CI-valid, and on the skewed fixture the nested run's
// CI beats the shard-only run's at the same walk budget.
func TestScatterStratifyNested(t *testing.T) {
	g, pl := skewedShardGraph(t)
	exact := float64(lftj.GroupCount(testkit.BuildStore(g), pl)[core.GlobalGroup])
	if exact == 0 {
		t.Fatal("empty fixture")
	}
	const (
		seeds = 10
		walks = 4000
	)
	for _, k := range []int{1, 2, 4} {
		s := buildSet(t, g, k)
		var mean, stratCI, plainCI float64
		covered := 0
		strata := 0
		for seed := int64(0); seed < seeds; seed++ {
			sc, err := NewScatter(s, pl, ScatterOptions{Seed: 100 + seed, Stratify: true})
			if err != nil {
				t.Fatal(err)
			}
			strata = sc.Strata()
			exec.RunN(sc, walks)
			snap := sc.Snapshot()
			est, ci := snap.Estimates[core.GlobalGroup], snap.CI[core.GlobalGroup]
			mean += est
			stratCI += ci
			if math.Abs(est-exact) <= ci+1e-9 {
				covered++
			}

			plain, err := NewScatter(s, pl, ScatterOptions{Seed: 100 + seed})
			if err != nil {
				t.Fatal(err)
			}
			exec.RunN(plain, walks)
			plainCI += plain.Snapshot().CI[core.GlobalGroup]
		}
		if strata <= k {
			t.Fatalf("K=%d: expected > %d leaf strata with Stratify, got %d", k, k, strata)
		}
		mean /= seeds
		if rel := math.Abs(mean-exact) / exact; rel > 0.05 {
			t.Fatalf("K=%d: stratified scatter mean %.1f vs exact %.0f (%.1f%% off)", k, mean, exact, rel*100)
		}
		if covered < seeds*7/10 {
			t.Fatalf("K=%d: CI covered exact in only %d/%d runs", k, covered, seeds)
		}
		if stratCI > plainCI {
			t.Fatalf("K=%d: nested CI (%.2f avg) wider than shard-only (%.2f avg)",
				k, stratCI/seeds, plainCI/seeds)
		}
		t.Logf("K=%d: %d leaves, mean %.1f (exact %.0f), CI %.2f vs shard-only %.2f (%.2fx)",
			k, strata, mean, exact, stratCI/seeds, plainCI/seeds, plainCI/stratCI)
	}
}

// TestRunScatterStratifyEquivalence drives the pooled parallel path with
// nesting on: the merged result must stay unbiased and the stats must
// report the expanded leaf count while per-shard root cardinalities still
// sum to the full root span.
func TestRunScatterStratifyEquivalence(t *testing.T) {
	g, pl := skewedShardGraph(t)
	exact := float64(lftj.GroupCount(testkit.BuildStore(g), pl)[core.GlobalGroup])
	s := buildSet(t, g, 2)
	var mean float64
	const runs = 6
	for r := int64(0); r < runs; r++ {
		res, sstats, err := RunScatter(context.Background(), s, pl,
			ScatterOptions{Seed: 500 + r, Stratify: true, WorkersPerShard: 2},
			execOptsN(4000))
		if err != nil {
			t.Fatal(err)
		}
		if sstats.Strata <= s.K() {
			t.Fatalf("stats report %d strata, want > %d shards", sstats.Strata, s.K())
		}
		rootTotal := 0
		for _, ps := range sstats.PerShard {
			rootTotal += ps.RootCard
		}
		if want := 4*40 + 150; rootTotal != want {
			t.Fatalf("per-shard root cards sum to %d, want %d", rootTotal, want)
		}
		mean += res.Estimates[core.GlobalGroup]
	}
	mean /= runs
	if rel := math.Abs(mean-exact) / exact; rel > 0.05 {
		t.Fatalf("pooled stratified mean %.1f vs exact %.0f (%.1f%% off)", mean, exact, rel*100)
	}
}
