package shard

import (
	"fmt"
	"io"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// View is the plan-scoped read surface of ONE shard — the boundary the
// resolver and walker consume, promoted to an interface so a shard can be
// served from another process (internal/dist) as well as from a local
// index.Store. A View is opened for one compiled plan; step indices refer
// to that plan's steps, which lets a remote implementation register the
// plan once and keep per-step state (static spans, orders) on its side.
//
// Views returned for local shards are safe for the walk hot path: Resolve
// and At are direct store accesses with the static-span cache absorbed.
// Remote implementations cannot report I/O failures through these
// signatures; they degrade to empty resolutions and record a sticky error
// retrievable through the optional Err() error method (see viewErr), which
// drivers check after enumerations and runs.
type View interface {
	// Resolve returns step i's candidate span on this shard under b, with
	// ok=false for an empty candidate set.
	Resolve(i int, b query.Bindings) (index.Span, bool)
	// At returns the n-th triple of step i's span sp (0 <= n < sp.Len()).
	At(i int, sp index.Span, n int) rdf.Triple
	// Read appends up to max triples of step i's span sp, starting at
	// offset off, to buf — the batched form of At for remote enumeration.
	Read(i int, sp index.Span, off, max int, buf []rdf.Triple) []rdf.Triple
	// Contains reports whether this shard holds triple t.
	Contains(t rdf.Triple) bool
}

// Remote provides plan-scoped Views of a shard that lives outside this
// process. internal/dist implements it over the kgworker wire protocol.
type Remote interface {
	// Open prepares a View for pl. Implementations typically ship the plan
	// to the remote side once and reuse the registration for every
	// resolution of that plan.
	Open(pl *query.Plan) (View, error)
	io.Closer
}

// localView serves a shard held in-process: direct store access with the
// plan's static spans pre-resolved (the caching newResolver used to do).
type localView struct {
	store  *index.Store
	pl     *query.Plan
	static []query.StaticSpan
}

func newLocalView(st *index.Store, pl *query.Plan) *localView {
	return &localView{store: st, pl: pl, static: pl.ResolveStatic(st)}
}

func (v *localView) Resolve(i int, b query.Bindings) (index.Span, bool) {
	st := &v.pl.Steps[i]
	if st.Static {
		ss := v.static[i]
		return ss.Span, ss.OK
	}
	return st.ResolveSpan(v.store, b)
}

func (v *localView) At(i int, sp index.Span, n int) rdf.Triple {
	return v.store.At(v.pl.Steps[i].Order, sp, n)
}

func (v *localView) Read(i int, sp index.Span, off, max int, buf []rdf.Triple) []rdf.Triple {
	ord := v.pl.Steps[i].Order
	n := sp.Len() - off
	if n > max {
		n = max
	}
	for j := 0; j < n; j++ {
		buf = append(buf, v.store.At(ord, sp, off+j))
	}
	return buf
}

func (v *localView) Contains(t rdf.Triple) bool { return v.store.Contains(t) }

// NewStoreView returns the View of a single in-process store for pl — the
// same view the resolver opens for local shards, exported so a shard
// server (internal/dist) answers wire-level Resolve/At/Read/Contains
// through the identical code path the in-process walker uses.
func NewStoreView(st *index.Store, pl *query.Plan) View { return newLocalView(st, pl) }

// viewErr reads the sticky error of a View, if its implementation keeps
// one. Local views never fail.
func viewErr(v View) error {
	if e, ok := v.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// NewHybrid assembles a Set whose shards are a mix of local stores and
// remote providers: shard k is served by stores[k] when non-nil, else by
// remotes[k]. Both slices must have one entry per shard. This is how a
// kgworker in own-shard placement sees the fleet — its shard mmap'ed
// locally, every other shard resolved over the wire — and how a
// coordinator-side exact fallback enumerates a set it only partially
// holds. Walkers can only root in local strata (NewWalker enforces it);
// the resolver reaches every shard.
func NewHybrid(stores []*index.Store, remotes []Remote, part Partitioner, dict *rdf.Dict) (*Set, error) {
	if len(stores) == 0 || len(stores) != len(remotes) {
		return nil, fmt.Errorf("shard: hybrid set needs matching store/remote slices, got %d/%d",
			len(stores), len(remotes))
	}
	if part.fn == nil {
		return nil, fmt.Errorf("shard: nil partitioner")
	}
	if dict == nil {
		return nil, fmt.Errorf("shard: hybrid set needs the shared dictionary")
	}
	local := 0
	for k := range stores {
		if stores[k] != nil {
			local++
			continue
		}
		if remotes[k] == nil {
			return nil, fmt.Errorf("shard: shard %d has neither a local store nor a remote", k)
		}
	}
	return &Set{stores: stores, remotes: remotes, part: part, dict: dict}, nil
}

// Local reports whether shard k is held in-process.
func (s *Set) Local(k int) bool { return s.stores[k] != nil }

// localStores returns the in-process shard stores (all of them, for sets
// built or loaded whole).
func (s *Set) localStores() []*index.Store {
	out := make([]*index.Store, 0, len(s.stores))
	for _, st := range s.stores {
		if st != nil {
			out = append(out, st)
		}
	}
	return out
}

// viewsFor opens one View per shard for pl: direct local views over the
// in-process stores, remote views over the wire for the rest.
func (s *Set) viewsFor(pl *query.Plan) ([]View, error) {
	views := make([]View, len(s.stores))
	for k, st := range s.stores {
		if st != nil {
			views[k] = newLocalView(st, pl)
			continue
		}
		v, err := s.remotes[k].Open(pl)
		if err != nil {
			return nil, fmt.Errorf("shard: opening remote view of shard %d: %w", k, err)
		}
		views[k] = v
	}
	return views, nil
}
