// Package shard partitions the triple set into K disjoint shards by a hash
// of the subject and runs Audit Join as a scatter-gather over them. Each
// shard is an ordinary index.Store (buildable, snapshottable via
// internal/snap, mmap-loadable), and the shard set is described by a small
// versioned manifest so a whole set is loaded — or rejected — atomically.
//
// The estimator is stratified: stratum k is the set of join paths whose
// ROOT triple lives in shard k. A stratum's walker samples its first step
// from shard k's root span only and resolves every later step against the
// union of all shards (see resolver), so each stratum's Horvitz–Thompson
// estimate is unbiased for the stratum total, strata are disjoint and
// covering, and the global estimate is the sum of stratum estimates with
// variances combined in quadrature (wj.MergeStratified). Walks are
// allocated across strata proportionally to per-shard root cardinality —
// stratified allocation, not uniform — which is the textbook proportional
// design for stratified sampling.
//
// COUNT(DISTINCT) is estimated shard-locally only when the partition key
// "owns" the distinct variable — β is the subject of the root pattern, so
// every distinct (group, β) pair is counted by exactly one stratum; see
// Owned. Otherwise RunScatter documents the limitation by falling back to
// the exact resolver-backed enumeration (Set.Exact).
package shard

import (
	"fmt"
	"io"
	"sync"

	"kgexplore/internal/index"
	"kgexplore/internal/rdf"
)

// Partitioner names on the wire. The manifest records the name, and loads
// refuse manifests whose partitioner this build does not know.
const (
	// PartitionerSubjectMix is the default: a 32-bit integer mix of the
	// subject ID, modulo K. Robust to ID assignment order.
	PartitionerSubjectMix = "subject-mix32/v1"
	// PartitionerSubjectMod is the trivial alternative: subject ID modulo
	// K. Useful for tests (predictable placement) and for dictionaries
	// whose IDs are already well scattered.
	PartitionerSubjectMod = "subject-mod/v1"
)

// DefaultPartitioner is used when no partitioner is named.
const DefaultPartitioner = PartitionerSubjectMix

// Partitioner assigns every subject ID to one of K shards. The zero value
// is invalid; obtain one from PartitionerByName.
type Partitioner struct {
	name string
	fn   func(id rdf.ID, k int) int
}

// PartitionerByName resolves a partitioner name ("" means the default).
func PartitionerByName(name string) (Partitioner, error) {
	switch name {
	case "", PartitionerSubjectMix:
		return Partitioner{name: PartitionerSubjectMix, fn: func(id rdf.ID, k int) int {
			return int(mix32(uint32(id)) % uint32(k))
		}}, nil
	case PartitionerSubjectMod:
		return Partitioner{name: PartitionerSubjectMod, fn: func(id rdf.ID, k int) int {
			return int(uint32(id) % uint32(k))
		}}, nil
	}
	return Partitioner{}, fmt.Errorf("shard: unknown partitioner %q", name)
}

// Name returns the wire name recorded in manifests.
func (p Partitioner) Name() string { return p.name }

// Shard returns the shard owning subject id among k shards.
func (p Partitioner) Shard(id rdf.ID, k int) int { return p.fn(id, k) }

// mix32 is a full-avalanche 32-bit integer hash (the finalizer steps of
// splitmix-style mixers), so consecutive dictionary IDs land on different
// shards.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// Set is a sharded store: K disjoint shards over one shared dictionary.
// All shards see the full dictionary (term IDs, numeric-literal cache), so
// bindings and group keys are directly comparable across shards. Shards are
// normally in-process index.Store values (Build, Load); a Set assembled
// with NewHybrid may instead hold some shards as Remote providers served
// over the wire — stores[k] is nil there and remotes[k] answers for it.
// Read-only after construction and safe for concurrent use.
type Set struct {
	stores  []*index.Store
	remotes []Remote
	part    Partitioner
	dict    *rdf.Dict
	closers []io.Closer
}

// Build partitions g into k shards with part and builds each shard's index.
// Shards build concurrently; index.Build itself parallelizes internally, so
// this is primarily about not serializing the per-shard sorts.
func Build(g *rdf.Graph, k int, part Partitioner) (*Set, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", k)
	}
	if part.fn == nil {
		return nil, fmt.Errorf("shard: nil partitioner")
	}
	subsets := make([][]rdf.Triple, k)
	if k == 1 {
		subsets[0] = g.Triples
	} else {
		for _, t := range g.Triples {
			w := part.Shard(t.S, k)
			subsets[w] = append(subsets[w], t)
		}
	}
	stores := make([]*index.Store, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stores[i] = index.Build(&rdf.Graph{Dict: g.Dict, Triples: subsets[i]})
		}(i)
	}
	wg.Wait()
	return &Set{stores: stores, part: part, dict: g.Dict}, nil
}

// K returns the shard count.
func (s *Set) K() int { return len(s.stores) }

// Store returns shard i's index, nil when the shard is remote.
func (s *Set) Store(i int) *index.Store { return s.stores[i] }

// Dict returns the shared dictionary.
func (s *Set) Dict() *rdf.Dict { return s.dict }

// Partitioner returns the partitioner that placed the triples.
func (s *Set) Partitioner() Partitioner { return s.part }

// Owner returns the shard owning subject id.
func (s *Set) Owner(id rdf.ID) int { return s.part.Shard(id, len(s.stores)) }

// NumTriples sums the shard triple counts (in-process shards only; a
// hybrid set does not know its remote shards' sizes).
func (s *Set) NumTriples() int {
	n := 0
	for _, st := range s.stores {
		if st != nil {
			n += st.NumTriples()
		}
	}
	return n
}

// EstimateBytes sums the shard index footprints (in-process shards only).
func (s *Set) EstimateBytes() int64 {
	var n int64
	for _, st := range s.stores {
		if st != nil {
			n += st.EstimateBytes()
		}
	}
	return n
}

// Numeric reads the shared numeric-literal cache. Every shard carries the
// full dictionary, so any in-process shard's cache serves all of them.
func (s *Set) Numeric(id rdf.ID) (float64, bool) {
	for _, st := range s.stores {
		if st != nil {
			return st.Numeric(id)
		}
	}
	return 0, false
}

// Close releases resources held by loaded shard snapshots (mmap mappings)
// and by remote shard providers. Sets produced by Build hold none and
// Close is a no-op.
func (s *Set) Close() error {
	var first error
	for _, c := range s.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.closers = nil
	for _, r := range s.remotes {
		if r == nil {
			continue
		}
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.remotes = nil
	return first
}
