package shard

import (
	"math/rand"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// subspan is one shard's slice of a gathered candidate set.
type subspan struct {
	shard int
	span  index.Span
}

// enumBatch is the remote Read batch size of enumerate: large enough to
// amortize a round trip, small enough to keep per-depth buffers cheap.
const enumBatch = 1024

// resolver resolves plan steps against the WHOLE sharded set through one
// View per shard (local store access or a remote worker over the wire). A
// step's candidate set under the current bindings is the disjoint union of
// the per-shard spans, so sampling a triple uniformly from the gathered
// subspans with d = Σ span lengths reproduces exactly the distribution a
// monolithic store would give — the property that keeps every stratum's
// Horvitz–Thompson estimate unbiased even though continuation triples live
// on other shards than the root.
//
// When the step's subject is bound (a constant, or a join variable already
// bound by the prefix), only the shard owning that subject can hold
// matching triples; the resolver consults it alone. This is the scatter
// fast path, not an approximation: every other shard's span is empty by
// the partition invariant.
type resolver struct {
	set   *Set
	pl    *query.Plan
	views []View
	// enumBufs[j] is depth j's batch buffer for remote enumeration; depth
	// j+1's recursion never touches depth j's buffer, so reuse is safe.
	enumBufs [][]rdf.Triple
}

func newResolver(set *Set, pl *query.Plan) (*resolver, error) {
	views, err := set.viewsFor(pl)
	if err != nil {
		return nil, err
	}
	return &resolver{set: set, pl: pl, views: views}, nil
}

func atomVal(a query.Atom, b query.Bindings) rdf.ID {
	if a.IsVar() {
		return b[a.Var]
	}
	return a.ID
}

// resolve gathers step i's candidate set under b: the non-empty per-shard
// subspans (appended to buf) and the total width d. ok is false when the
// set is empty. Membership steps gather no spans and report d = 1 when the
// triple exists. Pass a reused buf[:0] on hot paths and nil where a fresh
// slice is fine (recursive enumeration).
func (r *resolver) resolve(i int, b query.Bindings, buf []subspan) ([]subspan, int, bool) {
	st := &r.pl.Steps[i]
	if st.Kind == query.AccessMembership {
		t := rdf.Triple{
			S: atomVal(st.Pattern.S, b),
			P: atomVal(st.Pattern.P, b),
			O: atomVal(st.Pattern.O, b),
		}
		if r.views[r.set.Owner(t.S)].Contains(t) {
			return buf, 1, true
		}
		return buf, 0, false
	}
	if st.Bound[index.S] {
		// Owner fast path: the subject is pinned, so the partition invariant
		// empties every other shard's span.
		k := r.set.Owner(atomVal(st.Pattern.S, b))
		sp, ok := r.views[k].Resolve(i, b)
		if !ok {
			return buf, 0, false
		}
		return append(buf, subspan{k, sp}), sp.Len(), true
	}
	total := 0
	for k := range r.views {
		sp, ok := r.views[k].Resolve(i, b)
		if !ok {
			continue
		}
		buf = append(buf, subspan{k, sp})
		total += sp.Len()
	}
	return buf, total, total > 0
}

// sample draws a triple uniformly from a gathered candidate set of step i.
func (r *resolver) sample(i int, subs []subspan, total int, rng *rand.Rand) rdf.Triple {
	n := rng.Intn(total)
	for _, ss := range subs {
		if l := ss.span.Len(); n < l {
			return r.views[ss.shard].At(i, ss.span, n)
		} else {
			n -= l
		}
	}
	panic("shard: sample index beyond gathered spans")
}

// enumerate visits every extension of the current bindings through steps
// j..last, calling visit at each full binding. Backtracking is in-place on
// b; visit's error aborts the recursion (used for context cancellation).
// Local shards read triple by triple (alloc-free); remote shards read in
// enumBatch batches to amortize round trips.
func (r *resolver) enumerate(j int, b query.Bindings, visit func() error) error {
	if j == len(r.pl.Steps) {
		return visit()
	}
	st := &r.pl.Steps[j]
	subs, _, ok := r.resolve(j, b, nil)
	if !ok {
		return nil
	}
	if st.Kind == query.AccessMembership {
		// Membership steps bind no new variables, so no filter anchors here.
		return r.enumerate(j+1, b, visit)
	}
	for _, ss := range subs {
		v := r.views[ss.shard]
		if lv, isLocal := v.(*localView); isLocal {
			ord := st.Order
			for n := 0; n < ss.span.Len(); n++ {
				t := lv.store.At(ord, ss.span, n)
				st.Bind(t, b)
				if len(st.Filters) > 0 && !r.pl.StepFiltersOK(j, r.set, b) {
					continue
				}
				if err := r.enumerate(j+1, b, visit); err != nil {
					st.Unbind(b)
					return err
				}
			}
		} else {
			for off := 0; off < ss.span.Len(); {
				batch := v.Read(j, ss.span, off, enumBatch, r.enumBuf(j))
				if len(batch) == 0 {
					break // remote failure: sticky error via viewErr
				}
				r.enumBufs[j] = batch[:0]
				for _, t := range batch {
					st.Bind(t, b)
					if len(st.Filters) > 0 && !r.pl.StepFiltersOK(j, r.set, b) {
						continue
					}
					if err := r.enumerate(j+1, b, visit); err != nil {
						st.Unbind(b)
						return err
					}
				}
				off += len(batch)
			}
		}
		// NewVars are overwritten by the next Bind; clear only on exit.
		st.Unbind(b)
	}
	return nil
}

// enumBuf returns depth j's reusable batch buffer.
func (r *resolver) enumBuf(j int) []rdf.Triple {
	for len(r.enumBufs) <= j {
		r.enumBufs = append(r.enumBufs, nil)
	}
	return r.enumBufs[j][:0]
}

// viewErr returns the first sticky error any remote view recorded, nil for
// fully local sets.
func (r *resolver) viewErr() error {
	for _, v := range r.views {
		if err := viewErr(v); err != nil {
			return err
		}
	}
	return nil
}
