package shard

import (
	"math/rand"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// subspan is one shard's slice of a gathered candidate set.
type subspan struct {
	shard int
	span  index.Span
}

// resolver resolves plan steps against the WHOLE sharded set. A step's
// candidate set under the current bindings is the disjoint union of the
// per-shard spans, so sampling a triple uniformly from the gathered
// subspans with d = Σ span lengths reproduces exactly the distribution a
// monolithic store would give — the property that keeps every stratum's
// Horvitz–Thompson estimate unbiased even though continuation triples live
// on other shards than the root.
//
// When the step's subject is bound (a constant, or a join variable already
// bound by the prefix), only the shard owning that subject can hold
// matching triples; the resolver consults it alone. This is the scatter
// fast path, not an approximation: every other shard's span is empty by
// the partition invariant.
type resolver struct {
	set *Set
	pl  *query.Plan
	// static[k][i] caches shard k's span for constant-bound step i.
	static [][]query.StaticSpan
}

func newResolver(set *Set, pl *query.Plan) *resolver {
	r := &resolver{set: set, pl: pl, static: make([][]query.StaticSpan, set.K())}
	for k, st := range set.stores {
		r.static[k] = pl.ResolveStatic(st)
	}
	return r
}

func atomVal(a query.Atom, b query.Bindings) rdf.ID {
	if a.IsVar() {
		return b[a.Var]
	}
	return a.ID
}

// spanOn resolves step i on shard k alone.
func (r *resolver) spanOn(k, i int, b query.Bindings) (index.Span, bool) {
	st := &r.pl.Steps[i]
	if st.Static {
		ss := r.static[k][i]
		return ss.Span, ss.OK
	}
	return st.ResolveSpan(r.set.stores[k], b)
}

// resolve gathers step i's candidate set under b: the non-empty per-shard
// subspans (appended to buf) and the total width d. ok is false when the
// set is empty. Membership steps gather no spans and report d = 1 when the
// triple exists. Pass a reused buf[:0] on hot paths and nil where a fresh
// slice is fine (recursive enumeration).
func (r *resolver) resolve(i int, b query.Bindings, buf []subspan) ([]subspan, int, bool) {
	st := &r.pl.Steps[i]
	if st.Kind == query.AccessMembership {
		t := rdf.Triple{
			S: atomVal(st.Pattern.S, b),
			P: atomVal(st.Pattern.P, b),
			O: atomVal(st.Pattern.O, b),
		}
		if r.set.stores[r.set.Owner(t.S)].Contains(t) {
			return buf, 1, true
		}
		return buf, 0, false
	}
	if st.Bound[index.S] {
		// Owner fast path: the subject is pinned, so the partition invariant
		// empties every other shard's span.
		k := r.set.Owner(atomVal(st.Pattern.S, b))
		sp, ok := r.spanOn(k, i, b)
		if !ok {
			return buf, 0, false
		}
		return append(buf, subspan{k, sp}), sp.Len(), true
	}
	total := 0
	for k := range r.set.stores {
		sp, ok := r.spanOn(k, i, b)
		if !ok {
			continue
		}
		buf = append(buf, subspan{k, sp})
		total += sp.Len()
	}
	return buf, total, total > 0
}

// sample draws a triple uniformly from a gathered candidate set.
func (r *resolver) sample(st *query.Step, subs []subspan, total int, rng *rand.Rand) rdf.Triple {
	n := rng.Intn(total)
	for _, ss := range subs {
		if l := ss.span.Len(); n < l {
			return r.set.stores[ss.shard].At(st.Order, ss.span, n)
		} else {
			n -= l
		}
	}
	panic("shard: sample index beyond gathered spans")
}

// enumerate visits every extension of the current bindings through steps
// j..last, calling visit at each full binding. Backtracking is in-place on
// b; visit's error aborts the recursion (used for context cancellation).
func (r *resolver) enumerate(j int, b query.Bindings, visit func() error) error {
	if j == len(r.pl.Steps) {
		return visit()
	}
	st := &r.pl.Steps[j]
	subs, _, ok := r.resolve(j, b, nil)
	if !ok {
		return nil
	}
	if st.Kind == query.AccessMembership {
		return r.enumerate(j+1, b, visit)
	}
	for _, ss := range subs {
		store := r.set.stores[ss.shard]
		for n := 0; n < ss.span.Len(); n++ {
			t := store.At(st.Order, ss.span, n)
			st.Bind(t, b)
			if err := r.enumerate(j+1, b, visit); err != nil {
				st.Unbind(b)
				return err
			}
		}
		// NewVars are overwritten by the next Bind; clear only on exit.
		st.Unbind(b)
	}
	return nil
}
