package shard

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/snap"
	"kgexplore/internal/testkit"
)

func writeFixtureSet(t *testing.T, g *rdf.Graph, k int) (string, Manifest) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "set"+ManifestSuffix)
	s := buildSet(t, g, k)
	m, err := WriteSet(path, s, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	return path, m
}

func TestManifestRoundtrip(t *testing.T) {
	g := testkit.RandomGraph(19, 30, 3, 25, 400)
	q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	want := buildSet(t, g, 4).Exact(pl)

	path, m := writeFixtureSet(t, g, 4)
	if m.Shards != 4 || len(m.Files) != 4 || m.Partitioner != DefaultPartitioner {
		t.Fatalf("unexpected manifest: %+v", m)
	}
	for _, mmap := range []bool{false, true} {
		s, err := Load(path, LoadOptions{Mmap: mmap})
		if err != nil {
			t.Fatalf("mmap=%v: %v", mmap, err)
		}
		if s.K() != 4 || s.NumTriples() != g.Len() {
			t.Fatalf("mmap=%v: loaded %d shards / %d triples", mmap, s.K(), s.NumTriples())
		}
		got := s.Exact(pl)
		if !testkit.MapsEqual(got, want, 1e-9) {
			t.Fatalf("mmap=%v: loaded set disagrees with built set", mmap)
		}
		s.Close()
	}
	if _, err := Verify(path); err != nil {
		t.Fatalf("Verify rejected a pristine set: %v", err)
	}
}

// rewriteManifest loads the manifest JSON, applies fn, and writes it back
// verbatim (no hash recomputation) — simulating a hand-edit.
func rewriteManifest(t *testing.T, path string, fn func(m map[string]any)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	fn(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestManifestCorruption feeds Load/Verify a catalogue of damaged shard
// sets. Every case must be rejected outright — no partial set may survive.
func TestManifestCorruption(t *testing.T) {
	g := testkit.RandomGraph(29, 30, 3, 25, 300)

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
		wantSub string
	}{
		{
			name: "truncated manifest JSON",
			corrupt: func(t *testing.T, path string) {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "wrong shard count",
			corrupt: func(t *testing.T, path string) {
				rewriteManifest(t, path, func(m map[string]any) { m["shards"] = float64(2) })
			},
			// Rejected by the files/shard-count cross-check, which fires
			// before the config hash comparison.
			wantSub: "files",
		},
		{
			name: "tampered partitioner name",
			corrupt: func(t *testing.T, path string) {
				rewriteManifest(t, path, func(m map[string]any) { m["partitioner"] = PartitionerSubjectMod })
			},
			wantSub: "hash",
		},
		{
			name: "unknown partitioner",
			corrupt: func(t *testing.T, path string) {
				rewriteManifest(t, path, func(m map[string]any) { m["partitioner"] = "subject-xxh/v9" })
			},
			wantSub: "partitioner",
		},
		{
			name: "file list shorter than shard count",
			corrupt: func(t *testing.T, path string) {
				rewriteManifest(t, path, func(m map[string]any) {
					files := m["files"].([]any)
					m["files"] = files[:len(files)-1]
				})
			},
			wantSub: "files",
		},
		{
			name: "path escaping the manifest directory",
			corrupt: func(t *testing.T, path string) {
				rewriteManifest(t, path, func(m map[string]any) {
					files := m["files"].([]any)
					f := files[0].(map[string]any)
					f["path"] = "../shard-0000.kgs"
				})
			},
			wantSub: "escapes",
		},
		{
			name: "deleted shard file",
			corrupt: func(t *testing.T, path string) {
				if err := os.Remove(filepath.Join(filepath.Dir(path), "shard-0002.kgs")); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "truncated shard snapshot",
			corrupt: func(t *testing.T, path string) {
				p := filepath.Join(filepath.Dir(path), "shard-0001.kgs")
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(p, data[:len(data)-64], 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "corrupted summary section in a shard",
			corrupt: func(t *testing.T, path string) {
				p := filepath.Join(filepath.Dir(path), "shard-0001.kgs")
				in, err := snap.Inspect(p)
				if err != nil {
					t.Fatal(err)
				}
				sec, ok := in.Section("summary")
				if !ok {
					t.Fatal("shard snapshot has no summary section")
				}
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				data[sec.Off+sec.Size/2] ^= 0x20
				if err := os.WriteFile(p, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantSub: "summary",
		},
		{
			name: "triple count mismatch",
			corrupt: func(t *testing.T, path string) {
				rewriteManifest(t, path, func(m map[string]any) {
					files := m["files"].([]any)
					f := files[1].(map[string]any)
					f["triples"] = f["triples"].(float64) + 7
				})
			},
			wantSub: "triples",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, _ := writeFixtureSet(t, g, 4)
			tc.corrupt(t, path)
			if _, err := Load(path, LoadOptions{}); err == nil {
				t.Fatal("Load accepted a corrupted set")
			} else if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Load error %q does not mention %q", err, tc.wantSub)
			}
			if _, err := Verify(path); err == nil {
				t.Fatal("Verify accepted a corrupted set")
			}
		})
	}
}

// TestVerifyCatchesMisplacedTriples covers the one corruption Load cannot
// see: a set written under one partitioner but served under another, with
// the config hash "helpfully" recomputed. Only Verify's placement scan
// catches it.
func TestVerifyCatchesMisplacedTriples(t *testing.T) {
	g := testkit.RandomGraph(37, 30, 3, 25, 300)
	dir := t.TempDir()
	path := filepath.Join(dir, "set"+ManifestSuffix)
	part, err := PartitionerByName(PartitionerSubjectMod)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, 4, part)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSet(path, s, "fixture"); err != nil {
		t.Fatal(err)
	}
	// Relabel the set as mix32-partitioned and recompute the hash so the
	// manifest itself validates.
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	m.Partitioner = PartitionerSubjectMix
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err != nil {
		t.Fatalf("relabelled manifest should pass shallow validation: %v", err)
	}
	if _, err := Verify(path); err == nil {
		t.Fatal("Verify accepted a set whose triples sit in the wrong shards")
	} else if !strings.Contains(err.Error(), "belongs to shard") {
		t.Fatalf("unexpected Verify error: %v", err)
	}
}

// TestManifestWorkersPlacement pins the worker-placement field: a valid
// per-shard address list round-trips, a wrong-length or empty-address list
// fails validation, and the addresses stay OUT of the config hash so
// re-pointing a set at new workers never invalidates the snapshots.
func TestManifestWorkersPlacement(t *testing.T) {
	g := testkit.RandomGraph(37, 20, 3, 15, 200)
	path, _ := writeFixtureSet(t, g, 2)
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	hash := m.ConfigHash

	m.Workers = []string{"10.0.0.1:7070", "10.0.0.2:7070"}
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Workers) != 2 || got.Workers[1] != "10.0.0.2:7070" {
		t.Fatalf("workers did not round-trip: %v", got.Workers)
	}
	if got.ConfigHash != hash {
		t.Fatalf("adding workers changed the config hash %08x -> %08x", hash, got.ConfigHash)
	}
	if _, err := Load(path, LoadOptions{}); err != nil {
		t.Fatalf("set with workers failed to load: %v", err)
	}

	m.Workers = []string{"only-one:7070"}
	if err := WriteManifest(path, m); err == nil {
		t.Fatal("accepted 1 worker address for 2 shards")
	}
	m.Workers = []string{"a:1", ""}
	if err := WriteManifest(path, m); err == nil {
		t.Fatal("accepted an empty worker address")
	}
}
