package shard

import (
	"context"
	"math"
	"testing"

	"kgexplore/internal/card"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

func mustPart(t *testing.T, name string) Partitioner {
	t.Helper()
	p, err := PartitionerByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func buildSet(t *testing.T, g *rdf.Graph, k int) *Set {
	t.Helper()
	s, err := Build(g, k, mustPart(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildPartitionInvariants(t *testing.T) {
	g := testkit.RandomGraph(7, 40, 4, 30, 500)
	for _, k := range []int{1, 2, 4, 8} {
		s := buildSet(t, g, k)
		if s.K() != k {
			t.Fatalf("K=%d: got %d shards", k, s.K())
		}
		if s.NumTriples() != g.Len() {
			t.Fatalf("K=%d: %d triples across shards, graph has %d", k, s.NumTriples(), g.Len())
		}
		// Every triple must sit in the shard its subject hashes to.
		for i := 0; i < k; i++ {
			for _, tr := range s.Store(i).Triples(0) {
				if own := s.Owner(tr.S); own != i {
					t.Fatalf("K=%d: shard %d holds subject %d owned by shard %d", k, i, tr.S, own)
				}
			}
		}
	}
	if _, err := Build(g, 0, mustPart(t, "")); err == nil {
		t.Fatal("Build accepted 0 shards")
	}
	if _, err := PartitionerByName("nope/v9"); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
}

// TestExactMatchesBruteForce pins the resolver: the sharded exact
// enumeration must reproduce the nested-loop oracle for grouped counts,
// SUM, AVG and DISTINCT at several shard counts.
func TestExactMatchesBruteForce(t *testing.T) {
	g := testkit.RandomGraph(11, 30, 3, 25, 350)
	for _, distinct := range []bool{false, true} {
		q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, distinct)
		want := testkit.BruteForce(g, q)
		pl, err := query.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 3, 4} {
			got := buildSet(t, g, k).Exact(pl)
			if !testkit.MapsEqual(got, want, 1e-9) {
				t.Fatalf("distinct=%v K=%d: exact %v, want %v", distinct, k, got, want)
			}
		}
	}
	for _, agg := range []query.AggFunc{query.AggSum, query.AggAvg} {
		q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
		q.Agg = agg
		want := testkit.BruteForce(g, q)
		pl, err := query.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		got := buildSet(t, g, 4).Exact(pl)
		if !testkit.MapsEqual(got, want, 1e-6) {
			t.Fatalf("agg=%v: exact %v, want %v", agg, got, want)
		}
	}
}

func TestExactCtxCancellation(t *testing.T) {
	g := testkit.RandomGraph(3, 40, 3, 30, 800)
	q := testkit.ChainQuery(g, []rdf.ID{40, 41}, true, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	s := buildSet(t, g, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ExactCtx(ctx, pl); err == nil {
		// The check fires every 4096 rows; tiny results may finish first.
		t.Log("enumeration finished before the cancellation check (small fixture)")
	}
}

// ownedDistinctQuery returns a plan whose distinct variable is the subject
// of the root pattern: COUNT(DISTINCT ?s) GROUP BY ?a over
// ?s <p0> ?m . ?m <p1> ?a.
func ownedDistinctQuery(t *testing.T, p0, p1 rdf.ID) (*query.Query, *query.Plan) {
	t.Helper()
	q := &query.Query{
		Alpha:    2,
		Beta:     0,
		Distinct: true,
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(p0), O: query.V(1)},
			{S: query.V(1), P: query.C(p1), O: query.V(2)},
		},
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return q, pl
}

func TestOwnedCondition(t *testing.T) {
	g := testkit.RandomGraph(5, 20, 3, 15, 200)
	_, pl := ownedDistinctQuery(t, 20, 21)
	if !Owned(pl) {
		t.Fatal("root-subject distinct variable should be owned")
	}
	// ChainQuery's β is the chain's leaf, not the root subject: not owned.
	q := testkit.ChainQuery(g, []rdf.ID{20, 21}, true, true)
	pl2, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if Owned(pl2) {
		t.Fatal("leaf distinct variable must not be owned")
	}
	// Non-distinct plans are never "owned".
	q3 := testkit.ChainQuery(g, []rdf.ID{20, 21}, true, false)
	pl3, err := query.Compile(q3)
	if err != nil {
		t.Fatal(err)
	}
	if Owned(pl3) {
		t.Fatal("non-distinct plan reported owned")
	}
}

func TestDistinctFallbackIsExact(t *testing.T) {
	g := testkit.RandomGraph(9, 25, 3, 20, 300)
	q := testkit.ChainQuery(g, []rdf.ID{25, 26}, true, true) // β = leaf: not owned
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	s := buildSet(t, g, 4)
	res, st, err := RunScatter(context.Background(), s, pl, ScatterOptions{Seed: 1}, execOptsN(500))
	if err != nil {
		t.Fatal(err)
	}
	if !st.ExactFallback {
		t.Fatal("non-owned distinct did not fall back to exact")
	}
	want := testkit.BruteForce(g, q)
	if !testkit.MapsEqual(res.Estimates, want, 1e-9) {
		t.Fatalf("fallback result %v, want %v", res.Estimates, want)
	}
}

func TestSuffixOracleMatchesMonolith(t *testing.T) {
	// At K=1 the set-level oracle must agree with the single-store suffix
	// estimator on the initial (no bindings beyond the root) estimates; at
	// K>1 the sums stay within rounding of the monolith because
	// cardinalities add.
	g := testkit.RandomGraph(13, 30, 3, 25, 400)
	q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := testkit.BuildStore(g)
	mono := card.NewSpanStats(st).NewSuffix(pl, card.StoreResolver{Store: st, Plan: pl})
	b := pl.NewBindings()
	b.Reset()
	// Bind the root from the full store and compare suffix estimates.
	sp, ok := pl.Steps[0].ResolveSpan(st, b)
	if !ok {
		t.Skip("empty root")
	}
	tr := st.At(pl.Steps[0].Order, sp, sp.Len()/2)
	pl.Steps[0].Bind(tr, b)
	want := mono.Estimate(0, b)

	s := buildSet(t, g, 4)
	est := setEstimator(s, nil)
	res, err := newResolver(s, pl)
	if err != nil {
		t.Fatal(err)
	}
	or := est.NewSuffix(pl, resolverWidth{res})
	got := or.Estimate(0, b)
	if want == 0 {
		if got != 0 {
			t.Fatalf("oracle %v, monolith 0", got)
		}
		return
	}
	if rel := math.Abs(got-want) / want; rel > 0.5 {
		t.Fatalf("set-level suffix estimate %v too far from monolith %v", got, want)
	}
}
