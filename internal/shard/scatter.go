package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"kgexplore/internal/card"
	"kgexplore/internal/core"
	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// ScatterOptions configure a scatter-gather run.
type ScatterOptions struct {
	// Threshold is the Audit Join tipping point (core.Options semantics:
	// negative never tips, +Inf always tips). Callers normally pass
	// core.DefaultThreshold.
	Threshold float64
	// Seed is the base seed; each walker derives its own via
	// core.WorkerSeed, so runs are reproducible.
	Seed int64
	// WorkersPerShard sizes each stratum's walker pool (default 1).
	WorkersPerShard int
	// Caches, when non-nil with one entry per shard, warm-starts the
	// per-stratum suffix caches across requests (the server's reuse hook).
	// Entries must not be shared between strata: cached root counts are
	// stratum-local.
	Caches []*Cache
	// Estimator drives every walker's tipping oracle and the per-stratum
	// allocation weights; nil selects span statistics over the whole set.
	Estimator card.Estimator
	// Stratify nests semantic root strata (characteristic-set buckets, see
	// index.StratifyRoots) inside each shard stratum: every (shard ×
	// bucket) leaf gets its own walker, the Scatter stepper allocates walks
	// adaptively (Neyman, wj.NeymanAlloc) across leaves, and the leaves
	// flat-merge through wj.MergeStratified — disjoint leaves need no
	// hierarchical merge. Distinct plans and shards whose roots do not
	// stratify keep one uniform walker per shard.
	Stratify bool
	// MaxStrata caps the semantic strata per shard (< 2 selects
	// index.DefaultMaxStrata).
	MaxStrata int
	// PilotWalks/AdaptEvery tune the adaptive allocator (defaults 64/512).
	PilotWalks int64
	AdaptEvery int64
}

// subStrataAll computes every shard's semantic sub-strata. Entry k is nil
// when shard k does not stratify (distinct plan, membership or empty root,
// remote shard, single bucket, fragmented runs) — such shards keep one
// uniform walker.
func subStrataAll(set *Set, pl *query.Plan, maxStrata int) [][]index.RootStratum {
	out := make([][]index.RootStratum, set.K())
	if pl.Query.Distinct || pl.Steps[0].Kind == query.AccessMembership {
		return out
	}
	res, err := newResolver(set, pl)
	if err != nil {
		return out
	}
	st0 := &pl.Steps[0]
	b := pl.NewBindings()
	for k := 0; k < set.K(); k++ {
		store := set.stores[k]
		if store == nil {
			continue // remote shard: roots are not local to this process
		}
		span, ok := res.views[k].Resolve(0, b)
		if !ok || span.Len() == 0 {
			continue
		}
		out[k] = index.StratifyRoots(store, st0.Order, span, maxStrata)
	}
	return out
}

// SubStrata computes shard k's semantic root strata, or nil when that shard
// does not stratify (see subStrataAll). Distributed workers call this to
// nest characteristic-set strata inside their own shard stratum.
func SubStrata(set *Set, pl *query.Plan, k, maxStrata int) []index.RootStratum {
	if k < 0 || k >= set.K() {
		return nil
	}
	return subStrataAll(set, pl, maxStrata)[k]
}

// leafSpec names one walk stratum of a scatter run: a shard, optionally
// restricted to a semantic sub-stratum.
type leafSpec struct {
	shard int
	root  *index.RootStratum
}

// scatterLeaves expands the shard list into leaf strata under opts.
func scatterLeaves(set *Set, pl *query.Plan, opts ScatterOptions) []leafSpec {
	K := set.K()
	leaves := make([]leafSpec, 0, K)
	var subs [][]index.RootStratum
	if opts.Stratify {
		subs = subStrataAll(set, pl, opts.MaxStrata)
	}
	for k := 0; k < K; k++ {
		if opts.Stratify && len(subs[k]) > 0 {
			for i := range subs[k] {
				leaves = append(leaves, leafSpec{shard: k, root: &subs[k][i]})
			}
			continue
		}
		leaves = append(leaves, leafSpec{shard: k})
	}
	return leaves
}

// ShardRunStats reports one stratum's share of a scatter-gather run.
type ShardRunStats struct {
	RootCard int   `json:"root_card"`
	Walks    int64 `json:"walks"`
	Tipped   int64 `json:"tipped"`
}

// ScatterStats reports a whole run: per-stratum allocation and walk
// counts, the summed suffix-cache traffic, merged tipping diagnostics,
// and which distinct path ran.
type ScatterStats struct {
	PerShard []ShardRunStats `json:"per_shard"`
	Cache    CacheStats      `json:"cache"`
	// Estimator names the cardinality estimator the run used.
	Estimator string `json:"estimator,omitempty"`
	// Tips merges every walker's estimate-vs-actual tipping diagnostics.
	Tips core.TipDiag `json:"tips"`
	// OwnedDistinct marks a COUNT(DISTINCT) served by the stratified
	// owned-variable estimator; ExactFallback marks one served by the
	// exact union (Set.Exact) because the partition key does not own the
	// distinct variable.
	OwnedDistinct bool `json:"owned_distinct,omitempty"`
	ExactFallback bool `json:"exact_fallback,omitempty"`
	// Retries counts stratum re-allocations after worker loss. In-process
	// runs never retry; distributed runs (internal/dist) record each lost
	// worker's stratum being re-run on a survivor here.
	Retries int `json:"retries,omitempty"`
	// Strata is the number of leaf strata the run actually used: K without
	// semantic stratification, up to K × MaxStrata with it.
	Strata int `json:"strata,omitempty"`
}

// Scatter is the shard-merging driver as a single exec.Stepper: Step runs
// one walk on a stratum chosen by smooth weighted round-robin with weights
// proportional to root cardinality (deterministic stratified allocation),
// and Snapshot stratified-merges the per-stratum accumulators. One
// exec.Drive over a Scatter therefore preserves budgets, cancellation and
// progressive snapshots with no scatter-specific driving code; RunScatter
// adds per-stratum worker pools on top for parallel serving.
type Scatter struct {
	walkers []*Walker
	weights []float64
	credit  []float64
	totalW  float64
	// alloc replaces the fixed-weight round-robin with adaptive Neyman
	// allocation when the run is semantically stratified; accs are the
	// walkers' accumulators it reads variances from.
	alloc *wj.NeymanAlloc
	accs  []*wj.Acc
}

// NewScatter builds one walker per non-empty leaf stratum (shards, or
// shard × characteristic-set bucket with opts.Stratify). Distinct plans
// whose variable the partition key does not own fail with
// ErrDistinctNotOwned.
func NewScatter(set *Set, pl *query.Plan, opts ScatterOptions) (*Scatter, error) {
	est := setEstimator(set, opts.Estimator)
	s := &Scatter{}
	leaves := scatterLeaves(set, pl, opts)
	stratified := false
	for li, leaf := range leaves {
		w, err := NewWalker(set, pl, leaf.shard, WalkerOptions{
			Threshold: opts.Threshold,
			Seed:      core.WorkerSeed(opts.Seed, li),
			Cache:     cacheFor(opts.Caches, leaf.shard),
			Estimator: est,
			Root:      leaf.root,
		})
		if err != nil {
			return nil, err
		}
		if w.RootCard() == 0 && len(leaves) > 1 {
			continue // empty stratum contributes exactly zero
		}
		if leaf.root != nil {
			stratified = true
		}
		s.walkers = append(s.walkers, w)
		s.weights = append(s.weights, float64(w.RootCard()))
		s.totalW += float64(w.RootCard())
	}
	if stratified {
		s.accs = make([]*wj.Acc, len(s.walkers))
		for i, w := range s.walkers {
			s.accs[i] = w.Acc()
		}
		s.alloc = wj.NewNeymanAlloc(s.weights, opts.PilotWalks, opts.AdaptEvery)
	}
	if len(s.walkers) == 0 {
		// Every stratum is empty. Keep one walker so Step still advances the
		// walk counter (its walks all reject) and drivers terminate.
		w, err := NewWalker(set, pl, 0, WalkerOptions{Threshold: opts.Threshold, Seed: opts.Seed, Estimator: est})
		if err != nil {
			return nil, err
		}
		s.walkers = append(s.walkers, w)
		s.weights = append(s.weights, 1)
		s.totalW = 1
	}
	if s.totalW == 0 {
		for i := range s.weights {
			s.weights[i] = 1
		}
		s.totalW = float64(len(s.weights))
	}
	s.credit = make([]float64, len(s.walkers))
	return s, nil
}

func cacheFor(caches []*Cache, k int) *Cache {
	if k < len(caches) {
		return caches[k]
	}
	return nil
}

// Step walks the stratum with the highest accumulated credit — over time
// each stratum receives walks in proportion to its root cardinality.
// Semantically stratified runs hand the choice to the adaptive Neyman
// allocator instead.
func (s *Scatter) Step() {
	if s.alloc != nil {
		s.walkers[s.alloc.Next(s.accs)].Step()
		return
	}
	best := 0
	for i := range s.walkers {
		s.credit[i] += s.weights[i]
		if s.credit[i] > s.credit[best] {
			best = i
		}
	}
	s.credit[best] -= s.totalW
	s.walkers[best].Step()
}

// Strata returns the number of leaf strata the stepper drives.
func (s *Scatter) Strata() int { return len(s.walkers) }

// Walks sums the stratum walk counts.
func (s *Scatter) Walks() int64 {
	var n int64
	for _, w := range s.walkers {
		n += w.Walks()
	}
	return n
}

// Snapshot returns the stratified-merged estimate with combined CIs.
func (s *Scatter) Snapshot() wj.Result {
	accs := make([]*wj.Acc, len(s.walkers))
	for i, w := range s.walkers {
		accs[i] = w.Acc()
	}
	return wj.MergeStratified(accs, stats.Z95)
}

// RunScatter runs Audit Join scatter-gather over a sharded set: each
// stratum gets its own walker pool sharing one stratum cache, walks are
// allocated proportionally to per-shard root cardinality, and the merged
// progressive snapshots (and the final result) combine the strata with
// wj.MergeStratified — globally unbiased estimates with CIs summed in
// quadrature. xopts applies per worker except MaxWalks, which is the TOTAL
// walk budget split across strata by the allocation rule; Budget remains
// the shared wall-clock deadline and cancelling ctx stops every walker.
//
// COUNT(DISTINCT) plans run the stratified owned-variable estimator when
// Owned(pl) holds; otherwise the run degrades to the exact union
// (Set.ExactCtx), reported via ScatterStats.ExactFallback, with a single
// final snapshot so progressive consumers still complete.
func RunScatter(ctx context.Context, set *Set, pl *query.Plan, opts ScatterOptions, xopts exec.Options) (wj.Result, ScatterStats, error) {
	K := set.K()
	est := setEstimator(set, opts.Estimator)
	sstats := ScatterStats{PerShard: make([]ShardRunStats, K), Estimator: est.Name()}

	if pl.Query.Distinct && !Owned(pl) {
		sstats.ExactFallback = true
		counts, err := set.ExactCtx(ctx, pl)
		res := wj.Result{Estimates: counts, CI: make(map[rdf.ID]float64)}
		if res.Estimates == nil {
			res.Estimates = make(map[rdf.ID]float64)
		}
		if err == nil && xopts.OnSnapshot != nil {
			xopts.OnSnapshot(exec.Progress{Seq: 1, Snapshot: res, Final: true})
		}
		return res, sstats, err
	}
	sstats.OwnedDistinct = pl.Query.Distinct

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	wps := opts.WorkersPerShard
	if wps < 1 {
		wps = 1
	}
	caches := opts.Caches
	if len(caches) != K {
		caches = make([]*Cache, K)
	}
	for k := range caches {
		if caches[k] == nil {
			caches[k] = NewCache()
		}
	}

	// Expand the shards into leaf strata (one per shard, or shard ×
	// characteristic-set bucket under opts.Stratify), build the pools and
	// read the per-leaf root cardinalities that drive the allocation.
	leaves := scatterLeaves(set, pl, opts)
	L := len(leaves)
	sstats.Strata = L
	walkers := make([][]*Walker, L)
	cards := make([]int, L)
	total := 0
	widx := 0
	for li, leaf := range leaves {
		walkers[li] = make([]*Walker, wps)
		for j := 0; j < wps; j++ {
			w, err := NewWalker(set, pl, leaf.shard, WalkerOptions{
				Threshold: opts.Threshold,
				Seed:      core.WorkerSeed(opts.Seed, widx),
				Cache:     caches[leaf.shard],
				Estimator: est,
				Root:      leaf.root,
			})
			if err != nil {
				return wj.Result{}, sstats, err
			}
			walkers[li][j] = w
			widx++
		}
		cards[li] = walkers[li][0].RootCard()
		sstats.PerShard[leaf.shard].RootCard += cards[li]
		total += cards[li]
	}
	finish := func() wj.Result {
		accs := make([]*wj.Acc, 0, L)
		for li, leaf := range leaves {
			if cards[li] == 0 {
				continue
			}
			m := wj.NewAcc()
			for _, w := range walkers[li] {
				m.Merge(w.Acc())
				sstats.PerShard[leaf.shard].Tipped += w.Tipped()
				sstats.Tips.Merge(w.TipDiag())
			}
			sstats.PerShard[leaf.shard].Walks += m.N
			accs = append(accs, m)
		}
		for k := 0; k < K; k++ {
			cs := caches[k].Stats()
			sstats.Cache.Hits += cs.Hits
			sstats.Cache.Misses += cs.Misses
		}
		return wj.MergeStratified(accs, stats.Z95)
	}
	if total == 0 {
		// Empty root pattern everywhere: the exact answer is zero.
		res := finish()
		if xopts.OnSnapshot != nil {
			xopts.OnSnapshot(exec.Progress{Seq: 1, Snapshot: res, Final: true})
		}
		return res, sstats, nil
	}

	// Proportional allocation. MaxWalks is the total budget: leaf stratum k
	// gets ⌈MaxWalks·card_k/total⌉ (at least one walk per non-empty stratum
	// so no stratum is silently dropped), split over its pool. In pure
	// budget-driven runs the same proportions are approximated by scaling
	// each pool's batch size, so strata advance at cardinality-proportional
	// rates between deadline checks. (Pools run as independent goroutines
	// behind exec.Drive, so cross-pool Neyman reallocation does not apply
	// here; the single-threaded Scatter stepper adapts, see NewScatter.)
	base := xopts.Batch
	if base <= 0 {
		base = exec.DefaultBatch
	}
	active := 0
	for k := 0; k < L; k++ {
		if cards[k] > 0 {
			active++
		}
	}
	perWorker := make([]exec.Options, L)
	for k := 0; k < L; k++ {
		if cards[k] == 0 {
			continue
		}
		o := xopts
		o.OnSnapshot = nil
		share := float64(cards[k]) / float64(total)
		if xopts.MaxWalks > 0 {
			quota := int64(float64(xopts.MaxWalks)*share + 0.5)
			if quota < 1 {
				quota = 1
			}
			pw := quota / int64(wps)
			if pw < 1 {
				pw = 1
			}
			o.MaxWalks = pw
		}
		b := int(float64(base) * share * float64(active))
		if b < 1 {
			b = 1
		}
		if b > 8192 {
			b = 8192
		}
		o.Batch = b
		perWorker[k] = o
	}

	// Publisher mirroring core.RunParallelStats: workers publish clones at
	// their own cadence; a dedicated goroutine folds the latest clones into
	// merged progressive snapshots.
	latest := make([][]*wj.Acc, L)
	for k := range latest {
		latest[k] = make([]*wj.Acc, wps)
	}
	var mu sync.Mutex // guards latest
	var stopped atomic.Bool
	onSnap := xopts.OnSnapshot

	mergedLocked := func() wj.Result {
		accs := make([]*wj.Acc, 0, L)
		for k := 0; k < L; k++ {
			var m *wj.Acc
			for _, a := range latest[k] {
				if a == nil {
					continue
				}
				if m == nil {
					m = wj.NewAcc()
				}
				m.Merge(a)
			}
			if m != nil {
				accs = append(accs, m)
			}
		}
		return wj.MergeStratified(accs, stats.Z95)
	}
	start := time.Now()
	seq := 0
	publish := func(final bool) bool {
		mu.Lock()
		merged := mergedLocked()
		mu.Unlock()
		seq++
		ok := onSnap(exec.Progress{
			Seq:      seq,
			Elapsed:  time.Since(start),
			Walks:    merged.Walks,
			Snapshot: merged,
			Final:    final,
		})
		if !ok {
			stopped.Store(true)
			cancel()
		}
		return ok
	}
	pubStop := make(chan struct{})
	var pubWG sync.WaitGroup
	if onSnap != nil && xopts.Interval > 0 {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			ticker := time.NewTicker(xopts.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-pubStop:
					return
				case <-ticker.C:
					if !publish(false) {
						return
					}
				}
			}
		}()
	}

	errs := make([]error, L*wps)
	var wg sync.WaitGroup
	for k := 0; k < L; k++ {
		if cards[k] == 0 {
			continue
		}
		for j := 0; j < wps; j++ {
			o := perWorker[k]
			if onSnap != nil && xopts.Interval > 0 {
				k, j := k, j
				o.OnSnapshot = func(exec.Progress) bool {
					mu.Lock()
					latest[k][j] = walkers[k][j].Acc().Clone()
					mu.Unlock()
					return true
				}
				o.Interval = xopts.Interval
			}
			wg.Add(1)
			go func(w *Walker, o exec.Options, e int) {
				defer wg.Done()
				_, errs[e] = exec.Drive(ctx, w, o)
			}(walkers[k][j], o, k*wps+j)
		}
	}
	wg.Wait()
	close(pubStop)
	pubWG.Wait()

	res := finish()
	for _, err := range errs {
		if err != nil && !(stopped.Load() && errors.Is(err, context.Canceled)) {
			return res, sstats, err
		}
	}
	if onSnap != nil && !stopped.Load() {
		seq++
		onSnap(exec.Progress{
			Seq:      seq,
			Elapsed:  time.Since(start),
			Walks:    res.Walks,
			Snapshot: res,
			Final:    true,
		})
	}
	return res, sstats, nil
}
