package shard

import (
	"kgexplore/internal/query"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// UnionScatter estimates a UNION over a sharded set: every branch runs its
// own Scatter (one walker per shard stratum), branches are interleaved by
// weighted deficit like exec.Union, and Snapshot merges ALL (branch, shard)
// accumulators with wj.MergeStratified — the strata of the union design are
// simply the cross product of branches and shards, so the merge stays at the
// accumulator level and AVG unions work (unlike a result-level merge of
// finished branch Results, which is additive-only).
//
// COUNT(DISTINCT) unions are refused with query.ErrDistinctUnion: per-branch
// walks cannot observe cross-branch duplicates. Callers route those to
// Set.ExactUnionCtx.
type UnionScatter struct {
	branches []*Scatter
	weights  []float64
	wsum     float64
}

// NewUnionScatter builds one Scatter per branch. Branch walk shares are
// proportional to the estimated branch join sizes under opts.Estimator.
// opts.Caches is ignored: the shard suffix caches are keyed per plan, so
// branches cannot share them.
func NewUnionScatter(set *Set, up *query.UnionPlan, opts ScatterOptions) (*UnionScatter, error) {
	if up.Query.Distinct() {
		return nil, query.ErrDistinctUnion
	}
	est := setEstimator(set, opts.Estimator)
	u := &UnionScatter{
		branches: make([]*Scatter, len(up.Plans)),
		weights:  make([]float64, len(up.Plans)),
	}
	for i, pl := range up.Plans {
		bopts := opts
		bopts.Caches = nil
		bopts.Estimator = est
		bopts.Seed = opts.Seed + int64(i)*1_000_003
		sc, err := NewScatter(set, pl, bopts)
		if err != nil {
			return nil, err
		}
		u.branches[i] = sc
		u.weights[i] = est.JoinSize(pl).Value
	}
	// Lift non-positive weights so no branch is starved of walks (a starved
	// stratum would silently contribute a zero estimate).
	minPos := 0.0
	for _, w := range u.weights {
		if w > 0 && (minPos == 0 || w < minPos) {
			minPos = w
		}
	}
	if minPos == 0 {
		minPos = 1
	}
	for i, w := range u.weights {
		if w <= 0 {
			u.weights[i] = minPos
		}
		u.wsum += u.weights[i]
	}
	return u, nil
}

// Step performs one walk on the branch with the largest weighted deficit
// (deterministic proportional interleave, ties to the lower index).
func (u *UnionScatter) Step() {
	share := float64(u.Walks()) + 1
	best, bestDeficit := 0, 0.0
	for i, br := range u.branches {
		d := share*u.weights[i]/u.wsum - float64(br.Walks())
		if i == 0 || d > bestDeficit {
			best, bestDeficit = i, d
		}
	}
	u.branches[best].Step()
}

// Walks returns the total walks across all branches.
func (u *UnionScatter) Walks() int64 {
	var n int64
	for _, br := range u.branches {
		n += br.Walks()
	}
	return n
}

// Strata returns the total leaf stratum count across branches.
func (u *UnionScatter) Strata() int {
	n := 0
	for _, br := range u.branches {
		n += br.Strata()
	}
	return n
}

// Snapshot merges every branch's per-stratum accumulators into one
// stratified result: estimates sum, CIs combine in quadrature.
func (u *UnionScatter) Snapshot() wj.Result {
	var accs []*wj.Acc
	for _, br := range u.branches {
		for _, w := range br.walkers {
			accs = append(accs, w.Acc())
		}
	}
	return wj.MergeStratified(accs, stats.Z95)
}
