package shard

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kgexplore/internal/index"
	"kgexplore/internal/snap"
)

// ManifestVersion is the current manifest format version; loads require it.
const ManifestVersion = 1

// ManifestSuffix is the conventional file extension for shard manifests.
const ManifestSuffix = ".kgm"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ShardFile describes one shard snapshot, path relative to the manifest.
type ShardFile struct {
	Path    string `json:"path"`
	Triples int    `json:"triples"`
	DictLen int    `json:"dict_len"`
}

// Manifest describes a complete shard set: the partitioning configuration
// that produced it and the per-shard snapshot files. A manifest is the unit
// of loading — either every listed shard loads and validates, or the load
// fails and nothing is kept.
type Manifest struct {
	Version     int         `json:"version"`
	Partitioner string      `json:"partitioner"`
	Shards      int         `json:"shards"`
	Files       []ShardFile `json:"files"`
	Source      string      `json:"source,omitempty"`
	CreatedUnix int64       `json:"created_unix,omitempty"`
	// ConfigHash authenticates the partitioning configuration (version,
	// partitioner name, shard count) against accidental edits: a shard set
	// reinterpreted under the wrong partitioner would silently break the
	// stratification, so loads recompute and compare.
	ConfigHash uint32 `json:"config_hash"`
	// Workers, when present, records worker-address placement: Workers[k]
	// is the network address of the kgworker serving shard k. Deployment
	// metadata, not data identity — it is deliberately NOT part of
	// ConfigHash, so re-pointing a set at new worker addresses does not
	// invalidate the snapshots.
	Workers []string `json:"workers,omitempty"`
}

func (m *Manifest) computeConfigHash() uint32 {
	s := fmt.Sprintf("v%d|%s|%d", m.Version, m.Partitioner, m.Shards)
	return crc32.Checksum([]byte(s), crcTable)
}

// Validate checks the manifest's internal consistency. It does not touch
// the shard files; Load and Verify do.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("shard: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if m.Shards < 1 {
		return fmt.Errorf("shard: manifest shard count %d < 1", m.Shards)
	}
	if _, err := PartitionerByName(m.Partitioner); err != nil || m.Partitioner == "" {
		return fmt.Errorf("shard: manifest names unknown partitioner %q", m.Partitioner)
	}
	if len(m.Files) != m.Shards {
		return fmt.Errorf("shard: manifest lists %d files for %d shards", len(m.Files), m.Shards)
	}
	if len(m.Workers) != 0 {
		if len(m.Workers) != m.Shards {
			return fmt.Errorf("shard: manifest lists %d worker addresses for %d shards", len(m.Workers), m.Shards)
		}
		for i, addr := range m.Workers {
			if addr == "" {
				return fmt.Errorf("shard: manifest worker %d has an empty address", i)
			}
		}
	}
	if m.ConfigHash != m.computeConfigHash() {
		return fmt.Errorf("shard: manifest config hash %08x does not match configuration (want %08x)",
			m.ConfigHash, m.computeConfigHash())
	}
	dictLen := -1
	for i, f := range m.Files {
		if f.Path == "" {
			return fmt.Errorf("shard: manifest file %d has no path", i)
		}
		if filepath.IsAbs(f.Path) || strings.Contains(f.Path, "..") {
			return fmt.Errorf("shard: manifest file %d path %q escapes the manifest directory", i, f.Path)
		}
		if dictLen == -1 {
			dictLen = f.DictLen
		} else if f.DictLen != dictLen {
			return fmt.Errorf("shard: manifest file %d dict length %d differs from %d (shards must share one dictionary)",
				i, f.DictLen, dictLen)
		}
	}
	return nil
}

// ReadManifest reads and validates a manifest file.
func ReadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("shard: manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, fmt.Errorf("shard: manifest %s: %w", path, err)
	}
	return m, nil
}

// WriteManifest writes a manifest atomically (temp file + rename), filling
// in the config hash.
func WriteManifest(path string, m Manifest) error {
	m.ConfigHash = m.computeConfigHash()
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".kgm-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp)
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// WriteSet writes every shard of s as a .kgs snapshot next to path
// (shard-0000.kgs, shard-0001.kgs, ...) and then the manifest at path. The
// manifest lands last, so a crash mid-write never leaves a manifest naming
// missing shards.
func WriteSet(path string, s *Set, source string) (Manifest, error) {
	dir := filepath.Dir(path)
	m := Manifest{
		Version:     ManifestVersion,
		Partitioner: s.part.Name(),
		Shards:      s.K(),
		Source:      source,
		CreatedUnix: time.Now().Unix(),
	}
	for i, st := range s.stores {
		name := fmt.Sprintf("shard-%04d.kgs", i)
		meta := &snap.Meta{
			Source:      fmt.Sprintf("%s#%d/%d", source, i, s.K()),
			CreatedUnix: m.CreatedUnix,
		}
		if err := snap.WriteFile(filepath.Join(dir, name), st, meta); err != nil {
			return Manifest{}, fmt.Errorf("shard: writing shard %d: %w", i, err)
		}
		m.Files = append(m.Files, ShardFile{
			Path:    name,
			Triples: st.NumTriples(),
			DictLen: s.dict.Len(),
		})
	}
	if err := WriteManifest(path, m); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// LoadOptions configure Load.
type LoadOptions struct {
	// Mmap selects zero-copy snapshot loads; otherwise each shard is a
	// verified copy load.
	Mmap bool
	// Verify forces full payload checksum verification even under Mmap.
	Verify bool
}

// Load loads a manifest and every shard it names. The load is atomic at
// the set level: any failure — a missing or corrupt shard, a count that
// disagrees with the manifest — closes whatever was already mapped and
// returns an error, never a partial set.
func Load(path string, opts LoadOptions) (*Set, error) {
	m, err := ReadManifest(path)
	if err != nil {
		return nil, err
	}
	part, err := PartitionerByName(m.Partitioner)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	sopts := snap.Options{Mode: snap.ModeCopy, Verify: true}
	if opts.Mmap {
		sopts = snap.Options{Mode: snap.ModeAuto, Verify: opts.Verify}
	}
	s := &Set{part: part}
	for i, f := range m.Files {
		l, err := snap.LoadFile(filepath.Join(dir, f.Path), sopts)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("shard: loading shard %d (%s): %w", i, f.Path, err)
		}
		if l.Meta.Triples != f.Triples || l.Meta.DictLen != f.DictLen {
			l.Close()
			s.Close()
			return nil, fmt.Errorf("shard: shard %d (%s) has %d triples / %d terms, manifest says %d / %d",
				i, f.Path, l.Meta.Triples, l.Meta.DictLen, f.Triples, f.DictLen)
		}
		s.stores = append(s.stores, l.Store)
		s.closers = append(s.closers, l)
	}
	s.dict = s.stores[0].Dict()
	return s, nil
}

// Verify fully checks a shard set: the manifest, every shard snapshot's
// checksums, and — the property everything downstream rests on — that every
// triple sits in the shard its subject hashes to. Returns the manifest on
// success; any failure means the set must not be served.
func Verify(path string) (Manifest, error) {
	m, err := ReadManifest(path)
	if err != nil {
		return Manifest{}, err
	}
	s, err := Load(path, LoadOptions{Mmap: false, Verify: true})
	if err != nil {
		return Manifest{}, err
	}
	defer s.Close()
	for i, st := range s.stores {
		for _, t := range st.Triples(index.SPO) {
			if own := s.Owner(t.S); own != i {
				return Manifest{}, fmt.Errorf(
					"shard: shard %d holds a triple whose subject %d belongs to shard %d (partitioner %s)",
					i, t.S, own, m.Partitioner)
			}
		}
	}
	return m, nil
}
