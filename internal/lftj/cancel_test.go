package lftj

import (
	"context"
	"testing"
	"time"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// densePlan builds a deep chain query over a dense random graph so that the
// enumeration is guaranteed to pass many checkEvery-step cancellation
// checkpoints.
func densePlan(t *testing.T) (*query.Plan, *index.Store) {
	t.Helper()
	g := testkit.RandomGraph(1, 40, 2, 40, 6000)
	preds := []rdf.ID{40, 41, 40}
	q := testkit.ChainQuery(g, preds, false, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return pl, testkit.BuildStore(g)
}

func TestEvaluateCtxPreCancelled(t *testing.T) {
	pl, g := fig5Fixture(t)
	st := testkit.BuildStore(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := EvaluateCtx(ctx, st, pl)
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled EvaluateCtx returned partial result %v", res)
	}
	if _, err := GroupCountCtx(ctx, st, pl); err != context.Canceled {
		t.Errorf("GroupCountCtx err = %v", err)
	}
	if _, err := GroupDistinctCtx(ctx, st, pl); err != context.Canceled {
		t.Errorf("GroupDistinctCtx err = %v", err)
	}
}

func TestEnumerateCtxMidRunCancel(t *testing.T) {
	pl, st := densePlan(t)
	// Sanity: the fixture must enumerate far past one checkEvery window so
	// the post-cancel checkpoint is guaranteed to fire.
	if n := Count(st, pl); n < checkEvery {
		t.Fatalf("fixture too small: %d results, want >= %d", n, checkEvery)
	}
	ctx, cancel := context.WithCancel(context.Background())
	results := 0
	start := time.Now()
	err := EnumerateCtx(ctx, st, pl, func(query.Bindings) bool {
		results++
		if results == 1 {
			cancel() // cancel from inside the enumeration, like a dying client
		}
		return true
	})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if results == 0 {
		t.Error("callback never ran")
	}
	// The abort is amortized: at most one checkEvery window of extra steps.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancel took %v", elapsed)
	}
}

func TestEvaluateCtxMidRunDeadline(t *testing.T) {
	pl, st := densePlan(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// Burn the deadline so the enumeration is guaranteed to observe it.
	time.Sleep(2 * time.Millisecond)
	res, err := EvaluateCtx(ctx, st, pl)
	if err != context.DeadlineExceeded {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Errorf("expired EvaluateCtx returned partial result with %d groups", len(res))
	}
}
