package lftj

import (
	"context"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// EvaluateUnion evaluates a compiled union with SPARQL bag semantics: the
// branches' assignment multisets are concatenated before aggregation, so
// COUNT and SUM add up across branches, AVG is the ratio of the summed
// numerators and denominators, and COUNT(DISTINCT) deduplicates (group, β)
// pairs across branches through one shared value set.
func EvaluateUnion(store *index.Store, up *query.UnionPlan) (map[rdf.ID]float64, error) {
	return EvaluateUnionCtx(context.Background(), store, up)
}

// EvaluateUnionCtx is EvaluateUnion under a context.
func EvaluateUnionCtx(ctx context.Context, store *index.Store, up *query.UnionPlan) (map[rdf.ID]float64, error) {
	agg := up.Query.Agg()
	distinct := up.Query.Distinct()
	out := make(map[rdf.ID]float64)
	counts := make(map[rdf.ID]float64)
	seen := make(map[uint64]struct{})
	for _, pl := range up.Plans {
		alpha, beta := pl.Query.Alpha, pl.Query.Beta
		err := EnumerateCtx(ctx, store, pl, func(b query.Bindings) bool {
			a := GlobalGroup
			if alpha != query.NoVar {
				a = b[alpha]
			}
			switch agg {
			case query.AggSum, query.AggAvg:
				if v, ok := store.Numeric(b[beta]); ok {
					out[a] += v
					counts[a]++
				}
			default:
				if distinct {
					k := uint64(a)<<32 | uint64(b[beta])
					if _, dup := seen[k]; dup {
						return true
					}
					seen[k] = struct{}{}
				}
				out[a]++
			}
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	if agg == query.AggAvg {
		for a := range out {
			out[a] /= counts[a]
		}
	}
	return out, nil
}
