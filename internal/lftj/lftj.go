// Package lftj implements Leapfrog Trie Join for the exploration-query
// fragment: an exact, backtracking join over the store's trie indexes with
// no materialization and no caching (Veldhuizen's LFTJ, paper §IV-B).
//
// For the acyclic queries of the fragment, LFTJ's variable-at-a-time
// leapfrogging specializes to pattern-at-a-time backtracking in walk order:
// each pattern's trie is restricted by the values already bound (a seek),
// and the pattern's free positions are enumerated from the restricted
// subtree. Because nothing is cached, shared suffixes are recomputed on
// every revisit — the inefficiency Cached Trie Join removes (Example IV.1).
package lftj

import (
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// GlobalGroup is the map key used for ungrouped queries (Alpha == NoVar).
const GlobalGroup = rdf.NoID

// Enumerate performs the backtracking join and invokes cb once per full
// assignment. cb must not retain the bindings slice. If cb returns false the
// enumeration stops early.
func Enumerate(store *index.Store, pl *query.Plan, cb func(query.Bindings) bool) {
	b := pl.NewBindings()
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(pl.Steps) {
			return cb(b)
		}
		st := &pl.Steps[i]
		sp, ok := st.ResolveSpan(store, b)
		if !ok {
			return true
		}
		if st.Kind == query.AccessMembership {
			return rec(i + 1)
		}
		for k := 0; k < sp.Len(); k++ {
			st.Bind(store.At(st.Order, sp, k), b)
			if !rec(i + 1) {
				return false
			}
		}
		st.Unbind(b)
		return true
	}
	rec(0)
}

// Count returns the exact number of full assignments |Γ|.
func Count(store *index.Store, pl *query.Plan) int64 {
	var n int64
	Enumerate(store, pl, func(query.Bindings) bool {
		n++
		return true
	})
	return n
}

// GroupCount returns the exact COUNT per group: the number of full
// assignments for each value of Alpha. For ungrouped queries the single
// count is under GlobalGroup.
func GroupCount(store *index.Store, pl *query.Plan) map[rdf.ID]int64 {
	out := make(map[rdf.ID]int64)
	alpha := pl.Query.Alpha
	Enumerate(store, pl, func(b query.Bindings) bool {
		key := GlobalGroup
		if alpha != query.NoVar {
			key = b[alpha]
		}
		out[key]++
		return true
	})
	return out
}

// GroupDistinct returns the exact COUNT(DISTINCT Beta) per group. For
// ungrouped queries the single count is under GlobalGroup.
func GroupDistinct(store *index.Store, pl *query.Plan) map[rdf.ID]int64 {
	seen := make(map[uint64]struct{})
	out := make(map[rdf.ID]int64)
	alpha, beta := pl.Query.Alpha, pl.Query.Beta
	Enumerate(store, pl, func(b query.Bindings) bool {
		a := GlobalGroup
		if alpha != query.NoVar {
			a = b[alpha]
		}
		k := uint64(a)<<32 | uint64(b[beta])
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out[a]++
		}
		return true
	})
	return out
}

// GroupSum returns the exact SUM of Beta's numeric values per group.
// Assignments whose Beta is not numeric contribute nothing; groups with no
// numeric assignment at all are omitted (consistently across engines).
func GroupSum(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	out := make(map[rdf.ID]float64)
	alpha, beta := pl.Query.Alpha, pl.Query.Beta
	Enumerate(store, pl, func(b query.Bindings) bool {
		if v, ok := store.Numeric(b[beta]); ok {
			a := GlobalGroup
			if alpha != query.NoVar {
				a = b[alpha]
			}
			out[a] += v
		}
		return true
	})
	return out
}

// GroupAvg returns the exact AVG of Beta's numeric values per group,
// averaged over the assignments whose Beta is numeric. Groups with no
// numeric assignment are omitted.
func GroupAvg(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	sums := make(map[rdf.ID]float64)
	counts := make(map[rdf.ID]float64)
	alpha, beta := pl.Query.Alpha, pl.Query.Beta
	Enumerate(store, pl, func(b query.Bindings) bool {
		if v, ok := store.Numeric(b[beta]); ok {
			a := GlobalGroup
			if alpha != query.NoVar {
				a = b[alpha]
			}
			sums[a] += v
			counts[a]++
		}
		return true
	})
	out := make(map[rdf.ID]float64, len(sums))
	for a, s := range sums {
		out[a] = s / counts[a]
	}
	return out
}

// Evaluate runs the query per its aggregation function and Distinct flag,
// returning exact per-group results as float64 for comparability with the
// estimators.
func Evaluate(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	switch pl.Query.Agg {
	case query.AggSum:
		return GroupSum(store, pl)
	case query.AggAvg:
		return GroupAvg(store, pl)
	}
	var raw map[rdf.ID]int64
	if pl.Query.Distinct {
		raw = GroupDistinct(store, pl)
	} else {
		raw = GroupCount(store, pl)
	}
	out := make(map[rdf.ID]float64, len(raw))
	for k, v := range raw {
		out[k] = float64(v)
	}
	return out
}
