// Package lftj implements Leapfrog Trie Join for the exploration-query
// fragment: an exact, backtracking join over the store's trie indexes with
// no materialization and no caching (Veldhuizen's LFTJ, paper §IV-B).
//
// For the acyclic queries of the fragment, LFTJ's variable-at-a-time
// leapfrogging specializes to pattern-at-a-time backtracking in walk order:
// each pattern's trie is restricted by the values already bound (a seek),
// and the pattern's free positions are enumerated from the restricted
// subtree. Because nothing is cached, shared suffixes are recomputed on
// every revisit — the inefficiency Cached Trie Join removes (Example IV.1).
package lftj

import (
	"context"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// GlobalGroup is the map key used for ungrouped queries (Alpha == NoVar).
const GlobalGroup = rdf.NoID

// checkEvery is the number of enumeration steps between context checks: a
// power of two so the cancellation checkpoint is a mask test on the hot
// backtracking path.
const checkEvery = 1 << 12

// Enumerate performs the backtracking join and invokes cb once per full
// assignment. cb must not retain the bindings slice. If cb returns false the
// enumeration stops early.
func Enumerate(store *index.Store, pl *query.Plan, cb func(query.Bindings) bool) {
	EnumerateCtx(context.Background(), store, pl, cb)
}

// EnumerateCtx is Enumerate with a cancellation checkpoint every checkEvery
// backtracking steps: long enumerations abort promptly when ctx is done and
// the context's error is returned. A nil error means the enumeration ran to
// completion (or cb stopped it).
func EnumerateCtx(ctx context.Context, store *index.Store, pl *query.Plan, cb func(query.Bindings) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b := pl.NewBindings()
	var (
		err   error
		steps int
	)
	var rec func(i int) bool
	rec = func(i int) bool {
		if steps++; steps&(checkEvery-1) == 0 {
			if err = ctx.Err(); err != nil {
				return false
			}
		}
		if i == len(pl.Steps) {
			return cb(b)
		}
		st := &pl.Steps[i]
		sp, ok := st.ResolveSpan(store, b)
		if !ok {
			return true
		}
		if st.Kind == query.AccessMembership {
			return rec(i + 1)
		}
		ts := store.Triples(st.Order)
		for k := sp.Lo; k < sp.Hi; k++ {
			st.Bind(ts[k], b)
			if len(st.Filters) > 0 && !pl.StepFiltersOK(i, store, b) {
				continue
			}
			if !rec(i + 1) {
				return false
			}
		}
		st.Unbind(b)
		return true
	}
	rec(0)
	return err
}

// Count returns the exact number of full assignments |Γ|.
func Count(store *index.Store, pl *query.Plan) int64 {
	var n int64
	Enumerate(store, pl, func(query.Bindings) bool {
		n++
		return true
	})
	return n
}

// GroupCount returns the exact COUNT per group: the number of full
// assignments for each value of Alpha. For ungrouped queries the single
// count is under GlobalGroup.
func GroupCount(store *index.Store, pl *query.Plan) map[rdf.ID]int64 {
	out, _ := GroupCountCtx(context.Background(), store, pl)
	return out
}

// GroupCountCtx is GroupCount under a context: a cancelled enumeration
// returns (nil, ctx.Err()) rather than a partial count.
func GroupCountCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]int64, error) {
	out := make(map[rdf.ID]int64)
	alpha := pl.Query.Alpha
	err := EnumerateCtx(ctx, store, pl, func(b query.Bindings) bool {
		key := GlobalGroup
		if alpha != query.NoVar {
			key = b[alpha]
		}
		out[key]++
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GroupDistinct returns the exact COUNT(DISTINCT Beta) per group. For
// ungrouped queries the single count is under GlobalGroup.
func GroupDistinct(store *index.Store, pl *query.Plan) map[rdf.ID]int64 {
	out, _ := GroupDistinctCtx(context.Background(), store, pl)
	return out
}

// GroupDistinctCtx is GroupDistinct under a context.
func GroupDistinctCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]int64, error) {
	seen := make(map[uint64]struct{})
	out := make(map[rdf.ID]int64)
	alpha, beta := pl.Query.Alpha, pl.Query.Beta
	err := EnumerateCtx(ctx, store, pl, func(b query.Bindings) bool {
		a := GlobalGroup
		if alpha != query.NoVar {
			a = b[alpha]
		}
		k := uint64(a)<<32 | uint64(b[beta])
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out[a]++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GroupSum returns the exact SUM of Beta's numeric values per group.
// Assignments whose Beta is not numeric contribute nothing; groups with no
// numeric assignment at all are omitted (consistently across engines).
func GroupSum(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	out, _ := GroupSumCtx(context.Background(), store, pl)
	return out
}

// GroupSumCtx is GroupSum under a context.
func GroupSumCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]float64, error) {
	out := make(map[rdf.ID]float64)
	alpha, beta := pl.Query.Alpha, pl.Query.Beta
	err := EnumerateCtx(ctx, store, pl, func(b query.Bindings) bool {
		if v, ok := store.Numeric(b[beta]); ok {
			a := GlobalGroup
			if alpha != query.NoVar {
				a = b[alpha]
			}
			out[a] += v
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GroupAvg returns the exact AVG of Beta's numeric values per group,
// averaged over the assignments whose Beta is numeric. Groups with no
// numeric assignment are omitted.
func GroupAvg(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	out, _ := GroupAvgCtx(context.Background(), store, pl)
	return out
}

// GroupAvgCtx is GroupAvg under a context.
func GroupAvgCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]float64, error) {
	sums := make(map[rdf.ID]float64)
	counts := make(map[rdf.ID]float64)
	alpha, beta := pl.Query.Alpha, pl.Query.Beta
	err := EnumerateCtx(ctx, store, pl, func(b query.Bindings) bool {
		if v, ok := store.Numeric(b[beta]); ok {
			a := GlobalGroup
			if alpha != query.NoVar {
				a = b[alpha]
			}
			sums[a] += v
			counts[a]++
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make(map[rdf.ID]float64, len(sums))
	for a, s := range sums {
		out[a] = s / counts[a]
	}
	return out, nil
}

// Evaluate runs the query per its aggregation function and Distinct flag,
// returning exact per-group results as float64 for comparability with the
// estimators.
func Evaluate(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	out, _ := EvaluateCtx(context.Background(), store, pl)
	return out
}

// EvaluateCtx is Evaluate under a context: long exact enumerations abort
// promptly when ctx is done, returning (nil, ctx.Err()) — never a partial
// result posing as the exact answer.
func EvaluateCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]float64, error) {
	switch pl.Query.Agg {
	case query.AggSum:
		return GroupSumCtx(ctx, store, pl)
	case query.AggAvg:
		return GroupAvgCtx(ctx, store, pl)
	}
	var (
		raw map[rdf.ID]int64
		err error
	)
	if pl.Query.Distinct {
		raw, err = GroupDistinctCtx(ctx, store, pl)
	} else {
		raw, err = GroupCountCtx(ctx, store, pl)
	}
	if err != nil {
		return nil, err
	}
	out := make(map[rdf.ID]float64, len(raw))
	for k, v := range raw {
		out[k] = float64(v)
	}
	return out, nil
}
