package lftj

import (
	"math"
	"testing"
	"testing/quick"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// sumFixture: persons with numeric ages grouped by type.
func sumFixture(t *testing.T) (*rdf.Graph, *query.Query) {
	t.Helper()
	g := rdf.NewGraph()
	age := rdf.NewIRI("age")
	ty := rdf.NewIRI(rdf.RDFType)
	add := func(who string, a float64, class string) {
		g.Add(rdf.NewIRI(who), age, rdf.NewTypedLiteral(trimF(a), rdf.XSDInteger))
		g.Add(rdf.NewIRI(who), ty, rdf.NewIRI(class))
	}
	add("alice", 30, "Person")
	add("bob", 40, "Person")
	add("carol", 20, "Robot")
	// dave has a non-numeric age.
	g.Add(rdf.NewIRI("dave"), age, rdf.NewLiteral("unknown"))
	g.Add(rdf.NewIRI("dave"), ty, rdf.NewIRI("Person"))
	g.Dedup()

	ageID, _ := g.Dict.LookupIRI("age")
	tyID, _ := g.Dict.LookupIRI(rdf.RDFType)
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(ageID), O: query.V(1)},
			{S: query.V(0), P: query.C(tyID), O: query.V(2)},
		},
		Alpha: 2,
		Beta:  1,
		Agg:   query.AggSum,
	}
	return g, q
}

func trimF(f float64) string {
	return string([]byte{byte('0' + int(f)/10), byte('0' + int(f)%10)})
}

func TestGroupSum(t *testing.T) {
	g, q := sumFixture(t)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	got := Evaluate(st, pl)
	person, _ := g.Dict.LookupIRI("Person")
	robot, _ := g.Dict.LookupIRI("Robot")
	// Person: 30+40 (dave's "unknown" contributes nothing); Robot: 20.
	if got[person] != 70 || got[robot] != 20 {
		t.Errorf("GroupSum = %v, want Person:70 Robot:20", got)
	}
}

func TestGroupAvg(t *testing.T) {
	g, q := sumFixture(t)
	q.Agg = query.AggAvg
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	got := Evaluate(st, pl)
	person, _ := g.Dict.LookupIRI("Person")
	robot, _ := g.Dict.LookupIRI("Robot")
	if math.Abs(got[person]-35) > 1e-12 || got[robot] != 20 {
		t.Errorf("GroupAvg = %v, want Person:35 Robot:20", got)
	}
}

func TestDistinctSumRejected(t *testing.T) {
	_, q := sumFixture(t)
	q.Distinct = true
	if err := q.Validate(); err == nil {
		t.Error("DISTINCT SUM accepted")
	}
}

func TestAggAgainstBruteForce(t *testing.T) {
	f := func(seed int64, flags uint8) bool {
		agg := query.AggSum
		if flags&1 != 0 {
			agg = query.AggAvg
		}
		grouped := flags&2 != 0
		g := testkit.RandomGraph(seed, 6, 3, 4, 40)
		if g.Len() == 0 {
			return true
		}
		q := testkit.ChainQuery(g, []rdf.ID{6, 7}, grouped, false)
		q.Agg = agg
		pl, err := query.Compile(q)
		if err != nil {
			return false
		}
		st := index.Build(g)
		want := testkit.BruteForce(g, q)
		got := Evaluate(st, pl)
		return testkit.MapsEqual(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
