package lftj

import (
	"testing"
	"testing/quick"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// fig5Fixture builds the paper's Fig. 5 query over a small known graph and
// returns the plan, the store's graph and the expected results.
func fig5Fixture(t *testing.T) (*query.Plan, *rdf.Graph) {
	t.Helper()
	g := rdf.NewGraph()
	g.AddIRIs("alice", "birthPlace", "paris")
	g.AddIRIs("bob", "birthPlace", "paris")
	g.AddIRIs("carol", "birthPlace", "lima")
	g.AddIRIs("dave", "birthPlace", "lima")
	g.AddIRIs("eve", "birthPlace", "rome")
	for _, s := range []string{"alice", "bob", "carol", "dave"} {
		g.AddIRIs(s, rdf.RDFType, "Person")
	}
	g.AddIRIs("eve", rdf.RDFType, "Robot")
	g.AddIRIs("paris", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "City")
	g.AddIRIs("rome", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "Capital")
	g.Dedup()

	bp, _ := g.Dict.LookupIRI("birthPlace")
	ty, _ := g.Dict.LookupIRI(rdf.RDFType)
	person, _ := g.Dict.LookupIRI("Person")
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(bp), O: query.V(1)},
			{S: query.V(0), P: query.C(ty), O: query.C(person)},
			{S: query.V(1), P: query.C(ty), O: query.V(2)},
		},
		Alpha:    2,
		Beta:     1,
		Distinct: true,
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return pl, g
}

func TestCountFig5(t *testing.T) {
	pl, g := fig5Fixture(t)
	st := testkit.BuildStore(g)
	// Full assignments: alice/bob->paris->City (2), carol/dave->lima->City,
	// carol/dave->lima->Capital (4) = 6.
	if got := Count(st, pl); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
}

func TestGroupCountFig5(t *testing.T) {
	pl, g := fig5Fixture(t)
	st := testkit.BuildStore(g)
	city, _ := g.Dict.LookupIRI("City")
	capital, _ := g.Dict.LookupIRI("Capital")
	got := GroupCount(st, pl)
	if got[city] != 4 || got[capital] != 2 || len(got) != 2 {
		t.Errorf("GroupCount = %v, want City:4 Capital:2", got)
	}
}

func TestGroupDistinctFig5(t *testing.T) {
	pl, g := fig5Fixture(t)
	st := testkit.BuildStore(g)
	city, _ := g.Dict.LookupIRI("City")
	capital, _ := g.Dict.LookupIRI("Capital")
	// Distinct birth places per type: City {paris, lima} = 2, Capital {lima} = 1.
	got := GroupDistinct(st, pl)
	if got[city] != 2 || got[capital] != 1 || len(got) != 2 {
		t.Errorf("GroupDistinct = %v, want City:2 Capital:1", got)
	}
}

func TestEvaluateHonorsDistinctFlag(t *testing.T) {
	pl, g := fig5Fixture(t)
	st := testkit.BuildStore(g)
	city, _ := g.Dict.LookupIRI("City")
	if got := Evaluate(st, pl); got[city] != 2 {
		t.Errorf("Evaluate distinct = %v", got)
	}
	q2 := *pl.Query
	q2.Distinct = false
	pl2, _ := query.Compile(&q2)
	if got := Evaluate(st, pl2); got[city] != 4 {
		t.Errorf("Evaluate non-distinct = %v", got)
	}
}

func TestUngroupedCount(t *testing.T) {
	pl, g := fig5Fixture(t)
	q := *pl.Query
	q.Alpha = query.NoVar
	q.Distinct = false
	pl2, err := query.Compile(&q)
	if err != nil {
		t.Fatal(err)
	}
	st := testkit.BuildStore(g)
	got := GroupCount(st, pl2)
	if got[GlobalGroup] != 6 || len(got) != 1 {
		t.Errorf("ungrouped GroupCount = %v, want {global:6}", got)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	pl, g := fig5Fixture(t)
	st := testkit.BuildStore(g)
	n := 0
	Enumerate(st, pl, func(query.Bindings) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d assignments, want 3", n)
	}
}

func TestEmptyResult(t *testing.T) {
	pl, g := fig5Fixture(t)
	st := testkit.BuildStore(g)
	// Query over a predicate that exists but with an impossible constant.
	bp, _ := g.Dict.LookupIRI("birthPlace")
	person, _ := g.Dict.LookupIRI("Person")
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.C(person), P: query.C(bp), O: query.V(0)},
		},
		Alpha: query.NoVar,
		Beta:  0,
	}
	pl2, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := Count(st, pl2); got != 0 {
		t.Errorf("Count = %d, want 0", got)
	}
	if got := GroupCount(st, pl2); len(got) != 0 {
		t.Errorf("GroupCount = %v, want empty", got)
	}
	_ = pl
}

// TestAgainstBruteForce cross-checks LFTJ against the independent oracle on
// random graphs and chain queries of depth 1..3, grouped and ungrouped,
// distinct and not.
func TestAgainstBruteForce(t *testing.T) {
	f := func(seed int64, depth8, flags uint8) bool {
		depth := 1 + int(depth8%3)
		grouped := flags&1 != 0
		distinct := flags&2 != 0
		g := testkit.RandomGraph(seed, 6, 3, 4, 40)
		if g.Len() == 0 {
			return true
		}
		preds := make([]rdf.ID, depth)
		for i := range preds {
			preds[i] = rdf.ID(6 + i%3)
		}
		q := testkit.ChainQuery(g, preds, grouped, distinct)
		pl, err := query.Compile(q)
		if err != nil {
			return false
		}
		st := testkit.BuildStore(g)
		want := testkit.BruteForce(g, q)
		got := Evaluate(st, pl)
		return testkit.MapsEqual(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestOrderInvariance verifies that exact results do not depend on the walk
// order of the patterns.
func TestOrderInvariance(t *testing.T) {
	pl, g := fig5Fixture(t)
	st := testkit.BuildStore(g)
	want := Evaluate(st, pl)
	for _, ord := range pl.Query.ValidOrders() {
		qq, err := pl.Query.Reorder(ord)
		if err != nil {
			t.Fatalf("reorder %v: %v", ord, err)
		}
		pl2, err := query.Compile(qq)
		if err != nil {
			// Some orders may hit the unsupported s+o access path; those
			// are legitimately not executable.
			continue
		}
		got := Evaluate(st, pl2)
		if !testkit.MapsEqual(got, want, 1e-9) {
			t.Errorf("order %v gave %v, want %v", ord, got, want)
		}
	}
}
