package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kgexplore"
)

func newLiveTestServer(t *testing.T) (*Server, *kgexplore.LiveDataset, *httptest.Server) {
	t.Helper()
	ds, err := kgexplore.LoadNTriples(strings.NewReader(tinyNT))
	if err != nil {
		t.Fatal(err)
	}
	lds, err := ds.Live(kgexplore.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lds.Close() })
	srv := NewLive(lds, Provenance{Kind: "live", Triples: lds.NumTriples()})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, lds, ts
}

func sparqlCount(t *testing.T, ts *httptest.Server, query, engine string) float64 {
	t.Helper()
	var resp ChartResponse
	r := post(t, ts.URL+"/api/sparql", SPARQLRequest{Query: query, Engine: engine}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("sparql (%s): status %d", engine, r.StatusCode)
	}
	var total float64
	for _, b := range resp.Bars {
		total += b.Count
	}
	return total
}

func TestIngestEndpoint(t *testing.T) {
	_, lds, ts := newLiveTestServer(t)
	before := lds.NumTriples()
	const q = `SELECT COUNT(?s) WHERE { ?s <birthPlace> ?o }`
	if got := sparqlCount(t, ts, q, "ctj"); got != 3 {
		t.Fatalf("base count = %v, want 3", got)
	}

	var ack IngestResponse
	r := post(t, ts.URL+"/ingest", IngestRequest{
		Add:    []string{"<dave> <birthPlace> <lima> .", "", "# comment"},
		Delete: []string{"<carol> <birthPlace> <lima> ."},
	}, &ack)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", r.StatusCode)
	}
	if ack.Applied != 2 {
		t.Fatalf("applied = %d, want 2 (blank and comment lines skipped)", ack.Applied)
	}
	if ack.Gen == 0 {
		t.Fatal("ack carries no view generation")
	}

	// The batch is visible to exact engines and to merged-view walks.
	if got := sparqlCount(t, ts, q, "ctj"); got != 3 {
		t.Fatalf("post-ingest exact count = %v, want 3 (one add, one delete)", got)
	}
	// Walks draw from the merged span (tombstone included, rejected on
	// draw), so the estimate fluctuates around the live count of 3.
	if got := sparqlCount(t, ts, q, "aj"); got < 2.5 || got > 3.5 {
		t.Fatalf("post-ingest aj estimate = %v, want ≈3", got)
	}
	if lds.NumTriples() != before {
		t.Fatalf("live triples = %d, want %d (one add, one delete)", lds.NumTriples(), before)
	}

	// Malformed lines are the client's fault.
	if r := post(t, ts.URL+"/ingest", IngestRequest{Add: []string{"not a triple"}}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest status %d, want 400", r.StatusCode)
	}
}

func TestIngestRequiresLiveEpoch(t *testing.T) {
	ts := newTestServer(t)
	if r := post(t, ts.URL+"/ingest", IngestRequest{Add: []string{"<a> <b> <c> ."}}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("ingest on non-live epoch: status %d, want 400", r.StatusCode)
	}
}

func TestLiveDistinctTakesExactPath(t *testing.T) {
	_, _, ts := newLiveTestServer(t)
	// COUNT(DISTINCT ?o) over birthPlace: paris, lima → 2. The aj engine on
	// a live epoch must answer this EXACTLY (routed to merged enumeration,
	// never a biased overlay estimate).
	const q = `SELECT COUNT(DISTINCT ?o) WHERE { ?s <birthPlace> ?o }`
	if got := sparqlCount(t, ts, q, "aj"); got != 2 {
		t.Fatalf("distinct via aj on live epoch = %v, want exact 2", got)
	}
}

func TestLiveHealthzAndChartTelemetry(t *testing.T) {
	_, lds, ts := newLiveTestServer(t)
	if _, err := lds.IngestNTriples([]string{"<dave> <birthPlace> <lima> ."}, []string{"<carol> <birthPlace> <lima> ."}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Live == nil {
		t.Fatal("healthz has no live body on a live epoch")
	}
	if h.Live.DeltaAdds != 1 || h.Live.Tombstones != 1 {
		t.Fatalf("live overlay telemetry = %+v, want 1 add / 1 tombstone", h.Live)
	}
	if h.Live.AppliedBatches != 1 {
		t.Fatalf("applied batches = %d, want 1", h.Live.AppliedBatches)
	}

	var chart ChartResponse
	post(t, ts.URL+"/api/sparql", SPARQLRequest{Query: `SELECT COUNT(?s) WHERE { ?s <birthPlace> ?o }`}, &chart)
	if chart.Live == nil || chart.Live.Gen == 0 {
		t.Fatalf("chart carries no overlay generation: %+v", chart.Live)
	}
	if chart.Live.DeltaAdds != 1 || chart.Live.Tombstones != 1 {
		t.Fatalf("chart overlay telemetry = %+v", chart.Live)
	}
}

func TestRotateLiveEpochKeepsSessions(t *testing.T) {
	srv, lds, ts := newLiveTestServer(t)
	var sess StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &sess)

	if _, err := lds.IngestNTriples([]string{"<erin> <birthPlace> <paris> ."}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := lds.CompactInMemory()
	if err != nil {
		t.Fatal(err)
	}
	srv.RotateLiveEpoch(res.Retired)
	if got := srv.Swaps(); got != 0 {
		t.Fatalf("epoch rotation counted as admin swap: %d", got)
	}

	// The session survives the rotation (dictionary IDs are stable), and
	// charts reflect the compacted state.
	var chart ChartResponse
	r := post(t, ts.URL+"/api/session/"+sess.Session+"/chart", ChartRequest{Op: "subclass", Engine: "ctj"}, &chart)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("chart after rotation: status %d", r.StatusCode)
	}
	if got := sparqlCount(t, ts, `SELECT COUNT(?s) WHERE { ?s <birthPlace> ?o }`, "ctj"); got != 4 {
		t.Fatalf("post-compaction count = %v, want 4", got)
	}
}

func TestLiveAdminSwapRejected(t *testing.T) {
	ds, err := kgexplore.LoadNTriples(strings.NewReader(tinyNT))
	if err != nil {
		t.Fatal(err)
	}
	lds, err := ds.Live(kgexplore.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lds.Close() })
	srv := NewLive(lds, Provenance{Kind: "live"})
	srv.EnableAdmin = true
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if r := post(t, ts.URL+"/admin/swap", SwapRequest{Path: "x.kgs"}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("admin swap on live epoch: status %d, want 400", r.StatusCode)
	}
}

func TestLiveSPARQLUnion(t *testing.T) {
	_, _, ts := newLiveTestServer(t)
	const q = `SELECT COUNT(?o) WHERE { { ?s <birthPlace> ?o } UNION { ?o <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> } }`
	if got := sparqlCount(t, ts, q, "ctj"); got != 5 {
		t.Fatalf("live exact union = %v, want 5", got)
	}
	if got := sparqlCount(t, ts, q, "aj"); got < 4 || got > 6 {
		t.Fatalf("live online union = %v, want ≈5", got)
	}
	const qd = `SELECT COUNT(DISTINCT ?o) WHERE { { ?s <birthPlace> ?o } UNION { ?o <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> } }`
	if got := sparqlCount(t, ts, qd, "aj"); got != 2 {
		t.Fatalf("live distinct union = %v, want 2 (exact fallback)", got)
	}
}
