package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"kgexplore"
)

func readAll(t *testing.T, r io.Reader) string {
	t.Helper()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func shardedTestDataset(t *testing.T, k int) *kgexplore.ShardedDataset {
	t.Helper()
	ds := testDataset(t)
	sds, err := ds.BuildSharded(k, "")
	if err != nil {
		t.Fatal(err)
	}
	return sds
}

func newShardedTestServer(t *testing.T, k int) (*Server, *httptest.Server) {
	t.Helper()
	sds := shardedTestDataset(t, k)
	srv := NewSharded(sds, Provenance{
		Source: "tinyNT", Kind: "sharded", Triples: sds.NumTriples(), Shards: k,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestShardedHealthzReportsShards(t *testing.T) {
	_, ts := newShardedTestServer(t, 4)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Shards != 4 || h.Store.Kind != "sharded" || h.Store.Shards != 4 {
		t.Fatalf("healthz missing shard info: %+v", h)
	}
}

// TestShardedChartEngines drives every engine name through a sharded epoch:
// aj and wj run scatter-gather, the exact names run the resolver-backed
// union, and all of them agree with the exact counts on the tiny fixture.
func TestShardedChartEngines(t *testing.T) {
	_, ts := newShardedTestServer(t, 2)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)

	var exact ChartResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "out-property", Engine: "ctj"}, &exact)
	if exact.NumBars == 0 {
		t.Fatal("exact sharded chart returned no bars")
	}
	if exact.Shards != 2 {
		t.Fatalf("chart payload missing shard count: %+v", exact)
	}
	want := map[string]float64{}
	for _, b := range exact.Bars {
		want[b.Category] = b.Count
	}
	for _, engine := range []string{"aj", "wj", "lftj", "baseline", ""} {
		var c ChartResponse
		resp := post(t, ts.URL+"/api/session/"+st.Session+"/chart",
			ChartRequest{Op: "out-property", Engine: engine, BudgetMS: 200}, &c)
		if resp.StatusCode != 200 {
			t.Fatalf("engine %q: status %d", engine, resp.StatusCode)
		}
		if c.Shards != 2 {
			t.Fatalf("engine %q: chart payload missing shard count: %+v", engine, c)
		}
		// The fixture join is tiny, so even the estimators converge on it.
		for _, b := range c.Bars {
			if ex, ok := want[b.Category]; ok && b.Count < ex/2 {
				t.Errorf("engine %q: bar %q = %.1f, exact %.1f", engine, b.Category, b.Count, ex)
			}
		}
	}
	var bad errorBody
	resp := post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "out-property", Engine: "nope"}, &bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine accepted: %d", resp.StatusCode)
	}
}

func TestShardedStreamChart(t *testing.T) {
	_, ts := newShardedTestServer(t, 2)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)

	body := strings.NewReader(`{"op":"out-property","engine":"aj","budgetMs":80,"intervalMs":10}`)
	resp, err := http.Post(ts.URL+"/api/session/"+st.Session+"/chart?stream=1", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []ChartResponse
	for _, line := range strings.Split(readAll(t, resp.Body), "\n") {
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var c ChartResponse
			if err := json.Unmarshal([]byte(data), &c); err != nil {
				t.Fatal(err)
			}
			events = append(events, c)
		}
	}
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	last := events[len(events)-1]
	if !last.Final {
		t.Fatalf("last event not final: %+v", last)
	}
	if last.Shards != 2 || last.Walks == 0 {
		t.Fatalf("final sharded event incomplete: %+v", last)
	}
}

// TestSwapShardedRoundtrip hot-swaps monolithic → sharded (via a .kgm on
// disk through the admin endpoint) and back, checking provenance and that
// requests keep working across both directions.
func TestSwapShardedRoundtrip(t *testing.T) {
	ds := testDataset(t)
	srv := New(ds)
	srv.EnableAdmin = true
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	dir := t.TempDir()
	manifest := filepath.Join(dir, "set.kgm")
	sds := shardedTestDataset(t, 2)
	if _, err := sds.WriteShardedSnapshots(manifest, "tinyNT"); err != nil {
		t.Fatal(err)
	}
	sds.Close()

	var sw SwapResponse
	resp := post(t, ts.URL+"/admin/swap", SwapRequest{Path: manifest}, &sw)
	if resp.StatusCode != 200 {
		t.Fatalf("swap to sharded: status %d", resp.StatusCode)
	}
	if sw.Store.Kind != "sharded" || sw.Store.Shards != 2 {
		t.Fatalf("swap provenance: %+v", sw.Store)
	}
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)
	var c ChartResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "out-property", Engine: "aj", BudgetMS: 100}, &c)
	if c.NumBars == 0 || c.Shards != 2 {
		t.Fatalf("chart after swap to sharded: %+v", c)
	}

	// A corrupt manifest must be rejected and leave the sharded epoch serving.
	var bad errorBody
	resp = post(t, ts.URL+"/admin/swap", SwapRequest{Path: filepath.Join(dir, "missing.kgm")}, &bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing manifest accepted: %d", resp.StatusCode)
	}
	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Shards != 2 {
		t.Fatalf("failed swap disturbed the serving epoch: %+v", h)
	}
}

func TestShardCachesForWarmStart(t *testing.T) {
	sds := shardedTestDataset(t, 2)
	srv := NewSharded(sds, Provenance{Kind: "sharded", Shards: 2})
	q, err := sds.Root().Query(kgexplore.OpOutProp)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sds.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	c1 := srv.shardCachesFor(pl, 2)
	c2 := srv.shardCachesFor(pl, 2)
	if len(c1) != 2 || len(c2) != 2 || c1[0] != c2[0] {
		t.Fatal("same signature must share the per-shard caches")
	}
	srv.InvalidateShared()
	if c3 := srv.shardCachesFor(pl, 2); c3[0] == c1[0] {
		t.Fatal("InvalidateShared must discard shard caches")
	}
}

func TestShardedSPARQLUnion(t *testing.T) {
	_, ts := newShardedTestServer(t, 2)
	const q = `SELECT COUNT(?o) WHERE { { ?s <birthPlace> ?o } UNION { ?o <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> } }`
	if got := sparqlCount(t, ts, q, "ctj"); got != 5 {
		t.Fatalf("sharded exact union = %v, want 5", got)
	}
	if got := sparqlCount(t, ts, q, "aj"); got < 4 || got > 6 {
		t.Fatalf("sharded online union = %v, want ≈5", got)
	}
}
