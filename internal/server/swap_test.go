package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"kgexplore"
)

// altNT is a second dataset with a different shape (and thus different
// dictionary IDs) so swap tests can tell old and new stores apart.
const altNT = `
<d1> <locatedIn> <peru> .
<d2> <locatedIn> <peru> .
<d3> <locatedIn> <chile> .
<d4> <locatedIn> <chile> .
<d1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Dam> .
<d2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Dam> .
<d3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Dam> .
<d4> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Dam> .
<peru> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Country> .
<chile> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Country> .
`

func loadNT(t *testing.T, nt string) *kgexplore.Dataset {
	t.Helper()
	ds, err := kgexplore.LoadNTriples(strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// closeProbe records whether (and how often) an epoch's closer ran.
type closeProbe struct{ closed atomic.Int32 }

func (c *closeProbe) Close() error { c.closed.Add(1); return nil }

// TestSwapDrainsOldStore pins the drain contract deterministically: the old
// epoch's closer must not run while any request-side reference is live, and
// must run exactly once when the last reference goes away.
func TestSwapDrainsOldStore(t *testing.T) {
	probe := &closeProbe{}
	srv := NewWithProvenance(loadNT(t, tinyNT), Provenance{Kind: "parsed"}, probe)
	// A request pins the first epoch...
	e := srv.acquire()
	// ...and a swap arrives mid-flight.
	srv.Swap(loadNT(t, altNT), Provenance{Kind: "parsed"}, nil)
	if got := probe.closed.Load(); got != 0 {
		t.Fatalf("old store closed %d times with a request in flight", got)
	}
	if srv.Swaps() != 1 {
		t.Errorf("Swaps() = %d", srv.Swaps())
	}
	// New acquisitions see the new epoch and never touch the old closer.
	e2 := srv.acquire()
	e2.release()
	if got := probe.closed.Load(); got != 0 {
		t.Fatalf("old store closed %d times before drain", got)
	}
	e.release()
	if got := probe.closed.Load(); got != 1 {
		t.Fatalf("old store closed %d times after drain, want 1", got)
	}
}

// TestSwapClearsSessions: sessions carry exploration states whose IDs index
// the old dictionary, so they must not survive a swap.
func TestSwapClearsSessions(t *testing.T) {
	srv := New(loadNT(t, tinyNT))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)
	srv.Swap(loadNT(t, altNT), Provenance{Kind: "parsed"}, nil)
	resp, err := http.Get(ts.URL + "/api/session/" + st.Session)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("stale session answered %d, want 404", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	srv := NewWithProvenance(loadNT(t, tinyNT),
		Provenance{Source: "tiny.nt", Kind: "parsed", Triples: 10}, nil)
	srv.RebuildsFn = func() int { return 7 }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	get := func() HealthResponse {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h := get()
	if h.Status != "ok" || h.Store.Source != "tiny.nt" || h.Store.Kind != "parsed" || h.Rebuilds != 7 {
		t.Errorf("healthz = %+v", h)
	}
	srv.Swap(loadNT(t, altNT), Provenance{Source: "alt.nt", Kind: "parsed"}, nil)
	if h := get(); h.Swaps != 1 || h.Store.Source != "alt.nt" {
		t.Errorf("healthz after swap = %+v", h)
	}
}

// TestAdminSwapEndpoint exercises the full operator path: write a store
// snapshot, POST /admin/swap to it, and watch queries answer from the new
// data. Also checks the endpoint is absent unless EnableAdmin is set.
func TestAdminSwapEndpoint(t *testing.T) {
	srv := New(loadNT(t, tinyNT))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp := post(t, ts.URL+"/admin/swap", SwapRequest{Path: "x"}, nil)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("admin endpoint mounted without EnableAdmin")
	}
	ts.Close()

	srv.EnableAdmin = true
	ts = httptest.NewServer(srv.Handler())
	defer ts.Close()

	snapPath := filepath.Join(t.TempDir(), "alt.kgs")
	if err := loadNT(t, altNT).WriteStoreSnapshotFile(snapPath, "alt"); err != nil {
		t.Fatal(err)
	}
	var sr SwapResponse
	if resp := post(t, ts.URL+"/admin/swap", SwapRequest{Path: snapPath}, &sr); resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status %d", resp.StatusCode)
	}
	if sr.Store.Kind != "snapshot" || sr.Swaps != 1 {
		t.Errorf("swap response = %+v", sr)
	}
	// The new data answers: altNT has 4 Dam instances.
	var chart ChartResponse
	post(t, ts.URL+"/api/sparql", SPARQLRequest{
		Query:  `SELECT COUNT(?x) WHERE { ?x a <Dam> . }`,
		Engine: "ctj",
	}, &chart)
	if len(chart.Bars) != 1 || chart.Bars[0].Count != 4 {
		t.Errorf("post-swap chart = %+v", chart)
	}
	// A bad path must not disturb the serving epoch.
	if resp := post(t, ts.URL+"/admin/swap", SwapRequest{Path: "/nonexistent.kgs"}, nil); resp.StatusCode == http.StatusOK {
		t.Error("swap to missing file succeeded")
	}
	if got := srv.Swaps(); got != 1 {
		t.Errorf("Swaps() = %d after failed swap", got)
	}
}

// TestHotSwapUnderLoad hammers the query endpoint from many goroutines while
// the store is swapped repeatedly between two snapshot epochs. Every request
// must complete successfully (no dropped in-flight runs), and — run under
// -race in CI — the epoch lifecycle must be free of data races. The query
// uses only rdf:type, which both datasets intern during load, so concurrent
// parsing never mutates a dictionary.
func TestHotSwapUnderLoad(t *testing.T) {
	sp1 := filepath.Join(t.TempDir(), "a.kgs")
	sp2 := filepath.Join(t.TempDir(), "b.kgs")
	if err := loadNT(t, tinyNT).WriteStoreSnapshotFile(sp1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := loadNT(t, altNT).WriteStoreSnapshotFile(sp2, "b"); err != nil {
		t.Fatal(err)
	}
	ds, prov, closer, err := LoadDataset(sp1, true)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithProvenance(ds, prov, closer)
	srv.EnableAdmin = true
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers, perWorker, swapsWanted = 8, 40, 6
	var wg sync.WaitGroup
	var failures atomic.Int32
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Counting rdf:type edges is valid on either store, and both
			// dictionaries hold the rdf:type constant already (every load
			// interns it), so concurrent parsing is read-only on the
			// dictionary.
			body := fmt.Sprintf(`{"query":"SELECT COUNT(?x) WHERE { ?x a ?t . }","engine":"%s","budgetMs":5}`,
				[]string{"ctj", "aj"}[w%2])
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/api/sparql", "application/json", strings.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				resp.Body.Close()
			}
		}(w)
	}
	var swapFailures atomic.Int32
	go func() {
		// No t.Fatal here: FailNow must not run off the test goroutine.
		defer close(done)
		paths := [2]string{sp2, sp1}
		for i := 0; i < swapsWanted; i++ {
			body := fmt.Sprintf(`{"path":%q}`, paths[i%2])
			resp, err := http.Post(ts.URL+"/admin/swap", "application/json", strings.NewReader(body))
			if err != nil || resp.StatusCode != http.StatusOK {
				swapFailures.Add(1)
			}
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	<-done
	if n := swapFailures.Load(); n != 0 {
		t.Errorf("%d swaps failed", n)
	}
	if n := failures.Load(); n != 0 {
		t.Errorf("%d of %d requests failed across swaps", n, workers*perWorker)
	}
	if got := srv.Swaps(); got != swapsWanted {
		t.Errorf("Swaps() = %d, want %d", got, swapsWanted)
	}
	// After traffic drains, exactly one epoch (the final one) must be live;
	// swapping once more and releasing the server reference closes it too.
	if h := func() HealthResponse {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}(); h.Store.Kind != "snapshot" {
		t.Errorf("final store provenance = %+v", h.Store)
	}
}
