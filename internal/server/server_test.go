package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kgexplore"
)

const tinyNT = `
<alice> <birthPlace> <paris> .
<bob> <birthPlace> <paris> .
<carol> <birthPlace> <lima> .
<alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <Person> .
<paris> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> .
<lima> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> .
`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ds, err := kgexplore.LoadNTriples(strings.NewReader(tinyNT))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ds)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp
}

func TestInfo(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Triples == 0 || info.IndexBytes == 0 {
		t.Errorf("info = %+v", info)
	}
}

func TestSessionLifecycle(t *testing.T) {
	ts := newTestServer(t)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)
	if st.Session == "" || st.Kind != "class" || st.Depth != 0 {
		t.Fatalf("new session = %+v", st)
	}
	if len(st.Ops) != 3 {
		t.Errorf("root ops = %v", st.Ops)
	}

	// Chart: subclasses of the root, exact.
	var chart ChartResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "subclass", Engine: "ctj"}, &chart)
	if chart.NumBars == 0 {
		t.Fatalf("chart = %+v", chart)
	}
	// Select the first bar.
	var st2 StateResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/select",
		SelectRequest{Op: "subclass", Category: chart.Bars[0].Category}, &st2)
	if st2.Category != chart.Bars[0].Category {
		t.Errorf("selected state = %+v", st2)
	}
	// Back.
	var st3 StateResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/back", struct{}{}, &st3)
	if st3.Category != st.Category {
		t.Errorf("back state = %+v", st3)
	}
	// Get.
	resp, err := http.Get(ts.URL + "/api/session/" + st.Session)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("get session status = %d", resp.StatusCode)
	}
}

func TestChartEngines(t *testing.T) {
	ts := newTestServer(t)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)
	for _, engine := range []string{"", "aj", "wj", "ctj", "lftj", "baseline"} {
		var chart ChartResponse
		resp := post(t, ts.URL+"/api/session/"+st.Session+"/chart",
			ChartRequest{Op: "out-property", Engine: engine, BudgetMS: 30}, &chart)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("engine %q: status %d", engine, resp.StatusCode)
		}
		if chart.NumBars == 0 {
			t.Errorf("engine %q: no bars", engine)
		}
	}
}

func TestChartTopN(t *testing.T) {
	ts := newTestServer(t)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)
	var chart ChartResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "out-property", Engine: "ctj", TopN: 1}, &chart)
	if len(chart.Bars) != 1 || chart.NumBars < 2 {
		t.Errorf("topN: bars=%d numBars=%d", len(chart.Bars), chart.NumBars)
	}
}

func TestSPARQLEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var chart ChartResponse
	resp := post(t, ts.URL+"/api/sparql", SPARQLRequest{
		Query:  `SELECT ?c COUNT(DISTINCT ?o) WHERE { ?s <birthPlace> ?o . ?o a ?c } GROUP BY ?c`,
		Engine: "ctj",
	}, &chart)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if chart.NumBars != 1 || chart.Bars[0].Count != 2 {
		t.Errorf("sparql chart = %+v, want City:2", chart)
	}
}

func TestErrors(t *testing.T) {
	ts := newTestServer(t)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)

	cases := []struct {
		name string
		url  string
		body any
	}{
		{"unknown session", ts.URL + "/api/session/999/chart", ChartRequest{Op: "subclass"}},
		{"bad op", ts.URL + "/api/session/" + st.Session + "/chart", ChartRequest{Op: "zap"}},
		{"illegal op", ts.URL + "/api/session/" + st.Session + "/chart", ChartRequest{Op: "object"}},
		{"bad engine", ts.URL + "/api/session/" + st.Session + "/chart", ChartRequest{Op: "subclass", Engine: "magic"}},
		{"bad category", ts.URL + "/api/session/" + st.Session + "/select", SelectRequest{Op: "subclass", Category: "nope"}},
		{"bad sparql", ts.URL + "/api/sparql", SPARQLRequest{Query: "SELECT nonsense"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var e errorBody
			resp := post(t, c.url, c.body, &e)
			if resp.StatusCode == http.StatusOK {
				t.Errorf("status OK, want error; body=%+v", e)
			}
			if e.Error == "" {
				t.Error("no error message")
			}
		})
	}
}

func TestIndexPage(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "kgexplore") {
		t.Error("index page missing UI")
	}
	// Unknown paths 404.
	resp2, _ := http.Get(ts.URL + "/nope")
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp2.StatusCode)
	}
}

func TestBudgetCapped(t *testing.T) {
	ds, err := kgexplore.LoadNTriples(strings.NewReader(tinyNT))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ds)
	srv.MaxBudget = 20 * 1e6 // 20ms
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)
	var chart ChartResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "subclass", Engine: "aj", BudgetMS: 10000}, &chart)
	if chart.Millis > 2000 {
		t.Errorf("budget cap ignored: took %dms", chart.Millis)
	}
}

func TestPprofDisabledByDefault(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("/debug/pprof/ reachable without EnablePprof")
	}
}

func TestPprofEnabled(t *testing.T) {
	ds, err := kgexplore.LoadNTriples(strings.NewReader(tinyNT))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ds)
	srv.EnablePprof = true
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestSPARQLUnionEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// birthPlace targets {paris ×2, lima} plus the type edges into City
	// {paris, lima}: the bag union counts 5, the DISTINCT union collapses
	// the overlap to {paris, lima} = 2.
	for _, tc := range []struct {
		name, q, engine string
		want            float64
	}{
		{"bag", `SELECT COUNT(?o) WHERE { { ?s <birthPlace> ?o } UNION { ?o <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> } }`, "ctj", 5},
		{"bag-lftj", `SELECT COUNT(?o) WHERE { { ?s <birthPlace> ?o } UNION { ?o <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> } }`, "lftj", 5},
		{"distinct", `SELECT COUNT(DISTINCT ?o) WHERE { { ?s <birthPlace> ?o } UNION { ?o <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> } }`, "aj", 2},
	} {
		var chart ChartResponse
		resp := post(t, ts.URL+"/api/sparql", SPARQLRequest{Query: tc.q, Engine: tc.engine, BudgetMS: 30}, &chart)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d", tc.name, resp.StatusCode)
		}
		if chart.NumBars != 1 || chart.Bars[0].Count != tc.want {
			t.Errorf("%s: union chart = %+v, want %v", tc.name, chart.Bars, tc.want)
		}
	}
	// Online union estimation answers too (tiny graph, walks converge).
	var chart ChartResponse
	resp := post(t, ts.URL+"/api/sparql", SPARQLRequest{
		Query:    `SELECT COUNT(?o) WHERE { { ?s <birthPlace> ?o } UNION { ?o <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <City> } }`,
		Engine:   "aj",
		BudgetMS: 50,
	}, &chart)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("online union status = %d", resp.StatusCode)
	}
	if chart.NumBars != 1 || chart.Bars[0].Count < 4 || chart.Bars[0].Count > 6 {
		t.Errorf("online union chart = %+v, want ≈5", chart.Bars)
	}
}
