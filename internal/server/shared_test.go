package server

import (
	"context"
	"strings"
	"testing"
	"time"

	"kgexplore"
)

// testPlan compiles the out-property exploration query of the dataset root,
// the same plan the chart handler builds for {"op": "out-property"}.
func testPlan(t *testing.T, ds *kgexplore.Dataset) *kgexplore.Plan {
	t.Helper()
	q, err := ds.Root().Query(kgexplore.OpOutProp)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := ds.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func testDataset(t *testing.T) *kgexplore.Dataset {
	t.Helper()
	ds, err := kgexplore.LoadNTriples(strings.NewReader(tinyNT))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func missTotal(cs kgexplore.CTJCacheStats) int64 {
	return cs.CountMisses + cs.AggMisses + cs.ExistMisses + cs.ProbMisses
}

func hitTotal(cs kgexplore.CTJCacheStats) int64 {
	return cs.CountHits + cs.AggHits + cs.ExistHits + cs.ProbHits
}

// TestSharedCacheForWarmStart drives two identical aj runs at the same fixed
// seed through the server's warm-start cache: the second run replays the
// first's walks, so every CTJ lookup it makes must be answered by the cache
// the first run populated — zero new misses.
func TestSharedCacheForWarmStart(t *testing.T) {
	ds := testDataset(t)
	srv := New(ds)
	pl := testPlan(t, ds)

	run := func() kgexplore.CTJCacheStats {
		r := ds.NewAuditJoin(pl, kgexplore.AuditJoinOptions{
			Threshold: kgexplore.DefaultTippingThreshold,
			Seed:      42,
			Shared:    srv.sharedCacheFor(pl),
		})
		if _, err := kgexplore.Drive(context.Background(), r, kgexplore.DriveOptions{MaxWalks: 200}); err != nil {
			t.Fatal(err)
		}
		return r.CacheStats()
	}

	first := run()
	if missTotal(first) == 0 {
		t.Fatalf("first run populated nothing: %+v", first)
	}
	second := run()
	if got := missTotal(second); got != 0 {
		t.Errorf("warm-started identical run missed %d times: %+v", got, second)
	}
	if hitTotal(second) == 0 {
		t.Errorf("warm-started run saw no hits: %+v", second)
	}
}

// TestSharedCacheForIdentity checks the warm-start map's keying: same plan
// signature → same cache object, different signature → different object.
func TestSharedCacheForIdentity(t *testing.T) {
	ds := testDataset(t)
	srv := New(ds)
	pl := testPlan(t, ds)

	c1 := srv.sharedCacheFor(pl)
	c2 := srv.sharedCacheFor(pl)
	if c1 == nil || c1 != c2 {
		t.Fatalf("same signature should share one cache: %p vs %p", c1, c2)
	}

	q, err := ds.Root().Query(kgexplore.OpInProp)
	if err != nil {
		t.Fatal(err)
	}
	other, err := ds.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if c3 := srv.sharedCacheFor(other); c3 == c1 {
		t.Error("different signatures must not share a cache")
	}
}

func TestInvalidateSharedDropsWarmStarts(t *testing.T) {
	ds := testDataset(t)
	srv := New(ds)
	pl := testPlan(t, ds)

	before := srv.sharedCacheFor(pl)
	srv.InvalidateShared()
	if after := srv.sharedCacheFor(pl); after == before {
		t.Error("InvalidateShared must discard existing caches")
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	ds := testDataset(t)
	srv := New(ds)
	srv.MaxPlanCaches = 1
	// Deterministic LRU clock.
	tick := time.Unix(0, 0)
	srv.now = func() time.Time { tick = tick.Add(time.Second); return tick }
	pl := testPlan(t, ds)

	first := srv.sharedCacheFor(pl)
	q, err := ds.Root().Query(kgexplore.OpInProp)
	if err != nil {
		t.Fatal(err)
	}
	other, err := ds.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	srv.sharedCacheFor(other) // evicts the out-property entry

	srv.mu.Lock()
	n := len(srv.planCaches)
	srv.mu.Unlock()
	if n != 1 {
		t.Fatalf("planCaches size = %d, want 1", n)
	}
	if again := srv.sharedCacheFor(pl); again == first {
		t.Error("evicted entry must be rebuilt, not resurrected")
	}
}

func TestMaxPlanCachesZeroDisablesWarmStart(t *testing.T) {
	ds := testDataset(t)
	srv := New(ds)
	srv.MaxPlanCaches = 0
	if c := srv.sharedCacheFor(testPlan(t, ds)); c != nil {
		t.Errorf("expected nil cache with warm starts disabled, got %p", c)
	}
}

// TestChartResponseCacheStats checks the HTTP payload: aj charts report run
// and shared cache stats, and the shared view grows across requests.
func TestChartResponseCacheStats(t *testing.T) {
	ts := newTestServer(t)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)

	chart := func() ChartResponse {
		var c ChartResponse
		resp := post(t, ts.URL+"/api/session/"+st.Session+"/chart",
			ChartRequest{Op: "out-property", Engine: "aj", BudgetMS: 30}, &c)
		if resp.StatusCode != 200 {
			t.Fatalf("chart status %d", resp.StatusCode)
		}
		return c
	}

	first := chart()
	if first.Cache == nil || first.Cache.Shared == nil {
		t.Fatalf("aj chart must report run+shared cache stats: %+v", first.Cache)
	}
	second := chart()
	if second.Cache == nil || second.Cache.Shared == nil {
		t.Fatalf("second aj chart lost cache stats: %+v", second.Cache)
	}
	bodyOps := func(b *CacheStatsBody) int64 {
		return b.CountHits + b.CountMisses + b.AggHits + b.AggMisses +
			b.ExistHits + b.ExistMisses + b.ProbHits + b.ProbMisses
	}
	firstOps := bodyOps(first.Cache.Shared)
	secondOps := bodyOps(second.Cache.Shared)
	if secondOps <= firstOps {
		t.Errorf("shared view should accumulate across requests: %d then %d", firstOps, secondOps)
	}

	// Exact engines have no CTJ run stats to report.
	var exact ChartResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "out-property", Engine: "baseline"}, &exact)
	if exact.Cache != nil {
		t.Errorf("exact engine should not report cache stats: %+v", exact.Cache)
	}
}
