package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"kgexplore"

	"kgexplore/internal/dist"
)

// writeDistManifest writes the tiny fixture as a k-shard set on disk and
// returns the manifest path.
func writeDistManifest(t *testing.T, k int) string {
	t.Helper()
	manifest := filepath.Join(t.TempDir(), "set.kgm")
	sds := shardedTestDataset(t, k)
	if _, err := sds.WriteShardedSnapshots(manifest, "tinyNT"); err != nil {
		t.Fatal(err)
	}
	sds.Close()
	return manifest
}

// startDistFleet spins n in-process replicate workers over the manifest and
// returns their addresses.
func startDistFleet(t *testing.T, manifest string, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w, err := dist.NewWorker(dist.WorkerOptions{Manifest: manifest, Shard: i})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			w.Close()
			t.Fatal(err)
		}
		go w.Serve(ln)
		t.Cleanup(func() { w.Close() })
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

func newDistTestServer(t *testing.T, k, n int) (*Server, *httptest.Server, string) {
	t.Helper()
	manifest := writeDistManifest(t, k)
	addrs := startDistFleet(t, manifest, n)
	dds, err := kgexplore.DialDistDataset(context.Background(), manifest, addrs)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewDist(dds, Provenance{
		Source: manifest, Kind: "distributed",
		Triples: dds.NumTriples(), Shards: k, Workers: n,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, manifest
}

func TestDistHealthzReportsFleet(t *testing.T) {
	_, ts, _ := newDistTestServer(t, 2, 2)
	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" || h.Store.Kind != "distributed" || h.Shards != 2 {
		t.Fatalf("healthz = %+v", h)
	}
	if len(h.Workers) != 2 {
		t.Fatalf("healthz lists %d workers, want 2: %+v", len(h.Workers), h.Workers)
	}
	for _, wh := range h.Workers {
		if !wh.Up || wh.Stats == nil || wh.Stats.Triples == 0 {
			t.Fatalf("worker health incomplete: %+v", wh)
		}
	}

	var info InfoResponse
	getJSON(t, ts.URL+"/api/info", &info)
	if info.Shards != 2 || info.Workers != 2 || info.Triples == 0 {
		t.Fatalf("info = %+v", info)
	}
}

// TestDistChartEngines drives every engine name through a distributed
// epoch: aj and wj scatter over the fleet, the exact names run on one
// worker, and all agree with the exact counts on the tiny fixture. The aj
// payload must carry the distribution telemetry.
func TestDistChartEngines(t *testing.T) {
	_, ts, _ := newDistTestServer(t, 2, 2)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)

	var exact ChartResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "out-property", Engine: "ctj"}, &exact)
	if exact.NumBars == 0 || exact.Shards != 2 {
		t.Fatalf("exact distributed chart: %+v", exact)
	}
	want := map[string]float64{}
	for _, b := range exact.Bars {
		want[b.Category] = b.Count
	}
	for _, engine := range []string{"aj", "wj", "lftj", "baseline", ""} {
		var c ChartResponse
		resp := post(t, ts.URL+"/api/session/"+st.Session+"/chart",
			ChartRequest{Op: "out-property", Engine: engine, BudgetMS: 200}, &c)
		if resp.StatusCode != 200 {
			t.Fatalf("engine %q: status %d", engine, resp.StatusCode)
		}
		if c.Shards != 2 {
			t.Fatalf("engine %q: chart payload missing shard count: %+v", engine, c)
		}
		switch engine {
		case "aj", "wj", "":
			if c.Dist == nil || len(c.Dist.StratumWorkers) != 2 {
				t.Fatalf("engine %q: missing distribution telemetry: %+v", engine, c.Dist)
			}
			if c.Dist.WireInBytes == 0 || c.Dist.WireOutBytes == 0 {
				t.Fatalf("engine %q: zero wire bytes: %+v", engine, c.Dist)
			}
		}
		for _, b := range c.Bars {
			if ex, ok := want[b.Category]; ok && b.Count < ex/2 {
				t.Errorf("engine %q: bar %q = %.1f, exact %.1f", engine, b.Category, b.Count, ex)
			}
		}
	}
	var bad errorBody
	resp := post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "out-property", Engine: "nope"}, &bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine accepted: %d", resp.StatusCode)
	}

	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.DistRuns == 0 {
		t.Fatalf("healthz did not count distributed runs: %+v", h)
	}
}

func TestDistStreamChart(t *testing.T) {
	_, ts, _ := newDistTestServer(t, 2, 2)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)

	body := strings.NewReader(`{"op":"out-property","engine":"aj","budgetMs":80,"intervalMs":10}`)
	resp, err := http.Post(ts.URL+"/api/session/"+st.Session+"/chart?stream=1", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []ChartResponse
	for _, line := range strings.Split(readAll(t, resp.Body), "\n") {
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var c ChartResponse
			if err := json.Unmarshal([]byte(data), &c); err != nil {
				t.Fatal(err)
			}
			events = append(events, c)
		}
	}
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	last := events[len(events)-1]
	if !last.Final || last.Shards != 2 || last.Walks == 0 {
		t.Fatalf("final distributed event incomplete: %+v", last)
	}
}

// TestDistAdminSwap exercises the fleet-wide hot swap through the admin
// endpoint: a bad path must leave the fleet and the serving epoch
// untouched, a .kgs path must be refused outright, and a valid manifest
// (with a different shard count) must swap every worker and the local
// epoch together.
func TestDistAdminSwap(t *testing.T) {
	srv, ts, _ := newDistTestServer(t, 2, 2)
	srv.EnableAdmin = true
	ts2 := httptest.NewServer(srv.Handler())
	t.Cleanup(ts2.Close)
	_ = ts

	var bad errorBody
	if resp := post(t, ts2.URL+"/admin/swap", SwapRequest{Path: "/nonexistent.kgm"}, &bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("swap to missing manifest: status %d", resp.StatusCode)
	}
	if resp := post(t, ts2.URL+"/admin/swap", SwapRequest{Path: "/data.kgs"}, &bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-manifest path accepted on a distributed epoch: status %d", resp.StatusCode)
	}
	var h HealthResponse
	getJSON(t, ts2.URL+"/healthz", &h)
	if h.Shards != 2 || h.Swaps != 0 {
		t.Fatalf("failed swaps disturbed the epoch: %+v", h)
	}

	next := writeDistManifest(t, 3)
	var sw SwapResponse
	if resp := post(t, ts2.URL+"/admin/swap", SwapRequest{Path: next}, &sw); resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet swap: status %d (%+v)", resp.StatusCode, sw)
	}
	if sw.Store.Kind != "distributed" || sw.Store.Shards != 3 || sw.Swaps != 1 {
		t.Fatalf("swap response = %+v", sw)
	}
	getJSON(t, ts2.URL+"/healthz", &h)
	if h.Shards != 3 || len(h.Workers) != 2 {
		t.Fatalf("healthz after swap = %+v", h)
	}
	for _, wh := range h.Workers {
		if !wh.Up || wh.Stats == nil || wh.Stats.Epoch != 1 || wh.Stats.Swaps != 1 {
			t.Fatalf("worker did not advance its epoch: %+v", wh)
		}
	}
	// The swapped fleet answers charts with the new shard count.
	var st StateResponse
	post(t, ts2.URL+"/api/session", struct{}{}, &st)
	var c ChartResponse
	post(t, ts2.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "out-property", Engine: "aj", BudgetMS: 100}, &c)
	if c.NumBars == 0 || c.Shards != 3 {
		t.Fatalf("chart after fleet swap: %+v", c)
	}
}
