// Package server implements the web-application side of the paper's system
// architecture (Fig. 1): a JSON/HTTP API over the exploration model and the
// query engines, plus a minimal built-in web UI that renders the bar charts.
//
// Sessions hold exploration state (the current bar and the undo stack);
// chart requests pick an engine — Audit Join by default, for the paper's
// interactive-latency goal — and a time budget for the online estimators.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"kgexplore"
)

// Server is the HTTP handler. Create with New and mount with Handler.
type Server struct {
	ds *kgexplore.Dataset

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int64

	// MaxBudget caps per-request online-aggregation time.
	MaxBudget time.Duration
}

type session struct {
	state *kgexplore.ExploreState
	stack []*kgexplore.ExploreState
}

// New creates a server over a prepared dataset.
func New(ds *kgexplore.Dataset) *Server {
	return &Server{
		ds:        ds,
		sessions:  make(map[string]*session),
		MaxBudget: 5 * time.Second,
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/info", s.handleInfo)
	mux.HandleFunc("POST /api/session", s.handleNewSession)
	mux.HandleFunc("GET /api/session/{id}", s.handleGetSession)
	mux.HandleFunc("POST /api/session/{id}/chart", s.handleChart)
	mux.HandleFunc("POST /api/session/{id}/select", s.handleSelect)
	mux.HandleFunc("POST /api/session/{id}/back", s.handleBack)
	mux.HandleFunc("POST /api/sparql", s.handleSPARQL)
	mux.HandleFunc("GET /", s.handleIndex)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// InfoResponse describes the dataset.
type InfoResponse struct {
	Triples    int   `json:"triples"`
	IndexBytes int64 `json:"indexBytes"`
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, InfoResponse{
		Triples:    s.ds.NumTriples(),
		IndexBytes: s.ds.IndexBytes(),
	})
}

// StateResponse describes a session's current bar.
type StateResponse struct {
	Session  string   `json:"session"`
	Kind     string   `json:"kind"`
	Category string   `json:"category"`
	Depth    int      `json:"depth"`
	Ops      []string `json:"ops"`
}

func (s *Server) stateResponse(id string, sess *session) StateResponse {
	var ops []string
	for _, op := range kgexplore.ExpansionsOf(sess.state) {
		ops = append(ops, op.String())
	}
	return StateResponse{
		Session:  id,
		Kind:     sess.state.Kind.String(),
		Category: s.ds.Dict().Term(sess.state.Category).Value,
		Depth:    sess.state.Depth(),
		Ops:      ops,
	}
}

func (s *Server) handleNewSession(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	s.nextID++
	id := strconv.FormatInt(s.nextID, 10)
	sess := &session{state: s.ds.Root()}
	s.sessions[id] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.stateResponse(id, sess))
}

func (s *Server) session(r *http.Request) (string, *session, error) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return "", nil, fmt.Errorf("unknown session %q", id)
	}
	return id, sess, nil
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	id, sess, err := s.session(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, s.stateResponse(id, sess))
}

// ChartRequest asks for an expansion's bar chart.
type ChartRequest struct {
	Op       string `json:"op"`
	Engine   string `json:"engine"`   // aj (default), wj, ctj, lftj, baseline
	BudgetMS int    `json:"budgetMs"` // online engines; default 300
	TopN     int    `json:"topN"`     // 0: all bars
}

// ChartBar is one rendered bar.
type ChartBar struct {
	Category string  `json:"category"`
	Count    float64 `json:"count"`
	CI       float64 `json:"ci,omitempty"`
}

// ChartResponse is a rendered chart.
type ChartResponse struct {
	Op      string     `json:"op"`
	Engine  string     `json:"engine"`
	Millis  int64      `json:"millis"`
	NumBars int        `json:"numBars"`
	Bars    []ChartBar `json:"bars"`
}

func parseOp(name string) (kgexplore.ExploreOp, error) {
	switch name {
	case "subclass":
		return kgexplore.OpSubclass, nil
	case "out-property":
		return kgexplore.OpOutProp, nil
	case "in-property":
		return kgexplore.OpInProp, nil
	case "object":
		return kgexplore.OpObject, nil
	case "subject":
		return kgexplore.OpSubject, nil
	default:
		return 0, fmt.Errorf("unknown op %q", name)
	}
}

func (s *Server) handleChart(w http.ResponseWriter, r *http.Request) {
	_, sess, err := s.session(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req ChartRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	op, err := parseOp(req.Op)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	q, err := sess.state.Query(op)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	pl, err := s.ds.Compile(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	counts, ci, err := s.evaluate(pl, req.Engine, req.BudgetMS)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := ChartResponse{
		Op:     req.Op,
		Engine: engineName(req.Engine),
		Millis: time.Since(start).Milliseconds(),
	}
	bars := s.ds.BarsOf(counts, ci)
	resp.NumBars = len(bars)
	if req.TopN > 0 && len(bars) > req.TopN {
		bars = bars[:req.TopN]
	}
	for _, b := range bars {
		resp.Bars = append(resp.Bars, ChartBar{Category: b.Category.Value, Count: b.Count, CI: b.CI})
	}
	writeJSON(w, http.StatusOK, resp)
}

func engineName(e string) string {
	if e == "" {
		return "aj"
	}
	return e
}

func (s *Server) evaluate(pl *kgexplore.Plan, engine string, budgetMS int) (map[kgexplore.ID]float64, map[kgexplore.ID]float64, error) {
	budget := time.Duration(budgetMS) * time.Millisecond
	if budget <= 0 {
		budget = 300 * time.Millisecond
	}
	if budget > s.MaxBudget {
		budget = s.MaxBudget
	}
	switch engine {
	case "ctj":
		res, err := s.ds.Exact(pl, kgexplore.EngineCTJ)
		return res, nil, err
	case "lftj":
		res, err := s.ds.Exact(pl, kgexplore.EngineLFTJ)
		return res, nil, err
	case "baseline":
		res, err := s.ds.Exact(pl, kgexplore.EngineBaseline)
		return res, nil, err
	case "wj":
		r := s.ds.NewWanderJoin(pl, time.Now().UnixNano())
		r.RunFor(budget, 128)
		snap := r.Snapshot()
		return snap.Estimates, snap.CI, nil
	case "aj", "":
		r := s.ds.NewAuditJoin(pl, kgexplore.AuditJoinOptions{
			Threshold: kgexplore.DefaultTippingThreshold,
			Seed:      time.Now().UnixNano(),
		})
		r.RunFor(budget, 128)
		snap := r.Snapshot()
		return snap.Estimates, snap.CI, nil
	default:
		return nil, nil, fmt.Errorf("unknown engine %q", engine)
	}
}

// SelectRequest clicks a bar in an expansion chart.
type SelectRequest struct {
	Op       string `json:"op"`
	Category string `json:"category"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	id, sess, err := s.session(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req SelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	op, err := parseOp(req.Op)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	catID, ok := s.ds.Dict().LookupIRI(req.Category)
	if !ok {
		// Categories may be literals in principle; try a literal too.
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown category %q", req.Category))
		return
	}
	next, err := sess.state.Select(op, catID)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	sess.stack = append(sess.stack, sess.state)
	sess.state = next
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.stateResponse(id, sess))
}

func (s *Server) handleBack(w http.ResponseWriter, r *http.Request) {
	id, sess, err := s.session(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	if n := len(sess.stack); n > 0 {
		sess.state = sess.stack[n-1]
		sess.stack = sess.stack[:n-1]
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, s.stateResponse(id, sess))
}

// SPARQLRequest runs a Fig. 4 fragment query directly.
type SPARQLRequest struct {
	Query    string `json:"query"`
	Engine   string `json:"engine"`
	BudgetMS int    `json:"budgetMs"`
	TopN     int    `json:"topN"`
}

func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	var req SPARQLRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	parsed, err := s.ds.ParseQuery(req.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	pl, err := s.ds.Compile(parsed.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	counts, ci, err := s.evaluate(pl, req.Engine, req.BudgetMS)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := ChartResponse{
		Op:     "sparql",
		Engine: engineName(req.Engine),
		Millis: time.Since(start).Milliseconds(),
	}
	bars := s.ds.BarsOf(counts, ci)
	resp.NumBars = len(bars)
	if req.TopN > 0 && len(bars) > req.TopN {
		bars = bars[:req.TopN]
	}
	for _, b := range bars {
		label := b.Category.Value
		if label == "" {
			label = "(all)"
		}
		resp.Bars = append(resp.Bars, ChartBar{Category: label, Count: b.Count, CI: b.CI})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(indexHTML))
}

// indexHTML is a dependency-free single-page UI over the JSON API: it shows
// the current bar, its legal expansions, and renders chart responses as CSS
// bar charts; clicking a bar selects it and descends.
var indexHTML = strings.TrimSpace(`
<!doctype html>
<meta charset="utf-8">
<title>kgexplore</title>
<style>
body{font-family:system-ui,sans-serif;margin:2rem;max-width:60rem}
#state{margin:.5rem 0;color:#333}
.bar{display:flex;align-items:center;margin:2px 0;cursor:pointer}
.bar .label{width:22rem;overflow:hidden;text-overflow:ellipsis;white-space:nowrap;font-size:.85rem}
.bar .fill{background:#4a7;height:1rem;margin-right:.5rem}
.bar .n{font-size:.8rem;color:#555}
button{margin-right:.4rem}
</style>
<h1>kgexplore</h1>
<div id="state"></div>
<div id="ops"></div>
<div id="chart"></div>
<script>
let sid=null,lastOp=null;
async function j(url,body){const r=await fetch(url,{method:body?'POST':'GET',body:body?JSON.stringify(body):null});return r.json()}
async function start(){const s=await j('/api/session',{});render(s)}
function render(s){sid=s.session;
 document.getElementById('state').textContent=s.kind+' bar: '+s.category+' (depth '+s.depth+')';
 const ops=document.getElementById('ops');ops.innerHTML='';
 for(const op of s.ops){const b=document.createElement('button');b.textContent=op;
  b.onclick=()=>chart(op);ops.appendChild(b)}
 const back=document.createElement('button');back.textContent='back';
 back.onclick=async()=>{render(await j('/api/session/'+sid+'/back',{}))};ops.appendChild(back)}
async function chart(op){lastOp=op;
 const c=await j('/api/session/'+sid+'/chart',{op:op,topN:25});
 const div=document.getElementById('chart');div.innerHTML='<p>'+c.numBars+' bars ('+c.engine+', '+c.millis+'ms)</p>';
 const max=Math.max(...c.bars.map(b=>b.count),1);
 for(const b of c.bars){const row=document.createElement('div');row.className='bar';
  row.innerHTML='<span class="label">'+b.category+'</span><span class="fill" style="width:'+(300*b.count/max)+'px"></span><span class="n">'+Math.round(b.count)+(b.ci?' ±'+b.ci.toFixed(1):'')+'</span>';
  row.onclick=async()=>{const s=await j('/api/session/'+sid+'/select',{op:lastOp,category:b.category});
   if(!s.error){render(s);document.getElementById('chart').innerHTML=''}};
  div.appendChild(row)}}
start();
</script>
`)
