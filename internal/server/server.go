// Package server implements the web-application side of the paper's system
// architecture (Fig. 1): a JSON/HTTP API over the exploration model and the
// query engines, plus a minimal built-in web UI that renders the bar charts.
//
// Sessions hold exploration state (the current bar and the undo stack);
// chart requests pick an engine — Audit Join by default, for the paper's
// interactive-latency goal — and a time budget for the online estimators.
// Every engine call runs under the request's context, so an abandoned
// request stops computing; `?stream=1` on the chart endpoints switches to
// Server-Sent Events with a progressive snapshot per interval — online
// aggregation over the wire.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kgexplore"
)

// Provenance records where a served store came from, for /healthz and swap
// responses.
type Provenance struct {
	// Source is the file path or generator spec the store came from.
	Source string `json:"source"`
	// Kind is how it was materialized: "parsed" (text formats or graph
	// snapshots, through index.Build), "snapshot" (store snapshot, no
	// build), "generated", or "sharded" (a shard-set manifest).
	Kind string `json:"kind"`
	// Mmap is set on zero-copy snapshot loads.
	Mmap bool `json:"mmap,omitempty"`
	// Triples is the store's triple count at load time.
	Triples int `json:"triples"`
	// Shards is the shard count for sharded stores (0 for monolithic).
	Shards int `json:"shards,omitempty"`
	// Workers is the fleet size for distributed stores (0 otherwise).
	Workers int `json:"workers,omitempty"`
	// LoadMillis is how long the load (parse+build, or snapshot read) took.
	LoadMillis int64 `json:"loadMillis"`
}

// backend is what the handlers need from a served store, satisfied by
// *kgexplore.Dataset, *kgexplore.ShardedDataset, *kgexplore.DistDataset and
// *kgexplore.LiveDataset. Engine dispatch (which differs between them)
// lives in evaluate/streamChart, not here.
type backend interface {
	NumTriples() int
	IndexBytes() int64
	Dict() *kgexplore.Dict
	Root() *kgexplore.ExploreState
	ParseQuery(string) (*kgexplore.ParsedQuery, error)
	Compile(*kgexplore.Query) (*kgexplore.Plan, error)
	BarsOf(map[kgexplore.ID]float64, map[kgexplore.ID]float64) []kgexplore.Bar
	EstimatorName() string
}

// epoch is one served dataset generation. Requests acquire the current epoch
// for their whole run, so a hot swap never frees a store out from under an
// in-flight query: the old epoch's closer (an mmap'ed snapshot, typically)
// runs only when the server reference and every request reference are gone.
// Exactly one of ds/sds/dds/lds is non-nil; be always is.
type epoch struct {
	be     backend
	ds     *kgexplore.Dataset        // monolithic store, nil otherwise
	sds    *kgexplore.ShardedDataset // in-process shard set, nil otherwise
	dds    *kgexplore.DistDataset    // distributed worker fleet, nil otherwise
	lds    *kgexplore.LiveDataset    // live overlay store, nil otherwise
	prov   Provenance
	closer io.Closer
	refs   atomic.Int64 // starts at 1 for the server's own reference
}

func newEpoch(ds *kgexplore.Dataset, prov Provenance, closer io.Closer) *epoch {
	e := &epoch{be: ds, ds: ds, prov: prov, closer: closer}
	e.refs.Store(1)
	return e
}

func newShardedEpoch(sds *kgexplore.ShardedDataset, prov Provenance) *epoch {
	// The shard set owns its snapshot mappings; closing it is the epoch
	// drain action.
	e := &epoch{be: sds, sds: sds, prov: prov, closer: sds}
	e.refs.Store(1)
	return e
}

// newLiveEpoch wraps a live dataset generation. The base store's resources
// are owned by the live store itself (closed via LiveDataset.Close at
// process exit); a live epoch's closer is instead the RETIRED base of the
// compaction that rotated it out — set by RotateLiveEpoch just before the
// swap, so the old mmap unmaps only after every request that might hold a
// pre-compaction view has drained.
func newLiveEpoch(lds *kgexplore.LiveDataset, prov Provenance) *epoch {
	e := &epoch{be: lds, lds: lds, prov: prov}
	e.refs.Store(1)
	return e
}

func newDistEpoch(dds *kgexplore.DistDataset, prov Provenance) *epoch {
	// Closing the dist dataset releases only the LOCAL dictionary mapping;
	// the workers own their stores, and the shared coordinator survives
	// swaps (the successor epoch holds it).
	e := &epoch{be: dds, dds: dds, prov: prov, closer: dds}
	e.refs.Store(1)
	return e
}

// release drops one reference; the last one out closes the backing store.
func (e *epoch) release() {
	if e.refs.Add(-1) == 0 && e.closer != nil {
		e.closer.Close()
	}
}

// Server is the HTTP handler. Create with New and mount with Handler.
type Server struct {
	// cur is the serving epoch; guarded by mu, swapped atomically by Swap.
	cur   *epoch
	swaps int

	mu        sync.Mutex
	sessions  map[string]*session
	nextID    int64
	lastSweep time.Time
	// planCaches is the warm-start LRU: one shared CTJ cache per plan
	// signature, handed to every aj run of that plan. The eLinda exploration
	// workflow re-issues overlapping queries as the user expands bars, so
	// successive requests reuse suffix counts and Pr(b) sums computed by
	// earlier ones. Guarded by mu; bounded by MaxPlanCaches.
	planCaches map[string]*planCache

	// MaxBudget caps per-request online-aggregation time.
	MaxBudget time.Duration
	// SessionTTL is how long an untouched session survives; expired
	// sessions are removed by a lazy sweep on session traffic.
	SessionTTL time.Duration
	// MaxSessions caps live sessions; creating one beyond the cap evicts
	// the least recently used session.
	MaxSessions int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the handler.
	// Off by default: the profiling endpoints expose internals and should
	// only be reachable when explicitly requested (kgserver -pprof).
	EnablePprof bool
	// MaxPlanCaches caps the warm-start LRU of shared CTJ caches (one per
	// plan signature); creating one beyond the cap evicts the least recently
	// used cache. Zero or negative disables cross-request warm starts.
	MaxPlanCaches int
	// EnableAdmin mounts the mutating admin endpoints (POST /admin/swap).
	// Off by default: swapping the served store is an operator action
	// (kgserver -admin).
	EnableAdmin bool
	// RebuildsFn, when set, reports dynamic-store rebuild counts in
	// /healthz (wired to dynamic.Store.Rebuilds by the embedding process).
	RebuildsFn func() int
	// PersistErrFn, when set, reports the embedding process's last
	// persistence error in /healthz's lastError (wired to
	// dynamic.Store.PersistErr). Live epochs report their own WAL and
	// compaction errors there without this hook.
	PersistErrFn func() error
	// Estimator, when set, is applied (Dataset.UseEstimator) to every
	// dataset installed by an admin swap, so a server started with
	// -estimator keeps its selection across hot swaps. The initial dataset's
	// estimator is the embedding process's job (kgserver sets both).
	Estimator string
	// Strategy selects the online sampling strategy: "uniform" (default,
	// uniform walk roots) or "stratified" (semantic-aware stratified
	// sampling — walk roots stratified by characteristic-set bucket with
	// Neyman-allocated budgets). Applies to aj and wj runs on every epoch
	// kind: monolithic runners, sharded scatter and distributed runs.
	Strategy string

	// tipDiag accumulates estimate-vs-actual tipping diagnostics across
	// every Audit Join run this process served, for /healthz; guarded by mu.
	tipDiag kgexplore.TipDiagnostics

	// now is the clock, overridable in tests.
	now func() time.Time
}

type session struct {
	state    *kgexplore.ExploreState
	stack    []*kgexplore.ExploreState
	lastUsed time.Time
}

// planCache is one warm-start entry: the shared CTJ cache for a plan
// signature (monolithic aj runs) or the per-shard suffix caches (sharded
// scatter-gather runs), plus its LRU timestamp. Both kinds key on the plan
// signature and are dropped wholesale on Swap, since their keys embed the
// epoch's dictionary IDs.
type planCache struct {
	cache       *kgexplore.SharedCTJCache
	shardCaches []*kgexplore.ShardCache
	lastUsed    time.Time
}

// New creates a server over a prepared dataset. Use NewWithProvenance to
// record where the dataset came from (and, for mmap'ed snapshot loads, the
// closer that Swap releases once the epoch drains).
func New(ds *kgexplore.Dataset) *Server {
	return NewWithProvenance(ds, Provenance{Kind: "parsed", Triples: ds.NumTriples()}, nil)
}

// NewWithProvenance creates a server over a prepared dataset with explicit
// store provenance. closer, if non-nil, is closed when the dataset's epoch
// fully drains after a Swap (never while any request still uses it).
func NewWithProvenance(ds *kgexplore.Dataset, prov Provenance, closer io.Closer) *Server {
	return newServer(newEpoch(ds, prov, closer))
}

// NewSharded creates a server over a sharded dataset; chart requests then
// run scatter-gather Audit Join instead of the monolithic engines.
func NewSharded(sds *kgexplore.ShardedDataset, prov Provenance) *Server {
	return newServer(newShardedEpoch(sds, prov))
}

// NewLive creates a server over a live (updatable) dataset: POST /ingest
// accepts triple batches, chart requests run merged-view Audit Join over
// the overlay, and /healthz reports overlay, compaction and WAL telemetry.
// Background compaction is the embedding process's job (kgserver -live);
// after each compaction it calls RotateLiveEpoch with the retired base.
func NewLive(lds *kgexplore.LiveDataset, prov Provenance) *Server {
	return newServer(newLiveEpoch(lds, prov))
}

// NewDist creates a server over a distributed dataset: chart requests run
// coordinator-driven scatter-gather over the kgworker fleet, /healthz
// reports per-worker stats, and /admin/swap (with EnableAdmin) performs the
// epoch-coordinated fleet-wide hot swap.
func NewDist(dds *kgexplore.DistDataset, prov Provenance) *Server {
	return newServer(newDistEpoch(dds, prov))
}

func newServer(e *epoch) *Server {
	return &Server{
		cur:           e,
		sessions:      make(map[string]*session),
		planCaches:    make(map[string]*planCache),
		MaxBudget:     5 * time.Second,
		SessionTTL:    30 * time.Minute,
		MaxSessions:   10_000,
		MaxPlanCaches: 256,
		now:           time.Now,
	}
}

// acquire pins the current epoch for one request. The caller must release
// it when done (defer e.release()).
func (s *Server) acquire() *epoch {
	s.mu.Lock()
	e := s.cur
	e.refs.Add(1)
	s.mu.Unlock()
	return e
}

// Swap atomically replaces the served dataset: new requests see the new
// epoch immediately; sessions and warm-start caches are dropped (their
// exploration states and cache keys embed the old dictionary's IDs); the old
// store stays alive until the last in-flight request releases it, at which
// point its closer (if any) runs. Safe to call concurrently with request
// traffic — that is its purpose.
func (s *Server) Swap(ds *kgexplore.Dataset, prov Provenance, closer io.Closer) {
	s.swapEpoch(newEpoch(ds, prov, closer))
}

// SwapSharded hot-swaps the served store for a shard set, with the same
// epoch semantics as Swap: the old store (sharded or not) drains before its
// closer runs, and the new one serves immediately. A server can swap freely
// between monolithic and sharded epochs.
func (s *Server) SwapSharded(sds *kgexplore.ShardedDataset, prov Provenance) {
	s.swapEpoch(newShardedEpoch(sds, prov))
}

// SwapDist hot-swaps the served store for a distributed dataset, with the
// same epoch semantics as Swap. A distributed admin swap uses this after
// DistDataset.SwapAll has re-pointed the fleet: the new epoch shares the
// coordinator, and draining the old one closes only its local dictionary.
func (s *Server) SwapDist(dds *kgexplore.DistDataset, prov Provenance) {
	s.swapEpoch(newDistEpoch(dds, prov))
}

func (s *Server) swapEpoch(ne *epoch) {
	s.mu.Lock()
	old := s.cur
	s.cur = ne
	s.sessions = make(map[string]*session)
	s.planCaches = make(map[string]*planCache)
	s.swaps++
	s.mu.Unlock()
	old.release()
}

// RotateLiveEpoch re-epochs a live dataset after a background compaction
// adopted a new base: the current epoch — whose in-flight requests may
// still hold views over the retired base — gets the retired closer and
// drains, while a fresh epoch over the SAME live dataset serves on.
// Sessions and plan caches survive: compaction does not change dictionary
// IDs or live content. No-op (closing retired immediately) if the serving
// epoch is not live.
func (s *Server) RotateLiveEpoch(retired io.Closer) {
	s.mu.Lock()
	old := s.cur
	if old.lds == nil {
		s.mu.Unlock()
		if retired != nil {
			retired.Close()
		}
		return
	}
	ne := newLiveEpoch(old.lds, old.prov)
	ne.prov.Triples = old.lds.NumTriples()
	old.closer = retired
	s.cur = ne
	s.mu.Unlock()
	old.release()
}

// Swaps returns how many times the served store has been hot-swapped.
func (s *Server) Swaps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.swaps
}

// sharedCacheFor returns the warm-start cache for the plan's signature,
// creating it (and evicting the least recently used entry over the cap) on
// first sight. Concurrent requests for the same signature share one cache —
// that is the point: the cache type is concurrency-safe.
func (s *Server) sharedCacheFor(pl *kgexplore.Plan) *kgexplore.SharedCTJCache {
	if s.MaxPlanCaches <= 0 {
		return nil
	}
	sig := pl.Query.Signature()
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.planCaches[sig]
	if !ok {
		e = &planCache{cache: kgexplore.NewSharedCTJCache()}
		s.insertPlanCacheLocked(sig, e)
	}
	e.lastUsed = now
	return e.cache
}

// shardCachesFor is sharedCacheFor's sharded counterpart: the warm
// per-shard suffix caches for the plan's signature, shared by every
// scatter-gather run of that plan within the epoch.
func (s *Server) shardCachesFor(pl *kgexplore.Plan, k int) []*kgexplore.ShardCache {
	if s.MaxPlanCaches <= 0 {
		return nil
	}
	sig := pl.Query.Signature()
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.planCaches[sig]
	if !ok {
		e = &planCache{}
		s.insertPlanCacheLocked(sig, e)
	}
	if len(e.shardCaches) != k {
		e.shardCaches = kgexplore.NewShardCaches(k)
	}
	e.lastUsed = now
	return e.shardCaches
}

// insertPlanCacheLocked adds a warm-start entry, evicting the least
// recently used one over the cap; callers hold s.mu.
func (s *Server) insertPlanCacheLocked(sig string, e *planCache) {
	for len(s.planCaches) >= s.MaxPlanCaches {
		var oldest string
		var oldestT time.Time
		for k, pc := range s.planCaches {
			if oldest == "" || pc.lastUsed.Before(oldestT) {
				oldest, oldestT = k, pc.lastUsed
			}
		}
		delete(s.planCaches, oldest)
	}
	s.planCaches[sig] = e
}

// InvalidateShared drops every warm-start cache. This is the invalidation
// hook for dataset changes: cache keys embed dictionary IDs, so a server
// whose backing data is swapped or re-loaded must call this before serving
// the new dataset.
func (s *Server) InvalidateShared() {
	s.mu.Lock()
	s.planCaches = make(map[string]*planCache)
	s.mu.Unlock()
}

// sweepLocked drops sessions idle past SessionTTL. It runs at most once per
// quarter TTL so session traffic stays O(1) amortized; callers hold s.mu.
func (s *Server) sweepLocked(now time.Time) {
	if s.SessionTTL <= 0 || now.Sub(s.lastSweep) < s.SessionTTL/4 {
		return
	}
	s.lastSweep = now
	for id, sess := range s.sessions {
		if now.Sub(sess.lastUsed) > s.SessionTTL {
			delete(s.sessions, id)
		}
	}
}

// evictOldestLocked removes the least recently used session; callers hold
// s.mu and have already swept.
func (s *Server) evictOldestLocked() {
	var oldest string
	var oldestT time.Time
	for id, sess := range s.sessions {
		if oldest == "" || sess.lastUsed.Before(oldestT) {
			oldest, oldestT = id, sess.lastUsed
		}
	}
	if oldest != "" {
		delete(s.sessions, oldest)
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/info", s.handleInfo)
	mux.HandleFunc("POST /api/session", s.handleNewSession)
	mux.HandleFunc("GET /api/session/{id}", s.handleGetSession)
	mux.HandleFunc("POST /api/session/{id}/chart", s.handleChart)
	mux.HandleFunc("POST /api/session/{id}/select", s.handleSelect)
	mux.HandleFunc("POST /api/session/{id}/back", s.handleBack)
	mux.HandleFunc("POST /api/sparql", s.handleSPARQL)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.EnableAdmin {
		mux.HandleFunc("POST /admin/swap", s.handleAdminSwap)
	}
	mux.HandleFunc("GET /", s.handleIndex)
	if s.EnablePprof {
		// Method-qualified so the patterns compose with "GET /" above under
		// the 1.22 mux precedence rules; POST /debug/pprof/symbol is the one
		// pprof endpoint that accepts both methods.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// InfoResponse describes the dataset.
type InfoResponse struct {
	Triples    int   `json:"triples"`
	IndexBytes int64 `json:"indexBytes"`
	Shards     int   `json:"shards,omitempty"`
	Workers    int   `json:"workers,omitempty"`
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	e := s.acquire()
	defer e.release()
	resp := InfoResponse{
		Triples:    e.be.NumTriples(),
		IndexBytes: e.be.IndexBytes(),
	}
	if e.sds != nil {
		resp.Shards = e.sds.NumShards()
	}
	if e.dds != nil {
		resp.Shards = e.dds.NumShards()
		resp.Workers = len(e.dds.Workers())
	}
	writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the /healthz payload: liveness plus store provenance,
// so an operator can see at a glance what data is being served, how it got
// there, and how often it has been replaced.
type HealthResponse struct {
	Status    string     `json:"status"`
	Store     Provenance `json:"store"`
	Swaps     int        `json:"swaps"`
	Shards    int        `json:"shards,omitempty"`
	Rebuilds  int        `json:"rebuilds,omitempty"`
	Sessions  int        `json:"sessions"`
	Estimator string     `json:"estimator"`
	// Live carries the overlay telemetry of a live epoch: view generation,
	// layer sizes, applied batches, compaction and WAL counters.
	Live *kgexplore.LiveStats `json:"live,omitempty"`
	// LastError surfaces the most recent background persistence or
	// compaction error (live epochs report WAL/compaction failures here;
	// embedding processes can report dynamic-store persist errors through
	// PersistErrFn) so operators see failures without polling.
	LastError string `json:"lastError,omitempty"`
	// Strategy is the walk-allocation strategy every online run uses:
	// "uniform" or "stratified".
	Strategy string `json:"strategy"`
	// Tips aggregates estimate-vs-actual tipping diagnostics over every
	// Audit Join run served since startup; absent until a walk tips.
	Tips *TipDiagBody `json:"tips,omitempty"`
	// Workers carries the live per-worker health of a distributed epoch:
	// each fleet member's reachability and self-reported stats (triples,
	// epoch, runs, walks, wire bytes, swaps).
	Workers []kgexplore.DistWorkerHealth `json:"workers,omitempty"`
	// DistRetries counts fleet-lifetime stratum re-allocations after worker
	// loss; DistRuns counts distributed runs (distributed epochs only).
	DistRetries int64 `json:"distRetries,omitempty"`
	DistRuns    int64 `json:"distRuns,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	e := s.acquire()
	defer e.release()
	s.mu.Lock()
	swaps, nsess, tips := s.swaps, len(s.sessions), s.tipDiag
	s.mu.Unlock()
	resp := HealthResponse{
		Status:    "ok",
		Store:     e.prov,
		Swaps:     swaps,
		Sessions:  nsess,
		Estimator: e.be.EstimatorName(),
		Strategy:  s.strategyName(),
		Tips:      tipBody(tips),
	}
	if e.sds != nil {
		resp.Shards = e.sds.NumShards()
	}
	if e.dds != nil {
		resp.Shards = e.dds.NumShards()
		resp.Workers = e.dds.Health(r.Context())
		resp.DistRetries = e.dds.Retries()
		resp.DistRuns = e.dds.TotalRuns()
		for _, wh := range resp.Workers {
			if !wh.Up {
				resp.Status = "degraded"
				break
			}
		}
	}
	if e.lds != nil {
		st := e.lds.Stats()
		resp.Live = &st
		resp.LastError = st.LastErr
		if st.LastErr != "" {
			resp.Status = "degraded"
		}
	}
	if s.RebuildsFn != nil {
		resp.Rebuilds = s.RebuildsFn()
	}
	if s.PersistErrFn != nil {
		if err := s.PersistErrFn(); err != nil {
			resp.LastError = err.Error()
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// IngestRequest is one POST /ingest batch: N-Triples lines to add and to
// delete, applied in order (adds first) as a single acknowledged batch.
type IngestRequest struct {
	Add    []string `json:"add"`
	Delete []string `json:"delete"`
}

// IngestResponse acknowledges an applied batch. The ack is durable when the
// live store runs with a WAL: the batch was fsynced before this response.
type IngestResponse struct {
	// Applied counts the operations in the batch (parsed, non-blank lines).
	Applied int `json:"applied"`
	// Triples is the live triple count after the batch.
	Triples int `json:"triples"`
	// Gen is the view generation the batch published.
	Gen uint64 `json:"gen"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	e := s.acquire()
	defer e.release()
	if e.lds == nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("not serving a live store; start kgserver with -live"))
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	n, err := e.lds.IngestNTriples(req.Add, req.Delete)
	if err != nil {
		// Parse errors are the client's fault; apply (WAL) errors are ours.
		code := http.StatusBadRequest
		if !errors.As(err, new(*kgexplore.ParseError)) {
			code = http.StatusInternalServerError
		}
		writeErr(w, code, err)
		return
	}
	st := e.lds.Stats()
	writeJSON(w, http.StatusOK, IngestResponse{Applied: n, Triples: st.LiveTriples, Gen: st.Gen})
}

// TipDiagBody is the JSON form of the tipping diagnostics: how many walks
// tipped, and how the oracle's suffix estimates compared with the exact
// suffix sizes CTJ computed at those decisions.
type TipDiagBody struct {
	Tips        int64   `json:"tips"`
	MeanQError  float64 `json:"meanQError,omitempty"`
	SumEstimate float64 `json:"sumEstimate"`
	SumActual   float64 `json:"sumActual"`
}

func tipBody(d kgexplore.TipDiagnostics) *TipDiagBody {
	if d.Tips == 0 {
		return nil
	}
	return &TipDiagBody{
		Tips:        d.Tips,
		MeanQError:  d.MeanQError(),
		SumEstimate: d.SumEstimate,
		SumActual:   d.SumActual,
	}
}

// observeTips folds one run's tipping diagnostics into the /healthz totals.
func (s *Server) observeTips(d kgexplore.TipDiagnostics) {
	if d.Tips == 0 {
		return
	}
	s.mu.Lock()
	s.tipDiag.Merge(d)
	s.mu.Unlock()
}

// SwapRequest asks the server to replace its dataset from a file. Paths
// ending in ".kgs" load as store snapshots (mmap'ed unless mode is "copy");
// paths ending in ".kgm" load as sharded store sets; anything else goes
// through the parsing loader.
type SwapRequest struct {
	Path string `json:"path"`
	Mode string `json:"mode"` // "", "mmap", "copy" (snapshot paths only)
}

// SwapResponse reports the dataset now being served.
type SwapResponse struct {
	Store Provenance `json:"store"`
	Swaps int        `json:"swaps"`
}

func (s *Server) handleAdminSwap(w http.ResponseWriter, r *http.Request) {
	var req SwapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Path == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing path"))
		return
	}
	e := s.acquire()
	if e.lds != nil {
		// A live epoch owns an overlay, WAL and compaction lifecycle that a
		// path swap cannot carry over; restart the server to change bases.
		e.release()
		writeErr(w, http.StatusBadRequest, fmt.Errorf("live epochs do not hot-swap; restart kgserver -live with the new base"))
		return
	}
	if e.dds != nil {
		// A distributed epoch swaps the FLEET, not the local process: every
		// worker prepares the new manifest, the swap aborts all-or-nothing
		// on any failure, then all commit and drain. The new local epoch
		// shares the coordinator; draining the old one closes only its
		// local dictionary mapping.
		defer e.release()
		if !strings.HasSuffix(req.Path, ".kgm") {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("distributed epochs swap whole shard sets: path must be a .kgm manifest"))
			return
		}
		ndds, err := e.dds.SwapAll(r.Context(), req.Path, req.Mode != "copy")
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if s.Estimator != "" {
			if err := ndds.UseEstimator(s.Estimator); err != nil {
				ndds.Close()
				writeErr(w, http.StatusBadRequest, err)
				return
			}
		}
		prov := Provenance{
			Source:  req.Path,
			Kind:    "distributed",
			Mmap:    req.Mode != "copy",
			Triples: ndds.NumTriples(),
			Shards:  ndds.NumShards(),
			Workers: len(ndds.Workers()),
		}
		s.SwapDist(ndds, prov)
		writeJSON(w, http.StatusOK, SwapResponse{Store: prov, Swaps: s.Swaps()})
		return
	}
	e.release()
	if strings.HasSuffix(req.Path, ".kgm") {
		sds, prov, err := LoadShardedDataset(req.Path, req.Mode != "copy")
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if s.Estimator != "" {
			if err := sds.UseEstimator(s.Estimator); err != nil {
				sds.Close()
				writeErr(w, http.StatusBadRequest, err)
				return
			}
		}
		s.SwapSharded(sds, prov)
		writeJSON(w, http.StatusOK, SwapResponse{Store: prov, Swaps: s.Swaps()})
		return
	}
	ds, prov, closer, err := LoadDataset(req.Path, req.Mode != "copy")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if s.Estimator != "" {
		if err := ds.UseEstimator(s.Estimator); err != nil {
			if closer != nil {
				closer.Close()
			}
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	s.Swap(ds, prov, closer)
	writeJSON(w, http.StatusOK, SwapResponse{Store: prov, Swaps: s.Swaps()})
}

// LoadShardedDataset loads a shard set for serving from its .kgm manifest,
// returning it with the provenance a sharded epoch records.
func LoadShardedDataset(path string, mmap bool) (*kgexplore.ShardedDataset, Provenance, error) {
	start := time.Now()
	sds, err := kgexplore.LoadShardedDataset(path, mmap)
	if err != nil {
		return nil, Provenance{}, err
	}
	prov := Provenance{
		Source:     path,
		Kind:       "sharded",
		Mmap:       mmap,
		Triples:    sds.NumTriples(),
		Shards:     sds.NumShards(),
		LoadMillis: time.Since(start).Milliseconds(),
	}
	return sds, prov, nil
}

// LoadDataset loads a dataset for serving, dispatching on the path: ".kgs"
// store snapshots skip index building entirely (zero-copy mmap when
// mmapSnapshots is set and the platform supports it), everything else goes
// through kgexplore.LoadFile. Returns the provenance and, for snapshot
// loads, the closer that must run once the dataset is drained.
func LoadDataset(path string, mmapSnapshots bool) (*kgexplore.Dataset, Provenance, io.Closer, error) {
	start := time.Now()
	if strings.HasSuffix(path, ".kgs") {
		ss, err := kgexplore.LoadStoreSnapshotFile(path, mmapSnapshots)
		if err != nil {
			return nil, Provenance{}, nil, err
		}
		prov := Provenance{
			Source:     path,
			Kind:       "snapshot",
			Mmap:       ss.Mmap,
			Triples:    ss.Dataset.NumTriples(),
			LoadMillis: time.Since(start).Milliseconds(),
		}
		return ss.Dataset, prov, ss, nil
	}
	ds, err := kgexplore.LoadFile(path)
	if err != nil {
		return nil, Provenance{}, nil, err
	}
	prov := Provenance{
		Source:     path,
		Kind:       "parsed",
		Triples:    ds.NumTriples(),
		LoadMillis: time.Since(start).Milliseconds(),
	}
	return ds, prov, nil, nil
}

// StateResponse describes a session's current bar.
type StateResponse struct {
	Session  string   `json:"session"`
	Kind     string   `json:"kind"`
	Category string   `json:"category"`
	Depth    int      `json:"depth"`
	Ops      []string `json:"ops"`
}

func stateResponse(ds backend, id string, sess *session) StateResponse {
	var ops []string
	for _, op := range kgexplore.ExpansionsOf(sess.state) {
		ops = append(ops, op.String())
	}
	return StateResponse{
		Session:  id,
		Kind:     sess.state.Kind.String(),
		Category: ds.Dict().Term(sess.state.Category).Value,
		Depth:    sess.state.Depth(),
		Ops:      ops,
	}
}

func (s *Server) handleNewSession(w http.ResponseWriter, _ *http.Request) {
	now := s.now()
	s.mu.Lock()
	s.sweepLocked(now)
	if s.MaxSessions > 0 && len(s.sessions) >= s.MaxSessions {
		s.evictOldestLocked()
	}
	s.nextID++
	id := strconv.FormatInt(s.nextID, 10)
	e := s.cur
	e.refs.Add(1)
	sess := &session{state: e.be.Root(), lastUsed: now}
	s.sessions[id] = sess
	s.mu.Unlock()
	defer e.release()
	writeJSON(w, http.StatusOK, stateResponse(e.be, id, sess))
}

// acquireSession resolves a session AND pins the serving epoch under one
// lock acquisition. Sessions are cleared on Swap, so a session that resolves
// is always from the same epoch as the returned dataset — exploration states
// never mix dictionary IDs across stores.
func (s *Server) acquireSession(r *http.Request) (*epoch, string, *session, error) {
	id := r.PathValue("id")
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(now)
	sess, ok := s.sessions[id]
	if !ok {
		return nil, "", nil, fmt.Errorf("unknown session %q", id)
	}
	sess.lastUsed = now
	e := s.cur
	e.refs.Add(1)
	return e, id, sess, nil
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	e, id, sess, err := s.acquireSession(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	defer e.release()
	writeJSON(w, http.StatusOK, stateResponse(e.be, id, sess))
}

// ChartRequest asks for an expansion's bar chart.
type ChartRequest struct {
	Op         string `json:"op"`
	Engine     string `json:"engine"`     // aj (default), wj, ctj, lftj, baseline
	BudgetMS   int    `json:"budgetMs"`   // online engines; default 300
	IntervalMS int    `json:"intervalMs"` // stream mode snapshot cadence; default 100
	TopN       int    `json:"topN"`       // 0: all bars
}

// ChartBar is one rendered bar.
type ChartBar struct {
	Category string  `json:"category"`
	Count    float64 `json:"count"`
	CI       float64 `json:"ci,omitempty"`
}

// ChartResponse is a rendered chart. In stream mode each SSE event carries
// one ChartResponse; Walks and Final track the estimator's progress. Cache
// reports CTJ cache effectiveness for aj runs (on the final event in stream
// mode).
type ChartResponse struct {
	Op      string           `json:"op"`
	Engine  string           `json:"engine"`
	Millis  int64            `json:"millis"`
	NumBars int              `json:"numBars"`
	Bars    []ChartBar       `json:"bars"`
	Walks   int64            `json:"walks,omitempty"`
	Final   bool             `json:"final,omitempty"`
	Shards  int              `json:"shards,omitempty"`
	Cache   *ChartCacheStats `json:"cache,omitempty"`
	// Estimator names the cardinality estimator behind the run's planning
	// and tipping decisions; Tips reports its estimate-vs-actual accuracy at
	// this run's tipping decisions (final responses of online engines only).
	Estimator string       `json:"estimator,omitempty"`
	Tips      *TipDiagBody `json:"tips,omitempty"`
	// Strategy names the sampling strategy ("uniform" or "stratified");
	// Strat carries the stratification telemetry of stratified runs (strata
	// count, fallback reason, Neyman reallocations, per-stratum budgets).
	Strategy string                        `json:"strategy,omitempty"`
	Strat    *kgexplore.StratifiedRunStats `json:"strat,omitempty"`
	// Dist reports a distributed run's telemetry: which worker delivered
	// each stratum, re-allocations after worker loss, and wire traffic
	// (non-stream responses of online engines over distributed epochs).
	Dist *DistChartBody `json:"dist,omitempty"`
	// Live identifies the overlay state a live epoch's chart was computed
	// over: the view generation and layer sizes at response time.
	Live *LiveChartBody `json:"live,omitempty"`
}

// LiveChartBody is the per-request overlay telemetry of a live epoch.
type LiveChartBody struct {
	Gen        uint64 `json:"gen"`
	DeltaAdds  int    `json:"deltaAdds"`
	Tombstones int    `json:"tombstones"`
}

// DistChartBody is the per-request distribution telemetry of one
// coordinator-driven scatter-gather run.
type DistChartBody struct {
	// StratumWorkers[k] is the address that delivered stratum k ("" for
	// empty strata).
	StratumWorkers []string `json:"stratumWorkers"`
	// Retries counts worker-loss re-allocations within this run;
	// Reallocations details each one.
	Retries       int                         `json:"retries,omitempty"`
	Reallocations []kgexplore.DistRetryRecord `json:"reallocations,omitempty"`
	WireInBytes   int64                       `json:"wireInBytes"`
	WireOutBytes  int64                       `json:"wireOutBytes"`
}

func distBody(stats kgexplore.DistRunStats) *DistChartBody {
	return &DistChartBody{
		StratumWorkers: stats.StratumWorkers,
		Retries:        stats.Retries,
		Reallocations:  stats.Reallocations,
		WireInBytes:    stats.WireInBytes,
		WireOutBytes:   stats.WireOutBytes,
	}
}

// CacheStatsBody mirrors ctj.CacheStats for the JSON payload.
type CacheStatsBody struct {
	CountHits        int64 `json:"countHits"`
	CountMisses      int64 `json:"countMisses"`
	AggHits          int64 `json:"aggHits"`
	AggMisses        int64 `json:"aggMisses"`
	ExistHits        int64 `json:"existHits"`
	ExistMisses      int64 `json:"existMisses"`
	ProbHits         int64 `json:"probHits"`
	ProbMisses       int64 `json:"probMisses"`
	ProbMaterialized bool  `json:"probMaterialized,omitempty"`
}

// ChartCacheStats makes CTJ cache effectiveness observable per request: Run
// is what this request's runner saw; Shared is the merged cross-request view
// of the warm-start cache, when one was used.
type ChartCacheStats struct {
	Run    CacheStatsBody  `json:"run"`
	Shared *CacheStatsBody `json:"shared,omitempty"`
}

func cacheBody(cs kgexplore.CTJCacheStats) CacheStatsBody {
	return CacheStatsBody{
		CountHits:        cs.CountHits,
		CountMisses:      cs.CountMisses,
		AggHits:          cs.AggHits,
		AggMisses:        cs.AggMisses,
		ExistHits:        cs.ExistHits,
		ExistMisses:      cs.ExistMisses,
		ProbHits:         cs.ProbHits,
		ProbMisses:       cs.ProbMisses,
		ProbMaterialized: cs.ProbMaterialized,
	}
}

// cacheStatsOf extracts the cache payload from a finished (or quiescent)
// online runner; nil for engines without CTJ caches.
func cacheStatsOf(r kgexplore.Stepper) *ChartCacheStats {
	var cs kgexplore.CTJCacheStats
	var shared *kgexplore.SharedCTJCache
	switch v := r.(type) {
	case *kgexplore.AuditJoin:
		cs, shared = v.CacheStats(), v.SharedCache()
	case *kgexplore.StratifiedAuditJoin:
		cs, shared = v.CacheStats(), v.SharedCache()
	default:
		return nil
	}
	out := &ChartCacheStats{Run: cacheBody(cs)}
	if shared != nil {
		b := cacheBody(shared.Stats())
		out.Shared = &b
	}
	return out
}

func parseOp(name string) (kgexplore.ExploreOp, error) {
	switch name {
	case "subclass":
		return kgexplore.OpSubclass, nil
	case "out-property":
		return kgexplore.OpOutProp, nil
	case "in-property":
		return kgexplore.OpInProp, nil
	case "object":
		return kgexplore.OpObject, nil
	case "subject":
		return kgexplore.OpSubject, nil
	default:
		return 0, fmt.Errorf("unknown op %q", name)
	}
}

func (s *Server) handleChart(w http.ResponseWriter, r *http.Request) {
	e, _, sess, err := s.acquireSession(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	defer e.release()
	var req ChartRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	op, err := parseOp(req.Op)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	q, err := sess.state.Query(op)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	pl, err := e.be.Compile(q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("stream") == "1" {
		s.streamChart(w, r, e, req.Op, pl, req)
		return
	}
	start := time.Now()
	counts, ci, extras, err := s.evaluate(r.Context(), e, pl, req.Engine, req.BudgetMS)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := chartResponse(e, req.Op, engineName(req.Engine), counts, ci, req.TopN)
	resp.Millis = time.Since(start).Milliseconds()
	resp.Strategy = s.strategyName()
	resp.Cache = extras.cache
	resp.Tips = extras.tips
	resp.Dist = extras.dist
	resp.Strat = extras.strat
	writeJSON(w, http.StatusOK, resp)
}

func engineName(e string) string {
	if e == "" {
		return "aj"
	}
	return e
}

// chartResponse renders per-group counts as sorted, truncated bars.
func chartResponse(e *epoch, op, engine string, counts, ci map[kgexplore.ID]float64, topN int) ChartResponse {
	resp := ChartResponse{Op: op, Engine: engine, Estimator: e.be.EstimatorName()}
	if e.sds != nil {
		resp.Shards = e.sds.NumShards()
	}
	if e.dds != nil {
		resp.Shards = e.dds.NumShards()
	}
	if e.lds != nil {
		st := e.lds.Stats()
		resp.Live = &LiveChartBody{Gen: st.Gen, DeltaAdds: st.DeltaAdds, Tombstones: st.Tombstones}
	}
	bars := e.be.BarsOf(counts, ci)
	resp.NumBars = len(bars)
	if topN > 0 && len(bars) > topN {
		bars = bars[:topN]
	}
	for _, b := range bars {
		label := b.Category.Value
		if label == "" && op == "sparql" {
			label = "(all)"
		}
		resp.Bars = append(resp.Bars, ChartBar{Category: label, Count: b.Count, CI: b.CI})
	}
	return resp
}

// clampBudget applies the default and the server-wide cap.
func (s *Server) clampBudget(budgetMS int) time.Duration {
	budget := time.Duration(budgetMS) * time.Millisecond
	if budget <= 0 {
		budget = 300 * time.Millisecond
	}
	if budget > s.MaxBudget {
		budget = s.MaxBudget
	}
	return budget
}

// onlineRunner builds the estimator for an online engine name. aj runners
// are attached to the warm-start cache of their plan signature, so repeated
// expansions of overlapping queries reuse prior suffix counts and Pr(b)
// sums.
func (s *Server) onlineRunner(ds *kgexplore.Dataset, pl *kgexplore.Plan, engine string) (kgexplore.Stepper, bool) {
	switch engine {
	case "wj":
		if s.stratified() {
			// Stratified Wander Join: the same stratified stepper with
			// tipping disabled, mirroring the sharded wj configuration.
			return ds.NewStratifiedAuditJoin(pl, kgexplore.StratifiedAuditJoinOptions{
				Options: kgexplore.AuditJoinOptions{Threshold: -1, Seed: time.Now().UnixNano()},
			}), true
		}
		return ds.NewWanderJoin(pl, time.Now().UnixNano()), true
	case "aj", "":
		if s.stratified() {
			return ds.NewStratifiedAuditJoin(pl, kgexplore.StratifiedAuditJoinOptions{
				Options: kgexplore.AuditJoinOptions{
					Threshold: kgexplore.DefaultTippingThreshold,
					Seed:      time.Now().UnixNano(),
					Shared:    s.sharedCacheFor(pl),
				},
			}), true
		}
		return ds.NewAuditJoin(pl, kgexplore.AuditJoinOptions{
			Threshold: kgexplore.DefaultTippingThreshold,
			Seed:      time.Now().UnixNano(),
			Shared:    s.sharedCacheFor(pl),
		}), true
	default:
		return nil, false
	}
}

// stratified reports whether the server runs the stratified sampling
// strategy; strategyName is the label surfaced in charts and /healthz.
func (s *Server) stratified() bool { return s.Strategy == "stratified" }

func (s *Server) strategyName() string {
	if s.Strategy == "" {
		return "uniform"
	}
	return s.Strategy
}

// chartExtras carries the engine-specific telemetry a chart response
// attaches beside the bars: CTJ cache stats (monolithic aj), tipping
// diagnostics (online engines) and distribution telemetry (dist epochs).
type chartExtras struct {
	cache *ChartCacheStats
	tips  *TipDiagBody
	dist  *DistChartBody
	strat *kgexplore.StratifiedRunStats
}

func (s *Server) evaluate(ctx context.Context, e *epoch, pl *kgexplore.Plan, engine string, budgetMS int) (map[kgexplore.ID]float64, map[kgexplore.ID]float64, chartExtras, error) {
	if e.sds != nil {
		return s.evaluateSharded(ctx, e.sds, pl, engine, budgetMS)
	}
	if e.dds != nil {
		return s.evaluateDist(ctx, e.dds, pl, engine, budgetMS)
	}
	if e.lds != nil {
		return s.evaluateLive(ctx, e.lds, pl, engine, budgetMS)
	}
	ds := e.ds
	switch engine {
	case "ctj":
		res, err := ds.ExactCtx(ctx, pl, kgexplore.EngineCTJ)
		return res, nil, chartExtras{}, err
	case "lftj":
		res, err := ds.ExactCtx(ctx, pl, kgexplore.EngineLFTJ)
		return res, nil, chartExtras{}, err
	case "baseline":
		res, err := ds.ExactCtx(ctx, pl, kgexplore.EngineBaseline)
		return res, nil, chartExtras{}, err
	}
	r, ok := s.onlineRunner(ds, pl, engine)
	if !ok {
		return nil, nil, chartExtras{}, fmt.Errorf("unknown engine %q", engine)
	}
	rep, err := kgexplore.Drive(ctx, r, kgexplore.DriveOptions{Budget: s.clampBudget(budgetMS), Batch: 128})
	if err != nil {
		return nil, nil, chartExtras{}, err
	}
	return rep.Final.Estimates, rep.Final.CI,
		chartExtras{cache: cacheStatsOf(r), tips: s.tipStatsOf(r), strat: stratStatsOf(r)}, nil
}

// stratStatsOf extracts the stratification telemetry from a stratified
// runner; nil for uniform engines.
func stratStatsOf(r kgexplore.Stepper) *kgexplore.StratifiedRunStats {
	sr, ok := r.(*kgexplore.StratifiedAuditJoin)
	if !ok {
		return nil
	}
	st := sr.Stats()
	return &st
}

// tipStatsOf extracts one quiescent runner's tipping diagnostics and folds
// them into the /healthz totals.
func (s *Server) tipStatsOf(r kgexplore.Stepper) *TipDiagBody {
	var d kgexplore.TipDiagnostics
	switch v := r.(type) {
	case *kgexplore.AuditJoin:
		d = v.TipDiag()
	case *kgexplore.StratifiedAuditJoin:
		d = v.TipDiag()
	case *kgexplore.LiveWalker:
		d = v.TipDiag()
	default:
		return nil
	}
	s.observeTips(d)
	return tipBody(d)
}

// liveRunner builds the overlay walker for an online engine name: aj tips
// at the default threshold, wj never tips. The walker captures the CURRENT
// view, so the whole run is snapshot-consistent under concurrent ingest.
// COUNT(DISTINCT) plans are not built here — evaluateLive routes them to
// the exact merged-view path first.
func liveRunner(lds *kgexplore.LiveDataset, pl *kgexplore.Plan, engine string) (*kgexplore.LiveWalker, error, bool) {
	opts := kgexplore.LiveWalkerOptions{Seed: time.Now().UnixNano()}
	switch engine {
	case "aj", "":
		opts.Threshold = kgexplore.DefaultTippingThreshold
	case "wj":
		opts.Threshold = -1
	default:
		return nil, nil, false
	}
	w, err := lds.NewLiveWalker(pl, opts)
	return w, err, true
}

// evaluateLive answers a chart request over a live epoch: exact engines —
// and every DISTINCT plan, per the no-silent-bias policy — enumerate the
// merged view with tombstones filtered; online engines run merged-view
// Audit Join whose root weights come from the combined base+delta spans.
func (s *Server) evaluateLive(ctx context.Context, lds *kgexplore.LiveDataset, pl *kgexplore.Plan, engine string, budgetMS int) (map[kgexplore.ID]float64, map[kgexplore.ID]float64, chartExtras, error) {
	switch engine {
	case "ctj", "lftj", "baseline":
		res, err := lds.ExactCtx(ctx, pl)
		return res, nil, chartExtras{}, err
	}
	if pl.Query.Distinct {
		res, err := lds.ExactCtx(ctx, pl)
		return res, nil, chartExtras{}, err
	}
	r, err, ok := liveRunner(lds, pl, engine)
	if !ok {
		return nil, nil, chartExtras{}, fmt.Errorf("unknown engine %q", engine)
	}
	if err != nil {
		return nil, nil, chartExtras{}, err
	}
	rep, err := kgexplore.Drive(ctx, r, kgexplore.DriveOptions{Budget: s.clampBudget(budgetMS), Batch: 128})
	if err != nil {
		return nil, nil, chartExtras{}, err
	}
	return rep.Final.Estimates, rep.Final.CI, chartExtras{tips: s.tipStatsOf(r)}, nil
}

// scatterOptions maps an online engine name onto scatter-gather settings:
// aj tips at the default threshold; wj never tips (pure random walks, the
// Wander Join analog). Both share the plan's warm per-shard caches.
func (s *Server) scatterOptions(sds *kgexplore.ShardedDataset, pl *kgexplore.Plan, engine string) (kgexplore.ShardScatterOptions, bool) {
	opts := kgexplore.ShardScatterOptions{
		Seed:     time.Now().UnixNano(),
		Caches:   s.shardCachesFor(pl, sds.NumShards()),
		Stratify: s.stratified(),
	}
	switch engine {
	case "aj", "":
		opts.Threshold = kgexplore.DefaultTippingThreshold
	case "wj":
		opts.Threshold = -1
	default:
		return opts, false
	}
	return opts, true
}

// evaluateSharded answers a chart request over a sharded epoch: exact
// engines run the resolver-backed enumeration over all shards; online
// engines run scatter-gather Audit Join with stratified merging.
func (s *Server) evaluateSharded(ctx context.Context, sds *kgexplore.ShardedDataset, pl *kgexplore.Plan, engine string, budgetMS int) (map[kgexplore.ID]float64, map[kgexplore.ID]float64, chartExtras, error) {
	switch engine {
	case "ctj", "lftj", "baseline":
		res, err := sds.ExactCtx(ctx, pl)
		return res, nil, chartExtras{}, err
	}
	opts, ok := s.scatterOptions(sds, pl, engine)
	if !ok {
		return nil, nil, chartExtras{}, fmt.Errorf("unknown engine %q", engine)
	}
	res, stats, err := sds.RunScatter(ctx, pl, opts, kgexplore.DriveOptions{Budget: s.clampBudget(budgetMS), Batch: 128})
	if err != nil {
		return nil, nil, chartExtras{}, err
	}
	s.observeTips(stats.Tips)
	extras := chartExtras{tips: tipBody(stats.Tips)}
	if s.stratified() {
		extras.strat = &kgexplore.StratifiedRunStats{Strata: stats.Strata}
	}
	return res.Estimates, res.CI, extras, nil
}

// distOptions maps an online engine name onto distributed run settings,
// mirroring scatterOptions: aj tips at the default threshold, wj never
// tips. Worker-side suffix caches warm up per worker process, so there is
// no coordinator-side cache to thread through.
func (s *Server) distOptions(dds *kgexplore.DistDataset, engine string) (kgexplore.DistRunOptions, bool) {
	opts := kgexplore.DistRunOptions{Seed: time.Now().UnixNano(), Stratify: s.stratified()}
	switch engine {
	case "aj", "":
		opts.Threshold = kgexplore.DefaultTippingThreshold
	case "wj":
		opts.Threshold = -1
	default:
		return opts, false
	}
	return opts, true
}

// evaluateDist answers a chart request over a distributed epoch: exact
// engines run on one worker (they hold the full set or reach peers through
// their hybrid resolver); online engines run coordinator-driven
// scatter-gather with stratified merging and worker-loss re-allocation.
func (s *Server) evaluateDist(ctx context.Context, dds *kgexplore.DistDataset, pl *kgexplore.Plan, engine string, budgetMS int) (map[kgexplore.ID]float64, map[kgexplore.ID]float64, chartExtras, error) {
	switch engine {
	case "ctj", "lftj", "baseline":
		res, err := dds.ExactCtx(ctx, pl)
		return res, nil, chartExtras{}, err
	}
	opts, ok := s.distOptions(dds, engine)
	if !ok {
		return nil, nil, chartExtras{}, fmt.Errorf("unknown engine %q", engine)
	}
	res, stats, err := dds.RunDist(ctx, pl, opts, kgexplore.DriveOptions{Budget: s.clampBudget(budgetMS), Batch: 128})
	if err != nil {
		return nil, nil, chartExtras{}, err
	}
	s.observeTips(stats.Tips)
	extras := chartExtras{tips: tipBody(stats.Tips), dist: distBody(stats)}
	if s.stratified() {
		extras.strat = &kgexplore.StratifiedRunStats{Strata: stats.Strata}
	}
	return res.Estimates, res.CI, extras, nil
}

// evaluateUnion answers a SPARQL UNION query over any epoch kind. Exact
// engine names run the cross-branch exact union; online names run the
// backend's stratified union estimator. DISTINCT unions always take the
// exact path — per-branch walks cannot observe cross-branch duplicates
// (query.ErrDistinctUnion policy) — as do AVG unions on distributed epochs,
// whose per-branch results cannot merge at the result level.
func (s *Server) evaluateUnion(ctx context.Context, e *epoch, u *kgexplore.UnionQuery, engine string, budgetMS int) (map[kgexplore.ID]float64, map[kgexplore.ID]float64, chartExtras, error) {
	exact := engine == "ctj" || engine == "lftj" || engine == "baseline"
	online := engine == "aj" || engine == "wj" || engine == ""
	if !exact && !online {
		return nil, nil, chartExtras{}, fmt.Errorf("unknown engine %q", engine)
	}
	threshold := float64(kgexplore.DefaultTippingThreshold)
	if engine == "wj" {
		threshold = -1
	}
	xopts := kgexplore.DriveOptions{Budget: s.clampBudget(budgetMS), Batch: 128}
	switch {
	case e.sds != nil:
		up, err := e.sds.CompileUnion(u)
		if err != nil {
			return nil, nil, chartExtras{}, err
		}
		if exact || u.Distinct() {
			res, err := e.sds.ExactUnionCtx(ctx, up)
			return res, nil, chartExtras{}, err
		}
		opts := kgexplore.ShardScatterOptions{
			Seed: time.Now().UnixNano(), Threshold: threshold, Stratify: s.stratified(),
		}
		res, err := e.sds.RunUnionScatter(ctx, up, opts, xopts)
		return res.Estimates, res.CI, chartExtras{}, err
	case e.dds != nil:
		up, err := e.dds.CompileUnion(u)
		if err != nil {
			return nil, nil, chartExtras{}, err
		}
		if exact {
			res, err := e.dds.ExactUnionCtx(ctx, up)
			return res, nil, chartExtras{}, err
		}
		opts, _ := s.distOptions(e.dds, engine)
		res, _, err := e.dds.RunUnionDist(ctx, up, opts, xopts)
		return res.Estimates, res.CI, chartExtras{}, err
	case e.lds != nil:
		up, err := e.lds.CompileUnion(u)
		if err != nil {
			return nil, nil, chartExtras{}, err
		}
		if exact || u.Distinct() {
			res, err := e.lds.ExactUnionCtx(ctx, up)
			return res, nil, chartExtras{}, err
		}
		est, err := e.lds.NewUnionEstimator(up, kgexplore.LiveWalkerOptions{
			Seed: time.Now().UnixNano(), Threshold: threshold,
		})
		if err != nil {
			return nil, nil, chartExtras{}, err
		}
		rep, err := kgexplore.Drive(ctx, est, xopts)
		if err != nil {
			return nil, nil, chartExtras{}, err
		}
		return rep.Final.Estimates, rep.Final.CI, chartExtras{}, nil
	default:
		ds := e.ds
		up, err := ds.CompileUnion(u)
		if err != nil {
			return nil, nil, chartExtras{}, err
		}
		if exact || u.Distinct() {
			eng := kgexplore.EngineCTJ
			switch engine {
			case "lftj":
				eng = kgexplore.EngineLFTJ
			case "baseline":
				eng = kgexplore.EngineBaseline
			}
			res, err := ds.ExactUnionCtx(ctx, up, eng)
			return res, nil, chartExtras{}, err
		}
		est, err := ds.NewUnionEstimator(up, time.Now().UnixNano())
		if err != nil {
			return nil, nil, chartExtras{}, err
		}
		rep, err := kgexplore.Drive(ctx, est, xopts)
		if err != nil {
			return nil, nil, chartExtras{}, err
		}
		return rep.Final.Estimates, rep.Final.CI, chartExtras{}, nil
	}
}

// streamChart answers a `?stream=1` chart request with Server-Sent Events:
// one ChartResponse per snapshot interval, each strictly further along than
// the last, and a Final event when the budget elapses. Closing the
// connection cancels the run through the request context.
func (s *Server) streamChart(w http.ResponseWriter, r *http.Request, e *epoch, op string, pl *kgexplore.Plan, req ChartRequest) {
	engine := engineName(req.Engine)
	var runner kgexplore.Stepper
	var scatterOpts kgexplore.ShardScatterOptions
	var distOpts kgexplore.DistRunOptions
	switch {
	case e.sds != nil:
		var ok bool
		scatterOpts, ok = s.scatterOptions(e.sds, pl, req.Engine)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("engine %q does not stream; use aj or wj", engine))
			return
		}
	case e.dds != nil:
		var ok bool
		distOpts, ok = s.distOptions(e.dds, req.Engine)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("engine %q does not stream; use aj or wj", engine))
			return
		}
	case e.lds != nil:
		lw, err, ok := liveRunner(e.lds, pl, req.Engine)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("engine %q does not stream; use aj or wj", engine))
			return
		}
		if err != nil {
			// ErrLiveDistinct: distinct runs exactly, which does not stream.
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		runner = lw
	default:
		var ok bool
		runner, ok = s.onlineRunner(e.ds, pl, req.Engine)
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("engine %q does not stream; use aj or wj", engine))
			return
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	interval := time.Duration(req.IntervalMS) * time.Millisecond
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	send := func(p kgexplore.DriveProgress) bool {
		resp := chartResponse(e, op, engine, p.Snapshot.Estimates, p.Snapshot.CI, req.TopN)
		resp.Millis = p.Elapsed.Milliseconds()
		resp.Walks = p.Walks
		resp.Final = p.Final
		resp.Strategy = s.strategyName()
		if p.Final && runner != nil {
			// The callback runs on the driving goroutine between walks, so
			// the runner is quiescent and its stats are consistent.
			resp.Cache = cacheStatsOf(runner)
			resp.Tips = s.tipStatsOf(runner)
			resp.Strat = stratStatsOf(runner)
		}
		data, err := json.Marshal(resp)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	xopts := kgexplore.DriveOptions{
		Budget:     s.clampBudget(req.BudgetMS),
		Interval:   interval,
		Batch:      128,
		OnSnapshot: send,
	}
	if e.sds != nil {
		// The final SSE event has already been sent from inside the scatter
		// drive, so per-request tips can't ride on it; they still reach the
		// process-wide /healthz totals.
		if _, stats, err := e.sds.RunScatter(r.Context(), pl, scatterOpts, xopts); err == nil {
			s.observeTips(stats.Tips)
		}
		return
	}
	if e.dds != nil {
		// Same trailing-stats caveat as the sharded drive: tips and retry
		// telemetry reach /healthz, not the final SSE event.
		if _, stats, err := e.dds.RunDist(r.Context(), pl, distOpts, xopts); err == nil {
			s.observeTips(stats.Tips)
		}
		return
	}
	kgexplore.Drive(r.Context(), runner, xopts)
}

// SelectRequest clicks a bar in an expansion chart.
type SelectRequest struct {
	Op       string `json:"op"`
	Category string `json:"category"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	e, id, sess, err := s.acquireSession(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	defer e.release()
	var req SelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	op, err := parseOp(req.Op)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	catID, ok := e.be.Dict().LookupIRI(req.Category)
	if !ok {
		// Categories may be literals in principle; try a literal too.
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown category %q", req.Category))
		return
	}
	next, err := sess.state.Select(op, catID)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	sess.stack = append(sess.stack, sess.state)
	sess.state = next
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, stateResponse(e.be, id, sess))
}

func (s *Server) handleBack(w http.ResponseWriter, r *http.Request) {
	e, id, sess, err := s.acquireSession(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	defer e.release()
	s.mu.Lock()
	if n := len(sess.stack); n > 0 {
		sess.state = sess.stack[n-1]
		sess.stack = sess.stack[:n-1]
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, stateResponse(e.be, id, sess))
}

// SPARQLRequest runs a Fig. 4 fragment query directly.
type SPARQLRequest struct {
	Query    string `json:"query"`
	Engine   string `json:"engine"`
	BudgetMS int    `json:"budgetMs"`
	TopN     int    `json:"topN"`
}

func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	e := s.acquire()
	defer e.release()
	var req SPARQLRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	parsed, err := e.be.ParseQuery(req.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	var counts, ci map[kgexplore.ID]float64
	var extras chartExtras
	if parsed.IsUnion() {
		counts, ci, extras, err = s.evaluateUnion(r.Context(), e, parsed.Union(), req.Engine, req.BudgetMS)
	} else {
		var pl *kgexplore.Plan
		pl, err = e.be.Compile(parsed.Query)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		counts, ci, extras, err = s.evaluate(r.Context(), e, pl, req.Engine, req.BudgetMS)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := chartResponse(e, "sparql", engineName(req.Engine), counts, ci, req.TopN)
	resp.Millis = time.Since(start).Milliseconds()
	resp.Strategy = s.strategyName()
	resp.Cache = extras.cache
	resp.Tips = extras.tips
	resp.Dist = extras.dist
	resp.Strat = extras.strat
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(indexHTML))
}

// indexHTML is a dependency-free single-page UI over the JSON API: it shows
// the current bar, its legal expansions, and renders chart responses as CSS
// bar charts; clicking a bar selects it and descends.
var indexHTML = strings.TrimSpace(`
<!doctype html>
<meta charset="utf-8">
<title>kgexplore</title>
<style>
body{font-family:system-ui,sans-serif;margin:2rem;max-width:60rem}
#state{margin:.5rem 0;color:#333}
.bar{display:flex;align-items:center;margin:2px 0;cursor:pointer}
.bar .label{width:22rem;overflow:hidden;text-overflow:ellipsis;white-space:nowrap;font-size:.85rem}
.bar .fill{background:#4a7;height:1rem;margin-right:.5rem}
.bar .n{font-size:.8rem;color:#555}
button{margin-right:.4rem}
</style>
<h1>kgexplore</h1>
<div id="state"></div>
<div id="ops"></div>
<div id="chart"></div>
<script>
let sid=null,lastOp=null;
async function j(url,body){const r=await fetch(url,{method:body?'POST':'GET',body:body?JSON.stringify(body):null});return r.json()}
async function start(){const s=await j('/api/session',{});render(s)}
function render(s){sid=s.session;
 document.getElementById('state').textContent=s.kind+' bar: '+s.category+' (depth '+s.depth+')';
 const ops=document.getElementById('ops');ops.innerHTML='';
 for(const op of s.ops){const b=document.createElement('button');b.textContent=op;
  b.onclick=()=>chart(op);ops.appendChild(b)}
 const back=document.createElement('button');back.textContent='back';
 back.onclick=async()=>{render(await j('/api/session/'+sid+'/back',{}))};ops.appendChild(back)}
async function chart(op){lastOp=op;
 const c=await j('/api/session/'+sid+'/chart',{op:op,topN:25});
 const div=document.getElementById('chart');div.innerHTML='<p>'+c.numBars+' bars ('+c.engine+', '+c.millis+'ms)</p>';
 const max=Math.max(...c.bars.map(b=>b.count),1);
 for(const b of c.bars){const row=document.createElement('div');row.className='bar';
  row.innerHTML='<span class="label">'+b.category+'</span><span class="fill" style="width:'+(300*b.count/max)+'px"></span><span class="n">'+Math.round(b.count)+(b.ci?' ±'+b.ci.toFixed(1):'')+'</span>';
  row.onclick=async()=>{const s=await j('/api/session/'+sid+'/select',{op:lastOp,category:b.category});
   if(!s.error){render(s);document.getElementById('chart').innerHTML=''}};
  div.appendChild(row)}}
start();
</script>
`)
