package server

import (
	"net/http/httptest"
	"testing"
)

// newStrategyServer serves tinyNT with the named sampling strategy.
func newStrategyServer(t *testing.T, strategy string) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(testDataset(t))
	srv.Strategy = strategy
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestStrategySurfaced pins the diagnostics contract of the strategy layer:
// /healthz and chart payloads name the active strategy, and stratified runs
// carry stratification telemetry while uniform runs carry none.
func TestStrategySurfaced(t *testing.T) {
	for _, tc := range []struct{ strategy, want string }{
		{"", "uniform"},
		{"uniform", "uniform"},
		{"stratified", "stratified"},
	} {
		t.Run(tc.want+"/"+tc.strategy, func(t *testing.T) {
			_, ts := newStrategyServer(t, tc.strategy)
			if h := getHealth(t, ts.URL); h.Strategy != tc.want {
				t.Errorf("healthz strategy = %q, want %q", h.Strategy, tc.want)
			}
			var st StateResponse
			post(t, ts.URL+"/api/session", struct{}{}, &st)
			var chart ChartResponse
			post(t, ts.URL+"/api/session/"+st.Session+"/chart",
				ChartRequest{Op: "out-property", Engine: "aj", BudgetMS: 50}, &chart)
			if chart.Strategy != tc.want {
				t.Errorf("chart strategy = %q, want %q", chart.Strategy, tc.want)
			}
			if tc.want == "stratified" {
				if chart.Strat == nil || chart.Strat.Strata < 1 {
					t.Fatalf("stratified chart carried no strat telemetry: %+v", chart.Strat)
				}
			} else if chart.Strat != nil {
				t.Errorf("uniform chart carried strat telemetry: %+v", chart.Strat)
			}
		})
	}
}

// TestStrategyEnginesAgree drives aj and wj under the stratified strategy
// and checks every bar against the exact counts: strategy selection must not
// change what the estimates converge to on a fixture this small.
func TestStrategyEnginesAgree(t *testing.T) {
	_, ts := newStrategyServer(t, "stratified")
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)

	var exact ChartResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "out-property", Engine: "ctj"}, &exact)
	if exact.NumBars == 0 {
		t.Fatal("exact chart returned no bars")
	}
	want := map[string]float64{}
	for _, b := range exact.Bars {
		want[b.Category] = b.Count
	}
	for _, engine := range []string{"aj", "wj", ""} {
		var c ChartResponse
		resp := post(t, ts.URL+"/api/session/"+st.Session+"/chart",
			ChartRequest{Op: "out-property", Engine: engine, BudgetMS: 200}, &c)
		if resp.StatusCode != 200 {
			t.Fatalf("engine %q: status %d", engine, resp.StatusCode)
		}
		for _, b := range c.Bars {
			if ex, ok := want[b.Category]; ok && b.Count < ex/2 {
				t.Errorf("engine %q: bar %q = %.1f, exact %.1f", engine, b.Category, b.Count, ex)
			}
		}
	}
}

// TestShardedStrategySurfaced: the stratified strategy nests under sharded
// scatter-gather — charts report strategy and a leaf-strata count of at
// least the shard count.
func TestShardedStrategySurfaced(t *testing.T) {
	srv, _ := newShardedTestServer(t, 2)
	srv.Strategy = "stratified"
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if h := getHealth(t, ts.URL); h.Strategy != "stratified" {
		t.Errorf("healthz strategy = %q", h.Strategy)
	}
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)
	var chart ChartResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "out-property", Engine: "aj", BudgetMS: 100}, &chart)
	if chart.Strategy != "stratified" {
		t.Errorf("chart strategy = %q", chart.Strategy)
	}
	if chart.Strat == nil || chart.Strat.Strata < 2 {
		t.Fatalf("sharded stratified chart strat = %+v, want >= 2 strata", chart.Strat)
	}
}
