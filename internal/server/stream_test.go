package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kgexplore"
)

func newStreamServer(t *testing.T, maxBudget time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	ds, err := kgexplore.LoadNTriples(strings.NewReader(tinyNT))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(ds)
	srv.MaxBudget = maxBudget
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postStream(t *testing.T, url string, req ChartRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readEvents reads up to max SSE events (all of them when max <= 0).
func readEvents(t *testing.T, resp *http.Response, max int) []ChartResponse {
	t.Helper()
	var events []ChartResponse
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var c ChartResponse
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &c); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, c)
		if max > 0 && len(events) >= max {
			break
		}
	}
	return events
}

func TestStreamChartProgressiveSnapshots(t *testing.T) {
	_, ts := newStreamServer(t, 5*time.Second)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)

	resp := postStream(t, ts.URL+"/api/session/"+st.Session+"/chart?stream=1",
		ChartRequest{Op: "subclass", Engine: "wj", BudgetMS: 150, IntervalMS: 10})
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readEvents(t, resp, 0)
	if len(events) < 2 {
		t.Fatalf("got %d SSE events, want >= 2 progressive snapshots", len(events))
	}
	for i, e := range events {
		if e.Engine != "wj" || e.NumBars == 0 {
			t.Errorf("event %d = %+v", i, e)
		}
		if i > 0 && e.Walks <= events[i-1].Walks {
			t.Errorf("walks not strictly increasing: event %d has %d after %d",
				i, e.Walks, events[i-1].Walks)
		}
	}
}

func TestStreamChartDefaultEngineIsAuditJoin(t *testing.T) {
	_, ts := newStreamServer(t, 5*time.Second)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)
	resp := postStream(t, ts.URL+"/api/session/"+st.Session+"/chart?stream=1",
		ChartRequest{Op: "subclass", BudgetMS: 60, IntervalMS: 10})
	defer resp.Body.Close()
	events := readEvents(t, resp, 0)
	if len(events) == 0 || events[0].Engine != "aj" {
		t.Errorf("events = %+v, want engine aj", events)
	}
}

func TestStreamChartRejectsExactEngines(t *testing.T) {
	_, ts := newStreamServer(t, 5*time.Second)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)
	resp := postStream(t, ts.URL+"/api/session/"+st.Session+"/chart?stream=1",
		ChartRequest{Op: "subclass", Engine: "ctj"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("exact engine in stream mode: status %d, want 400", resp.StatusCode)
	}
}

func TestStreamChartDisconnectCancelsRun(t *testing.T) {
	// A client that walks away mid-stream must cancel the server-side run
	// through the request context: after closing the body, the handler exits
	// long before its 20s budget, so shutting the test server down is fast.
	srv, ts := newStreamServer(t, 30*time.Second)
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)

	resp := postStream(t, ts.URL+"/api/session/"+st.Session+"/chart?stream=1",
		ChartRequest{Op: "subclass", Engine: "aj", BudgetMS: 20000, IntervalMS: 10})
	if events := readEvents(t, resp, 2); len(events) < 2 {
		t.Fatalf("got %d events before disconnect", len(events))
	}
	resp.Body.Close()

	start := time.Now()
	ts.Close() // waits for outstanding handlers
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("server shutdown after client disconnect took %v; run not cancelled", elapsed)
	}
	_ = srv
}

// testClock is a race-safe fake clock for the session-TTL tests.
type testClock struct {
	base time.Time
	off  atomic.Int64
}

func (c *testClock) now() time.Time          { return c.base.Add(time.Duration(c.off.Load())) }
func (c *testClock) advance(d time.Duration) { c.off.Add(int64(d)) }

func TestSessionTTLExpiry(t *testing.T) {
	srv, ts := newStreamServer(t, time.Second)
	clock := &testClock{base: time.Now()}
	srv.now = clock.now
	srv.SessionTTL = time.Minute

	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)

	// Still alive within the TTL.
	resp, err := http.Get(ts.URL + "/api/session/" + st.Session)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh session status = %d", resp.StatusCode)
	}

	// Idle past the TTL: the lazy sweep on the next request removes it.
	clock.advance(2 * time.Minute)
	resp, err = http.Get(ts.URL + "/api/session/" + st.Session)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("expired session status = %d, want 404", resp.StatusCode)
	}
}

func TestSessionTTLTouchKeepsAlive(t *testing.T) {
	srv, ts := newStreamServer(t, time.Second)
	clock := &testClock{base: time.Now()}
	srv.now = clock.now
	srv.SessionTTL = time.Minute

	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)

	// Touch the session every 40s: it must never expire.
	for i := 0; i < 4; i++ {
		clock.advance(40 * time.Second)
		resp, err := http.Get(ts.URL + "/api/session/" + st.Session)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("touched session expired after %d touches (status %d)", i+1, resp.StatusCode)
		}
	}
}

func TestMaxSessionsEvictsLRU(t *testing.T) {
	srv, ts := newStreamServer(t, time.Second)
	clock := &testClock{base: time.Now()}
	srv.now = clock.now
	srv.MaxSessions = 3

	var ids []string
	for i := 0; i < 4; i++ {
		clock.advance(time.Second) // distinct lastUsed per session
		var st StateResponse
		post(t, ts.URL+"/api/session", struct{}{}, &st)
		ids = append(ids, st.Session)
	}
	// The first (least recently used) session was evicted; the rest live.
	for i, id := range ids {
		resp, err := http.Get(ts.URL + "/api/session/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if i == 0 && resp.StatusCode != http.StatusNotFound {
			t.Errorf("LRU session %s status = %d, want 404", id, resp.StatusCode)
		}
		if i > 0 && resp.StatusCode != http.StatusOK {
			t.Errorf("session %s status = %d, want 200", id, resp.StatusCode)
		}
	}
}
