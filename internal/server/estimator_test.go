package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"kgexplore"
)

// newEstimatorServer serves tinyNT with the named cardinality estimator.
func newEstimatorServer(t *testing.T, estimator string) (*Server, *httptest.Server) {
	t.Helper()
	ds := loadNT(t, tinyNT)
	if estimator != "" {
		if err := ds.UseEstimator(estimator); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(ds)
	srv.Estimator = estimator
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getHealth(t *testing.T, url string) HealthResponse {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestEstimatorSurfaced pins the diagnostics contract of the estimation
// layer: /healthz and chart payloads name the active estimator, and an Audit
// Join run feeds estimate-vs-actual tipping observations into both.
func TestEstimatorSurfaced(t *testing.T) {
	for _, estimator := range []string{"", kgexplore.EstimatorSummary} {
		wantName := estimator
		if wantName == "" {
			wantName = kgexplore.EstimatorSpan
		}
		t.Run(wantName, func(t *testing.T) {
			_, ts := newEstimatorServer(t, estimator)
			if h := getHealth(t, ts.URL); h.Estimator != wantName {
				t.Errorf("healthz estimator = %q, want %q", h.Estimator, wantName)
			}

			var st StateResponse
			post(t, ts.URL+"/api/session", struct{}{}, &st)
			var chart ChartResponse
			post(t, ts.URL+"/api/session/"+st.Session+"/chart",
				ChartRequest{Op: "out-property", Engine: "aj", BudgetMS: 50}, &chart)
			if chart.Estimator != wantName {
				t.Errorf("chart estimator = %q, want %q", chart.Estimator, wantName)
			}
			// Every walk on this tiny graph tips immediately, so the run must
			// have produced tipping diagnostics.
			if chart.Tips == nil || chart.Tips.Tips == 0 {
				t.Fatalf("aj chart carried no tipping diagnostics: %+v", chart.Tips)
			}
			if chart.Tips.SumActual <= 0 {
				t.Errorf("tips sumActual = %v", chart.Tips.SumActual)
			}

			h := getHealth(t, ts.URL)
			if h.Tips == nil || h.Tips.Tips < chart.Tips.Tips {
				t.Errorf("healthz tips = %+v, chart reported %d", h.Tips, chart.Tips.Tips)
			}
		})
	}
}

// TestExactEnginesCarryNoTips: tipping diagnostics are an online-engine
// concept; exact evaluations must not fabricate them.
func TestExactEnginesCarryNoTips(t *testing.T) {
	_, ts := newEstimatorServer(t, "")
	var st StateResponse
	post(t, ts.URL+"/api/session", struct{}{}, &st)
	var chart ChartResponse
	post(t, ts.URL+"/api/session/"+st.Session+"/chart",
		ChartRequest{Op: "out-property", Engine: "ctj"}, &chart)
	if chart.Tips != nil {
		t.Errorf("exact engine reported tips: %+v", chart.Tips)
	}
}

// TestSwapKeepsEstimator: a server started with -estimator must apply the
// same selection to stores installed by admin hot-swap.
func TestSwapKeepsEstimator(t *testing.T) {
	srv, ts := newEstimatorServer(t, kgexplore.EstimatorSummary)
	srv.EnableAdmin = true
	ts2 := httptest.NewServer(srv.Handler()) // handler built after EnableAdmin
	defer ts2.Close()

	path := filepath.Join(t.TempDir(), "alt.kgs")
	if err := loadNT(t, altNT).WriteStoreSnapshotFile(path, "alt"); err != nil {
		t.Fatal(err)
	}
	var swap SwapResponse
	resp := post(t, ts2.URL+"/admin/swap", SwapRequest{Path: path}, &swap)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status %d", resp.StatusCode)
	}
	if h := getHealth(t, ts.URL); h.Estimator != kgexplore.EstimatorSummary {
		t.Errorf("estimator after swap = %q, want %q", h.Estimator, kgexplore.EstimatorSummary)
	}
}
