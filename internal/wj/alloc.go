package wj

import "math"

// VarTotal returns the total per-group sample variance of walk
// contributions, Σ_a (SumSq[a]/N − (Sum[a]/N)²). It is the quantity the
// stratified merge sums in quadrature (divided by N), so minimizing
// Σ_k VarTotal_k/N_k over a walk budget minimizes the merged squared CI —
// the objective behind Neyman allocation. Ratio accumulators (AVG) report
// the numerator channel's variance, the dominant term of the delta-method
// interval. Accumulators with fewer than two walks carry no variance
// information and report zero.
func (c *Acc) VarTotal() float64 {
	if c.N < 2 {
		return 0
	}
	n := float64(c.N)
	var tot float64
	for a, s := range c.Sum {
		m := s / n
		if v := c.SumSq[a]/n - m*m; v > 0 {
			tot += v
		}
	}
	return tot
}

// NeymanAlloc schedules walks over strata by smooth weighted round-robin,
// with weights that start proportional to stratum size and, once every
// stratum has completed its pilot walks, adapt toward Neyman allocation:
//
//	N_k ∝ sqrt(V̂_k)
//
// where V̂_k is stratum k's contribution variance (Acc.VarTotal). Because
// walk contributions are Horvitz–Thompson scaled by the stratum's root
// count, V̂_k already absorbs the stratum size N_h of the textbook
// N_h·S_h rule — sqrt(V̂_k) is its sample analog. Weights are floored at a
// fraction of the proportional share so a stratum whose early variance
// estimate happens to be tiny keeps receiving walks (its variance estimate
// keeps updating, and the merged estimator stays consistent).
//
// Not safe for concurrent use; the driving stepper owns it.
type NeymanAlloc struct {
	prop    []float64 // proportional shares, Σ = 1
	weights []float64 // current shares, Σ = 1
	credit  []float64
	pilot   int64
	every   int64
	steps   int64
	realloc int
}

// allocFloor is the minimum share a stratum keeps relative to its
// proportional share after a Neyman reallocation.
const allocFloor = 0.1

// NewNeymanAlloc builds an allocator over strata of the given sizes
// (root cardinalities; must be positive for at least one stratum). pilot
// is the per-stratum walk count required before the first reallocation;
// every is the step period between reallocation checks. Non-positive
// values select defaults (64 and 512).
func NewNeymanAlloc(sizes []float64, pilot, every int64) *NeymanAlloc {
	if pilot <= 0 {
		pilot = 64
	}
	if every <= 0 {
		every = 512
	}
	na := &NeymanAlloc{
		prop:    make([]float64, len(sizes)),
		weights: make([]float64, len(sizes)),
		credit:  make([]float64, len(sizes)),
		pilot:   pilot,
		every:   every,
	}
	var total float64
	for _, s := range sizes {
		if s > 0 {
			total += s
		}
	}
	for i, s := range sizes {
		if total > 0 && s > 0 {
			na.prop[i] = s / total
		} else {
			na.prop[i] = 1 / float64(len(sizes))
		}
		na.weights[i] = na.prop[i]
	}
	return na
}

// Next picks the stratum for the next walk. accs[k] is stratum k's current
// accumulator (nil entries count as unpiloted); every `every` steps the
// weights are re-derived from the accumulated variances.
func (na *NeymanAlloc) Next(accs []*Acc) int {
	if na.steps > 0 && na.steps%na.every == 0 {
		na.adapt(accs)
	}
	na.steps++
	best := 0
	for i := range na.weights {
		na.credit[i] += na.weights[i]
		if na.credit[i] > na.credit[best] {
			best = i
		}
	}
	na.credit[best]-- // Σ weights = 1
	return best
}

// adapt recomputes the weights from per-stratum variances. It is a no-op
// until every stratum has run its pilot and at least one variance is
// positive.
func (na *NeymanAlloc) adapt(accs []*Acc) {
	raw := make([]float64, len(na.weights))
	var sum float64
	for k := range na.weights {
		if k >= len(accs) || accs[k] == nil || accs[k].N < na.pilot {
			return
		}
		raw[k] = math.Sqrt(accs[k].VarTotal())
		sum += raw[k]
	}
	if sum == 0 || math.IsInf(sum, 0) || math.IsNaN(sum) {
		return
	}
	var renorm float64
	for k := range raw {
		w := raw[k] / sum
		if floor := allocFloor * na.prop[k]; w < floor {
			w = floor
		}
		raw[k] = w
		renorm += w
	}
	for k := range raw {
		na.weights[k] = raw[k] / renorm
	}
	na.realloc++
}

// Weights returns the current allocation shares (Σ = 1). The slice is the
// allocator's own; callers must not mutate it.
func (na *NeymanAlloc) Weights() []float64 { return na.weights }

// Reallocs returns how many Neyman reallocations have been applied.
func (na *NeymanAlloc) Reallocs() int { return na.realloc }
