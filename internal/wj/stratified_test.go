package wj

import (
	"math"
	"math/rand"
	"testing"
)

// TestMergeStratifiedDegenerateStrataFinite is the property test for the
// hardening: no mix of degenerate strata — zero completed walks, a single
// walk (no variance information), all-rejected strata, even corrupt
// non-finite sums a distributed run could receive from a buggy worker —
// ever produces a NaN or Inf estimate or interval.
func TestMergeStratifiedDegenerateStrataFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		nStrata := 1 + rng.Intn(6)
		accs := make([]*Acc, 0, nStrata)
		healthy := false
		for k := 0; k < nStrata; k++ {
			a := NewAcc()
			switch rng.Intn(5) {
			case 0: // zero completed walks
			case 1: // all-rejected stratum
				a.N = int64(1 + rng.Intn(5))
				a.Rejected = a.N
			case 2: // single walk: no variance information
				a.N = 1
				a.Add(1, rng.Float64()*100)
			case 3: // corrupt worker payload: non-finite sums
				a.N = int64(2 + rng.Intn(5))
				a.Sum[1] = math.Inf(1)
				a.SumSq[1] = math.NaN()
			default: // healthy stratum
				a.N = int64(2 + rng.Intn(50))
				for i := int64(0); i < a.N; i++ {
					a.Add(1, rng.Float64()*10)
					a.Add(2, rng.Float64())
				}
				healthy = true
			}
			accs = append(accs, a)
			if rng.Intn(4) == 0 {
				accs = append(accs, nil) // lost worker: no accumulator at all
			}
		}
		r := MergeStratified(accs, 1.96)
		for g, ci := range r.CI {
			if math.IsNaN(ci) || math.IsInf(ci, 0) {
				t.Fatalf("trial %d: group %d CI = %v from degenerate strata", trial, g, ci)
			}
			if ci < 0 {
				t.Fatalf("trial %d: group %d CI = %v < 0", trial, g, ci)
			}
		}
		_ = healthy
	}
}

// TestMergeStratifiedSingleWalkConservative pins the fallback width: a
// stratum of one walk contributes |estimate| as its half-width term.
func TestMergeStratifiedSingleWalkConservative(t *testing.T) {
	a := NewAcc()
	a.N = 1
	a.Add(1, 40)
	r := MergeStratified([]*Acc{a}, 2)
	if got := r.Estimates[1]; got != 40 {
		t.Fatalf("estimate = %v, want 40", got)
	}
	if got, want := r.CI[1], 2*40.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("single-walk CI = %v, want %v (z*|estimate|)", got, want)
	}
}
