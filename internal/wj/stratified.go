package wj

import (
	"math"

	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
)

// MergeStratified combines the accumulators of independent strata into one
// Result. Unlike Merge — which pools i.i.d. walks over the same population —
// the inputs here sample disjoint sub-populations (e.g. the shards of a
// partitioned store), so the global estimator is the SUM of per-stratum
// estimators, not a pooled mean:
//
//	est[a] = Σ_k Sum_k[a]/N_k
//
// Per-stratum means are independent, so their variances add, giving the
// merged interval
//
//	CI[a] = z·sqrt(Σ_k var̂_k[a]/N_k)
//
// where var̂_k is the per-stratum sample variance of walk contributions. A
// stratum with N_k = 0 (it performed no walks, e.g. its root span is empty —
// its true total is zero) contributes nothing. Ratio estimators (AVG) merge
// as the ratio of the two channels' stratum sums, Σ_k num̂_k / Σ_k den̂_k,
// with the CI left at zero exactly as in Acc.Snapshot.
//
// Degenerate strata never poison the merged interval: a stratum with a
// single completed walk has no variance information, so its variance term
// falls back to the square of its estimate (conservatively wide but
// finite), and non-finite per-stratum terms — which a distributed run
// could in principle receive from a buggy worker — degrade the same way
// instead of propagating NaN/Inf into every group's CI.
func MergeStratified(accs []*Acc, z float64) Result {
	r := Result{
		Estimates: make(map[rdf.ID]float64),
		CI:        make(map[rdf.ID]float64),
	}
	ratio := false
	var num, den map[rdf.ID]float64
	varSum := make(map[rdf.ID]float64)
	for _, c := range accs {
		if c == nil || c.N == 0 {
			continue
		}
		r.Walks += c.N
		r.Rejected += c.Rejected
		r.Dedup += c.Dedup
		n := float64(c.N)
		if c.Den != nil && !ratio {
			ratio = true
			num = make(map[rdf.ID]float64)
			den = make(map[rdf.ID]float64)
		}
		for a, s := range c.Sum {
			if c.Den != nil {
				num[a] += s / n
				den[a] += c.Den[a] / n
				continue
			}
			r.Estimates[a] += s / n
			hw := stats.CIHalfWidth(s, c.SumSq[a], c.N, 1) // sqrt(var̂/N)
			if math.IsInf(hw, 0) || math.IsNaN(hw) {
				// N_k = 1 (or corrupt sums): no variance estimate exists.
				// Use |stratum estimate| as a conservative finite stand-in.
				hw = math.Abs(s / n)
				if math.IsInf(hw, 0) || math.IsNaN(hw) {
					hw = 0
				}
			}
			varSum[a] += hw * hw
		}
	}
	if ratio {
		for a, nv := range num {
			if d := den[a]; d > 0 {
				r.Estimates[a] = nv / d
			}
		}
		return r
	}
	for a, v := range varSum {
		r.CI[a] = z * math.Sqrt(v)
	}
	return r
}

// MergeUnion combines finished Results of independently estimated UNION
// branches for additive aggregates (COUNT, SUM): under SPARQL bag semantics
// each branch contributes its full multiset, so the union estimate is the sum
// of branch estimates, and — the branches being estimated by independent walk
// processes — the half-widths merge in quadrature:
//
//	est[a] = Σ_b est_b[a],  CI[a] = sqrt(Σ_b CI_b[a]²)
//
// AVG (a ratio of two additive channels that Result no longer separates) and
// COUNT(DISTINCT) (cross-branch duplicates collapse, so estimates do NOT add)
// cannot be merged at the Result level; callers route those to the exact
// union evaluators or to a stepper that keeps per-branch accumulators
// (exec.Union via MergeStratified).
func MergeUnion(results []Result, z float64) Result {
	_ = z // half-widths are already scaled; kept for signature symmetry
	r := Result{
		Estimates: make(map[rdf.ID]float64),
		CI:        make(map[rdf.ID]float64),
	}
	varSum := make(map[rdf.ID]float64)
	for _, br := range results {
		r.Walks += br.Walks
		r.Rejected += br.Rejected
		r.Dedup += br.Dedup
		for a, v := range br.Estimates {
			r.Estimates[a] += v
		}
		for a, hw := range br.CI {
			if math.IsInf(hw, 0) || math.IsNaN(hw) {
				hw = math.Abs(br.Estimates[a])
			}
			varSum[a] += hw * hw
		}
	}
	for a, v := range varSum {
		r.CI[a] = math.Sqrt(v)
	}
	return r
}
