package wj

import (
	"testing"

	"kgexplore/internal/lftj"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
)

// TestCICoverage checks the statistical meaning of the 0.95 confidence
// intervals: over many independent runs, the interval around the estimate
// should contain the exact count roughly 95% of the time (Haas 1997). We
// use a non-distinct grouped query (the unbiased regime) and allow a
// generous band around 0.95 since the CLT approximation is rough at small
// n and the trials are finite.
func TestCICoverage(t *testing.T) {
	g := testkit.RandomGraph(21, 8, 3, 5, 70)
	q := testkit.ChainQuery(g, []rdf.ID{8, 9}, true, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	exact := lftj.GroupCount(st, pl)
	if len(exact) == 0 {
		t.Skip("empty fixture")
	}
	// Pick the largest group (best CLT behaviour).
	var target rdf.ID
	var best int64 = -1
	for a, n := range exact {
		if n > best {
			target, best = a, n
		}
	}
	const trials = 200
	const walks = 4000
	covered := 0
	for trial := 0; trial < trials; trial++ {
		r := New(st, pl, int64(1000+trial))
		runN(r, walks)
		snap := r.Snapshot()
		est := snap.Estimates[target]
		hw := snap.CI[target]
		truth := float64(exact[target])
		if est-hw <= truth && truth <= est+hw {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.85 || frac > 1.0 {
		t.Errorf("CI coverage = %.3f over %d trials, want ~0.95", frac, trials)
	}
}
