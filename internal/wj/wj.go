// Package wj implements Wander Join (Li et al., SIGMOD 2016) for the
// exploration-query fragment: online aggregation of grouped counts via
// independent random walks over the candidate-set graph, with the
// Horvitz–Thompson estimator C_wj(γ) = ∏ d_i (paper §IV-C).
//
// Wander Join has no unbiased estimator for COUNT(DISTINCT); following the
// paper's experimental setup, distinct mode augments it with the technique
// of Ripple Join (Haas & Hellerstein): samples whose (group, value) pair has
// been seen before are rejected. This keeps duplicates from inflating the
// count but leaves the estimator biased — the limitation Audit Join removes.
package wj

import (
	"math/rand"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
)

// GlobalGroup is the group key used for ungrouped queries.
const GlobalGroup = rdf.NoID

// Acc accumulates per-group walk contributions. It is shared by Wander Join
// and Audit Join: both divide per-group contribution sums by the total
// number of walks N (Fig. 7 line 24 of the paper) and derive CLT confidence
// intervals from the contribution second moments.
type Acc struct {
	N        int64 // all walks, including rejected ones
	Rejected int64 // walks that hit a dead end
	Dedup    int64 // distinct-mode walks dropped as already-seen (WJ only)
	Sum      map[rdf.ID]float64
	SumSq    map[rdf.ID]float64
	// Den holds denominator contributions for ratio estimators (AVG);
	// nil unless AddRatio has been used.
	Den map[rdf.ID]float64
	// Distinct marks a distinct-mode Wander Join accumulator, whose
	// Ripple-style dedup set is runner-local; Merge refuses such
	// accumulators. Audit Join accumulators never set it (their distinct
	// estimator is per-walk unbiased and merges freely).
	Distinct bool
}

// NewAcc returns an empty accumulator.
func NewAcc() *Acc {
	return &Acc{Sum: make(map[rdf.ID]float64), SumSq: make(map[rdf.ID]float64)}
}

// Add records a successful walk contribution x for group a.
func (c *Acc) Add(a rdf.ID, x float64) {
	c.Sum[a] += x
	c.SumSq[a] += x * x
}

// AddRatio records a ratio-estimator contribution: num feeds the primary
// channel, den the denominator channel (used by AVG, where the estimate is
// the ratio of two Horvitz–Thompson estimators).
func (c *Acc) AddRatio(a rdf.ID, num, den float64) {
	c.Add(a, num)
	if c.Den == nil {
		c.Den = make(map[rdf.ID]float64)
	}
	c.Den[a] += den
}

// Merge folds another accumulator into c. Because walks are i.i.d., the
// merged accumulator is exactly what a single runner would have produced
// with the union of the walks; this is how parallel estimation combines
// per-goroutine runners (the paper cites parallel online aggregation as
// related work; with independent walks the combination is trivial).
// Distinct-mode WJ accumulators must not be merged (their Ripple-style
// dedup sets are runner-local, so merged sums double-count duplicates);
// Merge panics on them. Audit Join accumulators always can be merged.
func (c *Acc) Merge(o *Acc) {
	if c.Distinct || o.Distinct {
		panic("wj: Merge on a distinct-mode Wander Join accumulator: per-runner dedup sets make merged counts meaningless")
	}
	c.N += o.N
	c.Rejected += o.Rejected
	c.Dedup += o.Dedup
	for a, v := range o.Sum {
		c.Sum[a] += v
	}
	for a, v := range o.SumSq {
		c.SumSq[a] += v
	}
	if o.Den != nil {
		if c.Den == nil {
			c.Den = make(map[rdf.ID]float64, len(o.Den))
		}
		for a, v := range o.Den {
			c.Den[a] += v
		}
	}
}

// Clone returns a deep copy of the accumulator. Parallel estimation uses
// clones to publish a worker's state across goroutines: the worker copies
// under its own control, so the original is never read concurrently.
func (c *Acc) Clone() *Acc {
	o := &Acc{
		N:        c.N,
		Rejected: c.Rejected,
		Dedup:    c.Dedup,
		Sum:      make(map[rdf.ID]float64, len(c.Sum)),
		SumSq:    make(map[rdf.ID]float64, len(c.SumSq)),
		Distinct: c.Distinct,
	}
	for a, v := range c.Sum {
		o.Sum[a] = v
	}
	for a, v := range c.SumSq {
		o.SumSq[a] = v
	}
	if c.Den != nil {
		o.Den = make(map[rdf.ID]float64, len(c.Den))
		for a, v := range c.Den {
			o.Den[a] = v
		}
	}
	return o
}

// Result is a point-in-time snapshot of an online aggregation.
type Result struct {
	Estimates map[rdf.ID]float64 // per-group estimate
	CI        map[rdf.ID]float64 // per-group 0.95 CI half-width
	Walks     int64
	Rejected  int64
	Dedup     int64
}

// RejectionRate returns the fraction of walks that hit a dead end.
func (r Result) RejectionRate() float64 {
	if r.Walks == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(r.Walks)
}

// Snapshot converts the accumulator into estimates: sum/N per group, with
// CLT confidence intervals at level z. When the denominator channel is in
// use (AVG), the estimate is the ratio of the two channels' sums and the
// CI is left at zero (a delta-method interval is future work, matching the
// paper's focus on counts).
func (c *Acc) Snapshot(z float64) Result {
	r := Result{
		Estimates: make(map[rdf.ID]float64, len(c.Sum)),
		CI:        make(map[rdf.ID]float64, len(c.Sum)),
		Walks:     c.N,
		Rejected:  c.Rejected,
		Dedup:     c.Dedup,
	}
	if c.N == 0 {
		return r
	}
	for a, s := range c.Sum {
		if c.Den != nil {
			if d := c.Den[a]; d > 0 {
				r.Estimates[a] = s / d
			}
			continue
		}
		r.Estimates[a] = s / float64(c.N)
		r.CI[a] = stats.CIHalfWidth(s, c.SumSq[a], c.N, z)
	}
	return r
}

// Runner executes Wander Join walks over one plan. Not safe for concurrent
// use; create one Runner per goroutine.
type Runner struct {
	store *index.Store
	pl    *query.Plan
	rng   *rand.Rand
	acc   *Acc
	seen  map[uint64]struct{} // distinct mode: packed (group, beta) pairs seen

	// b is the per-walk binding buffer and static the pre-resolved spans of
	// constant-bound steps; together they keep Step allocation-free at
	// steady state.
	b      query.Bindings
	static []query.StaticSpan
}

// New creates a Runner with a deterministic random source.
func New(store *index.Store, pl *query.Plan, seed int64) *Runner {
	acc := NewAcc()
	// Distinct-mode walks depend on this runner's dedup set; mark the
	// accumulator so it cannot be merged into another (see Acc.Merge).
	acc.Distinct = pl.Query.Distinct
	return &Runner{
		store:  store,
		pl:     pl,
		rng:    rand.New(rand.NewSource(seed)),
		acc:    acc,
		seen:   make(map[uint64]struct{}),
		b:      pl.NewBindings(),
		static: pl.ResolveStatic(store),
	}
}

// Step performs one random walk, updating the estimator state.
func (r *Runner) Step() {
	r.acc.N++
	b := r.b
	b.Reset()
	prod := 1.0 // ∏ d_i
	for i := range r.pl.Steps {
		st := &r.pl.Steps[i]
		var sp index.Span
		var ok bool
		if st.Static {
			sp, ok = r.static[i].Span, r.static[i].OK
		} else {
			sp, ok = st.ResolveSpan(r.store, b)
		}
		if !ok {
			r.acc.Rejected++
			return
		}
		if st.Kind == query.AccessMembership {
			continue // d_i = 1
		}
		t := r.store.Sample(st.Order, sp, r.rng)
		st.Bind(t, b)
		prod *= float64(sp.Len())
	}
	q := r.pl.Query
	a := GlobalGroup
	if q.Alpha != query.NoVar {
		a = b[q.Alpha]
	}
	switch q.Agg {
	case query.AggSum:
		if v, ok := r.store.Numeric(b[q.Beta]); ok {
			r.acc.Add(a, v*prod)
		}
		return
	case query.AggAvg:
		if v, ok := r.store.Numeric(b[q.Beta]); ok {
			r.acc.AddRatio(a, v*prod, prod)
		}
		return
	}
	if q.Distinct {
		key := uint64(a)<<32 | uint64(b[q.Beta])
		if _, dup := r.seen[key]; dup {
			r.acc.Dedup++
			return
		}
		r.seen[key] = struct{}{}
	}
	r.acc.Add(a, prod)
}

// Walks returns the total number of walks performed, including rejected
// ones. Together with Step and Snapshot it makes the Runner an exec.Stepper;
// the driving loops (budgets, intervals, cancellation) live in internal/exec.
func (r *Runner) Walks() int64 { return r.acc.N }

// Snapshot returns the current estimates with 0.95 confidence intervals.
func (r *Runner) Snapshot() Result { return r.acc.Snapshot(stats.Z95) }

// Acc exposes the accumulator (used by tests and the harness).
func (r *Runner) Acc() *Acc { return r.acc }
