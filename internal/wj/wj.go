// Package wj implements Wander Join (Li et al., SIGMOD 2016) for the
// exploration-query fragment: online aggregation of grouped counts via
// independent random walks over the candidate-set graph, with the
// Horvitz–Thompson estimator C_wj(γ) = ∏ d_i (paper §IV-C).
//
// Wander Join has no unbiased estimator for COUNT(DISTINCT); following the
// paper's experimental setup, distinct mode augments it with the technique
// of Ripple Join (Haas & Hellerstein): samples whose (group, value) pair has
// been seen before are rejected. This keeps duplicates from inflating the
// count but leaves the estimator biased — the limitation Audit Join removes.
// Distinct-mode accumulators carry their dedup state (the per-pair first
// contribution and hit count) so that Merge can union two of them into what
// a single runner over the combined walks would have produced.
package wj

import (
	"math/rand"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/stats"
)

// GlobalGroup is the group key used for ungrouped queries.
const GlobalGroup = rdf.NoID

// Acc accumulates per-group walk contributions. It is shared by Wander Join
// and Audit Join: both divide per-group contribution sums by the total
// number of walks N (Fig. 7 line 24 of the paper) and derive CLT confidence
// intervals from the contribution second moments.
type Acc struct {
	N        int64 // all walks, including rejected ones
	Rejected int64 // walks that hit a dead end
	Dedup    int64 // distinct-mode walks dropped as already-seen (WJ only)
	Sum      map[rdf.ID]float64
	SumSq    map[rdf.ID]float64
	// Den holds denominator contributions for ratio estimators (AVG);
	// nil unless AddRatio has been used.
	Den map[rdf.ID]float64
	// Distinct marks a distinct-mode Wander Join accumulator. Its dedup
	// state lives in Vals, keyed by packed (group, value) pairs, which makes
	// the accumulator self-contained: Merge unions the value sets of two
	// distinct accumulators instead of double-counting duplicates. Audit
	// Join accumulators never set it (their distinct estimator is per-walk
	// unbiased and merges freely).
	Distinct bool
	// Vals is the distinct-mode value set: for every (group, value) pair
	// seen, the contribution currently credited to Sum and the number of
	// walks that reached the pair. Nil outside distinct mode.
	Vals map[uint64]DistinctVal
}

// DistinctVal is one entry of a distinct-mode value set: the ∏d_i
// contribution currently credited for the (group, value) pair, and how many
// walks hit the pair (the first sight plus every dedup'd repeat).
type DistinctVal struct {
	Contribution float64
	Hits         int64
}

// DistinctKey packs a (group, value) pair into a Vals key.
func DistinctKey(a, beta rdf.ID) uint64 {
	return uint64(a)<<32 | uint64(beta)
}

// NewAcc returns an empty accumulator.
func NewAcc() *Acc {
	return &Acc{Sum: make(map[rdf.ID]float64), SumSq: make(map[rdf.ID]float64)}
}

// Add records a successful walk contribution x for group a.
func (c *Acc) Add(a rdf.ID, x float64) {
	c.Sum[a] += x
	c.SumSq[a] += x * x
}

// AddRatio records a ratio-estimator contribution: num feeds the primary
// channel, den the denominator channel (used by AVG, where the estimate is
// the ratio of two Horvitz–Thompson estimators).
func (c *Acc) AddRatio(a rdf.ID, num, den float64) {
	c.Add(a, num)
	if c.Den == nil {
		c.Den = make(map[rdf.ID]float64)
	}
	c.Den[a] += den
}

// Merge folds another accumulator into c. Because walks are i.i.d., the
// merged accumulator is exactly what a single runner would have produced
// with the union of the walks; this is how parallel estimation combines
// per-goroutine runners (the paper cites parallel online aggregation as
// related work; with independent walks the combination is trivial).
//
// Distinct-mode accumulators merge by value-set union: a (group, value)
// pair seen on only one side keeps its contribution; a pair seen on both
// sides collapses into one — its contribution is reconciled to the
// hit-count-weighted mean of the two sides' recorded contributions and the
// redundant first sight is counted as a dedup, which is what a single
// runner over the combined walk stream would have recorded (up to which
// walk happened to arrive first). Mixing a distinct and a non-distinct
// accumulator is a programming error and still panics.
func (c *Acc) Merge(o *Acc) {
	if c.Distinct != o.Distinct {
		panic("wj: Merge of a distinct-mode and a non-distinct accumulator: the estimators are incompatible")
	}
	c.N += o.N
	c.Rejected += o.Rejected
	c.Dedup += o.Dedup
	if c.Distinct {
		c.mergeDistinct(o)
		return
	}
	for a, v := range o.Sum {
		c.Sum[a] += v
	}
	for a, v := range o.SumSq {
		c.SumSq[a] += v
	}
	if o.Den != nil {
		if c.Den == nil {
			c.Den = make(map[rdf.ID]float64, len(o.Den))
		}
		for a, v := range o.Den {
			c.Den[a] += v
		}
	}
}

// mergeDistinct unions o's value set into c, keeping Sum/SumSq consistent
// with exactly one contribution per surviving (group, value) pair.
func (c *Acc) mergeDistinct(o *Acc) {
	if c.Vals == nil && len(o.Vals) > 0 {
		c.Vals = make(map[uint64]DistinctVal, len(o.Vals))
	}
	for key, ov := range o.Vals {
		a := rdf.ID(key >> 32)
		cv, seen := c.Vals[key]
		if !seen {
			c.Vals[key] = ov
			c.Sum[a] += ov.Contribution
			c.SumSq[a] += ov.Contribution * ov.Contribution
			continue
		}
		rec := (cv.Contribution*float64(cv.Hits) + ov.Contribution*float64(ov.Hits)) /
			float64(cv.Hits+ov.Hits)
		c.Sum[a] += rec - cv.Contribution
		c.SumSq[a] += rec*rec - cv.Contribution*cv.Contribution
		c.Vals[key] = DistinctVal{Contribution: rec, Hits: cv.Hits + ov.Hits}
		c.Dedup++ // o's first sight of the pair collapses into a duplicate
	}
}

// AddDistinct records a distinct-mode walk that reached (group a, value
// beta) with contribution x. The first walk to reach a pair credits its
// contribution; repeats are counted as dedups. Returns whether the walk was
// a first sight.
func (c *Acc) AddDistinct(a, beta rdf.ID, x float64) bool {
	if c.Vals == nil {
		c.Vals = make(map[uint64]DistinctVal)
	}
	key := DistinctKey(a, beta)
	if dv, dup := c.Vals[key]; dup {
		dv.Hits++
		c.Vals[key] = dv
		c.Dedup++
		return false
	}
	c.Vals[key] = DistinctVal{Contribution: x, Hits: 1}
	c.Add(a, x)
	return true
}

// Clone returns a deep copy of the accumulator. Parallel estimation uses
// clones to publish a worker's state across goroutines: the worker copies
// under its own control, so the original is never read concurrently.
func (c *Acc) Clone() *Acc {
	o := &Acc{
		N:        c.N,
		Rejected: c.Rejected,
		Dedup:    c.Dedup,
		Sum:      make(map[rdf.ID]float64, len(c.Sum)),
		SumSq:    make(map[rdf.ID]float64, len(c.SumSq)),
		Distinct: c.Distinct,
	}
	for a, v := range c.Sum {
		o.Sum[a] = v
	}
	for a, v := range c.SumSq {
		o.SumSq[a] = v
	}
	if c.Den != nil {
		o.Den = make(map[rdf.ID]float64, len(c.Den))
		for a, v := range c.Den {
			o.Den[a] = v
		}
	}
	if c.Vals != nil {
		o.Vals = make(map[uint64]DistinctVal, len(c.Vals))
		for k, v := range c.Vals {
			o.Vals[k] = v
		}
	}
	return o
}

// Result is a point-in-time snapshot of an online aggregation.
type Result struct {
	Estimates map[rdf.ID]float64 // per-group estimate
	CI        map[rdf.ID]float64 // per-group 0.95 CI half-width
	Walks     int64
	Rejected  int64
	Dedup     int64
}

// RejectionRate returns the fraction of walks that hit a dead end.
func (r Result) RejectionRate() float64 {
	if r.Walks == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(r.Walks)
}

// Snapshot converts the accumulator into estimates: sum/N per group, with
// CLT confidence intervals at level z. When the denominator channel is in
// use (AVG), the estimate is the ratio of the two channels' sums and the
// CI is left at zero (a delta-method interval is future work, matching the
// paper's focus on counts).
func (c *Acc) Snapshot(z float64) Result {
	r := Result{
		Estimates: make(map[rdf.ID]float64, len(c.Sum)),
		CI:        make(map[rdf.ID]float64, len(c.Sum)),
		Walks:     c.N,
		Rejected:  c.Rejected,
		Dedup:     c.Dedup,
	}
	if c.N == 0 {
		return r
	}
	for a, s := range c.Sum {
		if c.Den != nil {
			if d := c.Den[a]; d > 0 {
				r.Estimates[a] = s / d
			}
			continue
		}
		r.Estimates[a] = s / float64(c.N)
		r.CI[a] = stats.CIHalfWidth(s, c.SumSq[a], c.N, z)
	}
	return r
}

// Runner executes Wander Join walks over one plan. Not safe for concurrent
// use; create one Runner per goroutine.
type Runner struct {
	store *index.Store
	pl    *query.Plan
	rng   *rand.Rand
	acc   *Acc

	// b is the per-walk binding buffer and static the pre-resolved spans of
	// constant-bound steps; together they keep Step allocation-free at
	// steady state.
	b      query.Bindings
	static []query.StaticSpan
}

// New creates a Runner with a deterministic random source.
func New(store *index.Store, pl *query.Plan, seed int64) *Runner {
	acc := NewAcc()
	// Distinct-mode dedup state lives in the accumulator itself (Acc.Vals),
	// so merging two runners' accumulators unions their value sets.
	acc.Distinct = pl.Query.Distinct
	return &Runner{
		store:  store,
		pl:     pl,
		rng:    rand.New(rand.NewSource(seed)),
		acc:    acc,
		b:      pl.NewBindings(),
		static: pl.ResolveStatic(store),
	}
}

// Step performs one random walk, updating the estimator state.
func (r *Runner) Step() {
	r.acc.N++
	b := r.b
	b.Reset()
	prod := 1.0 // ∏ d_i
	for i := range r.pl.Steps {
		st := &r.pl.Steps[i]
		var sp index.Span
		var ok bool
		if st.Static {
			sp, ok = r.static[i].Span, r.static[i].OK
		} else {
			sp, ok = st.ResolveSpan(r.store, b)
		}
		if !ok {
			r.acc.Rejected++
			return
		}
		if st.Kind == query.AccessMembership {
			continue // d_i = 1
		}
		t := r.store.Sample(st.Order, sp, r.rng)
		st.Bind(t, b)
		// A failed FILTER rejects the walk: a zero-weight Horvitz–Thompson
		// draw, so the estimator stays unbiased for the filtered count.
		if len(st.Filters) > 0 && !r.pl.StepFiltersOK(i, r.store, b) {
			r.acc.Rejected++
			return
		}
		prod *= float64(sp.Len())
	}
	q := r.pl.Query
	a := GlobalGroup
	if q.Alpha != query.NoVar {
		a = b[q.Alpha]
	}
	switch q.Agg {
	case query.AggSum:
		if v, ok := r.store.Numeric(b[q.Beta]); ok {
			r.acc.Add(a, v*prod)
		}
		return
	case query.AggAvg:
		if v, ok := r.store.Numeric(b[q.Beta]); ok {
			r.acc.AddRatio(a, v*prod, prod)
		}
		return
	}
	if q.Distinct {
		r.acc.AddDistinct(a, b[q.Beta], prod)
		return
	}
	r.acc.Add(a, prod)
}

// Walks returns the total number of walks performed, including rejected
// ones. Together with Step and Snapshot it makes the Runner an exec.Stepper;
// the driving loops (budgets, intervals, cancellation) live in internal/exec.
func (r *Runner) Walks() int64 { return r.acc.N }

// Snapshot returns the current estimates with 0.95 confidence intervals.
func (r *Runner) Snapshot() Result { return r.acc.Snapshot(stats.Z95) }

// Acc exposes the accumulator (used by tests and the harness).
func (r *Runner) Acc() *Acc { return r.acc }
