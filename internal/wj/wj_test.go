package wj

import (
	"math"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// runN performs n walks. The driving loops live in internal/exec, which
// imports this package — in-package tests use this local helper instead.
func runN(r *Runner, n int) {
	for i := 0; i < n; i++ {
		r.Step()
	}
}

func fig5(t *testing.T, distinct bool) (*query.Plan, *rdf.Graph, *index.Store) {
	t.Helper()
	g := rdf.NewGraph()
	g.AddIRIs("alice", "birthPlace", "paris")
	g.AddIRIs("bob", "birthPlace", "paris")
	g.AddIRIs("carol", "birthPlace", "lima")
	g.AddIRIs("dave", "birthPlace", "lima")
	g.AddIRIs("eve", "birthPlace", "rome")
	for _, s := range []string{"alice", "bob", "carol", "dave"} {
		g.AddIRIs(s, rdf.RDFType, "Person")
	}
	g.AddIRIs("eve", rdf.RDFType, "Robot")
	g.AddIRIs("paris", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "City")
	g.AddIRIs("rome", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "Capital")
	g.Dedup()

	bp, _ := g.Dict.LookupIRI("birthPlace")
	ty, _ := g.Dict.LookupIRI(rdf.RDFType)
	person, _ := g.Dict.LookupIRI("Person")
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(bp), O: query.V(1)},
			{S: query.V(0), P: query.C(ty), O: query.C(person)},
			{S: query.V(1), P: query.C(ty), O: query.V(2)},
		},
		Alpha:    2,
		Beta:     1,
		Distinct: distinct,
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return pl, g, index.Build(g)
}

func TestUnbiasedNonDistinct(t *testing.T) {
	pl, _, st := fig5(t, false)
	exact := lftj.GroupCount(st, pl)
	r := New(st, pl, 42)
	runN(r, 200000)
	snap := r.Snapshot()
	for a, ex := range exact {
		got := snap.Estimates[a]
		rel := math.Abs(got-float64(ex)) / float64(ex)
		if rel > 0.08 {
			t.Errorf("group %d: estimate %.2f vs exact %d (rel err %.3f)", a, got, ex, rel)
		}
	}
}

func TestUnbiasedNonDistinctRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := testkit.RandomGraph(seed, 8, 3, 5, 60)
		q := testkit.ChainQuery(g, []rdf.ID{8, 9}, true, false)
		pl, err := query.Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		st := index.Build(g)
		exact := lftj.GroupCount(st, pl)
		if len(exact) == 0 {
			continue
		}
		r := New(st, pl, seed*7)
		runN(r, 300000)
		snap := r.Snapshot()
		for a, ex := range exact {
			rel := math.Abs(snap.Estimates[a]-float64(ex)) / float64(ex)
			if rel > 0.15 {
				t.Errorf("seed %d group %d: %.2f vs %d (rel %.3f)",
					seed, a, snap.Estimates[a], ex, rel)
			}
		}
	}
}

func TestRejectionCounting(t *testing.T) {
	pl, _, st := fig5(t, false)
	r := New(st, pl, 1)
	runN(r, 50000)
	snap := r.Snapshot()
	// eve's walk (1/5 of starts) always dies at the Person check.
	rate := snap.RejectionRate()
	if rate < 0.15 || rate > 0.25 {
		t.Errorf("rejection rate = %.3f, want ~0.2", rate)
	}
	if snap.Walks != 50000 {
		t.Errorf("Walks = %d, want 50000", snap.Walks)
	}
}

func TestDistinctDedup(t *testing.T) {
	pl, g, st := fig5(t, true)
	r := New(st, pl, 3)
	runN(r, 50000)
	snap := r.Snapshot()
	// There are only 3 (group, beta) pairs: (City,paris), (City,lima),
	// (Capital,lima); so at most 3 walks ever contribute.
	if snap.Dedup < 30000 {
		t.Errorf("Dedup = %d, expected most walks deduplicated", snap.Dedup)
	}
	city, _ := g.Dict.LookupIRI("City")
	if snap.Estimates[city] <= 0 {
		t.Error("City estimate is zero despite successful samples")
	}
	// The Ripple-style distinct estimator is biased: with only the first
	// occurrence counted, estimates decay as 1/N. Verify the known bias
	// direction (far below the exact count of 2 after many walks).
	if snap.Estimates[city] > 1 {
		t.Errorf("City estimate %.4f; expected heavy downward bias (< 1)", snap.Estimates[city])
	}
}

func TestCIShrinks(t *testing.T) {
	pl, _, st := fig5(t, false)
	r := New(st, pl, 5)
	runN(r, 1000)
	w1 := widest(r.Snapshot().CI)
	runN(r, 99000)
	w2 := widest(r.Snapshot().CI)
	if !(w2 < w1) {
		t.Errorf("CI did not shrink: %v -> %v", w1, w2)
	}
}

func widest(ci map[rdf.ID]float64) float64 {
	w := 0.0
	for _, v := range ci {
		if v > w {
			w = v
		}
	}
	return w
}

func TestDeterministicBySeed(t *testing.T) {
	pl, _, st := fig5(t, false)
	r1 := New(st, pl, 99)
	r2 := New(st, pl, 99)
	runN(r1, 10000)
	runN(r2, 10000)
	s1, s2 := r1.Snapshot(), r2.Snapshot()
	if s1.Rejected != s2.Rejected || len(s1.Estimates) != len(s2.Estimates) {
		t.Fatal("same seed gave different trajectories")
	}
	for a, v := range s1.Estimates {
		if s2.Estimates[a] != v {
			t.Errorf("group %d: %v vs %v", a, v, s2.Estimates[a])
		}
	}
}

func TestUngroupedEstimate(t *testing.T) {
	pl, _, st := fig5(t, false)
	q := *pl.Query
	q.Alpha = query.NoVar
	pl2, err := query.Compile(&q)
	if err != nil {
		t.Fatal(err)
	}
	exact := lftj.GroupCount(st, pl2)[lftj.GlobalGroup]
	r := New(st, pl2, 11)
	runN(r, 100000)
	got := r.Snapshot().Estimates[GlobalGroup]
	if math.Abs(got-float64(exact))/float64(exact) > 0.08 {
		t.Errorf("ungrouped estimate %.2f vs exact %d", got, exact)
	}
}

func TestEmptyQueryAllRejected(t *testing.T) {
	pl, g, st := fig5(t, false)
	// A query on a missing predicate: every walk dies at step 0.
	missing := g.Dict.InternIRI("never-used-predicate")
	q := &query.Query{
		Patterns: []query.Pattern{{S: query.V(0), P: query.C(missing), O: query.V(1)}},
		Alpha:    query.NoVar,
		Beta:     1,
	}
	pl2, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	r := New(st, pl2, 2)
	runN(r, 100)
	snap := r.Snapshot()
	if snap.Rejected != 100 || len(snap.Estimates) != 0 {
		t.Errorf("Rejected=%d Estimates=%v, want all rejected", snap.Rejected, snap.Estimates)
	}
	if snap.RejectionRate() != 1 {
		t.Errorf("rejection rate = %v, want 1", snap.RejectionRate())
	}
	_ = pl
}

func TestSnapshotEmpty(t *testing.T) {
	acc := NewAcc()
	r := acc.Snapshot(1.96)
	if r.Walks != 0 || len(r.Estimates) != 0 || r.RejectionRate() != 0 {
		t.Error("empty snapshot not empty")
	}
}

func TestWalksAccounting(t *testing.T) {
	pl, _, st := fig5(t, false)
	r := New(st, pl, 7)
	if r.Walks() != 0 {
		t.Errorf("fresh runner Walks = %d, want 0", r.Walks())
	}
	runN(r, 1234)
	if r.Walks() != 1234 {
		t.Errorf("Walks = %d, want 1234", r.Walks())
	}
	if r.Snapshot().Walks != r.Walks() {
		t.Errorf("walk accounting mismatch: %d vs %d", r.Snapshot().Walks, r.Walks())
	}
}
