package wj

import (
	"math"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

func TestAddRatioAndRatioSnapshot(t *testing.T) {
	acc := NewAcc()
	acc.N = 4
	acc.AddRatio(1, 10, 2)
	acc.AddRatio(1, 20, 3)
	acc.AddRatio(2, 6, 0) // zero denominator: group omitted from estimates
	r := acc.Snapshot(1.96)
	if got := r.Estimates[1]; got != 6 { // (10+20)/(2+3)
		t.Errorf("ratio estimate = %v, want 6", got)
	}
	if _, ok := r.Estimates[2]; ok && r.Estimates[2] != 0 {
		t.Errorf("zero-denominator group produced estimate %v", r.Estimates[2])
	}
	if r.CI[1] != 0 {
		t.Errorf("ratio CI = %v, want 0 (documented limitation)", r.CI[1])
	}
}

func TestMergeMatchesCombinedRun(t *testing.T) {
	// Merging the accumulators of two runners equals one runner over the
	// concatenated walks, statistically: same N, same sums when the second
	// runner continues the first's RNG... instead verify algebra directly:
	// merged estimate = weighted combination.
	pl, _, st := fig5(t, false)
	a := New(st, pl, 1)
	b := New(st, pl, 2)
	runN(a, 20000)
	runN(b, 20000)
	merged := NewAcc()
	merged.Merge(a.Acc())
	merged.Merge(b.Acc())
	if merged.N != 40000 {
		t.Fatalf("merged N = %d", merged.N)
	}
	snap := merged.Snapshot(1.96)
	exact := lftj.GroupCount(st, pl)
	for g, ex := range exact {
		rel := math.Abs(snap.Estimates[g]-float64(ex)) / float64(ex)
		if rel > 0.1 {
			t.Errorf("merged estimate group %d: %.2f vs %d", g, snap.Estimates[g], ex)
		}
		// The merged estimate must equal the walk-count-weighted average of
		// the two runners' estimates.
		ea := a.Snapshot().Estimates[g]
		eb := b.Snapshot().Estimates[g]
		want := (ea*float64(a.Acc().N) + eb*float64(b.Acc().N)) / float64(merged.N)
		if math.Abs(snap.Estimates[g]-want) > 1e-9 {
			t.Errorf("group %d: merged %v != weighted %v", g, snap.Estimates[g], want)
		}
	}
}

func TestMergeDistinctAccumulators(t *testing.T) {
	// Distinct-mode accumulators used to panic on Merge (runner-local dedup
	// sets); the dedup state now lives in Acc.Vals, so Merge must union the
	// value sets — and must NOT panic on the distinct+distinct case.
	pl, _, st := fig5(t, true)
	a := New(st, pl, 1)
	b := New(st, pl, 2)
	runN(a, 2000)
	runN(b, 2000)
	if !a.Acc().Distinct || !b.Acc().Distinct {
		t.Fatal("distinct-mode runners should mark their accumulators")
	}

	merged := a.Acc().Clone()
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Merge of two distinct accumulators panicked: %v", r)
			}
		}()
		merged.Merge(b.Acc())
	}()

	if merged.N != a.Acc().N+b.Acc().N {
		t.Fatalf("merged N = %d", merged.N)
	}
	// The merged value set is the union of the two sides' sets, each pair
	// counted once in Sum.
	union := map[uint64]struct{}{}
	for k := range a.Acc().Vals {
		union[k] = struct{}{}
	}
	for k := range b.Acc().Vals {
		union[k] = struct{}{}
	}
	if len(merged.Vals) != len(union) {
		t.Fatalf("merged value set has %d pairs, union has %d", len(merged.Vals), len(union))
	}
	for k, mv := range merged.Vals {
		av, aok := a.Acc().Vals[k]
		bv, bok := b.Acc().Vals[k]
		wantHits := av.Hits + bv.Hits
		if mv.Hits != wantHits {
			t.Fatalf("pair %d: merged hits %d, want %d", k, mv.Hits, wantHits)
		}
		switch {
		case aok && bok:
			// Reconciled contribution: hit-weighted mean of the two sides.
			want := (av.Contribution*float64(av.Hits) + bv.Contribution*float64(bv.Hits)) / float64(wantHits)
			if math.Abs(mv.Contribution-want) > 1e-9 {
				t.Fatalf("pair %d: contribution %v, want %v", k, mv.Contribution, want)
			}
		case aok:
			if mv.Contribution != av.Contribution {
				t.Fatalf("pair %d: contribution changed with no counterpart", k)
			}
		case bok:
			if mv.Contribution != bv.Contribution {
				t.Fatalf("pair %d: contribution changed with no counterpart", k)
			}
		}
	}
	// Sum must equal exactly one reconciled contribution per surviving pair.
	perGroup := map[rdf.ID]float64{}
	for k, v := range merged.Vals {
		perGroup[rdf.ID(k>>32)] += v.Contribution
	}
	for g, want := range perGroup {
		if math.Abs(merged.Sum[g]-want) > 1e-6 {
			t.Fatalf("group %d: merged Sum %v, want %v", g, merged.Sum[g], want)
		}
	}
	// Dedup accounting: every collapsed first sight became a duplicate.
	both := int64(0)
	for k := range a.Acc().Vals {
		if _, ok := b.Acc().Vals[k]; ok {
			both++
		}
	}
	if want := a.Acc().Dedup + b.Acc().Dedup + both; merged.Dedup != want {
		t.Fatalf("merged Dedup = %d, want %d", merged.Dedup, want)
	}
}

func TestMergeStillRefusesMixedModes(t *testing.T) {
	// Distinct and non-distinct accumulators estimate different quantities;
	// merging them silently would be a bug, so the mode-mismatch panic stays.
	pl, _, st := fig5(t, true)
	a := New(st, pl, 1)
	runN(a, 100)
	for _, pair := range [][2]*Acc{
		{NewAcc(), a.Acc()},         // distinct on the merged-in side
		{a.Acc().Clone(), NewAcc()}, // distinct on the receiving side
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Merge of mixed-mode accumulators did not panic")
				}
			}()
			pair[0].Merge(pair[1])
		}()
	}
}

func TestMergeStratifiedSumsStrata(t *testing.T) {
	// Two strata with known per-walk contributions: the merged estimate is
	// the sum of the stratum means and the CI combines variances in
	// quadrature.
	a := NewAcc()
	a.N = 4
	a.Add(1, 2)
	a.Add(1, 2)
	a.Add(1, 6)
	a.Add(1, 6) // mean 4, var 4, var of mean 1
	b := NewAcc()
	b.N = 2
	b.Add(1, 10)
	b.Add(1, 16) // mean 13, var 9, var of mean 4.5
	r := MergeStratified([]*Acc{a, b}, 2)
	if got := r.Estimates[1]; math.Abs(got-17) > 1e-9 {
		t.Fatalf("stratified estimate = %v, want 17", got)
	}
	if want := 2 * math.Sqrt(1+4.5); math.Abs(r.CI[1]-want) > 1e-9 {
		t.Fatalf("stratified CI = %v, want %v", r.CI[1], want)
	}
	if r.Walks != 6 {
		t.Fatalf("walks = %d", r.Walks)
	}
	// An empty stratum (no walks: its true total is zero) changes nothing.
	r2 := MergeStratified([]*Acc{a, b, NewAcc()}, 2)
	if r2.Estimates[1] != r.Estimates[1] || r2.CI[1] != r.CI[1] {
		t.Fatal("empty stratum altered the merged result")
	}
}

func TestCloneIsDeep(t *testing.T) {
	pl, _, st := fig5(t, false)
	r := New(st, pl, 4)
	runN(r, 5000)
	orig := r.Acc()
	c := orig.Clone()
	if c.N != orig.N || c.Rejected != orig.Rejected {
		t.Fatal("clone counters differ")
	}
	for g, v := range orig.Sum {
		if c.Sum[g] != v {
			t.Fatalf("clone Sum[%d] = %v, want %v", g, c.Sum[g], v)
		}
	}
	// Mutating the clone must not touch the original.
	for g := range c.Sum {
		c.Sum[g] += 1000
		if orig.Sum[g] == c.Sum[g] {
			t.Fatal("clone shares Sum map with original")
		}
		break
	}
}

func TestAvgModeThroughRunner(t *testing.T) {
	// A chain ending at numeric literals evaluated as AVG through WJ.
	g := testkit.RandomGraph(8, 8, 3, 5, 70)
	q := testkit.ChainQuery(g, []rdf.ID{8, 9}, true, false)
	q.Agg = query.AggAvg
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	exact := lftj.Evaluate(st, pl)
	if len(exact) == 0 {
		t.Skip("empty fixture")
	}
	r := New(st, pl, 3)
	runN(r, 300000)
	snap := r.Snapshot()
	for a, ex := range exact {
		rel := math.Abs(snap.Estimates[a]-ex) / math.Abs(ex)
		if rel > 0.2 {
			t.Errorf("group %d: AVG %.3f vs %.3f", a, snap.Estimates[a], ex)
		}
	}
}
