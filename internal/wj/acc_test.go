package wj

import (
	"math"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

func TestAddRatioAndRatioSnapshot(t *testing.T) {
	acc := NewAcc()
	acc.N = 4
	acc.AddRatio(1, 10, 2)
	acc.AddRatio(1, 20, 3)
	acc.AddRatio(2, 6, 0) // zero denominator: group omitted from estimates
	r := acc.Snapshot(1.96)
	if got := r.Estimates[1]; got != 6 { // (10+20)/(2+3)
		t.Errorf("ratio estimate = %v, want 6", got)
	}
	if _, ok := r.Estimates[2]; ok && r.Estimates[2] != 0 {
		t.Errorf("zero-denominator group produced estimate %v", r.Estimates[2])
	}
	if r.CI[1] != 0 {
		t.Errorf("ratio CI = %v, want 0 (documented limitation)", r.CI[1])
	}
}

func TestMergeMatchesCombinedRun(t *testing.T) {
	// Merging the accumulators of two runners equals one runner over the
	// concatenated walks, statistically: same N, same sums when the second
	// runner continues the first's RNG... instead verify algebra directly:
	// merged estimate = weighted combination.
	pl, _, st := fig5(t, false)
	a := New(st, pl, 1)
	b := New(st, pl, 2)
	runN(a, 20000)
	runN(b, 20000)
	merged := NewAcc()
	merged.Merge(a.Acc())
	merged.Merge(b.Acc())
	if merged.N != 40000 {
		t.Fatalf("merged N = %d", merged.N)
	}
	snap := merged.Snapshot(1.96)
	exact := lftj.GroupCount(st, pl)
	for g, ex := range exact {
		rel := math.Abs(snap.Estimates[g]-float64(ex)) / float64(ex)
		if rel > 0.1 {
			t.Errorf("merged estimate group %d: %.2f vs %d", g, snap.Estimates[g], ex)
		}
		// The merged estimate must equal the walk-count-weighted average of
		// the two runners' estimates.
		ea := a.Snapshot().Estimates[g]
		eb := b.Snapshot().Estimates[g]
		want := (ea*float64(a.Acc().N) + eb*float64(b.Acc().N)) / float64(merged.N)
		if math.Abs(snap.Estimates[g]-want) > 1e-9 {
			t.Errorf("group %d: merged %v != weighted %v", g, snap.Estimates[g], want)
		}
	}
}

func TestMergeRefusesDistinctAccumulators(t *testing.T) {
	// Distinct-mode WJ dedup sets are runner-local: merging two such
	// accumulators would double-count duplicates across runners, so Merge
	// must refuse loudly rather than return a silently wrong estimate.
	pl, _, st := fig5(t, true)
	a := New(st, pl, 1)
	b := New(st, pl, 2)
	runN(a, 100)
	runN(b, 100)
	if !a.Acc().Distinct || !b.Acc().Distinct {
		t.Fatal("distinct-mode runners should mark their accumulators")
	}
	for _, pair := range [][2]*Acc{
		{NewAcc(), a.Acc()}, // distinct on the merged-in side
		{a.Acc().Clone(), NewAcc()}, // distinct on the receiving side
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Merge on a distinct-mode accumulator did not panic")
				}
			}()
			pair[0].Merge(pair[1])
		}()
	}
}

func TestCloneIsDeep(t *testing.T) {
	pl, _, st := fig5(t, false)
	r := New(st, pl, 4)
	runN(r, 5000)
	orig := r.Acc()
	c := orig.Clone()
	if c.N != orig.N || c.Rejected != orig.Rejected {
		t.Fatal("clone counters differ")
	}
	for g, v := range orig.Sum {
		if c.Sum[g] != v {
			t.Fatalf("clone Sum[%d] = %v, want %v", g, c.Sum[g], v)
		}
	}
	// Mutating the clone must not touch the original.
	for g := range c.Sum {
		c.Sum[g] += 1000
		if orig.Sum[g] == c.Sum[g] {
			t.Fatal("clone shares Sum map with original")
		}
		break
	}
}

func TestAvgModeThroughRunner(t *testing.T) {
	// A chain ending at numeric literals evaluated as AVG through WJ.
	g := testkit.RandomGraph(8, 8, 3, 5, 70)
	q := testkit.ChainQuery(g, []rdf.ID{8, 9}, true, false)
	q.Agg = query.AggAvg
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	exact := lftj.Evaluate(st, pl)
	if len(exact) == 0 {
		t.Skip("empty fixture")
	}
	r := New(st, pl, 3)
	runN(r, 300000)
	snap := r.Snapshot()
	for a, ex := range exact {
		rel := math.Abs(snap.Estimates[a]-ex) / math.Abs(ex)
		if rel > 0.2 {
			t.Errorf("group %d: AVG %.3f vs %.3f", a, snap.Estimates[a], ex)
		}
	}
}
