// Package exec is the unified streaming execution layer for the online
// estimators: one driving loop, Drive, shared by every consumer — the
// experiment harness, the HTTP tier, the CLI and parallel estimation —
// instead of per-engine Run/RunFor loops.
//
// Drive honors context cancellation between walk batches, measures budgets
// and snapshot pacing on the monotonic wall clock, and streams a progressive
// snapshot to an OnSnapshot callback at each interval. This is the paper's
// online-aggregation protocol (a 9s budget reported every 1s, §V-B) turned
// into a reusable primitive: a chart request that a user abandons is
// cancelled through its context and stops burning cores.
package exec

import (
	"context"
	"time"

	"kgexplore/internal/wj"
)

// Stepper is the unit of online estimation: one random walk per Step. Both
// wj.Runner (Wander Join) and core.Runner (Audit Join) implement it.
// Steppers are not safe for concurrent use; Drive runs one stepper on the
// calling goroutine.
type Stepper interface {
	// Step performs one walk, updating the estimator state.
	Step()
	// Walks returns the total number of walks performed so far.
	Walks() int64
	// Snapshot returns the current estimates with confidence intervals.
	Snapshot() wj.Result
}

// DefaultBatch is the number of walks performed between clock and context
// checks when Options.Batch is zero.
const DefaultBatch = 256

// Options configures one Drive call.
type Options struct {
	// Budget is the wall-clock time to run for. Zero means no time limit:
	// Drive then runs until MaxWalks is reached or ctx is done (callers that
	// pass neither get an endless run — only do that with a cancellable
	// context).
	Budget time.Duration
	// Interval is the snapshot cadence for OnSnapshot. Zero disables
	// intermediate snapshots (OnSnapshot then only sees the final one).
	Interval time.Duration
	// MaxWalks caps the number of walks performed by this call. Zero means
	// unlimited. Drive never overshoots the cap: the last batch is clipped.
	MaxWalks int64
	// Batch is the number of walks between clock/context checks; it bounds
	// cancellation latency to one batch of walks. Zero means DefaultBatch.
	Batch int
	// OnSnapshot, when non-nil, receives a progressive snapshot at each
	// interval and one final snapshot (Final=true) on normal completion.
	// Returning false stops the drive early (with a nil error). The callback
	// runs on the driving goroutine.
	OnSnapshot func(Progress) bool
}

// Progress is one streamed snapshot of a running drive.
type Progress struct {
	// Seq numbers the snapshots of one Drive call from 1.
	Seq int
	// Elapsed is the monotonic wall-clock time since Drive started.
	Elapsed time.Duration
	// Walks is the number of walks performed by this Drive call so far.
	Walks int64
	// Snapshot is the estimator state (its Walks field counts the stepper's
	// lifetime walks, which exceed Progress.Walks on reused runners).
	Snapshot wj.Result
	// Final marks the completion snapshot.
	Final bool
}

// Report summarizes a completed (or cancelled) Drive call.
type Report struct {
	// Walks is the number of walks performed by this call.
	Walks int64
	// Elapsed is the monotonic wall-clock duration of the call.
	Elapsed time.Duration
	// Snapshots is the number of OnSnapshot deliveries.
	Snapshots int
	// Final is the estimator snapshot at return time. It is consistent even
	// when the drive was cancelled: steps are never interrupted mid-walk.
	Final wj.Result
}

// Drive runs the stepper until the budget elapses, MaxWalks is reached, the
// context is done, or OnSnapshot asks to stop. It returns ctx.Err() when the
// context ended the run and nil otherwise; in both cases the Report carries a
// consistent final snapshot.
func Drive(ctx context.Context, s Stepper, opts Options) (Report, error) {
	batch := opts.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	start := time.Now()
	startWalks := s.Walks()
	var rep Report
	finish := func(err error) (Report, error) {
		rep.Elapsed = time.Since(start)
		rep.Walks = s.Walks() - startWalks
		rep.Final = s.Snapshot()
		return rep, err
	}

	var deadline time.Time
	if opts.Budget > 0 {
		deadline = start.Add(opts.Budget)
	}
	var nextEmit time.Time
	if opts.Interval > 0 && opts.OnSnapshot != nil {
		nextEmit = start.Add(opts.Interval)
	}
	var lastEmitWalks int64 = -1
	emit := func(final bool) bool {
		if opts.OnSnapshot == nil {
			return true
		}
		walks := s.Walks() - startWalks
		if final && walks == lastEmitWalks {
			return true // nothing new since the last interval snapshot
		}
		lastEmitWalks = walks
		rep.Snapshots++
		return opts.OnSnapshot(Progress{
			Seq:      rep.Snapshots,
			Elapsed:  time.Since(start),
			Walks:    walks,
			Snapshot: s.Snapshot(),
			Final:    final,
		})
	}

	for {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		now := time.Now()
		if !deadline.IsZero() && !now.Before(deadline) {
			break
		}
		done := s.Walks() - startWalks
		if opts.MaxWalks > 0 && done >= opts.MaxWalks {
			break
		}
		n := batch
		if opts.MaxWalks > 0 {
			if rem := opts.MaxWalks - done; rem < int64(n) {
				n = int(rem)
			}
		}
		for i := 0; i < n; i++ {
			s.Step()
		}
		if !nextEmit.IsZero() {
			if now = time.Now(); !now.Before(nextEmit) {
				if !emit(false) {
					return finish(nil)
				}
				nextEmit = now.Add(opts.Interval)
			}
		}
	}
	emit(true)
	return finish(nil)
}

// RunN performs exactly n steps. It is the bounded-count companion of Drive
// for warmup, trial runs and tests: no clock, context or snapshots.
func RunN(s interface{ Step() }, n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}
