package exec

import (
	"context"
	"testing"
	"time"

	"kgexplore/internal/rdf"
	"kgexplore/internal/wj"
)

// fakeStepper counts steps; each Step can optionally sleep to simulate work.
type fakeStepper struct {
	n     int64
	delay time.Duration
}

func (f *fakeStepper) Step() {
	f.n++
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
}
func (f *fakeStepper) Walks() int64 { return f.n }
func (f *fakeStepper) Snapshot() wj.Result {
	return wj.Result{Walks: f.n, Estimates: map[rdf.ID]float64{wj.GlobalGroup: float64(f.n)}}
}

func TestDriveMaxWalksExact(t *testing.T) {
	f := &fakeStepper{}
	rep, err := Drive(context.Background(), f, Options{MaxWalks: 1000, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Walks != 1000 || f.n != 1000 {
		t.Errorf("walks = %d (stepper %d), want exactly 1000", rep.Walks, f.n)
	}
	if rep.Final.Walks != 1000 {
		t.Errorf("final snapshot walks = %d", rep.Final.Walks)
	}
}

func TestDriveMaxWalksNotMultipleOfBatch(t *testing.T) {
	f := &fakeStepper{}
	rep, err := Drive(context.Background(), f, Options{MaxWalks: 777, Batch: 256})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Walks != 777 {
		t.Errorf("walks = %d, want 777 (last batch must be clipped)", rep.Walks)
	}
}

func TestDriveCountsOnlyOwnWalks(t *testing.T) {
	// A reused stepper: the report counts this call's walks, not lifetime.
	f := &fakeStepper{}
	RunN(f, 500)
	rep, err := Drive(context.Background(), f, Options{MaxWalks: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Walks != 100 {
		t.Errorf("walks = %d, want 100 on a reused stepper", rep.Walks)
	}
	if f.n != 600 {
		t.Errorf("stepper lifetime walks = %d, want 600", f.n)
	}
}

func TestDriveBudgetStops(t *testing.T) {
	f := &fakeStepper{delay: 100 * time.Microsecond}
	start := time.Now()
	rep, err := Drive(context.Background(), f, Options{Budget: 30 * time.Millisecond, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Walks == 0 {
		t.Error("budgeted drive performed no walks")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("30ms budget ran for %v", elapsed)
	}
}

func TestDriveProgressiveSnapshots(t *testing.T) {
	f := &fakeStepper{delay: 50 * time.Microsecond}
	var seqs []int
	var walks []int64
	rep, err := Drive(context.Background(), f, Options{
		Budget:   120 * time.Millisecond,
		Interval: 10 * time.Millisecond,
		Batch:    16,
		OnSnapshot: func(p Progress) bool {
			seqs = append(seqs, p.Seq)
			walks = append(walks, p.Walks)
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(walks) < 2 {
		t.Fatalf("got %d snapshots, want >= 2", len(walks))
	}
	for i := range seqs {
		if seqs[i] != i+1 {
			t.Errorf("seq[%d] = %d", i, seqs[i])
		}
	}
	for i := 1; i < len(walks); i++ {
		if walks[i] <= walks[i-1] {
			t.Errorf("snapshot walks not strictly increasing: %v", walks)
			break
		}
	}
	if rep.Snapshots != len(walks) {
		t.Errorf("Report.Snapshots = %d, callback saw %d", rep.Snapshots, len(walks))
	}
}

func TestDriveFinalSnapshotWithoutInterval(t *testing.T) {
	// With no interval, OnSnapshot sees exactly one snapshot: the final one.
	f := &fakeStepper{}
	var got []Progress
	_, err := Drive(context.Background(), f, Options{
		MaxWalks:   100,
		OnSnapshot: func(p Progress) bool { got = append(got, p); return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Final || got[0].Walks != 100 {
		t.Fatalf("final-only snapshots = %+v", got)
	}
}

func TestDriveFinalSnapshotNotDuplicated(t *testing.T) {
	// When the last interval snapshot already covered every walk, the final
	// emit is suppressed so streamed walk counts stay strictly increasing.
	f := &fakeStepper{}
	var walks []int64
	_, err := Drive(context.Background(), f, Options{
		MaxWalks: 100,
		Interval: time.Nanosecond, // emit after every batch
		Batch:    50,
		OnSnapshot: func(p Progress) bool {
			walks = append(walks, p.Walks)
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(walks); i++ {
		if walks[i] <= walks[i-1] {
			t.Errorf("duplicate or regressing snapshot walks: %v", walks)
		}
	}
}

func TestDrivePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &fakeStepper{}
	rep, err := Drive(ctx, f, Options{Budget: time.Second})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if rep.Walks != 0 || f.n != 0 {
		t.Errorf("pre-cancelled drive performed %d walks", f.n)
	}
}

func TestDriveCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	f := &fakeStepper{delay: 20 * time.Microsecond}
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rep, err := Drive(ctx, f, Options{Budget: 30 * time.Second, Batch: 16})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancel took %v", elapsed)
	}
	if rep.Walks == 0 {
		t.Error("cancelled drive reported no walks")
	}
	// The report is consistent: no step was interrupted mid-walk.
	if rep.Final.Walks != f.n || rep.Walks != f.n {
		t.Errorf("report walks %d / final %d vs stepper %d", rep.Walks, rep.Final.Walks, f.n)
	}
}

func TestDriveOnSnapshotStop(t *testing.T) {
	f := &fakeStepper{delay: 20 * time.Microsecond}
	calls := 0
	rep, err := Drive(context.Background(), f, Options{
		Budget:   30 * time.Second,
		Interval: time.Millisecond,
		Batch:    16,
		OnSnapshot: func(Progress) bool {
			calls++
			return calls < 3
		},
	})
	if err != nil {
		t.Errorf("stop via callback returned error %v", err)
	}
	if calls != 3 {
		t.Errorf("callback ran %d times, want 3", calls)
	}
	if rep.Walks == 0 {
		t.Error("stopped drive reported no walks")
	}
}

func TestRunN(t *testing.T) {
	f := &fakeStepper{}
	RunN(f, 123)
	if f.n != 123 {
		t.Errorf("RunN performed %d steps", f.n)
	}
}
