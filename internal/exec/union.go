package exec

import (
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// AccStepper is a Stepper that exposes its walk accumulator. All the walk
// runners (wj.Runner, core.Runner, the shard and live walkers) satisfy it;
// the accumulator access is what lets Union merge branches as strata.
type AccStepper interface {
	Stepper
	Acc() *wj.Acc
}

// Union estimates a UNION query by stratified sampling: each branch is one
// stratum sampled by its own runner, the union estimate is the sum of the
// per-branch estimates, and the confidence intervals merge in quadrature
// (wj.MergeStratified) — branches are independent sub-populations exactly
// like the shards of a partitioned store.
//
// Step interleaves the branches deterministically in proportion to their
// weights (pass the branches' estimated root cardinalities, or nil for equal
// shares): each call steps the branch with the largest walk deficit relative
// to its weight. Proportional allocation spends walks where the population
// is large, which for near-uniform per-walk variance is close to the Neyman
// optimum, and determinism keeps runs reproducible under a fixed seed.
//
// Union is an AccStepper-free Stepper: its per-branch accumulators belong to
// the branch runners. It is not safe for concurrent use.
type Union struct {
	branches []AccStepper
	weights  []float64
	wsum     float64
}

// NewUnion builds the union stepper. weights must be nil (equal shares) or
// len(branches) long; non-positive weights are lifted to the smallest
// positive one so every branch keeps getting sampled (a stratum starved of
// walks would silently contribute a zero estimate).
func NewUnion(branches []AccStepper, weights []float64) *Union {
	w := make([]float64, len(branches))
	minPos := 0.0
	for i := range w {
		if weights != nil {
			w[i] = weights[i]
		}
		if w[i] > 0 && (minPos == 0 || w[i] < minPos) {
			minPos = w[i]
		}
	}
	if minPos == 0 {
		minPos = 1
	}
	wsum := 0.0
	for i := range w {
		if w[i] <= 0 {
			w[i] = minPos
		}
		wsum += w[i]
	}
	return &Union{branches: branches, weights: w, wsum: wsum}
}

// Step performs one walk on the branch with the largest weighted deficit:
// after T total walks, branch i's proportional share is (T+1)·w_i/Σw, and
// the branch lagging it the most goes next. Ties break on the lower index,
// keeping the interleave fully deterministic.
func (u *Union) Step() {
	share := float64(u.Walks()) + 1
	best, bestDeficit := 0, 0.0
	for i, br := range u.branches {
		d := share*u.weights[i]/u.wsum - float64(br.Walks())
		if i == 0 || d > bestDeficit {
			best, bestDeficit = i, d
		}
	}
	u.branches[best].Step()
}

// Walks returns the total walks across all branches.
func (u *Union) Walks() int64 {
	var n int64
	for _, br := range u.branches {
		n += br.Walks()
	}
	return n
}

// Snapshot merges the branch accumulators as strata.
func (u *Union) Snapshot() wj.Result {
	accs := make([]*wj.Acc, len(u.branches))
	for i, br := range u.branches {
		accs[i] = br.Acc()
	}
	return wj.MergeStratified(accs, stats.Z95)
}
