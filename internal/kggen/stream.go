package kggen

import (
	"fmt"
	"math/rand"

	"kgexplore/internal/explore"
	"kgexplore/internal/rdf"
)

// Stream generates the same dataset as Generate without materializing the
// graph: triples flow through emit one at a time and only the dictionary
// (vocabulary-sized, not edge-sized) stays resident. The subclass closure
// is computed inline from the class tree's parent chains instead of by
// explore.MaterializeClosure's whole-graph pass.
//
// Determinism contract, pinned by TestStreamMatchesGenerate: Stream interns
// vocabulary in Generate's order (identical IDs) and performs the RNG draws
// in Generate's order (identical triples), so after sorting and
// deduplication the two paths yield byte-identical stores. The raw emit
// order differs from Generate's append order only within the closure
// triples, which both paths canonicalize away.
//
// Stream's resident set is O(classes + props + entities + values) dictionary
// entries plus the per-class ancestor chains — independent of NumEdges,
// which is what lets multi-million-triple fixtures build under a bounded
// heap when paired with index.BuildExternal.
func Stream(cfg Config, emit func(rdf.Triple) error) (*rdf.Dict, explore.Schema, error) {
	if cfg.NumClasses < 1 || cfg.NumProps < 1 || cfg.NumEntities < 1 {
		return nil, explore.Schema{}, fmt.Errorf("kggen: config %q needs at least one class, property and entity", cfg.Name)
	}
	if cfg.Branching < 2 {
		cfg.Branching = 2
	}
	if cfg.ValuePool <= 0 {
		cfg.ValuePool = cfg.NumEntities/10 + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := rdf.NewDict()

	// Vocabulary interning replicates Generate exactly so IDs match.
	classes := make([]rdf.ID, cfg.NumClasses)
	for i := range classes {
		classes[i] = d.InternIRI(fmt.Sprintf("c:%s:%d", cfg.Name, i))
	}
	props := make([]rdf.ID, cfg.NumProps)
	for i := range props {
		props[i] = d.InternIRI(fmt.Sprintf("p:%s:%d", cfg.Name, i))
	}
	entities := make([]rdf.ID, cfg.NumEntities)
	for i := range entities {
		entities[i] = d.InternIRI(fmt.Sprintf("e:%s:%d", cfg.Name, i))
	}
	values := make([]rdf.ID, cfg.ValuePool)
	for i := range values {
		values[i] = d.Intern(rdf.NewTypedLiteral(fmt.Sprintf("%d", i+1), rdf.XSDInteger))
	}
	root := d.InternIRI(rdf.OWLThing)
	typeID := d.InternIRI(rdf.RDFType)
	subID := d.InternIRI(rdf.RDFSSubClass)
	closureID := d.InternIRI(explore.TypeClosureIRI)

	// Class tree, with each class's ancestor chain (self ... root) kept for
	// the inline closure. Chains are short — O(tree depth).
	topLevel := cfg.TopLevel
	if topLevel < 1 {
		topLevel = 1
	}
	if topLevel > cfg.NumClasses {
		topLevel = cfg.NumClasses
	}
	parentIdx := make([]int, cfg.NumClasses) // -1 = root
	for i, c := range classes {
		parent := root
		parentIdx[i] = -1
		if i >= topLevel {
			pi := (i - topLevel) / cfg.Branching
			parent = classes[pi]
			parentIdx[i] = pi
		}
		if err := emit(rdf.Triple{S: c, P: subID, O: parent}); err != nil {
			return nil, explore.Schema{}, err
		}
	}
	anc := make([][]rdf.ID, cfg.NumClasses)
	for i := range anc {
		chain := []rdf.ID{classes[i]}
		for p := parentIdx[i]; p >= 0; p = parentIdx[p] {
			chain = append(chain, classes[p])
		}
		anc[i] = append(chain, root)
	}

	// Types with the closure inline: Generate's RNG draw order, plus
	// (entity, typeClosure, ancestor) per drawn class — the same triple set
	// MaterializeClosure appends, duplicates and all (Dedup canonicalizes
	// both paths).
	classZipf := rand.NewZipf(rng, cfg.ClassZipfS, 1, uint64(cfg.NumClasses-1))
	maxTypes := cfg.TypesPerEntityMax
	if maxTypes < 1 {
		maxTypes = 1
	}
	for _, e := range entities {
		n := 1 + rng.Intn(maxTypes)
		for k := 0; k < n; k++ {
			ci := int(classZipf.Uint64())
			if err := emit(rdf.Triple{S: e, P: typeID, O: classes[ci]}); err != nil {
				return nil, explore.Schema{}, err
			}
			for _, a := range anc[ci] {
				if err := emit(rdf.Triple{S: e, P: closureID, O: a}); err != nil {
					return nil, explore.Schema{}, err
				}
			}
		}
	}

	// Property edges: Generate's draw order, verbatim.
	predZipf := rand.NewZipf(rng, cfg.PredZipfS, 1, uint64(cfg.NumProps-1))
	objZipf := rand.NewZipf(rng, cfg.ObjZipfS, 1, uint64(cfg.NumEntities-1))
	valZipf := rand.NewZipf(rng, cfg.ObjZipfS, 1, uint64(cfg.ValuePool-1))
	var subjZipf *rand.Zipf
	if cfg.SubjZipfS > 1 {
		subjZipf = rand.NewZipf(rng, cfg.SubjZipfS, 1, uint64(cfg.NumEntities-1))
	}
	for i := 0; i < cfg.NumEdges; i++ {
		var s rdf.ID
		if subjZipf != nil {
			s = entities[subjZipf.Uint64()]
		} else {
			s = entities[rng.Intn(cfg.NumEntities)]
		}
		p := props[predZipf.Uint64()]
		var o rdf.ID
		if rng.Float64() < cfg.EntityObjFrac {
			o = entities[objZipf.Uint64()]
		} else {
			o = values[valZipf.Uint64()]
		}
		if err := emit(rdf.Triple{S: s, P: p, O: o}); err != nil {
			return nil, explore.Schema{}, err
		}
	}

	schema, err := explore.SchemaOf(d, rdf.OWLThing)
	if err != nil {
		return nil, explore.Schema{}, fmt.Errorf("kggen: %w", err)
	}
	return d, schema, nil
}
