package kggen

import (
	"reflect"
	"testing"

	"kgexplore/internal/rdf"
)

// TestStreamMatchesGenerate is the determinism property: same seed + scale
// must yield a byte-identical triple stream across the in-memory and
// streaming paths, once both are canonicalized by sort+dedup (Generate's
// own final state). Dictionaries must assign identical IDs too, or the
// encoded triples would diverge even with equal structure.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, cfg := range []Config{DBpediaSim(0.01), LGDSim(0.005)} {
		want, _, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := rdf.NewGraph()
		d, _, err := Stream(cfg, func(tr rdf.Triple) error {
			g.AddEncoded(tr)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Dedup()

		if got, exp := d.Len(), want.Dict.Len(); got != exp {
			t.Fatalf("%s: stream dict has %d terms, generate %d", cfg.Name, got, exp)
		}
		for id := 0; id < d.Len(); id++ {
			if got, exp := d.Term(rdf.ID(id)), want.Dict.Term(rdf.ID(id)); got != exp {
				t.Fatalf("%s: ID %d is %v in stream, %v in generate", cfg.Name, id, got, exp)
			}
		}
		if len(g.Triples) != len(want.Triples) {
			t.Fatalf("%s: stream has %d deduped triples, generate %d", cfg.Name, len(g.Triples), len(want.Triples))
		}
		if !reflect.DeepEqual(g.Triples, want.Triples) {
			for i := range g.Triples {
				if g.Triples[i] != want.Triples[i] {
					t.Fatalf("%s: triple %d differs: stream %v, generate %v", cfg.Name, i, g.Triples[i], want.Triples[i])
				}
			}
		}
	}
}

// TestStreamReproducible: two Stream passes over the same config emit the
// exact same sequence (the external build path reads the stream twice).
func TestStreamReproducible(t *testing.T) {
	cfg := DBpediaSim(0.01)
	var a, b []rdf.Triple
	if _, _, err := Stream(cfg, func(tr rdf.Triple) error { a = append(a, tr); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Stream(cfg, func(tr rdf.Triple) error { b = append(b, tr); return nil }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two streams over one config diverged")
	}
}
