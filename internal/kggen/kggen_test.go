package kggen

import (
	"testing"

	"kgexplore/internal/explore"
	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DBpediaSim(0.01)
	g1, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Len() != g2.Len() {
		t.Fatalf("non-deterministic sizes: %d vs %d", g1.Len(), g2.Len())
	}
	for i := range g1.Triples {
		if g1.Triples[i] != g2.Triples[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, cfg := range []Config{DBpediaSim(0.01), LGDSim(0.01)} {
		g, schema, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		info := DatasetInfo(cfg.Name, g)
		if info.Triples == 0 || info.Classes < cfg.NumClasses || info.Props <= 2 {
			t.Errorf("%s: implausible info %+v", cfg.Name, info)
		}
		// Closure must make every typed entity an instance of the root.
		st := index.Build(g)
		closureSpan := st.SpanL2(index.POS, schema.TypeClosure, schema.Root)
		typedEntities := st.CountDistinct(index.PSO, st.SpanL1(index.PSO, schema.Type), 1)
		// Root instances include the typed entities (classes typed? no) —
		// every typed entity has the root in its closure.
		if closureSpan.Len() < typedEntities {
			t.Errorf("%s: root closure %d < typed entities %d",
				cfg.Name, closureSpan.Len(), typedEntities)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// The most popular predicate must dominate: top-1 predicate should have
	// at least 10x the triples of the median predicate.
	g, _, err := Generate(DBpediaSim(0.02))
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	typeID, _ := g.Dict.LookupIRI(rdf.RDFType)
	subID, _ := g.Dict.LookupIRI(rdf.RDFSSubClass)
	closureID, _ := g.Dict.LookupIRI(explore.TypeClosureIRI)
	var counts []int
	it := st.Level(index.PSO, st.FullSpan(index.PSO), 0)
	for it.Next() {
		if k := it.Key(); k == typeID || k == subID || k == closureID {
			continue
		}
		counts = append(counts, it.SubSpan().Len())
	}
	if len(counts) < 10 {
		t.Fatalf("only %d predicates", len(counts))
	}
	max, sum := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		sum += c
	}
	mean := sum / len(counts)
	if max < 5*mean {
		t.Errorf("predicate skew too flat: max %d vs mean %d", max, mean)
	}
}

func TestGeneratedGraphSupportsExploration(t *testing.T) {
	g, schema, err := Generate(DBpediaSim(0.01))
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	s := explore.Root(schema)
	q, err := s.Query(explore.OpSubclass)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	res := lftj.Evaluate(st, pl)
	if len(res) == 0 {
		t.Fatal("root subclass chart empty")
	}
	// Out-property chart of the root must include the generated predicates.
	q, err = s.Query(explore.OpOutProp)
	if err != nil {
		t.Fatal(err)
	}
	pl, err = query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	res = lftj.Evaluate(st, pl)
	if len(res) < 10 {
		t.Errorf("root out-prop chart has only %d bars", len(res))
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := Config{Name: "bad"}
	if _, _, err := Generate(bad); err == nil {
		t.Error("empty config accepted")
	}
}

func TestDatasetInfoIgnoresClosure(t *testing.T) {
	g, _, err := Generate(DBpediaSim(0.005))
	if err != nil {
		t.Fatal(err)
	}
	info := DatasetInfo("x", g)
	closureID, _ := g.Dict.LookupIRI(explore.TypeClosureIRI)
	for p := range map[rdf.ID]bool{closureID: true} {
		_ = p
	}
	// Triples counts everything (the materialized graph), but Props must
	// not include the derived closure predicate.
	st := index.Build(g)
	nPreds := st.CountDistinct(index.PSO, st.FullSpan(index.PSO), 0)
	if info.Props != nPreds-1 {
		t.Errorf("Props = %d, want %d (all preds minus closure)", info.Props, nPreds-1)
	}
}
