// Package kggen generates deterministic synthetic knowledge graphs that
// stand in for the paper's evaluation datasets (DBpedia 3.6 and
// LinkedGeoData 2015-11), which are far beyond this environment's memory.
//
// The generators preserve the structural properties that drive the paper's
// results rather than the absolute scale (see DESIGN.md §3):
//
//   - a rooted class hierarchy — deep and wide for DBpedia-sim, shallow with
//     few classes for LGD-sim;
//   - Zipfian predicate popularity (a few dense properties, a long tail),
//     which yields the many-group property charts of Fig. 8a/8d;
//   - Zipfian object popularity (hub entities), which creates the skewed
//     fan-outs that make Wander Join walks die on selective suffixes;
//   - entities carrying one or a few explicit types, with class membership
//     expanded by the subclass closure at load time.
package kggen

import (
	"fmt"
	"math/rand"

	"kgexplore/internal/explore"
	"kgexplore/internal/rdf"
)

// Config parameterizes a synthetic knowledge graph.
type Config struct {
	Name string
	Seed int64

	NumClasses  int // classes in the hierarchy (excluding the root)
	TopLevel    int // classes attached directly to the root
	Branching   int // children per class in the tree layout
	NumProps    int // non-type predicates
	NumEntities int // entity URIs
	NumEdges    int // non-type property triples

	TypesPerEntityMax int     // each entity gets 1..max explicit types
	PredZipfS         float64 // Zipf skew of predicate popularity (>1)
	SubjZipfS         float64 // Zipf skew of subject popularity (>1; 0 = uniform)
	ObjZipfS          float64 // Zipf skew of object popularity (>1)
	ClassZipfS        float64 // Zipf skew of class popularity (>1)
	EntityObjFrac     float64 // fraction of edges whose object is an entity (vs. a literal-like value node)
	ValuePool         int     // number of distinct value nodes (0: NumEntities/10)
}

// DBpediaSim configures a multi-domain graph in the spirit of DBpedia:
// a deep, wide class tree, tens of properties per entity drawn from a large
// Zipfian vocabulary, and heavy object hubs. scale multiplies the entity and
// edge counts (scale 1 is roughly 1.2M triples after closure).
func DBpediaSim(scale float64) Config {
	return Config{
		Name:              "dbpedia-sim",
		Seed:              20220501,
		NumClasses:        scaleInt(2000, scale, 200),
		TopLevel:          30,
		Branching:         4,
		NumProps:          scaleInt(1200, scale, 60),
		NumEntities:       scaleInt(120_000, scale, 500),
		NumEdges:          scaleInt(600_000, scale, 2000),
		TypesPerEntityMax: 3,
		PredZipfS:         1.3,
		SubjZipfS:         1.05,
		ObjZipfS:          1.2,
		ClassZipfS:        1.4,
		EntityObjFrac:     0.55,
	}
}

// LGDSim configures a spatially flavored graph in the spirit of
// LinkedGeoData: very few classes in a shallow hierarchy, a handful of
// extremely dense properties, and notably more triples than DBpediaSim at
// the same scale (the paper's LGD has ~3x DBpedia's edges).
func LGDSim(scale float64) Config {
	return Config{
		Name:              "lgd-sim",
		Seed:              20151101,
		NumClasses:        scaleInt(1147, scale, 80),
		TopLevel:          100,
		Branching:         40,
		NumProps:          scaleInt(700, scale, 40),
		NumEntities:       scaleInt(250_000, scale, 900),
		NumEdges:          scaleInt(1_500_000, scale, 5000),
		TypesPerEntityMax: 1,
		PredZipfS:         1.6,
		SubjZipfS:         1.03,
		ObjZipfS:          1.1,
		ClassZipfS:        1.2,
		EntityObjFrac:     0.45,
	}
}

func scaleInt(base int, scale float64, min int) int {
	n := int(float64(base) * scale)
	if n < min {
		return min
	}
	return n
}

// Generate builds the graph: the class hierarchy, the typed entities, and
// the Zipf-distributed property edges. The subclass closure is then
// materialized (explore.MaterializeClosure), matching the paper's offline
// preprocessing, and the graph is deduplicated.
func Generate(cfg Config) (*rdf.Graph, explore.Schema, error) {
	if cfg.NumClasses < 1 || cfg.NumProps < 1 || cfg.NumEntities < 1 {
		return nil, explore.Schema{}, fmt.Errorf("kggen: config %q needs at least one class, property and entity", cfg.Name)
	}
	if cfg.Branching < 2 {
		cfg.Branching = 2
	}
	if cfg.ValuePool <= 0 {
		cfg.ValuePool = cfg.NumEntities/10 + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := rdf.NewGraph()

	// Reserve capacity for everything Generate appends (classes, up to
	// maxTypes type triples per entity, and the property edges) so ingest
	// never regrows the triple slice. MaterializeClosure appends more, but
	// from a slice already sized in the right ballpark.
	reserveMax := cfg.TypesPerEntityMax
	if reserveMax < 1 {
		reserveMax = 1
	}
	g.Triples = make([]rdf.Triple, 0, cfg.NumClasses+cfg.NumEntities*reserveMax+cfg.NumEdges)

	// Intern vocabulary up front so IDs are stable and compact.
	classes := make([]rdf.ID, cfg.NumClasses)
	for i := range classes {
		classes[i] = g.Dict.InternIRI(fmt.Sprintf("c:%s:%d", cfg.Name, i))
	}
	props := make([]rdf.ID, cfg.NumProps)
	for i := range props {
		props[i] = g.Dict.InternIRI(fmt.Sprintf("p:%s:%d", cfg.Name, i))
	}
	entities := make([]rdf.ID, cfg.NumEntities)
	for i := range entities {
		entities[i] = g.Dict.InternIRI(fmt.Sprintf("e:%s:%d", cfg.Name, i))
	}
	// Value nodes are integer literals so that SUM/AVG aggregation over
	// them is meaningful.
	values := make([]rdf.ID, cfg.ValuePool)
	for i := range values {
		values[i] = g.Dict.Intern(rdf.NewTypedLiteral(fmt.Sprintf("%d", i+1), rdf.XSDInteger))
	}
	root := g.Dict.InternIRI(rdf.OWLThing)
	typeID := g.Dict.InternIRI(rdf.RDFType)
	subID := g.Dict.InternIRI(rdf.RDFSSubClass)

	// Class tree in array layout: the first TopLevel classes hang directly
	// off the root; class i >= TopLevel has parent (i-TopLevel)/Branching.
	topLevel := cfg.TopLevel
	if topLevel < 1 {
		topLevel = 1
	}
	if topLevel > cfg.NumClasses {
		topLevel = cfg.NumClasses
	}
	for i, c := range classes {
		parent := root
		if i >= topLevel {
			parent = classes[(i-topLevel)/cfg.Branching]
		}
		g.AddEncoded(rdf.Triple{S: c, P: subID, O: parent})
	}

	// Types: Zipf over classes.
	classZipf := rand.NewZipf(rng, cfg.ClassZipfS, 1, uint64(cfg.NumClasses-1))
	maxTypes := cfg.TypesPerEntityMax
	if maxTypes < 1 {
		maxTypes = 1
	}
	for _, e := range entities {
		n := 1 + rng.Intn(maxTypes)
		for k := 0; k < n; k++ {
			g.AddEncoded(rdf.Triple{S: e, P: typeID, O: classes[classZipf.Uint64()]})
		}
	}

	// Edges: Zipf predicates and objects; subjects are mildly Zipf too, so
	// that hub entities are both popular objects and prolific subjects —
	// the reconvergent structure (many paths through one node, which then
	// fans out again) behind Example IV.1 and the walk rejections of §V.
	predZipf := rand.NewZipf(rng, cfg.PredZipfS, 1, uint64(cfg.NumProps-1))
	objZipf := rand.NewZipf(rng, cfg.ObjZipfS, 1, uint64(cfg.NumEntities-1))
	valZipf := rand.NewZipf(rng, cfg.ObjZipfS, 1, uint64(cfg.ValuePool-1))
	var subjZipf *rand.Zipf
	if cfg.SubjZipfS > 1 {
		subjZipf = rand.NewZipf(rng, cfg.SubjZipfS, 1, uint64(cfg.NumEntities-1))
	}
	for i := 0; i < cfg.NumEdges; i++ {
		var s rdf.ID
		if subjZipf != nil {
			s = entities[subjZipf.Uint64()]
		} else {
			s = entities[rng.Intn(cfg.NumEntities)]
		}
		p := props[predZipf.Uint64()]
		var o rdf.ID
		if rng.Float64() < cfg.EntityObjFrac {
			o = entities[objZipf.Uint64()]
		} else {
			o = values[valZipf.Uint64()]
		}
		g.AddEncoded(rdf.Triple{S: s, P: p, O: o})
	}

	explore.MaterializeClosure(g, rdf.OWLThing)
	schema, err := explore.SchemaOf(g.Dict, rdf.OWLThing)
	if err != nil {
		return nil, explore.Schema{}, fmt.Errorf("kggen: %w", err)
	}
	return g, schema, nil
}

// Info summarizes a generated dataset for Table I.
type Info struct {
	Name    string
	Triples int
	Classes int
	Props   int
}

// DatasetInfo computes the Table I row for a graph: total triples, distinct
// classes (objects of rdf:type plus both sides of rdfs:subClassOf), and
// distinct non-derived predicates.
func DatasetInfo(name string, g *rdf.Graph) Info {
	typeID, _ := g.Dict.LookupIRI(rdf.RDFType)
	subID, _ := g.Dict.LookupIRI(rdf.RDFSSubClass)
	closureID, hasClosure := g.Dict.LookupIRI(explore.TypeClosureIRI)
	classes := map[rdf.ID]bool{}
	props := map[rdf.ID]bool{}
	for _, t := range g.Triples {
		if hasClosure && t.P == closureID {
			continue // derived, not part of the dataset proper
		}
		props[t.P] = true
		if t.P == typeID {
			classes[t.O] = true
		}
		if t.P == subID {
			classes[t.S] = true
			classes[t.O] = true
		}
	}
	return Info{Name: name, Triples: g.Len(), Classes: len(classes), Props: len(props)}
}
