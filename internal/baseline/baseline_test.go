package baseline

import (
	"errors"
	"testing"
	"testing/quick"

	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

func fig5(t *testing.T, distinct bool) (*query.Plan, *rdf.Graph, *index.Store) {
	t.Helper()
	g := rdf.NewGraph()
	g.AddIRIs("alice", "birthPlace", "paris")
	g.AddIRIs("bob", "birthPlace", "paris")
	g.AddIRIs("carol", "birthPlace", "lima")
	g.AddIRIs("dave", "birthPlace", "lima")
	g.AddIRIs("eve", "birthPlace", "rome")
	for _, s := range []string{"alice", "bob", "carol", "dave"} {
		g.AddIRIs(s, rdf.RDFType, "Person")
	}
	g.AddIRIs("eve", rdf.RDFType, "Robot")
	g.AddIRIs("paris", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "City")
	g.AddIRIs("rome", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "Capital")
	g.Dedup()

	bp, _ := g.Dict.LookupIRI("birthPlace")
	ty, _ := g.Dict.LookupIRI(rdf.RDFType)
	person, _ := g.Dict.LookupIRI("Person")
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(bp), O: query.V(1)},
			{S: query.V(0), P: query.C(ty), O: query.C(person)},
			{S: query.V(1), P: query.C(ty), O: query.V(2)},
		},
		Alpha:    2,
		Beta:     1,
		Distinct: distinct,
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return pl, g, index.Build(g)
}

func TestEvaluateDistinct(t *testing.T) {
	pl, g, st := fig5(t, true)
	got, err := Evaluate(st, pl)
	if err != nil {
		t.Fatal(err)
	}
	city, _ := g.Dict.LookupIRI("City")
	capital, _ := g.Dict.LookupIRI("Capital")
	if got[city] != 2 || got[capital] != 1 || len(got) != 2 {
		t.Errorf("Evaluate = %v, want City:2 Capital:1", got)
	}
}

func TestEvaluateNonDistinct(t *testing.T) {
	pl, g, st := fig5(t, false)
	got, err := Evaluate(st, pl)
	if err != nil {
		t.Fatal(err)
	}
	city, _ := g.Dict.LookupIRI("City")
	capital, _ := g.Dict.LookupIRI("Capital")
	if got[city] != 4 || got[capital] != 2 {
		t.Errorf("Evaluate = %v, want City:4 Capital:2", got)
	}
}

func TestEvaluateUngrouped(t *testing.T) {
	pl, _, st := fig5(t, false)
	q := *pl.Query
	q.Alpha = query.NoVar
	pl2, err := query.Compile(&q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Evaluate(st, pl2)
	if err != nil {
		t.Fatal(err)
	}
	if got[GlobalGroup] != 6 {
		t.Errorf("ungrouped = %v, want 6", got)
	}
}

func TestRowLimit(t *testing.T) {
	pl, _, st := fig5(t, false)
	e := &Engine{MaxRows: 2}
	_, err := e.Evaluate(st, pl)
	if !errors.Is(err, ErrTooManyRows) {
		t.Errorf("err = %v, want ErrTooManyRows", err)
	}
}

func TestEmptyResult(t *testing.T) {
	pl, g, st := fig5(t, false)
	missing := g.Dict.InternIRI("missing-pred")
	q := &query.Query{
		Patterns: []query.Pattern{{S: query.V(0), P: query.C(missing), O: query.V(1)}},
		Alpha:    query.NoVar,
		Beta:     1,
	}
	pl2, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Evaluate(st, pl2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty query result = %v", got)
	}
	_ = pl
}

func TestAgainstBruteForce(t *testing.T) {
	f := func(seed int64, depth8, flags uint8) bool {
		depth := 1 + int(depth8%3)
		grouped := flags&1 != 0
		distinct := flags&2 != 0
		g := testkit.RandomGraph(seed, 6, 3, 4, 40)
		if g.Len() == 0 {
			return true
		}
		preds := make([]rdf.ID, depth)
		for i := range preds {
			preds[i] = rdf.ID(6 + i%3)
		}
		q := testkit.ChainQuery(g, preds, grouped, distinct)
		pl, err := query.Compile(q)
		if err != nil {
			return false
		}
		st := index.Build(g)
		want := testkit.BruteForce(g, q)
		got, err := Evaluate(st, pl)
		if err != nil {
			return false
		}
		return testkit.MapsEqual(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAgreesWithLFTJOnFig5Variants(t *testing.T) {
	for _, distinct := range []bool{false, true} {
		pl, _, st := fig5(t, distinct)
		want := lftj.Evaluate(st, pl)
		got, err := Evaluate(st, pl)
		if err != nil {
			t.Fatal(err)
		}
		if !testkit.MapsEqual(got, want, 1e-9) {
			t.Errorf("distinct=%v: baseline %v, lftj %v", distinct, got, want)
		}
	}
}
