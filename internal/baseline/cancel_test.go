package baseline

import (
	"context"
	"testing"
	"time"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

func densePlan(t *testing.T) (*query.Plan, *index.Store) {
	t.Helper()
	g := testkit.RandomGraph(1, 40, 2, 40, 6000)
	preds := []rdf.ID{40, 41, 40}
	q := testkit.ChainQuery(g, preds, true, false)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return pl, testkit.BuildStore(g)
}

func TestEvaluateCtxPreCancelled(t *testing.T) {
	pl, st := densePlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := EvaluateCtx(ctx, st, pl)
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("cancelled EvaluateCtx returned partial result %v", res)
	}
}

// trippingContext reports no error on its first Err() call (the upfront
// check) and context.Canceled on every later one, so the test
// deterministically exercises the in-run row checkpoints.
type trippingContext struct {
	context.Context
	calls int
}

func (c *trippingContext) Err() error {
	if c.calls++; c.calls > 1 {
		return context.Canceled
	}
	return nil
}

func TestEvaluateCtxMidRunCancel(t *testing.T) {
	pl, st := densePlan(t)
	start := time.Now()
	res, err := EvaluateCtx(&trippingContext{Context: context.Background()}, st, pl)
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled from an in-run checkpoint", err)
	}
	if res != nil {
		t.Errorf("cancelled EvaluateCtx returned partial result with %d groups", len(res))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("abort took %v", elapsed)
	}
}
