// Package baseline implements the off-the-shelf exact engine the paper
// represents with Virtuoso: classical pairwise hash joins with full
// materialization of every intermediate result, followed by a grouped
// (distinct) count.
//
// The point of this engine in the study is architectural, not competitive:
// multiway graph joins explode its intermediate results, which is exactly
// why the paper's exploration queries take minutes to hours on Virtuoso
// while the worst-case-optimal CTJ avoids the blowup (§I, §V-C). The engine
// is correct and reasonably tuned (hash build on the smaller side, columnar
// row storage) so that the comparison is fair.
package baseline

import (
	"context"
	"errors"
	"fmt"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// GlobalGroup is the group key used for ungrouped queries.
const GlobalGroup = rdf.NoID

// ErrTooManyRows is returned when an intermediate result exceeds the
// configured cap — the baseline's failure mode on exploding joins.
var ErrTooManyRows = errors.New("baseline: intermediate result exceeds row limit")

// Engine evaluates plans with pairwise hash joins.
type Engine struct {
	// MaxRows caps the materialized intermediate size (rows). Zero means
	// DefaultMaxRows.
	MaxRows int
}

// DefaultMaxRows bounds intermediate materialization to roughly 1.6 GB of
// row data on typical exploration schemas.
const DefaultMaxRows = 50_000_000

// relation is a materialized intermediate: a flat columnar buffer of rows,
// each row holding the values of the bound variables in schema order.
type relation struct {
	schema []query.Var // bound variables, in binding order
	stride int
	data   []rdf.ID
}

func (r *relation) rows() int { return len(r.data) / maxInt(r.stride, 1) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (r *relation) colOf(v query.Var) int {
	for i, s := range r.schema {
		if s == v {
			return i
		}
	}
	return -1
}

// checkEvery is the number of rows processed between context checks in the
// materialization loops: a power of two so the cancellation checkpoint is a
// mask test on the row counter.
const checkEvery = 1 << 13

// Evaluate computes the exact per-group result of the plan.
func (e *Engine) Evaluate(store *index.Store, pl *query.Plan) (map[rdf.ID]float64, error) {
	return e.EvaluateCtx(context.Background(), store, pl)
}

// EvaluateCtx is Evaluate under a context: the materialization loops check
// ctx every checkEvery rows, so long pairwise-join runs abort promptly with
// ctx.Err() — never a partial result posing as the exact answer.
func (e *Engine) EvaluateCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	maxRows := e.MaxRows
	if maxRows <= 0 {
		maxRows = DefaultMaxRows
	}
	cur, err := e.materialize(ctx, store, pl, maxRows)
	if err != nil {
		return nil, err
	}
	return aggregate(ctx, store, cur, pl)
}

// materialize runs the pairwise hash joins to the final relation.
func (e *Engine) materialize(ctx context.Context, store *index.Store, pl *query.Plan, maxRows int) (*relation, error) {
	cur := &relation{stride: 0}
	for i := range pl.Steps {
		next, err := e.joinStep(ctx, store, pl, i, cur, maxRows)
		if err != nil {
			return nil, err
		}
		cur = next
		if len(pl.Steps[i].Filters) > 0 {
			if err := filterRows(ctx, store, pl, i, cur); err != nil {
				return nil, err
			}
		}
		if cur.rows() == 0 {
			break
		}
	}
	return cur, nil
}

// EvaluateUnionCtx evaluates a compiled union: each branch materializes
// independently, the branch rows aggregate into shared accumulators (so
// COUNT(DISTINCT) dedups across branches), and AVG divides the summed
// numerators by the summed denominators at the end.
func (e *Engine) EvaluateUnionCtx(ctx context.Context, store *index.Store, up *query.UnionPlan) (map[rdf.ID]float64, error) {
	maxRows := e.MaxRows
	if maxRows <= 0 {
		maxRows = DefaultMaxRows
	}
	out := make(map[rdf.ID]float64)
	counts := make(map[rdf.ID]float64)
	var seen map[[2]rdf.ID]struct{}
	if up.Query.Distinct() {
		seen = make(map[[2]rdf.ID]struct{})
	}
	for _, pl := range up.Plans {
		rel, err := e.materialize(ctx, store, pl, maxRows)
		if err != nil {
			return nil, err
		}
		if err := aggregateInto(ctx, store, rel, pl, out, counts, seen); err != nil {
			return nil, err
		}
	}
	if up.Query.Agg() == query.AggAvg {
		for a := range out {
			out[a] /= counts[a]
		}
	}
	return out, nil
}

// filterRows compacts the intermediate in place, dropping rows that fail the
// filters anchored at step i. Running it right after the step that completes
// a filter's variables keeps doomed rows from inflating later joins — the
// materializing engine's analogue of the trie engines' per-step checks.
func filterRows(ctx context.Context, store *index.Store, pl *query.Plan, i int, rel *relation) error {
	if rel.rows() == 0 {
		return nil
	}
	b := pl.NewBindings()
	w := 0
	for r := 0; r < rel.rows(); r++ {
		if r&(checkEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		row := rel.data[r*rel.stride : (r+1)*rel.stride]
		b.Reset()
		for c, v := range rel.schema {
			b[v] = row[c]
		}
		if !pl.StepFiltersOK(i, store, b) {
			continue
		}
		copy(rel.data[w*rel.stride:(w+1)*rel.stride], row)
		w++
	}
	rel.data = rel.data[:w*rel.stride]
	return nil
}

// joinStep hash-joins the current intermediate with the triples matching
// pattern i's constants.
func (e *Engine) joinStep(ctx context.Context, store *index.Store, pl *query.Plan, i int, cur *relation, maxRows int) (*relation, error) {
	st := &pl.Steps[i]
	pat := st.Pattern

	// The pattern's variables and their positions.
	var patVars []query.VarPos
	for pos := index.Pos(0); pos < 3; pos++ {
		if a := pat.Atom(pos); a.IsVar() {
			patVars = append(patVars, query.VarPos{Var: a.Var, Pos: pos})
		}
	}
	// Join variables: pattern vars already in the schema.
	var joinVars []query.VarPos
	var newVars []query.VarPos
	for _, vp := range patVars {
		if cur.colOf(vp.Var) >= 0 {
			joinVars = append(joinVars, vp)
		} else {
			newVars = append(newVars, vp)
		}
	}

	out := &relation{
		schema: append(append([]query.Var(nil), cur.schema...), varsOf(newVars)...),
	}
	out.stride = len(out.schema)

	order, span, scanAll := constSpan(store, pat)
	emit := func(row []rdf.ID, tr rdf.Triple) error {
		if out.rows() >= maxRows {
			return fmt.Errorf("%w (limit %d)", ErrTooManyRows, maxRows)
		}
		out.data = append(out.data, row...)
		for _, vp := range newVars {
			out.data = append(out.data, index.Field(tr, vp.Pos))
		}
		return nil
	}
	matchConsts := func(tr rdf.Triple) bool {
		for pos := index.Pos(0); pos < 3; pos++ {
			if a := pat.Atom(pos); !a.IsVar() && index.Field(tr, pos) != a.ID {
				return false
			}
		}
		return true
	}

	if i == 0 {
		// No intermediate yet: materialize the pattern's matches.
		for k := 0; k < span.Len(); k++ {
			if k&(checkEvery-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			tr := store.At(order, span, k)
			if scanAll && !matchConsts(tr) {
				continue
			}
			if err := emit(nil, tr); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	// Build a hash table on the join key over the pattern's triples, then
	// probe with the intermediate rows (or vice versa if the intermediate
	// is smaller; the build side should be the smaller input).
	type key [2]rdf.ID
	mkKeyTriple := func(tr rdf.Triple) key {
		var k key
		k[0], k[1] = rdf.NoID, rdf.NoID
		for j, vp := range joinVars {
			k[j] = index.Field(tr, vp.Pos)
		}
		return k
	}
	mkKeyRow := func(row []rdf.ID) key {
		var k key
		k[0], k[1] = rdf.NoID, rdf.NoID
		for j, vp := range joinVars {
			k[j] = row[cur.colOf(vp.Var)]
		}
		return k
	}
	if len(joinVars) > 2 {
		return nil, fmt.Errorf("baseline: pattern %d joins on %d variables; at most 2 supported", i, len(joinVars))
	}

	ht := make(map[key][]rdf.Triple)
	for k := 0; k < span.Len(); k++ {
		if k&(checkEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tr := store.At(order, span, k)
		if scanAll && !matchConsts(tr) {
			continue
		}
		kk := mkKeyTriple(tr)
		ht[kk] = append(ht[kk], tr)
	}
	for r := 0; r < cur.rows(); r++ {
		if r&(checkEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := cur.data[r*cur.stride : (r+1)*cur.stride]
		for _, tr := range ht[mkKeyRow(row)] {
			if err := emit(row, tr); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func varsOf(vps []query.VarPos) []query.Var {
	out := make([]query.Var, len(vps))
	for i, vp := range vps {
		out[i] = vp.Var
	}
	return out
}

// constSpan returns the span of triples matching the pattern's constants.
// scanAll=true means the constants could not be served by an index order
// and the caller must filter a full scan.
func constSpan(store *index.Store, pat query.Pattern) (index.Order, index.Span, bool) {
	var bound [3]bool
	for pos := index.Pos(0); pos < 3; pos++ {
		bound[pos] = !pat.Atom(pos).IsVar()
	}
	kind, order, err := query.AccessFor(bound)
	if err != nil {
		return index.SPO, store.FullSpan(index.SPO), true
	}
	levels := order.Levels()
	switch kind {
	case query.AccessFull:
		return order, store.FullSpan(order), false
	case query.AccessL1:
		return order, store.SpanL1(order, pat.Atom(levels[0]).ID), false
	case query.AccessL2:
		return order, store.SpanL2(order, pat.Atom(levels[0]).ID, pat.Atom(levels[1]).ID), false
	default: // membership: all constants
		return index.SPO, store.FullSpan(index.SPO), true
	}
}

// aggregate applies the query's grouped aggregation (COUNT, COUNT DISTINCT,
// SUM or AVG) to the final relation.
func aggregate(ctx context.Context, store *index.Store, rel *relation, pl *query.Plan) (map[rdf.ID]float64, error) {
	out := make(map[rdf.ID]float64)
	counts := make(map[rdf.ID]float64)
	var seen map[[2]rdf.ID]struct{}
	if pl.Query.Distinct {
		seen = make(map[[2]rdf.ID]struct{})
	}
	if err := aggregateInto(ctx, store, rel, pl, out, counts, seen); err != nil {
		return nil, err
	}
	if pl.Query.Agg == query.AggAvg {
		for a := range out {
			out[a] /= counts[a]
		}
	}
	return out, nil
}

// aggregateInto accumulates one relation's rows into shared aggregation
// state. Union evaluation calls it once per branch with the same maps (and
// one shared distinct set); AVG division is the caller's job.
func aggregateInto(ctx context.Context, store *index.Store, rel *relation, pl *query.Plan, out, counts map[rdf.ID]float64, seen map[[2]rdf.ID]struct{}) error {
	if rel.rows() == 0 {
		return nil
	}
	alphaCol := -1
	if pl.Query.Alpha != query.NoVar {
		alphaCol = rel.colOf(pl.Query.Alpha)
	}
	betaCol := rel.colOf(pl.Query.Beta)
	for r := 0; r < rel.rows(); r++ {
		if r&(checkEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		row := rel.data[r*rel.stride : (r+1)*rel.stride]
		a := GlobalGroup
		if alphaCol >= 0 {
			a = row[alphaCol]
		}
		switch pl.Query.Agg {
		case query.AggSum, query.AggAvg:
			if v, ok := store.Numeric(row[betaCol]); ok {
				out[a] += v
				counts[a]++
			}
		default:
			if pl.Query.Distinct {
				k := [2]rdf.ID{a, row[betaCol]}
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
			}
			out[a]++
		}
	}
	return nil
}

// Evaluate is a convenience wrapper using a default Engine.
func Evaluate(store *index.Store, pl *query.Plan) (map[rdf.ID]float64, error) {
	return (&Engine{}).Evaluate(store, pl)
}

// EvaluateCtx is a convenience wrapper using a default Engine.
func EvaluateCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]float64, error) {
	return (&Engine{}).EvaluateCtx(ctx, store, pl)
}
