package explore_test

import (
	"math/rand"
	"testing"

	"kgexplore/internal/ctj"
	"kgexplore/internal/explore"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// TestRandomSessionsStayValid drives long random sessions over the state
// machine of Fig. 3 and asserts the invariant the whole system relies on:
// every chart query produced along the way validates, compiles, and every
// selected bar leads to a state whose focus set is exactly the bar's count.
func TestRandomSessionsStayValid(t *testing.T) {
	g, schema, err := kggen.Generate(kggen.DBpediaSim(0.01))
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		state := explore.Root(schema)
		for step := 0; step < 6; step++ {
			ops := explore.Expansions(state.Kind)
			op := ops[rng.Intn(len(ops))]
			q, err := state.Query(op)
			if err != nil {
				t.Fatalf("seed %d step %d: Query(%v): %v", seed, step, op, err)
			}
			pl, err := query.Compile(q)
			if err != nil {
				t.Fatalf("seed %d step %d: Compile: %v\nquery: %v", seed, step, err, q)
			}
			chart := ctj.Evaluate(st, pl)
			if len(chart) == 0 {
				break // dead end: legal, ends the session
			}
			// Pick a random bar and check the focus invariant.
			keys := make([]uint32, 0, len(chart))
			for k := range chart {
				keys = append(keys, uint32(k))
			}
			// Deterministic order for the RNG draw.
			for i := 1; i < len(keys); i++ {
				for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
					keys[j], keys[j-1] = keys[j-1], keys[j]
				}
			}
			sel := keys[rng.Intn(len(keys))]
			next, err := state.Select(op, rdf.ID(sel))
			if err != nil {
				t.Fatalf("seed %d step %d: Select: %v", seed, step, err)
			}
			fq := next.FocusQuery()
			fpl, err := query.Compile(fq)
			if err != nil {
				t.Fatalf("seed %d step %d: focus compile: %v", seed, step, err)
			}
			focus := ctj.Evaluate(st, fpl)
			want := chart[rdf.ID(sel)]
			if got := focus[ctj.GlobalGroup]; got != want {
				t.Fatalf("seed %d step %d op %v: focus count %v != bar count %v",
					seed, step, op, got, want)
			}
			state = next
		}
	}
}
