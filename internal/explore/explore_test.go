package explore

import (
	"strings"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// philosopherGraph builds a miniature of the paper's running example
// (Example III.1): a class tree Thing <- {Agent <- Person <- Philosopher,
// Work}, philosophers influenced by persons, and birth places.
func philosopherGraph(t *testing.T) (*rdf.Graph, Schema) {
	t.Helper()
	g := rdf.NewGraph()
	sub := func(c, p string) { g.AddIRIs(c, rdf.RDFSSubClass, p) }
	ty := func(x, c string) { g.AddIRIs(x, rdf.RDFType, c) }

	sub("Agent", rdf.OWLThing)
	sub("Person", "Agent")
	sub("Philosopher", "Person")
	sub("Work", rdf.OWLThing)

	ty("socrates", "Philosopher")
	ty("plato", "Philosopher")
	ty("aristotle", "Philosopher")
	ty("homer", "Person")
	ty("parmenides", "Person")
	ty("iliad", "Work")

	inf := func(a, b string) { g.AddIRIs(a, "influencedBy", b) }
	inf("plato", "socrates")
	inf("aristotle", "plato")
	inf("aristotle", "socrates")
	inf("socrates", "parmenides")
	inf("plato", "parmenides")

	g.AddIRIs("socrates", "birthPlace", "athens")
	g.AddIRIs("plato", "birthPlace", "athens")
	g.AddIRIs("homer", "wrote", "iliad")

	MaterializeClosure(g, rdf.OWLThing)
	schema, err := SchemaOf(g.Dict, rdf.OWLThing)
	if err != nil {
		t.Fatal(err)
	}
	return g, schema
}

func evalExact(t *testing.T, g *rdf.Graph, q *query.Query) map[rdf.ID]float64 {
	t.Helper()
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatalf("compile %v: %v", q, err)
	}
	return lftj.Evaluate(index.Build(g), pl)
}

func iri(t *testing.T, g *rdf.Graph, s string) rdf.ID {
	t.Helper()
	id, ok := g.Dict.LookupIRI(s)
	if !ok {
		t.Fatalf("IRI %q missing", s)
	}
	return id
}

func TestMaterializeClosure(t *testing.T) {
	g, schema := philosopherGraph(t)
	st := index.Build(g)
	// socrates: typeClosure {Philosopher, Person, Agent, Thing}.
	soc := iri(t, g, "socrates")
	sp := st.SpanL1(index.SPO, soc)
	n := 0
	for i := 0; i < sp.Len(); i++ {
		if st.At(index.SPO, sp, i).P == schema.TypeClosure {
			n++
		}
	}
	if n != 4 {
		t.Errorf("socrates has %d closure triples, want 4", n)
	}
	// iliad: {Work, Thing}.
	il := iri(t, g, "iliad")
	sp = st.SpanL1(index.SPO, il)
	n = 0
	for i := 0; i < sp.Len(); i++ {
		if st.At(index.SPO, sp, i).P == schema.TypeClosure {
			n++
		}
	}
	if n != 2 {
		t.Errorf("iliad has %d closure triples, want 2", n)
	}
}

func TestClosureAttachesParentless(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("x", rdf.RDFType, "Orphan")
	stats := MaterializeClosure(g, rdf.OWLThing)
	if stats.RootsAttached != 1 {
		t.Errorf("RootsAttached = %d, want 1", stats.RootsAttached)
	}
	schema, err := SchemaOf(g.Dict, rdf.OWLThing)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	// x closure-types: Orphan and Thing.
	if got := st.SpanL1(index.PSO, schema.TypeClosure).Len(); got != 2 {
		t.Errorf("closure triples = %d, want 2", got)
	}
}

func TestClosureCycleTolerated(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("A", rdf.RDFSSubClass, "B")
	g.AddIRIs("B", rdf.RDFSSubClass, "A")
	g.AddIRIs("x", rdf.RDFType, "A")
	MaterializeClosure(g, rdf.OWLThing) // must terminate
	if _, err := SchemaOf(g.Dict, rdf.OWLThing); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaOfErrors(t *testing.T) {
	g := rdf.NewGraph()
	g.AddIRIs("a", "p", "b")
	if _, err := SchemaOf(g.Dict, rdf.OWLThing); err == nil || !strings.Contains(err.Error(), "rdf:type") {
		t.Errorf("err = %v, want missing rdf:type", err)
	}
}

func TestRootSubclassChart(t *testing.T) {
	g, schema := philosopherGraph(t)
	root := Root(schema)
	if root.Kind != ClassBar || root.Category != schema.Root {
		t.Fatalf("root state = %+v", root)
	}
	q, err := root.Query(OpSubclass)
	if err != nil {
		t.Fatal(err)
	}
	got := evalExact(t, g, q)
	agent := iri(t, g, "Agent")
	work := iri(t, g, "Work")
	// Direct subclasses of Thing: Agent (5 typed people via closure) and
	// Work (1 instance).
	if got[agent] != 5 || got[work] != 1 || len(got) != 2 {
		t.Errorf("subclass chart = %v, want Agent:5 Work:1", got)
	}
}

func TestSubclassDescent(t *testing.T) {
	g, schema := philosopherGraph(t)
	s := Root(schema)
	for _, c := range []string{"Agent", "Person", "Philosopher"} {
		var err error
		s, err = s.Select(OpSubclass, iri(t, g, c))
		if err != nil {
			t.Fatal(err)
		}
	}
	got := evalExact(t, g, s.FocusQuery())
	if got[lftj.GlobalGroup] != 3 {
		t.Errorf("philosophers = %v, want 3", got)
	}
}

func TestOutPropChart(t *testing.T) {
	g, schema := philosopherGraph(t)
	s := Root(schema)
	s, _ = s.Select(OpSubclass, iri(t, g, "Agent"))
	s, _ = s.Select(OpSubclass, iri(t, g, "Person"))
	q, err := s.Query(OpOutProp)
	if err != nil {
		t.Fatal(err)
	}
	got := evalExact(t, g, q)
	// Persons (closure: all 5 humans + nothing else) with outgoing props:
	// influencedBy: socrates, plato, aristotle -> 3 distinct subjects
	// birthPlace: socrates, plato -> 2
	// wrote: homer -> 1
	// rdf:type: all 5; typeClosure: all 5.
	inf := iri(t, g, "influencedBy")
	bp := iri(t, g, "birthPlace")
	wrote := iri(t, g, "wrote")
	if got[inf] != 3 || got[bp] != 2 || got[wrote] != 1 {
		t.Errorf("out-prop chart = %v", got)
	}
	if got[schema.Type] != 5 || got[schema.TypeClosure] != 5 {
		t.Errorf("type bars = %v/%v, want 5/5", got[schema.Type], got[schema.TypeClosure])
	}
}

func TestRunningExamplePath(t *testing.T) {
	// Example III.1: Thing -> Agent -> Person -> Philosopher, out-property
	// influencedBy, object expansion, select Person, out-properties.
	g, schema := philosopherGraph(t)
	s := Root(schema)
	for _, c := range []string{"Agent", "Person", "Philosopher"} {
		s, _ = s.Select(OpSubclass, iri(t, g, c))
	}
	s, err := s.Select(OpOutProp, iri(t, g, "influencedBy"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != OutPropBar {
		t.Fatalf("kind = %v", s.Kind)
	}
	// Object expansion: classes of things that influenced philosophers:
	// socrates(Philosopher), plato(Philosopher), parmenides(Person).
	q, err := s.Query(OpObject)
	if err != nil {
		t.Fatal(err)
	}
	got := evalExact(t, g, q)
	phil := iri(t, g, "Philosopher")
	person := iri(t, g, "Person")
	if got[phil] != 2 || got[person] != 1 || len(got) != 2 {
		t.Errorf("object chart = %v, want Philosopher:2 Person:1", got)
	}
	// Select Person: influencers that are persons via closure = all 3.
	s, err = s.Select(OpObject, person)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != ClassBar || s.Category != person {
		t.Fatalf("state after object select = %+v", s)
	}
	focus := evalExact(t, g, s.FocusQuery())
	if focus[lftj.GlobalGroup] != 3 {
		t.Errorf("persons who influenced philosophers = %v, want 3", focus)
	}
	// Out-properties of those influencers (the Fig. 2 chart).
	q, err = s.Query(OpOutProp)
	if err != nil {
		t.Fatal(err)
	}
	got = evalExact(t, g, q)
	inf := iri(t, g, "influencedBy")
	bp := iri(t, g, "birthPlace")
	// Influencers: socrates, plato, parmenides. Of these, influencedBy:
	// socrates, plato -> 2; birthPlace: socrates, plato -> 2.
	if got[inf] != 2 || got[bp] != 2 {
		t.Errorf("final chart = %v, want influencedBy:2 birthPlace:2", got)
	}
}

func TestInPropAndSubject(t *testing.T) {
	g, schema := philosopherGraph(t)
	s := Root(schema)
	q, err := s.Query(OpInProp)
	if err != nil {
		t.Fatal(err)
	}
	got := evalExact(t, g, q)
	inf := iri(t, g, "influencedBy")
	// Distinct objects of influencedBy: socrates, plato, parmenides = 3.
	if got[inf] != 3 {
		t.Errorf("in-prop chart influencedBy = %v, want 3", got[inf])
	}
	s, err = s.Select(OpInProp, inf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != InPropBar {
		t.Fatalf("kind = %v", s.Kind)
	}
	q, err = s.Query(OpSubject)
	if err != nil {
		t.Fatal(err)
	}
	got = evalExact(t, g, q)
	phil := iri(t, g, "Philosopher")
	// Subjects doing the influencing: plato, aristotle, socrates — all
	// Philosophers (direct type).
	if got[phil] != 3 || len(got) != 1 {
		t.Errorf("subject chart = %v, want Philosopher:3", got)
	}
	s, err = s.Select(OpSubject, phil)
	if err != nil {
		t.Fatal(err)
	}
	focus := evalExact(t, g, s.FocusQuery())
	if focus[lftj.GlobalGroup] != 3 {
		t.Errorf("focus = %v, want 3", focus)
	}
}

func TestIllegalOps(t *testing.T) {
	g, schema := philosopherGraph(t)
	s := Root(schema)
	if _, err := s.Query(OpObject); err == nil {
		t.Error("object expansion on class bar accepted")
	}
	if _, err := s.Select(OpSubject, 0); err == nil {
		t.Error("subject select on class bar accepted")
	}
	s, _ = s.Select(OpOutProp, iri(t, g, "influencedBy"))
	if _, err := s.Query(OpSubclass); err == nil {
		t.Error("subclass expansion on out-prop bar accepted")
	}
	if _, err := s.Query(OpInProp); err == nil {
		t.Error("in-prop expansion on out-prop bar accepted")
	}
}

func TestExpansionsPerFig3(t *testing.T) {
	if got := Expansions(ClassBar); len(got) != 3 {
		t.Errorf("class bar expansions = %v", got)
	}
	if got := Expansions(OutPropBar); len(got) != 1 || got[0] != OpObject {
		t.Errorf("out-prop bar expansions = %v", got)
	}
	if got := Expansions(InPropBar); len(got) != 1 || got[0] != OpSubject {
		t.Errorf("in-prop bar expansions = %v", got)
	}
}

func TestStringers(t *testing.T) {
	for _, o := range []Op{OpSubclass, OpOutProp, OpInProp, OpObject, OpSubject} {
		if strings.Contains(o.String(), "Op(") {
			t.Errorf("missing name for op %d", o)
		}
	}
	for _, k := range []BarKind{ClassBar, OutPropBar, InPropBar} {
		if strings.Contains(k.String(), "BarKind(") {
			t.Errorf("missing name for kind %d", k)
		}
	}
}

func TestDeepPathStaysInFragment(t *testing.T) {
	// Alternate expansions four levels deep; every chart query along the
	// way must validate and compile.
	g, schema := philosopherGraph(t)
	s := Root(schema)
	steps := []struct {
		op  Op
		cat string
	}{
		{OpSubclass, "Agent"},
		{OpOutProp, "influencedBy"},
		{OpObject, "Person"},
		{OpOutProp, "birthPlace"},
	}
	for _, stp := range steps {
		for _, op := range Expansions(s.Kind) {
			q, err := s.Query(op)
			if err != nil {
				t.Fatalf("query for %v on %v: %v", op, s.Kind, err)
			}
			if _, err := query.Compile(q); err != nil {
				t.Fatalf("compile for %v: %v", op, err)
			}
		}
		var err error
		s, err = s.Select(stp.op, iri(t, g, stp.cat))
		if err != nil {
			t.Fatal(err)
		}
	}
	if s.Depth() == 0 {
		t.Error("depth not tracked")
	}
}
