package explore

import (
	"kgexplore/internal/rdf"
)

// ClosureStats reports what MaterializeClosure added.
type ClosureStats struct {
	Classes        int // classes discovered
	RootsAttached  int // parentless classes attached to the root
	ClosureTriples int // (x, typeClosure, c) triples added
}

// MaterializeClosure prepares a graph for exploration, mirroring the
// paper's offline preprocessing (§V-A):
//
//  1. every class without a rdfs:subClassOf parent (other than the root) is
//     attached to the root class, as the paper does for LinkedGeoData;
//  2. the instance-level subclass closure is materialized: for each triple
//     (x, rdf:type, t) and each ancestor-or-self c of t, the derived triple
//     (x, urn:kgexplore:typeClosure, c) is added.
//
// Classes are the objects of rdf:type triples plus both sides of
// rdfs:subClassOf triples plus the root. Cycles in the subclass hierarchy
// are tolerated (members of a cycle share their ancestor sets). The graph
// is deduplicated before returning.
func MaterializeClosure(g *rdf.Graph, rootIRI string) ClosureStats {
	d := g.Dict
	root := d.InternIRI(rootIRI)
	typeID := d.InternIRI(rdf.RDFType)
	subID := d.InternIRI(rdf.RDFSSubClass)
	closureID := d.InternIRI(TypeClosureIRI)

	// Discover classes and the parent relation.
	classes := map[rdf.ID]bool{root: true}
	parents := map[rdf.ID][]rdf.ID{}
	for _, t := range g.Triples {
		switch t.P {
		case typeID:
			classes[t.O] = true
		case subID:
			classes[t.S] = true
			classes[t.O] = true
			parents[t.S] = append(parents[t.S], t.O)
		}
	}

	// Attach parentless classes to the root.
	var stats ClosureStats
	stats.Classes = len(classes)
	for c := range classes {
		if c != root && len(parents[c]) == 0 {
			g.AddEncoded(rdf.Triple{S: c, P: subID, O: root})
			parents[c] = append(parents[c], root)
			stats.RootsAttached++
		}
	}

	// Ancestor sets (including self) with memoized DFS; gray-marked nodes
	// break cycles.
	anc := make(map[rdf.ID][]rdf.ID, len(classes))
	const gray = 1
	state := make(map[rdf.ID]int8, len(classes))
	var ancestors func(c rdf.ID) []rdf.ID
	ancestors = func(c rdf.ID) []rdf.ID {
		if a, ok := anc[c]; ok {
			return a
		}
		if state[c] == gray {
			return nil // cycle: contribute nothing beyond what callers add
		}
		state[c] = gray
		set := map[rdf.ID]bool{c: true}
		for _, p := range parents[c] {
			for _, a := range ancestors(p) {
				set[a] = true
			}
		}
		state[c] = 0
		out := make([]rdf.ID, 0, len(set))
		for a := range set {
			out = append(out, a)
		}
		anc[c] = out
		return out
	}

	// Materialize the instance-level closure. Collect type triples first:
	// we append to g.Triples while iterating otherwise.
	var typed []rdf.Triple
	for _, t := range g.Triples {
		if t.P == typeID {
			typed = append(typed, t)
		}
	}
	for _, t := range typed {
		for _, a := range ancestors(t.O) {
			g.AddEncoded(rdf.Triple{S: t.S, P: closureID, O: a})
			stats.ClosureTriples++
		}
	}
	g.Dedup()
	return stats
}
