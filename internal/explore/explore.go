// Package explore implements the paper's visual exploration model (§III):
// bar charts over an RDF graph, five bar expansions (subclass, out-property,
// in-property, object, subject), the transition system between chart kinds
// (Fig. 3), and the translation of exploration paths into the aggregate
// queries of Fig. 4.
//
// Class membership follows the paper's remark in §IV-A: the subclass closure
// is computed offline and materialized in the graph as an instance-level
// closure relation (x, typeClosure, c) for every ancestor-or-self c of x's
// explicit types, while the rdf:type triples stay per the original data (and
// feed the object/subject expansions' direct-class categories).
package explore

import (
	"errors"
	"fmt"

	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// TypeClosureIRI is the derived predicate that materializes the
// instance-level subclass closure.
const TypeClosureIRI = "urn:kgexplore:typeClosure"

// BarKind is the kind of a bar (and of the chart that contains it).
type BarKind uint8

const (
	// ClassBar represents instances of a common class.
	ClassBar BarKind = iota
	// OutPropBar represents subjects of a common outgoing property.
	OutPropBar
	// InPropBar represents objects of a common incoming property.
	InPropBar
)

func (k BarKind) String() string {
	switch k {
	case ClassBar:
		return "class"
	case OutPropBar:
		return "out-property"
	case InPropBar:
		return "in-property"
	default:
		return fmt.Sprintf("BarKind(%d)", uint8(k))
	}
}

// Op is one of the five bar expansions.
type Op uint8

const (
	// OpSubclass expands a class bar into its direct subclasses.
	OpSubclass Op = iota
	// OpOutProp expands a class bar into the outgoing properties of its nodes.
	OpOutProp
	// OpInProp expands a class bar into the incoming properties of its nodes.
	OpInProp
	// OpObject expands an out-property bar into the classes of the objects.
	OpObject
	// OpSubject expands an in-property bar into the classes of the subjects.
	OpSubject
	numOps
)

func (o Op) String() string {
	switch o {
	case OpSubclass:
		return "subclass"
	case OpOutProp:
		return "out-property"
	case OpInProp:
		return "in-property"
	case OpObject:
		return "object"
	case OpSubject:
		return "subject"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Expansions returns the legal expansions from a bar of kind k, following
// the transition system of Fig. 3.
func Expansions(k BarKind) []Op {
	switch k {
	case ClassBar:
		return []Op{OpSubclass, OpOutProp, OpInProp}
	case OutPropBar:
		return []Op{OpObject}
	case InPropBar:
		return []Op{OpSubject}
	default:
		return nil
	}
}

// Schema holds the dictionary IDs of the vocabulary the exploration model
// needs. Build it with SchemaOf after closure materialization.
type Schema struct {
	Type        rdf.ID // rdf:type
	SubClassOf  rdf.ID // rdfs:subClassOf
	TypeClosure rdf.ID // urn:kgexplore:typeClosure
	Root        rdf.ID // the root class (owl:Thing unless overridden)
}

// SchemaOf resolves the vocabulary in the graph's dictionary. The rootIRI
// is typically rdf.OWLThing. It fails if the graph lacks any of the terms,
// which usually means MaterializeClosure has not run.
func SchemaOf(d *rdf.Dict, rootIRI string) (Schema, error) {
	var s Schema
	var ok bool
	if s.Type, ok = d.LookupIRI(rdf.RDFType); !ok {
		return s, errors.New("explore: graph has no rdf:type triples")
	}
	if s.SubClassOf, ok = d.LookupIRI(rdf.RDFSSubClass); !ok {
		return s, errors.New("explore: graph has no rdfs:subClassOf triples")
	}
	if s.TypeClosure, ok = d.LookupIRI(TypeClosureIRI); !ok {
		return s, errors.New("explore: type closure not materialized (run MaterializeClosure first)")
	}
	if s.Root, ok = d.LookupIRI(rootIRI); !ok {
		return s, fmt.Errorf("explore: root class %q not in graph", rootIRI)
	}
	return s, nil
}

// State is a selected bar: the exploration path's current focus set, defined
// by the accumulated join patterns plus a replaceable type filter. States
// are immutable; Select returns a new one.
type State struct {
	schema   Schema
	Kind     BarKind
	Category rdf.ID

	base       []query.Pattern // accumulated patterns defining the focus set
	typeFilter *query.Pattern  // replaceable (focus, typeClosure, class) filter
	focus      query.Var       // variable whose assignments are the bar's nodes
	next       query.Var       // next fresh variable
	objVar     query.Var       // out-property bar: the object variable of (focus p ?o)
	subjVar    query.Var       // in-property bar: the subject variable of (?s p focus)
}

// Root returns the initial state: the class bar of the schema's root class,
// whose nodes are all instances (via closure) of the root.
func Root(schema Schema) *State {
	tf := query.Pattern{S: query.V(0), P: query.C(schema.TypeClosure), O: query.C(schema.Root)}
	return &State{
		schema:     schema,
		Kind:       ClassBar,
		Category:   schema.Root,
		typeFilter: &tf,
		focus:      0,
		next:       1,
		objVar:     query.NoVar,
		subjVar:    query.NoVar,
	}
}

// Focus returns the variable denoting the bar's node set.
func (s *State) Focus() query.Var { return s.focus }

// focusPatterns returns the patterns defining the focus set (base plus the
// type filter when present).
func (s *State) focusPatterns() []query.Pattern {
	out := append([]query.Pattern(nil), s.base...)
	if s.typeFilter != nil {
		out = append(out, *s.typeFilter)
	}
	return out
}

// FocusQuery returns the query counting the bar's own nodes (a single-group
// COUNT DISTINCT of the focus variable) — the height of the selected bar.
func (s *State) FocusQuery() *query.Query {
	return &query.Query{
		Patterns: s.focusPatterns(),
		Alpha:    query.NoVar,
		Beta:     s.focus,
		Distinct: true,
	}
}

// Query translates expanding this bar with op into the chart query of
// Fig. 4: a join whose Alpha is the new chart's category variable and whose
// Beta is the new chart's focus variable, counted distinct.
func (s *State) Query(op Op) (*query.Query, error) {
	if !opLegal(s.Kind, op) {
		return nil, fmt.Errorf("explore: %v expansion is not legal on a %v bar", op, s.Kind)
	}
	q := &query.Query{Distinct: true}
	switch op {
	case OpSubclass:
		// base + (focus typeClosure ?c') + (?c' subClassOf category)
		cvar := s.next
		q.Patterns = append(append([]query.Pattern(nil), s.base...),
			query.Pattern{S: query.V(s.focus), P: query.C(s.schema.TypeClosure), O: query.V(cvar)},
			query.Pattern{S: query.V(cvar), P: query.C(s.schema.SubClassOf), O: query.C(s.Category)},
		)
		q.Alpha, q.Beta = cvar, s.focus
	case OpOutProp:
		pvar, ovar := s.next, s.next+1
		q.Patterns = append(s.focusPatterns(),
			query.Pattern{S: query.V(s.focus), P: query.V(pvar), O: query.V(ovar)})
		q.Alpha, q.Beta = pvar, s.focus
	case OpInProp:
		pvar, svar := s.next, s.next+1
		q.Patterns = append(s.focusPatterns(),
			query.Pattern{S: query.V(svar), P: query.V(pvar), O: query.V(s.focus)})
		q.Alpha, q.Beta = pvar, s.focus
	case OpObject:
		cvar := s.next
		q.Patterns = append(s.focusPatterns(),
			query.Pattern{S: query.V(s.objVar), P: query.C(s.schema.Type), O: query.V(cvar)})
		q.Alpha, q.Beta = cvar, s.objVar
	case OpSubject:
		cvar := s.next
		q.Patterns = append(s.focusPatterns(),
			query.Pattern{S: query.V(s.subjVar), P: query.C(s.schema.Type), O: query.V(cvar)})
		q.Alpha, q.Beta = cvar, s.subjVar
	default:
		return nil, fmt.Errorf("explore: unknown op %v", op)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("explore: translated query invalid: %w", err)
	}
	return q, nil
}

// Select clicks the bar with the given category in the chart produced by
// expanding with op, returning the new state.
func (s *State) Select(op Op, category rdf.ID) (*State, error) {
	if !opLegal(s.Kind, op) {
		return nil, fmt.Errorf("explore: %v expansion is not legal on a %v bar", op, s.Kind)
	}
	ns := &State{schema: s.schema, objVar: query.NoVar, subjVar: query.NoVar}
	switch op {
	case OpSubclass:
		// Same focus; the type filter narrows to the subclass (the old
		// filter is implied by the new one and dropped, as in Fig. 5).
		tf := query.Pattern{S: query.V(s.focus), P: query.C(s.schema.TypeClosure), O: query.C(category)}
		ns.Kind, ns.Category = ClassBar, category
		ns.base = append([]query.Pattern(nil), s.base...)
		ns.typeFilter = &tf
		ns.focus, ns.next = s.focus, s.next
	case OpOutProp:
		ovar := s.next
		ns.Kind, ns.Category = OutPropBar, category
		ns.base = append(s.focusPatterns(),
			query.Pattern{S: query.V(s.focus), P: query.C(category), O: query.V(ovar)})
		ns.focus, ns.next = s.focus, s.next+1
		ns.objVar = ovar
	case OpInProp:
		svar := s.next
		ns.Kind, ns.Category = InPropBar, category
		ns.base = append(s.focusPatterns(),
			query.Pattern{S: query.V(svar), P: query.C(category), O: query.V(s.focus)})
		ns.focus, ns.next = s.focus, s.next+1
		ns.subjVar = svar
	case OpObject:
		tf := query.Pattern{S: query.V(s.objVar), P: query.C(s.schema.TypeClosure), O: query.C(category)}
		ns.Kind, ns.Category = ClassBar, category
		ns.base = append([]query.Pattern(nil), s.base...)
		ns.typeFilter = &tf
		ns.focus, ns.next = s.objVar, s.next
	case OpSubject:
		tf := query.Pattern{S: query.V(s.subjVar), P: query.C(s.schema.TypeClosure), O: query.C(category)}
		ns.Kind, ns.Category = ClassBar, category
		ns.base = append([]query.Pattern(nil), s.base...)
		ns.typeFilter = &tf
		ns.focus, ns.next = s.subjVar, s.next
	default:
		return nil, fmt.Errorf("explore: unknown op %v", op)
	}
	return ns, nil
}

// Depth returns the number of join patterns accumulated so far, a proxy for
// the exploration depth used when reporting per-step results.
func (s *State) Depth() int { return len(s.base) }

func opLegal(k BarKind, op Op) bool {
	for _, o := range Expansions(k) {
		if o == op {
			return true
		}
	}
	return false
}
