package explore

import (
	"fmt"

	"kgexplore/internal/rdf"
)

// PathStep is one recorded exploration interaction, with the category
// identified by its decoded term so the step is portable across datasets
// (whose dictionary IDs differ). This is the basis of the paper's envisaged
// "explore and contrast multiple knowledge graphs simultaneously" (§VI):
// record a path once, replay it on several graphs, compare the charts.
type PathStep struct {
	Op       Op
	Category rdf.Term
}

// Replay applies a recorded path to a dataset, resolving categories through
// the dictionary. It fails with a descriptive error when a category does
// not exist in this graph or an op is illegal at its position.
func Replay(schema Schema, d *rdf.Dict, steps []PathStep) (*State, error) {
	s := Root(schema)
	for i, st := range steps {
		id, ok := d.Lookup(st.Category)
		if !ok {
			return nil, fmt.Errorf("explore: replay step %d: category %v not in this graph", i, st.Category)
		}
		next, err := s.Select(st.Op, id)
		if err != nil {
			return nil, fmt.Errorf("explore: replay step %d: %w", i, err)
		}
		s = next
	}
	return s, nil
}
