package workload

import (
	"math/rand"
	"sort"

	"kgexplore/internal/ctj"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// This file extends the evaluation workload to the wider query surface:
// FILTER comparisons, UNION of branches, and fixed-length property-path
// chains. Surface records are derived from the same exploration paths the
// base workload produces (so filters and unions stay anchored in chart
// shapes a user would actually reach) plus predicate chains sampled from
// the store (the desugared form of p1/p2 paths), each with CTJ ground
// truth for equivalence and benchmark harnesses.

// SurfaceKind classifies an extended-surface workload query.
type SurfaceKind string

const (
	// SurfaceFilter is a chart query with an attached FILTER predicate.
	SurfaceFilter SurfaceKind = "filter"
	// SurfaceUnion is a multi-branch union of chart queries.
	SurfaceUnion SurfaceKind = "union"
	// SurfacePath is a chain query — the desugared form of a fixed-length
	// property path p1/p2 (or p{n}).
	SurfacePath SurfaceKind = "path"
)

// SurfaceRecord is one extended-surface workload query with exact ground
// truth. Filter and path records carry Query/Plan; union records carry
// Union/UnionPlan instead.
type SurfaceRecord struct {
	Kind      SurfaceKind
	Query     *query.Query
	Plan      *query.Plan
	Union     *query.UnionQuery
	UnionPlan *query.UnionPlan
	Exact     map[rdf.ID]float64
}

// Distinct reports whether the record's query deduplicates.
func (r *SurfaceRecord) Distinct() bool {
	if r.Union != nil {
		return r.Union.Distinct()
	}
	return r.Query.Distinct
}

// Surface derives up to n extended-surface queries, cycling through the
// three kinds. Filter records attach an α ≠ <selected group> predicate to
// a chart query (the group the simulated user drilled into is excluded —
// mirroring a "hide this bar" refinement); union records pair two chart
// queries from different exploration steps, alternating bag and DISTINCT
// semantics; path records are 2- and 3-hop predicate chains sampled from
// the store's non-schema predicates. Records with empty exact results are
// discarded, so fewer than n may return on tiny stores. Deterministic in
// Seed, independent of Paths' stream.
func (g *Generator) Surface(n int) []SurfaceRecord {
	rng := rand.New(rand.NewSource(g.Seed*1_000_003 + 17))
	base := g.Paths(n/2 + 2)
	var filters, unions, paths []SurfaceRecord
	want := (n + 2) / 3
	filters = g.surfaceFilters(rng, base, want)
	unions = g.surfaceUnions(rng, base, want)
	paths = g.surfacePaths(rng, n-len(filters)-len(unions))
	out := make([]SurfaceRecord, 0, n)
	for i := 0; len(out) < n; i++ {
		added := false
		if i < len(filters) {
			out = append(out, filters[i])
			added = true
		}
		if i < len(unions) && len(out) < n {
			out = append(out, unions[i])
			added = true
		}
		if i < len(paths) && len(out) < n {
			out = append(out, paths[i])
			added = true
		}
		if !added {
			break
		}
	}
	return out
}

// surfaceFilters turns grouped chart queries into filtered variants:
// FILTER(?α != <g>) for a weighted-sampled group g, which removes exactly
// that group from the chart.
func (g *Generator) surfaceFilters(rng *rand.Rand, base []StepRecord, k int) []SurfaceRecord {
	var out []SurfaceRecord
	for _, rec := range base {
		if len(out) >= k {
			break
		}
		if rec.Query.Alpha == query.NoVar {
			continue
		}
		victim := weightedSample(rng, rec.Exact)
		fq := cloneQuery(rec.Query)
		fq.Filters = append(fq.Filters, query.Filter{
			Op: query.CmpNe,
			L:  query.EVar(fq.Alpha),
			R:  query.ETerm(victim),
		})
		pl, err := query.Compile(fq)
		if err != nil {
			continue
		}
		exact := ctj.Evaluate(g.Store, pl)
		if len(exact) == 0 {
			continue
		}
		out = append(out, SurfaceRecord{Kind: SurfaceFilter, Query: fq, Plan: pl, Exact: exact})
	}
	return out
}

// surfaceUnions pairs chart queries from distinct exploration steps into
// two-branch unions, alternating the shared DISTINCT flag so both the bag
// and the dedup semantics appear in the workload.
func (g *Generator) surfaceUnions(rng *rand.Rand, base []StepRecord, k int) []SurfaceRecord {
	var grouped []StepRecord
	for _, rec := range base {
		if rec.Query.Alpha != query.NoVar {
			grouped = append(grouped, rec)
		}
	}
	var out []SurfaceRecord
	for i := 0; i+1 < len(grouped) && len(out) < k; i += 2 {
		b0 := cloneQuery(grouped[i].Query)
		b1 := cloneQuery(grouped[i+1].Query)
		if len(out)%2 == 1 {
			b0.Distinct, b1.Distinct = false, false
		}
		u := &query.UnionQuery{Branches: []*query.Query{b0, b1}}
		up, err := query.CompileUnion(u)
		if err != nil {
			continue
		}
		exact, err := ctj.EvaluateUnion(g.Store, up)
		if err != nil || len(exact) == 0 {
			continue
		}
		out = append(out, SurfaceRecord{Kind: SurfaceUnion, Union: u, UnionPlan: up, Exact: exact})
	}
	_ = rng
	return out
}

// surfacePaths samples 2- and 3-hop predicate chains — the desugared form
// of <p1>/<p2> (and p{3}-style repeats when a predicate chains with
// itself) — grouped by the chain's source, counting its sinks.
func (g *Generator) surfacePaths(rng *rand.Rand, k int) []SurfaceRecord {
	preds := g.dataPredicates()
	if len(preds) == 0 || k <= 0 {
		return nil
	}
	var out []SurfaceRecord
	tries := 0
	for len(out) < k && tries < 20*k+40 {
		tries++
		hops := 2 + tries%2
		pats := make([]query.Pattern, hops)
		for h := 0; h < hops; h++ {
			p := preds[rng.Intn(len(preds))]
			pats[h] = query.Pattern{
				S: query.V(query.Var(h)),
				P: query.C(p),
				O: query.V(query.Var(h + 1)),
			}
		}
		pq := &query.Query{Patterns: pats, Alpha: 0, Beta: query.Var(hops)}
		pl, err := query.Compile(pq)
		if err != nil {
			continue
		}
		exact := ctj.Evaluate(g.Store, pl)
		if len(exact) == 0 {
			continue
		}
		out = append(out, SurfaceRecord{Kind: SurfacePath, Query: pq, Plan: pl, Exact: exact})
	}
	return out
}

// dataPredicates lists the store's predicates minus the schema machinery
// (type, subclass, closure), sorted for determinism.
func (g *Generator) dataPredicates() []rdf.ID {
	var preds []rdf.ID
	it := g.Store.Level(index.PSO, g.Store.FullSpan(index.PSO), 0)
	for it.Next() {
		p := it.Key()
		if p == g.Schema.Type || p == g.Schema.SubClassOf || p == g.Schema.TypeClosure {
			continue
		}
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	return preds
}

// cloneQuery deep-copies a query so surface variants never mutate the base
// workload's records.
func cloneQuery(q *query.Query) *query.Query {
	nq := &query.Query{
		Patterns: append([]query.Pattern(nil), q.Patterns...),
		Alpha:    q.Alpha,
		Beta:     q.Beta,
		Distinct: q.Distinct,
		Agg:      q.Agg,
		Filters:  append([]query.Filter(nil), q.Filters...),
	}
	return nq
}
