package workload

import (
	"math/rand"
	"testing"

	"kgexplore/internal/ctj"
	"kgexplore/internal/explore"
	"kgexplore/internal/index"
	"kgexplore/internal/kggen"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

func smallDataset(t *testing.T) (*index.Store, explore.Schema, *rdf.Graph) {
	t.Helper()
	g, schema, err := kggen.Generate(kggen.DBpediaSim(0.01))
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(g), schema, g
}

func TestPathsProduceSteps(t *testing.T) {
	st, schema, _ := smallDataset(t)
	gen := &Generator{Store: st, Schema: schema, Seed: 1, MaxSteps: 4}
	recs := gen.Paths(5)
	if len(recs) == 0 {
		t.Fatal("no steps generated")
	}
	paths := map[int]int{}
	for _, r := range recs {
		paths[r.Path]++
		if r.Step < 1 || r.Step > 4 {
			t.Errorf("step %d out of range", r.Step)
		}
		if len(r.Exact) == 0 {
			t.Error("empty exact result recorded")
		}
		if _, ok := r.Exact[r.Selected]; !ok {
			t.Error("selected group not in the chart")
		}
		if r.Plan == nil || r.Query == nil {
			t.Error("missing plan/query")
		}
		if !r.Query.Distinct {
			t.Error("chart query must count distinct")
		}
	}
	if len(paths) != 5 {
		t.Errorf("expected 5 paths, got %d", len(paths))
	}
}

func TestPathsDeterministic(t *testing.T) {
	st, schema, _ := smallDataset(t)
	g1 := &Generator{Store: st, Schema: schema, Seed: 7, MaxSteps: 3}
	g2 := &Generator{Store: st, Schema: schema, Seed: 7, MaxSteps: 3}
	r1, r2 := g1.Paths(4), g2.Paths(4)
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Op != r2[i].Op || r1[i].Selected != r2[i].Selected {
			t.Errorf("step %d differs: %v/%d vs %v/%d",
				i, r1[i].Op, r1[i].Selected, r2[i].Op, r2[i].Selected)
		}
	}
}

func TestStepQueriesAreConsistent(t *testing.T) {
	// The recorded exact result must match re-evaluating the plan.
	st, schema, _ := smallDataset(t)
	gen := &Generator{Store: st, Schema: schema, Seed: 3, MaxSteps: 2}
	recs := gen.Paths(2)
	for _, r := range recs {
		again := ctj.Evaluate(st, r.Plan)
		if !testkit.MapsEqual(again, r.Exact, 1e-9) {
			t.Errorf("path %d step %d: recorded exact diverges from re-evaluation", r.Path, r.Step)
		}
	}
}

func TestWeightedSampleRespectsWeights(t *testing.T) {
	st, schema, _ := smallDataset(t)
	_ = st
	_ = schema
	counts := map[rdf.ID]float64{1: 1, 2: 0, 3: 9999}
	hits := map[rdf.ID]int{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		hits[weightedSample(rng, counts)]++
	}
	if hits[3] < 1900 {
		t.Errorf("heavy group sampled only %d/2000 times", hits[3])
	}
	if hits[2] > 0 {
		t.Error("zero-weight group sampled")
	}
}

func TestSurfaceRecords(t *testing.T) {
	st, schema, g := smallDataset(t)
	gen := &Generator{Store: st, Schema: schema, Seed: 9, MaxSteps: 3}
	recs := gen.Surface(12)
	if len(recs) == 0 {
		t.Fatal("no surface records generated")
	}
	kinds := map[SurfaceKind]int{}
	for _, r := range recs {
		kinds[r.Kind]++
		if len(r.Exact) == 0 {
			t.Errorf("%s record with empty exact result", r.Kind)
		}
		switch r.Kind {
		case SurfaceUnion:
			if r.Union == nil || r.UnionPlan == nil {
				t.Fatalf("union record missing union/plan")
			}
			if err := r.Union.Validate(); err != nil {
				t.Errorf("invalid union: %v", err)
			}
			want := testkit.BruteForceUnion(g, r.Union)
			if !testkit.MapsEqual(r.Exact, want, 1e-9) {
				t.Error("union exact diverges from brute force")
			}
		case SurfaceFilter:
			if r.Query == nil || len(r.Query.Filters) == 0 {
				t.Fatal("filter record without filters")
			}
			again := ctj.Evaluate(st, r.Plan)
			if !testkit.MapsEqual(r.Exact, again, 1e-9) {
				t.Error("filter exact diverges from re-evaluation")
			}
		case SurfacePath:
			if r.Query == nil || len(r.Query.Patterns) < 2 {
				t.Fatal("path record must be a multi-hop chain")
			}
			for _, p := range r.Query.Patterns {
				if p.P.IsVar() {
					t.Error("path hop with variable predicate")
				}
			}
			again := ctj.Evaluate(st, r.Plan)
			if !testkit.MapsEqual(r.Exact, again, 1e-9) {
				t.Error("path exact diverges from re-evaluation")
			}
		default:
			t.Errorf("unknown kind %q", r.Kind)
		}
	}
	for _, k := range []SurfaceKind{SurfaceFilter, SurfaceUnion, SurfacePath} {
		if kinds[k] == 0 {
			t.Errorf("no %s records generated", k)
		}
	}
}

func TestSurfaceDeterministic(t *testing.T) {
	st, schema, _ := smallDataset(t)
	g1 := &Generator{Store: st, Schema: schema, Seed: 4, MaxSteps: 2}
	g2 := &Generator{Store: st, Schema: schema, Seed: 4, MaxSteps: 2}
	r1, r2 := g1.Surface(9), g2.Surface(9)
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Kind != r2[i].Kind {
			t.Fatalf("record %d kind differs", i)
		}
		if !testkit.MapsEqual(r1[i].Exact, r2[i].Exact, 0) {
			t.Errorf("record %d exact differs", i)
		}
	}
}

func TestSelectivity(t *testing.T) {
	st, schema, g := smallDataset(t)
	// A filter-free query has selectivity 0... exploration queries always
	// carry the closure filter; build one manually: ?x <p0> ?o with no
	// constants except the predicate.
	var pred rdf.ID
	it := st.Level(index.PSO, st.FullSpan(index.PSO), 0)
	typeID := schema.Type
	for it.Next() {
		if it.Key() != typeID && it.Key() != schema.SubClassOf && it.Key() != schema.TypeClosure {
			pred = it.Key()
			break
		}
	}
	q := &query.Query{
		Patterns: []query.Pattern{{S: query.V(0), P: query.C(pred), O: query.V(1)}},
		Alpha:    query.NoVar,
		Beta:     0,
	}
	sel := Selectivity(st, q)
	if sel <= 0 || sel >= 1 {
		t.Errorf("selectivity of single-predicate filter = %v, want in (0,1)", sel)
	}
	_ = g
}

func TestSelectivityOfWorkloadSteps(t *testing.T) {
	st, schema, _ := smallDataset(t)
	gen := &Generator{Store: st, Schema: schema, Seed: 11, MaxSteps: 2}
	recs := gen.Paths(2)
	for _, r := range recs {
		s := Selectivity(st, r.Query)
		if s < 0 || s > 1 {
			t.Errorf("selectivity %v out of [0,1] for %v", s, r.Query)
		}
		gs := AvgGroupSelectivity(st, r.Query, r.Exact, 5)
		if gs < 0 || gs > 1 {
			t.Errorf("group selectivity %v out of [0,1]", gs)
		}
	}
}
