// Package workload generates the paper's evaluation workload (§V-B):
// random exploration paths that imitate users applying incremental
// expansions. Each path starts at the root class, uniformly picks a legal
// expansion, translates it to a chart query, and weighted-samples one of
// the resulting groups (bars) by size — the paper's bias towards large
// groups — for up to four steps. Chart queries with empty results are
// discarded and the path ends.
package workload

import (
	"math/rand"
	"sort"

	"kgexplore/internal/ctj"
	"kgexplore/internal/explore"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// StepRecord is one exploration step: the chart query it issued, the exact
// result used as ground truth, and the group the simulated user selected.
type StepRecord struct {
	Path     int // exploration-run index
	Step     int // 1-based step within the run
	Op       explore.Op
	Query    *query.Query
	Plan     *query.Plan
	Exact    map[rdf.ID]float64 // exact distinct counts per group
	Selected rdf.ID             // the weighted-sampled group
}

// Generator produces exploration paths over one dataset.
type Generator struct {
	Store    *index.Store
	Schema   explore.Schema
	Seed     int64
	MaxSteps int // steps per path; the paper uses 4
	// MaxGroupsExact caps charts used for ground truth; 0 means no cap.
	// (Kept for safety on huge synthetic charts; the paper has no such cap.)
	MaxGroupsExact int
}

// Paths runs n exploration paths and returns every non-empty step record,
// in order. The paper runs 25 paths per graph.
func (g *Generator) Paths(n int) []StepRecord {
	rng := rand.New(rand.NewSource(g.Seed))
	maxSteps := g.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4
	}
	var out []StepRecord
	for p := 0; p < n; p++ {
		state := explore.Root(g.Schema)
		for step := 1; step <= maxSteps; step++ {
			rec, next, ok := g.step(rng, state, p, step)
			if !ok {
				break
			}
			out = append(out, rec)
			state = next
		}
	}
	return out
}

// step tries the legal expansions of the state in random order until one
// produces a non-empty chart; charts with empty results are ignored, per
// the paper. Returns ok=false when every expansion is empty.
func (g *Generator) step(rng *rand.Rand, state *explore.State, path, step int) (StepRecord, *explore.State, bool) {
	ops := append([]explore.Op(nil), explore.Expansions(state.Kind)...)
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	for _, op := range ops {
		q, err := state.Query(op)
		if err != nil {
			continue
		}
		pl, err := query.Compile(q)
		if err != nil {
			continue
		}
		exact := ctj.Evaluate(g.Store, pl)
		if len(exact) == 0 {
			continue
		}
		sel := weightedSample(rng, exact)
		next, err := state.Select(op, sel)
		if err != nil {
			continue
		}
		rec := StepRecord{
			Path:     path,
			Step:     step,
			Op:       op,
			Query:    q,
			Plan:     pl,
			Exact:    exact,
			Selected: sel,
		}
		return rec, next, true
	}
	return StepRecord{}, nil, false
}

// weightedSample picks a group with probability proportional to its count,
// iterating groups in sorted ID order so results are reproducible.
func weightedSample(rng *rand.Rand, counts map[rdf.ID]float64) rdf.ID {
	ids := make([]rdf.ID, 0, len(counts))
	var total float64
	for id, c := range counts {
		ids = append(ids, id)
		total += c
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	r := rng.Float64() * total
	for _, id := range ids {
		r -= counts[id]
		if r <= 0 {
			return id
		}
	}
	return ids[len(ids)-1]
}

// Selectivity computes the paper's query selectivity (§V-B):
//
//	1 - (join size including filters) / (join size without filters)
//
// where the filters are the query's constant bindings. The unfiltered join
// size replaces every constant with a fresh variable; both sizes are
// computed exactly with CTJ. Queries whose unfiltered join is empty report
// selectivity 0.
func Selectivity(store *index.Store, q *query.Query) float64 {
	pl, err := query.Compile(q)
	if err != nil {
		return 0
	}
	withF := ctj.Count(store, pl)
	unfiltered := stripConstants(q)
	plU, err := query.CompileUnchecked(unfiltered)
	if err != nil {
		return 0
	}
	withoutF := ctj.Count(store, plU)
	if withoutF == 0 {
		return 0
	}
	return 1 - float64(withF)/float64(withoutF)
}

// AvgGroupSelectivity computes the paper's per-group selectivity, averaged
// over the groups of the exact result (each group adds its own filter
// α = a): 1 - size(filters, α=a)/size(no filters). To bound the cost on
// charts with very many groups, at most maxGroups groups are used (0 means
// all), chosen deterministically by ascending group ID.
func AvgGroupSelectivity(store *index.Store, q *query.Query, exact map[rdf.ID]float64, maxGroups int) float64 {
	if len(exact) == 0 || q.Alpha == query.NoVar {
		return Selectivity(store, q)
	}
	unfiltered := stripConstants(q)
	plU, err := query.CompileUnchecked(unfiltered)
	if err != nil {
		return 0
	}
	withoutF := ctj.Count(store, plU)
	if withoutF == 0 {
		return 0
	}
	ids := make([]rdf.ID, 0, len(exact))
	for id := range exact {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if maxGroups > 0 && len(ids) > maxGroups {
		ids = ids[:maxGroups]
	}
	var sum float64
	for _, a := range ids {
		qa := bindAlpha(q, a)
		pl, err := query.CompileUnchecked(qa)
		if err != nil {
			continue
		}
		withF := ctj.Count(store, pl)
		sum += 1 - float64(withF)/float64(withoutF)
	}
	return sum / float64(len(ids))
}

// bindAlpha replaces the group variable with the constant a and drops the
// grouping.
func bindAlpha(q *query.Query, a rdf.ID) *query.Query {
	nq := &query.Query{Alpha: query.NoVar, Beta: q.Beta, Distinct: q.Distinct}
	for _, p := range q.Patterns {
		sub := func(at query.Atom) query.Atom {
			if at.IsVar() && at.Var == q.Alpha {
				return query.C(a)
			}
			return at
		}
		nq.Patterns = append(nq.Patterns, query.Pattern{S: sub(p.S), P: sub(p.P), O: sub(p.O)})
	}
	return nq
}

// stripConstants replaces every constant atom with a fresh variable.
func stripConstants(q *query.Query) *query.Query {
	next := query.Var(q.NumVars())
	nq := &query.Query{Alpha: q.Alpha, Beta: q.Beta, Distinct: q.Distinct}
	fresh := func(a query.Atom) query.Atom {
		if a.IsVar() {
			return a
		}
		v := next
		next++
		return query.V(v)
	}
	for _, p := range q.Patterns {
		nq.Patterns = append(nq.Patterns, query.Pattern{
			S: fresh(p.S), P: fresh(p.P), O: fresh(p.O),
		})
	}
	return nq
}
