package dist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/shard"
)

// viewRPCTimeout bounds one View round trip so a wedged peer turns into a
// sticky view error instead of a hung walk.
const viewRPCTimeout = 30 * time.Second

// RemoteShard is a shard served by a kgworker elsewhere, implementing
// shard.Remote over one multiplexed connection: every plan-scoped view it
// opens shares the connection, with RPCs serialized request-response.
//
// Failure semantics follow the View contract (internal/shard): View
// methods cannot return errors, so any wire failure is recorded as a
// sticky error on the affected view — which then degrades to empty
// resolutions — and the driver discards the run after checking
// Walker.ViewErr. A failed connection is not transparently redialed for
// existing views (their plan registrations live on the dead connection);
// a later Open starts fresh.
type RemoteShard struct {
	addr string

	mu       sync.Mutex
	c        *conn
	nextPlan uint64
}

// NewRemoteShard returns a lazily-dialed remote shard client for a worker
// address. It implements shard.Remote.
func NewRemoteShard(addr string) *RemoteShard {
	return &RemoteShard{addr: addr}
}

// ensureConn dials and handshakes if no live connection exists. Callers
// hold r.mu.
func (r *RemoteShard) ensureConn() (*conn, error) {
	if r.c != nil {
		return r.c, nil
	}
	nc, err := net.DialTimeout("tcp", r.addr, viewRPCTimeout)
	if err != nil {
		return nil, err
	}
	c := newConn(nc)
	if err := c.writeJSON(MsgHello, helloReq{Proto: ProtoVersion}); err != nil {
		c.Close()
		return nil, err
	}
	nc.SetReadDeadline(time.Now().Add(viewRPCTimeout))
	if _, err := c.expect(MsgHelloOK); err != nil {
		c.Close()
		return nil, err
	}
	nc.SetReadDeadline(time.Time{})
	r.c = c
	return c, nil
}

// dropConn discards a connection after a wire failure. Callers hold r.mu.
func (r *RemoteShard) dropConn() {
	if r.c != nil {
		r.c.Close()
		r.c = nil
	}
}

// rpc performs one serialized request-response round trip.
func (r *RemoteShard) rpc(reqType byte, payload []byte, respType byte) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, err := r.ensureConn()
	if err != nil {
		return nil, err
	}
	if err := c.writeFrame(reqType, payload); err != nil {
		r.dropConn()
		return nil, err
	}
	c.c.SetReadDeadline(time.Now().Add(viewRPCTimeout))
	resp, err := c.expect(respType)
	c.c.SetReadDeadline(time.Time{})
	if err != nil {
		r.dropConn()
		return nil, err
	}
	return resp, nil
}

// Open registers pl with the remote worker and returns its plan-scoped
// View. The worker replies with every static step's pre-resolved span, so
// static resolutions never cross the wire again.
func (r *RemoteShard) Open(pl *query.Plan) (shard.View, error) {
	r.mu.Lock()
	r.nextPlan++
	id := r.nextPlan
	r.mu.Unlock()

	payload, err := encodeJSON(openPlanReq{Plan: id, Query: pl.Query})
	if err != nil {
		return nil, err
	}
	resp, err := r.rpc(MsgOpenPlan, payload, MsgOpenPlanOK)
	if err != nil {
		return nil, fmt.Errorf("dist: opening plan on %s: %w", r.addr, err)
	}
	rb := rbuf{b: resp}
	n := int(rb.u32())
	if rb.err != nil || n != len(pl.Steps) {
		return nil, fmt.Errorf("dist: worker %s acknowledged %d steps, plan has %d", r.addr, n, len(pl.Steps))
	}
	statics := make([]query.StaticSpan, n)
	for i := 0; i < n; i++ {
		flags := rb.u8()
		sp := readSpan(&rb)
		if flags&2 != 0 {
			statics[i] = query.StaticSpan{Span: sp, OK: flags&1 != 0}
		}
	}
	if rb.err != nil {
		return nil, rb.err
	}
	return &remoteView{rs: r, id: id, pl: pl, statics: statics}, nil
}

// Close closes the connection. Views opened through this remote become
// unusable (sticky errors on next use).
func (r *RemoteShard) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropConn()
	return nil
}

// remoteView is the plan-scoped View of one RemoteShard. It serves static
// steps from the spans shipped at Open time and everything else over the
// wire; wire failures set the sticky error and degrade to empty results.
type remoteView struct {
	rs      *RemoteShard
	id      uint64
	pl      *query.Plan
	statics []query.StaticSpan

	mu  sync.Mutex
	err error
}

// Err returns the view's sticky error — the shard.View error convention
// drivers check through Walker.ViewErr after a run.
func (v *remoteView) Err() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.err
}

func (v *remoteView) fail(err error) {
	v.mu.Lock()
	if v.err == nil {
		v.err = fmt.Errorf("dist: shard at %s: %w", v.rs.addr, err)
	}
	v.mu.Unlock()
}

func (v *remoteView) Resolve(i int, b query.Bindings) (index.Span, bool) {
	if v.pl.Steps[i].Static {
		ss := v.statics[i]
		return ss.Span, ss.OK
	}
	wb := wbuf{}
	wb.u64(v.id)
	wb.u32(uint32(i))
	wb.u32(uint32(len(b)))
	for _, id := range b {
		wb.u32(uint32(id))
	}
	resp, err := v.rs.rpc(MsgResolve, wb.b, MsgResolveOK)
	if err != nil {
		v.fail(err)
		return index.Span{}, false
	}
	rb := rbuf{b: resp}
	ok := rb.u8() != 0
	sp := readSpan(&rb)
	if rb.err != nil {
		v.fail(rb.err)
		return index.Span{}, false
	}
	return sp, ok
}

func (v *remoteView) At(i int, sp index.Span, n int) rdf.Triple {
	wb := wbuf{}
	wb.u64(v.id)
	wb.u32(uint32(i))
	appendSpan(&wb, sp)
	wb.u32(uint32(n))
	resp, err := v.rs.rpc(MsgAt, wb.b, MsgAtOK)
	if err != nil {
		v.fail(err)
		return rdf.Triple{}
	}
	rb := rbuf{b: resp}
	t := readTriple(&rb)
	if rb.err != nil {
		v.fail(rb.err)
		return rdf.Triple{}
	}
	return t
}

func (v *remoteView) Read(i int, sp index.Span, off, max int, buf []rdf.Triple) []rdf.Triple {
	wb := wbuf{}
	wb.u64(v.id)
	wb.u32(uint32(i))
	appendSpan(&wb, sp)
	wb.u32(uint32(off))
	wb.u32(uint32(max))
	resp, err := v.rs.rpc(MsgRead, wb.b, MsgReadOK)
	if err != nil {
		v.fail(err)
		return buf
	}
	rb := rbuf{b: resp}
	n := rb.count(tripleBytes)
	for j := 0; j < n; j++ {
		buf = append(buf, readTriple(&rb))
	}
	if rb.err != nil {
		v.fail(rb.err)
	}
	return buf
}

func (v *remoteView) Contains(t rdf.Triple) bool {
	wb := wbuf{}
	appendTriple(&wb, t)
	resp, err := v.rs.rpc(MsgContains, wb.b, MsgContainsOK)
	if err != nil {
		v.fail(err)
		return false
	}
	if len(resp) < 1 {
		v.fail(fmt.Errorf("dist: empty Contains response"))
		return false
	}
	return resp[0] != 0
}
