// Package dist runs the sharded scatter-gather of internal/shard across
// processes: kgworker serves one shard of a .kgm set over a small TCP
// protocol, and a Coordinator performs the stratified budget allocation,
// streams progressive per-stratum snapshots back through the exec.Drive
// contract, merges confidence intervals with wj.MergeStratified, and on
// worker loss re-allocates the lost stratum to a surviving worker.
//
// # Wire protocol
//
// Every message is one length-prefixed frame
//
//	u32le payload length | u8 message type | payload
//
// capped at 64 MiB. Control payloads are JSON (they are small and evolve);
// data payloads — accumulators, triples, spans — are little-endian binary
// mirroring internal/rdf's fixed-width encoding, because they sit on the
// per-snapshot and per-resolution hot paths. The protocol is strictly
// client-initiated: every frame from a worker answers a client frame,
// except during a run, where the worker streams MsgSnap frames (doubling
// as heartbeats for the coordinator's stall detector) and one terminal
// MsgDone or MsgErr while listening for MsgCancel.
//
// The protocol trusts its peers: workers validate queries but accept plans,
// budgets and swap paths from any connection, and the coordinator takes
// worker-supplied statistics at face value. Deployments must treat worker
// addresses like database sockets — reachable only from the serving tier.
// See DESIGN.md "Distributed scatter-gather" for the full trust model.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/wj"
)

// ProtoVersion gates the handshake: both sides must speak the same version.
// Version 2 added FILTER predicates to the query payloads; a v1 worker would
// decode a filtered query by silently DROPPING the unknown Filters field and
// return unfiltered (biased) strata, so the bump is a correctness gate, not
// a formality.
const ProtoVersion = 2

// MaxFrame bounds one frame's payload; larger frames are a protocol error.
const MaxFrame = 64 << 20

// Message types.
const (
	MsgErr        = 0x00 // JSON errPayload
	MsgHello      = 0x01 // JSON helloReq
	MsgHelloOK    = 0x02 // JSON helloResp
	MsgPing       = 0x03 // empty
	MsgPong       = 0x04 // empty
	MsgInfo       = 0x05 // JSON infoReq
	MsgInfoOK     = 0x06 // JSON infoResp
	MsgRun        = 0x07 // JSON runReq
	MsgSnap       = 0x08 // binary: u32 seq | u8 count | count × acc (0 = heartbeat)
	MsgDone       = 0x09 // binary: u32 jsonLen | JSON runDone | u8 count | count × acc
	MsgCancel     = 0x0A // empty (client -> worker, mid-run)
	MsgExact      = 0x0B // JSON exactReq
	MsgExactOK    = 0x0C // binary: u32 n | n * (u32 id | f64 value)
	MsgStats      = 0x0D // empty
	MsgStatsOK    = 0x0E // JSON WorkerStats
	MsgSwapPrep   = 0x0F // JSON swapReq
	MsgSwapReady  = 0x10 // JSON swapInfo
	MsgSwapCommit = 0x11 // empty
	MsgSwapAbort  = 0x12 // empty
	MsgSwapOK     = 0x13 // empty
	MsgOpenPlan   = 0x14 // JSON openPlanReq
	MsgOpenPlanOK = 0x15 // binary: u32 nsteps | nsteps * (u8 static<<1|ok | i64 lo | i64 hi)
	MsgResolve    = 0x16 // binary: u64 plan | u32 step | u32 nvars | nvars * u32
	MsgResolveOK  = 0x17 // binary: u8 ok | i64 lo | i64 hi
	MsgRead       = 0x18 // binary: u64 plan | u32 step | i64 lo | i64 hi | u32 off | u32 max
	MsgReadOK     = 0x19 // binary: u32 n | n * 3 * u32
	MsgAt         = 0x1A // binary: u64 plan | u32 step | i64 lo | i64 hi | u32 n
	MsgAtOK       = 0x1B // binary: 3 * u32
	MsgContains   = 0x1C // binary: 3 * u32
	MsgContainsOK = 0x1D // binary: u8
)

// Control payloads (JSON).

type errPayload struct {
	Msg string `json:"msg"`
}

type helloReq struct {
	Proto int `json:"proto"`
}

type helloResp struct {
	Proto      int    `json:"proto"`
	Shards     int    `json:"shards"`
	Stratum    int    `json:"stratum"` // the shard this worker roots walks in; -1 = any (replicate)
	Placement  string `json:"placement"`
	ConfigHash uint32 `json:"config_hash"`
	DictLen    int    `json:"dict_len"`
	Epoch      int64  `json:"epoch"`
}

type infoReq struct {
	Query     *query.Query `json:"query"`
	Strata    []int        `json:"strata"`
	Estimator string       `json:"estimator,omitempty"`
}

type infoResp struct {
	// RootCards aligns with the request's Strata.
	RootCards []int64 `json:"root_cards"`
	// DistinctNotOwned marks a COUNT(DISTINCT) plan the stratified
	// estimator cannot serve (shard.Owned is false); the coordinator falls
	// back to a worker-side exact evaluation.
	DistinctNotOwned bool `json:"distinct_not_owned,omitempty"`
}

type runReq struct {
	Query          *query.Query `json:"query"`
	Stratum        int          `json:"stratum"`
	Seeds          []int64      `json:"seeds"` // one walker per seed
	MaxWalksPerW   int64        `json:"max_walks_per_walker,omitempty"`
	Batch          int          `json:"batch,omitempty"`
	BudgetMillis   int64        `json:"budget_millis,omitempty"`
	IntervalMillis int64        `json:"interval_millis,omitempty"`
	Threshold      float64      `json:"threshold"`
	Estimator      string       `json:"estimator,omitempty"`
	// Stratify asks the worker to nest semantic root strata
	// (characteristic-set buckets) inside its shard stratum: each snapshot
	// and the done frame then carry one accumulator per sub-stratum, which
	// the coordinator flat-merges as independent strata. MaxStrata caps the
	// sub-strata (< 2 selects index.DefaultMaxStrata).
	Stratify  bool `json:"stratify,omitempty"`
	MaxStrata int  `json:"max_strata,omitempty"`
}

// runDone is the JSON trailer of MsgDone: the stratum's run statistics,
// mirroring one shard.ShardRunStats plus cache and tipping diagnostics.
type runDone struct {
	RootCard    int64           `json:"root_card"`
	Walks       int64           `json:"walks"`
	Tipped      int64           `json:"tipped"`
	CacheHits   int64           `json:"cache_hits"`
	CacheMisses int64           `json:"cache_misses"`
	Tips        json.RawMessage `json:"tips,omitempty"` // core.TipDiag
	// Strata is the number of semantic sub-strata the worker ran (1 when
	// the shard did not stratify).
	Strata int `json:"strata,omitempty"`
}

type exactReq struct {
	Query *query.Query `json:"query"`
	// Union, when non-nil, asks for the exact cross-branch union evaluation
	// instead (Query is then ignored). Added with ProtoVersion 2: one worker
	// evaluates all branches against its hybrid-resolver view of the whole
	// set, sharing the DISTINCT dedup set and AVG numerator/denominator
	// across branches — semantics no merge of per-branch results can give.
	Union        *query.UnionQuery `json:"union,omitempty"`
	BudgetMillis int64             `json:"budget_millis,omitempty"`
}

type swapReq struct {
	// Path is the manifest (.kgm) path on the WORKER's filesystem.
	Path string `json:"path"`
	Mmap bool   `json:"mmap"`
}

type swapInfo struct {
	Epoch      int64  `json:"epoch"`
	Shards     int    `json:"shards"`
	ConfigHash uint32 `json:"config_hash"`
	DictLen    int    `json:"dict_len"`
}

type openPlanReq struct {
	Plan  uint64       `json:"plan"`
	Query *query.Query `json:"query"`
}

// WorkerStats is a worker's self-report, used by /healthz.
type WorkerStats struct {
	Addr         string `json:"addr"`
	Placement    string `json:"placement"`
	Stratum      int    `json:"stratum"`
	Shards       int    `json:"shards"`
	Epoch        int64  `json:"epoch"`
	Triples      int    `json:"triples"`
	ActiveRuns   int64  `json:"active_runs"`
	TotalRuns    int64  `json:"total_runs"`
	TotalWalks   int64  `json:"total_walks"`
	WireIn       int64  `json:"wire_in_bytes"`
	WireOut      int64  `json:"wire_out_bytes"`
	Swaps        int64  `json:"swaps"`
	UptimeMillis int64  `json:"uptime_millis"`
}

// conn wraps a net.Conn with frame I/O and byte accounting. Reads and
// writes are not internally locked; callers own the concurrency discipline
// (one reader, writes under the caller's mutex where needed).
type conn struct {
	c       net.Conn
	in, out atomic.Int64
	wmu     sync.Mutex // serializes writeFrame (run streams write from two goroutines)
	rbuf    []byte
	hdr     [5]byte
}

func newConn(c net.Conn) *conn { return &conn{c: c} }

func (c *conn) Close() error { return c.c.Close() }

// writeFrame sends one frame. Safe for concurrent use.
func (c *conn) writeFrame(typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("dist: frame of %d bytes exceeds the %d limit", len(payload), MaxFrame)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := c.c.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.c.Write(payload); err != nil {
			return err
		}
	}
	c.out.Add(int64(len(payload) + 5))
	return nil
}

func (c *conn) writeJSON(typ byte, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return c.writeFrame(typ, data)
}

func (c *conn) writeErr(err error) error {
	data, _ := json.Marshal(errPayload{Msg: err.Error()})
	return c.writeFrame(MsgErr, data)
}

// readFrame reads one frame. The returned payload aliases an internal
// buffer valid until the next readFrame. Single-reader only.
func (c *conn) readFrame() (byte, []byte, error) {
	if _, err := io.ReadFull(c.c, c.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(c.hdr[:4])
	typ := c.hdr[4]
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("dist: incoming frame of %d bytes exceeds the %d limit", n, MaxFrame)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	buf := c.rbuf[:n]
	if n > 0 {
		if _, err := io.ReadFull(c.c, buf); err != nil {
			return 0, nil, err
		}
	}
	c.in.Add(int64(n) + 5)
	return typ, buf, nil
}

// expect reads one frame and fails unless it has the wanted type; MsgErr
// frames surface as errors.
func (c *conn) expect(want byte) ([]byte, error) {
	typ, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	if typ == MsgErr {
		var ep errPayload
		if json.Unmarshal(payload, &ep) == nil && ep.Msg != "" {
			return nil, fmt.Errorf("dist: remote error: %s", ep.Msg)
		}
		return nil, fmt.Errorf("dist: remote error")
	}
	if typ != want {
		return nil, fmt.Errorf("dist: unexpected message type 0x%02x, want 0x%02x", typ, want)
	}
	return payload, nil
}

// Binary codecs. All little-endian, mirroring internal/rdf's fixed-width
// triple encoding (u32 IDs).

type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)     { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }

type rbuf struct {
	b   []byte
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("dist: truncated binary payload")
	}
}

func (r *rbuf) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *rbuf) i64() int64   { return int64(r.u64()) }
func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }

// maxWireEntries bounds decoded map sizes against hostile or corrupt
// frames: a count cannot promise more entries than the payload can hold.
func (r *rbuf) count(entryBytes int) int {
	n := int(r.u32())
	if r.err == nil && n*entryBytes > len(r.b) {
		r.fail()
		return 0
	}
	return n
}

// Accumulator codec: the per-snapshot payload. Layout:
//
//	u8 flags (1 distinct, 2 has-den)
//	i64 N | i64 Rejected | i64 Dedup
//	u32 |Sum|   then per group: u32 id | f64 sum | f64 sumsq
//	[den]       u32 |Den|  then per group: u32 id | f64
//	[distinct]  u32 |Vals| then per pair: u64 key | f64 contribution | i64 hits
func appendAcc(b []byte, a *wj.Acc) []byte {
	w := wbuf{b: b}
	var flags byte
	if a.Distinct {
		flags |= 1
	}
	if a.Den != nil {
		flags |= 2
	}
	w.u8(flags)
	w.i64(a.N)
	w.i64(a.Rejected)
	w.i64(a.Dedup)
	w.u32(uint32(len(a.Sum)))
	for id, s := range a.Sum {
		w.u32(uint32(id))
		w.f64(s)
		w.f64(a.SumSq[id])
	}
	if a.Den != nil {
		w.u32(uint32(len(a.Den)))
		for id, d := range a.Den {
			w.u32(uint32(id))
			w.f64(d)
		}
	}
	if a.Distinct {
		w.u32(uint32(len(a.Vals)))
		for key, v := range a.Vals {
			w.u64(key)
			w.f64(v.Contribution)
			w.i64(v.Hits)
		}
	}
	return w.b
}

func decodeAcc(r *rbuf) (*wj.Acc, error) {
	flags := r.u8()
	a := wj.NewAcc()
	a.Distinct = flags&1 != 0
	a.N = r.i64()
	a.Rejected = r.i64()
	a.Dedup = r.i64()
	for n := r.count(20); n > 0 && r.err == nil; n-- {
		id := rdf.ID(r.u32())
		a.Sum[id] = r.f64()
		a.SumSq[id] = r.f64()
	}
	if flags&2 != 0 {
		a.Den = make(map[rdf.ID]float64)
		for n := r.count(12); n > 0 && r.err == nil; n-- {
			id := rdf.ID(r.u32())
			a.Den[id] = r.f64()
		}
	}
	if a.Distinct {
		a.Vals = make(map[uint64]wj.DistinctVal)
		for n := r.count(24); n > 0 && r.err == nil; n-- {
			key := r.u64()
			v := wj.DistinctVal{Contribution: r.f64(), Hits: r.i64()}
			a.Vals[key] = v
		}
	}
	return a, r.err
}

// Group-map codec (MsgExactOK).
func appendGroups(b []byte, groups map[rdf.ID]float64) []byte {
	w := wbuf{b: b}
	w.u32(uint32(len(groups)))
	for id, v := range groups {
		w.u32(uint32(id))
		w.f64(v)
	}
	return w.b
}

func decodeGroups(r *rbuf) (map[rdf.ID]float64, error) {
	out := make(map[rdf.ID]float64)
	for n := r.count(12); n > 0 && r.err == nil; n-- {
		id := rdf.ID(r.u32())
		out[id] = r.f64()
	}
	return out, r.err
}

// Span and triple helpers.

// tripleBytes is the wire size of one encoded triple (3 × u32).
const tripleBytes = 12

// encodeJSON marshals a control payload for a caller that wants the raw
// bytes (writeJSON covers the common write-immediately path).
func encodeJSON(v any) ([]byte, error) { return json.Marshal(v) }

func appendSpan(w *wbuf, sp index.Span) {
	w.i64(int64(sp.Lo))
	w.i64(int64(sp.Hi))
}

func readSpan(r *rbuf) index.Span {
	lo := r.i64()
	hi := r.i64()
	return index.Span{Lo: int(lo), Hi: int(hi)}
}

func appendTriple(w *wbuf, t rdf.Triple) {
	w.u32(uint32(t.S))
	w.u32(uint32(t.P))
	w.u32(uint32(t.O))
}

func readTriple(r *rbuf) rdf.Triple {
	return rdf.Triple{S: rdf.ID(r.u32()), P: rdf.ID(r.u32()), O: rdf.ID(r.u32())}
}
