package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kgexplore/internal/card"
	"kgexplore/internal/core"
	"kgexplore/internal/exec"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/shard"
	"kgexplore/internal/stats"
	"kgexplore/internal/wj"
)

// dialTimeout bounds connection establishment to a worker.
const dialTimeout = 10 * time.Second

// minStallTimeout floors the per-frame read deadline of a run stream.
// Workers heartbeat at least every 500ms, so two seconds of silence means
// the worker is gone or wedged, not merely busy.
const minStallTimeout = 2 * time.Second

// workerRef is the coordinator's handle on one fleet member.
type workerRef struct {
	addr      string
	placement string
	stratum   int // own placement: the one stratum this worker roots; -1 = any
	down      atomic.Bool
	lastErr   atomic.Pointer[string]

	runs   atomic.Int64
	wireIn atomic.Int64
	wireOu atomic.Int64
}

func (w *workerRef) canServe(stratum int) bool {
	return w.stratum < 0 || w.stratum == stratum
}

func (w *workerRef) fail(err error) {
	w.down.Store(true)
	s := err.Error()
	w.lastErr.Store(&s)
}

// Coordinator drives distributed scatter-gather over a fleet of kgworkers:
// stratified budget allocation proportional to per-shard root cardinality,
// one run stream per stratum with progressive merged snapshots through the
// exec.Drive contract, CI merging via wj.MergeStratified, and stratum
// re-allocation to surviving workers on worker loss.
type Coordinator struct {
	workers    []*workerRef
	k          int
	configHash uint32
	dictLen    int

	totalRuns atomic.Int64
	retries   atomic.Int64
	retrySeq  atomic.Int64
}

// Dial connects to every worker address, handshakes, and verifies the
// fleet serves one coherent shard set: same shard count, same manifest
// config hash, same dictionary length. Every worker must be reachable at
// dial time; losing one later is handled by per-run re-allocation.
func Dial(ctx context.Context, addrs []string) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: no worker addresses")
	}
	c := &Coordinator{}
	for i, addr := range addrs {
		hello, err := helloWorker(ctx, addr)
		if err != nil {
			return nil, fmt.Errorf("dist: worker %s: %w", addr, err)
		}
		if i == 0 {
			c.k = hello.Shards
			c.configHash = hello.ConfigHash
			c.dictLen = hello.DictLen
		} else if hello.Shards != c.k || hello.ConfigHash != c.configHash || hello.DictLen != c.dictLen {
			return nil, fmt.Errorf(
				"dist: worker %s serves %d shards / config %08x / dict %d, fleet has %d / %08x / %d — mixed shard sets",
				addr, hello.Shards, hello.ConfigHash, hello.DictLen, c.k, c.configHash, c.dictLen)
		}
		c.workers = append(c.workers, &workerRef{
			addr:      addr,
			placement: hello.Placement,
			stratum:   hello.Stratum,
		})
	}
	// Every stratum must have at least one worker able to root it.
	for k := 0; k < c.k; k++ {
		if c.pick(k, nil) == nil {
			return nil, fmt.Errorf("dist: no worker can serve stratum %d", k)
		}
	}
	return c, nil
}

func helloWorker(ctx context.Context, addr string) (*helloResp, error) {
	cc, err := dialConn(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer cc.Close()
	if err := cc.writeJSON(MsgHello, helloReq{Proto: ProtoVersion}); err != nil {
		return nil, err
	}
	payload, err := cc.expect(MsgHelloOK)
	if err != nil {
		return nil, err
	}
	var hello helloResp
	if err := json.Unmarshal(payload, &hello); err != nil {
		return nil, err
	}
	if hello.Proto != ProtoVersion {
		return nil, fmt.Errorf("dist: worker speaks protocol %d, want %d", hello.Proto, ProtoVersion)
	}
	return &hello, nil
}

func dialConn(ctx context.Context, addr string) (*conn, error) {
	d := net.Dialer{Timeout: dialTimeout}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return newConn(nc), nil
}

// K returns the fleet's shard count.
func (c *Coordinator) K() int { return c.k }

// DictLen returns the fleet's shared dictionary length.
func (c *Coordinator) DictLen() int { return c.dictLen }

// Workers returns the fleet's worker addresses.
func (c *Coordinator) Workers() []string {
	out := make([]string, len(c.workers))
	for i, w := range c.workers {
		out[i] = w.addr
	}
	return out
}

// pick returns the preferred live worker for a stratum, rotating the
// starting point by stratum so load spreads, skipping workers in tried.
// nil means no live worker can serve the stratum.
func (c *Coordinator) pick(stratum int, tried map[*workerRef]bool) *workerRef {
	n := len(c.workers)
	for off := 0; off < n; off++ {
		w := c.workers[(stratum+off)%n]
		if w.down.Load() || tried[w] || !w.canServe(stratum) {
			continue
		}
		return w
	}
	return nil
}

// RunOptions configure one distributed run, mirroring shard.ScatterOptions
// with the estimator passed by name (it is constructed worker-side).
type RunOptions struct {
	// Threshold is the Audit Join tipping point (core.Options semantics).
	Threshold float64
	// Seed is the base seed; walker w of stratum k derives
	// core.WorkerSeed(Seed, k*WorkersPerShard+w) — the same derivation
	// shard.RunScatter uses, which is what makes a distributed run
	// bit-identical to the in-process one under equal quotas.
	Seed int64
	// WorkersPerShard sizes each stratum's worker-side walker pool.
	WorkersPerShard int
	// Estimator names the cardinality estimator ("" = span statistics).
	Estimator string
	// StallTimeout is how long a run stream may be silent before its
	// worker is declared lost. Zero derives max(3×Interval, 2s).
	StallTimeout time.Duration
	// Stratify asks every worker to nest semantic root strata
	// (characteristic-set buckets, shard.SubStrata) inside its shard
	// stratum; snapshots then stream one accumulator per sub-stratum and
	// the coordinator flat-merges all leaves. MaxStrata caps the sub-strata
	// per shard (< 2 selects index.DefaultMaxStrata).
	Stratify  bool
	MaxStrata int
}

// RetryRecord documents one stratum re-allocation after worker loss.
type RetryRecord struct {
	Stratum int    `json:"stratum"`
	From    string `json:"from"`
	To      string `json:"to"`
	Err     string `json:"err"`
}

// RunStats extends shard.ScatterStats with the distribution telemetry the
// ISSUE's observability contract needs: which worker served each stratum,
// every re-allocation, and wire traffic.
type RunStats struct {
	shard.ScatterStats
	// StratumWorkers[k] is the address that delivered stratum k's result
	// ("" for empty strata).
	StratumWorkers []string `json:"stratum_workers"`
	// Reallocations lists each worker-loss retry, aligned with
	// ScatterStats.Retries.
	Reallocations []RetryRecord `json:"reallocations,omitempty"`
	WireInBytes   int64         `json:"wire_in_bytes"`
	WireOutBytes  int64         `json:"wire_out_bytes"`
}

// stratumResult is one stratum's completed run. accs holds one
// accumulator per semantic sub-stratum (exactly one when the shard did not
// stratify).
type stratumResult struct {
	accs []*wj.Acc
	done runDone
	addr string
}

// Run executes one distributed scatter-gather. The contract matches
// shard.RunScatter: xopts.MaxWalks is the TOTAL walk budget split across
// strata proportionally to root cardinality, Budget is the shared
// wall-clock deadline, progressive snapshots merge all strata and flow
// through xopts.OnSnapshot (returning false cancels the fleet), and the
// final result merges CIs with wj.MergeStratified. On worker loss the lost
// stratum re-runs in full on a surviving worker with fresh seeds.
func (c *Coordinator) Run(ctx context.Context, q *query.Query, opts RunOptions, xopts exec.Options) (_ wj.Result, rstats RunStats, _ error) {
	pl, err := compileWire(q)
	if err != nil {
		return wj.Result{}, RunStats{}, err
	}
	K := c.k
	rstats = RunStats{
		ScatterStats: shard.ScatterStats{
			PerShard:  make([]shard.ShardRunStats, K),
			Estimator: estimatorName(opts.Estimator),
		},
		StratumWorkers: make([]string, K),
	}
	c.totalRuns.Add(1)

	var wireIn, wireOut atomic.Int64
	settle := func() {
		rstats.WireInBytes = wireIn.Load()
		rstats.WireOutBytes = wireOut.Load()
	}
	defer settle()

	if q.Distinct && !shard.Owned(pl) {
		rstats.ExactFallback = true
		res, err := c.runExact(ctx, q, nil, xopts, &wireIn, &wireOut)
		if err == nil && xopts.OnSnapshot != nil {
			xopts.OnSnapshot(exec.Progress{Seq: 1, Snapshot: res, Final: true})
		}
		return res, rstats, err
	}
	rstats.OwnedDistinct = q.Distinct

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	wps := opts.WorkersPerShard
	if wps < 1 {
		wps = 1
	}

	// Phase 1: per-stratum root cardinalities, grouped by assigned worker.
	cards, err := c.rootCards(ctx, q, opts, &wireIn, &wireOut, &rstats)
	if err != nil {
		return wj.Result{}, rstats, err
	}
	total := 0
	for k := 0; k < K; k++ {
		rstats.PerShard[k].RootCard = int(cards[k])
		total += int(cards[k])
	}
	if total == 0 {
		res := wj.MergeStratified(nil, stats.Z95)
		if xopts.OnSnapshot != nil {
			xopts.OnSnapshot(exec.Progress{Seq: 1, Snapshot: res, Final: true})
		}
		return res, rstats, nil
	}

	// Phase 2: allocation — shard.RunScatter's proportional quota and batch
	// math, verbatim, so equal seeds yield equal walks.
	base := xopts.Batch
	if base <= 0 {
		base = exec.DefaultBatch
	}
	active := 0
	for k := 0; k < K; k++ {
		if cards[k] > 0 {
			active++
		}
	}
	reqs := make([]runReq, K)
	for k := 0; k < K; k++ {
		if cards[k] == 0 {
			continue
		}
		share := float64(cards[k]) / float64(total)
		var pw int64
		if xopts.MaxWalks > 0 {
			quota := int64(float64(xopts.MaxWalks)*share + 0.5)
			if quota < 1 {
				quota = 1
			}
			pw = quota / int64(wps)
			if pw < 1 {
				pw = 1
			}
		}
		b := int(float64(base) * share * float64(active))
		if b < 1 {
			b = 1
		}
		if b > 8192 {
			b = 8192
		}
		seeds := make([]int64, wps)
		for j := 0; j < wps; j++ {
			seeds[j] = core.WorkerSeed(opts.Seed, k*wps+j)
		}
		reqs[k] = runReq{
			Query:          q,
			Stratum:        k,
			Seeds:          seeds,
			MaxWalksPerW:   pw,
			Batch:          b,
			BudgetMillis:   xopts.Budget.Milliseconds(),
			IntervalMillis: xopts.Interval.Milliseconds(),
			Threshold:      opts.Threshold,
			Estimator:      opts.Estimator,
			Stratify:       opts.Stratify,
			MaxStrata:      opts.MaxStrata,
		}
	}

	stall := opts.StallTimeout
	if stall <= 0 {
		stall = 3 * xopts.Interval
		if stall < minStallTimeout {
			stall = minStallTimeout
		}
	}

	// Phase 3: one stream per non-empty stratum, with retry re-allocation.
	var mu sync.Mutex // guards latest, finals, rstats.Reallocations
	latest := make([][]*wj.Acc, K)
	finals := make([]*stratumResult, K)
	var stopped atomic.Bool

	mergedLocked := func() wj.Result {
		accs := make([]*wj.Acc, 0, K)
		for k := 0; k < K; k++ {
			if cards[k] == 0 {
				continue
			}
			if f := finals[k]; f != nil {
				accs = append(accs, f.accs...)
			} else if latest[k] != nil {
				accs = append(accs, latest[k]...)
			}
		}
		return wj.MergeStratified(accs, stats.Z95)
	}

	start := time.Now()
	seq := 0
	onSnap := xopts.OnSnapshot
	publish := func(final bool) bool {
		mu.Lock()
		merged := mergedLocked()
		mu.Unlock()
		seq++
		ok := onSnap(exec.Progress{
			Seq:      seq,
			Elapsed:  time.Since(start),
			Walks:    merged.Walks,
			Snapshot: merged,
			Final:    final,
		})
		if !ok {
			stopped.Store(true)
			cancel()
		}
		return ok
	}
	pubStop := make(chan struct{})
	var pubWG sync.WaitGroup
	if onSnap != nil && xopts.Interval > 0 {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			ticker := time.NewTicker(xopts.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-pubStop:
					return
				case <-ticker.C:
					if !publish(false) {
						return
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make([]error, K)
	for k := 0; k < K; k++ {
		if cards[k] == 0 {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = c.runStratum(ctx, k, reqs[k], wps, opts.Seed, stall, &wireIn, &wireOut,
				func(a []*wj.Acc) {
					mu.Lock()
					latest[k] = a
					mu.Unlock()
				},
				func(r *stratumResult) {
					mu.Lock()
					finals[k] = r
					mu.Unlock()
				},
				func(rec RetryRecord) {
					mu.Lock()
					rstats.Reallocations = append(rstats.Reallocations, rec)
					rstats.Retries++
					mu.Unlock()
					c.retries.Add(1)
				})
		}(k)
	}
	wg.Wait()
	close(pubStop)
	pubWG.Wait()

	// Finish: strata k-ascending, empty strata skipped — shard.RunScatter's
	// merge order.
	mu.Lock()
	accs := make([]*wj.Acc, 0, K)
	for k := 0; k < K; k++ {
		if cards[k] == 0 {
			continue
		}
		f := finals[k]
		if f == nil {
			accs = append(accs, latest[k]...) // stopped early: best progressive state
			continue
		}
		accs = append(accs, f.accs...)
		rstats.Strata += f.done.Strata
		rstats.PerShard[k].Walks = f.done.Walks
		rstats.PerShard[k].Tipped = f.done.Tipped
		rstats.Cache.Hits += f.done.CacheHits
		rstats.Cache.Misses += f.done.CacheMisses
		rstats.StratumWorkers[k] = f.addr
		if len(f.done.Tips) > 0 {
			var tips core.TipDiag
			if json.Unmarshal(f.done.Tips, &tips) == nil {
				rstats.Tips.Merge(tips)
			}
		}
	}
	mu.Unlock()
	res := wj.MergeStratified(accs, stats.Z95)

	for _, err := range errs {
		if err != nil && !(stopped.Load() && errors.Is(err, context.Canceled)) {
			return res, rstats, err
		}
	}
	if onSnap != nil && !stopped.Load() {
		seq++
		onSnap(exec.Progress{
			Seq:      seq,
			Elapsed:  time.Since(start),
			Walks:    res.Walks,
			Snapshot: res,
			Final:    true,
		})
	}
	return res, rstats, nil
}

func estimatorName(name string) string {
	if name == "" {
		return card.EstimatorSpan
	}
	return name
}

// rootCards fans the cardinality probe out, grouping strata by their
// preferred worker and re-asking survivors for a failed worker's strata.
func (c *Coordinator) rootCards(ctx context.Context, q *query.Query, opts RunOptions, wireIn, wireOut *atomic.Int64, rstats *RunStats) ([]int64, error) {
	cards := make([]int64, c.k)
	pending := make([]int, 0, c.k)
	for k := 0; k < c.k; k++ {
		pending = append(pending, k)
	}
	for attempt := 0; len(pending) > 0; attempt++ {
		if attempt > len(c.workers) {
			return nil, fmt.Errorf("dist: no live worker can report root cardinalities for strata %v", pending)
		}
		// Group the pending strata by preferred worker.
		groups := make(map[*workerRef][]int)
		for _, k := range pending {
			w := c.pick(k, nil)
			if w == nil {
				return nil, fmt.Errorf("dist: no live worker can serve stratum %d", k)
			}
			groups[w] = append(groups[w], k)
		}
		pending = pending[:0]
		for w, strata := range groups {
			got, err := c.infoOne(ctx, w, q, strata, opts.Estimator, wireIn, wireOut)
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				w.fail(err)
				pending = append(pending, strata...)
				continue
			}
			if got.DistinctNotOwned {
				return nil, shard.ErrDistinctNotOwned
			}
			if len(got.RootCards) != len(strata) {
				return nil, fmt.Errorf("dist: worker %s reported %d cardinalities for %d strata", w.addr, len(got.RootCards), len(strata))
			}
			for i, k := range strata {
				cards[k] = got.RootCards[i]
			}
		}
	}
	return cards, nil
}

func (c *Coordinator) infoOne(ctx context.Context, w *workerRef, q *query.Query, strata []int, estimator string, wireIn, wireOut *atomic.Int64) (*infoResp, error) {
	cc, err := dialConn(ctx, w.addr)
	if err != nil {
		return nil, err
	}
	defer func() {
		wireIn.Add(cc.in.Load())
		wireOut.Add(cc.out.Load())
		w.wireIn.Add(cc.in.Load())
		w.wireOu.Add(cc.out.Load())
		cc.Close()
	}()
	if err := cc.writeJSON(MsgInfo, infoReq{Query: q, Strata: strata, Estimator: estimator}); err != nil {
		return nil, err
	}
	cc.c.SetReadDeadline(time.Now().Add(dialTimeout))
	payload, err := cc.expect(MsgInfoOK)
	if err != nil {
		return nil, err
	}
	var resp infoResp
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// runStratum drives one stratum to completion, re-allocating to surviving
// workers when the serving worker is lost. A retry discards the lost
// worker's partial accumulator and re-runs the stratum's full quota under
// FRESH seeds (offset past every first-attempt seed), keeping the stratum
// estimate unbiased — partial streams must not be merged with a re-run
// because the overlapping walks would be double-counted.
func (c *Coordinator) runStratum(ctx context.Context, k int, req runReq, wps int, baseSeed int64, stall time.Duration, wireIn, wireOut *atomic.Int64, onAcc func([]*wj.Acc), onDone func(*stratumResult), onRetry func(RetryRecord)) error {
	tried := make(map[*workerRef]bool)
	var prev *workerRef
	for {
		w := c.pick(k, tried)
		if w == nil {
			// Everyone tried: allow re-use of still-up workers (a worker that
			// merely returned a query error would fail again, so only retry
			// the fleet once over).
			return fmt.Errorf("dist: stratum %d: no live worker left to run it", k)
		}
		if prev != nil {
			onRetry(RetryRecord{Stratum: k, From: prev.addr, To: w.addr, Err: prevErr(prev)})
			// Fresh, non-overlapping seeds for the re-run.
			rs := c.retrySeq.Add(1)
			seeds := make([]int64, wps)
			for j := 0; j < wps; j++ {
				seeds[j] = core.WorkerSeed(baseSeed, c.k*wps+int(rs)*wps+j)
			}
			req.Seeds = seeds
		}
		err := c.streamRun(ctx, w, k, req, stall, wireIn, wireOut, onAcc, onDone)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		w.fail(err)
		tried[w] = true
		// Discard the lost worker's partial progressive state.
		onAcc(nil)
		prev = w
	}
}

func prevErr(w *workerRef) string {
	if s := w.lastErr.Load(); s != nil {
		return *s
	}
	return ""
}

// streamRun opens one run stream and consumes it to MsgDone.
func (c *Coordinator) streamRun(ctx context.Context, w *workerRef, k int, req runReq, stall time.Duration, wireIn, wireOut *atomic.Int64, onAcc func([]*wj.Acc), onDone func(*stratumResult)) error {
	cc, err := dialConn(ctx, w.addr)
	if err != nil {
		return err
	}
	w.runs.Add(1)
	defer func() {
		wireIn.Add(cc.in.Load())
		wireOut.Add(cc.out.Load())
		w.wireIn.Add(cc.in.Load())
		w.wireOu.Add(cc.out.Load())
		cc.Close()
	}()
	// Cancellation: closing the connection is the cancel signal the worker
	// acts on (its run context is bound to the conn).
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			cc.writeFrame(MsgCancel, nil)
			cc.Close()
		case <-watchDone:
		}
	}()

	if err := cc.writeJSON(MsgRun, req); err != nil {
		return err
	}
	for {
		cc.c.SetReadDeadline(time.Now().Add(stall))
		typ, payload, err := cc.readFrame()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dist: stratum %d stream from %s: %w", k, w.addr, err)
		}
		switch typ {
		case MsgSnap:
			rb := rbuf{b: payload}
			_ = rb.u32() // seq
			if n := int(rb.u8()); n > 0 {
				accs := make([]*wj.Acc, 0, n)
				for i := 0; i < n; i++ {
					a, err := decodeAcc(&rb)
					if err != nil {
						return err
					}
					accs = append(accs, a)
				}
				onAcc(accs)
			}
		case MsgDone:
			rb := rbuf{b: payload}
			n := int(rb.u32())
			if rb.err != nil || n > len(rb.b) {
				return fmt.Errorf("dist: malformed done trailer from %s", w.addr)
			}
			var done runDone
			if err := json.Unmarshal(rb.b[:n], &done); err != nil {
				return err
			}
			rb.b = rb.b[n:]
			accs := make([]*wj.Acc, 0, 1)
			for i, na := 0, int(rb.u8()); i < na; i++ {
				acc, err := decodeAcc(&rb)
				if err != nil {
					return err
				}
				accs = append(accs, acc)
			}
			onDone(&stratumResult{accs: accs, done: done, addr: w.addr})
			return nil
		case MsgErr:
			var ep errPayload
			if json.Unmarshal(payload, &ep) == nil && ep.Msg != "" {
				return fmt.Errorf("dist: worker %s: %s", w.addr, ep.Msg)
			}
			return fmt.Errorf("dist: worker %s failed the run", w.addr)
		default:
			return fmt.Errorf("dist: unexpected frame 0x%02x in run stream", typ)
		}
	}
}

// Exact evaluates the plan's exact grouped count on any live worker (the
// engine behind a distributed epoch's ctj/lftj/baseline chart engines),
// retrying on worker loss. budget, when positive, bounds the worker-side
// evaluation; the context cancels it either way.
func (c *Coordinator) Exact(ctx context.Context, q *query.Query, budget time.Duration) (map[rdf.ID]float64, error) {
	var wireIn, wireOut atomic.Int64
	res, err := c.runExact(ctx, q, nil, exec.Options{Budget: budget}, &wireIn, &wireOut)
	if err != nil {
		return nil, err
	}
	return res.Estimates, nil
}

// ExactUnion evaluates a union exactly on one live worker, which shares the
// DISTINCT dedup set and AVG numerator/denominator across branches against
// its hybrid-resolver view of the whole set — the semantics a merge of
// per-branch exact results cannot reproduce. Retries on worker loss like
// Exact.
func (c *Coordinator) ExactUnion(ctx context.Context, u *query.UnionQuery, budget time.Duration) (map[rdf.ID]float64, error) {
	var wireIn, wireOut atomic.Int64
	res, err := c.runExact(ctx, nil, u, exec.Options{Budget: budget}, &wireIn, &wireOut)
	if err != nil {
		return nil, err
	}
	return res.Estimates, nil
}

// runExact evaluates the exact fallback on any live worker (replicate
// workers hold the whole set; own-placement workers reach peers through
// their hybrid resolver), retrying on worker loss.
func (c *Coordinator) runExact(ctx context.Context, q *query.Query, u *query.UnionQuery, xopts exec.Options, wireIn, wireOut *atomic.Int64) (wj.Result, error) {
	tried := make(map[*workerRef]bool)
	for {
		var w *workerRef
		for _, cand := range c.workers {
			if !cand.down.Load() && !tried[cand] {
				w = cand
				break
			}
		}
		if w == nil {
			return wj.Result{}, fmt.Errorf("dist: no live worker left for the exact fallback")
		}
		counts, err := c.exactOne(ctx, w, q, u, xopts, wireIn, wireOut)
		if err == nil {
			res := wj.Result{Estimates: counts, CI: make(map[rdf.ID]float64)}
			if res.Estimates == nil {
				res.Estimates = make(map[rdf.ID]float64)
			}
			return res, nil
		}
		if ctx.Err() != nil {
			return wj.Result{}, err
		}
		w.fail(err)
		tried[w] = true
	}
}

func (c *Coordinator) exactOne(ctx context.Context, w *workerRef, q *query.Query, u *query.UnionQuery, xopts exec.Options, wireIn, wireOut *atomic.Int64) (map[rdf.ID]float64, error) {
	cc, err := dialConn(ctx, w.addr)
	if err != nil {
		return nil, err
	}
	defer func() {
		wireIn.Add(cc.in.Load())
		wireOut.Add(cc.out.Load())
		cc.Close()
	}()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			cc.writeFrame(MsgCancel, nil)
			cc.Close()
		case <-watchDone:
		}
	}()
	if err := cc.writeJSON(MsgExact, exactReq{Query: q, Union: u, BudgetMillis: xopts.Budget.Milliseconds()}); err != nil {
		return nil, err
	}
	if xopts.Budget > 0 {
		cc.c.SetReadDeadline(time.Now().Add(xopts.Budget + dialTimeout))
	}
	payload, err := cc.expect(MsgExactOK)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	rb := rbuf{b: payload}
	return decodeGroups(&rb)
}

// WorkerHealth is one fleet member's health snapshot.
type WorkerHealth struct {
	Addr  string       `json:"addr"`
	Up    bool         `json:"up"`
	Err   string       `json:"err,omitempty"`
	Stats *WorkerStats `json:"stats,omitempty"`
}

// Health polls every worker's stats in parallel.
func (c *Coordinator) Health(ctx context.Context) []WorkerHealth {
	out := make([]WorkerHealth, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w *workerRef) {
			defer wg.Done()
			out[i] = WorkerHealth{Addr: w.addr}
			cc, err := dialConn(ctx, w.addr)
			if err != nil {
				out[i].Err = err.Error()
				return
			}
			defer cc.Close()
			if err := cc.writeFrame(MsgStats, nil); err != nil {
				out[i].Err = err.Error()
				return
			}
			cc.c.SetReadDeadline(time.Now().Add(dialTimeout))
			payload, err := cc.expect(MsgStatsOK)
			if err != nil {
				out[i].Err = err.Error()
				return
			}
			var ws WorkerStats
			if err := json.Unmarshal(payload, &ws); err != nil {
				out[i].Err = err.Error()
				return
			}
			out[i].Up = true
			out[i].Stats = &ws
			w.down.Store(false) // a reachable worker rejoins the pool
		}(i, w)
	}
	wg.Wait()
	return out
}

// Retries returns the coordinator-lifetime count of stratum
// re-allocations.
func (c *Coordinator) Retries() int64 { return c.retries.Load() }

// TotalRuns returns the coordinator-lifetime run count.
func (c *Coordinator) TotalRuns() int64 { return c.totalRuns.Load() }

// SwapAll hot-swaps the whole fleet to a new manifest with epoch
// coordination: phase one sends SwapPrep everywhere and aborts the fleet
// if ANY worker fails to load or the prepared epochs disagree on the shard
// configuration (all-or-nothing at the prepare stage); phase two commits,
// at which point each worker drains in-flight runs on its old epoch and
// releases it. The path must be valid on every worker's filesystem.
func (c *Coordinator) SwapAll(ctx context.Context, path string, mmap bool) error {
	conns := make([]*conn, len(c.workers))
	infos := make([]swapInfo, len(c.workers))
	abort := func(upTo int) {
		for i := 0; i < upTo; i++ {
			if conns[i] == nil {
				continue
			}
			conns[i].writeFrame(MsgSwapAbort, nil)
			conns[i].c.SetReadDeadline(time.Now().Add(dialTimeout))
			conns[i].expect(MsgSwapOK)
			conns[i].Close()
		}
	}
	for i, w := range c.workers {
		cc, err := dialConn(ctx, w.addr)
		if err != nil {
			abort(i)
			return fmt.Errorf("dist: swap prepare: worker %s unreachable: %w", w.addr, err)
		}
		conns[i] = cc
		if err := cc.writeJSON(MsgSwapPrep, swapReq{Path: path, Mmap: mmap}); err != nil {
			abort(i + 1)
			return fmt.Errorf("dist: swap prepare on %s: %w", w.addr, err)
		}
	}
	for i, w := range c.workers {
		conns[i].c.SetReadDeadline(time.Now().Add(5 * time.Minute)) // snapshot loads can be slow
		payload, err := conns[i].expect(MsgSwapReady)
		if err != nil {
			abort(len(conns))
			return fmt.Errorf("dist: swap prepare on %s: %w", w.addr, err)
		}
		if err := json.Unmarshal(payload, &infos[i]); err != nil {
			abort(len(conns))
			return fmt.Errorf("dist: swap prepare on %s: %w", w.addr, err)
		}
		if i > 0 && (infos[i].Shards != infos[0].Shards || infos[i].ConfigHash != infos[0].ConfigHash || infos[i].DictLen != infos[0].DictLen) {
			abort(len(conns))
			return fmt.Errorf("dist: swap prepare: %s loaded %d shards / %08x / %d, %s loaded %d / %08x / %d — refusing a mixed fleet",
				w.addr, infos[i].Shards, infos[i].ConfigHash, infos[i].DictLen,
				c.workers[0].addr, infos[0].Shards, infos[0].ConfigHash, infos[0].DictLen)
		}
	}
	if infos[0].Shards != c.k {
		// A swap may change the shard count only if every worker can still
		// serve its strata; own-placement workers are pinned, so refuse.
		for _, w := range c.workers {
			if w.stratum >= 0 {
				abort(len(conns))
				return fmt.Errorf("dist: swap changes shard count %d→%d with own-placement workers pinned to strata", c.k, infos[0].Shards)
			}
		}
	}
	var firstErr error
	for i, w := range c.workers {
		if err := conns[i].writeFrame(MsgSwapCommit, nil); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: swap commit on %s: %w", w.addr, err)
			}
			conns[i].Close()
			continue
		}
		conns[i].c.SetReadDeadline(time.Now().Add(5 * time.Minute)) // commit drains in-flight runs
		if _, err := conns[i].expect(MsgSwapOK); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dist: swap commit on %s: %w", w.addr, err)
		}
		conns[i].Close()
	}
	if firstErr != nil {
		return firstErr
	}
	c.k = infos[0].Shards
	c.configHash = infos[0].ConfigHash
	c.dictLen = infos[0].DictLen
	return nil
}
