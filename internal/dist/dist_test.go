package dist

import (
	"context"
	"math"
	"math/rand"
	"net"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"kgexplore/internal/exec"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/shard"
	"kgexplore/internal/testkit"
	"kgexplore/internal/wj"
)

// writeFixtureSet shards the graph K ways and writes the .kgm set into a
// temp dir, returning the manifest path.
func writeFixtureSet(t *testing.T, g *rdf.Graph, k int) string {
	t.Helper()
	part, err := shard.PartitionerByName("")
	if err != nil {
		t.Fatal(err)
	}
	s, err := shard.Build(g, k, part)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "set.kgm")
	if _, err := shard.WriteSet(path, s, "dist-fixture"); err != nil {
		t.Fatal(err)
	}
	return path
}

// startWorker brings up one in-process worker on a loopback port.
func startWorker(t *testing.T, opts WorkerOptions) (*Worker, string) {
	t.Helper()
	w, err := NewWorker(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	t.Cleanup(func() { w.Close() })
	return w, ln.Addr().String()
}

// startFleet starts n replicate-placement workers over one manifest.
func startFleet(t *testing.T, manifest string, n, k int) ([]*Worker, []string) {
	t.Helper()
	workers := make([]*Worker, n)
	addrs := make([]string, n)
	for i := range workers {
		workers[i], addrs[i] = startWorker(t, WorkerOptions{Manifest: manifest, Shard: i % k})
	}
	return workers, addrs
}

func mustDial(t *testing.T, addrs []string) *Coordinator {
	t.Helper()
	c, err := Dial(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func resultsEqual(a, b wj.Result, eps float64) bool {
	return testkit.MapsEqual(a.Estimates, b.Estimates, eps) && testkit.MapsEqual(a.CI, b.CI, eps)
}

// TestDistributedEquivalence is the seeded equivalence acceptance test:
// distributed Audit Join over N ∈ {1,2,4} localhost workers must produce
// the SAME estimates as in-process RunScatter on the same .kgm — the
// coordinator replicates RunScatter's seed derivation and quota math, so a
// MaxWalks-driven run is bit-identical, not merely statistically close.
func TestDistributedEquivalence(t *testing.T) {
	g := testkit.RandomGraph(42, 50, 4, 40, 700)
	q := testkit.ChainQuery(g, []rdf.ID{50, 51}, true, false)
	const K = 4

	manifest := writeFixtureSet(t, g, K)
	set, err := shard.Load(manifest, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}

	for _, wps := range []int{1, 2} {
		xo := exec.Options{MaxWalks: 4000, Batch: 64}
		want, wantStats, err := shard.RunScatter(context.Background(), set, pl,
			shard.ScatterOptions{Seed: 42, WorkersPerShard: wps}, xo)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 2, 4} {
			_, addrs := startFleet(t, manifest, n, K)
			c := mustDial(t, addrs)
			got, gotStats, err := c.Run(context.Background(), q,
				RunOptions{Seed: 42, WorkersPerShard: wps}, xo)
			if err != nil {
				t.Fatalf("wps=%d N=%d: %v", wps, n, err)
			}
			if !resultsEqual(got, want, 0) {
				t.Fatalf("wps=%d N=%d: distributed %v ± %v, in-process %v ± %v",
					wps, n, got.Estimates, got.CI, want.Estimates, want.CI)
			}
			if got.Walks != want.Walks {
				t.Fatalf("wps=%d N=%d: %d walks, in-process did %d", wps, n, got.Walks, want.Walks)
			}
			if gotStats.Retries != 0 || len(gotStats.Reallocations) != 0 {
				t.Fatalf("wps=%d N=%d: unexpected retries %+v", wps, n, gotStats.Reallocations)
			}
			if !reflect.DeepEqual(perShardWalks(gotStats.ScatterStats), perShardWalks(wantStats)) {
				t.Fatalf("wps=%d N=%d: per-shard walks %v, in-process %v",
					wps, n, perShardWalks(gotStats.ScatterStats), perShardWalks(wantStats))
			}
		}
	}
}

// TestDistributedFilterEquivalence drives a FILTERed query over the wire:
// the JSON query payload must carry the filter predicates, and the workers'
// filtered strata must reproduce the in-process scatter run bit-identically
// (same seeds, same rejected-walk pattern).
func TestDistributedFilterEquivalence(t *testing.T) {
	g := testkit.RandomGraph(42, 50, 4, 40, 700)
	q := testkit.ChainQuery(g, []rdf.ID{50, 51}, true, false)
	q.Filters = []query.Filter{{Op: query.CmpGt, L: query.EVar(q.Beta), R: query.ENum(5)}}
	const K = 2

	manifest := writeFixtureSet(t, g, K)
	set, err := shard.Load(manifest, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	xo := exec.Options{MaxWalks: 4000, Batch: 64}
	want, _, err := shard.RunScatter(context.Background(), set, pl,
		shard.ScatterOptions{Seed: 9}, xo)
	if err != nil {
		t.Fatal(err)
	}
	unfiltered := testkit.BruteForce(g, testkit.ChainQuery(g, []rdf.ID{50, 51}, true, false))
	filtered := testkit.BruteForce(g, q)
	if sumVals(filtered) >= sumVals(unfiltered) {
		t.Fatal("fixture filter prunes nothing; the test would not detect a dropped filter")
	}

	_, addrs := startFleet(t, manifest, K, K)
	c := mustDial(t, addrs)
	got, _, err := c.Run(context.Background(), q, RunOptions{Seed: 9}, xo)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(got, want, 0) {
		t.Fatalf("distributed filtered %v ± %v, in-process %v ± %v",
			got.Estimates, got.CI, want.Estimates, want.CI)
	}
	if got.Rejected == 0 {
		t.Fatal("filtered distributed run recorded no rejections")
	}
	// And the estimate tracks the FILTERED oracle, not the unfiltered one.
	if tot, ex := sumVals(got.Estimates), sumVals(filtered); math.Abs(tot-ex) > 0.25*ex+2 {
		t.Fatalf("distributed filtered estimate %.1f, exact %.1f", tot, ex)
	}
}

func sumVals(m map[rdf.ID]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

func perShardWalks(s shard.ScatterStats) []int64 {
	out := make([]int64, len(s.PerShard))
	for i, ps := range s.PerShard {
		out[i] = ps.Walks
	}
	return out
}

// TestDistributedOwnedDistinctEquivalence covers the COUNT(DISTINCT)
// stratified path over the wire, including the distinct-mode accumulator
// codec.
func TestDistributedOwnedDistinctEquivalence(t *testing.T) {
	g := testkit.RandomGraph(17, 40, 4, 30, 500)
	const K = 2
	// s -p40-> x -p41-> y grouped by s, distinct y, beta owned by subject:
	// reuse the shard package's fixture shape — a chain whose distinct
	// variable is the root subject is always owned.
	q := testkit.ChainQuery(g, []rdf.ID{40, 41}, true, false)
	q.Distinct = true
	q.Beta = 0 // distinct over the root subject: owned by the partition key
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	if !shard.Owned(pl) {
		t.Skip("fixture not owned; skipping")
	}

	manifest := writeFixtureSet(t, g, K)
	set, err := shard.Load(manifest, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	xo := exec.Options{MaxWalks: 3000, Batch: 64}
	want, wantStats, err := shard.RunScatter(context.Background(), set, pl,
		shard.ScatterOptions{Seed: 7}, xo)
	if err != nil {
		t.Fatal(err)
	}
	if !wantStats.OwnedDistinct {
		t.Fatal("fixture did not take the owned-distinct path")
	}

	_, addrs := startFleet(t, manifest, 2, K)
	c := mustDial(t, addrs)
	got, gotStats, err := c.Run(context.Background(), q, RunOptions{Seed: 7}, xo)
	if err != nil {
		t.Fatal(err)
	}
	if !gotStats.OwnedDistinct || gotStats.ExactFallback {
		t.Fatalf("distributed run took the wrong distinct path: %+v", gotStats.ScatterStats)
	}
	if !resultsEqual(got, want, 0) {
		t.Fatalf("distributed %v ± %v, in-process %v ± %v", got.Estimates, got.CI, want.Estimates, want.CI)
	}
}

// TestDistributedExactFallback covers the not-owned COUNT(DISTINCT) path:
// the coordinator delegates the exact union to one worker.
func TestDistributedExactFallback(t *testing.T) {
	g := testkit.RandomGraph(11, 30, 3, 25, 350)
	q := testkit.ChainQuery(g, []rdf.ID{30, 31}, true, true)
	want := testkit.BruteForce(g, q)
	const K = 2

	manifest := writeFixtureSet(t, g, K)
	_, addrs := startFleet(t, manifest, 2, K)
	c := mustDial(t, addrs)
	got, gotStats, err := c.Run(context.Background(), q, RunOptions{}, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !gotStats.ExactFallback {
		t.Fatalf("expected the exact fallback, got %+v", gotStats.ScatterStats)
	}
	if !testkit.MapsEqual(got.Estimates, want, 1e-9) {
		t.Fatalf("exact fallback %v, want %v", got.Estimates, want)
	}
}

// TestWorkerLossRetry is the failure-injection acceptance test: killing
// one of four workers mid-run must still complete with a valid estimate
// and CI, with the retry surfaced in the run stats.
func TestWorkerLossRetry(t *testing.T) {
	g := testkit.RandomGraph(5, 50, 4, 40, 800)
	q := testkit.ChainQuery(g, []rdf.ID{50, 51}, true, false)
	const K = 4

	manifest := writeFixtureSet(t, g, K)
	workers, addrs := startFleet(t, manifest, 4, K)
	// Worker 2 dies right after its first streamed snapshot.
	workers[2].SetFaults(Faults{KillAfterSnaps: 1, Stratum: -1})

	c := mustDial(t, addrs)
	// Budget-driven (no MaxWalks): every stratum keeps walking well past
	// the first snapshot tick, so the kill fault is guaranteed to fire.
	xo := exec.Options{Budget: 400 * time.Millisecond, Batch: 64, Interval: 5 * time.Millisecond}
	got, rstats, err := c.Run(context.Background(), q, RunOptions{Seed: 9}, xo)
	if err != nil {
		t.Fatalf("run did not survive the worker loss: %v", err)
	}
	if rstats.Retries < 1 || len(rstats.Reallocations) < 1 {
		t.Fatalf("worker loss not recorded: retries=%d reallocations=%v", rstats.Retries, rstats.Reallocations)
	}
	rec := rstats.Reallocations[0]
	if rec.From != addrs[2] {
		t.Fatalf("reallocation records loss of %s, killed %s", rec.From, addrs[2])
	}
	if rec.To == addrs[2] || rec.To == "" {
		t.Fatalf("stratum re-allocated to %q", rec.To)
	}
	for a, est := range got.Estimates {
		if math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("group %d estimate %v after retry", a, est)
		}
		if ci := got.CI[a]; math.IsNaN(ci) || math.IsInf(ci, 0) {
			t.Fatalf("group %d CI %v after retry", a, ci)
		}
	}
	// The retried run must still be statistically sound: compare against
	// the exact answer loosely (400k walks over a tiny graph).
	exact := testkit.BruteForce(g, q)
	for a, ex := range exact {
		if ex < 20 {
			continue // tiny groups are noisy
		}
		rel := math.Abs(got.Estimates[a]-ex) / ex
		if rel > 0.25 {
			t.Errorf("group %d: estimate %.1f vs exact %.0f after retry (rel %.3f)", a, got.Estimates[a], ex, rel)
		}
	}
	// The fleet's health view shows the dead worker.
	health := c.Health(context.Background())
	downs := 0
	for _, h := range health {
		if !h.Up {
			downs++
		}
	}
	if downs != 1 {
		t.Fatalf("health reports %d workers down, want 1: %+v", downs, health)
	}
}

// TestWorkerHangStallDetection: a worker that silently stops streaming
// (no crash, connection held open) must be detected by the stall timeout
// and its stratum re-allocated.
func TestWorkerHangStallDetection(t *testing.T) {
	g := testkit.RandomGraph(13, 40, 4, 30, 600)
	q := testkit.ChainQuery(g, []rdf.ID{40, 41}, true, false)
	const K = 2

	manifest := writeFixtureSet(t, g, K)
	workers, addrs := startFleet(t, manifest, 2, K)
	workers[0].SetFaults(Faults{HangAfterSnaps: 1, Stratum: -1})

	c := mustDial(t, addrs)
	xo := exec.Options{Budget: 400 * time.Millisecond, Batch: 64, Interval: 5 * time.Millisecond}
	start := time.Now()
	_, rstats, err := c.Run(context.Background(), q,
		RunOptions{Seed: 3, StallTimeout: 250 * time.Millisecond}, xo)
	if err != nil {
		t.Fatalf("run did not survive the hang: %v", err)
	}
	if rstats.Retries < 1 {
		t.Fatalf("hang not detected: %+v", rstats.Reallocations)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stall detection took %v", elapsed)
	}
}

// TestCancellationUnderLoad exercises the cancellation path with -race:
// progressive snapshots flowing, OnSnapshot pulling the plug, and the
// fleet remaining serviceable afterwards.
func TestCancellationUnderLoad(t *testing.T) {
	g := testkit.RandomGraph(29, 50, 4, 40, 800)
	q := testkit.ChainQuery(g, []rdf.ID{50, 51}, true, false)
	const K = 2

	manifest := writeFixtureSet(t, g, K)
	_, addrs := startFleet(t, manifest, 2, K)
	c := mustDial(t, addrs)

	snaps := 0
	xo := exec.Options{
		Budget:   20 * time.Second,
		Interval: 3 * time.Millisecond,
		Batch:    32,
		OnSnapshot: func(p exec.Progress) bool {
			snaps++
			return snaps < 3
		},
	}
	start := time.Now()
	_, _, err := c.Run(context.Background(), q, RunOptions{Seed: 1}, xo)
	if err != nil {
		t.Fatalf("early stop returned %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("early stop took %v", elapsed)
	}
	if snaps < 3 {
		t.Fatalf("only %d snapshots before the stop", snaps)
	}

	// Parent-context cancellation also unwinds cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	_, _, err = c.Run(ctx, q, RunOptions{Seed: 2},
		exec.Options{Budget: 20 * time.Second, Interval: 3 * time.Millisecond})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}

	// The fleet still serves after both aborts.
	got, _, err := c.Run(context.Background(), q, RunOptions{Seed: 3}, exec.Options{MaxWalks: 500, Batch: 64})
	if err != nil {
		t.Fatalf("fleet unserviceable after cancellations: %v", err)
	}
	if got.Walks == 0 {
		t.Fatal("follow-up run did no walks")
	}
}

// TestOwnPlacementEquivalence exercises the literal one-shard-per-worker
// deployment: each worker holds only its own shard and resolves cross-shard
// steps through peer View RPCs. With tipping disabled the walk stream is a
// pure function of the resolver, so the distributed result must equal the
// in-process one exactly — every span served over the wire must match the
// local one.
func TestOwnPlacementEquivalence(t *testing.T) {
	g := testkit.RandomGraph(31, 40, 4, 30, 500)
	q := testkit.ChainQuery(g, []rdf.ID{40, 41}, true, false)
	const K = 2

	manifest := writeFixtureSet(t, g, K)
	set, err := shard.Load(manifest, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}

	// Own placement needs peer addresses before the workers exist: listen
	// first, construct with the full peer list, then serve.
	lns := make([]net.Listener, K)
	peers := make([]string, K)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	for i := 0; i < K; i++ {
		w, err := NewWorker(WorkerOptions{Manifest: manifest, Shard: i, Own: true, Peers: peers})
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve(lns[i])
		t.Cleanup(func() { w.Close() })
	}

	xo := exec.Options{MaxWalks: 1500, Batch: 64}
	want, _, err := shard.RunScatter(context.Background(), set, pl,
		shard.ScatterOptions{Seed: 12, Threshold: -1}, xo)
	if err != nil {
		t.Fatal(err)
	}

	c := mustDial(t, peers)
	got, rstats, err := c.Run(context.Background(), q, RunOptions{Seed: 12, Threshold: -1}, xo)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(got, want, 0) {
		t.Fatalf("own-placement %v ± %v, in-process %v ± %v", got.Estimates, got.CI, want.Estimates, want.CI)
	}
	// Both strata must have been pinned to their owning workers.
	if rstats.StratumWorkers[0] != peers[0] || rstats.StratumWorkers[1] != peers[1] {
		t.Fatalf("own placement served strata from %v, want %v", rstats.StratumWorkers, peers)
	}
}

// TestFleetSwap drives the epoch-coordinated hot swap: prepare+commit on
// every worker, with queries before and after answering from the old and
// new sets respectively, and an aborted swap leaving the fleet untouched.
func TestFleetSwap(t *testing.T) {
	g := testkit.RandomGraph(42, 50, 4, 40, 700)
	q := testkit.ChainQuery(g, []rdf.ID{50, 51}, true, false)
	const K = 2

	oldManifest := writeFixtureSet(t, g, K)
	// The new set: same graph resharded 3 ways (same dictionary, different
	// epoch config), so queries stay valid across the swap.
	newManifest := writeFixtureSet(t, g, 3)

	_, addrs := startFleet(t, manifestCopy(t, oldManifest), 2, K)
	c := mustDial(t, addrs)

	before, _, err := c.Run(context.Background(), q, RunOptions{Seed: 5}, exec.Options{MaxWalks: 1000, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if before.Walks == 0 {
		t.Fatal("pre-swap run did no walks")
	}

	// A failed prepare must leave the fleet serving the old epoch.
	if err := c.SwapAll(context.Background(), filepath.Join(t.TempDir(), "missing.kgm"), true); err == nil {
		t.Fatal("swap to a missing manifest succeeded")
	}
	mid, _, err := c.Run(context.Background(), q, RunOptions{Seed: 5}, exec.Options{MaxWalks: 1000, Batch: 64})
	if err != nil {
		t.Fatalf("fleet unserviceable after aborted swap: %v", err)
	}
	if !resultsEqual(mid, before, 0) {
		t.Fatal("aborted swap changed the serving epoch")
	}

	if err := c.SwapAll(context.Background(), newManifest, true); err != nil {
		t.Fatal(err)
	}
	if c.K() != 3 {
		t.Fatalf("post-swap shard count %d, want 3", c.K())
	}
	after, _, err := c.Run(context.Background(), q, RunOptions{Seed: 5}, exec.Options{MaxWalks: 1000, Batch: 64})
	if err != nil {
		t.Fatalf("post-swap run: %v", err)
	}
	if after.Walks == 0 {
		t.Fatal("post-swap run did no walks")
	}
	for _, h := range c.Health(context.Background()) {
		if !h.Up {
			t.Fatalf("worker %s down after swap: %s", h.Addr, h.Err)
		}
		if h.Stats.Epoch != 1 {
			t.Fatalf("worker %s epoch %d after one swap, want 1", h.Addr, h.Stats.Epoch)
		}
		if h.Stats.Swaps != 1 {
			t.Fatalf("worker %s swap count %d, want 1", h.Addr, h.Stats.Swaps)
		}
	}
}

// manifestCopy returns the manifest path unchanged; it exists to make the
// swap test read as "the fleet was started on the old set".
func manifestCopy(t *testing.T, path string) string {
	t.Helper()
	return path
}

// TestAccCodecRoundTrip is the wire-codec property test: random
// accumulators — plain, denominator-bearing, distinct-mode — must survive
// appendAcc → decodeAcc bit-exactly.
func TestAccCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		a := wj.NewAcc()
		a.N = rng.Int63n(1000)
		a.Rejected = rng.Int63n(100)
		a.Dedup = rng.Int63n(50)
		for i := rng.Intn(8); i > 0; i-- {
			id := rdf.ID(rng.Intn(100))
			a.Sum[id] = rng.NormFloat64() * 1000
			a.SumSq[id] = rng.Float64() * 1e6
		}
		switch rng.Intn(3) {
		case 1:
			a.Den = make(map[rdf.ID]float64)
			for i := rng.Intn(5); i > 0; i-- {
				a.Den[rdf.ID(rng.Intn(100))] = rng.Float64() * 100
			}
		case 2:
			a.Distinct = true
			a.Vals = make(map[uint64]wj.DistinctVal)
			for i := rng.Intn(8); i > 0; i-- {
				a.Vals[wj.DistinctKey(rdf.ID(rng.Intn(50)), rdf.ID(rng.Intn(50)))] =
					wj.DistinctVal{Contribution: rng.Float64() * 10, Hits: rng.Int63n(20) + 1}
			}
		}
		b := appendAcc(nil, a)
		rb := rbuf{b: b}
		got, err := decodeAcc(&rb)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(rb.b) != 0 {
			t.Fatalf("trial %d: %d trailing bytes", trial, len(rb.b))
		}
		if !accEqual(a, got) {
			t.Fatalf("trial %d: round trip mismatch:\n in: %+v\nout: %+v", trial, a, got)
		}
	}
}

func accEqual(a, b *wj.Acc) bool {
	if a.N != b.N || a.Rejected != b.Rejected || a.Dedup != b.Dedup || a.Distinct != b.Distinct {
		return false
	}
	if !reflect.DeepEqual(normMap(a.Sum), normMap(b.Sum)) || !reflect.DeepEqual(normMap(a.SumSq), normMap(b.SumSq)) {
		return false
	}
	if (a.Den == nil) != (b.Den == nil) || !reflect.DeepEqual(normMap(a.Den), normMap(b.Den)) {
		return false
	}
	if a.Distinct && !reflect.DeepEqual(a.Vals, b.Vals) {
		return false
	}
	return true
}

// normMap treats nil and empty as equal.
func normMap(m map[rdf.ID]float64) map[rdf.ID]float64 {
	if len(m) == 0 {
		return map[rdf.ID]float64{}
	}
	return m
}

// TestMixedFleetRejected: Dial must refuse a fleet whose workers serve
// different shard sets.
func TestMixedFleetRejected(t *testing.T) {
	g := testkit.RandomGraph(8, 30, 3, 25, 300)
	m2 := writeFixtureSet(t, g, 2)
	m3 := writeFixtureSet(t, g, 3)
	_, a2 := startWorker(t, WorkerOptions{Manifest: m2, Shard: 0})
	_, a3 := startWorker(t, WorkerOptions{Manifest: m3, Shard: 0})
	if _, err := Dial(context.Background(), []string{a2, a3}); err == nil {
		t.Fatal("mixed fleet accepted")
	}
}

// TestDistributedUnionExact: the worker-side exact union (MsgExact with a
// Union payload) matches the oracle for every aggregate, including the
// cross-branch DISTINCT dedup and AVG ratio a merge of per-branch exact
// results cannot reproduce.
func TestDistributedUnionExact(t *testing.T) {
	g := testkit.RandomGraph(43, 40, 4, 30, 500)
	const K = 2
	manifest := writeFixtureSet(t, g, K)
	_, addrs := startFleet(t, manifest, K, K)
	c := mustDial(t, addrs)

	mk := func(p rdf.ID, distinct bool, agg query.AggFunc) *query.Query {
		q := testkit.ChainQuery(g, []rdf.ID{p, 41}, true, distinct)
		q.Agg = agg
		return q
	}
	for _, tc := range []struct {
		name     string
		distinct bool
		agg      query.AggFunc
	}{
		{"count", false, query.AggCount},
		{"sum", false, query.AggSum},
		{"avg", false, query.AggAvg},
		{"distinct", true, query.AggCount},
	} {
		u := &query.UnionQuery{Branches: []*query.Query{
			mk(40, tc.distinct, tc.agg),
			mk(42, tc.distinct, tc.agg),
			mk(40, tc.distinct, tc.agg), // overlaps branch 0 for DISTINCT dedup
		}}
		u.Branches[1].Filters = []query.Filter{
			{Op: query.CmpGt, L: query.EVar(u.Branches[1].Beta), R: query.ENum(2)},
		}
		want := testkit.BruteForceUnion(g, u)
		got, err := c.ExactUnion(context.Background(), u, 0)
		if err != nil {
			t.Fatalf("%s: ExactUnion: %v", tc.name, err)
		}
		if !testkit.MapsEqual(got, want, 1e-9) {
			t.Errorf("%s: distributed exact union disagrees: got %v want %v", tc.name, got, want)
		}
	}
}
