package dist

import (
	"context"
	"fmt"
	"math"
	"testing"

	"kgexplore/internal/core"
	"kgexplore/internal/exec"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/shard"
	"kgexplore/internal/testkit"
)

// stratifyFixture mirrors the shard/core stratification fixture: hub and
// leaf subject populations with wildly different walk contributions, so
// the worker-side semantic sub-strata pay off over the wire.
func stratifyFixture(t *testing.T) (*rdf.Graph, *query.Query) {
	t.Helper()
	g := rdf.NewGraph()
	for h := 0; h < 4; h++ {
		hub := fmt.Sprintf("hub%d", h)
		g.AddIRIs(hub, "hubFlag", "yes")
		for j := 0; j < 40; j++ {
			o := fmt.Sprintf("friend%d_%d", h, j)
			g.AddIRIs(hub, "knows", o)
			for _, lex := range []string{"5", "13"} {
				g.Add(rdf.NewIRI(o), rdf.NewIRI("pop"), rdf.NewLiteral(lex))
			}
		}
	}
	for p := 0; p < 150; p++ {
		person := fmt.Sprintf("person%d", p)
		g.AddIRIs(person, rdf.RDFType, "Person")
		o := fmt.Sprintf("pal%d", p)
		g.AddIRIs(person, "knows", o)
		if p%3 != 0 {
			g.Add(rdf.NewIRI(o), rdf.NewIRI("pop"), rdf.NewLiteral("900"))
		}
	}
	g.Dedup()
	knows, _ := g.Dict.LookupIRI("knows")
	pop, _ := g.Dict.LookupIRI("pop")
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(knows), O: query.V(1)},
			{S: query.V(1), P: query.C(pop), O: query.V(2)},
		},
		Alpha: query.NoVar,
		Beta:  2,
		Agg:   query.AggCount,
	}
	return g, q
}

// TestDistributedStratifyEquivalence drives the stratified wire path: the
// multi-accumulator snapshot frames must merge into unbiased estimates,
// the stats must report the expanded leaf count, and the distributed CI
// must not exceed the non-stratified distributed CI on the skewed fixture.
func TestDistributedStratifyEquivalence(t *testing.T) {
	g, q := stratifyFixture(t)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(lftj.GroupCount(testkit.BuildStore(g), pl)[core.GlobalGroup])
	const K = 2
	manifest := writeFixtureSet(t, g, K)
	_, addrs := startFleet(t, manifest, 2, K)
	c := mustDial(t, addrs)

	const runs = 5
	var mean, stratCI, plainCI float64
	for r := int64(0); r < runs; r++ {
		xo := exec.Options{MaxWalks: 4000, Batch: 64}
		got, rstats, err := c.Run(context.Background(), q,
			RunOptions{Seed: 900 + r, WorkersPerShard: 2, Stratify: true}, xo)
		if err != nil {
			t.Fatal(err)
		}
		if rstats.Strata <= K {
			t.Fatalf("stats report %d strata, want > %d shards", rstats.Strata, K)
		}
		mean += got.Estimates[core.GlobalGroup]
		stratCI += got.CI[core.GlobalGroup]

		plain, _, err := c.Run(context.Background(), q,
			RunOptions{Seed: 900 + r, WorkersPerShard: 2}, xo)
		if err != nil {
			t.Fatal(err)
		}
		plainCI += plain.CI[core.GlobalGroup]
	}
	mean /= runs
	if rel := math.Abs(mean-exact) / exact; rel > 0.05 {
		t.Fatalf("distributed stratified mean %.1f vs exact %.0f (%.1f%% off)", mean, exact, rel*100)
	}
	if stratCI > plainCI {
		t.Fatalf("stratified CI (%.2f avg) wider than plain (%.2f avg)", stratCI/runs, plainCI/runs)
	}
	t.Logf("distributed: mean %.1f (exact %.0f), CI %.2f vs plain %.2f (%.2fx)",
		mean, exact, stratCI/runs, plainCI/runs, plainCI/stratCI)
}

// TestDistributedStratifyMatchesInProcess pins the cross-process contract
// under stratification. Unlike the uniform path, stratified runs are NOT
// bit-identical to in-process RunScatter: the coordinator splits quotas
// shard-first and each worker re-splits its share across leaves (two
// rounding stages vs. RunScatter's single global one), and leaf walkers
// derive seeds from the per-shard wire seeds. What must match exactly is
// the leaf decomposition itself — same manifest, same strata — and the
// estimates must agree within their merged confidence intervals.
func TestDistributedStratifyMatchesInProcess(t *testing.T) {
	g, q := stratifyFixture(t)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	const K = 2
	manifest := writeFixtureSet(t, g, K)
	set, err := shard.Load(manifest, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	xo := exec.Options{MaxWalks: 4000, Batch: 64}
	want, wantStats, err := shard.RunScatter(context.Background(), set, pl,
		shard.ScatterOptions{Seed: 31, WorkersPerShard: 2, Stratify: true}, xo)
	if err != nil {
		t.Fatal(err)
	}

	_, addrs := startFleet(t, manifest, 2, K)
	c := mustDial(t, addrs)
	got, gotStats, err := c.Run(context.Background(), q,
		RunOptions{Seed: 31, WorkersPerShard: 2, Stratify: true}, xo)
	if err != nil {
		t.Fatal(err)
	}
	if gotStats.Strata != wantStats.Strata {
		t.Fatalf("distributed ran %d leaves, in-process %d", gotStats.Strata, wantStats.Strata)
	}
	for a, w := range want.Estimates {
		if diff := math.Abs(got.Estimates[a] - w); diff > got.CI[a]+want.CI[a] {
			t.Fatalf("group %d: distributed %.2f ± %.2f vs in-process %.2f ± %.2f",
				a, got.Estimates[a], got.CI[a], w, want.CI[a])
		}
	}
	if diff := got.Walks - want.Walks; diff < -64 || diff > 64 {
		t.Fatalf("walk budgets diverged: distributed %d, in-process %d", got.Walks, want.Walks)
	}
}
