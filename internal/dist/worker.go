package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"kgexplore/internal/card"
	"kgexplore/internal/core"
	"kgexplore/internal/exec"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/shard"
	"kgexplore/internal/snap"
	"kgexplore/internal/wj"
)

// heartbeatInterval paces run-stream MsgSnap frames when the client asked
// for no progressive snapshots: the coordinator's stall detector needs
// periodic liveness either way.
const heartbeatInterval = 500 * time.Millisecond

// Placement names for helloResp/WorkerStats.
const (
	PlacementReplicate = "replicate"
	PlacementOwn       = "own"
)

// WorkerOptions configure one shard worker.
type WorkerOptions struct {
	// Manifest is the .kgm shard-set manifest path.
	Manifest string
	// Shard is the stratum this worker roots walks in (its identity shard).
	Shard int
	// Own selects own-shard placement: load ONLY shard Shard's snapshot and
	// resolve cross-shard steps through peer workers (Peers). The default
	// replicate placement loads the whole set — on one box the mmap'ed
	// snapshots share the page cache across workers, so replication costs
	// address space, not RAM — and can therefore serve any stratum, which
	// is what makes coordinator-side stratum re-allocation possible.
	Own bool
	// Peers are the worker addresses, one per shard, required by Own
	// placement (falls back to the manifest's Workers field).
	Peers []string
	// Copy disables mmap snapshot loads (verified copy loads instead).
	Copy bool
}

// Faults are deterministic failure-injection hooks for tests: they trigger
// on run-stream snapshot counts, which are ordered and observable from the
// coordinator side.
type Faults struct {
	// KillAfterSnaps > 0 crashes the whole worker (listener and every
	// connection) immediately after the Nth MsgSnap frame of a matching
	// run has been sent.
	KillAfterSnaps int
	// HangAfterSnaps > 0 silences a matching run after its Nth MsgSnap
	// frame: no further snapshots and no MsgDone, with the connection held
	// open — the shape a wedged worker presents to the stall detector.
	HangAfterSnaps int
	// Stratum restricts the fault to runs of one stratum; -1 matches any.
	Stratum int
}

func (f Faults) matches(stratum int) bool {
	return (f.KillAfterSnaps > 0 || f.HangAfterSnaps > 0) &&
		(f.Stratum < 0 || f.Stratum == stratum)
}

// workerEpoch is one immutable serving generation: the loaded set and the
// estimator scope over its local stores. Swaps install a new epoch and
// drain the old one before closing its mmaps.
type workerEpoch struct {
	set    *shard.Set
	m      shard.Manifest
	stores []*index.Store // local stores, for card.ByName scoping
	own    *index.Store   // the identity shard's store (View serving)
	refs   sync.WaitGroup
}

// Worker serves one shard of a .kgm set over the dist wire protocol: walk
// execution for its strata, span resolution of its shard for peers'
// cross-shard steps, the suffix/exact CTJ fallback, stats, and the
// two-phase epoch swap. Safe for concurrent connections.
type Worker struct {
	opts  WorkerOptions
	start time.Time

	mu      sync.Mutex
	cur     *workerEpoch
	pending *workerEpoch
	epoch   int64
	ln      net.Listener
	conns   map[*conn]struct{}
	closed  bool

	faults atomic.Pointer[Faults]

	activeRuns atomic.Int64
	totalRuns  atomic.Int64
	totalWalks atomic.Int64
	wireIn     atomic.Int64
	wireOut    atomic.Int64
	swaps      atomic.Int64
}

// NewWorker loads the worker's epoch from the manifest and returns a
// worker ready to Serve.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	w := &Worker{opts: opts, start: time.Now(), conns: make(map[*conn]struct{})}
	e, err := w.loadEpoch(opts.Manifest)
	if err != nil {
		return nil, err
	}
	w.cur = e
	return w, nil
}

// loadEpoch loads a serving generation from a manifest path on the local
// filesystem, honoring the worker's placement.
func (w *Worker) loadEpoch(manifestPath string) (*workerEpoch, error) {
	return w.loadEpochMode(manifestPath, w.opts.Copy)
}

func (w *Worker) loadEpochMode(manifestPath string, copyLoad bool) (*workerEpoch, error) {
	m, err := shard.ReadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	if w.opts.Shard < 0 || w.opts.Shard >= m.Shards {
		return nil, fmt.Errorf("dist: shard %d outside manifest's %d shards", w.opts.Shard, m.Shards)
	}
	if !w.opts.Own {
		set, err := shard.Load(manifestPath, shard.LoadOptions{Mmap: !copyLoad})
		if err != nil {
			return nil, err
		}
		stores := make([]*index.Store, set.K())
		for i := range stores {
			stores[i] = set.Store(i)
		}
		return &workerEpoch{set: set, m: m, stores: stores, own: set.Store(w.opts.Shard)}, nil
	}

	// Own placement: this shard's snapshot locally, every other shard
	// through its peer worker.
	peers := w.opts.Peers
	if len(peers) == 0 {
		peers = m.Workers
	}
	if len(peers) != m.Shards {
		return nil, fmt.Errorf("dist: own placement needs %d peer addresses, have %d", m.Shards, len(peers))
	}
	part, err := shard.PartitionerByName(m.Partitioner)
	if err != nil {
		return nil, err
	}
	sopts := snap.Options{Mode: snap.ModeAuto}
	if copyLoad {
		sopts = snap.Options{Mode: snap.ModeCopy, Verify: true}
	}
	dir := filepath.Dir(manifestPath)
	l, err := snap.LoadFile(filepath.Join(dir, m.Files[w.opts.Shard].Path), sopts)
	if err != nil {
		return nil, fmt.Errorf("dist: loading own shard %d: %w", w.opts.Shard, err)
	}
	stores := make([]*index.Store, m.Shards)
	remotes := make([]shard.Remote, m.Shards)
	stores[w.opts.Shard] = l.Store
	for i := range remotes {
		if i == w.opts.Shard {
			continue
		}
		remotes[i] = NewRemoteShard(peers[i])
	}
	set, err := shard.NewHybrid(stores, remotes, part, l.Store.Dict())
	if err != nil {
		l.Close()
		return nil, err
	}
	return &workerEpoch{set: set, m: m, stores: []*index.Store{l.Store}, own: l.Store}, nil
}

// SetFaults installs failure-injection hooks (tests only). A zero Faults
// clears them.
func (w *Worker) SetFaults(f Faults) { w.faults.Store(&f) }

// Serve accepts connections on ln until the listener closes. It blocks;
// run it on its own goroutine.
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return fmt.Errorf("dist: worker is closed")
	}
	w.ln = ln
	w.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return err
		}
		c := newConn(nc)
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			c.Close()
			return nil
		}
		w.conns[c] = struct{}{}
		w.mu.Unlock()
		go w.serveConn(c)
	}
}

// Addr returns the listening address ("" before Serve).
func (w *Worker) Addr() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ln == nil {
		return ""
	}
	return w.ln.Addr().String()
}

// Close shuts the worker down: listener, connections, and the loaded set.
func (w *Worker) Close() error {
	w.Kill()
	w.mu.Lock()
	cur, pending := w.cur, w.pending
	w.cur, w.pending = nil, nil
	w.mu.Unlock()
	var first error
	for _, e := range []*workerEpoch{cur, pending} {
		if e == nil {
			continue
		}
		e.refs.Wait()
		if err := e.set.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Kill abruptly stops serving — listener and every open connection — but
// keeps the loaded set mapped. It is the crash form the fault hooks use;
// Close is the orderly form.
func (w *Worker) Kill() {
	w.mu.Lock()
	w.closed = true
	ln := w.ln
	conns := make([]*conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

func (w *Worker) acquire() (*workerEpoch, int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cur == nil {
		return nil, 0, fmt.Errorf("dist: worker has no serving epoch")
	}
	w.cur.refs.Add(1)
	return w.cur, w.epoch, nil
}

func (w *Worker) placement() string {
	if w.opts.Own {
		return PlacementOwn
	}
	return PlacementReplicate
}

// servedPlan is one registered plan on a connection, answering View RPCs
// against this worker's own shard through the same shard.View the
// in-process resolver would use. It pins the epoch it was opened against —
// View RPCs serve raw span offsets that are only meaningful within one
// epoch's mmap — and releases the pin when the connection closes.
type servedPlan struct {
	pl   *query.Plan
	view shard.View
	e    *workerEpoch
}

func (w *Worker) serveConn(c *conn) {
	plans := make(map[uint64]*servedPlan)
	defer func() {
		for _, sp := range plans {
			sp.e.refs.Done()
		}
		w.wireIn.Add(c.in.Load())
		w.wireOut.Add(c.out.Load())
		c.Close()
		w.mu.Lock()
		delete(w.conns, c)
		w.mu.Unlock()
	}()
	for {
		typ, payload, err := c.readFrame()
		if err != nil {
			return
		}
		terminal, err := w.dispatch(c, typ, payload, plans)
		if err != nil {
			c.writeErr(err)
		}
		if terminal {
			return
		}
	}
}

// dispatch handles one frame. terminal=true means the request consumed the
// connection (runs and exact evaluations: their cancel channel is the
// connection itself).
func (w *Worker) dispatch(c *conn, typ byte, payload []byte, plans map[uint64]*servedPlan) (terminal bool, err error) {
	switch typ {
	case MsgHello:
		var req helloReq
		if err := json.Unmarshal(payload, &req); err != nil {
			return false, err
		}
		if req.Proto != ProtoVersion {
			return false, fmt.Errorf("dist: protocol version %d, worker speaks %d", req.Proto, ProtoVersion)
		}
		e, epoch, err := w.acquire()
		if err != nil {
			return false, err
		}
		defer e.refs.Done()
		stratum := w.opts.Shard
		if !w.opts.Own {
			stratum = -1
		}
		return false, c.writeJSON(MsgHelloOK, helloResp{
			Proto:      ProtoVersion,
			Shards:     e.m.Shards,
			Stratum:    stratum,
			Placement:  w.placement(),
			ConfigHash: e.m.ConfigHash,
			DictLen:    e.set.Dict().Len(),
			Epoch:      epoch,
		})
	case MsgPing:
		return false, c.writeFrame(MsgPong, nil)
	case MsgStats:
		return false, c.writeJSON(MsgStatsOK, w.stats())
	case MsgInfo:
		return false, w.handleInfo(c, payload)
	case MsgRun:
		return true, w.handleRun(c, payload)
	case MsgExact:
		return true, w.handleExact(c, payload)
	case MsgOpenPlan:
		return false, w.handleOpenPlan(c, payload, plans)
	case MsgResolve, MsgRead, MsgAt, MsgContains:
		return false, w.handleViewRPC(c, typ, payload, plans)
	case MsgSwapPrep:
		return false, w.handleSwapPrep(c, payload)
	case MsgSwapCommit:
		return false, w.handleSwapCommit(c)
	case MsgSwapAbort:
		return false, w.handleSwapAbort(c)
	default:
		return false, fmt.Errorf("dist: unknown message type 0x%02x", typ)
	}
}

func (w *Worker) stats() WorkerStats {
	w.mu.Lock()
	epoch := w.epoch
	var triples, shards int
	if w.cur != nil {
		triples = w.cur.set.NumTriples()
		shards = w.cur.m.Shards
	}
	w.mu.Unlock()
	return WorkerStats{
		Addr:         w.Addr(),
		Placement:    w.placement(),
		Stratum:      w.opts.Shard,
		Shards:       shards,
		Epoch:        epoch,
		Triples:      triples,
		ActiveRuns:   w.activeRuns.Load(),
		TotalRuns:    w.totalRuns.Load(),
		TotalWalks:   w.totalWalks.Load(),
		WireIn:       w.wireIn.Load(),
		WireOut:      w.wireOut.Load(),
		Swaps:        w.swaps.Load(),
		UptimeMillis: time.Since(w.start).Milliseconds(),
	}
}

// compileWire validates and compiles a query received from the wire. The
// peer is trusted (see the package trust model), but validation is cheap
// and turns a malformed query into a clean error instead of a panic.
func compileWire(q *query.Query) (*query.Plan, error) {
	if q == nil {
		return nil, fmt.Errorf("dist: request carries no query")
	}
	if err := q.Validate(); err != nil {
		if cerr := q.ValidateCyclic(); cerr != nil {
			return nil, err
		}
	}
	return query.CompileUnchecked(q)
}

func (w *Worker) handleInfo(c *conn, payload []byte) error {
	var req infoReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return err
	}
	pl, err := compileWire(req.Query)
	if err != nil {
		return err
	}
	e, _, err := w.acquire()
	if err != nil {
		return err
	}
	defer e.refs.Done()
	est, err := card.ByName(req.Estimator, e.stores...)
	if err != nil {
		return err
	}
	resp := infoResp{RootCards: make([]int64, len(req.Strata))}
	if req.Query.Distinct && !shard.Owned(pl) {
		resp.DistinctNotOwned = true
		return c.writeJSON(MsgInfoOK, resp)
	}
	for i, k := range req.Strata {
		if k < 0 || k >= e.set.K() {
			return fmt.Errorf("dist: stratum %d outside %d shards", k, e.set.K())
		}
		st := e.set.Store(k)
		if st == nil {
			return fmt.Errorf("dist: stratum %d is not local to this worker (own placement serves shard %d)", k, w.opts.Shard)
		}
		resp.RootCards[i] = int64(est.Scope(st).RootCount(pl).Value)
	}
	return c.writeJSON(MsgInfoOK, resp)
}

// handleRun executes one stratum's share of a distributed scatter-gather:
// the wps walkers the coordinator allocated, driven through exec.Drive
// with the coordinator's budget, streaming merged stratum snapshots (and
// heartbeats) until done. The connection is the cancellation channel: a
// MsgCancel frame or a disconnect stops the run.
func (w *Worker) handleRun(c *conn, payload []byte) error {
	var req runReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return err
	}
	pl, err := compileWire(req.Query)
	if err != nil {
		return err
	}
	if len(req.Seeds) == 0 {
		return fmt.Errorf("dist: run carries no walker seeds")
	}
	e, _, err := w.acquire()
	if err != nil {
		return err
	}
	defer e.refs.Done()
	if req.Stratum < 0 || req.Stratum >= e.set.K() {
		return fmt.Errorf("dist: stratum %d outside %d shards", req.Stratum, e.set.K())
	}
	if !e.set.Local(req.Stratum) {
		return fmt.Errorf("dist: stratum %d is not local to this worker (own placement serves shard %d)", req.Stratum, w.opts.Shard)
	}
	est, err := card.ByName(req.Estimator, e.stores...)
	if err != nil {
		return err
	}

	wps := len(req.Seeds)
	cache := shard.NewCache()

	// Leaf strata: the shard's semantic sub-strata when the coordinator
	// asked for them, one uniform leaf otherwise. Walker (l, j) derives its
	// seed from the coordinator's j-th seed so the non-stratified path stays
	// bit-identical to shard.RunScatter under equal quotas.
	var subs []index.RootStratum
	if req.Stratify {
		if req.MaxStrata > 255 {
			req.MaxStrata = 255 // the snap frame's count is one byte
		}
		subs = shard.SubStrata(e.set, pl, req.Stratum, req.MaxStrata)
	}
	L := len(subs)
	if L == 0 {
		L = 1
	}
	walkers := make([][]*shard.Walker, L)
	cards := make([]int, L)
	cardTotal := 0
	for l := 0; l < L; l++ {
		walkers[l] = make([]*shard.Walker, wps)
		for j := 0; j < wps; j++ {
			wo := shard.WalkerOptions{
				Threshold: req.Threshold,
				Seed:      req.Seeds[j],
				Cache:     cache,
				Estimator: est,
			}
			if subs != nil {
				wo.Root = &subs[l]
				wo.Seed = core.WorkerSeed(req.Seeds[j], l)
			}
			walkers[l][j], err = shard.NewWalker(e.set, pl, req.Stratum, wo)
			if err != nil {
				return err
			}
		}
		cards[l] = walkers[l][0].RootCard()
		cardTotal += cards[l]
	}

	w.activeRuns.Add(1)
	w.totalRuns.Add(1)
	defer w.activeRuns.Add(-1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The connection doubles as the cancel channel.
	go func() {
		for {
			typ, _, err := c.readFrame()
			if err != nil || typ == MsgCancel {
				cancel()
				return
			}
		}
	}()

	interval := time.Duration(req.IntervalMillis) * time.Millisecond
	hb := heartbeatInterval
	if interval > 0 {
		hb = interval
	}

	var faults Faults
	if f := w.faults.Load(); f != nil && f.matches(req.Stratum) {
		faults = *f
	}
	hung := false
	snaps := 0
	var seq uint32
	// mergeLeaves folds per-walker clones into one accumulator per leaf
	// stratum, leaf-ascending — the order the final merge uses too.
	mergeLeaves := func(latest []*wj.Acc) []*wj.Acc {
		accs := make([]*wj.Acc, 0, L)
		for l := 0; l < L; l++ {
			var merged *wj.Acc
			for j := 0; j < wps; j++ {
				a := latest[l*wps+j]
				if a == nil {
					continue
				}
				if merged == nil {
					merged = wj.NewAcc()
					merged.Distinct = a.Distinct
				}
				merged.Merge(a)
			}
			if merged != nil {
				accs = append(accs, merged)
			}
		}
		return accs
	}
	sendSnap := func(latest []*wj.Acc) error {
		if hung {
			return nil
		}
		seq++
		wb := wbuf{}
		wb.u32(seq)
		accs := mergeLeaves(latest)
		wb.u8(byte(len(accs))) // 0 = heartbeat only
		for _, a := range accs {
			wb.b = appendAcc(wb.b, a)
		}
		if err := c.writeFrame(MsgSnap, wb.b); err != nil {
			return err
		}
		snaps++
		if faults.KillAfterSnaps > 0 && snaps >= faults.KillAfterSnaps {
			w.Kill()
			return fmt.Errorf("dist: fault injection: killed after %d snapshots", snaps)
		}
		if faults.HangAfterSnaps > 0 && snaps >= faults.HangAfterSnaps {
			hung = true
		}
		return nil
	}

	// Per-walker publish state, mirroring RunScatter's latest-clone merge.
	latest := make([]*wj.Acc, L*wps)
	var mu sync.Mutex
	o := exec.Options{
		Budget:   time.Duration(req.BudgetMillis) * time.Millisecond,
		MaxWalks: req.MaxWalksPerW,
		Batch:    req.Batch,
	}
	if interval > 0 {
		o.Interval = interval
	}
	// With sub-strata the stratum's budget splits across leaves by root
	// cardinality, exactly as the coordinator split the global budget across
	// shards (the pool goroutines cannot re-run Neyman allocation; in-process
	// single-threaded steppers do, see shard.Scatter).
	perLeaf := make([]exec.Options, L)
	for l := 0; l < L; l++ {
		ol := o
		if L > 1 && cardTotal > 0 {
			share := float64(cards[l]) / float64(cardTotal)
			if o.MaxWalks > 0 {
				pw := int64(float64(o.MaxWalks)*share + 0.5)
				if pw < 1 {
					pw = 1
				}
				ol.MaxWalks = pw
			}
			if o.Batch > 0 {
				b := int(float64(o.Batch) * share * float64(L))
				if b < 1 {
					b = 1
				}
				if b > 8192 {
					b = 8192
				}
				ol.Batch = b
			}
		}
		perLeaf[l] = ol
	}

	pubStop := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		ticker := time.NewTicker(hb)
		defer ticker.Stop()
		for {
			select {
			case <-pubStop:
				return
			case <-ticker.C:
				mu.Lock()
				clones := make([]*wj.Acc, len(latest))
				copy(clones, latest)
				mu.Unlock()
				if err := sendSnap(clones); err != nil {
					cancel()
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, L*wps)
	for l := 0; l < L; l++ {
		for j := 0; j < wps; j++ {
			oj := perLeaf[l]
			idx := l*wps + j
			if interval > 0 {
				l, j := l, j
				oj.OnSnapshot = func(exec.Progress) bool {
					mu.Lock()
					latest[idx] = walkers[l][j].Acc().Clone()
					mu.Unlock()
					return true
				}
			}
			wg.Add(1)
			go func(wk *shard.Walker, o exec.Options, e int) {
				defer wg.Done()
				_, errs[e] = exec.Drive(ctx, wk, o)
			}(walkers[l][j], oj, idx)
		}
	}
	wg.Wait()
	close(pubStop)
	pubWG.Wait()

	if hung {
		// Fault injection: present a wedged worker — no Done, connection
		// held open until the peer gives up.
		<-ctx.Done()
		return nil
	}

	// Final per-leaf accumulators: walkers merged in pool order within each
	// leaf, leaves leaf-ascending — exactly as RunScatter's finish does, so
	// a distributed run is bit-identical to the in-process one under the
	// same seeds and quotas.
	done := runDone{Strata: L}
	var tips core.TipDiag
	finalAccs := make([]*wj.Acc, 0, L)
	for l := 0; l < L; l++ {
		m := wj.NewAcc() // owned-distinct walkers use plain accumulators
		for _, wk := range walkers[l] {
			m.Merge(wk.Acc())
			done.Tipped += wk.Tipped()
			tips.Merge(wk.TipDiag())
		}
		done.RootCard += int64(cards[l])
		done.Walks += m.N
		finalAccs = append(finalAccs, m)
	}
	for l := 0; l < L; l++ {
		for _, wk := range walkers[l] {
			if err := wk.ViewErr(); err != nil {
				return fmt.Errorf("dist: peer shard failed mid-run: %w", err)
			}
		}
	}
	for _, err := range errs {
		if err != nil && ctx.Err() == nil {
			return err
		}
	}
	cs := cache.Stats()
	done.CacheHits, done.CacheMisses = cs.Hits, cs.Misses
	if tipsJSON, err := json.Marshal(tips); err == nil {
		done.Tips = tipsJSON
	}
	w.totalWalks.Add(done.Walks)

	trailer, err := json.Marshal(done)
	if err != nil {
		return err
	}
	wb := wbuf{}
	wb.u32(uint32(len(trailer)))
	wb.b = append(wb.b, trailer...)
	wb.u8(byte(len(finalAccs)))
	for _, a := range finalAccs {
		wb.b = appendAcc(wb.b, a)
	}
	return c.writeFrame(MsgDone, wb.b)
}

// handleExact runs the exact resolver-backed enumeration — the suffix/CTJ
// fallback for COUNT(DISTINCT) plans the stratified estimator cannot serve
// — and returns the group map in one response.
func (w *Worker) handleExact(c *conn, payload []byte) error {
	var req exactReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return err
	}
	var pl *query.Plan
	var up *query.UnionPlan
	var err error
	if req.Union != nil {
		up, err = query.CompileUnion(req.Union)
	} else {
		pl, err = compileWire(req.Query)
	}
	if err != nil {
		return err
	}
	e, _, err := w.acquire()
	if err != nil {
		return err
	}
	defer e.refs.Done()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if req.BudgetMillis > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, time.Duration(req.BudgetMillis)*time.Millisecond)
		defer tcancel()
	}
	go func() {
		for {
			typ, _, err := c.readFrame()
			if err != nil || typ == MsgCancel {
				cancel()
				return
			}
		}
	}()

	var counts map[rdf.ID]float64
	if up != nil {
		counts, err = e.set.ExactUnionCtx(ctx, up)
	} else {
		counts, err = e.set.ExactCtx(ctx, pl)
	}
	if err != nil {
		return err
	}
	return c.writeFrame(MsgExactOK, appendGroups(nil, counts))
}

func (w *Worker) handleOpenPlan(c *conn, payload []byte, plans map[uint64]*servedPlan) error {
	var req openPlanReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return err
	}
	pl, err := compileWire(req.Query)
	if err != nil {
		return err
	}
	e, _, err := w.acquire()
	if err != nil {
		return err
	}
	view := shard.NewStoreView(e.own, pl)
	if old, ok := plans[req.Plan]; ok {
		old.e.refs.Done()
	}
	plans[req.Plan] = &servedPlan{pl: pl, view: view, e: e}

	// Reply with every step's access shape so the client can serve static
	// steps without a round trip: u8 (bit0 ok, bit1 static) | lo | hi.
	wb := wbuf{}
	wb.u32(uint32(len(pl.Steps)))
	b := pl.NewBindings()
	for i := range pl.Steps {
		var flags byte
		var sp index.Span
		if pl.Steps[i].Static {
			flags |= 2
			if s, ok := view.Resolve(i, b); ok {
				flags |= 1
				sp = s
			}
		}
		wb.u8(flags)
		appendSpan(&wb, sp)
	}
	return c.writeFrame(MsgOpenPlanOK, wb.b)
}

func (w *Worker) handleViewRPC(c *conn, typ byte, payload []byte, plans map[uint64]*servedPlan) error {
	if typ == MsgContains {
		r := rbuf{b: payload}
		t := readTriple(&r)
		if r.err != nil {
			return r.err
		}
		e, _, err := w.acquire()
		if err != nil {
			return err
		}
		ok := e.own.Contains(t)
		e.refs.Done()
		var v byte
		if ok {
			v = 1
		}
		return c.writeFrame(MsgContainsOK, []byte{v})
	}

	r := rbuf{b: payload}
	id := r.u64()
	step := int(r.u32())
	sp, ok := plans[id]
	if !ok {
		return fmt.Errorf("dist: view RPC for unregistered plan %d", id)
	}
	if step < 0 || step >= len(sp.pl.Steps) {
		return fmt.Errorf("dist: view RPC step %d outside plan", step)
	}
	switch typ {
	case MsgResolve:
		nv := int(r.u32())
		if r.err != nil || nv != sp.pl.NumVars() {
			return fmt.Errorf("dist: resolve with %d bindings, plan has %d vars", nv, sp.pl.NumVars())
		}
		b := make(query.Bindings, nv)
		for i := range b {
			b[i] = rdf.ID(r.u32())
		}
		if r.err != nil {
			return r.err
		}
		span, ok := sp.view.Resolve(step, b)
		wb := wbuf{}
		if ok {
			wb.u8(1)
		} else {
			wb.u8(0)
		}
		appendSpan(&wb, span)
		return c.writeFrame(MsgResolveOK, wb.b)
	case MsgRead:
		span := readSpan(&r)
		off := int(r.u32())
		max := int(r.u32())
		if r.err != nil {
			return r.err
		}
		if max <= 0 || max > enumReadMax {
			max = enumReadMax
		}
		triples := sp.view.Read(step, span, off, max, nil)
		wb := wbuf{}
		wb.u32(uint32(len(triples)))
		for _, t := range triples {
			appendTriple(&wb, t)
		}
		return c.writeFrame(MsgReadOK, wb.b)
	case MsgAt:
		span := readSpan(&r)
		n := int(r.u32())
		if r.err != nil {
			return r.err
		}
		if n < 0 || n >= span.Len() {
			return fmt.Errorf("dist: At index %d outside span of %d", n, span.Len())
		}
		t := sp.view.At(step, span, n)
		wb := wbuf{}
		appendTriple(&wb, t)
		return c.writeFrame(MsgAtOK, wb.b)
	}
	return fmt.Errorf("dist: unknown view RPC 0x%02x", typ)
}

// enumReadMax bounds one MsgRead response.
const enumReadMax = 8192

func (w *Worker) handleSwapPrep(c *conn, payload []byte) error {
	var req swapReq
	if err := json.Unmarshal(payload, &req); err != nil {
		return err
	}
	e, err := w.loadEpochMode(req.Path, !req.Mmap)
	if err != nil {
		return err
	}
	w.mu.Lock()
	old := w.pending
	w.pending = e
	epoch := w.epoch
	w.mu.Unlock()
	if old != nil {
		old.set.Close()
	}
	return c.writeJSON(MsgSwapReady, swapInfo{
		Epoch:      epoch + 1,
		Shards:     e.m.Shards,
		ConfigHash: e.m.ConfigHash,
		DictLen:    e.set.Dict().Len(),
	})
}

func (w *Worker) handleSwapCommit(c *conn) error {
	w.mu.Lock()
	if w.pending == nil {
		w.mu.Unlock()
		return fmt.Errorf("dist: swap commit without a prepared epoch")
	}
	old := w.cur
	w.cur = w.pending
	w.pending = nil
	w.epoch++
	w.mu.Unlock()
	w.swaps.Add(1)
	if old != nil {
		// Drain in-flight runs on the old epoch before unmapping it.
		old.refs.Wait()
		old.set.Close()
	}
	return c.writeFrame(MsgSwapOK, nil)
}

func (w *Worker) handleSwapAbort(c *conn) error {
	w.mu.Lock()
	old := w.pending
	w.pending = nil
	w.mu.Unlock()
	if old != nil {
		old.set.Close()
	}
	return c.writeFrame(MsgSwapOK, nil)
}
