package ctj

import (
	"math"
	"testing"
	"testing/quick"

	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// fig5 builds the paper's Fig. 5 query over the small known graph.
func fig5(t *testing.T) (*query.Plan, *rdf.Graph, *index.Store) {
	t.Helper()
	g := rdf.NewGraph()
	g.AddIRIs("alice", "birthPlace", "paris")
	g.AddIRIs("bob", "birthPlace", "paris")
	g.AddIRIs("carol", "birthPlace", "lima")
	g.AddIRIs("dave", "birthPlace", "lima")
	g.AddIRIs("eve", "birthPlace", "rome")
	for _, s := range []string{"alice", "bob", "carol", "dave"} {
		g.AddIRIs(s, rdf.RDFType, "Person")
	}
	g.AddIRIs("eve", rdf.RDFType, "Robot")
	g.AddIRIs("paris", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "City")
	g.AddIRIs("rome", rdf.RDFType, "City")
	g.AddIRIs("lima", rdf.RDFType, "Capital")
	g.Dedup()

	bp, _ := g.Dict.LookupIRI("birthPlace")
	ty, _ := g.Dict.LookupIRI(rdf.RDFType)
	person, _ := g.Dict.LookupIRI("Person")
	q := &query.Query{
		Patterns: []query.Pattern{
			{S: query.V(0), P: query.C(bp), O: query.V(1)},
			{S: query.V(0), P: query.C(ty), O: query.C(person)},
			{S: query.V(1), P: query.C(ty), O: query.V(2)},
		},
		Alpha:    2,
		Beta:     1,
		Distinct: true,
	}
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return pl, g, index.Build(g)
}

func TestCountMatchesLFTJ(t *testing.T) {
	pl, _, st := fig5(t)
	if got, want := Count(st, pl), lftj.Count(st, pl); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}

func TestGroupCountFig5(t *testing.T) {
	pl, g, st := fig5(t)
	city, _ := g.Dict.LookupIRI("City")
	capital, _ := g.Dict.LookupIRI("Capital")
	got := GroupCount(st, pl)
	if got[city] != 4 || got[capital] != 2 || len(got) != 2 {
		t.Errorf("GroupCount = %v, want City:4 Capital:2", got)
	}
}

func TestGroupDistinctFig5(t *testing.T) {
	pl, g, st := fig5(t)
	city, _ := g.Dict.LookupIRI("City")
	capital, _ := g.Dict.LookupIRI("Capital")
	got := GroupDistinct(st, pl)
	if got[city] != 2 || got[capital] != 1 || len(got) != 2 {
		t.Errorf("GroupDistinct = %v, want City:2 Capital:1", got)
	}
}

func TestUngroupedVariants(t *testing.T) {
	pl, _, st := fig5(t)
	q := *pl.Query
	q.Alpha = query.NoVar
	q.Distinct = false
	plc, err := query.Compile(&q)
	if err != nil {
		t.Fatal(err)
	}
	if got := GroupCount(st, plc); got[GlobalGroup] != 6 {
		t.Errorf("ungrouped count = %v, want 6", got)
	}
	q.Distinct = true
	pld, _ := query.Compile(&q)
	// Distinct birth places of persons overall: paris, lima = 2.
	if got := GroupDistinct(st, pld); got[GlobalGroup] != 2 {
		t.Errorf("ungrouped distinct = %v, want 2", got)
	}
}

func TestSuffixCountExampleIV3(t *testing.T) {
	// Example IV.3 analogue: after binding a prefix, SuffixCount returns the
	// exact number of completions.
	pl, g, st := fig5(t)
	e := New(st, pl)
	b := pl.NewBindings()
	carol, _ := g.Dict.LookupIRI("carol")
	lima, _ := g.Dict.LookupIRI("lima")
	b[0], b[1] = carol, lima
	// Completions after step 0: carol is a Person (1 way) x lima's 2 types.
	if got := e.SuffixCount(0, b); got != 2 {
		t.Errorf("SuffixCount = %d, want 2", got)
	}
	// After step 1 (membership checked), still 2.
	if got := e.SuffixCount(1, b); got != 2 {
		t.Errorf("SuffixCount after membership = %d, want 2", got)
	}
	// eve: not a person -> 0 completions.
	eve, _ := g.Dict.LookupIRI("eve")
	rome, _ := g.Dict.LookupIRI("rome")
	b[0], b[1] = eve, rome
	if got := e.SuffixCount(0, b); got != 0 {
		t.Errorf("SuffixCount(eve) = %d, want 0", got)
	}
}

func TestSuffixCountCaches(t *testing.T) {
	pl, g, st := fig5(t)
	e := New(st, pl)
	b := pl.NewBindings()
	alice, _ := g.Dict.LookupIRI("alice")
	bob, _ := g.Dict.LookupIRI("bob")
	paris, _ := g.Dict.LookupIRI("paris")
	b[0], b[1] = alice, paris
	e.SuffixCount(0, b)
	misses := e.Stats().CountMisses
	// Same interface from a different walk start (bob also lands on paris,
	// and ?s=0 is dead after step 1, so the boundary-2 interface matches).
	b[0] = bob
	e.SuffixCount(1, b)
	if e.Stats().CountHits == 0 {
		t.Errorf("no cache hits on repeated interface (misses then=%d now=%d)",
			misses, e.Stats().CountMisses)
	}
}

func TestExists(t *testing.T) {
	pl, g, st := fig5(t)
	e := New(st, pl)
	b := pl.NewBindings()
	if !e.Exists(0, b) {
		t.Error("Exists(0) = false on non-empty query")
	}
	eve, _ := g.Dict.LookupIRI("eve")
	rome, _ := g.Dict.LookupIRI("rome")
	b[0], b[1] = eve, rome
	if e.Exists(1, b) {
		t.Error("Exists for eve (not a Person) = true")
	}
}

func TestEnumerateSuffixProbabilities(t *testing.T) {
	pl, g, st := fig5(t)
	e := New(st, pl)
	b := pl.NewBindings()
	carol, _ := g.Dict.LookupIRI("carol")
	lima, _ := g.Dict.LookupIRI("lima")
	b[0], b[1] = carol, lima
	var n int
	var probSum float64
	e.EnumerateSuffix(0, b, func(bind query.Bindings, prob float64) {
		n++
		probSum += prob
	})
	// Two completions (City, Capital); lima has 2 types so each has
	// conditional probability 1/2 (membership step has d=1).
	if n != 2 {
		t.Fatalf("enumerated %d completions, want 2", n)
	}
	if math.Abs(probSum-1.0) > 1e-12 {
		t.Errorf("conditional suffix probabilities sum to %v, want 1", probSum)
	}
}

func TestSuffixAgg(t *testing.T) {
	pl, g, st := fig5(t)
	e := New(st, pl)
	b := pl.NewBindings()
	carol, _ := g.Dict.LookupIRI("carol")
	lima, _ := g.Dict.LookupIRI("lima")
	city, _ := g.Dict.LookupIRI("City")
	capital, _ := g.Dict.LookupIRI("Capital")
	b[0], b[1] = carol, lima
	agg := e.SuffixAgg(0, b)
	if len(agg) != 2 {
		t.Fatalf("SuffixAgg = %v, want 2 groups", agg)
	}
	for _, gr := range agg {
		if gr.B != lima || gr.N != 1 || math.Abs(gr.P-0.5) > 1e-12 {
			t.Errorf("group %+v, want B=lima N=1 P=0.5", gr)
		}
		if gr.A != city && gr.A != capital {
			t.Errorf("unexpected group value %d", gr.A)
		}
	}
	// Second call hits the aggregate cache.
	before := e.Stats().AggHits
	e.SuffixAgg(0, b)
	if e.Stats().AggHits != before+1 {
		t.Error("SuffixAgg did not hit its cache on repeat")
	}
}

func TestPathProbB(t *testing.T) {
	pl, g, st := fig5(t)
	e := New(st, pl)
	// Pr(paris): walks over 5 birthPlace triples; alice and bob lead to
	// paris. Walk: step0 picks one of 5 triples (prob 1/5 each), step1
	// membership d=1 (alice, bob are Persons), step2 picks one of paris's 1
	// type. Pr(paris) = 2 * (1/5 * 1 * 1) = 0.4.
	paris, _ := g.Dict.LookupIRI("paris")
	if got := e.PathProbB(paris); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Pr(paris) = %v, want 0.4", got)
	}
	// Pr(lima) = 2 paths through carol/dave, each 1/5 * 1 * 1/2, times 2
	// types... careful: Pr(b) sums over full paths with β=lima: 2 starts x 2
	// types x (1/5 * 1/2) = 0.4.
	lima, _ := g.Dict.LookupIRI("lima")
	if got := e.PathProbB(lima); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Pr(lima) = %v, want 0.4", got)
	}
	// rome: eve is not a Person, no full paths.
	rome, _ := g.Dict.LookupIRI("rome")
	if got := e.PathProbB(rome); got != 0 {
		t.Errorf("Pr(rome) = %v, want 0", got)
	}
	// Cache: repeated call hits.
	before := e.Stats().ProbHits
	e.PathProbB(paris)
	if e.Stats().ProbHits != before+1 {
		t.Error("PathProbB did not hit its cache")
	}
}

func TestPathProbAB(t *testing.T) {
	pl, g, st := fig5(t)
	e := New(st, pl)
	lima, _ := g.Dict.LookupIRI("lima")
	city, _ := g.Dict.LookupIRI("City")
	capital, _ := g.Dict.LookupIRI("Capital")
	// Pr(City, lima) = 2 starts x (1/5 * 1/2) = 0.2; same for Capital.
	if got := e.PathProbAB(city, lima); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Pr(City,lima) = %v, want 0.2", got)
	}
	if got := e.PathProbAB(capital, lima); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Pr(Capital,lima) = %v, want 0.2", got)
	}
}

func TestPathProbsSumToOne(t *testing.T) {
	// Σ_b Pr(b) over all reachable b = probability a walk succeeds at all.
	// Σ_{a,b} Pr(a,b) must equal the same number.
	pl, g, st := fig5(t)
	e := New(st, pl)
	exact := lftj.GroupDistinct(st, pl)
	betas := map[rdf.ID]bool{}
	lftj.Enumerate(st, pl, func(b query.Bindings) bool {
		betas[b[pl.Query.Beta]] = true
		return true
	})
	var sumB float64
	for b := range betas {
		sumB += e.PathProbB(b)
	}
	// Success probability: 4/5 of starts are Persons, and every Person
	// start completes; so 0.8.
	if math.Abs(sumB-0.8) > 1e-12 {
		t.Errorf("sum Pr(b) = %v, want 0.8", sumB)
	}
	var sumAB float64
	for a := range exact {
		for b := range betas {
			sumAB += e.PathProbAB(a, b)
		}
	}
	if math.Abs(sumAB-sumB) > 1e-12 {
		t.Errorf("sum Pr(a,b) = %v, want %v", sumAB, sumB)
	}
	_ = g
}

func TestExactAgainstBruteForce(t *testing.T) {
	f := func(seed int64, depth8, flags uint8) bool {
		depth := 1 + int(depth8%3)
		grouped := flags&1 != 0
		distinct := flags&2 != 0
		g := testkit.RandomGraph(seed, 6, 3, 4, 40)
		if g.Len() == 0 {
			return true
		}
		preds := make([]rdf.ID, depth)
		for i := range preds {
			preds[i] = rdf.ID(6 + i%3)
		}
		q := testkit.ChainQuery(g, preds, grouped, distinct)
		pl, err := query.Compile(q)
		if err != nil {
			return false
		}
		st := index.Build(g)
		want := testkit.BruteForce(g, q)
		got := Evaluate(st, pl)
		return testkit.MapsEqual(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSuffixCountAgainstLFTJProperty(t *testing.T) {
	// Property: SuffixCount from any sampled prefix equals the number of
	// LFTJ enumerations sharing that prefix.
	f := func(seed int64) bool {
		g := testkit.RandomGraph(seed, 6, 3, 4, 40)
		if g.Len() == 0 {
			return true
		}
		preds := []rdf.ID{6, 7}
		q := testkit.ChainQuery(g, preds, true, false)
		pl, err := query.Compile(q)
		if err != nil {
			return false
		}
		st := index.Build(g)
		e := New(st, pl)
		ok := true
		// For every binding of the first pattern, compare.
		sp, found := pl.Steps[0].ResolveSpan(st, pl.NewBindings())
		if !found {
			return true
		}
		for t := 0; t < sp.Len(); t++ {
			b := pl.NewBindings()
			tr := st.At(pl.Steps[0].Order, sp, t)
			pl.Steps[0].Bind(tr, b)
			got := e.SuffixCount(0, b)
			var want int64
			lftj.Enumerate(st, pl, func(bb query.Bindings) bool {
				if bb[0] == b[0] && bb[1] == b[1] {
					want++
				}
				return true
			})
			if got != want {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
