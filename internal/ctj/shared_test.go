package ctj

import (
	"sync"
	"testing"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// sharedFixture builds a random chain query with enough distinct prefixes to
// give concurrent evaluators real key traffic, plus the list of step-0
// bindings (one per matching triple) that drive the probes.
func sharedFixture(t *testing.T) (*query.Plan, *index.Store, []query.Bindings) {
	t.Helper()
	g := testkit.RandomGraph(9, 10, 2, 8, 140)
	q := testkit.ChainQuery(g, []rdf.ID{10, 11}, true, true)
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	st0 := &pl.Steps[0]
	b := pl.NewBindings()
	sp, ok := st0.ResolveSpan(st, b)
	if !ok || sp.Len() == 0 {
		t.Fatal("fixture has no step-0 triples")
	}
	ts := st.Triples(st0.Order)
	var prefixes []query.Bindings
	for i := sp.Lo; i < sp.Hi; i++ {
		pb := pl.NewBindings()
		st0.Bind(ts[i], pb)
		prefixes = append(prefixes, pb)
	}
	return pl, st, prefixes
}

// copyPrefixes deep-copies the binding slices: evaluators mutate bindings
// during recursion (Bind/Unbind), so concurrent probes must not share them.
func copyPrefixes(prefixes []query.Bindings) []query.Bindings {
	out := make([]query.Bindings, len(prefixes))
	for i, p := range prefixes {
		out[i] = append(query.Bindings(nil), p...)
	}
	return out
}

// probeResult captures everything an Audit Join walk reads at one prefix:
// the suffix count, existence, the aggregated suffix groups, and the path
// probabilities of each group's (A, B) pair.
type probeResult struct {
	count  int64
	exists bool
	agg    []SuffixGroup
	probs  []float64
}

func probeAll(e *Evaluator, prefixes []query.Bindings) []probeResult {
	out := make([]probeResult, len(prefixes))
	for i, b := range prefixes {
		r := probeResult{
			count:  e.SuffixCount(0, b),
			exists: e.Exists(1, b),
			agg:    e.SuffixAgg(0, b),
		}
		for _, g := range r.agg {
			r.probs = append(r.probs, e.PathProbAB(g.A, g.B))
		}
		out[i] = r
	}
	return out
}

func probesEqual(t *testing.T, label string, got, want []probeResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d probe results, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.count != w.count || g.exists != w.exists {
			t.Errorf("%s: prefix %d: count/exists = %d/%v, want %d/%v",
				label, i, g.count, g.exists, w.count, w.exists)
			continue
		}
		if len(g.agg) != len(w.agg) {
			t.Errorf("%s: prefix %d: %d agg groups, want %d", label, i, len(g.agg), len(w.agg))
			continue
		}
		for j := range w.agg {
			if g.agg[j] != w.agg[j] {
				t.Errorf("%s: prefix %d group %d: %+v, want %+v", label, i, j, g.agg[j], w.agg[j])
			}
			if g.probs[j] != w.probs[j] {
				t.Errorf("%s: prefix %d group %d: prob %v, want %v", label, i, j, g.probs[j], w.probs[j])
			}
		}
	}
}

// TestSharedEvaluatorMatchesPrivate checks, single-threaded, that an
// evaluator routed through a SharedCache returns byte-identical results to
// one with private maps, and that a second evaluator on the same cache runs
// entirely warm.
func TestSharedEvaluatorMatchesPrivate(t *testing.T) {
	pl, st, prefixes := sharedFixture(t)
	priv := New(st, pl)
	want := probeAll(priv, copyPrefixes(prefixes))

	sc := NewSharedCache()
	e1 := NewShared(st, pl, sc)
	probesEqual(t, "cold shared", probeAll(e1, copyPrefixes(prefixes)), want)

	e2 := NewShared(st, pl, sc)
	probesEqual(t, "warm shared", probeAll(e2, copyPrefixes(prefixes)), want)
	cs := e2.Stats()
	if m := cs.CountMisses + cs.AggMisses + cs.ExistMisses + cs.ProbMisses; m != 0 {
		t.Errorf("warm evaluator recorded %d misses, want 0 (%+v)", m, cs)
	}
	if h := cs.CountHits + cs.AggHits + cs.ExistHits + cs.ProbHits; h == 0 {
		t.Error("warm evaluator recorded no hits")
	}

	// Single-flight means the merged shared miss counts match a single
	// private evaluator exactly: each distinct key is computed once.
	ps, ss := priv.Stats(), sc.Stats()
	if ss.CountMisses != ps.CountMisses || ss.AggMisses != ps.AggMisses ||
		ss.ExistMisses != ps.ExistMisses || ss.ProbMisses != ps.ProbMisses {
		t.Errorf("shared misses %+v, want same as private %+v", ss, ps)
	}
	if ss.ProbMaterialized != ps.ProbMaterialized {
		t.Errorf("ProbMaterialized: shared %v, private %v", ss.ProbMaterialized, ps.ProbMaterialized)
	}
}

// runConcurrentProbes spawns one NewShared evaluator per goroutine, each
// probing its slice of prefixes, and checks every result against the private
// oracle. Exercised with -race in CI.
func runConcurrentProbes(t *testing.T, lazyProbs bool, slice func(worker int, prefixes []query.Bindings) []query.Bindings) {
	t.Helper()
	pl, st, prefixes := sharedFixture(t)
	priv := New(st, pl)
	if lazyProbs {
		priv.probDecided = true // decision made: stay lazy
	}
	want := probeAll(priv, copyPrefixes(prefixes))

	sc := NewSharedCache()
	if lazyProbs {
		sc.probDecided = true
	}
	const workers = 8
	got := make([][]probeResult, workers)
	mine := make([][]query.Bindings, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		e := NewShared(st, pl, sc)
		mine[w] = slice(w, copyPrefixes(prefixes))
		wg.Add(1)
		go func(w int, e *Evaluator) {
			defer wg.Done()
			got[w] = probeAll(e, mine[w])
		}(w, e)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		// Recover which oracle entries this worker's slice corresponds to by
		// matching prefix identity (slices preserve order).
		wantW := make([]probeResult, 0, len(mine[w]))
		j := 0
		for _, b := range mine[w] {
			for ; j < len(prefixes); j++ {
				if prefixes[j][0] == b[0] && prefixes[j][1] == b[1] {
					wantW = append(wantW, want[j])
					j++
					break
				}
			}
		}
		if len(wantW) != len(mine[w]) {
			t.Fatalf("worker %d: matched %d oracle entries for %d prefixes", w, len(wantW), len(mine[w]))
		}
		probesEqual(t, "worker", got[w], wantW)
	}

	// Every distinct key is computed at most once across all workers
	// (single-flight); since the workers' union covers every prefix the
	// private oracle saw, the merged miss counts match it exactly.
	ps, ss := priv.Stats(), sc.Stats()
	if ss.CountMisses != ps.CountMisses || ss.AggMisses != ps.AggMisses ||
		ss.ExistMisses != ps.ExistMisses {
		t.Errorf("shared misses %+v, want same as private %+v", ss, ps)
	}
	if ss.ProbMisses > ps.ProbMisses {
		t.Errorf("shared prob misses %d exceed private %d", ss.ProbMisses, ps.ProbMisses)
	}
}

// TestSharedConcurrentIdenticalKeys hammers one cache with 8 evaluators all
// probing the same prefixes: maximal key contention, every worker racing the
// others on every single-flight slot.
func TestSharedConcurrentIdenticalKeys(t *testing.T) {
	runConcurrentProbes(t, false, func(_ int, prefixes []query.Bindings) []query.Bindings {
		return prefixes
	})
}

// TestSharedConcurrentDisjointKeys partitions the prefixes across 8
// evaluators: workers collide only on the deeper shared suffix keys.
func TestSharedConcurrentDisjointKeys(t *testing.T) {
	runConcurrentProbes(t, false, func(w int, prefixes []query.Bindings) []query.Bindings {
		var out []query.Bindings
		for i := w; i < len(prefixes); i += 8 {
			out = append(out, prefixes[i])
		}
		return out
	})
}

// TestSharedConcurrentLazyProbs repeats the identical-keys hammer with
// probability materialization disabled, racing workers through the lazy
// per-pair single-flight path production uses above probMaterializeLimit.
func TestSharedConcurrentLazyProbs(t *testing.T) {
	runConcurrentProbes(t, true, func(_ int, prefixes []query.Bindings) []query.Bindings {
		return prefixes
	})
}

// TestSharedBindRejectsDifferentPlan: a cache bound to one plan signature
// must refuse a structurally different plan instead of serving wrong values.
func TestSharedBindRejectsDifferentPlan(t *testing.T) {
	pl, st, _ := sharedFixture(t)
	g2 := testkit.RandomGraph(9, 10, 2, 8, 140)
	q2 := testkit.ChainQuery(g2, []rdf.ID{10}, false, false)
	pl2, err := query.Compile(q2)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewSharedCache()
	NewShared(st, pl, sc)
	defer func() {
		if recover() == nil {
			t.Error("NewShared with a different plan signature did not panic")
		}
	}()
	NewShared(st, pl2, sc)
}

// TestSharedKeyHashSpreads sanity-checks the shard hash: the step-0 keys of
// the fixture should not all collapse onto one stripe.
func TestSharedKeyHashSpreads(t *testing.T) {
	_, _, prefixes := sharedFixture(t)
	used := map[int]bool{}
	for _, b := range prefixes {
		k := ckey{step: 1}
		for j := range k.vals {
			k.vals[j] = rdf.NoID
		}
		copy(k.vals[:], b)
		used[shardIdx(k.hash())] = true
	}
	if len(prefixes) >= 8 && len(used) < 2 {
		t.Errorf("%d distinct keys all hashed to one of %d shards", len(prefixes), numShards)
	}
}
