package ctj

import (
	"math"
	"testing"
	"testing/quick"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// lazyEvaluator returns an evaluation session with probability
// materialization disabled, forcing the per-pair constrained-enumeration
// path that production uses for joins above probMaterializeLimit.
func lazyEvaluator(store *index.Store, pl *query.Plan) *Evaluator {
	e := New(store, pl)
	e.probDecided = true // decision made: stay lazy
	return e
}

func TestPathProbLazyMatchesMaterialized(t *testing.T) {
	pl, g, st := fig5(t)
	lazy := lazyEvaluator(st, pl)
	eager := New(st, pl)

	// Collect all (a, b) pairs from the exact result.
	type pair struct{ a, b rdf.ID }
	pairs := map[pair]bool{}
	var betas []rdf.ID
	seen := map[rdf.ID]bool{}
	_ = g
	// Enumerate via the plan.
	b := pl.NewBindings()
	var rec func(i int)
	rec = func(i int) {
		if i == len(pl.Steps) {
			pairs[pair{b[pl.Query.Alpha], b[pl.Query.Beta]}] = true
			if !seen[b[pl.Query.Beta]] {
				seen[b[pl.Query.Beta]] = true
				betas = append(betas, b[pl.Query.Beta])
			}
			return
		}
		stp := &pl.Steps[i]
		sp, ok := stp.ResolveSpan(st, b)
		if !ok {
			return
		}
		if stp.Kind == query.AccessMembership {
			rec(i + 1)
			return
		}
		for k := 0; k < sp.Len(); k++ {
			stp.Bind(st.At(stp.Order, sp, k), b)
			rec(i + 1)
		}
		stp.Unbind(b)
	}
	rec(0)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	for p := range pairs {
		l := lazy.PathProbAB(p.a, p.b)
		e := eager.PathProbAB(p.a, p.b)
		if math.Abs(l-e) > 1e-12 {
			t.Errorf("Pr(%d,%d): lazy %v vs materialized %v", p.a, p.b, l, e)
		}
	}
	for _, bb := range betas {
		l := lazy.PathProbB(bb)
		e := eager.PathProbB(bb)
		if math.Abs(l-e) > 1e-12 {
			t.Errorf("Pr(%d): lazy %v vs materialized %v", bb, l, e)
		}
	}
	if lazy.Stats().ProbMaterialized {
		t.Error("lazy evaluator materialized anyway")
	}
	if !eager.Stats().ProbMaterialized {
		t.Error("eager evaluator did not materialize on the tiny fixture")
	}
	// Unreachable values give zero both ways.
	if lazy.PathProbB(rdf.ID(0)) != eager.PathProbB(rdf.ID(0)) {
		t.Error("unreachable-beta probabilities disagree")
	}
}

func TestPathProbLazyMatchesMaterializedProperty(t *testing.T) {
	// Property over random graphs and chain depths: lazy per-pair
	// enumeration equals the one-pass materialization for every pair.
	f := func(seed int64, depth8 uint8) bool {
		depth := 1 + int(depth8%3)
		g := testkit.RandomGraph(seed, 6, 3, 4, 40)
		if g.Len() == 0 {
			return true
		}
		preds := make([]rdf.ID, depth)
		for i := range preds {
			preds[i] = rdf.ID(6 + i%3)
		}
		q := testkit.ChainQuery(g, preds, true, true)
		pl, err := query.Compile(q)
		if err != nil {
			return false
		}
		st := index.Build(g)
		lazy := lazyEvaluator(st, pl)
		eager := New(st, pl)
		// Probe every subject and a few arbitrary IDs as beta values.
		for id := rdf.ID(0); id < rdf.ID(g.Dict.Len()); id++ {
			if math.Abs(lazy.PathProbB(id)-eager.PathProbB(id)) > 1e-12 {
				return false
			}
			if math.Abs(lazy.PathProbAB(3, id)-eager.PathProbAB(3, id)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAuditJoinEquivalentUnderLazyProbs(t *testing.T) {
	// The estimator sums must not depend on which probability strategy the
	// evaluator picked: compare SuffixAgg-driven contributions through both.
	pl, _, st := fig5(t)
	lazy := lazyEvaluator(st, pl)
	eager := New(st, pl)
	b := pl.NewBindings()
	sp, ok := pl.Steps[0].ResolveSpan(st, b)
	if !ok {
		t.Fatal("empty span")
	}
	for k := 0; k < sp.Len(); k++ {
		pl.Steps[0].Bind(st.At(pl.Steps[0].Order, sp, k), b)
		la, ea := 0.0, 0.0
		for _, e := range lazy.SuffixAgg(0, b) {
			if p := lazy.PathProbAB(e.A, e.B); p > 0 {
				la += e.P / p
			}
		}
		for _, e := range eager.SuffixAgg(0, b) {
			if p := eager.PathProbAB(e.A, e.B); p > 0 {
				ea += e.P / p
			}
		}
		if math.Abs(la-ea) > 1e-9 {
			t.Errorf("prefix %d: lazy contribution %v vs eager %v", k, la, ea)
		}
	}
}
