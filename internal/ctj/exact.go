package ctj

import (
	"context"

	"kgexplore/internal/card"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// checkEvery is the number of prefix-enumeration visits between context
// checks in the exact entry points: a power of two so the cancellation
// checkpoint is a mask test.
const checkEvery = 1 << 12

// canceller amortizes ctx.Err() over the exact recursion: one check per
// checkEvery visits (plus one upfront). Once tripped it stays tripped.
type canceller struct {
	ctx   context.Context
	steps int
	err   error
}

func newCanceller(ctx context.Context) *canceller {
	return &canceller{ctx: ctx, err: ctx.Err()}
}

func (c *canceller) cancelled() bool {
	if c.err != nil {
		return true
	}
	if c.steps++; c.steps&(checkEvery-1) == 0 {
		c.err = c.ctx.Err()
	}
	return c.err != nil
}

// Count returns the exact number of full assignments |Γ| using the cached
// suffix recursion.
func Count(store *index.Store, pl *query.Plan) int64 {
	e := New(store, pl)
	b := pl.NewBindings()
	return e.count(0, b)
}

// GroupCount returns the exact COUNT per group. Internally the plan is
// reordered (when a valid connected order exists and compiles) so that the
// pattern binding Alpha comes as early as possible: every assignment of the
// prefix up to Alpha then contributes one cached suffix count, which is
// where CTJ's caching removes LFTJ's recomputation.
func GroupCount(store *index.Store, pl *query.Plan) map[rdf.ID]int64 {
	out, _ := GroupCountCtx(context.Background(), store, pl)
	return out
}

// GroupCountCtx is GroupCount under a context: a cancelled run returns
// (nil, ctx.Err()) rather than a partial count.
func GroupCountCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]int64, error) {
	return groupCountCtx(ctx, store, pl, nil)
}

func groupCountCtx(ctx context.Context, store *index.Store, pl *query.Plan, est query.Estimator) (map[rdf.ID]int64, error) {
	cc := newCanceller(ctx)
	if cc.cancelled() {
		return nil, cc.err
	}
	out := make(map[rdf.ID]int64)
	if pl.Query.Alpha == query.NoVar {
		e := New(store, pl)
		e.SetEstimator(est)
		b := pl.NewBindings()
		if n := e.count(0, b); n > 0 {
			out[GlobalGroup] = n
		}
		return out, nil
	}
	pl2 := reorderFor(store, est, pl, false)
	e := New(store, pl2)
	e.SetEstimator(est)
	b := pl2.NewBindings()
	target := pl2.AlphaStep
	var rec func(i int)
	rec = func(i int) {
		if cc.cancelled() {
			return
		}
		st := &pl2.Steps[i]
		sp, ok := st.ResolveSpan(store, b)
		if !ok {
			return
		}
		if st.Kind == query.AccessMembership {
			if i == target {
				// Alpha cannot first bind at a membership step (membership
				// binds nothing), so just descend.
				panic("ctj: alpha bound at membership step")
			}
			rec(i + 1)
			return
		}
		for t := 0; t < sp.Len(); t++ {
			if cc.cancelled() {
				break
			}
			st.Bind(store.At(st.Order, sp, t), b)
			if len(st.Filters) > 0 && !pl2.StepFiltersOK(i, store, b) {
				continue
			}
			if i == target {
				if n := e.SuffixCount(i, b); n > 0 {
					out[b[pl2.Query.Alpha]] += n
				}
			} else {
				rec(i + 1)
			}
		}
		st.Unbind(b)
	}
	rec(0)
	if cc.err != nil {
		return nil, cc.err
	}
	return out, nil
}

// GroupDistinct returns the exact COUNT(DISTINCT Beta) per group. The plan
// is reordered so that Alpha and Beta are both bound as early as possible;
// each prefix assignment then needs only a cached existence check of the
// remaining steps, and the distinct (Alpha, Beta) pairs are collected in a
// set.
func GroupDistinct(store *index.Store, pl *query.Plan) map[rdf.ID]int64 {
	out, _ := GroupDistinctCtx(context.Background(), store, pl)
	return out
}

// GroupDistinctCtx is GroupDistinct under a context.
func GroupDistinctCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]int64, error) {
	return groupDistinctCtx(ctx, store, pl, nil, nil)
}

// groupDistinctCtx collects distinct (group, Beta) pairs. seen may carry the
// dedup state across calls — union evaluation passes one shared set so a pair
// produced by two branches counts once; nil starts fresh.
func groupDistinctCtx(ctx context.Context, store *index.Store, pl *query.Plan, est query.Estimator, seen map[[2]rdf.ID]struct{}) (map[rdf.ID]int64, error) {
	cc := newCanceller(ctx)
	if cc.cancelled() {
		return nil, cc.err
	}
	pl2 := reorderFor(store, est, pl, true)
	e := New(store, pl2)
	e.SetEstimator(est)
	b := pl2.NewBindings()
	alpha, beta := pl2.Query.Alpha, pl2.Query.Beta
	target := pl2.BetaStep
	if alpha != query.NoVar && pl2.AlphaStep > target {
		target = pl2.AlphaStep
	}
	if seen == nil {
		seen = make(map[[2]rdf.ID]struct{})
	}
	out := make(map[rdf.ID]int64)
	var rec func(i int)
	rec = func(i int) {
		if cc.cancelled() {
			return
		}
		if i > target {
			if !e.Exists(i, b) {
				return
			}
			a := GlobalGroup
			if alpha != query.NoVar {
				a = b[alpha]
			}
			k := [2]rdf.ID{a, b[beta]}
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out[a]++
			}
			return
		}
		st := &pl2.Steps[i]
		sp, ok := st.ResolveSpan(store, b)
		if !ok {
			return
		}
		if st.Kind == query.AccessMembership {
			rec(i + 1)
			return
		}
		for t := 0; t < sp.Len(); t++ {
			if cc.cancelled() {
				break
			}
			st.Bind(store.At(st.Order, sp, t), b)
			if len(st.Filters) > 0 && !pl2.StepFiltersOK(i, store, b) {
				continue
			}
			rec(i + 1)
		}
		st.Unbind(b)
	}
	rec(0)
	if cc.err != nil {
		return nil, cc.err
	}
	return out, nil
}

// groupWeighted traverses prefixes until Alpha and Beta are bound, then
// multiplies Beta's numeric value by the cached count of suffix completions
// — the shared machinery of GroupSum and GroupAvg.
func groupWeighted(ctx context.Context, store *index.Store, pl *query.Plan, est query.Estimator) (sums, counts map[rdf.ID]float64, err error) {
	cc := newCanceller(ctx)
	if cc.cancelled() {
		return nil, nil, cc.err
	}
	pl2 := reorderFor(store, est, pl, true)
	e := New(store, pl2)
	e.SetEstimator(est)
	b := pl2.NewBindings()
	alpha, beta := pl2.Query.Alpha, pl2.Query.Beta
	target := pl2.BetaStep
	if alpha != query.NoVar && pl2.AlphaStep > target {
		target = pl2.AlphaStep
	}
	sums = make(map[rdf.ID]float64)
	counts = make(map[rdf.ID]float64)
	var rec func(i int)
	rec = func(i int) {
		if cc.cancelled() {
			return
		}
		if i > target {
			v, numeric := store.Numeric(b[beta])
			if !numeric {
				return
			}
			n := e.count(i, b)
			if n == 0 {
				return
			}
			a := GlobalGroup
			if alpha != query.NoVar {
				a = b[alpha]
			}
			sums[a] += v * float64(n)
			counts[a] += float64(n)
			return
		}
		st := &pl2.Steps[i]
		sp, ok := st.ResolveSpan(store, b)
		if !ok {
			return
		}
		if st.Kind == query.AccessMembership {
			rec(i + 1)
			return
		}
		for t := 0; t < sp.Len(); t++ {
			if cc.cancelled() {
				break
			}
			st.Bind(store.At(st.Order, sp, t), b)
			if len(st.Filters) > 0 && !pl2.StepFiltersOK(i, store, b) {
				continue
			}
			rec(i + 1)
		}
		st.Unbind(b)
	}
	rec(0)
	if cc.err != nil {
		return nil, nil, cc.err
	}
	return sums, counts, nil
}

// GroupSum returns the exact SUM of Beta's numeric values per group.
func GroupSum(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	out, _ := GroupSumCtx(context.Background(), store, pl)
	return out
}

// GroupSumCtx is GroupSum under a context.
func GroupSumCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]float64, error) {
	sums, _, err := groupWeighted(ctx, store, pl, nil)
	if err != nil {
		return nil, err
	}
	return sums, nil
}

// GroupAvg returns the exact AVG of Beta's numeric values per group, over
// the assignments whose Beta is numeric.
func GroupAvg(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	out, _ := GroupAvgCtx(context.Background(), store, pl)
	return out
}

// GroupAvgCtx is GroupAvg under a context.
func GroupAvgCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]float64, error) {
	sums, counts, err := groupWeighted(ctx, store, pl, nil)
	if err != nil {
		return nil, err
	}
	out := make(map[rdf.ID]float64, len(sums))
	for a, s := range sums {
		if counts[a] > 0 {
			out[a] = s / counts[a]
		}
	}
	return out, nil
}

// Evaluate runs the query per its aggregation function and Distinct flag,
// returning per-group exact results as float64 for comparability with the
// estimators.
func Evaluate(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	out, _ := EvaluateCtx(context.Background(), store, pl)
	return out
}

// EvaluateCtx is Evaluate under a context: long exact runs abort promptly
// when ctx is done, returning (nil, ctx.Err()) — never a partial result
// posing as the exact answer.
func EvaluateCtx(ctx context.Context, store *index.Store, pl *query.Plan) (map[rdf.ID]float64, error) {
	return EvaluateCtxEst(ctx, store, pl, nil)
}

// EvaluateCtxEst is EvaluateCtx with the cardinality estimator behind the
// order selection and the session's planning decisions made explicit; nil
// selects span statistics.
func EvaluateCtxEst(ctx context.Context, store *index.Store, pl *query.Plan, est query.Estimator) (map[rdf.ID]float64, error) {
	switch pl.Query.Agg {
	case query.AggSum:
		sums, _, err := groupWeighted(ctx, store, pl, est)
		if err != nil {
			return nil, err
		}
		return sums, nil
	case query.AggAvg:
		sums, counts, err := groupWeighted(ctx, store, pl, est)
		if err != nil {
			return nil, err
		}
		out := make(map[rdf.ID]float64, len(sums))
		for a, s := range sums {
			if counts[a] > 0 {
				out[a] = s / counts[a]
			}
		}
		return out, nil
	}
	var (
		raw map[rdf.ID]int64
		err error
	)
	if pl.Query.Distinct {
		raw, err = groupDistinctCtx(ctx, store, pl, est, nil)
	} else {
		raw, err = groupCountCtx(ctx, store, pl, est)
	}
	if err != nil {
		return nil, err
	}
	out := make(map[rdf.ID]float64, len(raw))
	for k, v := range raw {
		out[k] = float64(v)
	}
	return out, nil
}

// reorderFor picks the valid, compilable pattern order that binds Alpha
// (and, if needBeta, Beta) at the earliest step. Exact results are
// order-invariant, so this is purely a cost choice. Positional ties are
// broken by the estimator's join size, but only when the estimate carries
// better-than-independence confidence (> 0.5): the graph summary's
// conditional estimates qualify; span statistics' composed estimates do
// not, so the span default keeps exactly the pre-refactor order (original
// order first among ties).
func reorderFor(store *index.Store, est query.Estimator, pl *query.Plan, needBeta bool) *query.Plan {
	if est == nil {
		est = card.NewSpanStats(store)
	}
	q := pl.Query
	best := pl
	bestScore := orderScore(pl, needBeta)
	bestJoin := -1.0 // best's join size, computed lazily on the first tie
	for _, ord := range q.ValidOrders() {
		q2, err := q.Reorder(ord)
		if err != nil {
			continue
		}
		pl2, err := query.Compile(q2)
		if err != nil {
			continue
		}
		s := orderScore(pl2, needBeta)
		if s > bestScore {
			continue
		}
		if s < bestScore {
			best, bestScore, bestJoin = pl2, s, -1
			continue
		}
		js := est.JoinSize(pl2)
		if js.Confidence <= 0.5 {
			continue
		}
		if bestJoin < 0 {
			bestJoin = est.JoinSize(best).Value
		}
		if js.Value < bestJoin {
			best, bestJoin = pl2, js.Value
		}
	}
	return best
}

func orderScore(pl *query.Plan, needBeta bool) int {
	s := 0
	if pl.Query.Alpha != query.NoVar {
		s = pl.AlphaStep
	}
	if needBeta && pl.BetaStep > s {
		s = pl.BetaStep
	}
	return s
}
