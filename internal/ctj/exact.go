package ctj

import (
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// Count returns the exact number of full assignments |Γ| using the cached
// suffix recursion.
func Count(store *index.Store, pl *query.Plan) int64 {
	e := New(store, pl)
	b := pl.NewBindings()
	return e.count(0, b)
}

// GroupCount returns the exact COUNT per group. Internally the plan is
// reordered (when a valid connected order exists and compiles) so that the
// pattern binding Alpha comes as early as possible: every assignment of the
// prefix up to Alpha then contributes one cached suffix count, which is
// where CTJ's caching removes LFTJ's recomputation.
func GroupCount(store *index.Store, pl *query.Plan) map[rdf.ID]int64 {
	out := make(map[rdf.ID]int64)
	if pl.Query.Alpha == query.NoVar {
		e := New(store, pl)
		b := pl.NewBindings()
		if n := e.count(0, b); n > 0 {
			out[GlobalGroup] = n
		}
		return out
	}
	pl2 := reorderFor(store, pl, false)
	e := New(store, pl2)
	b := pl2.NewBindings()
	target := pl2.AlphaStep
	var rec func(i int)
	rec = func(i int) {
		st := &pl2.Steps[i]
		sp, ok := st.ResolveSpan(store, b)
		if !ok {
			return
		}
		if st.Kind == query.AccessMembership {
			if i == target {
				// Alpha cannot first bind at a membership step (membership
				// binds nothing), so just descend.
				panic("ctj: alpha bound at membership step")
			}
			rec(i + 1)
			return
		}
		for t := 0; t < sp.Len(); t++ {
			st.Bind(store.At(st.Order, sp, t), b)
			if i == target {
				if n := e.SuffixCount(i, b); n > 0 {
					out[b[pl2.Query.Alpha]] += n
				}
			} else {
				rec(i + 1)
			}
		}
		st.Unbind(b)
	}
	rec(0)
	return out
}

// GroupDistinct returns the exact COUNT(DISTINCT Beta) per group. The plan
// is reordered so that Alpha and Beta are both bound as early as possible;
// each prefix assignment then needs only a cached existence check of the
// remaining steps, and the distinct (Alpha, Beta) pairs are collected in a
// set.
func GroupDistinct(store *index.Store, pl *query.Plan) map[rdf.ID]int64 {
	pl2 := reorderFor(store, pl, true)
	e := New(store, pl2)
	b := pl2.NewBindings()
	alpha, beta := pl2.Query.Alpha, pl2.Query.Beta
	target := pl2.BetaStep
	if alpha != query.NoVar && pl2.AlphaStep > target {
		target = pl2.AlphaStep
	}
	seen := make(map[[2]rdf.ID]struct{})
	out := make(map[rdf.ID]int64)
	var rec func(i int)
	rec = func(i int) {
		if i > target {
			if !e.Exists(i, b) {
				return
			}
			a := GlobalGroup
			if alpha != query.NoVar {
				a = b[alpha]
			}
			k := [2]rdf.ID{a, b[beta]}
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out[a]++
			}
			return
		}
		st := &pl2.Steps[i]
		sp, ok := st.ResolveSpan(store, b)
		if !ok {
			return
		}
		if st.Kind == query.AccessMembership {
			rec(i + 1)
			return
		}
		for t := 0; t < sp.Len(); t++ {
			st.Bind(store.At(st.Order, sp, t), b)
			rec(i + 1)
		}
		st.Unbind(b)
	}
	rec(0)
	return out
}

// groupWeighted traverses prefixes until Alpha and Beta are bound, then
// multiplies Beta's numeric value by the cached count of suffix completions
// — the shared machinery of GroupSum and GroupAvg.
func groupWeighted(store *index.Store, pl *query.Plan) (sums, counts map[rdf.ID]float64) {
	pl2 := reorderFor(store, pl, true)
	e := New(store, pl2)
	b := pl2.NewBindings()
	alpha, beta := pl2.Query.Alpha, pl2.Query.Beta
	target := pl2.BetaStep
	if alpha != query.NoVar && pl2.AlphaStep > target {
		target = pl2.AlphaStep
	}
	sums = make(map[rdf.ID]float64)
	counts = make(map[rdf.ID]float64)
	var rec func(i int)
	rec = func(i int) {
		if i > target {
			v, numeric := store.Numeric(b[beta])
			if !numeric {
				return
			}
			n := e.count(i, b)
			if n == 0 {
				return
			}
			a := GlobalGroup
			if alpha != query.NoVar {
				a = b[alpha]
			}
			sums[a] += v * float64(n)
			counts[a] += float64(n)
			return
		}
		st := &pl2.Steps[i]
		sp, ok := st.ResolveSpan(store, b)
		if !ok {
			return
		}
		if st.Kind == query.AccessMembership {
			rec(i + 1)
			return
		}
		for t := 0; t < sp.Len(); t++ {
			st.Bind(store.At(st.Order, sp, t), b)
			rec(i + 1)
		}
		st.Unbind(b)
	}
	rec(0)
	return sums, counts
}

// GroupSum returns the exact SUM of Beta's numeric values per group.
func GroupSum(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	sums, _ := groupWeighted(store, pl)
	return sums
}

// GroupAvg returns the exact AVG of Beta's numeric values per group, over
// the assignments whose Beta is numeric.
func GroupAvg(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	sums, counts := groupWeighted(store, pl)
	out := make(map[rdf.ID]float64, len(sums))
	for a, s := range sums {
		if counts[a] > 0 {
			out[a] = s / counts[a]
		}
	}
	return out
}

// Evaluate runs the query per its aggregation function and Distinct flag,
// returning per-group exact results as float64 for comparability with the
// estimators.
func Evaluate(store *index.Store, pl *query.Plan) map[rdf.ID]float64 {
	switch pl.Query.Agg {
	case query.AggSum:
		return GroupSum(store, pl)
	case query.AggAvg:
		return GroupAvg(store, pl)
	}
	var raw map[rdf.ID]int64
	if pl.Query.Distinct {
		raw = GroupDistinct(store, pl)
	} else {
		raw = GroupCount(store, pl)
	}
	out := make(map[rdf.ID]float64, len(raw))
	for k, v := range raw {
		out[k] = float64(v)
	}
	return out
}

// reorderFor picks the valid, compilable pattern order that binds Alpha
// (and, if needBeta, Beta) at the earliest step; ties favor the original
// order. Exact results are order-invariant, so this is purely a cost choice.
func reorderFor(store *index.Store, pl *query.Plan, needBeta bool) *query.Plan {
	q := pl.Query
	best := pl
	bestScore := orderScore(pl, needBeta)
	for _, ord := range q.ValidOrders() {
		q2, err := q.Reorder(ord)
		if err != nil {
			continue
		}
		pl2, err := query.Compile(q2)
		if err != nil {
			continue
		}
		if s := orderScore(pl2, needBeta); s < bestScore {
			best, bestScore = pl2, s
		}
	}
	return best
}

func orderScore(pl *query.Plan, needBeta bool) int {
	s := 0
	if pl.Query.Alpha != query.NoVar {
		s = pl.AlphaStep
	}
	if needBeta && pl.BetaStep > s {
		s = pl.BetaStep
	}
	return s
}
