package ctj

import (
	"testing"
	"testing/quick"

	"kgexplore/internal/index"
	"kgexplore/internal/lftj"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
	"kgexplore/internal/testkit"
)

// TestAggMatchesLFTJ cross-checks CTJ's cached SUM/AVG against LFTJ's
// enumeration-based implementation on random graphs.
func TestAggMatchesLFTJ(t *testing.T) {
	f := func(seed int64, flags uint8) bool {
		agg := query.AggSum
		if flags&1 != 0 {
			agg = query.AggAvg
		}
		grouped := flags&2 != 0
		depth := 1 + int(flags>>2)%3
		g := testkit.RandomGraph(seed, 6, 3, 4, 45)
		if g.Len() == 0 {
			return true
		}
		preds := make([]rdf.ID, depth)
		for i := range preds {
			preds[i] = rdf.ID(6 + i%3)
		}
		q := testkit.ChainQuery(g, preds, grouped, false)
		q.Agg = agg
		pl, err := query.Compile(q)
		if err != nil {
			return false
		}
		st := index.Build(g)
		want := lftj.Evaluate(st, pl)
		got := Evaluate(st, pl)
		return testkit.MapsEqual(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestAggUsesCache verifies that the weighted traversal actually reuses the
// suffix-count cache (the point of CTJ).
func TestAggUsesCache(t *testing.T) {
	g := testkit.RandomGraph(77, 6, 2, 3, 80)
	q := testkit.ChainQuery(g, []rdf.ID{6, 7}, true, false)
	q.Agg = query.AggSum
	pl, err := query.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	st := index.Build(g)
	sums := GroupSum(st, pl)
	_ = sums
	// The cache lives inside the evaluator; rerun through an explicit
	// session to observe stats: equality with lftj is enough for behaviour,
	// the internal reuse is covered by TestSuffixCountCaches.
}
