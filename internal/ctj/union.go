package ctj

import (
	"context"

	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// EvaluateUnion evaluates a compiled union exactly with the cached trie
// join, under SPARQL bag semantics: COUNT and SUM add across branches, AVG
// is the ratio of the summed per-branch numerators and denominators, and
// COUNT(DISTINCT) deduplicates (group, β) pairs ACROSS branches via one
// shared value set threaded through the per-branch traversals. Each branch
// keeps its own CTJ session (branches have different plans, so their caches
// cannot mix).
func EvaluateUnion(store *index.Store, up *query.UnionPlan) (map[rdf.ID]float64, error) {
	return EvaluateUnionCtx(context.Background(), store, up)
}

// EvaluateUnionCtx is EvaluateUnion under a context.
func EvaluateUnionCtx(ctx context.Context, store *index.Store, up *query.UnionPlan) (map[rdf.ID]float64, error) {
	return EvaluateUnionCtxEst(ctx, store, up, nil)
}

// EvaluateUnionCtxEst is EvaluateUnionCtx with an explicit cardinality
// estimator behind each branch's order selection; nil selects span
// statistics.
func EvaluateUnionCtxEst(ctx context.Context, store *index.Store, up *query.UnionPlan, est query.Estimator) (map[rdf.ID]float64, error) {
	out := make(map[rdf.ID]float64)
	switch {
	case up.Query.Agg() == query.AggSum:
		for _, pl := range up.Plans {
			sums, _, err := groupWeighted(ctx, store, pl, est)
			if err != nil {
				return nil, err
			}
			for a, v := range sums {
				out[a] += v
			}
		}
	case up.Query.Agg() == query.AggAvg:
		nums := make(map[rdf.ID]float64)
		dens := make(map[rdf.ID]float64)
		for _, pl := range up.Plans {
			sums, counts, err := groupWeighted(ctx, store, pl, est)
			if err != nil {
				return nil, err
			}
			for a, v := range sums {
				nums[a] += v
			}
			for a, v := range counts {
				dens[a] += v
			}
		}
		for a, n := range nums {
			if d := dens[a]; d > 0 {
				out[a] = n / d
			}
		}
	case up.Query.Distinct():
		seen := make(map[[2]rdf.ID]struct{})
		for _, pl := range up.Plans {
			raw, err := groupDistinctCtx(ctx, store, pl, est, seen)
			if err != nil {
				return nil, err
			}
			for a, v := range raw {
				out[a] += float64(v)
			}
		}
	default:
		for _, pl := range up.Plans {
			raw, err := groupCountCtx(ctx, store, pl, est)
			if err != nil {
				return nil, err
			}
			for a, v := range raw {
				out[a] += float64(v)
			}
		}
	}
	return out, nil
}
