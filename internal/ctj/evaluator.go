// Package ctj implements Cached Trie Join (Kalinsky et al., EDBT 2017) for
// the exploration-query fragment: the backtracking trie join of LFTJ
// augmented with caches guided by the query's tree decomposition, which for
// the fragment's acyclic queries is the walk path itself (paper §IV-B).
//
// The cache memoizes, for every step boundary, aggregates of the suffix join
// keyed by the "interface": the values of the variables that are bound
// before the boundary and still used after it. Whenever the same interface
// values recur — LFTJ would recompute the whole subtree — CTJ serves the
// aggregate from the cache (Example IV.1 of the paper).
//
// Besides standalone exact evaluation, the package exposes the primitives
// Audit Join builds on: cached suffix counts, suffix enumeration with walk
// probabilities, and the path-probability sums Pr(b) and Pr(a,b) of the
// unbiased distinct estimator.
package ctj

import (
	"fmt"

	"kgexplore/internal/card"
	"kgexplore/internal/index"
	"kgexplore/internal/query"
	"kgexplore/internal/rdf"
)

// GlobalGroup is the map key used for ungrouped queries.
const GlobalGroup = rdf.NoID

// maxIface bounds the number of interface variables a cache key can carry.
// A boundary's interface holds at most one variable per later pattern (each
// variable occurs in at most two patterns), and exploration queries are
// short, so eight is generous.
const maxIface = 8

// ckey identifies a cached suffix aggregate: the boundary step plus the
// values of the boundary's key variables (padded with NoID).
type ckey struct {
	step int8
	vals [maxIface]rdf.ID
}

// SuffixGroup is one aggregated completion class of a suffix join: the group
// value A, the counted value B, the number N of completions with that (A,B),
// and P, the sum over those completions of the walk probabilities
// ∏_{j>i} 1/d_j. B and P are only meaningful for distinct-mode consumers.
type SuffixGroup struct {
	A, B rdf.ID
	N    int64
	P    float64
}

// CacheStats reports cache effectiveness, used by the CTJ-vs-LFTJ ablation.
type CacheStats struct {
	CountHits, CountMisses int64
	AggHits, AggMisses     int64
	ExistHits, ExistMisses int64
	ProbHits, ProbMisses   int64
	// ProbMaterialized is true when all Pr(a,b) were computed in one
	// full-join pass instead of lazily per pair.
	ProbMaterialized bool
}

// Evaluator is a CTJ evaluation session over one plan. It owns the caches;
// reusing an Evaluator across many operations (as Audit Join does across
// walks) is what makes the cached prefixes pay off. Not safe for concurrent
// use.
type Evaluator struct {
	store *index.Store
	pl    *query.Plan

	// iface[i] lists the variables in the interface of boundary i (bound
	// at a step < i and used at a step >= i), for i in [0, len(Steps)].
	iface [][]query.Var
	// lastUse[v] is the last step where variable v occurs.
	lastUse []int

	countCache map[ckey]int64
	aggCache   map[ckey][]SuffixGroup
	existCache map[ckey]bool
	// probCache maps probKey(a, b) -> Pr(a,b); b-only entries live under
	// probKey(NoID, b). The packed uint64 key hits the runtime's fast64
	// map path, which the [2]rdf.ID struct key does not.
	probCache map[uint64]float64

	// probsMaterialized: probCache holds every reachable pair already.
	// probDecided: the materialize-or-lazy decision has been made.
	probsMaterialized bool
	probDecided       bool

	// shared, when non-nil, replaces the private maps above with the
	// concurrency-safe SharedCache: all cache reads and writes route through
	// it, so several evaluators (one per goroutine) populate one cache.
	shared *SharedCache

	// est is the cardinality estimator behind the session's planning
	// decisions (the probability materialize-or-lazy choice); lazily
	// defaulted to span statistics.
	est query.Estimator

	stats CacheStats
}

// SetEstimator routes this session's planning decisions through the given
// cardinality estimator (see internal/card). A nil estimator is ignored;
// the default is span statistics.
func (e *Evaluator) SetEstimator(est query.Estimator) {
	if est != nil {
		e.est = est
	}
}

// estimator returns the session's estimator, defaulting lazily.
func (e *Evaluator) estimator() query.Estimator {
	if e.est == nil {
		e.est = card.NewSpanStats(e.store)
	}
	return e.est
}

// New creates an evaluation session for the plan.
func New(store *index.Store, pl *query.Plan) *Evaluator {
	n := len(pl.Steps)
	e := &Evaluator{
		store:      store,
		pl:         pl,
		lastUse:    make([]int, pl.NumVars()),
		countCache: make(map[ckey]int64),
		aggCache:   make(map[ckey][]SuffixGroup),
		existCache: make(map[ckey]bool),
		probCache:  make(map[uint64]float64),
	}
	firstBound := make([]int, pl.NumVars())
	for v := range firstBound {
		firstBound[v] = -1
		e.lastUse[v] = -1
	}
	for i, st := range pl.Steps {
		for _, a := range []query.Atom{st.Pattern.S, st.Pattern.P, st.Pattern.O} {
			if a.IsVar() {
				if firstBound[a.Var] == -1 {
					firstBound[a.Var] = i
				}
				e.lastUse[a.Var] = i
			}
		}
		// A filter anchored at step i reads its variables at i: that is a
		// use, and ignoring it would drop the variable from intermediate
		// interfaces and serve cached suffixes across bindings the filter
		// distinguishes.
		for _, fi := range st.Filters {
			for _, v := range pl.Query.Filters[fi].Vars() {
				if e.lastUse[v] < i {
					e.lastUse[v] = i
				}
			}
		}
	}
	e.iface = make([][]query.Var, n+1)
	for i := 0; i <= n; i++ {
		for v := 0; v < pl.NumVars(); v++ {
			if firstBound[v] >= 0 && firstBound[v] < i && e.lastUse[v] >= i {
				e.iface[i] = append(e.iface[i], query.Var(v))
			}
		}
		if len(e.iface[i]) > maxIface {
			panic(fmt.Sprintf("ctj: boundary %d has %d interface variables; the fragment should keep this under %d",
				i, len(e.iface[i]), maxIface))
		}
	}
	return e
}

// NewShared creates an evaluation session that reads and writes the given
// shared cache instead of private maps. The evaluator itself is still
// single-threaded — create one per goroutine — but any number of evaluators
// over plans with the same Signature may share one cache concurrently.
// Binding a cache to a structurally different plan panics.
func NewShared(store *index.Store, pl *query.Plan, sc *SharedCache) *Evaluator {
	sc.Bind(pl)
	e := New(store, pl)
	e.shared = sc
	return e
}

// Stats returns a snapshot of this session's cache statistics: the hits and
// misses observed by this evaluator, whether the cache is private or shared.
// For the merged view across all evaluators of a shared cache, use
// SharedCache.Stats.
func (e *Evaluator) Stats() CacheStats { return e.stats }

// Shared returns the shared cache the session writes to, or nil when the
// session uses private single-threaded maps.
func (e *Evaluator) Shared() *SharedCache { return e.shared }

// Plan returns the plan this session evaluates.
func (e *Evaluator) Plan() *query.Plan { return e.pl }

// key builds the cache key for boundary step under bindings b. extra values
// (e.g. the group and counted values for aggregate caches) are appended
// after the interface values.
func (e *Evaluator) key(step int, b query.Bindings, extra ...rdf.ID) ckey {
	k := ckey{step: int8(step)}
	i := 0
	for _, v := range e.iface[step] {
		k.vals[i] = b[v]
		i++
	}
	for _, x := range extra {
		if i >= maxIface {
			panic("ctj: cache key overflow")
		}
		k.vals[i] = x
		i++
	}
	for ; i < maxIface; i++ {
		k.vals[i] = rdf.NoID
	}
	return k
}

// probKey packs a (group, counted) value pair into the probCache key.
func probKey(a, b rdf.ID) uint64 { return uint64(a)<<32 | uint64(b) }

// stepWidth returns the walk candidate-set size d for a resolved step: the
// span length, or 1 for a satisfied membership step.
func stepWidth(st *query.Step, sp index.Span) int {
	if st.Kind == query.AccessMembership {
		return 1
	}
	return sp.Len()
}

// SuffixCount returns the exact number of completions of steps i+1..n-1
// given the bindings of steps 0..i — the |Γ_δ| of the paper's base Audit
// Join estimator — with memoization at every deeper boundary.
func (e *Evaluator) SuffixCount(i int, b query.Bindings) int64 {
	return e.count(i+1, b)
}

func (e *Evaluator) count(j int, b query.Bindings) int64 {
	if j == len(e.pl.Steps) {
		return 1
	}
	k := e.key(j, b)
	if e.shared != nil {
		return e.sharedCount(k, j, b)
	}
	if n, ok := e.countCache[k]; ok {
		e.stats.CountHits++
		return n
	}
	e.stats.CountMisses++
	n := e.computeCount(j, b)
	e.countCache[k] = n
	return n
}

// computeCount is the uncached body of the count recursion; deeper boundaries
// re-enter count and hence the cache.
func (e *Evaluator) computeCount(j int, b query.Bindings) int64 {
	st := &e.pl.Steps[j]
	sp, ok := st.ResolveSpan(e.store, b)
	var n int64
	if ok {
		if st.Kind == query.AccessMembership {
			n = e.count(j+1, b)
		} else {
			ts := e.store.Triples(st.Order)
			for t := sp.Lo; t < sp.Hi; t++ {
				st.Bind(ts[t], b)
				if len(st.Filters) > 0 && !e.pl.StepFiltersOK(j, e.store, b) {
					continue
				}
				n += e.count(j+1, b)
			}
			st.Unbind(b)
		}
	}
	return n
}

// Exists reports whether steps j..n-1 have at least one completion under the
// bindings, with memoized short-circuiting.
func (e *Evaluator) Exists(j int, b query.Bindings) bool {
	if j == len(e.pl.Steps) {
		return true
	}
	k := e.key(j, b)
	if e.shared != nil {
		return e.sharedExists(k, j, b)
	}
	if v, ok := e.existCache[k]; ok {
		e.stats.ExistHits++
		return v
	}
	e.stats.ExistMisses++
	found := e.computeExists(j, b)
	e.existCache[k] = found
	return found
}

// computeExists is the uncached body of the existence recursion.
func (e *Evaluator) computeExists(j int, b query.Bindings) bool {
	st := &e.pl.Steps[j]
	sp, ok := st.ResolveSpan(e.store, b)
	found := false
	if ok {
		if st.Kind == query.AccessMembership {
			found = e.Exists(j+1, b)
		} else {
			ts := e.store.Triples(st.Order)
			for t := sp.Lo; t < sp.Hi && !found; t++ {
				st.Bind(ts[t], b)
				if len(st.Filters) > 0 && !e.pl.StepFiltersOK(j, e.store, b) {
					continue
				}
				found = e.Exists(j+1, b)
			}
			st.Unbind(b)
		}
	}
	return found
}
