package ctj

import (
	"sync"
	"sync/atomic"

	"kgexplore/internal/query"
)

// SharedCache is a concurrency-safe CTJ cache shared by several Evaluators
// over the *same* plan shape: the parallel Audit Join workers of one run, or
// successive requests for the same exploration query in the server. Sharing
// turns parallelism from "divide the walks" into "divide the walks and
// multiply the cache hit rate": N workers populate one set of suffix counts,
// existence bits, suffix aggregates and path probabilities instead of
// recomputing them N times.
//
// The cache is lock-striped — each of the four cache kinds is sharded by key
// hash, so workers rarely contend on the same mutex — and single-flight per
// key: when two workers miss on the same key concurrently, one computes the
// value while the others wait for the published result instead of duplicating
// the work. The wait graph cannot deadlock: a suffix computation at boundary
// j only ever waits on keys at strictly deeper boundaries.
//
// A SharedCache must only be used with plans that have the same
// query.Signature (their compiled steps, and hence the cache keys, are then
// identical) against the same store; Bind enforces the signature.
type SharedCache struct {
	count [numShards]shard[ckey, int64]
	exist [numShards]shard[ckey, bool]
	agg   [numShards]shard[ckey, []SuffixGroup]
	prob  [numShards]shard[uint64, float64]

	// probMat, once non-nil, holds every reachable Pr(b) and Pr(a,b); readers
	// check it before the lazy prob shards. probMu serializes the
	// materialize-or-lazy decision (probDecided) across workers.
	probMu      sync.Mutex
	probDecided bool
	probMat     atomic.Pointer[map[uint64]float64]

	// sig is the plan signature the cache is bound to ("" until first Bind).
	sigMu sync.Mutex
	sig   string

	stats sharedStats
}

// numShards is the lock-striping width. Power of two; generous for the
// handful of Audit Join workers a run uses, and still cheap to allocate
// lazily (shard maps are nil until first touched).
const numShards = 64

// NewSharedCache returns an empty shared cache. The first Evaluator bound to
// it fixes the plan signature; binding a different signature panics.
func NewSharedCache() *SharedCache { return &SharedCache{} }

// Bind ties the cache to the plan's signature, panicking on a mismatch with
// an earlier Bind — a shared cache poisoned by keys from a structurally
// different plan would silently return wrong aggregates.
func (c *SharedCache) Bind(pl *query.Plan) {
	sig := pl.Query.Signature()
	c.sigMu.Lock()
	defer c.sigMu.Unlock()
	if c.sig == "" {
		c.sig = sig
		return
	}
	if c.sig != sig {
		panic("ctj: SharedCache bound to a different plan signature: " + sig + " vs " + c.sig)
	}
}

// Stats returns the merged cache statistics across every evaluator that used
// the cache (each evaluator additionally keeps its own per-worker Stats).
func (c *SharedCache) Stats() CacheStats {
	return CacheStats{
		CountHits:        c.stats.countHits.Load(),
		CountMisses:      c.stats.countMisses.Load(),
		AggHits:          c.stats.aggHits.Load(),
		AggMisses:        c.stats.aggMisses.Load(),
		ExistHits:        c.stats.existHits.Load(),
		ExistMisses:      c.stats.existMisses.Load(),
		ProbHits:         c.stats.probHits.Load(),
		ProbMisses:       c.stats.probMisses.Load(),
		ProbMaterialized: c.stats.probMaterialized.Load(),
	}
}

// sharedStats are the merged counters, updated atomically by every evaluator
// alongside its private CacheStats.
type sharedStats struct {
	countHits, countMisses atomic.Int64
	aggHits, aggMisses     atomic.Int64
	existHits, existMisses atomic.Int64
	probHits, probMisses   atomic.Int64
	probMaterialized       atomic.Bool
}

// entry is one single-flight cache slot: done is closed when val is
// published. Waiters block on done; in the common case the channel is
// already closed and the receive is a single atomic load.
type entry[V any] struct {
	done chan struct{}
	val  V
}

// shard is one lock stripe: a mutex plus the key-to-entry map, allocated on
// first use.
type shard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*entry[V]
}

// lookupOrClaim returns the entry for k and whether it already existed. When
// it did not, the caller owns the claim: it must compute the value, store it
// in e.val and close e.done — exactly once — or every later waiter on the key
// deadlocks.
func (s *shard[K, V]) lookupOrClaim(k K) (e *entry[V], existed bool) {
	s.mu.Lock()
	e, existed = s.m[k]
	if !existed {
		e = &entry[V]{done: make(chan struct{})}
		if s.m == nil {
			s.m = make(map[K]*entry[V])
		}
		s.m[k] = e
	}
	s.mu.Unlock()
	return e, existed
}

// hash mixes a ckey into a shard index. The interface values are small dense
// dictionary IDs, so a multiplicative mix spreads them well enough for 64
// stripes.
func (k ckey) hash() uint64 {
	h := uint64(k.step)*0x9E3779B97F4A7C15 + 0x85EBCA6B
	for _, v := range k.vals {
		h ^= uint64(v)
		h *= 0x100000001B3
	}
	return h
}

// mix64 is Stafford's variant 13 finalizer, used to spread the packed prob
// keys (group in the high half, counted value in the low half) across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func shardIdx(h uint64) int { return int(h>>32) & (numShards - 1) }

// sharedCount is the shared-cache arm of the count recursion.
func (e *Evaluator) sharedCount(k ckey, j int, b query.Bindings) int64 {
	sc := e.shared
	sh := &sc.count[shardIdx(k.hash())]
	ent, existed := sh.lookupOrClaim(k)
	if existed {
		<-ent.done
		e.stats.CountHits++
		sc.stats.countHits.Add(1)
		return ent.val
	}
	e.stats.CountMisses++
	sc.stats.countMisses.Add(1)
	ent.val = e.computeCount(j, b)
	close(ent.done)
	return ent.val
}

// sharedExists is the shared-cache arm of the existence recursion.
func (e *Evaluator) sharedExists(k ckey, j int, b query.Bindings) bool {
	sc := e.shared
	sh := &sc.exist[shardIdx(k.hash())]
	ent, existed := sh.lookupOrClaim(k)
	if existed {
		<-ent.done
		e.stats.ExistHits++
		sc.stats.existHits.Add(1)
		return ent.val
	}
	e.stats.ExistMisses++
	sc.stats.existMisses.Add(1)
	ent.val = e.computeExists(j, b)
	close(ent.done)
	return ent.val
}

// sharedSuffixAgg is the shared-cache arm of SuffixAgg. The published slice
// is immutable after close; consumers must not mutate it.
func (e *Evaluator) sharedSuffixAgg(k ckey, i int, b query.Bindings) []SuffixGroup {
	sc := e.shared
	sh := &sc.agg[shardIdx(k.hash())]
	ent, existed := sh.lookupOrClaim(k)
	if existed {
		<-ent.done
		e.stats.AggHits++
		sc.stats.aggHits.Add(1)
		return ent.val
	}
	e.stats.AggMisses++
	sc.stats.aggMisses.Add(1)
	ent.val = e.computeSuffixAgg(i, b)
	close(ent.done)
	return ent.val
}

// sharedProb serves one Pr(·) lookup from the shared cache: the materialized
// map when published, else the lazy single-flight shards (computing via
// compute on a claim). Mirrors the private path's stats discipline: the
// evaluator that materializes records a single ProbMiss for the one-pass
// enumeration (see materializeProbs); reads after publication count as hits.
func (e *Evaluator) sharedProb(key uint64, compute func() float64) float64 {
	sc := e.shared
	if m := sc.probMat.Load(); m != nil {
		e.stats.ProbHits++
		sc.stats.probHits.Add(1)
		return (*m)[key]
	}
	sh := &sc.prob[shardIdx(mix64(key))]
	ent, existed := sh.lookupOrClaim(key)
	if existed {
		<-ent.done
		e.stats.ProbHits++
		sc.stats.probHits.Add(1)
		return ent.val
	}
	if e.sharedMaybeMaterialize() {
		// Publish the claimed entry from the materialized map so concurrent
		// waiters that raced past the probMat check still unblock.
		ent.val = (*sc.probMat.Load())[key]
		close(ent.done)
		return ent.val
	}
	e.stats.ProbMisses++
	sc.stats.probMisses.Add(1)
	ent.val = compute()
	close(ent.done)
	return ent.val
}

// sharedMaybeMaterialize makes the materialize-or-lazy decision once per
// shared cache, holding probMu for the duration of the one-pass join so
// concurrent first-missers wait for the published map instead of racing into
// redundant lazy computations.
func (e *Evaluator) sharedMaybeMaterialize() bool {
	sc := e.shared
	sc.probMu.Lock()
	defer sc.probMu.Unlock()
	if sc.probMat.Load() != nil {
		return true
	}
	if sc.probDecided {
		return false
	}
	sc.probDecided = true
	if e.estimator().JoinSize(e.pl).Value > probMaterializeLimit {
		return false
	}
	m := make(map[uint64]float64)
	e.materializeProbsInto(m)
	sc.probMat.Store(&m)
	// One ProbMiss for the whole pass, charged to the worker that ran it —
	// the same accounting as the private materializeProbs. Across a shared
	// run the merged counter therefore shows exactly one materialization,
	// where private per-worker caches would show one per worker.
	e.stats.ProbMisses++
	sc.stats.probMisses.Add(1)
	sc.stats.probMaterialized.Store(true)
	e.stats.ProbMaterialized = true
	return true
}
